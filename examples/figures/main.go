// Figures walks through the paper's running examples (Figures 1, 2, 4, 5,
// 6 and 7), printing the compiler's mapping decisions for each so they can
// be compared with the text.
//
//	go run ./examples/figures
package main

import (
	"fmt"
	"log"

	"phpf"
)

var commentary = map[string]string{
	"figure1": "§2.1 — m is an induction variable (privatized without alignment),\n" +
		"x aligns with its consumer d(i+1), y with a producer a(i)/b(i),\n" +
		"z is privatized without alignment (its inputs are replicated).",
	"figure2": "§2.1 — p's consumer is a(i) (its subscript use is local);\n" +
		"q feeds a subscript that must be broadcast, so q stays replicated.",
	"figure4": "§2.2 — AlignLevel: the non-affine subscript s makes B(s,j,k)'s\n" +
		"alignment valid only from the k-loop inward.",
	"figure5": "§2.3 — the sum reduction's scalar s is replicated across the\n" +
		"second grid dimension and aligned with row i of A in the first.",
	"figure6": "§3.2 — partial privatization: c is partitioned in the grid\n" +
		"dimension of rsd's j dimension and privatized along the k dimension.",
	"figure7": "§4 — both IF statements transfer control only within the i-loop,\n" +
		"so they are privatized and the predicate b(i) needs no communication.",
}

func main() {
	for _, name := range phpf.FigureNames() {
		src, _ := phpf.FigureSource(name)
		c, err := phpf.Compile(src, 16, phpf.SelectedOptions())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("================ %s ================\n", name)
		fmt.Println(commentary[name])
		fmt.Println("--- mapping decisions ---")
		fmt.Print(c.MappingReport())
		fmt.Println("--- communication ---")
		if r := c.CommReport(); r != "" {
			fmt.Print(r)
		} else {
			fmt.Println("(none)")
		}
		fmt.Println()
	}
}
