// TOMCATV: reproduce the paper's Table 1 experiment at a configurable size
// — the mesh-generation kernel compiled with replication, producer
// alignment, and selected alignment, across processor counts.
//
//	go run ./examples/tomcatv [-n 129] [-iters 5]
package main

import (
	"flag"
	"fmt"
	"log"

	"phpf"
)

func main() {
	n := flag.Int("n", 129, "mesh size")
	iters := flag.Int("iters", 5, "iterations")
	flag.Parse()

	rows, err := phpf.Table1TOMCATV(*n, *iters, []int{1, 2, 4, 8, 16}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(phpf.FormatTable1(*n, *iters, rows))

	last := rows[len(rows)-1]
	fmt.Printf("\nAt 16 processors, selected alignment is %.0fx faster than replication\n",
		last.Replication.Seconds/last.Selected.Seconds)
	fmt.Printf("and %.0fx faster than producer alignment — the paper reports more than\n",
		last.Producer.Seconds/last.Selected.Seconds)
	fmt.Println("two orders of magnitude, and that only selected alignment yields speedups.")

	t1 := rows[0].Selected.Seconds
	fmt.Println("\nSpeedups (selected alignment):")
	for _, r := range rows {
		fmt.Printf("  P=%2d: %.2fx\n", r.Procs, t1/r.Selected.Seconds)
	}
}
