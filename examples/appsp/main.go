// APPSP: reproduce the paper's Table 3 experiment — the sweep kernel whose
// work array c is privatizable with respect to the k loop but not the j
// loop. The 1-D distribution needs full privatization plus transposes
// around the z sweep; the 2-D distribution needs partial privatization
// (partition the j dimension, privatize along k).
//
//	go run ./examples/appsp [-n 16] [-iters 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"phpf"
)

func main() {
	n := flag.Int("n", 16, "grid size per dimension")
	iters := flag.Int("iters", 3, "iterations")
	maxSec := flag.Float64("max", 100, "simulated-time abort threshold (s)")
	flag.Parse()

	rows, err := phpf.Table3APPSP(*n, *n, *n, *iters, []int{2, 4, 8, 16}, *maxSec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(phpf.FormatTable3(*n, *n, *n, *iters, rows))

	fmt.Println("\nShapes to compare with the paper:")
	fmt.Println(" - both no-privatization columns are far slower and degrade with P;")
	fmt.Println(" - the 2-D version starts faster at small P (no transposes) but the")
	fmt.Println("   1-D version overtakes it as P grows — exactly Table 3's crossover.")

	// Show the privatization decision for c under both distributions.
	for _, twoD := range []bool{false, true} {
		c, err := phpf.Compile(phpf.APPSPSource(*n, *n, *n, 1, twoD), 16, phpf.SelectedOptions())
		if err != nil {
			log.Fatal(err)
		}
		kind := "1-D"
		if twoD {
			kind = "2-D"
		}
		fmt.Printf("\nArray privatization under the %s distribution:\n", kind)
		for _, line := range []string{c.MappingReport()} {
			fmt.Print(line)
		}
	}
}
