// Quickstart: compile a small HPF-style program at two optimization levels
// and compare the compiler's mapping decisions and the simulated execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"phpf"
)

const source = `
program smooth
parameter n = 4096
parameter niter = 20
real u(n), v(n)
real left, right
integer i, it
!hpf$ align v(i) with u(i)
!hpf$ distribute (block) :: u
do i = 1, n
  u(i) = i * 0.001
end do
do it = 1, niter
  do i = 2, n-1
    left = u(i-1)
    right = u(i+1)
    v(i) = 0.25 * left + 0.5 * u(i) + 0.25 * right
  end do
  do i = 2, n-1
    u(i) = v(i)
  end do
end do
end
`

func main() {
	for _, cfg := range []struct {
		name string
		opts phpf.Options
	}{
		{"naive (all scalars replicated)", phpf.NaiveOptions()},
		{"selected alignment (the paper's algorithm)", phpf.SelectedOptions()},
	} {
		c, err := phpf.Compile(source, 16, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		out, err := c.Run(phpf.RunConfig{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n", cfg.name)
		fmt.Printf("   simulated time on 16 processors: %.4f s\n", out.Time)
		fmt.Printf("   communication: %v\n", out.Stats)
	}

	// Show what the compiler decided for the privatizable scalars.
	c, err := phpf.Compile(source, 16, phpf.SelectedOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== mapping decisions (selected alignment)")
	fmt.Print(c.MappingReport())
}
