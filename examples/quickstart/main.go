// Quickstart: compile a small HPF-style program at two optimization levels
// and compare the compiler's mapping decisions and the simulated execution.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"phpf"
)

var source = phpf.SmoothSource(4096, 20)

func main() {
	for _, cfg := range []struct {
		name string
		opts phpf.Options
	}{
		{"naive (all scalars replicated)", phpf.NaiveOptions()},
		{"selected alignment (the paper's algorithm)", phpf.SelectedOptions()},
	} {
		c, err := phpf.Compile(source, 16, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		out, err := c.Execute(context.Background(), phpf.Simulator(), phpf.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s\n", cfg.name)
		fmt.Printf("   simulated time on 16 processors: %.4f s\n", out.Time)
		fmt.Printf("   communication: %v\n", out.Stats)
	}

	// Show what the compiler decided for the privatizable scalars.
	c, err := phpf.Compile(source, 16, phpf.SelectedOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== mapping decisions (selected alignment)")
	fmt.Print(c.MappingReport())
}
