// DGEFA: reproduce the paper's Table 2 experiment — gaussian elimination
// with partial pivoting under a column-cyclic distribution, with and
// without the §2.3 reduction-variable alignment. The pivot search is a
// conditional maxloc reduction; aligning its variables confines the search
// to the processor owning the current column.
//
//	go run ./examples/dgefa [-n 128]
package main

import (
	"flag"
	"fmt"
	"log"

	"phpf"
)

func main() {
	n := flag.Int("n", 128, "matrix size")
	flag.Parse()

	rows, err := phpf.Table2DGEFA(*n, []int{2, 4, 8, 16}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(phpf.FormatTable2(*n, rows))

	fmt.Println("\nCommunication overhead share (default column):")
	for _, r := range rows {
		over := r.Default.Seconds - r.Aligned.Seconds
		fmt.Printf("  P=%2d: %.4f s overhead (%.0f%% of the default run)\n",
			r.Procs, over, 100*over/r.Default.Seconds)
	}
	fmt.Println("\nThe paper observes the overhead staying roughly constant while its")
	fmt.Println("share of the execution time grows with the processor count.")

	// Show where the pivot-search variables were placed.
	c, err := phpf.Compile(phpf.DGEFASource(*n), 8, phpf.SelectedOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMapping decisions (aligned compiler):")
	fmt.Print(c.MappingReport())
}
