package phpf

// Sensitivity tests: the reproduced orderings must not be artifacts of one
// particular machine-parameter point. Each claim is re-checked under
// faster/slower networks and CPUs.

import (
	"context"
	"testing"
)

func machineVariants() map[string]MachineParams {
	base := SP2Params()
	fastNet := base
	fastNet.Latency /= 4
	fastNet.Bandwidth *= 4
	slowNet := base
	slowNet.Latency *= 4
	slowNet.Bandwidth /= 4
	fastCPU := base
	fastCPU.FlopTime /= 8
	noGuard := base
	noGuard.GuardTime = 0
	return map[string]MachineParams{
		"sp2":      base,
		"fast-net": fastNet,
		"slow-net": slowNet,
		"fast-cpu": fastCPU,
		"no-guard": noGuard,
	}
}

func timeWith(t *testing.T, src string, procs int, opts Options, p MachineParams) float64 {
	t.Helper()
	c, err := Compile(src, procs, opts)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute(context.Background(), Simulator(), RunOptions{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	return out.Time
}

// TestTable1OrderingRobust: replication > producer > selected on TOMCATV
// under every machine variant.
func TestTable1OrderingRobust(t *testing.T) {
	src := TOMCATVSource(33, 2)
	for name, p := range machineVariants() {
		repl := timeWith(t, src, 8, NaiveOptions(), p)
		prod := timeWith(t, src, 8, ProducerOptions(), p)
		sel := timeWith(t, src, 8, SelectedOptions(), p)
		if !(sel < prod && prod < repl) {
			t.Errorf("%s: ordering violated: repl=%v prod=%v sel=%v", name, repl, prod, sel)
		}
	}
}

// TestTable3OrderingRobust: privatization beats no-privatization on APPSP
// under every machine variant.
func TestTable3OrderingRobust(t *testing.T) {
	src := APPSPSource(6, 12, 12, 1, true)
	noPartial := SelectedOptions()
	noPartial.PartialPrivatization = false
	for name, p := range machineVariants() {
		off := timeWith(t, src, 4, noPartial, p)
		on := timeWith(t, src, 4, SelectedOptions(), p)
		if on >= off {
			t.Errorf("%s: partial privatization (%v) should beat none (%v)", name, on, off)
		}
	}
}

// TestSelectedScalesEverywhere: the optimized compiler gives speedups from
// 1 to 16 processors under every variant, on a problem large enough that
// computation dominates (tiny problems on slow networks are legitimately
// latency-bound at 16 processors — also true on the real SP2).
func TestSelectedScalesEverywhere(t *testing.T) {
	src := TOMCATVSource(129, 2)
	for name, p := range machineVariants() {
		t1 := timeWith(t, src, 1, SelectedOptions(), p)
		t16 := timeWith(t, src, 16, SelectedOptions(), p)
		if t16 >= t1 {
			t.Errorf("%s: no speedup: t1=%v t16=%v", name, t1, t16)
		}
	}
}
