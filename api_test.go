package phpf

import (
	"context"
	"strings"
	"testing"
	"time"
)

func compileSmooth(t *testing.T, nprocs int) *Compiled {
	t.Helper()
	c, err := Compile(SmoothSource(64, 2), nprocs, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBackendInterface runs the same program through both backends via the
// unified Execute API: both reports must agree on the modeled time and
// stats, and carry their backend-specific extras.
func TestBackendInterface(t *testing.T) {
	c := compileSmooth(t, 4)
	ctx := context.Background()

	var reports []*Report
	for _, name := range Backends() {
		b, ok := BackendByName(name)
		if !ok {
			t.Fatalf("BackendByName(%q) failed", name)
		}
		if b.Name() != name {
			t.Fatalf("backend %q reports name %q", name, b.Name())
		}
		rep, err := c.Execute(ctx, b, RunOptions{Trace: &TraceOptions{}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Backend != name {
			t.Errorf("report names backend %q, want %q", rep.Backend, name)
		}
		if !rep.Trace.Enabled() {
			t.Errorf("%s: no trace recorded", name)
		}
		reports = append(reports, rep)
	}

	simRep, execRep := reports[0], reports[1]
	if simRep.Time != execRep.Time {
		t.Errorf("modeled time: sim %v, concurrent %v", simRep.Time, execRep.Time)
	}
	if simRep.Stats != execRep.Stats {
		t.Errorf("stats: sim %+v, concurrent %+v", simRep.Stats, execRep.Stats)
	}
	if execRep.Workers != 4 {
		t.Errorf("concurrent report has %d workers, want 4", execRep.Workers)
	}
	if execRep.TrafficMessages == 0 {
		t.Error("concurrent report counted no real traffic")
	}
	if simRep.Workers != 0 || simRep.TrafficMessages != 0 {
		t.Error("simulator report carries concurrent-only fields")
	}
}

// TestSimulatorContextCancel checks the simulator honors a cancelled
// context: the new entry point must abort mid-run with the context's error.
func TestSimulatorContextCancel(t *testing.T) {
	c, err := Compile(TOMCATVSource(129, 50), 8, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = c.Execute(ctx, Simulator(), RunOptions{})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if ctx.Err() == nil || !strings.Contains(err.Error(), ctx.Err().Error()) {
		t.Fatalf("error %v does not carry the context error %v", err, ctx.Err())
	}
}

// TestBackendRejectsForeignOptions checks each backend rejects the other's
// knobs with a coded E005 diagnostic instead of silently ignoring them.
func TestBackendRejectsForeignOptions(t *testing.T) {
	c := compileSmooth(t, 4)
	ctx := context.Background()
	cases := []struct {
		name string
		b    Backend
		opts RunOptions
	}{
		{"sim-workers", Simulator(), RunOptions{Workers: 4}},
		{"sim-stall", Simulator(), RunOptions{StallTimeout: time.Second}},
		{"sim-hard-crashes", Simulator(), RunOptions{HardCrashes: true}},
		{"concurrent-max", Concurrent(), RunOptions{MaxSeconds: 1}},
		{"concurrent-profile", Concurrent(), RunOptions{Profile: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Execute(ctx, tc.b, tc.opts)
			if err == nil {
				t.Fatal("expected an E005 configuration error")
			}
			if !strings.Contains(err.Error(), "E005") {
				t.Fatalf("error %v is not coded E005", err)
			}
		})
	}
}

// TestConcurrentFaultOptions: the concurrent backend accepts fault plans and
// checkpoint intervals (they were simulator-only before wall-clock fault
// tolerance landed) and reports its physical fault activity.
func TestConcurrentFaultOptions(t *testing.T) {
	c := compileSmooth(t, 4)
	ctx := context.Background()
	rep, err := c.Execute(ctx, Concurrent(), RunOptions{
		Fault: &FaultPlan{LossRate: 0.2, Seed: 1},
	})
	if err != nil {
		t.Fatalf("concurrent run with fault plan: %v", err)
	}
	if rep.WireDrops == 0 {
		t.Error("seeded loss plan dropped no real transmissions")
	}
	if rep.Stats.Retransmits == 0 {
		t.Error("seeded loss plan charged no modeled retransmits")
	}
	if _, err := c.Execute(ctx, Concurrent(), RunOptions{CheckpointInterval: 0.1}); err != nil {
		t.Fatalf("concurrent run with checkpointing: %v", err)
	}
}

// TestReduceModeValidation: the Reduce knob is range-checked with a coded
// E005 diagnostic, parses from its CLI names, and ReducePrivatize fails a
// program whose recognized reduction is collective-only.
func TestReduceModeValidation(t *testing.T) {
	if err := (RunOptions{Reduce: ReduceMode(99)}).Validate(); err == nil || !strings.Contains(err.Error(), "E005") {
		t.Fatalf("Reduce=99: got %v, want a coded E005 diagnostic", err)
	}
	for _, tc := range []struct {
		name string
		want ReduceMode
	}{
		{"auto", ReduceAuto},
		{"collective", ReduceCollective},
		{"privatize", ReducePrivatize},
	} {
		got, ok := ParseReduceMode(tc.name)
		if !ok || got != tc.want {
			t.Errorf("ParseReduceMode(%q) = %v, %v", tc.name, got, ok)
		}
	}
	if _, ok := ParseReduceMode("bogus"); ok {
		t.Error("ParseReduceMode accepted bogus")
	}
	// maxloc (reduction value + index) has no private per-element merge; a
	// demanded privatization must fail loudly on both backends.
	src := `
program m
parameter n = 64
real a(n)
real best
integer i, loc
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = i * 1.0
end do
best = a(1)
loc = 1
do i = 2, n
  if (a(i) > best) then
    best = a(i)
    loc = i
  end if
end do
end
`
	c, err := Compile(src, 4, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, b := range []Backend{Simulator(), Concurrent()} {
		if _, err := c.Execute(ctx, b, RunOptions{Reduce: ReducePrivatize}); err == nil || !strings.Contains(err.Error(), "E005") {
			t.Errorf("%s reduce=privatize on maxloc: got %v, want a coded E005 diagnostic", b.Name(), err)
		}
		if _, err := c.Execute(ctx, b, RunOptions{Reduce: ReduceAuto}); err != nil {
			t.Errorf("%s reduce=auto on maxloc: %v", b.Name(), err)
		}
	}

	// DGEFA's pivot reductions (a conditional max and its maxloc companion)
	// never get a combine attached — the demand must be validated against
	// the reduce plan itself, not just the attached combines.
	d, err := Compile(DGEFASource(32), 4, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{Simulator(), Concurrent()} {
		if _, err := d.Execute(ctx, b, RunOptions{Reduce: ReducePrivatize}); err == nil || !strings.Contains(err.Error(), "E005") {
			t.Errorf("%s reduce=privatize on DGEFA: got %v, want a coded E005 diagnostic", b.Name(), err)
		}
		if _, err := d.Execute(ctx, b, RunOptions{Reduce: ReduceAuto}); err != nil {
			t.Errorf("%s reduce=auto on DGEFA: %v", b.Name(), err)
		}
	}
}

// TestDiffTraced runs the unified Diff entry with tracing: the oracle must
// match, and extend its comparison to the event level.
func TestDiffTraced(t *testing.T) {
	c := compileSmooth(t, 4)
	rep, err := c.Diff(context.Background(), RunOptions{Trace: &TraceOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match() {
		t.Fatal(rep.String())
	}
	if !rep.Sim.Trace.Enabled() || !rep.Exec.Trace.Enabled() {
		t.Fatal("Diff with Trace set did not trace both backends")
	}
	if rep.Sim.Trace.CommMatrix().Total().Msgs == 0 {
		t.Error("sim trace matrix is empty for a communicating program")
	}
	// Faulted differential runs are supported (the same seeded plan goes to
	// both backends); HardCrashes is the one mode the oracle cannot compare.
	rep, err = c.Diff(context.Background(), RunOptions{
		Fault:              &FaultPlan{LossRate: 0.1, Seed: 3},
		CheckpointInterval: 1,
	})
	if err != nil {
		t.Fatalf("faulted Diff: %v", err)
	}
	if !rep.Match() {
		t.Fatal(rep.String())
	}
	if _, err := c.Diff(context.Background(), RunOptions{HardCrashes: true}); err == nil || !strings.Contains(err.Error(), "E005") {
		t.Fatalf("Diff with HardCrashes: got %v, want E005", err)
	}
}

// TestReduceStrategiesAgreeOnIntegers: an integer-valued sum is exact under
// any association, so the collective and privatized strategies must produce
// identical results (and the trace shows the strategy actually switched).
func TestReduceStrategiesAgreeOnIntegers(t *testing.T) {
	src := `
program s
parameter n = 128
real a(n)
real total
integer i
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = i * 1.0
end do
total = 0.0
do i = 1, n
  total = total + a(i)
end do
end
`
	c, err := Compile(src, 8, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	coll, err := c.Execute(ctx, Simulator(), RunOptions{Reduce: ReduceCollective, Trace: &TraceOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	priv, err := c.Execute(ctx, Simulator(), RunOptions{Reduce: ReducePrivatize, Trace: &TraceOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(128*129) / 2
	if coll.Scalars["total"] != want || priv.Scalars["total"] != want {
		t.Errorf("total: collective %v, privatized %v, want %v",
			coll.Scalars["total"], priv.Scalars["total"], want)
	}
	if coll.Stats.Merges != 0 || coll.Stats.Reductions == 0 {
		t.Errorf("collective stats: merges=%d reductions=%d", coll.Stats.Merges, coll.Stats.Reductions)
	}
	if priv.Stats.Merges == 0 || priv.Stats.Reductions != 0 {
		t.Errorf("privatized stats: merges=%d reductions=%d", priv.Stats.Merges, priv.Stats.Reductions)
	}
	if priv.Trace.MergedCount() == 0 {
		t.Error("privatized trace recorded no merged partials")
	}
}
