package phpf

import (
	"context"
	"strings"
	"testing"
	"time"
)

func compileSmooth(t *testing.T, nprocs int) *Compiled {
	t.Helper()
	c, err := Compile(SmoothSource(64, 2), nprocs, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBackendInterface runs the same program through both backends via the
// unified Execute API: both reports must agree on the modeled time and
// stats, and carry their backend-specific extras.
func TestBackendInterface(t *testing.T) {
	c := compileSmooth(t, 4)
	ctx := context.Background()

	var reports []*Report
	for _, name := range Backends() {
		b, ok := BackendByName(name)
		if !ok {
			t.Fatalf("BackendByName(%q) failed", name)
		}
		if b.Name() != name {
			t.Fatalf("backend %q reports name %q", name, b.Name())
		}
		rep, err := c.Execute(ctx, b, RunOptions{Trace: &TraceOptions{}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Backend != name {
			t.Errorf("report names backend %q, want %q", rep.Backend, name)
		}
		if !rep.Trace.Enabled() {
			t.Errorf("%s: no trace recorded", name)
		}
		reports = append(reports, rep)
	}

	simRep, execRep := reports[0], reports[1]
	if simRep.Time != execRep.Time {
		t.Errorf("modeled time: sim %v, concurrent %v", simRep.Time, execRep.Time)
	}
	if simRep.Stats != execRep.Stats {
		t.Errorf("stats: sim %+v, concurrent %+v", simRep.Stats, execRep.Stats)
	}
	if execRep.Workers != 4 {
		t.Errorf("concurrent report has %d workers, want 4", execRep.Workers)
	}
	if execRep.TrafficMessages == 0 {
		t.Error("concurrent report counted no real traffic")
	}
	if simRep.Workers != 0 || simRep.TrafficMessages != 0 {
		t.Error("simulator report carries concurrent-only fields")
	}
}

// TestSimulatorContextCancel checks the simulator honors a cancelled
// context: the new entry point must abort mid-run with the context's error.
func TestSimulatorContextCancel(t *testing.T) {
	c, err := Compile(TOMCATVSource(129, 50), 8, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = c.Execute(ctx, Simulator(), RunOptions{})
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if ctx.Err() == nil || !strings.Contains(err.Error(), ctx.Err().Error()) {
		t.Fatalf("error %v does not carry the context error %v", err, ctx.Err())
	}
}

// TestBackendRejectsForeignOptions checks each backend rejects the other's
// knobs with a coded E005 diagnostic instead of silently ignoring them.
func TestBackendRejectsForeignOptions(t *testing.T) {
	c := compileSmooth(t, 4)
	ctx := context.Background()
	cases := []struct {
		name string
		b    Backend
		opts RunOptions
	}{
		{"sim-workers", Simulator(), RunOptions{Workers: 4}},
		{"sim-stall", Simulator(), RunOptions{StallTimeout: time.Second}},
		{"sim-hard-crashes", Simulator(), RunOptions{HardCrashes: true}},
		{"concurrent-max", Concurrent(), RunOptions{MaxSeconds: 1}},
		{"concurrent-profile", Concurrent(), RunOptions{Profile: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Execute(ctx, tc.b, tc.opts)
			if err == nil {
				t.Fatal("expected an E005 configuration error")
			}
			if !strings.Contains(err.Error(), "E005") {
				t.Fatalf("error %v is not coded E005", err)
			}
		})
	}
}

// TestConcurrentFaultOptions: the concurrent backend accepts fault plans and
// checkpoint intervals (they were simulator-only before wall-clock fault
// tolerance landed) and reports its physical fault activity.
func TestConcurrentFaultOptions(t *testing.T) {
	c := compileSmooth(t, 4)
	ctx := context.Background()
	rep, err := c.Execute(ctx, Concurrent(), RunOptions{
		Fault: &FaultPlan{LossRate: 0.2, Seed: 1},
	})
	if err != nil {
		t.Fatalf("concurrent run with fault plan: %v", err)
	}
	if rep.WireDrops == 0 {
		t.Error("seeded loss plan dropped no real transmissions")
	}
	if rep.Stats.Retransmits == 0 {
		t.Error("seeded loss plan charged no modeled retransmits")
	}
	if _, err := c.Execute(ctx, Concurrent(), RunOptions{CheckpointInterval: 0.1}); err != nil {
		t.Fatalf("concurrent run with checkpointing: %v", err)
	}
}

// TestDiffBackendsRejectsFaultyConfig pins the bugfix: the deprecated
// DiffBackends entry must validate the simulator config instead of silently
// forwarding fault injection or checkpointing into the oracle.
func TestDiffBackendsRejectsFaultyConfig(t *testing.T) {
	c := compileSmooth(t, 4)
	ctx := context.Background()
	_, err := c.DiffBackends(ctx, RunConfig{Fault: &FaultPlan{LossRate: 0.5, Seed: 7}}, ExecConfig{})
	if err == nil || !strings.Contains(err.Error(), "E005") {
		t.Fatalf("fault plan: got %v, want a coded E005 diagnostic", err)
	}
	_, err = c.DiffBackends(ctx, RunConfig{CheckpointInterval: 0.5}, ExecConfig{})
	if err == nil || !strings.Contains(err.Error(), "E005") {
		t.Fatalf("checkpointing: got %v, want a coded E005 diagnostic", err)
	}
}

// TestDiffTraced runs the unified Diff entry with tracing: the oracle must
// match, and extend its comparison to the event level.
func TestDiffTraced(t *testing.T) {
	c := compileSmooth(t, 4)
	rep, err := c.Diff(context.Background(), RunOptions{Trace: &TraceOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match() {
		t.Fatal(rep.String())
	}
	if !rep.Sim.Trace.Enabled() || !rep.Exec.Trace.Enabled() {
		t.Fatal("Diff with Trace set did not trace both backends")
	}
	if rep.Sim.Trace.CommMatrix().Total().Msgs == 0 {
		t.Error("sim trace matrix is empty for a communicating program")
	}
	// Faulted differential runs are supported (the same seeded plan goes to
	// both backends); HardCrashes is the one mode the oracle cannot compare.
	rep, err = c.Diff(context.Background(), RunOptions{
		Fault:              &FaultPlan{LossRate: 0.1, Seed: 3},
		CheckpointInterval: 1,
	})
	if err != nil {
		t.Fatalf("faulted Diff: %v", err)
	}
	if !rep.Match() {
		t.Fatal(rep.String())
	}
	if _, err := c.Diff(context.Background(), RunOptions{HardCrashes: true}); err == nil || !strings.Contains(err.Error(), "E005") {
		t.Fatalf("Diff with HardCrashes: got %v, want E005", err)
	}
}

// TestDeprecatedWrappers checks the pre-Backend entry points still work and
// agree with the unified API.
func TestDeprecatedWrappers(t *testing.T) {
	c := compileSmooth(t, 4)
	ctx := context.Background()

	old, err := c.Run(RunConfig{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Execute(ctx, Simulator(), RunOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if old.Time != rep.Time || old.Stats != rep.Stats {
		t.Errorf("Run and Execute disagree: %v/%v vs %v/%v", old.Time, old.Stats, rep.Time, rep.Stats)
	}

	oldc, err := c.RunConcurrent(ctx, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if oldc.Time != rep.Time {
		t.Errorf("RunConcurrent time %v, want %v", oldc.Time, rep.Time)
	}

	// The hot-statement formatter and its deprecated alias render the same
	// table.
	if FormatProfile(old.Profile, 5) != FormatHotStatements(rep.HotStatements, 5) {
		t.Error("FormatProfile and FormatHotStatements disagree")
	}
	if len(rep.HotStatements) == 0 {
		t.Error("Profile run returned no hot statements")
	}
}
