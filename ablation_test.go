package phpf

// Ablation tests: each design choice DESIGN.md calls out is toggled off and
// the regression measured, confirming the mechanism (not just the headline
// numbers) drives the results.

import (
	"context"
	"testing"
)

// TestAblationVectorization: without message vectorization the TOMCATV
// stencil shifts degrade to per-iteration messages.
func TestAblationVectorization(t *testing.T) {
	src := TOMCATVSource(33, 2)
	on, err := runCell(src, 8, SelectedOptions(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := SelectedOptions()
	opts.DisableVectorization = true
	off, err := runCell(src, 8, opts, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off.Seconds <= on.Seconds {
		t.Errorf("vectorization off (%v) should be slower than on (%v)",
			off.Seconds, on.Seconds)
	}
	if off.Seconds < 2*on.Seconds {
		t.Errorf("vectorization should matter substantially: off=%v on=%v",
			off.Seconds, on.Seconds)
	}
}

// TestAblationDependenceTest: without the Banerjee-style test, DGEFA's
// pivot-column broadcast cannot be hoisted out of the update loops.
func TestAblationDependenceTest(t *testing.T) {
	src := DGEFASource(64)
	on, err := runCell(src, 8, SelectedOptions(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := SelectedOptions()
	opts.DisableDependenceTest = true
	off, err := runCell(src, 8, opts, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off.Seconds <= on.Seconds {
		t.Errorf("dependence test off (%v) should be slower than on (%v)",
			off.Seconds, on.Seconds)
	}
}

// TestAblationControlPrivatization: executing predicates on every processor
// forces broadcasts of the predicate data (Figure 7's point).
func TestAblationControlPrivatization(t *testing.T) {
	src, _ := FigureSource("figure7")
	on, err := runCell(src, 8, SelectedOptions(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := SelectedOptions()
	opts.PrivatizeControlFlow = false
	off, err := runCell(src, 8, opts, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off.Seconds <= on.Seconds {
		t.Errorf("control privatization off (%v) should be slower than on (%v)",
			off.Seconds, on.Seconds)
	}
	if off.Stats.Broadcasts == 0 {
		t.Error("unprivatized predicates should broadcast")
	}
	if on.Stats.Broadcasts != 0 {
		t.Errorf("privatized predicates should not broadcast: %+v", on.Stats)
	}
}

// TestAblationValuesUnchanged: ablations may change time, never results.
func TestAblationValuesUnchanged(t *testing.T) {
	src := DGEFASource(16)
	base, err := Compile(src, 4, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	baseOut, err := base.Execute(context.Background(), Simulator(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mod := range []func(*Options){
		func(o *Options) { o.DisableVectorization = true },
		func(o *Options) { o.DisableDependenceTest = true },
		func(o *Options) { o.PrivatizeControlFlow = false },
		func(o *Options) { o.AlignReductions = false },
	} {
		opts := SelectedOptions()
		mod(&opts)
		c, err := Compile(src, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Execute(context.Background(), Simulator(), RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		a, b := out.Arrays["a"], baseOut.Arrays["a"]
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("values differ at %d under ablation", i)
			}
		}
	}
}
