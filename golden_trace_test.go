package phpf

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// goldenTrace runs figure1 on the simulator with tracing and renders the
// deterministic event stream.
func goldenTrace(t *testing.T) string {
	t.Helper()
	src, ok := FigureSource("figure1")
	if !ok {
		t.Fatal("figure1 missing")
	}
	c, err := Compile(src, 4, SelectedOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rep, err := c.Execute(context.Background(), Simulator(), RunOptions{Trace: &TraceOptions{}})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return rep.Trace.FormatEvents() + "\n" + rep.Trace.Summary()
}

// TestGoldenTrace locks down the simulator's traced event stream for
// figure1: simulated time is deterministic, so the rendered trace — every
// event with its timestamp, endpoints, class, and attribution, plus the
// exact aggregate summary — must be byte-identical to the checked-in golden
// file. Run with -update after an intentional cost-model or tracing change.
func TestGoldenTrace(t *testing.T) {
	got := goldenTrace(t)
	path := filepath.Join("testdata", "traces", "figure1.trace.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestGoldenTrace -update .`): %v", err)
	}
	if got != string(want) {
		t.Errorf("figure1 trace deviates from %s\n--- got ---\n%s--- want ---\n%s",
			path, got, string(want))
	}
}

// TestGoldenTraceStability traces figure1 twice and requires byte-identical
// renderings, independent of the golden file.
func TestGoldenTraceStability(t *testing.T) {
	if a, b := goldenTrace(t), goldenTrace(t); a != b {
		t.Error("figure1 trace differs between two runs")
	}
}
