#!/bin/sh
# Tier-1 gate: build, vet, race-detected tests, and a short-budget fuzz
# smoke over the front end. Mirrors `make check` for environments without
# make.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Fuzz smoke: a small budget per front-end target, enough to catch gross
# regressions in the robustness contracts (never panic, positioned errors)
# without turning the gate into a fuzzing campaign. Go allows one -fuzz
# target per invocation, so each runs separately.
fuzztime="${FUZZTIME:-10s}"
go test -run=^$ -fuzz=FuzzLex -fuzztime="$fuzztime" ./internal/lexer
go test -run=^$ -fuzz=FuzzParse -fuzztime="$fuzztime" ./internal/parser

# Golden gate: the -dump-after snapshots of the paper figures AND the
# simulator's rendered runtime trace of figure1 (testdata/traces/) must
# match the checked-in golden files byte for byte (determinism + stability
# of the pass pipeline's textual form and of the trace layer's event
# stream). `go test -update .` refreshes them after an intentional change.
go test -run '^TestGolden' .

echo "check: OK"
