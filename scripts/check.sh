#!/bin/sh
# Tier-1 gate: build, vet, race-detected tests, and a short-budget fuzz
# smoke over the front end. Mirrors `make check` for environments without
# make.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...

# Deprecated-API gate: the legacy execution surface (Compiled.Run,
# Compiled.RunConcurrent, Compiled.DiffBackends, FormatProfile, and the
# RunConfig/RunResult/ExecConfig/ExecResult types) was retired in favor of
# Execute/Diff + RunOptions. Fail if any such declaration reappears —
# matching declarations only, so prose mentions in doc comments stay legal.
if grep -rnE 'func \(c \*Compiled\) (Run|RunConcurrent|DiffBackends|FormatProfile)\(|\b(type|func) +(RunConfig|RunResult|ExecConfig|ExecResult|DiffBackends|FormatProfile)\b' \
    --include='*.go' .; then
    echo "check: deprecated execution API symbols reappeared (use Execute/Diff + RunOptions)" >&2
    exit 1
fi

# Fuzz smoke: a small budget per front-end target, enough to catch gross
# regressions in the robustness contracts (never panic, positioned errors)
# without turning the gate into a fuzzing campaign. Go allows one -fuzz
# target per invocation, so each runs separately.
fuzztime="${FUZZTIME:-10s}"
go test -run=^$ -fuzz=FuzzLex -fuzztime="$fuzztime" ./internal/lexer
go test -run=^$ -fuzz=FuzzParse -fuzztime="$fuzztime" ./internal/parser
go test -run=^$ -fuzz=FuzzParseCrashes -fuzztime="$fuzztime" ./internal/fault
go test -run=^$ -fuzz=FuzzParseSlowdowns -fuzztime="$fuzztime" ./internal/fault
go test -run=^$ -fuzz=FuzzServeRequest -fuzztime="$fuzztime" ./internal/serve
go test -run=^$ -fuzz=FuzzAutoPriv -fuzztime="$fuzztime" .

# Chaos gate: every seeded fault plan (loss, duplication, slowdown,
# checkpointing, mid-loop fail-stop healed by checkpoint/restart, and the
# mix) physically injected into the concurrent executor under -race must
# agree bitwise with the simulator under the identical plan — results,
# fault-accounting statistics, and per-class trace event counts.
# CHAOS_SKIP=1 skips the gate (the matrix runs real retransmission timers,
# so it needs a few wall-clock seconds).
if [ "${CHAOS_SKIP:-0}" != "1" ]; then
    go test -race -run '^TestChaosMatrix$' -count=1 ./internal/exec
fi

# Golden gate: the -dump-after snapshots of the paper figures AND the
# simulator's rendered runtime trace of figure1 (testdata/traces/) must
# match the checked-in golden files byte for byte (determinism + stability
# of the pass pipeline's textual form and of the trace layer's event
# stream). `go test -update .` refreshes them after an intentional change.
go test -run '^TestGolden' .

# Bench-regression gate: smoke-run the hot-path benchmark suite and fail on
# >15% ns/op regression against the last committed BENCH_<n>.json baseline
# (scripts/bench.sh appends the next trajectory point after an intentional
# performance change; commit it to move the baseline). BENCH_SKIP=1 skips
# the gate (e.g. on heavily loaded machines where timings are meaningless).
if [ "${BENCH_SKIP:-0}" != "1" ]; then
    scripts/bench.sh check
fi

# Serve smoke: boot phpfserve on a random port and drive it with phpfload —
# zero 5xx under a sustained mixed burst (chaos + malformed fractions),
# real 429 shedding under forced overload, graceful drain on SIGTERM with
# the final metrics flushed. SERVE_SKIP=1 skips (scripts/serve_smoke.sh).
if [ "${SERVE_SKIP:-0}" != "1" ]; then
    scripts/serve_smoke.sh
fi

echo "check: OK"
