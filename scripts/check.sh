#!/bin/sh
# Tier-1 gate: build, vet, and race-detected tests. Mirrors `make check`
# for environments without make.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
echo "check: OK"
