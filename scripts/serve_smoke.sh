#!/bin/sh
# Serve smoke: the end-to-end robustness gate for phpfserve.
#
# Boots the server on a random port, then drives it with cmd/phpfload:
#
#   1. a sustained mixed burst (figures x strategies x backends, a chaos
#      fraction routed through the fault layer, a malformed fraction) —
#      well-formed requests must never answer 5xx;
#   2. a forced overload (concurrency far past one tenant's slots) — the
#      server must shed with 429s instead of queueing without bound;
#   3. a SIGTERM — the server must drain gracefully, flush its final
#      metrics snapshot, and exit 0.
#
# Environment knobs:
#   SERVE_SKIP=1     skip the gate entirely
#   SERVE_BURST      burst 1 duration (default 5s)
set -eu
cd "$(dirname "$0")/.."

if [ "${SERVE_SKIP:-0}" = "1" ]; then
    echo "serve_smoke: skipped (SERVE_SKIP=1)"
    exit 0
fi

work=".tmp/serve_smoke"
rm -rf "$work"
mkdir -p "$work"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/phpfserve" ./cmd/phpfserve
go build -o "$work/phpfload" ./cmd/phpfload

"$work/phpfserve" -addr 127.0.0.1:0 -chaos \
    >"$work/serve.out" 2>"$work/serve.err" &
pid=$!

# The server announces its resolved address on stdout.
addr=""
i=0
while [ $i -lt 100 ]; do
    addr="$(sed -n 's/^phpfserve listening on //p' "$work/serve.out")"
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || {
        echo "serve_smoke: phpfserve died on startup" >&2
        cat "$work/serve.err" >&2
        exit 1
    }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || {
    echo "serve_smoke: server never announced its port" >&2
    exit 1
}

echo "serve_smoke: burst 1 — sustained mixed load (chaos + malformed), zero 5xx required"
"$work/phpfload" -addr "http://$addr" -c 16 -duration "${SERVE_BURST:-5s}" \
    -chaos 0.1 -diff 0.05 -bad 0.05 -fail-on-5xx

echo "serve_smoke: burst 2 — forced overload, shedding required"
"$work/phpfload" -addr "http://$addr" -c 128 -tenants 1 -duration 2s \
    -fail-on-5xx -require-shed

echo "serve_smoke: SIGTERM — graceful drain required"
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
pid=""
if [ "$status" -ne 0 ]; then
    echo "serve_smoke: phpfserve exited $status after SIGTERM, want 0" >&2
    cat "$work/serve.err" >&2
    exit 1
fi
grep -q "final metrics" "$work/serve.err" || {
    echo "serve_smoke: drain did not flush the final metrics snapshot" >&2
    cat "$work/serve.err" >&2
    exit 1
}

echo "serve_smoke: OK"
