#!/bin/sh
# Benchmark-regression harness for the hot-path suite.
#
#   scripts/bench.sh            run the suite, append the next BENCH_<n>.json
#   scripts/bench.sh check      smoke-run and fail on >15% ns/op regression
#                               against the last committed BENCH_<n>.json
#
# Environment knobs:
#   BENCH_PATTERN   benchmark regexp   (default: the Table + throughput suite)
#   BENCHTIME       go test -benchtime (default: 1s; check mode: 0.5s)
#   BENCH_COUNT     go test -count     (default: 3; the JSON keeps the
#                   per-benchmark minimum, the least-noisy estimate)
#   BENCH_OUT       output file        (default: next free BENCH_<n>.json)
#   BENCH_TOLERANCE allowed fractional ns/op regression in check mode
#                   (default: 0.15)
set -eu
cd "$(dirname "$0")/.."

pattern="${BENCH_PATTERN:-^(BenchmarkTable|BenchmarkSimulatorThroughput|BenchmarkRecoveryOverhead|BenchmarkServe|BenchmarkCompileInfer|BenchmarkReducePrivatization)}"
mode="${1:-run}"

# last_baseline prints the highest-numbered BENCH_<n>.json known to git.
last_baseline() {
    git ls-files 'BENCH_*.json' | sed -n 's/^BENCH_\([0-9]*\)\.json$/\1/p' |
        sort -n | tail -1
}

run_suite() {
    go test -run '^$' -bench "$pattern" -benchmem \
        -benchtime "${BENCHTIME:-1s}" -count "${BENCH_COUNT:-3}" .
}

case "$mode" in
run)
    out="${BENCH_OUT:-}"
    if [ -z "$out" ]; then
        n=0
        while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
        out="BENCH_${n}.json"
    fi
    run_suite | tee /dev/stderr | go run ./cmd/benchjson emit -o "$out"
    ;;
check)
    n="$(last_baseline)"
    if [ -z "$n" ]; then
        echo "bench.sh: no committed BENCH_<n>.json baseline; run scripts/bench.sh and commit the result" >&2
        exit 1
    fi
    base="BENCH_${n}.json"
    tmp="$(mktemp)"
    trap 'rm -f "$tmp"' EXIT
    BENCHTIME="${BENCHTIME:-0.5s}" BENCH_COUNT="${BENCH_COUNT:-3}" run_suite |
        go run ./cmd/benchjson emit -o "$tmp"
    echo "bench.sh: comparing against $base (tolerance ${BENCH_TOLERANCE:-0.15})"
    go run ./cmd/benchjson compare -tolerance "${BENCH_TOLERANCE:-0.15}" "$base" "$tmp"
    ;;
*)
    echo "usage: scripts/bench.sh [run|check]" >&2
    exit 2
    ;;
esac
