package phpf

import (
	"context"
	"math"
	"strings"
	"testing"

	"phpf/internal/programs"
)

// TestStrippedFiguresCompileInferMode: the directive-stripped figure copies
// carry no privatization assertions, yet compile cleanly with inference on.
func TestStrippedFiguresCompileInferMode(t *testing.T) {
	for _, name := range FigureNames() {
		src := programs.FiguresUnannotated[name]
		if src == "" {
			t.Fatalf("%s: no unannotated copy", name)
		}
		low := strings.ToLower(src)
		if strings.Contains(low, "independent") || strings.Contains(low, "nodeps") {
			t.Errorf("%s: privatization directive survived stripping:\n%s", name, src)
		}
		if _, err := Compile(src, 8, SelectedOptions()); err != nil {
			t.Errorf("%s: infer-mode compile of the stripped copy failed: %v", name, err)
		}
	}
}

// TestInferMatchesAnnotated is the acceptance oracle: every figure and every
// evaluation kernel compiled from its directive-stripped source in infer mode
// must run bitwise identically to the hand-annotated original — on the
// simulator across processor counts, and on the concurrent executor via the
// differential oracle. Programs that cannot execute on zero-initialized data
// (figure2/figure4 index arrays with values read from memory) must at least
// fail identically in both modes.
func TestInferMatchesAnnotated(t *testing.T) {
	ctx := context.Background()
	sources := []struct{ name, src string }{
		{"tomcatv", TOMCATVSource(17, 2)},
		{"dgefa", DGEFASource(24)},
		{"appsp-1d", APPSPSource(6, 6, 6, 1, false)},
		{"appsp-2d", APPSPSource(6, 6, 6, 1, true)},
	}
	for _, name := range FigureNames() {
		src, _ := FigureSource(name)
		sources = append(sources, struct{ name, src string }{name, src})
	}
	for _, tc := range sources {
		t.Run(tc.name, func(t *testing.T) {
			stripped := programs.StripPrivatization(tc.src)
			runnable := true
			for _, procs := range []int{1, 4, 8} {
				ca, err := Compile(tc.src, procs, SelectedOptions())
				if err != nil {
					t.Fatalf("P=%d annotated: %v", procs, err)
				}
				cs, err := Compile(stripped, procs, SelectedOptions())
				if err != nil {
					t.Fatalf("P=%d stripped: %v", procs, err)
				}
				ra, errA := ca.Execute(ctx, Simulator(), RunOptions{})
				rs, errS := cs.Execute(ctx, Simulator(), RunOptions{})
				if errA != nil || errS != nil {
					runnable = false
					if (errA == nil) != (errS == nil) {
						t.Fatalf("P=%d: annotated run err %v, stripped run err %v", procs, errA, errS)
					}
					continue // fails identically in both modes (e.g. OOB on zero data)
				}
				compareReports(t, procs, ra, rs)
			}
			if !runnable {
				return
			}
			// Concurrent executor vs simulator on the inferred mapping.
			cs, err := Compile(stripped, 4, SelectedOptions())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := cs.Diff(ctx, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Match() {
				t.Errorf("differential oracle mismatch on inferred mapping:\n%s", rep)
			}
		})
	}
}

// compareReports asserts bitwise-equal final memory between two runs (NaNs
// compare by bit pattern, so identical NaN payloads pass).
func compareReports(t *testing.T, procs int, a, b *Report) {
	t.Helper()
	bitsEq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	for name, av := range a.Scalars {
		if bv, ok := b.Scalars[name]; !ok || !bitsEq(av, bv) {
			t.Errorf("P=%d scalar %s: annotated %v, inferred %v", procs, name, av, bv)
		}
	}
	if len(a.Scalars) != len(b.Scalars) {
		t.Errorf("P=%d scalar sets differ: %d vs %d", procs, len(a.Scalars), len(b.Scalars))
	}
	for name, av := range a.Arrays {
		bv := b.Arrays[name]
		if len(av) != len(bv) {
			t.Errorf("P=%d array %s: lengths %d vs %d", procs, name, len(av), len(bv))
			continue
		}
		for i := range av {
			if !bitsEq(av[i], bv[i]) {
				t.Errorf("P=%d array %s[%d]: annotated %v, inferred %v", procs, name, i, av[i], bv[i])
				break
			}
		}
	}
	if len(a.Arrays) != len(b.Arrays) {
		t.Errorf("P=%d array sets differ: %d vs %d", procs, len(a.Arrays), len(b.Arrays))
	}
}

// TestAutoPrivatizeArraysAlias pins the deprecated option spelling: setting
// AutoPrivatizeArrays must behave exactly like Privatization: PrivInfer, and
// an explicit non-default Privatization wins over the alias.
func TestAutoPrivatizeArraysAlias(t *testing.T) {
	legacy := SelectedOptions()
	legacy.Privatization = PrivDirectives
	legacy.AutoPrivatizeArrays = true
	if got := legacy.PrivatizationMode(); got != PrivInfer {
		t.Fatalf("AutoPrivatizeArrays alias resolves to %v, want PrivInfer", got)
	}
	strict := legacy
	strict.Privatization = PrivInferStrict
	if got := strict.PrivatizationMode(); got != PrivInferStrict {
		t.Fatalf("explicit Privatization should win over the alias, got %v", got)
	}
	if got := SelectedOptions().PrivatizationMode(); got != PrivInfer {
		t.Fatalf("SelectedOptions default mode = %v, want PrivInfer", got)
	}

	// Both spellings must produce the identical compiled program.
	src := `
program sweep
parameter n = 64
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`
	modern := SelectedOptions()
	modern.Privatization = PrivInfer
	cLegacy, err := Compile(src, 8, legacy)
	if err != nil {
		t.Fatal(err)
	}
	cModern, err := Compile(src, 8, modern)
	if err != nil {
		t.Fatal(err)
	}
	if dl, dm := cLegacy.DumpSPMD(), cModern.DumpSPMD(); dl != dm {
		t.Errorf("alias and new spelling compile differently:\n--- legacy ---\n%s--- modern ---\n%s", dl, dm)
	}
}

// FuzzAutoPriv: infer-mode compilation must never panic, and whenever both
// directive mode and infer mode accept a program, their runs must agree
// bitwise on final memory (inference may only remove communication, never
// change semantics).
func FuzzAutoPriv(f *testing.F) {
	for _, name := range FigureNames() {
		src, _ := FigureSource(name)
		f.Add(src)
		f.Add(programs.FiguresUnannotated[name])
	}
	f.Add(SmoothSource(16, 2))
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		dirOpts := SelectedOptions()
		dirOpts.Privatization = PrivDirectives
		infOpts := SelectedOptions()
		infOpts.Privatization = PrivInfer
		cDir, errDir := Compile(src, 4, dirOpts)
		cInf, errInf := Compile(src, 4, infOpts)
		if (errDir == nil) != (errInf == nil) {
			t.Fatalf("modes disagree on acceptance: directives=%v infer=%v", errDir, errInf)
		}
		if errDir != nil {
			t.Skip("rejected in both modes")
		}
		run := RunOptions{MaxSeconds: 5, MaxCells: 1 << 16}
		rDir, errDir := cDir.Execute(context.Background(), Simulator(), run)
		rInf, errInf := cInf.Execute(context.Background(), Simulator(), run)
		if errDir != nil || errInf != nil {
			// Resource-bound aborts (cell limit) are acceptable in either
			// mode; semantics are only comparable on completed runs.
			t.Skip("bounded run")
		}
		if rDir.Aborted || rInf.Aborted {
			t.Skip("time-bounded run")
		}
		compareReports(t, 4, rDir, rInf)
	})
}
