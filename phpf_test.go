package phpf

import (
	"context"
	"strings"
	"testing"
)

func TestCompileAndRunQuickstart(t *testing.T) {
	src := `
program quick
parameter n = 64
real a(n), b(n)
real x
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 2, n-1
  x = b(i-1) + b(i+1)
  a(i) = x * 0.5
end do
end
`
	c, err := Compile(src, 8, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute(context.Background(), Simulator(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Time <= 0 {
		t.Error("time should be positive")
	}
	if out.Arrays["a"] == nil {
		t.Error("final memory missing")
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("program t\nx = 1\nend\n", 4, SelectedOptions()); err == nil {
		t.Error("expected error for undeclared variable")
	}
	if _, err := Compile("program t\n(((\nend\n", 4, SelectedOptions()); err == nil {
		t.Error("expected parse error")
	}
}

func TestReports(t *testing.T) {
	src, ok := FigureSource("figure1")
	if !ok {
		t.Fatal("figure1 missing")
	}
	c, err := Compile(src, 16, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	mr := c.MappingReport()
	for _, want := range []string{"grid", "aligned", "private-noalign", "induction m"} {
		if !strings.Contains(mr, want) {
			t.Errorf("mapping report missing %q:\n%s", want, mr)
		}
	}
	cr := c.CommReport()
	if !strings.Contains(cr, "shift") {
		t.Errorf("comm report missing shifts:\n%s", cr)
	}
	dump := c.DumpSPMD()
	if !strings.Contains(dump, "do i") || !strings.Contains(dump, "owner(") {
		t.Errorf("SPMD dump incomplete:\n%s", dump)
	}
}

func TestFigureNames(t *testing.T) {
	names := FigureNames()
	if len(names) != 6 {
		t.Errorf("figures = %v", names)
	}
	for _, n := range names {
		if _, ok := FigureSource(n); !ok {
			t.Errorf("figure %s missing", n)
		}
	}
	if _, ok := FigureSource("nope"); ok {
		t.Error("unknown figure should be reported missing")
	}
}

func TestOptionPresets(t *testing.T) {
	if NaiveOptions().Scalars != ScalarsReplicated || NaiveOptions().AlignReductions {
		t.Error("NaiveOptions wrong")
	}
	if ProducerOptions().Scalars != ScalarsProducerAligned {
		t.Error("ProducerOptions wrong")
	}
	if SelectedOptions().Scalars != ScalarsSelected || !SelectedOptions().PartialPrivatization {
		t.Error("SelectedOptions wrong")
	}
}

func TestTable1Small(t *testing.T) {
	rows, err := Table1TOMCATV(17, 1, []int{1, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At 4 processors the paper's ordering holds.
	r := rows[1]
	if !(r.Selected.Seconds < r.Producer.Seconds && r.Producer.Seconds < r.Replication.Seconds) {
		t.Errorf("ordering violated: %+v", r)
	}
	s := FormatTable1(17, 1, rows)
	if !strings.Contains(s, "Replication") || !strings.Contains(s, "#Procs") {
		t.Errorf("format:\n%s", s)
	}
}

func TestTable2Small(t *testing.T) {
	rows, err := Table2DGEFA(48, []int{2, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Aligned.Seconds > r.Default.Seconds*(1+1e-6) {
			t.Errorf("aligned should never lose at P=%d: %+v", r.Procs, r)
		}
	}
	// The gap grows with the processor count (the paper's "increasing
	// percentage of the execution time").
	last := rows[len(rows)-1]
	if last.Aligned.Seconds >= last.Default.Seconds {
		t.Errorf("aligned should win at P=%d: %+v", last.Procs, last)
	}
	if s := FormatTable2(48, rows); !strings.Contains(s, "Alignment") {
		t.Errorf("format:\n%s", s)
	}
}

func TestTable3Small(t *testing.T) {
	rows, err := Table3APPSP(4, 8, 8, 1, []int{4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.OneDPriv.Seconds >= r.OneDNoPriv.Seconds {
		t.Errorf("1-D privatization should win: %+v", r)
	}
	if r.TwoDPartial.Seconds >= r.TwoDNoPartial.Seconds {
		t.Errorf("2-D partial privatization should win: %+v", r)
	}
	if s := FormatTable3(4, 8, 8, 1, rows); !strings.Contains(s, "Partial") {
		t.Errorf("format:\n%s", s)
	}
}

func TestCellAbortedString(t *testing.T) {
	c := Cell{Seconds: 100, Aborted: true}
	if got := c.String(); !strings.Contains(got, "aborted") {
		t.Errorf("cell = %q", got)
	}
}

// TestProfileAttribution: profiling attributes all simulated time to
// statements and ranks the hot ones first.
func TestProfileAttribution(t *testing.T) {
	src := TOMCATVSource(17, 2)
	c, err := Compile(src, 4, SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Execute(context.Background(), Simulator(), RunOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.HotStatements) == 0 {
		t.Fatal("empty profile")
	}
	for i := 1; i < len(out.HotStatements); i++ {
		if out.HotStatements[i].Seconds > out.HotStatements[i-1].Seconds {
			t.Fatal("profile not sorted by descending seconds")
		}
	}
	var total float64
	for _, p := range out.HotStatements {
		total += p.Seconds
		if p.Instances <= 0 {
			t.Errorf("statement s%d profiled with %d instances", p.Stmt.ID, p.Instances)
		}
	}
	if total <= 0 {
		t.Error("no time attributed")
	}
	// Profiling must not change the result.
	plain, err := c.Execute(context.Background(), Simulator(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Time != out.Time {
		t.Errorf("profiling changed simulated time: %v vs %v", out.Time, plain.Time)
	}
	s := FormatHotStatements(out.HotStatements, 5)
	if !strings.Contains(s, "assign") {
		t.Errorf("formatted profile:\n%s", s)
	}
}
