package phpf

// Benchmark harness regenerating the paper's evaluation (§5). Each
// BenchmarkTable* benchmark compiles and simulates one cell of the
// corresponding table and reports the simulated execution time as the
// custom metric "sim-sec/run" (wall time measures the compiler+simulator
// itself). Run with:
//
//	go test -bench=. -benchmem
//
// cmd/phpfbench prints the same tables in the paper's row format.

import (
	"context"
	"fmt"
	"testing"
)

// benchCell runs one (source, procs, options) configuration inside a
// benchmark, reporting simulated seconds.
func benchCell(b *testing.B, source string, procs int, opts Options) {
	b.Helper()
	var simSec float64
	for i := 0; i < b.N; i++ {
		c, err := Compile(source, procs, opts)
		if err != nil {
			b.Fatal(err)
		}
		out, err := c.Execute(context.Background(), Simulator(), RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		simSec = out.Time
	}
	b.ReportMetric(simSec, "sim-sec/run")
}

// --- Table 1: TOMCATV under three scalar-mapping compilers -----------------

func BenchmarkTable1TOMCATV(b *testing.B) {
	const n, niter = 65, 3
	src := TOMCATVSource(n, niter)
	configs := []struct {
		name string
		opts Options
	}{
		{"Replication", NaiveOptions()},
		{"Producer", ProducerOptions()},
		{"Selected", SelectedOptions()},
	}
	for _, cfg := range configs {
		for _, p := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/P=%d", cfg.name, p), func(b *testing.B) {
				benchCell(b, src, p, cfg.opts)
			})
		}
	}
}

// --- Table 2: DGEFA with and without reduction alignment -------------------

func BenchmarkTable2DGEFA(b *testing.B) {
	const n = 96
	src := DGEFASource(n)
	defOpts := SelectedOptions()
	defOpts.AlignReductions = false
	configs := []struct {
		name string
		opts Options
	}{
		{"Default", defOpts},
		{"Aligned", SelectedOptions()},
	}
	for _, cfg := range configs {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/P=%d", cfg.name, p), func(b *testing.B) {
				benchCell(b, src, p, cfg.opts)
			})
		}
	}
}

// --- Table 3: APPSP privatization variants ----------------------------------

func BenchmarkTable3APPSP(b *testing.B) {
	const n, niter = 12, 2
	noPriv := SelectedOptions()
	noPriv.PrivatizeArrays = false
	noPartial := SelectedOptions()
	noPartial.PartialPrivatization = false
	configs := []struct {
		name string
		twoD bool
		opts Options
	}{
		{"1D-NoPriv", false, noPriv},
		{"1D-Priv", false, SelectedOptions()},
		{"2D-NoPartial", true, noPartial},
		{"2D-Partial", true, SelectedOptions()},
	}
	for _, cfg := range configs {
		src := APPSPSource(n, n, n, niter, cfg.twoD)
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/P=%d", cfg.name, p), func(b *testing.B) {
				benchCell(b, src, p, cfg.opts)
			})
		}
	}
}

// --- Reduce sweep: privatized vs collective commutative updates -------------

// BenchmarkReducePrivatization compares the two runtime reduction
// strategies on the reduce-sweep kernels at P=8: the collective reference
// routes every commutative update to the owner, the privatized runtime
// accumulates per-worker partials and tree-merges them at loop exit. The
// sim-sec/run metrics record the paper's claimed win (the acceptance bar is
// privatized >= 3x faster on both kernels); ns/op carries the wall cost of
// compiling and simulating the cell, which is what the regression gate
// watches.
func BenchmarkReducePrivatization(b *testing.B) {
	const procs = 8
	kernels := []struct {
		name   string
		source string
	}{
		{"Histogram", HistogramSource(256, 32, 4)},
		{"DotSweep", DotSweepSource(48, 24)},
	}
	modes := []struct {
		name string
		mode ReduceMode
	}{
		{"Collective", ReduceCollective},
		{"Privatized", ReducePrivatize},
	}
	for _, k := range kernels {
		for _, m := range modes {
			b.Run(fmt.Sprintf("%s/%s/P=%d", k.name, m.name, procs), func(b *testing.B) {
				c, err := Compile(k.source, procs, SelectedOptions())
				if err != nil {
					b.Fatal(err)
				}
				var simSec float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := c.Execute(context.Background(), Simulator(),
						RunOptions{Reduce: m.mode})
					if err != nil {
						b.Fatal(err)
					}
					simSec = out.Time
				}
				b.ReportMetric(simSec, "sim-sec/run")
			})
		}
	}
}

// --- Figure examples: mapping-analysis cost ---------------------------------

// BenchmarkFigureAnalysis measures the compiler front end (parse through
// mapping analysis and SPMD generation) on each paper figure.
func BenchmarkFigureAnalysis(b *testing.B) {
	for _, name := range FigureNames() {
		src, _ := FigureSource(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(src, 16, SelectedOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileTOMCATV measures compilation (not simulation) of the
// largest kernel.
func BenchmarkCompileTOMCATV(b *testing.B) {
	src := TOMCATVSource(257, 10)
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src, 16, SelectedOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileInfer measures what privatization inference adds to
// compilation: the same kernel compiled with facts taken from directives
// only versus inferred by the autopriv pass (the regression-gated point —
// inference must stay a small fraction of the pipeline).
func BenchmarkCompileInfer(b *testing.B) {
	src := TOMCATVSource(257, 10)
	modes := []struct {
		name string
		mode PrivMode
	}{
		{"Directives", PrivDirectives},
		{"Infer", PrivInfer},
	}
	for _, m := range modes {
		opts := SelectedOptions()
		opts.Privatization = m.mode
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(src, 16, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations: the design choices DESIGN.md calls out ----------------------

// BenchmarkAblationVectorization compares TOMCATV with and without message
// vectorization.
func BenchmarkAblationVectorization(b *testing.B) {
	src := TOMCATVSource(65, 3)
	off := SelectedOptions()
	off.DisableVectorization = true
	b.Run("vectorized", func(b *testing.B) { benchCell(b, src, 8, SelectedOptions()) })
	b.Run("per-instance", func(b *testing.B) { benchCell(b, src, 8, off) })
}

// BenchmarkAblationDependenceTest compares DGEFA with and without the
// Banerjee-style hoisting legality test.
func BenchmarkAblationDependenceTest(b *testing.B) {
	src := DGEFASource(96)
	off := SelectedOptions()
	off.DisableDependenceTest = true
	b.Run("banerjee", func(b *testing.B) { benchCell(b, src, 8, SelectedOptions()) })
	b.Run("conservative", func(b *testing.B) { benchCell(b, src, 8, off) })
}

// BenchmarkAblationControlPrivatization compares Figure 7 with and without
// §4.
func BenchmarkAblationControlPrivatization(b *testing.B) {
	src, _ := FigureSource("figure7")
	off := SelectedOptions()
	off.PrivatizeControlFlow = false
	b.Run("privatized", func(b *testing.B) { benchCell(b, src, 8, SelectedOptions()) })
	b.Run("replicated", func(b *testing.B) { benchCell(b, src, 8, off) })
}

// BenchmarkAutoArrayPrivatization compares the NEW-directive-free sweep with
// and without the automatic-privatization extension.
func BenchmarkAutoArrayPrivatization(b *testing.B) {
	src := `
program sweep
parameter n = 64
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`
	auto := SelectedOptions()
	auto.AutoPrivatizeArrays = true
	b.Run("auto", func(b *testing.B) { benchCell(b, src, 8, auto) })
	b.Run("off", func(b *testing.B) { benchCell(b, src, 8, SelectedOptions()) })
}

// --- Fault tolerance: recovery overhead --------------------------------------

// BenchmarkRecoveryOverhead measures the wall-clock cost of the fault
// protocol on the concurrent backend: a clean run as the baseline, periodic
// coordinated checkpointing alone, and a mid-loop fail-stop recovered via
// checkpoint/restart with refetch. The sim-sec/run metric carries the
// modeled time, which includes the modeled checkpoint and recovery charges —
// the gap to Clean is the modeled recovery overhead, while ns/op is the
// physical one.
func BenchmarkRecoveryOverhead(b *testing.B) {
	const procs = 4
	c, err := Compile(DGEFASource(48), procs, SelectedOptions())
	if err != nil {
		b.Fatal(err)
	}
	clean, err := c.Execute(context.Background(), Simulator(), RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ckpt := clean.Time / 5
	cases := []struct {
		name string
		opts RunOptions
	}{
		{"Clean", RunOptions{}},
		{"Checkpoint", RunOptions{CheckpointInterval: ckpt}},
		{"CrashRestart", RunOptions{
			CheckpointInterval: ckpt,
			Fault:              &FaultPlan{Seed: 5, Crashes: []Crash{{Proc: 1, At: 0.4 * clean.Time}}},
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var simSec float64
			for i := 0; i < b.N; i++ {
				rep, err := c.Execute(context.Background(), Concurrent(), tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				simSec = rep.Time
			}
			b.ReportMetric(simSec, "sim-sec/run")
		})
	}
}

// BenchmarkSimulatorThroughput measures interpreter speed in statement
// instances per second on a communication-free kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	src := `
program tp
parameter n = 1000
real a(n), bb(n)
integer i, it
!hpf$ align bb(i) with a(i)
!hpf$ distribute (block) :: a
do it = 1, 50
  do i = 1, n
    a(i) = bb(i) * 0.5 + 1.0
  end do
  do i = 1, n
    bb(i) = a(i)
  end do
end do
end
`
	c, err := Compile(src, 8, SelectedOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Execute(context.Background(), Simulator(), RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(50*2*1000*b.N)/b.Elapsed().Seconds(), "stmt-instances/s")
}
