package phpf

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden dump files")

// TestGoldenDumps locks down the -dump-after=ssa snapshot of every paper
// figure program: the pipeline's IR, CFG, SSA, constant and mapping state
// must be byte-identical to the checked-in golden files. Run with -update
// after an intentional change.
func TestGoldenDumps(t *testing.T) {
	for _, name := range FigureNames() {
		t.Run(name, func(t *testing.T) {
			src, ok := FigureSource(name)
			if !ok {
				t.Fatalf("unknown figure %s", name)
			}
			opts := SelectedOptions()
			opts.DumpAfter = "ssa"
			c, err := Compile(src, 16, opts)
			if err != nil {
				t.Fatalf("compile %s: %v", name, err)
			}
			got, ok := c.Profile().Dumps["ssa"]
			if !ok {
				t.Fatal("no ssa snapshot captured")
			}
			path := filepath.Join("testdata", "dumps", name+".ssa.golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenDumps -update .`): %v", err)
			}
			if got != string(want) {
				t.Errorf("ssa dump for %s deviates from %s\n--- got ---\n%s--- want ---\n%s",
					name, path, got, string(want))
			}
		})
	}
}

// TestGoldenAutoPrivDumps locks down the -dump-after=autopriv snapshot of
// every paper figure: the classification summary and the inferred loop
// annotations the pass inserted must be byte-identical to the checked-in
// golden files. Run with -update after an intentional change.
func TestGoldenAutoPrivDumps(t *testing.T) {
	for _, name := range FigureNames() {
		t.Run(name, func(t *testing.T) {
			src, ok := FigureSource(name)
			if !ok {
				t.Fatalf("unknown figure %s", name)
			}
			opts := SelectedOptions()
			opts.DumpAfter = "autopriv"
			c, err := Compile(src, 16, opts)
			if err != nil {
				t.Fatalf("compile %s: %v", name, err)
			}
			got, ok := c.Profile().Dumps["autopriv"]
			if !ok {
				t.Fatal("no autopriv snapshot captured")
			}
			path := filepath.Join("testdata", "dumps", name+".autopriv.golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestGoldenAutoPrivDumps -update .`): %v", err)
			}
			if got != string(want) {
				t.Errorf("autopriv dump for %s deviates from %s\n--- got ---\n%s--- want ---\n%s",
					name, path, got, string(want))
			}
		})
	}
}

// TestGoldenDumpStability compiles each figure twice and requires identical
// snapshots, independent of the golden files (catches nondeterminism even
// when -update was just run).
func TestGoldenDumpStability(t *testing.T) {
	for _, name := range FigureNames() {
		src, _ := FigureSource(name)
		opts := SelectedOptions()
		opts.DumpAfter = "ssa"
		c1, err := Compile(src, 16, opts)
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		c2, _ := Compile(src, 16, opts)
		if c1.Profile().Dumps["ssa"] != c2.Profile().Dumps["ssa"] {
			t.Errorf("%s: ssa dump differs between two compilations", name)
		}
	}
}
