package ir

import (
	"testing"
)

// refsIn returns the def ref of the idx-th assignment to name, and the
// first rhs use of useName on that statement (or any statement when
// stmtName is "").
func defOf(p *Program, name string, idx int) *Ref {
	n := 0
	for _, st := range p.Stmts {
		if st.Kind == SAssign && st.Lhs.Var.Name == name {
			if n == idx {
				return st.Lhs
			}
			n++
		}
	}
	return nil
}

func useOf(p *Program, name string, idx int) *Ref {
	n := 0
	for _, r := range p.Refs {
		if !r.IsDef && r.Var.Name == name && !r.InSubscript {
			if n == idx {
				return r
			}
			n++
		}
	}
	return nil
}

func TestMayOverlapShiftedSameLoop(t *testing.T) {
	// a(i+1) written, a(i) read in the same loop: loop-carried flow
	// dependence — may overlap.
	p := build(t, `
program t
parameter n = 16
real a(n)
integer i
do i = 2, n-1
  a(i+1) = a(i) * 2.0
end do
end
`)
	def := defOf(p, "a", 0)
	use := useOf(p, "a", 0)
	l := p.Loops[0]
	if !MayOverlapAcross(def, use, l) {
		t.Error("a(i+1) vs a(i) across the i-loop must overlap")
	}
}

func TestDisjointConstantOffsetColumns(t *testing.T) {
	// a(i,1) written, a(i,2) read: dimension 2 differs by a constant.
	p := build(t, `
program t
parameter n = 16
real a(n,n)
integer i
do i = 1, n
  a(i,1) = a(i,2) * 2.0
end do
end
`)
	def := defOf(p, "a", 0)
	use := useOf(p, "a", 0)
	if MayOverlapAcross(def, use, p.Loops[0]) {
		t.Error("a(i,1) vs a(i,2) can never overlap")
	}
}

func TestDGEFAPivotColumnIndependent(t *testing.T) {
	// The trailing update writes a(i,j) for j in k+1..n while reading the
	// pivot column a(i,k): disjoint because j >= k+1 > k. Hoisting out of
	// the j-loop (and i-loop) is legal; out of the k-loop it is not.
	p := build(t, `
program t
parameter n = 16
real a(n,n)
integer i, j, k
do k = 1, n-1
  do j = k+1, n
    do i = k+1, n
      a(i,j) = a(i,j) + a(i,k)
    end do
  end do
end do
end
`)
	def := defOf(p, "a", 0)
	kLoop, jLoop, iLoop := p.Loops[0], p.Loops[1], p.Loops[2]
	// The use of the pivot column is the second rhs use (a(i,j) first).
	use := useOf(p, "a", 1)
	if use == nil || use.Subs[1].String() != "k" {
		t.Fatalf("pivot use not found: %v", use)
	}
	if MayOverlapAcross(def, use, iLoop) {
		t.Error("update vs pivot column must be independent across the i-loop")
	}
	if MayOverlapAcross(def, use, jLoop) {
		t.Error("update vs pivot column must be independent across the j-loop")
	}
	if !MayOverlapAcross(def, use, kLoop) {
		t.Error("across the k-loop the pivot column IS produced by earlier steps")
	}
	// The a(i,j) self-read is same-element: overlaps everywhere.
	selfUse := useOf(p, "a", 0)
	if !MayOverlapAcross(def, selfUse, iLoop) {
		t.Error("a(i,j) self-dependence must overlap")
	}
}

func TestTriangularDisjointness(t *testing.T) {
	// Writing a(j) for j in i+1..n while reading a(i): j > i always.
	p := build(t, `
program t
parameter n = 16
real a(n), b(n)
integer i, j
do i = 1, n-1
  do j = i+1, n
    a(j) = b(j) + a(i)
  end do
end do
end
`)
	def := defOf(p, "a", 0)
	use := useOf(p, "a", 0)
	jLoop := p.Loops[1]
	iLoop := p.Loops[0]
	if MayOverlapAcross(def, use, jLoop) {
		t.Error("a(j), j>i vs a(i) independent across the j-loop")
	}
	if !MayOverlapAcross(def, use, iLoop) {
		t.Error("across the i-loop, a later i reads what an earlier i wrote")
	}
}

func TestNonAffineConservative(t *testing.T) {
	p := build(t, `
program t
parameter n = 16
real a(n)
integer i, m
m = 3
do i = 1, n
  a(m) = a(i) + 1.0
end do
end
`)
	def := defOf(p, "a", 0)
	use := useOf(p, "a", 0)
	if !MayOverlapAcross(def, use, p.Loops[0]) {
		t.Error("non-affine subscript must be conservative (may overlap)")
	}
}

func TestDifferentArraysNeverOverlap(t *testing.T) {
	p := build(t, `
program t
parameter n = 16
real a(n), b(n)
integer i
do i = 1, n
  a(i) = b(i)
end do
end
`)
	def := defOf(p, "a", 0)
	use := useOf(p, "b", 0)
	if MayOverlapAcross(def, use, p.Loops[0]) {
		t.Error("different arrays cannot overlap")
	}
}

func TestSameElementInvariantSubscript(t *testing.T) {
	// a(1) written and a(1) read: same element, overlaps.
	p := build(t, `
program t
parameter n = 16
real a(n)
integer i
do i = 1, n
  a(1) = a(1) + 1.0
end do
end
`)
	def := defOf(p, "a", 0)
	use := useOf(p, "a", 0)
	if !MayOverlapAcross(def, use, p.Loops[0]) {
		t.Error("a(1) vs a(1) must overlap")
	}
}

func TestStrideTwoStillBounded(t *testing.T) {
	// With step 2 the range test still uses lo/hi; a(i) vs a(i+1) may
	// overlap across iterations per the conservative bound (i_d+1 vs i_u
	// ranges intersect), even though parity makes them disjoint — the
	// simple Banerjee bound does not see parity.
	p := build(t, `
program t
parameter n = 16
real a(n)
integer i
do i = 2, n-1, 2
  a(i+1) = a(i) * 2.0
end do
end
`)
	def := defOf(p, "a", 0)
	use := useOf(p, "a", 0)
	if !MayOverlapAcross(def, use, p.Loops[0]) {
		t.Error("conservative result expected for the stride-2 bound test")
	}
}
