package ir

import (
	"testing"

	"phpf/internal/ast"
)

// TestAssignSlots pins the slot-numbering contract the interpreter's
// slot-indexed state relies on: declaration order, density, idempotence, and
// the 1-based slot cache on every evaluable expression reference.
func TestAssignSlots(t *testing.T) {
	p := build(t, `
program t
parameter n = 8
real a(n), b(n)
real x
integer i
do i = 1, n
  x = b(i) * 2.0
  a(i) = x + b(i)
end do
end
`)
	tab := AssignSlots(p)
	if tab.NumSlots() != len(p.VarList) {
		t.Fatalf("NumSlots = %d, want %d", tab.NumSlots(), len(p.VarList))
	}
	for i, v := range p.VarList {
		if v.Slot != int32(i) {
			t.Errorf("var %s has slot %d, want declaration index %d", v.Name, v.Slot, i)
		}
		if tab.Vars[i] != v {
			t.Errorf("table slot %d holds %v, want %s", i, tab.Vars[i], v.Name)
		}
	}
	// Idempotent: a second run keeps the same table.
	if again := AssignSlots(p); again != tab {
		t.Error("AssignSlots is not idempotent")
	}
	// Every reference the interpreter evaluates carries its 1-based slot.
	var check func(e ast.Expr)
	check = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
		case *ast.Ref:
			v := p.Vars[x.Name]
			if v == nil {
				return
			}
			if x.Slot != v.Slot+1 {
				t.Errorf("ref %s carries slot %d, want %d", x.Name, x.Slot, v.Slot+1)
			}
			for _, sub := range x.Subs {
				check(sub)
			}
		case *ast.BinOp:
			check(x.L)
			check(x.R)
		case *ast.UnaryMinus:
			check(x.X)
		case *ast.Call:
			for _, a := range x.Args {
				check(a)
			}
		}
	}
	for _, st := range p.Stmts {
		if st.Lhs != nil {
			check(st.Lhs.Ast)
		}
		check(st.Rhs)
		check(st.Cond)
	}
	for _, l := range p.Loops {
		check(l.Lo)
		check(l.Hi)
		check(l.Step)
	}
}
