package ir

import (
	"testing"

	"phpf/internal/ast"
)

func TestVarSize(t *testing.T) {
	p := build(t, `
program t
parameter n = 4
real a(n,n,2)
real x
a(1,1,1) = x
end
`)
	if s := p.LookupVar("a").Size(); s != 32 {
		t.Errorf("size = %d, want 32", s)
	}
	if s := p.LookupVar("x").Size(); s != 1 {
		t.Errorf("scalar size = %d, want 1", s)
	}
}

func TestConstExprDims(t *testing.T) {
	p := build(t, `
program t
parameter n = 6
real a(n*2, n-1, (n+2)/2, -(-n))
a(1,1,1,1) = 0.0
end
`)
	a := p.LookupVar("a")
	want := []int64{12, 5, 4, 6}
	for i, w := range want {
		if a.Dims[i] != w {
			t.Errorf("dim %d = %d, want %d", i, a.Dims[i], w)
		}
	}
}

func TestAffineIsConst(t *testing.T) {
	p := build(t, `
program t
parameter n = 6
real a(n)
integer i
do i = 1, n
  a(3) = a(i)
end do
end
`)
	var s *Stmt
	for _, st := range p.Stmts {
		if st.Kind == SAssign {
			s = st
		}
	}
	if v, ok := s.Lhs.Subs[0].IsConst(); !ok || v != 3 {
		t.Errorf("a(3) subscript const = %v %v", v, ok)
	}
	if _, ok := s.Uses[0].Subs[0].IsConst(); ok {
		t.Error("a(i) subscript should not be constant")
	}
}

func TestAffineStringForms(t *testing.T) {
	p := build(t, `
program t
parameter n = 10
real a(n,n)
real s
integer i, j
do i = 1, n
  do j = 1, n
    s = a(1,1)
    a(2*i, j) = a(i+j, s)
  end do
end do
end
`)
	var asn *Stmt
	for _, st := range p.Stmts {
		if st.Kind == SAssign && st.Lhs.Var.Name == "a" {
			asn = st
		}
	}
	if got := asn.Lhs.Subs[0].String(); got != "2*i" {
		t.Errorf("sub = %q", got)
	}
	// Non-affine subscript renders with a nonaffine marker.
	var rhs *Ref
	for _, u := range asn.Uses {
		if u.Var.IsArray() {
			rhs = u
		}
	}
	if got := rhs.Subs[1].String(); got != "nonaffine(s)" {
		t.Errorf("nonaffine sub = %q", got)
	}
	// Constant-only form.
	zero := AnalyzeAffine(&ast.IntConst{Value: 0}, nil, nil)
	if zero.String() != "0" {
		t.Errorf("zero = %q", zero.String())
	}
	neg := AnalyzeAffine(&ast.UnaryMinus{X: &ast.Ref{Name: "i"}}, asn.Loop, nil)
	if neg.String() != "-i" {
		t.Errorf("neg = %q", neg.String())
	}
}

func TestLoopAtLevel(t *testing.T) {
	p := build(t, `
program t
parameter n = 4
real a(n)
integer i, j
do i = 1, n
  do j = 1, n
    a(j) = 1.0
  end do
end do
end
`)
	var s *Stmt
	for _, st := range p.Stmts {
		if st.Kind == SAssign {
			s = st
		}
	}
	if l := LoopAtLevel(s, 1); l == nil || l.Index.Name != "i" {
		t.Errorf("level 1 = %v", l)
	}
	if l := LoopAtLevel(s, 2); l == nil || l.Index.Name != "j" {
		t.Errorf("level 2 = %v", l)
	}
	if l := LoopAtLevel(s, 3); l != nil {
		t.Errorf("level 3 = %v, want nil", l)
	}
}

func TestStmtKindStrings(t *testing.T) {
	kinds := map[StmtKind]string{
		SAssign: "assign", SIf: "if", SIfGoto: "ifgoto", SGoto: "goto",
		SContinue: "continue", SRedistribute: "redistribute",
		SLoopBounds: "loopbounds",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if StmtKind(99).String() != "?" {
		t.Error("unknown kind")
	}
}

func TestRefString(t *testing.T) {
	p := build(t, figure1)
	for _, r := range p.Refs {
		if r.Var.Name == "a" && r.IsDef {
			if r.String() != "a((i + 1))" {
				t.Errorf("ref string = %q", r.String())
			}
		}
	}
}

func TestBuildErrorMessage(t *testing.T) {
	err := buildErr(t, "program t\nq = 1\nend\n")
	if err.Error() != "2:1: error: ir: undeclared variable q [E003]" {
		t.Errorf("error = %q", err.Error())
	}
}

// TestNestedIfDeepDependence verifies EnclosingIfs ordering (outermost
// first) through two levels.
func TestNestedIfDeepDependence(t *testing.T) {
	p := build(t, `
program t
parameter n = 8
real a(n), b(n)
integer i
do i = 1, n
  if (b(i) > 0.0) then
    if (b(i) > 1.0) then
      a(i) = 2.0
    end if
  end if
end do
end
`)
	var asn *Stmt
	var ifs []*Stmt
	for _, st := range p.Stmts {
		if st.Kind == SAssign && st.Lhs.Var.Name == "a" {
			asn = st
		}
		if st.Kind == SIf {
			ifs = append(ifs, st)
		}
	}
	if len(asn.EnclosingIfs) != 2 {
		t.Fatalf("enclosing ifs = %d, want 2", len(asn.EnclosingIfs))
	}
	if asn.EnclosingIfs[0] != ifs[0] || asn.EnclosingIfs[1] != ifs[1] {
		t.Error("enclosing ifs not outermost-first")
	}
	// The inner if is control dependent on the outer.
	if len(ifs[1].EnclosingIfs) != 1 || ifs[1].EnclosingIfs[0] != ifs[0] {
		t.Error("inner if missing control dependence")
	}
}
