// Package ir lowers an ast.Program into the analyzed intermediate form used
// by the rest of the compiler: a symbol table with evaluated shapes, a loop
// nest tree with nesting levels, a flat numbered statement list, and explicit
// reference objects for every variable occurrence (definitions and uses).
//
// Parameters (named integer constants) are substituted into every expression
// during lowering, so downstream analyses see only literals, loop indices,
// and program variables.
package ir

import (
	"phpf/internal/ast"
	"phpf/internal/diag"
)

// Var is a program variable (scalar or array).
type Var struct {
	Name string
	Type ast.Type
	Dims []int64 // evaluated extents; empty for scalars (1-based indexing)

	// Slot is the dense 0-based index AssignSlots gave this variable
	// (declaration order). Valid only after AssignSlots ran; the
	// interpreter's State uses it to index flat value slices instead of
	// probing pointer-keyed maps.
	Slot int32

	IsLoopIndex bool // used as a DO index somewhere in the program

	// DefLoops is the set of loops whose body contains an assignment to
	// this scalar (used by VarLevel for non-affine subscripts).
	DefLoops map[*Loop]bool
}

// IsArray reports whether v has array shape.
func (v *Var) IsArray() bool { return len(v.Dims) > 0 }

// Rank returns the number of dimensions (0 for scalars).
func (v *Var) Rank() int { return len(v.Dims) }

// Size returns the total number of elements (1 for scalars).
func (v *Var) Size() int64 {
	n := int64(1)
	for _, d := range v.Dims {
		n *= d
	}
	return n
}

// Node is an element of the structured program tree: *Loop, *If, or *Stmt.
type Node interface{ node() }

// Loop is a DO loop.
type Loop struct {
	ID    int // preorder index among loops
	Index *Var
	Lo    ast.Expr
	Hi    ast.Expr
	Step  ast.Expr // nil means 1
	Body  []Node

	Parent *Loop
	Level  int // 1-based nesting depth (outermost loop = 1)

	Independent bool
	NoDeps      bool
	New         []string // NEW clause variables (privatizable wrt this loop)

	// InferredNew lists variables the autopriv pass proved privatizable
	// with respect to this loop (no directive required); InferredLast
	// lists scalars it proved lastprivate — privatizable within the loop
	// with the final iteration's value live after it, requiring a
	// copy-out at loop exit. Both are recomputed from scratch on every
	// run of the pass.
	InferredNew  []string
	InferredLast []string

	// BoundsStmt is a pseudo-statement (Kind SLoopBounds) carrying the
	// uses of scalar variables appearing in the loop bounds; it executes
	// in the loop's preheader. Nil when the bounds reference no tracked
	// scalars.
	BoundsStmt *Stmt

	Line int
}

// If is a block IF with a condition statement and two branches.
type If struct {
	Cond *Stmt // Kind == SIf; carries the predicate's references
	Then []Node
	Else []Node
	Line int
}

// StmtKind discriminates leaf statements.
type StmtKind int

const (
	SAssign       StmtKind = iota // Lhs = Rhs
	SIf                           // block-IF predicate evaluation
	SIfGoto                       // if (Cond) goto Label
	SGoto                         // goto Label
	SContinue                     // Label continue
	SRedistribute                 // executable redistribute directive
	SLoopBounds                   // pseudo-statement: loop bound evaluation
)

func (k StmtKind) String() string {
	switch k {
	case SAssign:
		return "assign"
	case SIf:
		return "if"
	case SIfGoto:
		return "ifgoto"
	case SGoto:
		return "goto"
	case SContinue:
		return "continue"
	case SRedistribute:
		return "redistribute"
	case SLoopBounds:
		return "loopbounds"
	}
	return "?"
}

// Stmt is a leaf statement. All statements of a program are numbered in
// program (textual) order; analyses attach information to these objects.
type Stmt struct {
	ID   int
	Kind StmtKind
	Line int
	Col  int // 1-based source column (0 when unknown)

	Lhs  *Ref     // SAssign: the definition
	Rhs  ast.Expr // SAssign
	Cond ast.Expr // SIf, SIfGoto

	Label int // SGoto, SIfGoto, SContinue

	Loop   *Loop // innermost enclosing loop (nil at top level)
	IfNode *If   // for SIf: the owning If

	// EnclosingIfs lists the If/IfGoto predicates this statement is
	// control dependent on, outermost first (within structured Ifs only).
	EnclosingIfs []*Stmt

	Uses []*Ref // all use references: rhs, condition, and subscripts
	Refs []*Ref // all references including the definition (Lhs first if any)

	Redist *Redist // SRedistribute
}

// Redist describes an executable redistribution.
type Redist struct {
	Array   *Var
	Formats []ast.DistFormat
}

func (*Loop) node() {}
func (*If) node()   {}
func (*Stmt) node() {}

// Ref is one occurrence of a variable in the program.
type Ref struct {
	ID    int
	Ast   *ast.Ref
	Var   *Var
	Stmt  *Stmt
	IsDef bool
	// InSubscript is true when this use appears inside a subscript of some
	// other reference (its value may need to be known by whoever evaluates
	// the enclosing reference).
	InSubscript bool
	// EnclosingRef is the reference whose subscript contains this use
	// (nil if not in a subscript).
	EnclosingRef *Ref

	// Subs holds the per-dimension affine analysis of array subscripts.
	Subs []Affine
}

// String renders the reference as source text.
func (r *Ref) String() string { return ast.ExprString(r.Ast) }

// Program is the lowered program.
type Program struct {
	Name   string
	Params map[string]int64
	Vars   map[string]*Var
	// VarList is Vars in declaration order (deterministic iteration).
	VarList []*Var

	Body []Node

	Loops []*Loop // preorder
	Stmts []*Stmt // program order
	Refs  []*Ref  // program order

	// Directives carried through for the distribution package.
	Dirs []ast.Directive

	// Slots is the dense variable numbering built by AssignSlots (nil
	// until the slots pass — or a lazy consumer — runs it).
	Slots *SlotTable

	Source *ast.Program
}

// LookupVar returns the variable named name, or nil.
func (p *Program) LookupVar(name string) *Var { return p.Vars[name] }

// Pos returns the statement's source position.
func (s *Stmt) Pos() diag.Pos { return diag.Pos{Line: s.Line, Col: s.Col} }

// errf builds a fatal, positioned IR-construction diagnostic.
func errf(line int, format string, args ...any) error {
	return errfAt(diag.Pos{Line: line}, format, args...)
}

func errfAt(pos diag.Pos, format string, args ...any) error {
	return diag.Errorf("ir", diag.CodeIRBuild, pos, format, args...)
}

type builder struct {
	prog   *Program
	labels map[int]bool
	gotos  []gotoSite
}

type gotoSite struct {
	label int
	line  int
	loop  *Loop
}

// Build lowers an AST program to IR, validating declarations, references and
// control flow.
func Build(src *ast.Program) (*Program, error) {
	b := &builder{
		prog: &Program{
			Name:   src.Name,
			Params: map[string]int64{},
			Vars:   map[string]*Var{},
			Dirs:   src.Dirs,
			Source: src,
		},
		labels: map[int]bool{},
	}
	for _, pa := range src.Params {
		if _, dup := b.prog.Params[pa.Name]; dup {
			return nil, errfAt(diag.Pos{Line: pa.Line, Col: pa.Col}, "duplicate parameter %s", pa.Name)
		}
		b.prog.Params[pa.Name] = pa.Value
	}
	for _, d := range src.Decls {
		if _, dup := b.prog.Vars[d.Name]; dup {
			return nil, errfAt(diag.Pos{Line: d.Line, Col: d.Col}, "duplicate declaration of %s", d.Name)
		}
		if _, isParam := b.prog.Params[d.Name]; isParam {
			return nil, errfAt(diag.Pos{Line: d.Line, Col: d.Col}, "%s already declared as parameter", d.Name)
		}
		v := &Var{Name: d.Name, Type: d.Type, DefLoops: map[*Loop]bool{}}
		for _, de := range d.Dims {
			n, err := b.evalConst(de, d.Line)
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, errf(d.Line, "array %s has non-positive extent %d", d.Name, n)
			}
			v.Dims = append(v.Dims, n)
		}
		b.prog.Vars[d.Name] = v
		b.prog.VarList = append(b.prog.VarList, v)
	}

	// Pre-mark loop index variables so references to them are treated as
	// implicitly-known values (not tracked as defs/uses) from the start.
	var markIndices func([]ast.Stmt) error
	markIndices = func(stmts []ast.Stmt) error {
		var err error
		ast.WalkStmts(stmts, func(s ast.Stmt) {
			if lp, ok := s.(*ast.DoLoop); ok && err == nil {
				v, found := b.prog.Vars[lp.Var]
				if !found {
					err = errf(lp.Line, "undeclared loop index %s", lp.Var)
					return
				}
				if v.IsArray() {
					err = errf(lp.Line, "loop index %s is an array", lp.Var)
					return
				}
				v.IsLoopIndex = true
			}
		})
		return err
	}
	if err := markIndices(src.Body); err != nil {
		return nil, err
	}

	body, err := b.buildStmts(src.Body, nil)
	if err != nil {
		return nil, err
	}
	b.prog.Body = body

	// Validate GOTO targets.
	for _, g := range b.gotos {
		if !b.labels[g.label] {
			return nil, errf(g.line, "goto target %d not found", g.label)
		}
	}

	// Record, per scalar, the loops containing a definition of it.
	for _, s := range b.prog.Stmts {
		if s.Kind == SAssign && !s.Lhs.Var.IsArray() {
			for l := s.Loop; l != nil; l = l.Parent {
				s.Lhs.Var.DefLoops[l] = true
			}
		}
	}

	// Analyze subscripts now that loop nesting is known.
	for _, r := range b.prog.Refs {
		b.analyzeSubscripts(r)
	}
	return b.prog, nil
}

func (b *builder) buildStmts(stmts []ast.Stmt, loop *Loop) ([]Node, error) {
	var out []Node
	for _, s := range stmts {
		n, err := b.buildStmt(s, loop)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func (b *builder) newStmt(kind StmtKind, loop *Loop, line, col int) *Stmt {
	s := &Stmt{ID: len(b.prog.Stmts), Kind: kind, Loop: loop, Line: line, Col: col}
	b.prog.Stmts = append(b.prog.Stmts, s)
	return s
}

func (b *builder) buildStmt(s ast.Stmt, loop *Loop) (Node, error) {
	switch x := s.(type) {
	case *ast.Assign:
		st := b.newStmt(SAssign, loop, x.Line, x.Col)
		lhs, err := b.buildRef(x.Lhs, st, true, nil)
		if err != nil {
			return nil, err
		}
		st.Lhs = lhs
		rhs, err := b.rewriteExpr(x.Rhs, st, nil, x.Line)
		if err != nil {
			return nil, err
		}
		st.Rhs = rhs
		st.Refs = append([]*Ref{lhs}, st.Uses...)
		if lhs.Var.IsLoopIndex {
			return nil, errf(x.Line, "assignment to loop index %s", lhs.Var.Name)
		}
		return st, nil

	case *ast.DoLoop:
		v, ok := b.prog.Vars[x.Var]
		if !ok {
			return nil, errf(x.Line, "undeclared loop index %s", x.Var)
		}
		if v.IsArray() {
			return nil, errf(x.Line, "loop index %s is an array", x.Var)
		}
		for l := loop; l != nil; l = l.Parent {
			if l.Index == v {
				return nil, errf(x.Line, "loop index %s reused in nested loop", x.Var)
			}
		}
		v.IsLoopIndex = true
		lp := &Loop{
			ID:     len(b.prog.Loops),
			Index:  v,
			Parent: loop,
			Level:  1,
			Line:   x.Line,
		}
		if loop != nil {
			lp.Level = loop.Level + 1
		}
		for _, d := range x.Dirs {
			if d.Independent {
				lp.Independent = true
			}
			if d.NoDeps {
				lp.NoDeps = true
			}
			for _, nv := range d.New {
				if _, ok := b.prog.Vars[nv]; !ok {
					return nil, errf(d.Line, "NEW clause names undeclared variable %s", nv)
				}
				lp.New = append(lp.New, nv)
			}
		}
		b.prog.Loops = append(b.prog.Loops, lp)
		var err error
		// Bounds are evaluated outside the loop. When they reference
		// tracked scalars (not parameters, not loop indices), those uses
		// are attached to a pseudo-statement executing in the preheader so
		// that the mapping analysis sees them (a scalar used in a loop
		// bound must be available on every processor).
		if b.boundsReferenceScalars(x.Lo) || b.boundsReferenceScalars(x.Hi) ||
			(x.Step != nil && b.boundsReferenceScalars(x.Step)) {
			bst := b.newStmt(SLoopBounds, loop, x.Line, x.Col)
			lp.BoundsStmt = bst
			lp.Lo, err = b.rewriteExpr(x.Lo, bst, nil, x.Line)
			if err != nil {
				return nil, err
			}
			lp.Hi, err = b.rewriteExpr(x.Hi, bst, nil, x.Line)
			if err != nil {
				return nil, err
			}
			if x.Step != nil {
				lp.Step, err = b.rewriteExpr(x.Step, bst, nil, x.Line)
				if err != nil {
					return nil, err
				}
			}
			bst.Refs = bst.Uses
		} else {
			lp.Lo, err = b.rewriteBoundExpr(x.Lo, x.Line)
			if err != nil {
				return nil, err
			}
			lp.Hi, err = b.rewriteBoundExpr(x.Hi, x.Line)
			if err != nil {
				return nil, err
			}
			if x.Step != nil {
				lp.Step, err = b.rewriteBoundExpr(x.Step, x.Line)
				if err != nil {
					return nil, err
				}
			}
		}
		body, err := b.buildStmts(x.Body, lp)
		if err != nil {
			return nil, err
		}
		lp.Body = body
		return lp, nil

	case *ast.If:
		st := b.newStmt(SIf, loop, x.Line, x.Col)
		cond, err := b.rewriteExpr(x.Cond, st, nil, x.Line)
		if err != nil {
			return nil, err
		}
		st.Cond = cond
		st.Refs = st.Uses
		ifn := &If{Cond: st, Line: x.Line}
		st.IfNode = ifn
		ifn.Then, err = b.buildStmts(x.Then, loop)
		if err != nil {
			return nil, err
		}
		ifn.Else, err = b.buildStmts(x.Else, loop)
		if err != nil {
			return nil, err
		}
		markControlDependent(ifn.Then, st)
		markControlDependent(ifn.Else, st)
		return ifn, nil

	case *ast.IfGoto:
		st := b.newStmt(SIfGoto, loop, x.Line, x.Col)
		cond, err := b.rewriteExpr(x.Cond, st, nil, x.Line)
		if err != nil {
			return nil, err
		}
		st.Cond = cond
		st.Refs = st.Uses
		st.Label = x.Label
		b.gotos = append(b.gotos, gotoSite{label: x.Label, line: x.Line, loop: loop})
		return st, nil

	case *ast.Goto:
		st := b.newStmt(SGoto, loop, x.Line, x.Col)
		st.Label = x.Label
		b.gotos = append(b.gotos, gotoSite{label: x.Label, line: x.Line, loop: loop})
		return st, nil

	case *ast.Continue:
		if b.labels[x.Label] {
			return nil, errf(x.Line, "duplicate label %d", x.Label)
		}
		b.labels[x.Label] = true
		st := b.newStmt(SContinue, loop, x.Line, x.Col)
		st.Label = x.Label
		return st, nil

	case *ast.Redistribute:
		v, ok := b.prog.Vars[x.Array]
		if !ok {
			return nil, errf(x.Line, "redistribute of undeclared array %s", x.Array)
		}
		if !v.IsArray() {
			return nil, errf(x.Line, "redistribute of scalar %s", x.Array)
		}
		if len(x.Formats) != v.Rank() {
			return nil, errf(x.Line, "redistribute of %s: %d formats for rank %d",
				x.Array, len(x.Formats), v.Rank())
		}
		st := b.newStmt(SRedistribute, loop, x.Line, x.Col)
		st.Redist = &Redist{Array: v, Formats: x.Formats}
		return st, nil
	}
	return nil, errf(s.Pos(), "unsupported statement %T", s)
}

// markControlDependent records st as a controlling predicate of every leaf
// statement in the branch.
func markControlDependent(nodes []Node, st *Stmt) {
	for _, n := range nodes {
		switch x := n.(type) {
		case *Stmt:
			x.EnclosingIfs = append([]*Stmt{st}, x.EnclosingIfs...)
		case *Loop:
			markControlDependent(x.Body, st)
		case *If:
			// The nested If's own marking already recorded x.Cond on its
			// branch statements; here we add the outer predicate st to the
			// whole subtree (outermost first).
			x.Cond.EnclosingIfs = append([]*Stmt{st}, x.Cond.EnclosingIfs...)
			markControlDependent(x.Then, st)
			markControlDependent(x.Else, st)
		}
	}
}

// rewriteExpr substitutes parameters, validates references, and registers
// each variable occurrence as a use of st. encl is the reference whose
// subscript we are inside of (nil at top level).
func (b *builder) rewriteExpr(e ast.Expr, st *Stmt, encl *Ref, line int) (ast.Expr, error) {
	switch x := e.(type) {
	case *ast.IntConst, *ast.RealConst:
		return e, nil
	case *ast.Ref:
		if val, isParam := b.prog.Params[x.Name]; isParam {
			if len(x.Subs) > 0 {
				return nil, errf(line, "parameter %s used with subscripts", x.Name)
			}
			return &ast.IntConst{Value: val}, nil
		}
		r, err := b.buildRefIn(x, st, false, encl, line)
		if err != nil {
			return nil, err
		}
		return r.Ast, nil
	case *ast.BinOp:
		l, err := b.rewriteExpr(x.L, st, encl, line)
		if err != nil {
			return nil, err
		}
		r, err := b.rewriteExpr(x.R, st, encl, line)
		if err != nil {
			return nil, err
		}
		return &ast.BinOp{Op: x.Op, L: l, R: r}, nil
	case *ast.UnaryMinus:
		sub, err := b.rewriteExpr(x.X, st, encl, line)
		if err != nil {
			return nil, err
		}
		return &ast.UnaryMinus{X: sub}, nil
	case *ast.Not:
		sub, err := b.rewriteExpr(x.X, st, encl, line)
		if err != nil {
			return nil, err
		}
		return &ast.Not{X: sub}, nil
	case *ast.Call:
		c := &ast.Call{Name: x.Name}
		for _, a := range x.Args {
			ra, err := b.rewriteExpr(a, st, encl, line)
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, ra)
		}
		return c, nil
	}
	return nil, errf(line, "unsupported expression %T", e)
}

// boundsReferenceScalars reports whether a loop bound expression references
// any tracked scalar variable (not a parameter, not a loop index).
func (b *builder) boundsReferenceScalars(e ast.Expr) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) {
		r, ok := x.(*ast.Ref)
		if !ok {
			return
		}
		if _, isParam := b.prog.Params[r.Name]; isParam {
			return
		}
		if v := b.prog.Vars[r.Name]; v != nil && !v.IsLoopIndex {
			found = true
		}
	})
	return found
}

// rewriteBoundExpr rewrites a loop bound: parameters substituted; variable
// references permitted (they must be scalars) but not registered as
// statement uses.
func (b *builder) rewriteBoundExpr(e ast.Expr, line int) (ast.Expr, error) {
	switch x := e.(type) {
	case *ast.IntConst, *ast.RealConst:
		return e, nil
	case *ast.Ref:
		if val, isParam := b.prog.Params[x.Name]; isParam {
			return &ast.IntConst{Value: val}, nil
		}
		v, ok := b.prog.Vars[x.Name]
		if !ok {
			return nil, errf(line, "undeclared variable %s in loop bound", x.Name)
		}
		if v.IsArray() || len(x.Subs) > 0 {
			return nil, errf(line, "array reference %s in loop bound", x.Name)
		}
		return x, nil
	case *ast.BinOp:
		l, err := b.rewriteBoundExpr(x.L, line)
		if err != nil {
			return nil, err
		}
		r, err := b.rewriteBoundExpr(x.R, line)
		if err != nil {
			return nil, err
		}
		return &ast.BinOp{Op: x.Op, L: l, R: r}, nil
	case *ast.UnaryMinus:
		sub, err := b.rewriteBoundExpr(x.X, line)
		if err != nil {
			return nil, err
		}
		return &ast.UnaryMinus{X: sub}, nil
	}
	return nil, errf(line, "unsupported expression in loop bound")
}

func (b *builder) buildRef(a *ast.Ref, st *Stmt, isDef bool, encl *Ref) (*Ref, error) {
	return b.buildRefIn(a, st, isDef, encl, a.Line)
}

func (b *builder) buildRefIn(a *ast.Ref, st *Stmt, isDef bool, encl *Ref, line int) (*Ref, error) {
	// Prefer the reference's own token position; fall back to the
	// statement line for synthesized references.
	pos := diag.Pos{Line: a.Line, Col: a.Col}
	if pos.Line == 0 {
		pos = diag.Pos{Line: line}
	}
	v, ok := b.prog.Vars[a.Name]
	if !ok {
		return nil, errfAt(pos, "undeclared variable %s", a.Name)
	}
	if len(a.Subs) > 0 && !v.IsArray() {
		return nil, errfAt(pos, "scalar %s used with subscripts", a.Name)
	}
	if v.IsArray() && len(a.Subs) != v.Rank() {
		return nil, errfAt(pos, "array %s has rank %d, referenced with %d subscripts",
			a.Name, v.Rank(), len(a.Subs))
	}
	if v.IsLoopIndex {
		if isDef {
			return nil, errfAt(pos, "assignment to loop index %s", a.Name)
		}
		// Loop index values are implicitly known to every processor
		// executing the iteration; they are not tracked as references.
		return &Ref{Var: v, Stmt: st, Ast: a, InSubscript: encl != nil, EnclosingRef: encl}, nil
	}
	r := &Ref{
		ID:           len(b.prog.Refs),
		Var:          v,
		Stmt:         st,
		IsDef:        isDef,
		InSubscript:  encl != nil,
		EnclosingRef: encl,
	}
	b.prog.Refs = append(b.prog.Refs, r)
	// Rewrite subscripts (registering their refs as uses nested under r).
	na := &ast.Ref{Name: a.Name, Line: a.Line, Col: a.Col}
	for _, sub := range a.Subs {
		rs, err := b.rewriteExpr(sub, st, r, line)
		if err != nil {
			return nil, err
		}
		na.Subs = append(na.Subs, rs)
	}
	r.Ast = na
	if !isDef {
		st.Uses = append(st.Uses, r)
	}
	return r, nil
}

// evalConst evaluates a compile-time integer constant expression (literals,
// parameters, + - * /).
func (b *builder) evalConst(e ast.Expr, line int) (int64, error) {
	switch x := e.(type) {
	case *ast.IntConst:
		return x.Value, nil
	case *ast.Ref:
		if v, ok := b.prog.Params[x.Name]; ok && len(x.Subs) == 0 {
			return v, nil
		}
		return 0, errf(line, "%s is not a constant", x.Name)
	case *ast.BinOp:
		l, err := b.evalConst(x.L, line)
		if err != nil {
			return 0, err
		}
		r, err := b.evalConst(x.R, line)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case ast.Add:
			return l + r, nil
		case ast.Sub:
			return l - r, nil
		case ast.Mul:
			return l * r, nil
		case ast.Div:
			if r == 0 {
				return 0, errf(line, "division by zero in constant")
			}
			return l / r, nil
		}
		return 0, errf(line, "non-arithmetic operator in constant expression")
	case *ast.UnaryMinus:
		v, err := b.evalConst(x.X, line)
		if err != nil {
			return 0, err
		}
		return -v, nil
	}
	return 0, errf(line, "expression is not a compile-time constant")
}

// InnermostCommonLoop returns the innermost loop enclosing both a and b
// (nil if none).
func InnermostCommonLoop(a, b *Loop) *Loop {
	depth := func(l *Loop) int {
		d := 0
		for ; l != nil; l = l.Parent {
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// Encloses reports whether outer encloses (or equals) inner.
func Encloses(outer, inner *Loop) bool {
	if outer == nil {
		return true
	}
	for l := inner; l != nil; l = l.Parent {
		if l == outer {
			return true
		}
	}
	return false
}

// LoopAtLevel returns the enclosing loop of s at nesting level lvl (1-based),
// or nil if s is not nested that deep.
func LoopAtLevel(s *Stmt, lvl int) *Loop {
	for l := s.Loop; l != nil; l = l.Parent {
		if l.Level == lvl {
			return l
		}
	}
	return nil
}
