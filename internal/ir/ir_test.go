package ir

import (
	"testing"

	"phpf/internal/ast"
	"phpf/internal/parser"
)

func build(t *testing.T, src string) *Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Build(ap)
	if err != nil {
		t.Fatalf("ir.Build: %v", err)
	}
	return p
}

func buildErr(t *testing.T, src string) error {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Build(ap)
	if err == nil {
		t.Fatalf("expected ir.Build error for:\n%s", src)
	}
	return err
}

const figure1 = `
program figure1
parameter n = 100
real a(n), b(n), c(n), d(n), e(n), f(n)
real x, y, z
integer i, m
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
!hpf$ distribute (block) :: a
m = 2
do i = 2, n-1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i+1) = y / z
  d(m) = x / z
end do
end
`

func TestBuildFigure1(t *testing.T) {
	p := build(t, figure1)
	if len(p.Loops) != 1 {
		t.Fatalf("got %d loops", len(p.Loops))
	}
	loop := p.Loops[0]
	if loop.Level != 1 || loop.Index.Name != "i" {
		t.Errorf("loop = %+v", loop)
	}
	if !loop.Index.IsLoopIndex {
		t.Error("i not marked as loop index")
	}
	// 7 assignments total (m=2 outside + 6 inside).
	if len(p.Stmts) != 7 {
		t.Errorf("got %d statements, want 7", len(p.Stmts))
	}
	// a has evaluated dims.
	a := p.LookupVar("a")
	if a == nil || len(a.Dims) != 1 || a.Dims[0] != 100 {
		t.Errorf("a = %+v", a)
	}
	// m's DefLoops includes the i-loop (m=m+1 inside).
	m := p.LookupVar("m")
	if !m.DefLoops[loop] {
		t.Error("m.DefLoops missing the i-loop")
	}
	// Parameter n substituted everywhere: loop bound is (100 - 1).
	hi := ast.ExprString(loop.Hi)
	if hi != "(100 - 1)" {
		t.Errorf("loop.Hi = %s", hi)
	}
}

func TestBuildRefsAndUses(t *testing.T) {
	p := build(t, figure1)
	// Statement "a(i+1) = y / z": lhs def + 2 uses.
	var s *Stmt
	for _, st := range p.Stmts {
		if st.Kind == SAssign && st.Lhs.Var.Name == "a" {
			s = st
		}
	}
	if s == nil {
		t.Fatal("assignment to a not found")
	}
	if !s.Lhs.IsDef {
		t.Error("lhs not marked def")
	}
	if len(s.Uses) != 2 {
		t.Errorf("got %d uses, want 2 (y, z)", len(s.Uses))
	}
	if len(s.Refs) != 3 || s.Refs[0] != s.Lhs {
		t.Errorf("Refs = %v", s.Refs)
	}
	// Subscript affine analysis of a(i+1).
	sub := s.Lhs.Subs[0]
	if !sub.OK || sub.Const != 1 || len(sub.Terms) != 1 || sub.Terms[0].Coef != 1 {
		t.Errorf("a(i+1) subscript = %+v", sub)
	}
}

func TestBuildSubscriptUseTracking(t *testing.T) {
	src := `
program t
parameter n = 8
real a(n), d(n)
integer i, m
m = 1
do i = 1, n
  d(m) = a(i)
end do
end
`
	p := build(t, src)
	var s *Stmt
	for _, st := range p.Stmts {
		if st.Kind == SAssign && st.Lhs != nil && st.Lhs.Var.Name == "d" {
			s = st
		}
	}
	// Uses of the d(m) statement: m (inside lhs subscript) and a(i) and i.
	var mUse *Ref
	for _, u := range s.Uses {
		if u.Var.Name == "m" {
			mUse = u
		}
	}
	if mUse == nil {
		t.Fatal("use of m in subscript not tracked")
	}
	if !mUse.InSubscript || mUse.EnclosingRef == nil || mUse.EnclosingRef.Var.Name != "d" {
		t.Errorf("m use = %+v", mUse)
	}
	// d(m)'s subscript is non-affine with scalar m recorded.
	sub := s.Lhs.Subs[0]
	if sub.OK {
		t.Error("d(m) subscript should be non-affine")
	}
	if len(sub.Scalars) != 1 || sub.Scalars[0].Name != "m" {
		t.Errorf("scalars = %v", sub.Scalars)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undeclared", "program t\nx = 1\nend\n"},
		{"dup decl", "program t\nreal x\ninteger x\nx = 1\nend\n"},
		{"rank mismatch", "program t\nreal a(4,4)\na(1) = 0.0\nend\n"},
		{"scalar subscripted", "program t\nreal x\nx(1) = 0.0\nend\n"},
		{"assign loop index", "program t\ninteger i\nreal a(5)\ndo i = 1, 5\ni = 2\nend do\nend\n"},
		{"reused index", "program t\ninteger i\nreal a(5)\ndo i = 1, 5\ndo i = 1, 5\na(i) = 0.0\nend do\nend do\nend\n"},
		{"bad goto", "program t\nreal x\ngoto 99\nx = 1.0\nend\n"},
		{"new undeclared", "program t\ninteger i\nreal a(5)\n!hpf$ independent, new(q)\ndo i = 1, 5\na(i) = 0.0\nend do\nend\n"},
		{"bad extent", "program t\nparameter n = 0\nreal a(n)\na(1) = 0.0\nend\n"},
		{"param subscripted", "program t\nparameter n = 4\nreal a(4)\na(1) = n(2)\nend\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { buildErr(t, c.src) })
	}
}

func TestNestingLevels(t *testing.T) {
	src := `
program fig4
parameter n = 8
real a(n,n,n), b(n,n,n)
real s
integer i, j, k
!hpf$ distribute (block,block,*) :: a, b
do i = 1, n
  do j = 1, n
    s = a(i,j,1)
    do k = 1, n
      a(i,j,k) = 1.0
      b(s,j,k) = 2.0
    end do
  end do
end do
end
`
	p := build(t, src)
	if len(p.Loops) != 3 {
		t.Fatalf("got %d loops", len(p.Loops))
	}
	for i, want := range []int{1, 2, 3} {
		if p.Loops[i].Level != want {
			t.Errorf("loop %d level = %d, want %d", i, p.Loops[i].Level, want)
		}
	}
	if p.Loops[2].Parent != p.Loops[1] || p.Loops[1].Parent != p.Loops[0] {
		t.Error("parent chain wrong")
	}
}

// TestFigure4SubscriptAlignLevels checks the paper's Figure 4 example:
// SubscriptAlignLevel(s) = 3 (non-affine, varies at level 2),
// for i and j it equals their loop levels.
func TestFigure4SubscriptAlignLevels(t *testing.T) {
	src := `
program fig4
parameter n = 8
real a(n,n,n), b(n,n,n)
real s
integer i, j, k
do i = 1, n
  do j = 1, n
    s = a(i,j,1)
    do k = 1, n
      a(i,j,k) = 1.0
      b(s,j,k) = 2.0
    end do
  end do
end do
end
`
	p := build(t, src)
	var aDef, bDef *Stmt
	for _, st := range p.Stmts {
		if st.Kind != SAssign {
			continue
		}
		switch st.Lhs.Var.Name {
		case "a":
			if st.Loop.Level == 3 {
				aDef = st
			}
		case "b":
			bDef = st
		}
	}
	if aDef == nil || bDef == nil {
		t.Fatal("statements not found")
	}
	// A(i,j,k): SAL(i)=1, SAL(j)=2, SAL(k)=3.
	for dim, want := range []int{1, 2, 3} {
		if got := SubscriptAlignLevel(aDef.Lhs.Subs[dim], aDef); got != want {
			t.Errorf("SAL(a sub %d) = %d, want %d", dim, got, want)
		}
	}
	// B(s,j,k): s is non-affine and varies at level 2 (assigned in j-loop),
	// so SAL(s) = 3.
	if got := SubscriptAlignLevel(bDef.Lhs.Subs[0], bDef); got != 3 {
		t.Errorf("SAL(b sub s) = %d, want 3", got)
	}
	if got := VarLevel(bDef.Lhs.Subs[0], bDef); got != 2 {
		t.Errorf("VarLevel(s) = %d, want 2", got)
	}
}

func TestControlDependenceMarking(t *testing.T) {
	src := `
program f7
parameter n = 16
real a(n), b(n), c(n)
integer i
do i = 1, n
  if (b(i) /= 0.0) then
    a(i) = a(i) / b(i)
    if (b(i) < 0.0) goto 100
  else
    a(i) = c(i)
  end if
100 continue
end do
end
`
	p := build(t, src)
	var inner *Stmt
	var outerIf *Stmt
	for _, st := range p.Stmts {
		if st.Kind == SIfGoto {
			inner = st
		}
		if st.Kind == SIf {
			outerIf = st
		}
	}
	if inner == nil || outerIf == nil {
		t.Fatal("statements not found")
	}
	if len(inner.EnclosingIfs) != 1 || inner.EnclosingIfs[0] != outerIf {
		t.Errorf("inner.EnclosingIfs = %v", inner.EnclosingIfs)
	}
}

func TestAffineForms(t *testing.T) {
	src := `
program t
parameter n = 10
real a(n,n)
integer i, j
do i = 1, n
  do j = 1, n
    a(2*i+1, j-3) = a(i+j, (4*j)/2)
  end do
end do
end
`
	p := build(t, src)
	var s *Stmt
	for _, st := range p.Stmts {
		if st.Kind == SAssign {
			s = st
		}
	}
	lhs := s.Lhs
	if got := lhs.Subs[0].String(); got != "2*i+1" {
		t.Errorf("sub0 = %s", got)
	}
	if got := lhs.Subs[1].String(); got != "j+-3" {
		t.Errorf("sub1 = %s", got)
	}
	rhs := s.Uses[0]
	if rhs.Var.Name != "a" {
		t.Fatalf("first use = %v", rhs)
	}
	// i+j: two terms.
	if len(rhs.Subs[0].Terms) != 2 {
		t.Errorf("a(i+j,...) terms = %v", rhs.Subs[0].Terms)
	}
	// (4*j)/2 folds to 2*j.
	if got := rhs.Subs[1].String(); got != "2*j" {
		t.Errorf("sub (4*j)/2 = %s", got)
	}
}

func TestInnermostCommonLoop(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n)
integer i, j, k
do i = 1, n
  do j = 1, n
    a(j) = 0.0
  end do
  do k = 1, n
    a(k) = 1.0
  end do
end do
end
`
	p := build(t, src)
	iL, jL, kL := p.Loops[0], p.Loops[1], p.Loops[2]
	if got := InnermostCommonLoop(jL, kL); got != iL {
		t.Errorf("ICL(j,k) = %v", got)
	}
	if got := InnermostCommonLoop(jL, jL); got != jL {
		t.Errorf("ICL(j,j) = %v", got)
	}
	if got := InnermostCommonLoop(jL, nil); got != nil {
		t.Errorf("ICL(j,nil) = %v", got)
	}
	if !Encloses(iL, kL) || Encloses(kL, iL) || !Encloses(nil, iL) {
		t.Error("Encloses wrong")
	}
}
