package ir

import "phpf/internal/ast"

// SlotTable is the dense numbering of a program's variables: slot i is
// Vars[i], and Vars[i].Slot == i. Slots follow declaration order
// (Program.VarList), so the numbering is deterministic across rebuilds of
// the same source. The interpreter replaces its pointer-keyed value maps
// with flat slices indexed by slot; the slots pass in the compilation
// pipeline builds the table once the IR is in its final shape.
type SlotTable struct {
	Vars []*Var
}

// NumSlots returns how many variables are numbered.
func (t *SlotTable) NumSlots() int { return len(t.Vars) }

// AssignSlots numbers every variable of the program and caches the slot on
// every expression reference (ast.Ref.Slot, 1-based so the zero value means
// "unassigned"). It is idempotent: a program that already carries a table
// keeps it. The call mutates the program and is not safe to run
// concurrently with other users of the same program; run it from the
// pipeline (or any other single-threaded consumer) before execution.
func AssignSlots(p *Program) *SlotTable {
	if p.Slots != nil {
		return p.Slots
	}
	t := &SlotTable{Vars: make([]*Var, len(p.VarList))}
	for i, v := range p.VarList {
		v.Slot = int32(i)
		t.Vars[i] = v
	}
	// Cache slots on every reference the interpreter can evaluate: both
	// statement expressions and loop bounds. Loop-index references share
	// ast.Ref nodes between the IR reference list and the expressions, so
	// repeated visits are harmless (same variable, same slot).
	for _, st := range p.Stmts {
		if st.Lhs != nil {
			t.slotExpr(p, st.Lhs.Ast)
		}
		t.slotExpr(p, st.Rhs)
		t.slotExpr(p, st.Cond)
	}
	for _, l := range p.Loops {
		t.slotExpr(p, l.Lo)
		t.slotExpr(p, l.Hi)
		t.slotExpr(p, l.Step)
	}
	for _, r := range p.Refs {
		t.slotExpr(p, r.Ast)
	}
	p.Slots = t
	return t
}

// slotExpr walks one expression tree, stamping each reference with its
// variable's slot.
func (t *SlotTable) slotExpr(p *Program, e ast.Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.Ref:
		if v := p.Vars[x.Name]; v != nil {
			x.Slot = v.Slot + 1
		}
		for _, sub := range x.Subs {
			t.slotExpr(p, sub)
		}
	case *ast.BinOp:
		t.slotExpr(p, x.L)
		t.slotExpr(p, x.R)
	case *ast.UnaryMinus:
		t.slotExpr(p, x.X)
	case *ast.Not:
		t.slotExpr(p, x.X)
	case *ast.Call:
		for _, a := range x.Args {
			t.slotExpr(p, a)
		}
	}
}
