package ir

import (
	"fmt"
	"sort"
	"strings"

	"phpf/internal/ast"
)

// Affine is the analyzed form of one array subscript at a particular
// reference site. If OK, the subscript equals
//
//	Const + Σ Terms[i].Coef * Terms[i].Loop.Index
//
// over the loops enclosing the reference. Otherwise the subscript involves
// non-loop scalars or non-linear arithmetic; Scalars lists the scalar
// variables it reads (used to compute VarLevel per the paper).
type Affine struct {
	OK      bool
	Const   int64
	Terms   []AffTerm
	Scalars []*Var   // scalar variables appearing (non-affine case)
	Expr    ast.Expr // original expression
}

// AffTerm is one linear term over an enclosing loop's index.
type AffTerm struct {
	Loop *Loop
	Coef int64
}

// String renders the affine form for diagnostics.
func (a Affine) String() string {
	if !a.OK {
		return fmt.Sprintf("nonaffine(%s)", ast.ExprString(a.Expr))
	}
	var parts []string
	for _, t := range a.Terms {
		switch t.Coef {
		case 1:
			parts = append(parts, t.Loop.Index.Name)
		case -1:
			parts = append(parts, "-"+t.Loop.Index.Name)
		default:
			parts = append(parts, fmt.Sprintf("%d*%s", t.Coef, t.Loop.Index.Name))
		}
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	return strings.Join(parts, "+")
}

// IsConst reports whether the subscript is a compile-time constant, and its
// value.
func (a Affine) IsConst() (int64, bool) {
	if a.OK && len(a.Terms) == 0 {
		return a.Const, true
	}
	return 0, false
}

// CoefOf returns the coefficient of loop l's index (0 if absent).
func (a Affine) CoefOf(l *Loop) int64 {
	for _, t := range a.Terms {
		if t.Loop == l {
			return t.Coef
		}
	}
	return 0
}

// VariesIn reports whether the subscript's value can change across
// iterations of loop l: either l's index appears in an affine term, or
// (non-affine case) l's index appears, or some scalar it reads is assigned
// within l.
func (a Affine) VariesIn(l *Loop) bool {
	if a.OK {
		return a.CoefOf(l) != 0
	}
	for _, v := range a.Scalars {
		if v == l.Index {
			return true
		}
		if !v.IsLoopIndex && v.DefLoops[l] {
			return true
		}
	}
	return false
}

// analyzeSubscripts fills in r.Subs for array references.
func (b *builder) analyzeSubscripts(r *Ref) {
	if !r.Var.IsArray() {
		return
	}
	r.Subs = make([]Affine, len(r.Ast.Subs))
	for i, e := range r.Ast.Subs {
		r.Subs[i] = AnalyzeAffine(e, r.Stmt.Loop, b.prog.LookupVar)
	}
}

// AnalyzeAffine computes the affine form of expression e in the context of
// the loop nest with innermost loop encl. lookup resolves scalar variable
// names (may be nil, in which case non-index scalars are simply non-affine
// with no VarLevel contribution).
func AnalyzeAffine(e ast.Expr, encl *Loop, lookup func(string) *Var) Affine {
	an := &affAnalyzer{encl: encl, lookup: lookup}
	a := Affine{Expr: e}
	c, terms, ok := an.affine(e)
	if ok {
		a.OK = true
		a.Const = c
		a.Terms = canonTerms(terms)
	} else {
		a.Scalars = an.scalarsIn(e)
	}
	return a
}

type affAnalyzer struct {
	encl   *Loop
	lookup func(string) *Var
}

func canonTerms(m map[*Loop]int64) []AffTerm {
	var out []AffTerm
	for l, c := range m {
		if c != 0 {
			out = append(out, AffTerm{Loop: l, Coef: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loop.Level < out[j].Loop.Level })
	return out
}

// affine attempts to express e as const + Σ coef*loopindex.
func (an *affAnalyzer) affine(e ast.Expr) (int64, map[*Loop]int64, bool) {
	switch x := e.(type) {
	case *ast.IntConst:
		return x.Value, nil, true
	case *ast.Ref:
		if len(x.Subs) > 0 {
			return 0, nil, false
		}
		for l := an.encl; l != nil; l = l.Parent {
			if l.Index.Name == x.Name {
				return 0, map[*Loop]int64{l: 1}, true
			}
		}
		return 0, nil, false
	case *ast.UnaryMinus:
		c, t, ok := an.affine(x.X)
		if !ok {
			return 0, nil, false
		}
		nt := map[*Loop]int64{}
		for l, co := range t {
			nt[l] = -co
		}
		return -c, nt, true
	case *ast.BinOp:
		lc, lt, lok := an.affine(x.L)
		rc, rt, rok := an.affine(x.R)
		if !lok || !rok {
			return 0, nil, false
		}
		switch x.Op {
		case ast.Add, ast.Sub:
			sign := int64(1)
			if x.Op == ast.Sub {
				sign = -1
			}
			nt := map[*Loop]int64{}
			for l, co := range lt {
				nt[l] += co
			}
			for l, co := range rt {
				nt[l] += sign * co
			}
			return lc + sign*rc, nt, true
		case ast.Mul:
			if len(lt) == 0 {
				nt := map[*Loop]int64{}
				for l, co := range rt {
					nt[l] = lc * co
				}
				return lc * rc, nt, true
			}
			if len(rt) == 0 {
				nt := map[*Loop]int64{}
				for l, co := range lt {
					nt[l] = rc * co
				}
				return lc * rc, nt, true
			}
			return 0, nil, false
		case ast.Div:
			if len(rt) == 0 && rc != 0 && lc%rc == 0 {
				nt := map[*Loop]int64{}
				for l, co := range lt {
					if co%rc != 0 {
						return 0, nil, false
					}
					nt[l] = co / rc
				}
				return lc / rc, nt, true
			}
			return 0, nil, false
		}
		return 0, nil, false
	}
	return 0, nil, false
}

// scalarsIn collects the scalar variables (loop indices and others) read by
// e, resolved through the lookup function.
func (an *affAnalyzer) scalarsIn(e ast.Expr) []*Var {
	seen := map[string]bool{}
	var out []*Var
	ast.Walk(e, func(n ast.Expr) {
		r, ok := n.(*ast.Ref)
		if !ok || seen[r.Name] {
			return
		}
		seen[r.Name] = true
		for l := an.encl; l != nil; l = l.Parent {
			if l.Index.Name == r.Name {
				out = append(out, l.Index)
				return
			}
		}
		if an.lookup != nil {
			if v := an.lookup(r.Name); v != nil && !v.IsArray() {
				out = append(out, v)
			}
		}
	})
	return out
}

// VarLevel returns the paper's VarLevel(s): the nesting level of the
// innermost loop, among those enclosing stmt, in which the subscript varies
// in value. Level 0 means the subscript is invariant in the whole nest.
func VarLevel(a Affine, stmt *Stmt) int {
	for l := stmt.Loop; l != nil; l = l.Parent {
		if a.VariesIn(l) {
			return l.Level
		}
	}
	return 0
}

// SubscriptAlignLevel returns VarLevel(s) for affine subscripts and
// VarLevel(s)+1 otherwise — the nesting level of the outermost loop
// throughout which the subscript's value is well-defined (paper §2.2).
func SubscriptAlignLevel(a Affine, stmt *Stmt) int {
	vl := VarLevel(a, stmt)
	if a.OK {
		return vl
	}
	return vl + 1
}
