package ir

import (
	"strings"
	"testing"
)

func buildCFG(t *testing.T, src string) (*Program, *CFG) {
	t.Helper()
	p := build(t, src)
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatalf("BuildCFG: %v", err)
	}
	return p, g
}

// checkCFGWellFormed verifies pred/succ symmetry and that every statement
// appears in exactly one block.
func checkCFGWellFormed(t *testing.T, p *Program, g *CFG) {
	t.Helper()
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, pr := range s.Preds {
				if pr == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge B%d->B%d not mirrored in preds", b.ID, s.ID)
			}
		}
	}
	count := map[*Stmt]int{}
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			count[s]++
		}
	}
	for _, s := range p.Stmts {
		if count[s] != 1 {
			t.Errorf("statement s%d appears %d times in CFG", s.ID, count[s])
		}
	}
}

func TestCFGStraightLine(t *testing.T) {
	p, g := buildCFG(t, "program t\nreal x, y\nx = 1.0\ny = x\nend\n")
	checkCFGWellFormed(t, p, g)
	if len(g.Entry.Stmts) != 2 {
		t.Errorf("entry block has %d stmts, want 2", len(g.Entry.Stmts))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry succs = %v", g.Entry.Succs)
	}
}

func TestCFGLoopShape(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n)
integer i
do i = 1, n
  a(i) = 0.0
end do
end
`
	p, g := buildCFG(t, src)
	checkCFGWellFormed(t, p, g)
	loop := p.Loops[0]
	h := g.HeaderOf[loop]
	if h == nil || !h.IsHeader {
		t.Fatal("missing loop header")
	}
	// Header has 2 preds (preheader + latch) and 2 succs (body + exit).
	if len(h.Preds) != 2 {
		t.Errorf("header preds = %d, want 2", len(h.Preds))
	}
	if len(h.Succs) != 2 {
		t.Errorf("header succs = %d, want 2", len(h.Succs))
	}
	if g.PreheaderOf[loop] == nil || g.ExitOf[loop] == nil {
		t.Error("missing preheader or exit")
	}
	// Body block belongs to the loop.
	var bodyBlk *Block
	for _, s := range h.Succs {
		if s != g.ExitOf[loop] {
			bodyBlk = s
		}
	}
	if bodyBlk.Loop != loop {
		t.Errorf("body block loop = %v", bodyBlk.Loop)
	}
}

func TestCFGIfElse(t *testing.T) {
	src := `
program t
real x, y
if (x > 0.0) then
  y = 1.0
else
  y = 2.0
end if
x = y
end
`
	p, g := buildCFG(t, src)
	checkCFGWellFormed(t, p, g)
	// The entry block ends with the SIf and has two successors.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2 (then/else)", len(g.Entry.Succs))
	}
	// Both branch blocks converge on the join.
	j1 := g.Entry.Succs[0].Succs[0]
	j2 := g.Entry.Succs[1].Succs[0]
	if j1 != j2 {
		t.Errorf("branches join at B%d and B%d", j1.ID, j2.ID)
	}
}

func TestCFGIfNoElse(t *testing.T) {
	src := `
program t
real x, y
if (x > 0.0) then
  y = 1.0
end if
x = y
end
`
	p, g := buildCFG(t, src)
	checkCFGWellFormed(t, p, g)
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("entry succs = %d, want 2 (then/join)", len(g.Entry.Succs))
	}
}

func TestCFGGotoForward(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n), b(n)
integer i
do i = 1, n
  if (b(i) < 0.0) goto 100
  a(i) = b(i)
100 continue
end do
end
`
	p, g := buildCFG(t, src)
	checkCFGWellFormed(t, p, g)
	// The block holding the IfGoto must have an edge to the label block.
	var gotoBlk, labelBlk *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if s.Kind == SIfGoto {
				gotoBlk = b
			}
			if s.Kind == SContinue {
				labelBlk = b
			}
		}
	}
	if gotoBlk == nil || labelBlk == nil {
		t.Fatal("blocks not found")
	}
	found := false
	for _, s := range gotoBlk.Succs {
		if s == labelBlk {
			found = true
		}
	}
	if !found {
		t.Errorf("no edge from goto block B%d to label block B%d\n%s",
			gotoBlk.ID, labelBlk.ID, g)
	}
	if len(gotoBlk.Succs) != 2 {
		t.Errorf("ifgoto block has %d succs, want 2", len(gotoBlk.Succs))
	}
}

func TestCFGStringHasHeaders(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n)
integer i
do i = 1, n
  a(i) = 0.0
end do
end
`
	_, g := buildCFG(t, src)
	s := g.String()
	if !strings.Contains(s, "header of i-loop") {
		t.Errorf("CFG string missing header annotation:\n%s", s)
	}
}

func TestCFGNestedLoops(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n,n)
integer i, j
do i = 1, n
  do j = 1, n
    a(i,j) = 0.0
  end do
end do
end
`
	p, g := buildCFG(t, src)
	checkCFGWellFormed(t, p, g)
	iL, jL := p.Loops[0], p.Loops[1]
	if g.HeaderOf[iL] == g.HeaderOf[jL] {
		t.Error("loops share a header")
	}
	// The j-exit flows (directly or via the latch) back to the i-header.
	jExit := g.ExitOf[jL]
	if jExit.Loop != iL {
		t.Errorf("j-loop exit belongs to %v, want i-loop", jExit.Loop)
	}
}
