package ir

import (
	"fmt"
	"strings"
)

// Block is a basic block in the control flow graph. Blocks hold pointers to
// the same Stmt objects as the structured tree, so analyses can attach
// results to statements and see them from both views.
type Block struct {
	ID    int
	Stmts []*Stmt
	Succs []*Block
	Preds []*Block

	// Loop is the innermost loop this block belongs to (nil outside loops).
	Loop *Loop
	// IsHeader marks the loop-header block of Loop (the block where the
	// index variable takes its per-iteration value and phi functions for
	// loop-carried scalars are placed).
	IsHeader bool
}

// CFG is the control flow graph of a program.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block

	// HeaderOf maps each loop to its header block; PreheaderOf to the block
	// that runs immediately before the loop is entered; ExitOf to the block
	// control reaches after the loop completes.
	HeaderOf    map[*Loop]*Block
	PreheaderOf map[*Loop]*Block
	ExitOf      map[*Loop]*Block
}

type cfgBuilder struct {
	g *CFG
	// labelBlock maps a statement label to the block beginning at it.
	labelBlock map[int]*Block
	// pendingGotos are (source block, label) edges added after all labels
	// are placed.
	pendingGotos []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label int
}

// BuildCFG constructs the control flow graph for a lowered program.
//
// Loops produce the shape preheader → header → body… → latch(=last body
// block, edge back to header) with header → exit for termination. GOTOs may
// only target labels inside the same loop body (forward or backward), which
// covers the Fortran idioms in the benchmarks (early exit to a trailing
// CONTINUE).
func BuildCFG(p *Program) (*CFG, error) {
	b := &cfgBuilder{
		g: &CFG{
			HeaderOf:    map[*Loop]*Block{},
			PreheaderOf: map[*Loop]*Block{},
			ExitOf:      map[*Loop]*Block{},
		},
		labelBlock: map[int]*Block{},
	}
	entry := b.newBlock(nil)
	b.g.Entry = entry
	last, err := b.buildSeq(p.Body, entry, nil)
	if err != nil {
		return nil, err
	}
	exit := b.newBlock(nil)
	b.addEdge(last, exit)
	b.g.Exit = exit
	for _, pg := range b.pendingGotos {
		target, ok := b.labelBlock[pg.label]
		if !ok {
			return nil, fmt.Errorf("goto target %d not materialized in CFG", pg.label)
		}
		b.addEdge(pg.from, target)
	}
	return b.g, nil
}

func (b *cfgBuilder) newBlock(loop *Loop) *Block {
	blk := &Block{ID: len(b.g.Blocks), Loop: loop}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) addEdge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// buildSeq appends the CFG for nodes starting in cur, returning the block
// where control continues. A nil return means control cannot fall through
// (ends in an unconditional goto).
func (b *cfgBuilder) buildSeq(nodes []Node, cur *Block, loop *Loop) (*Block, error) {
	for _, n := range nodes {
		var err error
		cur, err = b.buildNode(n, cur, loop)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

func (b *cfgBuilder) buildNode(n Node, cur *Block, loop *Loop) (*Block, error) {
	switch x := n.(type) {
	case *Stmt:
		switch x.Kind {
		case SGoto:
			if cur != nil {
				cur.Stmts = append(cur.Stmts, x)
				b.pendingGotos = append(b.pendingGotos, pendingGoto{cur, x.Label})
			}
			return nil, nil // no fallthrough
		case SIfGoto:
			if cur == nil {
				cur = b.newBlock(loop)
			}
			cur.Stmts = append(cur.Stmts, x)
			b.pendingGotos = append(b.pendingGotos, pendingGoto{cur, x.Label})
			next := b.newBlock(loop)
			b.addEdge(cur, next)
			return next, nil
		case SContinue:
			// A label always starts a fresh block so GOTOs can target it.
			blk := b.newBlock(loop)
			b.addEdge(cur, blk)
			blk.Stmts = append(blk.Stmts, x)
			b.labelBlock[x.Label] = blk
			return blk, nil
		default:
			if cur == nil {
				// Unreachable statement after goto: give it its own block so
				// analyses still see it (it simply has no predecessors).
				cur = b.newBlock(loop)
			}
			cur.Stmts = append(cur.Stmts, x)
			return cur, nil
		}

	case *If:
		if cur == nil {
			cur = b.newBlock(loop)
		}
		cur.Stmts = append(cur.Stmts, x.Cond)
		thenBlk := b.newBlock(loop)
		b.addEdge(cur, thenBlk)
		thenEnd, err := b.buildSeq(x.Then, thenBlk, loop)
		if err != nil {
			return nil, err
		}
		var elseEnd *Block
		if len(x.Else) > 0 {
			elseBlk := b.newBlock(loop)
			b.addEdge(cur, elseBlk)
			elseEnd, err = b.buildSeq(x.Else, elseBlk, loop)
			if err != nil {
				return nil, err
			}
		}
		join := b.newBlock(loop)
		if thenEnd != nil {
			b.addEdge(thenEnd, join)
		}
		if len(x.Else) > 0 {
			if elseEnd != nil {
				b.addEdge(elseEnd, join)
			}
		} else {
			b.addEdge(cur, join)
		}
		return join, nil

	case *Loop:
		if cur == nil {
			cur = b.newBlock(loop)
		}
		// cur acts as (part of) the preheader; it evaluates the bounds.
		if x.BoundsStmt != nil {
			cur.Stmts = append(cur.Stmts, x.BoundsStmt)
		}
		header := b.newBlock(x)
		header.IsHeader = true
		b.g.PreheaderOf[x] = cur
		b.g.HeaderOf[x] = header
		b.addEdge(cur, header)

		bodyBlk := b.newBlock(x)
		b.addEdge(header, bodyBlk)
		bodyEnd, err := b.buildSeq(x.Body, bodyBlk, x)
		if err != nil {
			return nil, err
		}
		if bodyEnd != nil {
			b.addEdge(bodyEnd, header) // back edge
		}
		exit := b.newBlock(loop)
		b.addEdge(header, exit)
		b.g.ExitOf[x] = exit
		return exit, nil
	}
	return cur, nil
}

// String renders the CFG for debugging and golden tests.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "B%d", blk.ID)
		if blk == g.Entry {
			sb.WriteString(" (entry)")
		}
		if blk == g.Exit {
			sb.WriteString(" (exit)")
		}
		if blk.IsHeader {
			fmt.Fprintf(&sb, " (header of %s-loop)", blk.Loop.Index.Name)
		}
		sb.WriteString(":")
		for _, s := range blk.Stmts {
			fmt.Fprintf(&sb, " s%d", s.ID)
		}
		sb.WriteString(" ->")
		for _, t := range blk.Succs {
			fmt.Fprintf(&sb, " B%d", t.ID)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
