package ir

import (
	"phpf/internal/ast"
)

// MayOverlapAcross reports whether a definition reference and a use
// reference of the same array may touch the same element across any pair of
// iterations of loop l (and the loops it contains). It is the dependence
// test behind message vectorization: communication for `use` can be hoisted
// out of l only if no definition inside l may produce the value read.
//
// The test is a Banerjee-style range test on each dimension: the subscript
// difference def−use is formed with the indices of loops inside l treated as
// independent variables on the def and use sides (a loop-carried pair may
// run at different iteration numbers), and bounded by substituting loop
// bounds, innermost first. If some dimension's difference is provably
// nonzero, the references are independent. Inconclusive cases report true
// (may overlap).
func MayOverlapAcross(def, use *Ref, l *Loop) bool {
	if def.Var != use.Var {
		return false
	}
	if !def.Var.IsArray() {
		return true
	}
	for dim := 0; dim < def.Var.Rank(); dim++ {
		if provedDisjoint(def.Subs[dim], use.Subs[dim], l) {
			return false
		}
	}
	return true
}

// linKey identifies a symbolic variable in a linear form: a loop with a
// side tag (0 = shared, outside l; 1 = def instance; 2 = use instance).
type linKey struct {
	loop *Loop
	side int
}

// linForm is const + Σ coef·index(loop,side).
type linForm struct {
	c     int64
	terms map[linKey]int64
}

func newLin(c int64) *linForm { return &linForm{c: c, terms: map[linKey]int64{}} }

func (f *linForm) add(k linKey, coef int64) {
	f.terms[k] += coef
	if f.terms[k] == 0 {
		delete(f.terms, k)
	}
}

func (f *linForm) clone() *linForm {
	n := newLin(f.c)
	for k, v := range f.terms {
		n.terms[k] = v
	}
	return n
}

// provedDisjoint attempts to prove defSub ≠ useSub over all iteration pairs
// of the loops within l.
func provedDisjoint(dsub, usub Affine, l *Loop) bool {
	if !dsub.OK || !usub.OK {
		return false
	}
	delta := newLin(0)
	addAffine(delta, dsub, l, 1, 1)
	addAffine(delta, usub, l, 2, -1)
	if len(delta.terms) == 0 {
		return delta.c != 0
	}
	if v, ok := boundLin(delta.clone(), l, true); ok && v > 0 {
		return true
	}
	if v, ok := boundLin(delta.clone(), l, false); ok && v < 0 {
		return true
	}
	return false
}

// addAffine folds scale·a into the linear form, tagging indices of loops
// within l by side.
func addAffine(f *linForm, a Affine, l *Loop, side int, scale int64) {
	f.c += a.Const * scale
	for _, t := range a.Terms {
		s := 0
		if withinHoist(t.Loop, l) {
			s = side
		}
		f.add(linKey{loop: t.Loop, side: s}, t.Coef*scale)
	}
}

// withinHoist reports whether loop x is l or nested inside l.
func withinHoist(x, l *Loop) bool {
	for cur := x; cur != nil; cur = cur.Parent {
		if cur == l {
			return true
		}
	}
	return false
}

// boundLin computes a constant lower bound (wantMin=true) or upper bound of
// the linear form by substituting loop bounds for loop-index variables,
// innermost loops first. Returns false when a bound is not affine, a step
// is not a positive constant, or substitution does not terminate.
func boundLin(f *linForm, l *Loop, wantMin bool) (int64, bool) {
	for iter := 0; iter < 64; iter++ {
		if len(f.terms) == 0 {
			return f.c, true
		}
		// Pick the deepest-nested variable: its bounds may reference outer
		// indices, which are substituted later.
		var pick linKey
		havePick := false
		for k := range f.terms {
			if !havePick || k.loop.Level > pick.loop.Level {
				pick, havePick = k, true
			}
		}
		coef := f.terms[pick]
		delete(f.terms, pick)
		if pick.loop.Step != nil {
			if c, okc := pick.loop.Step.(*ast.IntConst); !okc || c.Value <= 0 {
				return 0, false
			}
		}
		// Substitute lo when (coef>0) == wantMin, else hi.
		var bexpr ast.Expr
		if (coef > 0) == wantMin {
			bexpr = pick.loop.Lo
		} else {
			bexpr = pick.loop.Hi
		}
		ba := AnalyzeAffine(bexpr, pick.loop.Parent, nil)
		if !ba.OK {
			return 0, false
		}
		// The bound's own terms keep the same side: an inner loop's bound
		// referencing an enclosing within-l index refers to that side's
		// instance of it.
		f.c += ba.Const * coef
		for _, t := range ba.Terms {
			s := 0
			if withinHoist(t.Loop, l) {
				s = pick.side
			}
			f.add(linKey{loop: t.Loop, side: s}, t.Coef*coef)
		}
	}
	return 0, false
}
