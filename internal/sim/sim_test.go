package sim

import (
	"math"
	"testing"

	"phpf/internal/core"
	"phpf/internal/machine"
	"phpf/internal/parser"
	"phpf/internal/spmd"
)

func run(t *testing.T, src string, nprocs int, opts core.Options) *Result {
	t.Helper()
	res := runErr(t, src, nprocs, opts, Config{})
	return res
}

func runErr(t *testing.T, src string, nprocs int, opts core.Options, cfg Config) *Result {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cres, err := core.BuildAndAnalyze(ap, nprocs, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	prog := spmd.Generate(cres)
	out, err := Run(prog, cfg)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return out
}

func approxSlice(t *testing.T, got []float64, want []float64, name string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestValuesSimpleLoop checks basic value semantics.
func TestValuesSimpleLoop(t *testing.T) {
	src := `
program t
parameter n = 8
real a(n), b(n)
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  b(i) = i * 2.0
  a(i) = b(i) + 1.0
end do
end
`
	out := run(t, src, 4, core.DefaultOptions())
	want := make([]float64, 8)
	for i := 0; i < 8; i++ {
		want[i] = float64(i+1)*2 + 1
	}
	approxSlice(t, out.Arrays["a"], want, "a")
}

// TestValuesFigure1 validates the figure-1 semantics against a direct Go
// evaluation, under all three scalar strategies (mapping must never change
// values).
func TestValuesFigure1(t *testing.T) {
	src := `
program figure1
parameter n = 20
real a(n), b(n), c(n), d(n), e(n), f(n)
real x, y, z
integer i, m
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
!hpf$ distribute (block) :: a
do i = 1, n
  b(i) = i * 1.0
  c(i) = i + 2.0
  e(i) = 1.0
  f(i) = 2.0
  a(i) = i * 0.5
end do
m = 2
do i = 2, n-1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i+1) = y / z
  d(m) = x / z
end do
end
`
	// Reference evaluation.
	n := 20
	a := make([]float64, n+1)
	b := make([]float64, n+1)
	c := make([]float64, n+1)
	d := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		b[i] = float64(i)
		c[i] = float64(i) + 2
		a[i] = float64(i) * 0.5
	}
	for i := 2; i <= n-1; i++ {
		m := i + 1
		x := b[i] + c[i]
		y := a[i] + b[i]
		z := 3.0
		a[i+1] = y / z
		d[m] = x / z
	}

	for _, strat := range []core.ScalarStrategy{
		core.ScalarsReplicated, core.ScalarsProducerAligned, core.ScalarsSelected,
	} {
		opts := core.DefaultOptions()
		opts.Scalars = strat
		out := run(t, src, 4, opts)
		approxSlice(t, out.Arrays["a"], a[1:], "a under "+strat.String())
		approxSlice(t, out.Arrays["d"], d[1:], "d under "+strat.String())
	}
}

// TestFigure1TimeOrdering reproduces Table 1's shape on the figure-1 kernel:
// replication is slowest, producer alignment pays per-iteration messages,
// selected alignment is fastest.
func TestFigure1TimeOrdering(t *testing.T) {
	src := `
program f1big
parameter n = 2000
real a(n), b(n), c(n), d(n), e(n), f(n)
real x, y, z
integer i, m
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
!hpf$ distribute (block) :: a
m = 2
do i = 2, n-1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i+1) = y / z
  d(m) = x / z
end do
end
`
	times := map[core.ScalarStrategy]float64{}
	for _, strat := range []core.ScalarStrategy{
		core.ScalarsReplicated, core.ScalarsProducerAligned, core.ScalarsSelected,
	} {
		opts := core.DefaultOptions()
		opts.Scalars = strat
		out := run(t, src, 16, opts)
		times[strat] = out.Time
	}
	if !(times[core.ScalarsSelected] < times[core.ScalarsProducerAligned]) {
		t.Errorf("selected (%v) should beat producer (%v)",
			times[core.ScalarsSelected], times[core.ScalarsProducerAligned])
	}
	if !(times[core.ScalarsProducerAligned] < times[core.ScalarsReplicated]) {
		t.Errorf("producer (%v) should beat replication (%v)",
			times[core.ScalarsProducerAligned], times[core.ScalarsReplicated])
	}
	// The paper's headline: orders of magnitude between replication and
	// selected alignment.
	if times[core.ScalarsReplicated] < 10*times[core.ScalarsSelected] {
		t.Errorf("replication/selected ratio = %v, want >> 1",
			times[core.ScalarsReplicated]/times[core.ScalarsSelected])
	}
}

// TestGotoSemantics: the figure-7 control flow computes correct values.
func TestGotoSemantics(t *testing.T) {
	src := `
program f7
parameter n = 10
real a(n), b(n), c(n)
integer i
!hpf$ align (i) with a(i) :: b, c
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = 10.0
  c(i) = i * 1.0
  b(i) = i - 5.0
end do
do i = 1, n
  if (b(i) /= 0.0) then
    a(i) = a(i) / b(i)
    if (b(i) < 0.0) goto 100
  else
    a(i) = c(i)
    c(i) = c(i) * c(i)
  end if
  a(i) = a(i) + 100.0
100 continue
end do
end
`
	out := run(t, src, 4, core.DefaultOptions())
	// Reference.
	n := 10
	a := make([]float64, n+1)
	b := make([]float64, n+1)
	c := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		a[i], c[i], b[i] = 10.0, float64(i), float64(i-5)
	}
	for i := 1; i <= n; i++ {
		if b[i] != 0 {
			a[i] = a[i] / b[i]
			if b[i] < 0 {
				continue
			}
		} else {
			a[i] = c[i]
			c[i] = c[i] * c[i]
		}
		a[i] += 100.0
	}
	approxSlice(t, out.Arrays["a"], a[1:], "a")
	approxSlice(t, out.Arrays["c"], c[1:], "c")
}

// TestReductionValueAndCombine: a sum reduction computes the right value
// and the combine appears in the stats.
func TestReductionValueAndCombine(t *testing.T) {
	src := `
program red
parameter n = 32
real a(n,n), b(n)
real s
integer i, j
!hpf$ align b(i) with a(i,*)
!hpf$ distribute (block,block) :: a
do i = 1, n
  do j = 1, n
    a(i,j) = i * 1.0 + j
  end do
end do
do i = 1, n
  s = 0.0
  do j = 1, n
    s = s + a(i,j)
  end do
  b(i) = s
end do
end
`
	check := func(out *Result) {
		t.Helper()
		for i := 1; i <= 32; i++ {
			want := 0.0
			for j := 1; j <= 32; j++ {
				want += float64(i) + float64(j)
			}
			got := out.Arrays["b"][i-1]
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("b(%d) = %v, want %v", i, got, want)
			}
		}
	}
	// Default (auto) privatizes this sum: the combine shows up as tree merges.
	out := run(t, src, 16, core.DefaultOptions())
	check(out)
	if out.Stats.Merges == 0 {
		t.Error("expected privatized tree merges in stats under reduce=auto")
	}
	if out.Stats.Reductions != 0 {
		t.Errorf("reductions = %d under reduce=auto, want 0 (privatized)", out.Stats.Reductions)
	}
	// Collective mode keeps the §2.3 log-P combining collective.
	outC := runErr(t, src, 16, core.DefaultOptions(), Config{Reduce: core.ReduceCollective})
	check(outC)
	if outC.Stats.Reductions == 0 {
		t.Error("expected reduction combines in stats under reduce=collective")
	}
	if outC.Stats.Merges != 0 {
		t.Errorf("merges = %d under reduce=collective, want 0", outC.Stats.Merges)
	}
}

// TestReplicationBroadcastStats: the replicated strategy produces broadcast
// traffic that the selected strategy avoids.
func TestReplicationBroadcastStats(t *testing.T) {
	src := `
program t
parameter n = 200
real a(n), b(n), d(n)
real x
integer i
!hpf$ align (i) with a(i) :: b, d
!hpf$ distribute (block) :: a
do i = 1, n
  x = b(i) * 2.0
  a(i) = x
  d(i) = x + a(i)
end do
end
`
	optsRepl := core.DefaultOptions()
	optsRepl.Scalars = core.ScalarsReplicated
	outRepl := run(t, src, 8, optsRepl)
	outSel := run(t, src, 8, core.DefaultOptions())
	if outSel.Stats.BytesMoved >= outRepl.Stats.BytesMoved {
		t.Errorf("selected moved %d bytes, replication %d — expected strictly less",
			outSel.Stats.BytesMoved, outRepl.Stats.BytesMoved)
	}
	if outSel.Time >= outRepl.Time {
		t.Errorf("selected time %v >= replication time %v", outSel.Time, outRepl.Time)
	}
}

// TestRedistribute: values survive and an all-to-all is charged.
func TestRedistribute(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n)
integer i, j
!hpf$ distribute (block,*) :: a
do i = 1, n
  do j = 1, n
    a(i,j) = i * 100.0 + j
  end do
end do
!hpf$ redistribute a(*,block)
do i = 1, n
  do j = 1, n
    a(i,j) = a(i,j) + 1.0
  end do
end do
end
`
	out := run(t, src, 4, core.DefaultOptions())
	if out.Stats.AllToAlls != 1 {
		t.Errorf("all-to-alls = %d, want 1", out.Stats.AllToAlls)
	}
	for i := 1; i <= 16; i++ {
		for j := 1; j <= 16; j++ {
			want := float64(i)*100 + float64(j) + 1
			got := out.Arrays["a"][(j-1)*16+(i-1)]
			if got != want {
				t.Fatalf("a(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestMaxSecondsAbort: the cutoff reproduces the paper's "aborted" entries.
func TestMaxSecondsAbort(t *testing.T) {
	src := `
program slow
parameter n = 400
real a(n), b(n)
real x
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  x = b(i)
  a(i) = x
end do
end
`
	opts := core.DefaultOptions()
	opts.Scalars = core.ScalarsReplicated
	out := runErr(t, src, 8, opts, Config{MaxSeconds: 1e-9})
	if !out.Aborted {
		t.Error("expected aborted run")
	}
}

// TestOneProcessorNoComm: on one processor nothing communicates.
func TestOneProcessorNoComm(t *testing.T) {
	src := `
program t
parameter n = 64
real a(n), b(n)
real x
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 2, n
  x = b(i-1)
  a(i) = x
end do
end
`
	out := run(t, src, 1, core.DefaultOptions())
	if out.Stats.BytesMoved != 0 {
		t.Errorf("bytes moved on 1 proc = %d, want 0", out.Stats.BytesMoved)
	}
	if out.Time <= 0 {
		t.Error("time should be positive (compute)")
	}
}

// TestSpeedupWithAlignment: the aligned stencil speeds up with processors.
func TestSpeedupWithAlignment(t *testing.T) {
	src := `
program st
parameter n = 32768
real a(n), b(n)
integer i, it
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do it = 1, 10
  do i = 2, n-1
    a(i) = b(i-1) + b(i+1)
  end do
  do i = 2, n-1
    b(i) = a(i) * 0.5
  end do
end do
end
`
	t1 := run(t, src, 1, core.DefaultOptions()).Time
	t8 := run(t, src, 8, core.DefaultOptions()).Time
	if t8 >= t1 {
		t.Errorf("no speedup: t1=%v t8=%v", t1, t8)
	}
	if t1/t8 < 3 {
		t.Errorf("speedup %v too low (want >= 3 on 8 procs)", t1/t8)
	}
}

// TestBoundsError: out-of-bounds subscripts are reported.
func TestBoundsError(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n)
integer i
do i = 1, 5
  a(i) = 0.0
end do
end
`
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := core.BuildAndAnalyze(ap, 2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spmd.Generate(cres), Config{Params: machine.SP2()}); err == nil {
		t.Error("expected out-of-bounds error")
	}
}
