package sim

import (
	"testing"

	"phpf/internal/core"
	"phpf/internal/fault"
	"phpf/internal/parser"
	"phpf/internal/spmd"
)

// mustAnalyze compiles src down to an SPMD program with default options.
func mustAnalyze(t *testing.T, src string, nprocs int) *spmd.Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cres, err := core.BuildAndAnalyze(ap, nprocs, core.DefaultOptions())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return spmd.Generate(cres)
}

// faultSrc is a small paper-style kernel: a privatized scalar x whose
// mapping differs across strategies (aligned with a(i) under the selected
// algorithm, replicated under the naive one) over a block-distributed array.
const faultSrc = `
program t
parameter n = 64
real a(n), b(n)
real x
integer i, iter
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do iter = 1, 6
  do i = 2, n
    x = b(i-1)
    a(i) = x + 1.0
  end do
  do i = 1, n
    b(i) = a(i) * 0.5
  end do
end do
end
`

// TestZeroFaultIdentity: an all-zero fault plan and a zero checkpoint
// interval reproduce the fault-free run bit for bit (pay-for-what-you-use).
func TestZeroFaultIdentity(t *testing.T) {
	opts := core.DefaultOptions()
	base := runErr(t, faultSrc, 8, opts, Config{})
	faulted := runErr(t, faultSrc, 8, opts, Config{
		Fault: &fault.Plan{Seed: 99, LossRate: 0, DupRate: 0},
	})
	if base.Time != faulted.Time {
		t.Errorf("time diverged: %v vs %v", base.Time, faulted.Time)
	}
	if base.Stats != faulted.Stats {
		t.Errorf("stats diverged:\n%+v\n%+v", base.Stats, faulted.Stats)
	}
}

// TestLossDeterministic: with a fixed seed, lossy runs are bit-identical
// across invocations; a different seed changes the schedule.
func TestLossDeterministic(t *testing.T) {
	opts := core.DefaultOptions()
	cfg := Config{Fault: &fault.Plan{Seed: 42, LossRate: 0.05}}
	a := runErr(t, faultSrc, 8, opts, cfg)
	b := runErr(t, faultSrc, 8, opts, cfg)
	if a.Time != b.Time || a.Stats != b.Stats {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.Time, a.Stats, b.Time, b.Stats)
	}
	if a.Stats.Retransmits == 0 {
		t.Fatal("5% loss produced no retransmits")
	}
	c := runErr(t, faultSrc, 8, opts, Config{Fault: &fault.Plan{Seed: 43, LossRate: 0.05}})
	if c.Stats.Retransmits == a.Stats.Retransmits && c.Time == a.Time {
		t.Error("different seeds produced identical fault schedules (suspicious)")
	}
}

// TestLossSlowsRun: retransmissions cost time.
func TestLossSlowsRun(t *testing.T) {
	opts := core.DefaultOptions()
	base := runErr(t, faultSrc, 8, opts, Config{})
	lossy := runErr(t, faultSrc, 8, opts, Config{Fault: &fault.Plan{Seed: 1, LossRate: 0.2}})
	if !(lossy.Time > base.Time) {
		t.Errorf("lossy run not slower: %v vs %v", lossy.Time, base.Time)
	}
	// Values are unaffected: faults perturb time, not semantics.
	for name, arr := range base.Arrays {
		approxSlice(t, lossy.Arrays[name], arr, name)
	}
}

// TestSlowdownIncreasesTime: a slowed processor stretches the run.
func TestSlowdownIncreasesTime(t *testing.T) {
	opts := core.DefaultOptions()
	base := runErr(t, faultSrc, 8, opts, Config{})
	slow := runErr(t, faultSrc, 8, opts, Config{Fault: &fault.Plan{
		Slowdowns: []fault.Slowdown{{Proc: 3, Factor: 4}},
	}})
	if !(slow.Time > base.Time) {
		t.Errorf("slowdown did not slow the run: %v vs %v", slow.Time, base.Time)
	}
}

// TestCrashCheckpointRecovery: a crash is recovered exactly once, the run
// still completes with correct values, checkpoints are taken, and recovery
// refetches the crashed processor's array partition.
func TestCrashCheckpointRecovery(t *testing.T) {
	opts := core.DefaultOptions()
	base := runErr(t, faultSrc, 8, opts, Config{})
	crashed := runErr(t, faultSrc, 8, opts, Config{
		Fault:              &fault.Plan{Crashes: []fault.Crash{{Proc: 2, At: base.Time / 2}}},
		CheckpointInterval: base.Time / 8,
	})
	if crashed.Stats.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", crashed.Stats.Crashes)
	}
	if crashed.Stats.Checkpoints == 0 {
		t.Error("no checkpoints were taken")
	}
	if crashed.Stats.RecoveryBytes == 0 {
		t.Error("recovery of a block-distributed array should refetch its partition")
	}
	if !(crashed.Time > base.Time) {
		t.Errorf("crash+recovery not slower: %v vs %v", crashed.Time, base.Time)
	}
	for name, arr := range base.Arrays {
		approxSlice(t, crashed.Arrays[name], arr, name)
	}
}

// TestRecoveryBytesReplicationVsAlignment: the robustness consequence of the
// paper's mapping choice — a replicated privatized scalar needs no recovery
// communication after a crash, while an aligned one must be refetched, so
// the replication strategy recovers strictly fewer bytes on the same
// program, crash, and checkpoint schedule.
func TestRecoveryBytesReplicationVsAlignment(t *testing.T) {
	crash := func(opts core.Options) *Result {
		return runErr(t, faultSrc, 8, opts, Config{
			Fault: &fault.Plan{Crashes: []fault.Crash{{Proc: 1, At: 0}}},
		})
	}
	repl := core.DefaultOptions()
	repl.Scalars = core.ScalarsReplicated
	repl.AlignReductions = false
	aligned := core.DefaultOptions() // selected alignment

	r := crash(repl)
	a := crash(aligned)
	if r.Stats.Crashes != 1 || a.Stats.Crashes != 1 {
		t.Fatalf("both runs must crash once: %d, %d", r.Stats.Crashes, a.Stats.Crashes)
	}
	if !(r.Stats.RecoveryBytes < a.Stats.RecoveryBytes) {
		t.Errorf("replication should recover strictly fewer bytes: repl=%d aligned=%d",
			r.Stats.RecoveryBytes, a.Stats.RecoveryBytes)
	}
}

// TestFaultConfigValidation: bad plans and out-of-range processors are
// rejected with descriptive errors instead of corrupting the run.
func TestFaultConfigValidation(t *testing.T) {
	ap := mustAnalyze(t, faultSrc, 8)
	cases := []Config{
		{Fault: &fault.Plan{LossRate: 1.5}},
		{Fault: &fault.Plan{Crashes: []fault.Crash{{Proc: 64, At: 1}}}},
		{Fault: &fault.Plan{Slowdowns: []fault.Slowdown{{Proc: 64, Factor: 2}}}},
		{CheckpointInterval: -1},
	}
	for i, cfg := range cases {
		if _, err := Run(ap, cfg); err == nil {
			t.Errorf("case %d: invalid fault config accepted", i)
		}
	}
}
