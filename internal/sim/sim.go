// Package sim executes an SPMD program on the simulated machine. Statement
// instances are interpreted in sequential program order (valid because SPMD
// execution under owner-computes is sequentially consistent with the
// source); each instance advances the clocks of the processors in its
// execution set, per-instance communications synchronize sender and
// receivers, and vectorized communications are charged once per entry of
// their outermost hoisted loop. The program's values are computed for real,
// so results can be validated against sequential references.
package sim

import (
	"fmt"
	"math"
	"sort"

	"phpf/internal/ast"
	"phpf/internal/comm"
	"phpf/internal/core"
	"phpf/internal/dist"
	"phpf/internal/fault"
	"phpf/internal/ir"
	"phpf/internal/machine"
	"phpf/internal/spmd"
)

// Config controls a simulation run.
type Config struct {
	Params machine.Params
	// MaxSeconds aborts the run once the simulated time exceeds this bound
	// (reproducing the paper's ">1 day, aborted" entries). Zero disables.
	MaxSeconds float64
	// Profile collects per-statement simulated-time attribution (compute
	// and communication charged while executing each statement).
	Profile bool
	// Fault, when non-nil and active, injects message loss/duplication,
	// compute slowdowns, and fail-stop crashes (see internal/fault). A nil
	// or inactive plan leaves the fault-free arithmetic bit-identical.
	Fault *fault.Plan
	// CheckpointInterval takes a coordinated checkpoint at
	// hoisted-communication boundaries whenever at least this much
	// simulated time has passed since the last one (0 = only the implicit
	// free checkpoint at t=0). Crash recovery rolls back to the last
	// checkpoint and re-executes the lost interval; the restarted
	// processor refetches aligned and partitioned state, while replicated
	// state restores locally.
	CheckpointInterval float64
}

// StmtProfile is one statement's share of the simulated activity.
type StmtProfile struct {
	Stmt *ir.Stmt
	// Instances is how many times the statement executed.
	Instances int64
	// Seconds is the total clock advance attributed to the statement
	// (summed over processors).
	Seconds float64
}

// Result is the outcome of one run.
type Result struct {
	Time    float64
	Stats   machine.Stats
	Aborted bool

	// Final memory, for validation against reference implementations.
	Scalars map[string]float64
	Arrays  map[string][]float64

	// Profile holds per-statement attribution when Config.Profile was set,
	// sorted by descending Seconds.
	Profile []StmtProfile
}

// errAbort signals the MaxSeconds cutoff internally.
type errAbort struct{}

func (errAbort) Error() string { return "simulated time limit exceeded" }

// Run executes the program with cfg.
func Run(p *spmd.Program, cfg Config) (*Result, error) {
	if cfg.Params == (machine.Params{}) {
		cfg.Params = machine.SP2()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Fault.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	nprocs := p.Res.Mapping.Grid.Size()
	if cfg.Fault.Active() {
		for _, c := range cfg.Fault.Crashes {
			if c.Proc >= nprocs {
				return nil, fmt.Errorf("sim: crash of processor %d, but the machine has %d", c.Proc, nprocs)
			}
		}
		for _, s := range cfg.Fault.Slowdowns {
			if s.Proc >= nprocs {
				return nil, fmt.Errorf("sim: slowdown of processor %d, but the machine has %d", s.Proc, nprocs)
			}
		}
	}
	if cfg.CheckpointInterval < 0 || math.IsNaN(cfg.CheckpointInterval) {
		return nil, fmt.Errorf("sim: checkpoint interval must be >= 0, got %v", cfg.CheckpointInterval)
	}
	in := &interp{
		prog:    p,
		cfg:     cfg,
		mach:    machine.New(p.Res.Mapping.Grid, cfg.Params),
		inj:     fault.NewInjector(cfg.Fault),
		scalars: map[*ir.Var]float64{},
		arrays:  map[*ir.Var][]float64{},
		indices: map[*ir.Var]int64{},
		dyn:     map[*ir.Var]*dist.ArrayMap{},
	}
	in.mach.Fault = in.inj
	if cfg.Profile {
		in.profile = map[*ir.Stmt]*StmtProfile{}
	}
	for _, v := range p.Res.Prog.VarList {
		if v.IsArray() {
			in.arrays[v] = make([]float64, v.Size())
			in.dyn[v] = p.Res.Mapping.Arrays[v]
		}
	}
	ctl, err := in.runNodes(p.Res.Prog.Body)
	aborted := false
	if err != nil {
		if _, ok := err.(errAbort); !ok {
			return nil, err
		}
		aborted = true
	} else if ctl.kind == ctlGoto {
		return nil, fmt.Errorf("sim: goto %d escaped the program", ctl.label)
	}
	res := &Result{
		Time:    in.mach.Time(),
		Stats:   in.mach.Stats,
		Aborted: aborted,
		Scalars: map[string]float64{},
		Arrays:  map[string][]float64{},
	}
	for v, x := range in.scalars {
		res.Scalars[v.Name] = x
	}
	for v, a := range in.arrays {
		res.Arrays[v.Name] = a
	}
	if in.profile != nil {
		for _, sp := range in.profile {
			res.Profile = append(res.Profile, *sp)
		}
		sort.Slice(res.Profile, func(i, j int) bool {
			if res.Profile[i].Seconds != res.Profile[j].Seconds {
				return res.Profile[i].Seconds > res.Profile[j].Seconds
			}
			return res.Profile[i].Stmt.ID < res.Profile[j].Stmt.ID
		})
	}
	return res, nil
}

type ctlKind int

const (
	ctlNormal ctlKind = iota
	ctlGoto
)

type control struct {
	kind  ctlKind
	label int
}

type interp struct {
	prog *spmd.Program
	cfg  Config
	mach *machine.Machine

	// inj draws fault decisions (nil on fault-free runs); lastCkpt is the
	// simulated time of the last coordinated checkpoint (the implicit free
	// one at t=0 until a real one is taken).
	inj      *fault.Injector
	lastCkpt float64

	scalars map[*ir.Var]float64
	arrays  map[*ir.Var][]float64
	indices map[*ir.Var]int64
	// dyn holds the current (possibly redistributed) mapping per array.
	dyn map[*ir.Var]*dist.ArrayMap

	// unionCache memoizes the per-iteration union execution set.
	unionCache map[*ir.Loop]dist.ProcSet
	unionEpoch map[*ir.Loop]int64
	epoch      int64

	// profile accumulates per-statement attribution when enabled.
	profile map[*ir.Stmt]*StmtProfile
}

// clockSum is the total of all processor clocks (used to attribute time).
func (in *interp) clockSum() float64 {
	s := 0.0
	for _, c := range in.mach.Clock {
		s += c
	}
	return s
}

// attribute runs fn and charges the clock advance it causes to st.
func (in *interp) attribute(st *ir.Stmt, fn func() error) error {
	if in.profile == nil {
		return fn()
	}
	before := in.clockSum()
	err := fn()
	p := in.profile[st]
	if p == nil {
		p = &StmtProfile{Stmt: st}
		in.profile[st] = p
	}
	p.Instances++
	p.Seconds += in.clockSum() - before
	return err
}

func (in *interp) grid() *dist.Grid { return in.prog.Res.Mapping.Grid }

func (in *interp) checkTime() error {
	if in.inj != nil {
		// Fire any fail-stop crashes whose time has been reached. Recovery
		// advances the clocks, which may bring the next scheduled crash
		// due, so drain until quiescent (each crash fires exactly once).
		for {
			c := in.inj.PendingCrash(in.mach.Time())
			if c == nil {
				break
			}
			in.recoverCrash(c)
		}
	}
	if in.cfg.MaxSeconds > 0 && in.mach.Time() > in.cfg.MaxSeconds {
		return errAbort{}
	}
	return nil
}

// maybeCheckpoint takes a coordinated checkpoint at a hoisted-communication
// boundary when the configured interval has elapsed. Checkpoint state is
// each processor's partition of the distributed arrays plus its private
// scalar copies, written to stable storage at link speed.
func (in *interp) maybeCheckpoint() {
	if in.cfg.CheckpointInterval <= 0 {
		return
	}
	now := in.mach.Time()
	if now-in.lastCkpt < in.cfg.CheckpointInterval {
		return
	}
	in.mach.Checkpoint(in.checkpointBytes())
	in.lastCkpt = in.mach.Time()
}

// checkpointBytes returns each processor's live state size: its partition of
// every (dynamically mapped) array plus one element per scalar variable.
func (in *interp) checkpointBytes() []int64 {
	g := in.grid()
	eb := int64(in.cfg.Params.ElemBytes)
	out := make([]int64, g.Size())
	var scalarBytes int64
	for _, v := range in.prog.Res.Prog.VarList {
		if v.IsArray() || v.IsLoopIndex {
			continue
		}
		scalarBytes += eb
	}
	for p := range out {
		coords := g.Coords(p)
		b := scalarBytes
		for _, am := range in.dyn {
			if am == nil {
				continue
			}
			b += am.LocalElems(g, coords) * eb
		}
		out[p] = b
	}
	return out
}

// recoverCrash restores a fail-stop processor from the last coordinated
// checkpoint. Every processor rolls back and re-executes the lost interval;
// the restarted processor additionally refetches the state its mapping does
// not replicate: its partitions of distributed arrays and the live copies of
// aligned privatized scalars. Replicated copies — the paper's replication
// mapping — restore locally at zero communication cost, which is the
// robustness dividend of that mapping choice.
func (in *interp) recoverCrash(c *fault.Crash) {
	now := in.mach.Time()
	lost := now - in.lastCkpt
	if lost < 0 {
		lost = 0
	}
	bytes, msgs := in.refetchCost(c.Proc)
	in.mach.Recover(c.Proc, lost, bytes, msgs)
	// Recovery reestablishes a consistent global state.
	in.lastCkpt = in.mach.Time()
}

// refetchCost sizes the recovery communication for a restarted processor:
// non-replicated array partitions under the current dynamic mapping, plus
// one element per scalar variable classified RecoverRefetch by the SPMD
// plan (aligned and reduction-mapped privatized scalars).
func (in *interp) refetchCost(p int) (bytes, msgs int64) {
	g := in.grid()
	coords := g.Coords(p)
	eb := int64(in.cfg.Params.ElemBytes)
	for _, v := range in.prog.Res.Prog.VarList {
		if !v.IsArray() {
			continue
		}
		am := in.dyn[v]
		if am == nil || am.FullyReplicated() {
			continue // replicated: every survivor holds a copy
		}
		if n := am.LocalElems(g, coords); n > 0 {
			bytes += n * eb
			msgs++
		}
	}
	for v, cls := range in.prog.Recovery {
		if v.IsArray() || cls != spmd.RecoverRefetch {
			continue
		}
		bytes += eb
		msgs++
	}
	return bytes, msgs
}

// ---------------------------------------------------------------------------
// Node execution

func (in *interp) runNodes(nodes []ir.Node) (control, error) {
	for i := 0; i < len(nodes); i++ {
		ctl, err := in.runNode(nodes[i])
		if err != nil {
			return control{}, err
		}
		if ctl.kind == ctlGoto {
			// Look for the labeled CONTINUE later in this sequence.
			target := -1
			for j := range nodes {
				if st, ok := nodes[j].(*ir.Stmt); ok && st.Kind == ir.SContinue && st.Label == ctl.label {
					target = j
					break
				}
			}
			if target < 0 {
				return ctl, nil // propagate upward
			}
			i = target // resume at the label
			continue
		}
	}
	return control{}, nil
}

func (in *interp) runNode(n ir.Node) (control, error) {
	switch x := n.(type) {
	case *ir.Stmt:
		return in.execStmt(x)
	case *ir.If:
		return in.execIf(x)
	case *ir.Loop:
		return in.execLoop(x)
	}
	return control{}, nil
}

func (in *interp) execLoop(l *ir.Loop) (control, error) {
	if l.BoundsStmt != nil {
		if _, err := in.execStmt(l.BoundsStmt); err != nil {
			return control{}, err
		}
	}
	lo, err := in.evalInt(l.Lo)
	if err != nil {
		return control{}, err
	}
	hi, err := in.evalInt(l.Hi)
	if err != nil {
		return control{}, err
	}
	step := int64(1)
	if l.Step != nil {
		step, err = in.evalInt(l.Step)
		if err != nil {
			return control{}, err
		}
		if step == 0 {
			return control{}, fmt.Errorf("sim: zero loop step at line %d", l.Line)
		}
	}

	// Vectorized communication covering all iterations of this loop,
	// performed at loop entry.
	lp := in.prog.Loops[l]
	if lp != nil {
		// A hoisted-communication boundary is a natural coordination point:
		// no aggregated transfer is in flight, so a consistent checkpoint
		// needs no message draining.
		if len(lp.Hoisted) > 0 || l.Parent == nil {
			in.maybeCheckpoint()
		}
		// The loop index ranges over the whole iteration space for the
		// purpose of the aggregated transfer; set it to lo so affine
		// evaluation has a defined base.
		in.indices[l.Index] = lo
		for _, req := range lp.Hoisted {
			req := req
			if err := in.attribute(req.Stmt, func() error {
				return in.vectorizedComm(req)
			}); err != nil {
				return control{}, err
			}
		}
	}

	for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
		in.indices[l.Index] = v
		in.epoch++
		ctl, err := in.runNodes(l.Body)
		if err != nil {
			return control{}, err
		}
		if ctl.kind == ctlGoto {
			return ctl, nil // escaping goto terminates the loop
		}
		if err := in.checkTime(); err != nil {
			return control{}, err
		}
	}

	// Global reduction combines after the loop.
	if lp != nil {
		for _, m := range lp.Combines {
			set := in.patternSet(m.Pattern, nil)
			in.mach.Reduce(set, int64(in.cfg.Params.ElemBytes))
		}
	}
	return control{}, nil
}

func (in *interp) execIf(ifn *ir.If) (control, error) {
	if _, err := in.execStmt(ifn.Cond); err != nil {
		return control{}, err
	}
	c, err := in.eval(ifn.Cond.Cond)
	if err != nil {
		return control{}, err
	}
	if c != 0 {
		return in.runNodes(ifn.Then)
	}
	return in.runNodes(ifn.Else)
}

// execStmt performs communication, charges computation, and computes values
// for one statement instance.
func (in *interp) execStmt(st *ir.Stmt) (control, error) {
	if in.profile != nil {
		var ctl control
		err := in.attribute(st, func() error {
			var e error
			ctl, e = in.execStmtInner(st)
			return e
		})
		return ctl, err
	}
	return in.execStmtInner(st)
}

func (in *interp) execStmtInner(st *ir.Stmt) (control, error) {
	sp := in.prog.Stmts[st]

	// Per-instance communication.
	for _, req := range sp.PerInstance {
		if err := in.instanceComm(req, sp); err != nil {
			return control{}, err
		}
	}

	// Execution set and computation charge.
	execSet, err := in.execSet(sp)
	if err != nil {
		return control{}, err
	}
	if sp.Flops > 0 {
		in.mach.Compute(execSet, float64(sp.Flops)*in.cfg.Params.FlopTime)
	}

	// Semantics.
	switch st.Kind {
	case ir.SAssign:
		val, err := in.eval(st.Rhs)
		if err != nil {
			return control{}, err
		}
		if err := in.store(st.Lhs, val); err != nil {
			return control{}, err
		}
	case ir.SIfGoto:
		c, err := in.eval(st.Cond)
		if err != nil {
			return control{}, err
		}
		if c != 0 {
			return control{kind: ctlGoto, label: st.Label}, nil
		}
	case ir.SGoto:
		return control{kind: ctlGoto, label: st.Label}, nil
	case ir.SRedistribute:
		if err := in.redistribute(st); err != nil {
			return control{}, err
		}
	case ir.SContinue, ir.SIf, ir.SLoopBounds:
		// No value semantics here (If predicates are evaluated by execIf).
	}
	return control{}, nil
}

// redistribute changes an array's dynamic mapping, charging an all-to-all.
func (in *interp) redistribute(st *ir.Stmt) error {
	v := st.Redist.Array
	nm, err := dist.DistributeArray(in.grid(), v, st.Redist.Formats)
	if err != nil {
		return fmt.Errorf("sim: line %d: %v", st.Line, err)
	}
	in.dyn[v] = nm
	per := v.Size() * int64(in.cfg.Params.ElemBytes) / int64(in.grid().Size())
	in.mach.AllToAll(dist.AllProcs(in.grid()), per)
	return in.checkTime()
}

// ---------------------------------------------------------------------------
// Execution sets

func (in *interp) execSet(sp *spmd.StmtPlan) (dist.ProcSet, error) {
	g := in.grid()
	switch sp.Kind {
	case spmd.ExecAll:
		return dist.AllProcs(g), nil
	case spmd.ExecOwner:
		return in.ownerSet(sp.OwnerRef)
	case spmd.ExecPattern:
		return in.patternSet(sp.Scalar.Pattern, nil), nil
	case spmd.ExecUnion:
		return in.unionSet(sp.Stmt.Loop), nil
	}
	return dist.AllProcs(g), nil
}

// ownerSet evaluates the owners of an array reference under the dynamic
// distribution (plus privatization overrides).
func (in *interp) ownerSet(ref *ir.Ref) (dist.ProcSet, error) {
	g := in.grid()
	v := ref.Var
	idx := make([]int64, len(ref.Ast.Subs))
	for k, e := range ref.Ast.Subs {
		x, err := in.evalInt(e)
		if err != nil {
			return dist.ProcSet{}, err
		}
		idx[k] = x
	}
	if ap := in.prog.Res.Arrays[v]; ap != nil && ir.Encloses(ap.Loop, ref.Stmt.Loop) {
		return in.privOwnerSet(ap, idx)
	}
	am := in.dyn[v]
	if am == nil {
		return dist.AllProcs(g), nil
	}
	return am.Owner(g, idx), nil
}

// privOwnerSet computes the owner of a privatized array element: privatized
// grid dims follow the target reference's owner now; partitioned dims from
// the privatization axes.
func (in *interp) privOwnerSet(ap *core.ArrayPrivatization, idx []int64) (dist.ProcSet, error) {
	g := in.grid()
	s := dist.AllProcs(g)
	tgt, err := in.ownerSet(ap.Target)
	if err != nil {
		return dist.ProcSet{}, err
	}
	for d := 0; d < g.Rank(); d++ {
		if ap.PrivGrid[d] {
			if c, ok := tgt.Fixed(d); ok {
				s = s.WithDim(d, c)
			}
		}
	}
	for dim, ax := range ap.Axes {
		if ax.Distributed {
			s = s.WithDim(ax.GridDim, ax.OwnerDim(idx[dim], g.Shape[ax.GridDim]))
		}
	}
	return s, nil
}

// patternSet evaluates an owner pattern at the current indices. widen, when
// non-nil, lists loops whose indices range over a whole aggregated transfer:
// dimensions varying in them span all coordinates.
func (in *interp) patternSet(pat dist.OwnerPattern, widen []*ir.Loop) dist.ProcSet {
	g := in.grid()
	s := dist.AllProcs(g)
	for d := range pat.Dims {
		dp := pat.Dims[d]
		if dp.Repl {
			continue
		}
		wide := false
		for _, l := range widen {
			if dp.Sub.VariesIn(l) {
				wide = true
				break
			}
		}
		if wide {
			continue
		}
		pos, err := in.evalAffine(dp.Sub)
		if err != nil {
			continue // undefined position: leave the dimension wide
		}
		ax := dist.AxisMap{Distributed: true, GridDim: d, Kind: dp.Kind,
			Offset: dp.Offset, Extent: dp.Extent, Block: dp.Block}
		s = s.WithDim(d, ax.OwnerDim(pos, g.Shape[d]))
	}
	return s
}

// unionSet computes (and memoizes per iteration) the union of the execution
// sets of the loop body's owner-driven statements.
func (in *interp) unionSet(l *ir.Loop) dist.ProcSet {
	g := in.grid()
	if l == nil {
		return dist.AllProcs(g)
	}
	if in.unionCache == nil {
		in.unionCache = map[*ir.Loop]dist.ProcSet{}
		in.unionEpoch = map[*ir.Loop]int64{}
	}
	if e, ok := in.unionEpoch[l]; ok && e == in.epoch {
		return in.unionCache[l]
	}
	inner := map[*ir.Loop]bool{}
	for _, ll := range in.prog.Res.Prog.Loops {
		if ll != l && ir.Encloses(l, ll) {
			inner[ll] = true
		}
	}
	var innerList []*ir.Loop
	for ll := range inner {
		innerList = append(innerList, ll)
	}
	have := false
	var u dist.ProcSet
	for _, st := range in.prog.Res.Prog.Stmts {
		if st.Kind != ir.SAssign || !ir.Encloses(l, st.Loop) {
			continue
		}
		sp := in.prog.Stmts[st]
		var s dist.ProcSet
		switch sp.Kind {
		case spmd.ExecOwner:
			s = in.patternSet(in.prog.Res.RefPattern(sp.OwnerRef), innerList)
		case spmd.ExecPattern:
			s = in.patternSet(sp.Scalar.Pattern, innerList)
		default:
			continue
		}
		if !have {
			u, have = s, true
		} else {
			u = u.Union(s)
		}
	}
	if !have {
		u = dist.AllProcs(g)
	}
	in.unionCache[l] = u
	in.unionEpoch[l] = in.epoch
	return u
}

// ---------------------------------------------------------------------------
// Communication

// instanceComm performs one per-instance communication if the data is not
// already where the statement executes. Every instance pays the guard cost
// (ownership tests and runtime calls emitted inside the loop), whether or
// not a message flows — the penalty message vectorization avoids.
func (in *interp) instanceComm(req *comm.Requirement, sp *spmd.StmtPlan) error {
	dst, err := in.execSet(sp)
	if err != nil {
		return err
	}
	// Communication left inside a loop defeats loop-bound shrinking: every
	// processor must traverse the iteration space evaluating the ownership
	// guard, whether or not it communicates.
	if in.cfg.Params.GuardTime > 0 {
		in.mach.Compute(dist.AllProcs(in.grid()), in.cfg.Params.GuardTime)
	}
	var src dist.ProcSet
	if req.Use.Var.IsArray() {
		// Evaluate under the dynamic (possibly redistributed) mapping.
		src, err = in.ownerSet(req.Use)
		if err != nil {
			return err
		}
	} else {
		src = in.patternSet(req.SrcPat, nil)
	}
	if src.CoversSet(dst) {
		return nil
	}
	from, single := src.IsSingle()
	if !single {
		from = src.Procs()[0]
	}
	bytes := int64(in.cfg.Params.ElemBytes)
	if to, one := dst.IsSingle(); one {
		in.mach.Send(from, to, bytes)
	} else {
		in.mach.Multicast(from, dst, bytes)
	}
	return in.checkTime()
}

// vectorizedComm performs one aggregated communication covering all
// iterations of the hoisted loops. The transferred volume counts only the
// loops the reference actually varies in (a pivot column read by every j
// iteration is sent once, not once per j), and the transfer is skipped
// entirely when the evaluated source set already covers the destinations
// (e.g. a block shift that does not cross a processor boundary here).
func (in *interp) vectorizedComm(req *comm.Requirement) error {
	trips := int64(1)
	for _, l := range req.Hoisted {
		if !refVariesIn(req.Use, l) {
			continue
		}
		t, err := in.tripCount(l)
		if err != nil {
			return err
		}
		trips *= t
	}
	if trips <= 0 {
		return nil
	}
	srcEval := in.patternSet(req.SrcPat, req.Hoisted)
	dstEval := in.patternSet(req.DstPat, req.Hoisted)
	if in.vectorizedCovered(req) {
		return nil
	}
	g := in.grid()
	bytesTotal := trips * int64(in.cfg.Params.ElemBytes)

	switch req.Class {
	case dist.CommShift:
		// Only boundary elements cross processors under a block
		// distribution; everything moves under cyclic.
		perProc := int64(0)
		for d := range req.SrcPat.Dims {
			dp := req.SrcPat.Dims[d]
			if dp.Repl {
				continue
			}
			delta := req.ShiftDelta(d)
			if delta == 0 {
				continue
			}
			if delta < 0 {
				delta = -delta
			}
			if dp.Kind == ast.DistBlock {
				if delta > dp.Block {
					delta = dp.Block
				}
				// Fraction of the aggregated elements near the boundary.
				share := trips * delta / max64(dp.Extent, 1)
				perProc += max64(share, delta) * int64(in.cfg.Params.ElemBytes)
			} else {
				perProc += bytesTotal / int64(g.Size())
			}
		}
		if perProc == 0 {
			perProc = int64(in.cfg.Params.ElemBytes)
		}
		in.mach.Shift(dist.AllProcs(g), perProc)

	case dist.CommBcast:
		from := 0
		if procs := srcEval.Procs(); len(procs) > 0 {
			from = procs[0]
		}
		in.mach.Multicast(from, dstEval, bytesTotal)

	default:
		in.mach.Exchange(srcEval, dstEval, bytesTotal)
	}
	return in.checkTime()
}

// vectorizedCovered reports whether, at this particular entry of the
// hoisted nest, the source data already resides wherever the destinations
// need it — e.g. a block shift whose (invariant) position does not cross a
// processor boundary here. Dimensions whose positions vary within the
// hoisted loops are covered only if source and destination are statically
// identical there.
func (in *interp) vectorizedCovered(req *comm.Requirement) bool {
	for d := range req.SrcPat.Dims {
		s, t := req.SrcPat.Dims[d], req.DstPat.Dims[d]
		if s.Repl {
			continue
		}
		if t.Repl {
			return false
		}
		// Statically identical determination covers regardless of hoisting.
		sp := dist.OwnerPattern{Dims: []dist.DimPattern{s}}
		tp := dist.OwnerPattern{Dims: []dist.DimPattern{t}}
		if dist.Covers(sp, tp) {
			continue
		}
		varies := false
		for _, l := range req.Hoisted {
			if s.Sub.VariesIn(l) || t.Sub.VariesIn(l) {
				varies = true
				break
			}
		}
		if varies {
			return false
		}
		// Both positions fixed for this entry: compare owner coordinates.
		spos, err1 := in.evalAffine(s.Sub)
		tpos, err2 := in.evalAffine(t.Sub)
		if err1 != nil || err2 != nil {
			return false
		}
		if s.Kind != t.Kind || s.Block != t.Block || s.Extent != t.Extent {
			return false
		}
		ax := dist.AxisMap{Distributed: true, Kind: s.Kind, Offset: 0,
			Extent: s.Extent, Block: s.Block}
		n := in.grid().Shape[d]
		if ax.OwnerDim(spos+s.Offset, n) != ax.OwnerDim(tpos+t.Offset, n) {
			return false
		}
	}
	return true
}

// refVariesIn reports whether a reference denotes different data across
// iterations of l (scalars are invariant; array refs vary when some
// subscript does).
func refVariesIn(u *ir.Ref, l *ir.Loop) bool {
	if !u.Var.IsArray() {
		return false
	}
	for _, sub := range u.Subs {
		if sub.VariesIn(l) {
			return true
		}
	}
	return false
}

// tripCount evaluates a loop's trip count at the current indices.
func (in *interp) tripCount(l *ir.Loop) (int64, error) {
	lo, err := in.evalInt(l.Lo)
	if err != nil {
		return 0, err
	}
	hi, err := in.evalInt(l.Hi)
	if err != nil {
		return 0, err
	}
	step := int64(1)
	if l.Step != nil {
		step, err = in.evalInt(l.Step)
		if err != nil {
			return 0, err
		}
	}
	if step == 0 {
		return 0, fmt.Errorf("sim: zero step")
	}
	n := (hi-lo)/step + 1
	if n < 0 {
		n = 0
	}
	return n, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Value semantics

func (in *interp) store(ref *ir.Ref, val float64) error {
	v := ref.Var
	if !v.IsArray() {
		if v.Type == ast.Integer {
			val = math.Round(val)
		}
		in.scalars[v] = val
		return nil
	}
	off, err := in.arrayOffset(ref)
	if err != nil {
		return err
	}
	in.arrays[v][off] = val
	return nil
}

func (in *interp) arrayOffset(ref *ir.Ref) (int64, error) {
	v := ref.Var
	off := int64(0)
	stride := int64(1)
	for k := 0; k < v.Rank(); k++ {
		x, err := in.evalInt(ref.Ast.Subs[k])
		if err != nil {
			return 0, err
		}
		if x < 1 || x > v.Dims[k] {
			return 0, fmt.Errorf("sim: line %d: %s subscript %d out of bounds: %d (extent %d)",
				ref.Stmt.Line, v.Name, k+1, x, v.Dims[k])
		}
		off += (x - 1) * stride
		stride *= v.Dims[k]
	}
	return off, nil
}

func (in *interp) evalInt(e ast.Expr) (int64, error) {
	x, err := in.eval(e)
	if err != nil {
		return 0, err
	}
	return int64(math.Round(x)), nil
}

// evalAffine evaluates an affine form (falling back to the expression for
// non-affine subscripts).
func (in *interp) evalAffine(a ir.Affine) (int64, error) {
	if a.OK {
		x := a.Const
		for _, t := range a.Terms {
			x += t.Coef * in.indices[t.Loop.Index]
		}
		return x, nil
	}
	if a.Expr == nil {
		return 0, fmt.Errorf("sim: undefined pattern position")
	}
	return in.evalInt(a.Expr)
}

func (in *interp) eval(e ast.Expr) (float64, error) {
	switch x := e.(type) {
	case *ast.IntConst:
		return float64(x.Value), nil
	case *ast.RealConst:
		return x.Value, nil
	case *ast.Ref:
		v := in.prog.Res.Prog.LookupVar(x.Name)
		if v == nil {
			return 0, fmt.Errorf("sim: unknown variable %s", x.Name)
		}
		if v.IsLoopIndex {
			return float64(in.indices[v]), nil
		}
		if !v.IsArray() {
			return in.scalars[v], nil
		}
		off := int64(0)
		stride := int64(1)
		for k := 0; k < v.Rank(); k++ {
			s, err := in.evalInt(x.Subs[k])
			if err != nil {
				return 0, err
			}
			if s < 1 || s > v.Dims[k] {
				return 0, fmt.Errorf("sim: %s subscript %d out of bounds: %d (extent %d)",
					v.Name, k+1, s, v.Dims[k])
			}
			off += (s - 1) * stride
			stride *= v.Dims[k]
		}
		return in.arrays[v][off], nil
	case *ast.UnaryMinus:
		s, err := in.eval(x.X)
		if err != nil {
			return 0, err
		}
		return -s, nil
	case *ast.Not:
		s, err := in.eval(x.X)
		if err != nil {
			return 0, err
		}
		if s == 0 {
			return 1, nil
		}
		return 0, nil
	case *ast.BinOp:
		l, err := in.eval(x.L)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(x.R)
		if err != nil {
			return 0, err
		}
		return evalBin(x.Op, l, r)
	case *ast.Call:
		args := make([]float64, len(x.Args))
		for k, aexp := range x.Args {
			v, err := in.eval(aexp)
			if err != nil {
				return 0, err
			}
			args[k] = v
		}
		return evalCall(x.Name, args)
	}
	return 0, fmt.Errorf("sim: unsupported expression %T", e)
}

func evalBin(op ast.Op, l, r float64) (float64, error) {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ast.Add:
		return l + r, nil
	case ast.Sub:
		return l - r, nil
	case ast.Mul:
		return l * r, nil
	case ast.Div:
		return l / r, nil
	case ast.OpEq:
		return b2f(l == r), nil
	case ast.OpNe:
		return b2f(l != r), nil
	case ast.OpLt:
		return b2f(l < r), nil
	case ast.OpLe:
		return b2f(l <= r), nil
	case ast.OpGt:
		return b2f(l > r), nil
	case ast.OpGe:
		return b2f(l >= r), nil
	case ast.OpAnd:
		return b2f(l != 0 && r != 0), nil
	case ast.OpOr:
		return b2f(l != 0 || r != 0), nil
	}
	return 0, fmt.Errorf("sim: bad operator")
}

func evalCall(name string, args []float64) (float64, error) {
	switch name {
	case "abs":
		return math.Abs(args[0]), nil
	case "sqrt":
		return math.Sqrt(args[0]), nil
	case "exp":
		return math.Exp(args[0]), nil
	case "max":
		best := args[0]
		for _, a := range args[1:] {
			if a > best {
				best = a
			}
		}
		return best, nil
	case "min":
		best := args[0]
		for _, a := range args[1:] {
			if a < best {
				best = a
			}
		}
		return best, nil
	case "mod":
		return math.Mod(args[0], args[1]), nil
	}
	return 0, fmt.Errorf("sim: unknown intrinsic %s", name)
}
