// Package sim executes an SPMD program on the simulated machine. Statement
// instances are interpreted in sequential program order (valid because SPMD
// execution under owner-computes is sequentially consistent with the
// source); each instance advances the clocks of the processors in its
// execution set, per-instance communications synchronize sender and
// receivers, and vectorized communications are charged once per entry of
// their outermost hoisted loop. The program's values are computed for real,
// so results can be validated against sequential references — and the
// concurrent backend (internal/exec) is validated against this simulator by
// the differential oracle.
//
// The interpretation core (value semantics, execution sets, communication
// decisions) lives in internal/eval and is shared with internal/exec; this
// package contributes the cost model, fault injection, and checkpointing.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"phpf/internal/core"
	"phpf/internal/dist"
	"phpf/internal/eval"
	"phpf/internal/fault"
	"phpf/internal/ir"
	"phpf/internal/machine"
	"phpf/internal/spmd"
	"phpf/internal/trace"
)

// Config controls a simulation run.
type Config struct {
	Params machine.Params
	// MaxSeconds aborts the run once the simulated time exceeds this bound
	// (reproducing the paper's ">1 day, aborted" entries). Zero disables.
	MaxSeconds float64
	// Profile collects per-statement simulated-time attribution (compute
	// and communication charged while executing each statement).
	Profile bool
	// Fault, when non-nil and active, injects message loss/duplication,
	// compute slowdowns, and fail-stop crashes (see internal/fault). A nil
	// or inactive plan leaves the fault-free arithmetic bit-identical.
	Fault *fault.Plan
	// CheckpointInterval takes a coordinated checkpoint at
	// hoisted-communication boundaries whenever at least this much
	// simulated time has passed since the last one (0 = only the implicit
	// free checkpoint at t=0). Crash recovery rolls back to the last
	// checkpoint and re-executes the lost interval; the restarted
	// processor refetches aligned and partitioned state, while replicated
	// state restores locally.
	CheckpointInterval float64
	// Trace, when non-nil, records runtime events (stamped with simulated
	// time) into Result.Trace. Nil keeps the event path emission-free.
	Trace *trace.Options
	// MaxCells caps the total array cells of the memory image (0 =
	// unlimited; see eval.Budget). A breach fails the run with a coded
	// E006 diagnostic before the image is allocated.
	MaxCells int64
	// Reduce selects the runtime reduction strategy: ReduceAuto (default)
	// privatizes every reduction the reduceplan cleared, ReduceCollective
	// forces the §2.3 collective for all of them, and ReducePrivatize
	// demands privatization, failing the run (E005) if any recognized
	// reduction is collective-only.
	Reduce core.ReduceMode
}

// Validate rejects configurations that cannot describe a run, mirroring
// machine.Params.Validate: a negative or NaN time limit (the paper's aborted
// entries need a positive bound; zero means unlimited), and a negative,
// NaN, or infinite checkpoint interval (zero means checkpointing off).
// Params and Fault carry their own validators and are checked by Run.
func (c Config) Validate() error {
	if math.IsNaN(c.MaxSeconds) || math.IsInf(c.MaxSeconds, 0) {
		return fmt.Errorf("sim: MaxSeconds must be finite, got %v", c.MaxSeconds)
	}
	if c.MaxSeconds < 0 {
		return fmt.Errorf("sim: MaxSeconds must be >= 0 (0 = unlimited), got %v", c.MaxSeconds)
	}
	if math.IsNaN(c.CheckpointInterval) || math.IsInf(c.CheckpointInterval, 0) {
		return fmt.Errorf("sim: CheckpointInterval must be finite, got %v", c.CheckpointInterval)
	}
	if c.CheckpointInterval < 0 {
		return fmt.Errorf("sim: CheckpointInterval must be >= 0 (0 = off), got %v", c.CheckpointInterval)
	}
	if c.MaxCells < 0 {
		return fmt.Errorf("sim: MaxCells must be >= 0 (0 = unlimited), got %v", c.MaxCells)
	}
	if c.Reduce < core.ReduceAuto || c.Reduce > core.ReducePrivatize {
		return fmt.Errorf("sim: unknown Reduce mode %d", int(c.Reduce))
	}
	return nil
}

// StmtProfile is one statement's share of the simulated activity.
type StmtProfile struct {
	Stmt *ir.Stmt
	// Instances is how many times the statement executed.
	Instances int64
	// Seconds is the total clock advance attributed to the statement
	// (summed over processors).
	Seconds float64
}

// Result is the outcome of one run.
type Result struct {
	Time    float64
	Stats   machine.Stats
	Aborted bool

	// Final memory, for validation against reference implementations.
	Scalars map[string]float64
	Arrays  map[string][]float64

	// Profile holds per-statement attribution when Config.Profile was set,
	// sorted by descending Seconds.
	Profile []StmtProfile

	// Trace holds the recorded event stream when Config.Trace was set
	// (nil otherwise). The simulator emits into a single shard, so
	// Trace.Events() is the exact deterministic program-order stream.
	Trace *trace.Recorder
}

// errAbort signals the MaxSeconds cutoff internally.
type errAbort struct{}

func (errAbort) Error() string { return "simulated time limit exceeded" }

// Run executes the program with cfg.
func Run(p *spmd.Program, cfg Config) (*Result, error) {
	return RunContext(context.Background(), p, cfg)
}

// RunContext executes the program with cfg under a context: cancellation
// aborts the simulation between events (at iteration and communication
// boundaries) and returns ctx.Err().
func RunContext(ctx context.Context, p *spmd.Program, cfg Config) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("sim: nil program")
	}
	if cfg.Params == (machine.Params{}) {
		cfg.Params = machine.SP2()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Fault.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	nprocs := p.Res.Mapping.Grid.Size()
	if cfg.Fault.Active() {
		for _, c := range cfg.Fault.Crashes {
			if c.Proc >= nprocs {
				return nil, fmt.Errorf("sim: crash of processor %d, but the machine has %d", c.Proc, nprocs)
			}
		}
		for _, s := range cfg.Fault.Slowdowns {
			if s.Proc >= nprocs {
				return nil, fmt.Errorf("sim: slowdown of processor %d, but the machine has %d", s.Proc, nprocs)
			}
		}
	}
	st, err := eval.NewStateBudget(p, eval.Budget{MaxCells: cfg.MaxCells})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := st.ConfigureReduce(cfg.Reduce, eval.Budget{MaxCells: cfg.MaxCells}); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	in := &interp{
		ctx:  ctx,
		prog: p,
		cfg:  cfg,
		st:   st,
		mach: machine.New(p.Res.Mapping.Grid, cfg.Params),
		inj:  fault.NewInjector(cfg.Fault),
	}
	in.mach.Fault = in.inj
	if cfg.Trace != nil {
		rec := trace.New(nprocs, 1, *cfg.Trace)
		rec.SetLabels(p.StmtLabels())
		in.mach.Rec = rec
	}
	if cfg.Profile {
		in.profile = map[*ir.Stmt]*StmtProfile{}
	}
	err = eval.Walk(st, in)
	aborted := false
	if err != nil {
		var ge *eval.GotoEscapeError
		switch {
		case errors.As(err, &ge):
			return nil, fmt.Errorf("sim: goto %d escaped the program", ge.Label)
		case errors.Is(err, errAbort{}):
			aborted = true
		case errors.Is(err, ctx.Err()) && ctx.Err() != nil:
			return nil, err
		default:
			return nil, simError(err)
		}
	}
	res := &Result{
		Time:    in.mach.Time(),
		Stats:   in.mach.Stats,
		Aborted: aborted,
		Scalars: map[string]float64{},
		Arrays:  map[string][]float64{},
		Trace:   in.mach.Rec,
	}
	for v, x := range st.Scalars() {
		res.Scalars[v.Name] = x
	}
	for v, a := range st.Arrays() {
		res.Arrays[v.Name] = a
	}
	if in.profile != nil {
		for _, sp := range in.profile {
			res.Profile = append(res.Profile, *sp)
		}
		sort.Slice(res.Profile, func(i, j int) bool {
			if res.Profile[i].Seconds != res.Profile[j].Seconds {
				return res.Profile[i].Seconds > res.Profile[j].Seconds
			}
			return res.Profile[i].Stmt.ID < res.Profile[j].Stmt.ID
		})
	}
	return res, nil
}

// simError prefixes interpretation errors with the package name (the shared
// core reports bare messages so each backend can brand its own).
func simError(err error) error {
	return fmt.Errorf("sim: %w", err)
}

// interp drives the simulated machine from the shared walker: it implements
// eval.Backend, charging compute and communication costs at every event.
type interp struct {
	ctx  context.Context
	prog *spmd.Program
	cfg  Config
	st   *eval.State
	mach *machine.Machine

	// inj draws fault decisions (nil on fault-free runs); lastCkpt is the
	// simulated time of the last coordinated checkpoint (the implicit free
	// one at t=0 until a real one is taken).
	inj      *fault.Injector
	lastCkpt float64

	// profile accumulates per-statement attribution when enabled.
	profile map[*ir.Stmt]*StmtProfile
}

// clockSum is the total of all processor clocks (used to attribute time).
func (in *interp) clockSum() float64 {
	s := 0.0
	for _, c := range in.mach.Clock {
		s += c
	}
	return s
}

// attribute runs fn and charges the clock advance it causes to st.
func (in *interp) attribute(st *ir.Stmt, fn func() error) error {
	if in.profile == nil {
		return fn()
	}
	before := in.clockSum()
	err := fn()
	p := in.profile[st]
	if p == nil {
		p = &StmtProfile{Stmt: st}
		in.profile[st] = p
	}
	p.Instances++
	p.Seconds += in.clockSum() - before
	return err
}

func (in *interp) checkTime() error {
	if err := in.ctx.Err(); err != nil {
		return err
	}
	if in.inj != nil {
		// Fire any fail-stop crashes whose time has been reached. Recovery
		// advances the clocks, which may bring the next scheduled crash
		// due, so drain until quiescent (each crash fires exactly once).
		for {
			c := in.inj.PendingCrash(in.mach.Time())
			if c == nil {
				break
			}
			in.recoverCrash(c)
		}
	}
	if in.cfg.MaxSeconds > 0 && in.mach.Time() > in.cfg.MaxSeconds {
		return errAbort{}
	}
	return nil
}

// ---------------------------------------------------------------------------
// eval.Backend

// Tick fires after every loop iteration.
func (in *interp) Tick() error { return in.checkTime() }

// LoopEntry performs the vectorized communications hoisted to this loop
// (and, at hoisted-communication boundaries, coordinated checkpoints).
func (in *interp) LoopEntry(l *ir.Loop, lp *spmd.LoopPlan) error {
	// A hoisted-communication boundary is a natural coordination point:
	// no aggregated transfer is in flight, so a consistent checkpoint
	// needs no message draining.
	if len(lp.Hoisted) > 0 || l.Parent == nil {
		in.maybeCheckpoint()
	}
	for _, req := range lp.Hoisted {
		req := req
		// A privatized combine consumes its operands at the owners that
		// accumulate them: no aggregated transfer happens on either backend.
		if sp := in.prog.PlanOf(req.Stmt); sp != nil &&
			in.st.PrivatizedActive(sp.Combine) && sp.Combine.Mapping == nil {
			continue
		}
		if err := in.attribute(req.Stmt, func() error {
			op, err := in.st.VectorizedOp(req, int64(in.cfg.Params.ElemBytes))
			if err != nil {
				return err
			}
			in.mach.SetAttr(req.Stmt.ID, req.ID, req.Class)
			switch op.Kind {
			case eval.VecSkip:
				return nil
			case eval.VecShift:
				in.mach.Shift(op.Participants, op.PerProc)
			case eval.VecBcast:
				in.mach.Multicast(op.From, op.Dst, op.Bytes)
			case eval.VecExchange:
				in.mach.Exchange(op.Src, op.Dst, op.Bytes)
			}
			return in.checkTime()
		}); err != nil {
			return err
		}
	}
	in.mach.ClearAttr()
	return nil
}

// LoopExit runs the reduction combines attached to the loop — privatized
// combines merge their partial tables through the deterministic tree,
// collective ones charge the §2.3 global reduction — then the lastprivate
// copy-outs: the owner of the final iteration's value broadcasts it, after
// which the scalar is replicated again.
func (in *interp) LoopExit(l *ir.Loop, lp *spmd.LoopPlan) error {
	for _, c := range lp.Combines {
		if in.st.PrivatizedActive(c) {
			elems := in.st.PartialElems(c)
			if _, err := in.st.MergePartials(c); err != nil {
				return simError(err)
			}
			in.mach.SetAttr(c.Red.Stmt.ID, -1, dist.CommNone)
			in.mach.TreeMerge(dist.AllProcs(in.st.Grid()),
				elems*int64(in.cfg.Params.ElemBytes), in.prog.NProcs())
			continue
		}
		if c.Mapping == nil {
			// A collective elementwise reduction has no combine operation:
			// its reference execution is plain per-instance owner-computes.
			continue
		}
		set := in.st.PatternSet(c.Mapping.Pattern, nil)
		stmt := -1
		if c.Mapping.Def != nil && c.Mapping.Def.Stmt != nil {
			stmt = c.Mapping.Def.Stmt.ID
		}
		in.mach.SetAttr(stmt, -1, dist.CommNone)
		in.mach.Reduce(set, int64(in.cfg.Params.ElemBytes))
	}
	for _, m := range lp.CopyOuts {
		// The walker leaves the loop index at its final executed value, so
		// the pattern's owners are the final iteration's owners.
		src := in.st.PatternSet(m.Pattern, nil)
		all := dist.AllProcs(in.st.Grid())
		if src.Count() == all.Count() {
			continue // degenerate alignment: already everywhere
		}
		stmt := -1
		if m.Def != nil && m.Def.Stmt != nil {
			stmt = m.Def.Stmt.ID
		}
		in.mach.SetAttr(stmt, -1, dist.CommBcast)
		in.mach.Multicast(src.First(), all, int64(in.cfg.Params.ElemBytes))
	}
	in.mach.ClearAttr()
	return nil
}

// Statement performs per-instance communication and charges the computation
// of one statement instance.
func (in *interp) Statement(st *ir.Stmt, sp *spmd.StmtPlan) error {
	if in.profile != nil {
		return in.attribute(st, func() error { return in.statement(st, sp) })
	}
	// The non-profiling hot path calls the method directly: the closure
	// above escapes through attribute and would heap-allocate per instance.
	return in.statement(st, sp)
}

func (in *interp) statement(st *ir.Stmt, sp *spmd.StmtPlan) error {
	// A privatized elementwise reduction update accumulates into the partial
	// row of the data owner: its per-instance communication disappears (the
	// whole point — the collective reference ships every instance to the
	// element's owner), and the compute charge lands on the data owners.
	privArray := in.st.PrivatizedActive(sp.Combine) && sp.Combine.Mapping == nil
	if privArray {
		var execSet dist.ProcSet
		var err error
		if sp.Combine.Red.DataRef != nil {
			execSet, err = in.st.OwnerSet(sp.Combine.Red.DataRef)
		} else {
			execSet, err = in.st.ExecSet(sp)
		}
		if err != nil {
			return err
		}
		if sp.Flops > 0 {
			in.mach.SetAttr(st.ID, -1, dist.CommNone)
			in.mach.Compute(execSet, float64(sp.Flops)*in.cfg.Params.FlopTime)
		}
		in.mach.ClearAttr()
		return nil
	}
	for _, req := range sp.PerInstance {
		in.mach.SetAttr(st.ID, req.ID, req.Class)
		op, err := in.st.InstanceOp(req, sp, int64(in.cfg.Params.ElemBytes))
		if err != nil {
			return err
		}
		// Communication left inside a loop defeats loop-bound
		// shrinking: every processor must traverse the iteration space
		// evaluating the ownership guard, whether or not it
		// communicates.
		if in.cfg.Params.GuardTime > 0 {
			in.mach.Compute(dist.AllProcs(in.st.Grid()), in.cfg.Params.GuardTime)
		}
		if op.Skip {
			continue
		}
		if to, one := op.Dst.IsSingle(); one {
			in.mach.Send(op.From, to, op.Bytes)
		} else {
			in.mach.Multicast(op.From, op.Dst, op.Bytes)
		}
		if err := in.checkTime(); err != nil {
			return err
		}
	}
	execSet, err := in.st.ExecSet(sp)
	if err != nil {
		return err
	}
	if sp.Flops > 0 {
		in.mach.SetAttr(st.ID, -1, dist.CommNone)
		in.mach.Compute(execSet, float64(sp.Flops)*in.cfg.Params.FlopTime)
	}
	in.mach.ClearAttr()
	return nil
}

// Redistribute charges the all-to-all an executable redistribution performs
// (the mapping update has already been applied to the state).
func (in *interp) Redistribute(st *ir.Stmt) error {
	per := in.st.RedistBytesPerProc(st, int64(in.cfg.Params.ElemBytes))
	in.mach.SetAttr(st.ID, -1, dist.CommGeneral)
	in.mach.AllToAll(dist.AllProcs(in.st.Grid()), per)
	in.mach.ClearAttr()
	return in.checkTime()
}

// ---------------------------------------------------------------------------
// Checkpointing and crash recovery

// maybeCheckpoint takes a coordinated checkpoint at a hoisted-communication
// boundary when the configured interval has elapsed. Checkpoint state is
// each processor's partition of the distributed arrays plus its private
// scalar copies, written to stable storage at link speed.
func (in *interp) maybeCheckpoint() {
	if in.cfg.CheckpointInterval <= 0 {
		return
	}
	now := in.mach.Time()
	if now-in.lastCkpt < in.cfg.CheckpointInterval {
		return
	}
	in.mach.ClearAttr()
	in.mach.Checkpoint(eval.CheckpointBytes(in.st, int64(in.cfg.Params.ElemBytes)))
	in.lastCkpt = in.mach.Time()
}

// recoverCrash restores a fail-stop processor from the last coordinated
// checkpoint. Every processor rolls back and re-executes the lost interval;
// the restarted processor additionally refetches the state its mapping does
// not replicate: its partitions of distributed arrays and the live copies of
// aligned privatized scalars. Replicated copies — the paper's replication
// mapping — restore locally at zero communication cost, which is the
// robustness dividend of that mapping choice.
func (in *interp) recoverCrash(c *fault.Crash) {
	now := in.mach.Time()
	lost := now - in.lastCkpt
	if lost < 0 {
		lost = 0
	}
	bytes, msgs := eval.RefetchCost(in.st, c.Proc, int64(in.cfg.Params.ElemBytes))
	in.mach.Recover(c.Proc, lost, bytes, msgs)
	// Recovery reestablishes a consistent global state.
	in.lastCkpt = in.mach.Time()
}
