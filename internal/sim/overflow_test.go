package sim

import (
	"errors"
	"strings"
	"testing"

	"phpf/internal/core"
	"phpf/internal/eval"
	"phpf/internal/parser"
	"phpf/internal/spmd"
)

func generate(t *testing.T, src string, nprocs int) *spmd.Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := core.BuildAndAnalyze(ap, nprocs, core.DefaultOptions())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return spmd.Generate(res)
}

// TestOverflowGuardLoopBound: an adversarial (fuzz-reachable) loop bound far
// outside the exactly representable integer range is rejected with a
// structured eval.NumericError diagnostic instead of wrapping through the
// float conversion into a bogus trip count.
func TestOverflowGuardLoopBound(t *testing.T) {
	src := `
program t
real a(10)
real x
integer i, m
!hpf$ distribute (block) :: a
x = 1.0e30
m = x
do i = 1, m
  a(1) = a(1) + 1.0
end do
end
`
	_, err := Run(generate(t, src, 4), Config{})
	var ne *eval.NumericError
	if !errors.As(err, &ne) {
		t.Fatalf("expected *eval.NumericError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "2^53") {
		t.Fatalf("diagnostic should name the representable range: %v", err)
	}
}

// TestOverflowGuardArraySize: declarations whose element count cannot be
// allocated are rejected up front rather than overflowing the offset
// arithmetic at the first reference.
func TestOverflowGuardArraySize(t *testing.T) {
	src := `
program t
parameter n = 100000
real a(n,n)
integer i
!hpf$ distribute (block,*) :: a
do i = 1, n
  a(i,1) = 1.0
end do
end
`
	_, err := Run(generate(t, src, 4), Config{})
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("expected an array-size rejection, got %v", err)
	}
}

// TestSubscriptBoundsDiagnostic: an out-of-bounds subscript reports the
// array, the dimension, and the offending value.
func TestSubscriptBoundsDiagnostic(t *testing.T) {
	src := `
program t
parameter n = 8
real a(n)
integer i
!hpf$ distribute (block) :: a
do i = 1, n
  a(i+4) = 1.0
end do
end
`
	_, err := Run(generate(t, src, 4), Config{})
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Fatalf("expected a bounds diagnostic, got %v", err)
	}
}
