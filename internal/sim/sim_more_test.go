package sim

import (
	"math"
	"testing"

	"phpf/internal/core"
)

// TestIntrinsicEvaluation exercises every intrinsic and operator through the
// interpreter.
func TestIntrinsicEvaluation(t *testing.T) {
	src := `
program t
real r1, r2, r3, r4, r5, r6, r7, r8
integer k1
r1 = abs(-2.5)
r2 = sqrt(16.0)
r3 = exp(0.0)
r4 = max(1.0, 3.0, 2.0)
r5 = min(1.0, -3.0, 2.0)
k1 = mod(17, 5)
r6 = -r1
if (r1 > 2.0 and r2 >= 4.0) then
  r7 = 1.0
end if
if (not (r1 < 0.0) or r2 == 0.0) then
  r8 = 1.0
end if
end
`
	out := run(t, src, 1, core.DefaultOptions())
	want := map[string]float64{
		"r1": 2.5, "r2": 4, "r3": 1, "r4": 3, "r5": -3, "k1": 2,
		"r6": -2.5, "r7": 1, "r8": 1,
	}
	for name, w := range want {
		if g := out.Scalars[name]; math.Abs(g-w) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, g, w)
		}
	}
}

// TestRelationalOperators checks all six comparisons.
func TestRelationalOperators(t *testing.T) {
	src := `
program t
real a, b, r1, r2, r3, r4, r5, r6
a = 2.0
b = 3.0
if (a == 2.0) r1 = 1.0
if (a /= b) r2 = 1.0
if (a < b) r3 = 1.0
if (a <= 2.0) r4 = 1.0
if (b > a) r5 = 1.0
if (b >= 3.0) r6 = 1.0
end
`
	out := run(t, src, 1, core.DefaultOptions())
	for _, name := range []string{"r1", "r2", "r3", "r4", "r5", "r6"} {
		if out.Scalars[name] != 1.0 {
			t.Errorf("%s not set", name)
		}
	}
}

// TestLoopSteps: positive non-unit and negative steps.
func TestLoopSteps(t *testing.T) {
	src := `
program t
parameter n = 10
real a(n)
integer i
do i = 1, n
  a(i) = 0.0
end do
do i = 1, 9, 2
  a(i) = 1.0
end do
do i = 10, 2, -2
  a(i) = 2.0
end do
end
`
	out := run(t, src, 2, core.DefaultOptions())
	want := []float64{1, 2, 1, 2, 1, 2, 1, 2, 1, 2}
	for i, w := range want {
		if out.Arrays["a"][i] != w {
			t.Errorf("a[%d] = %v, want %v", i, out.Arrays["a"][i], w)
		}
	}
}

// TestZeroTripLoop: a loop whose bounds exclude execution.
func TestZeroTripLoop(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n)
integer i
do i = 1, n
  a(i) = 5.0
end do
do i = 3, 2
  a(i) = 9.0
end do
end
`
	out := run(t, src, 2, core.DefaultOptions())
	for i := 0; i < 4; i++ {
		if out.Arrays["a"][i] != 5.0 {
			t.Errorf("a[%d] = %v", i, out.Arrays["a"][i])
		}
	}
}

// TestPrivatizedArrayOwnership drives privOwnerSet: a NEW array's statements
// execute on the owner of the alignment target, so a fully local sweep has
// no communication.
func TestPrivatizedArrayOwnership(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
!hpf$ independent, new(w)
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`
	out := run(t, src, 4, core.DefaultOptions())
	if out.Stats.BytesMoved != 0 {
		t.Errorf("privatized sweep should be communication-free, moved %d bytes (%v)",
			out.Stats.BytesMoved, out.Stats)
	}
	// Values: a(i,k) = a(i,k)*2 + 1.
	for k := 1; k <= 16; k++ {
		for i := 1; i <= 16; i++ {
			if got := out.Arrays["a"][(k-1)*16+(i-1)]; got != 1.0 {
				t.Fatalf("a(%d,%d) = %v, want 1 (0*2+1)", i, k, got)
			}
		}
	}
}

// TestPartialPrivatizedOwnership: the Figure-6 pattern runs and the shifted
// read communicates only across block boundaries.
func TestPartialPrivatizedOwnership(t *testing.T) {
	src := `
program t
parameter nx = 4
parameter ny = 16
parameter nz = 16
real c(nx,ny,2), rsd(2,nx,ny,nz)
integer i, j, k
!hpf$ distribute (*,*,block,block) :: rsd
!hpf$ independent, new(c)
do k = 2, nz-1
  do j = 2, ny-1
    do i = 2, nx-1
      c(i,j,1) = rsd(2,i,j,k) + 1.0
    end do
  end do
  do j = 3, ny-1
    do i = 2, nx-1
      rsd(1,i,j,k) = c(i,j-1,1) * 2.0
    end do
  end do
end do
end
`
	out := run(t, src, 4, core.DefaultOptions())
	// Consistency vs. a sequential evaluation of the same code.
	nx, ny, nz := 4, 16, 16
	c := make([]float64, nx*ny*2)
	rsd := make([]float64, 2*nx*ny*nz)
	ridx := func(m, i, j, k int) int { return (m - 1) + 2*((i-1)+nx*((j-1)+ny*(k-1))) }
	cidx := func(i, j, m int) int { return (i - 1) + nx*((j-1)+ny*(m-1)) }
	for k := 2; k <= nz-1; k++ {
		for j := 2; j <= ny-1; j++ {
			for i := 2; i <= nx-1; i++ {
				c[cidx(i, j, 1)] = rsd[ridx(2, i, j, k)] + 1.0
			}
		}
		for j := 3; j <= ny-1; j++ {
			for i := 2; i <= nx-1; i++ {
				rsd[ridx(1, i, j, k)] = c[cidx(i, j-1, 1)] * 2.0
			}
		}
	}
	for i := range rsd {
		if math.Abs(out.Arrays["rsd"][i]-rsd[i]) > 1e-12 {
			t.Fatalf("rsd[%d] = %v, want %v", i, out.Arrays["rsd"][i], rsd[i])
		}
	}
}

// TestDivisionByZeroYieldsInf (Fortran-style: no trap in the model).
func TestDivisionSemantics(t *testing.T) {
	src := `
program t
real x, y
x = 1.0
y = x / 0.0
end
`
	out := run(t, src, 1, core.DefaultOptions())
	if !math.IsInf(out.Scalars["y"], 1) {
		t.Errorf("y = %v, want +Inf", out.Scalars["y"])
	}
}

// TestIntegerStoreRounds: integer variables round assigned values.
func TestIntegerStoreRounds(t *testing.T) {
	src := `
program t
integer k
k = 7 / 2
end
`
	out := run(t, src, 1, core.DefaultOptions())
	// 7/2 evaluates in floating point (3.5) and rounds to 4 on integer
	// store — Fortran would truncate; our model documents round-to-nearest.
	if out.Scalars["k"] != 4 {
		t.Errorf("k = %v, want 4 (round-to-nearest store)", out.Scalars["k"])
	}
}
