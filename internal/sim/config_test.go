package sim

import (
	"math"
	"strings"
	"testing"
)

// TestConfigValidate: configurations that cannot describe a run are rejected
// with structured errors, mirroring machine.Params.Validate.
func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{MaxSeconds: 100},
		{CheckpointInterval: 0.5},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		cfg  Config
		want string
	}{
		{Config{MaxSeconds: -1}, "MaxSeconds"},
		{Config{MaxSeconds: math.NaN()}, "MaxSeconds"},
		{Config{MaxSeconds: math.Inf(1)}, "MaxSeconds"},
		{Config{CheckpointInterval: -0.1}, "CheckpointInterval"},
		{Config{CheckpointInterval: math.NaN()}, "CheckpointInterval"},
		{Config{CheckpointInterval: math.Inf(1)}, "CheckpointInterval"},
	}
	for i, c := range bad {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c.cfg)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("bad config %d: error %q does not name %s", i, err, c.want)
		}
	}
}

// TestRunRejectsBadConfig: Run itself applies the validation (and the nil
// program check) before touching the program.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("nil program accepted")
	}

	prog := generate(t, abortSrc, 4)
	if _, err := Run(prog, Config{MaxSeconds: -1}); err == nil {
		t.Error("negative MaxSeconds accepted by Run")
	}
	if _, err := Run(prog, Config{CheckpointInterval: math.Inf(1)}); err == nil {
		t.Error("infinite CheckpointInterval accepted by Run")
	}
}
