package sim

import (
	"testing"

	"phpf/internal/core"
)

// abortSrc has a shift-class communication vectorized out of the i-loop, so
// the first charge of a run is an aggregated transfer at loop entry.
const abortSrc = `
program t
parameter n = 256
real a(n), b(n)
integer i, iter
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do iter = 1, 50
  do i = 2, n
    a(i) = b(i-1) + 1.0
  end do
  do i = 1, n
    b(i) = a(i) * 0.5
  end do
end do
end
`

// TestAbortedFlagReporting: Result.Aborted is false on completed runs, true
// on cut-off runs, and the reported time exceeds the limit it tripped.
func TestAbortedFlagReporting(t *testing.T) {
	opts := core.DefaultOptions()
	full := runErr(t, abortSrc, 8, opts, Config{})
	if full.Aborted {
		t.Fatal("unlimited run reported aborted")
	}
	limit := full.Time / 4
	cut := runErr(t, abortSrc, 8, opts, Config{MaxSeconds: limit})
	if !cut.Aborted {
		t.Fatalf("run past %v not aborted", limit)
	}
	if cut.Time <= limit {
		t.Errorf("aborted time %v should exceed the limit %v it tripped", cut.Time, limit)
	}
	if cut.Time >= full.Time {
		t.Errorf("aborted run should stop early: %v vs full %v", cut.Time, full.Time)
	}
}

// TestAbortMidVectorizedComm: a limit small enough to trip on the very first
// aggregated transfer aborts from inside the vectorized-communication path —
// the communication is already charged (visible in Stats) but no statement
// of the loop body has executed.
func TestAbortMidVectorizedComm(t *testing.T) {
	opts := core.DefaultOptions()
	out := runErr(t, abortSrc, 8, opts, Config{MaxSeconds: 1e-12})
	if !out.Aborted {
		t.Fatal("expected abort at the first vectorized communication")
	}
	if out.Stats.Messages == 0 {
		t.Error("the aborting vectorized transfer should be counted in Stats")
	}
	// The b(i-1) shift is hoisted to the iter-loop entry; aborting there
	// means the first assignment never ran.
	for _, x := range out.Arrays["a"] {
		if x != 0 {
			t.Fatal("loop body executed despite mid-communication abort")
		}
	}
}

// TestAbortDisabledByZero: MaxSeconds 0 never aborts.
func TestAbortDisabledByZero(t *testing.T) {
	out := runErr(t, abortSrc, 8, core.DefaultOptions(), Config{MaxSeconds: 0})
	if out.Aborted {
		t.Error("MaxSeconds=0 must disable the cutoff")
	}
}
