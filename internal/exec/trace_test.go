package exec

import (
	"context"
	"fmt"
	"testing"

	"phpf/internal/sim"
	"phpf/internal/trace"
)

// TestDifferTraceAgreement extends the differential oracle to event level:
// with tracing on, the per-communication-class message/byte counts and the
// reduction-collective count recorded by the concurrent executor must equal
// the simulator's exactly, for every program, strategy, and processor count.
// Under -race this also exercises concurrent emission into the per-worker
// shards against the live atomic counters.
func TestDifferTraceAgreement(t *testing.T) {
	for progName, src := range oraclePrograms() {
		for stratName, opts := range strategies() {
			for _, nprocs := range []int{1, 4, 8} {
				src, opts, nprocs := src, opts, nprocs
				t.Run(fmt.Sprintf("%s/%s/p%d", progName, stratName, nprocs), func(t *testing.T) {
					prog := compile(t, src, nprocs, opts)
					if _, serr := sim.Run(prog, sim.Config{}); serr != nil {
						t.Skip("not a runnable program")
					}
					d := Differ{Trace: &trace.Options{}}
					rep, err := d.Run(context.Background(), prog)
					if err != nil {
						t.Fatalf("differ: %v", err)
					}
					if !rep.Match() {
						t.Fatal(rep.String())
					}
					if !rep.Sim.Trace.Enabled() || !rep.Exec.Trace.Enabled() {
						t.Fatal("expected both results to carry a trace")
					}
					// The class totals the comparison relied on must come
					// from real activity whenever the stats say messages
					// flowed as planned communication.
					if rep.Sim.Trace.KindCount(trace.Send) == 0 && rep.Sim.Stats.PointToPoint > 0 {
						t.Fatal("sim trace recorded no sends despite point-to-point traffic")
					}
				})
			}
		}
	}
}
