// Structured errors of the concurrent executor. Every failure mode a worker
// set can exhibit — a panic inside one goroutine, a wedged rendezvous, a
// protocol violation on a mailbox, or divergent replicated memory — surfaces
// as one of the types below instead of crashing or hanging the process.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ConfigError rejects an executor configuration before any worker starts.
type ConfigError struct{ Msg string }

func (e *ConfigError) Error() string { return "exec: " + e.Msg }

// WorkerError is a panic contained inside one worker goroutine: the
// executor cancels the remaining workers, collects them, and returns this
// instead of letting the panic kill the process.
type WorkerError struct {
	// Proc is the simulated processor whose worker panicked.
	Proc int
	// PanicValue is the value passed to panic().
	PanicValue any
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("exec: worker for processor %d panicked: %v", e.Proc, e.PanicValue)
}

// BlockedOp describes one pending channel operation at the moment the
// watchdog declared a stall: which processor was blocked, in which
// direction, against which peer, and on behalf of which communication.
type BlockedOp struct {
	Proc int    // the blocked processor
	Op   string // "send" or "recv"
	Peer int    // the processor it was waiting on
	What string // the planned communication being performed
}

func (b BlockedOp) String() string {
	arrow := "->"
	if b.Op == "recv" {
		arrow = "<-"
	}
	return fmt.Sprintf("p%d %s%sp%d [%s]", b.Proc, b.Op, arrow, b.Peer, b.What)
}

// StallError reports a deadlocked or silent worker set: no worker made
// progress for Quiet although Unfinished workers remained. Blocked lists
// the channel operations pending at detection time (a worker wedged outside
// a channel operation appears in Unfinished but not in Blocked).
type StallError struct {
	Quiet      time.Duration
	Unfinished []int
	Blocked    []BlockedOp
}

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec: stall: no worker progress for %v; unfinished processors %v", e.Quiet, e.Unfinished)
	if len(e.Blocked) > 0 {
		ops := make([]string, len(e.Blocked))
		for i, op := range e.Blocked {
			ops[i] = op.String()
		}
		sort.Strings(ops)
		b.WriteString("; blocked: ")
		b.WriteString(strings.Join(ops, ", "))
	}
	return b.String()
}

// ProtocolError is a message that did not match the plan: a worker received
// traffic for the wrong requirement or out of sequence on an edge. It means
// one backend's communication decisions diverged — exactly the bug class
// the differential oracle exists to catch.
type ProtocolError struct {
	Proc, From      int
	WantReq, GotReq int
	WantSeq, GotSeq uint64
	What            string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("exec: protocol violation at p%d receiving from p%d during %s: want req %d seq %d, got req %d seq %d",
		e.Proc, e.From, e.What, e.WantReq, e.WantSeq, e.GotReq, e.GotSeq)
}

// DivergenceError reports replicated memory images that stopped being
// identical: a received value (or a peer's final memory) differed bitwise
// from the local copy.
type DivergenceError struct {
	Proc, Peer int
	What       string
	Got, Want  float64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("exec: replicated state diverged at p%d vs p%d (%s): %v != %v",
		e.Proc, e.Peer, e.What, e.Got, e.Want)
}
