// The stall watchdog: detects a deadlocked or silent worker set and reports
// which processors were blocked on which sends and receives, instead of
// letting the run hang. Progress is tracked with a single global counter the
// workers bump on every completed channel operation, every loop iteration,
// and on exit; pending channel operations register in a small mutex-guarded
// table only after their non-blocking fast path failed, so the fully
// buffered common case stays on atomics.
package exec

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

type watchdog struct {
	progress atomic.Int64

	mu       sync.Mutex
	blocked  map[int64]BlockedOp
	nextID   int64
	finished []bool
	stall    *StallError

	quit chan struct{}
}

func newWatchdog(nprocs int) *watchdog {
	return &watchdog{
		blocked:  map[int64]BlockedOp{},
		finished: make([]bool, nprocs),
		quit:     make(chan struct{}),
	}
}

// tick records one unit of worker progress.
func (wd *watchdog) tick() { wd.progress.Add(1) }

// block registers a channel operation that failed its non-blocking fast
// path; the returned handle releases the entry once the operation completes
// or is abandoned.
func (wd *watchdog) block(proc int, op string, peer int, what string) int64 {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	wd.nextID++
	id := wd.nextID
	wd.blocked[id] = BlockedOp{Proc: proc, Op: op, Peer: peer, What: what}
	return id
}

func (wd *watchdog) unblock(id int64) {
	wd.mu.Lock()
	delete(wd.blocked, id)
	wd.mu.Unlock()
}

// finish marks a worker done (normally or with an error); finished workers
// are exempt from stall reporting.
func (wd *watchdog) finish(proc int) {
	wd.mu.Lock()
	wd.finished[proc] = true
	wd.mu.Unlock()
	wd.tick()
}

// stop terminates the poller (idempotent is not needed: called once).
func (wd *watchdog) stop() { close(wd.quit) }

// stallError returns the stall verdict, if the watchdog fired.
func (wd *watchdog) stallError() *StallError {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	return wd.stall
}

// watch polls the progress counter and fires once no progress has been made
// for at least stall while unfinished workers remain, recording a snapshot
// of the blocked operations and cancelling the run so every wedged worker
// unwinds. Workers that compute for a long time between loop iterations do
// tick at every iteration, so only a genuinely silent set trips this.
func (wd *watchdog) watch(ctx context.Context, stall time.Duration, cancel context.CancelFunc) {
	interval := stall / 8
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	last := wd.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-wd.quit:
			return
		case <-ctx.Done():
			return
		case <-t.C:
		}
		cur := wd.progress.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		quiet := time.Since(lastChange)
		if quiet < stall {
			continue
		}
		if wd.fire(quiet) {
			cancel()
			return
		}
		// Everyone finished between polls: nothing to report.
		return
	}
}

// fire snapshots the stall state; it reports false when no worker remained
// unfinished (no stall after all).
func (wd *watchdog) fire(quiet time.Duration) bool {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	var unfinished []int
	for p, done := range wd.finished {
		if !done {
			unfinished = append(unfinished, p)
		}
	}
	if len(unfinished) == 0 {
		return false
	}
	se := &StallError{Quiet: quiet, Unfinished: unfinished}
	for _, op := range wd.blocked {
		se.Blocked = append(se.Blocked, op)
	}
	sort.Slice(se.Blocked, func(i, j int) bool {
		a, b := se.Blocked[i], se.Blocked[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Peer < b.Peer
	})
	wd.stall = se
	return true
}
