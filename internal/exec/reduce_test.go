package exec

import (
	"context"
	"fmt"
	"testing"

	"phpf/internal/core"
	"phpf/internal/programs"
	"phpf/internal/sim"
	"phpf/internal/trace"
)

// TestReduceDifferMatrix is the deterministic-merge oracle: for both
// reduce-sweep kernels, every mapping strategy, processor counts 1..8, and
// both runtime reduction strategies, the concurrent executor must agree
// with the simulator bit-for-bit — scalars, arrays, all cost-model
// statistics (including the merge counter), and the traced reduce/merge
// event counts. The tree merge's fold order is a pure function of the
// processor count, which is exactly what this pins. Run under -race this is
// also the concurrency soak for the merge-verification protocol.
func TestReduceDifferMatrix(t *testing.T) {
	kernels := map[string]string{
		"histogram": programs.Histogram(96, 16, 2),
		"dotsweep":  programs.DotSweep(16, 12),
	}
	for progName, src := range kernels {
		for stratName, opts := range strategies() {
			for _, nprocs := range []int{1, 2, 4, 8} {
				for _, mode := range []core.ReduceMode{core.ReduceCollective, core.ReducePrivatize} {
					src, opts, nprocs, mode := src, opts, nprocs, mode
					t.Run(fmt.Sprintf("%s/%s/p%d/%s", progName, stratName, nprocs, mode), func(t *testing.T) {
						prog := compile(t, src, nprocs, opts)
						d := Differ{Trace: &trace.Options{}, Reduce: mode}
						rep, err := d.Run(context.Background(), prog)
						if err != nil {
							t.Fatalf("differ: %v", err)
						}
						if !rep.Match() {
							t.Fatal(rep.String())
						}
						merged := rep.Exec.Trace.MergedCount()
						switch {
						case mode == core.ReduceCollective && rep.Sim.Stats.Merges != 0:
							t.Errorf("collective run tree-merged %d times", rep.Sim.Stats.Merges)
						case mode == core.ReducePrivatize && nprocs > 1 && (rep.Sim.Stats.Merges == 0 || merged == 0):
							t.Errorf("privatized run recorded merges=%d, traced merged=%d, want both > 0",
								rep.Sim.Stats.Merges, merged)
						case mode == core.ReducePrivatize && nprocs == 1 && merged != 0:
							// A single processor has nothing to combine: no
							// merge event on either backend.
							t.Errorf("P=1 privatized run traced merged=%d, want 0", merged)
						}
					})
				}
			}
		}
	}
}

// TestReduceStrategyTrafficAdvantage pins the mechanism behind the reduce
// sweep's headline: privatizing the histogram removes the per-instance
// general communication entirely (every contribution accumulates locally),
// so modeled message counts — not just simulated time — must drop.
func TestReduceStrategyTrafficAdvantage(t *testing.T) {
	prog := compile(t, programs.Histogram(96, 16, 2), 8, core.DefaultOptions())
	coll, err := sim.Run(prog, sim.Config{Reduce: core.ReduceCollective})
	if err != nil {
		t.Fatal(err)
	}
	priv, err := sim.Run(prog, sim.Config{Reduce: core.ReducePrivatize})
	if err != nil {
		t.Fatal(err)
	}
	if priv.Stats.Messages >= coll.Stats.Messages {
		t.Errorf("privatized moved %d messages, collective %d — expected strictly fewer",
			priv.Stats.Messages, coll.Stats.Messages)
	}
	if priv.Time >= coll.Time {
		t.Errorf("privatized time %v, collective %v — expected strictly faster", priv.Time, coll.Time)
	}
}
