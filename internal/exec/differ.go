// The differential oracle: runs the same SPMD program through the
// sequential simulator and the concurrent executor and demands bit-for-bit
// agreement on every scalar, every array element, and the aggregate
// communication statistics. Because both backends share their entire
// interpretation core (internal/eval), any disagreement is a genuine bug in
// one backend's execution or accounting — the oracle is what makes the
// concurrent backend trustworthy and the simulator's cost model honest.
package exec

import (
	"context"
	"fmt"
	"math"
	"sort"

	"phpf/internal/dist"
	"phpf/internal/sim"
	"phpf/internal/spmd"
	"phpf/internal/trace"
)

// Differ runs both backends and compares their results.
type Differ struct {
	// Sim configures the sequential reference run. It must be fault-free
	// (no fault plan, no checkpointing): faults perturb the simulator's
	// stats nondeterministically relative to a live run.
	Sim sim.Config
	// Exec configures the concurrent run.
	Exec Config
	// Trace, when non-nil, traces both runs and extends the comparison to
	// event-level agreement: per-communication-class message and byte
	// counts, and the number of reduction collectives, must match exactly.
	Trace *trace.Options
}

// DiffReport is the outcome of one differential run.
type DiffReport struct {
	Sim  *sim.Result
	Exec *Result
	// Mismatches lists every disagreement found (empty = backends agree).
	Mismatches []string
}

// Match reports whether the two backends agreed exactly.
func (r *DiffReport) Match() bool { return len(r.Mismatches) == 0 }

func (r *DiffReport) String() string {
	if r.Match() {
		return fmt.Sprintf("backends agree (time %.6gs, %s)", r.Sim.Time, r.Sim.Stats.String())
	}
	s := fmt.Sprintf("%d mismatches:", len(r.Mismatches))
	for _, m := range r.Mismatches {
		s += "\n  " + m
	}
	return s
}

// Run executes the program on both backends and compares. An error means a
// backend failed to run (or the configuration is unusable for differential
// testing); a completed report with mismatches means the backends disagree.
func (d Differ) Run(ctx context.Context, p *spmd.Program) (*DiffReport, error) {
	if d.Sim.Fault.Active() {
		return nil, &ConfigError{Msg: "differential oracle requires a fault-free simulator config"}
	}
	if d.Sim.CheckpointInterval > 0 {
		return nil, &ConfigError{Msg: "differential oracle requires checkpointing off (the concurrent backend takes none)"}
	}
	if d.Trace != nil {
		d.Sim.Trace = d.Trace
		d.Exec.Trace = d.Trace
	}
	simRes, err := sim.RunContext(ctx, p, d.Sim)
	if err != nil {
		return nil, fmt.Errorf("differ: %w", err)
	}
	if simRes.Aborted {
		return nil, &ConfigError{Msg: "differential oracle cannot compare an aborted simulator run (raise Sim.MaxSeconds)"}
	}
	execRes, err := Run(ctx, p, d.Exec)
	if err != nil {
		return nil, fmt.Errorf("differ: %w", err)
	}
	r := &DiffReport{Sim: simRes, Exec: execRes}
	r.compare()
	return r, nil
}

// compare fills Mismatches. Values are compared bitwise: the backends share
// the evaluation core, so even rounding must be identical.
func (r *DiffReport) compare() {
	miss := func(format string, args ...any) {
		r.Mismatches = append(r.Mismatches, fmt.Sprintf(format, args...))
	}

	var names []string
	for name := range r.Sim.Scalars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := r.Sim.Scalars[name]
		got, ok := r.Exec.Scalars[name]
		if !ok {
			miss("scalar %s: missing from concurrent result", name)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			miss("scalar %s: sim %v, exec %v", name, want, got)
		}
	}

	names = names[:0]
	for name := range r.Sim.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := r.Sim.Arrays[name]
		got, ok := r.Exec.Arrays[name]
		if !ok {
			miss("array %s: missing from concurrent result", name)
			continue
		}
		if len(got) != len(want) {
			miss("array %s: sim has %d elements, exec %d", name, len(want), len(got))
			continue
		}
		bad := 0
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				if bad == 0 {
					miss("array %s: first divergence at element %d: sim %v, exec %v",
						name, i, want[i], got[i])
				}
				bad++
			}
		}
		if bad > 1 {
			miss("array %s: %d diverging elements in total", name, bad)
		}
	}

	ss, es := r.Sim.Stats, r.Exec.Stats
	counters := []struct {
		name      string
		sim, exec int64
	}{
		{"messages", ss.Messages, es.Messages},
		{"bytes moved", ss.BytesMoved, es.BytesMoved},
		{"broadcasts", ss.Broadcasts, es.Broadcasts},
		{"shifts", ss.Shifts, es.Shifts},
		{"reductions", ss.Reductions, es.Reductions},
		{"point-to-point", ss.PointToPoint, es.PointToPoint},
		{"all-to-alls", ss.AllToAlls, es.AllToAlls},
	}
	for _, c := range counters {
		if c.sim != c.exec {
			miss("stats %s: sim %d, exec %d", c.name, c.sim, c.exec)
		}
	}
	if math.Float64bits(r.Sim.Time) != math.Float64bits(r.Exec.Time) {
		miss("simulated time: sim %v, exec %v", r.Sim.Time, r.Exec.Time)
	}

	// Event-level agreement: when both runs were traced, the planned
	// communication each backend observed — split by class — must be
	// structurally identical, and so must the number of reduction
	// collectives. (Time stamps differ by construction: simulated vs wall.)
	if st, et := r.Sim.Trace, r.Exec.Trace; st.Enabled() && et.Enabled() {
		sc, ec := st.SendsByClass(), et.SendsByClass()
		for c := dist.CommNone; c <= dist.CommGeneral; c++ {
			s, e := sc[c], ec[c]
			if s != e {
				miss("trace class %s: sim %d msgs/%d bytes, exec %d msgs/%d bytes",
					c, s.Msgs, s.Bytes, e.Msgs, e.Bytes)
			}
		}
		if s, e := st.KindCount(trace.Reduce), et.KindCount(trace.Reduce); s != e {
			miss("trace reduce events: sim %d, exec %d", s, e)
		}
	}
}
