// The differential oracle: runs the same SPMD program through the
// sequential simulator and the concurrent executor and demands bit-for-bit
// agreement on every scalar, every array element, and the aggregate
// communication statistics. Because both backends share their entire
// interpretation core (internal/eval), any disagreement is a genuine bug in
// one backend's execution or accounting — the oracle is what makes the
// concurrent backend trustworthy and the simulator's cost model honest.
package exec

import (
	"context"
	"fmt"
	"math"
	"sort"

	"phpf/internal/core"
	"phpf/internal/dist"
	"phpf/internal/fault"
	"phpf/internal/sim"
	"phpf/internal/spmd"
	"phpf/internal/trace"
)

// Differ runs both backends and compares their results.
type Differ struct {
	// Sim configures the sequential reference run. Fault plans and
	// checkpoint intervals must not be set here directly — use the shared
	// Fault/CheckpointInterval fields below, which apply the identical
	// seeded plan to both backends (the only configuration under which
	// their fault accounting is comparable).
	Sim sim.Config
	// Exec configures the concurrent run. Its Fault/CheckpointInterval
	// must likewise be left to the shared fields; HardCrashes is rejected
	// outright (run-level heals re-execute wall intervals the simulator
	// never models twice).
	Exec Config
	// Trace, when non-nil, traces both runs and extends the comparison to
	// event-level agreement: per-communication-class message and byte
	// counts, and the counts of reduction, fault, checkpoint, and restart
	// events, must match exactly.
	Trace *trace.Options

	// Fault, when non-nil and active, injects the same seeded fault plan
	// into both backends. The concurrent backend replays the simulator's
	// seeded draws, so modeled stats and fault-event counts must agree
	// bitwise — which is exactly what the comparison then checks.
	Fault *fault.Plan
	// CheckpointInterval, when > 0, enables coordinated checkpointing at
	// the same simulated-time interval in both backends.
	CheckpointInterval float64
	// Reduce selects the runtime reduction strategy, applied identically to
	// both backends (two runs under different strategies reassociate floating
	// point differently and are not comparable). Like Fault above, setting a
	// conflicting mode on a sub-config is rejected.
	Reduce core.ReduceMode
}

// DiffReport is the outcome of one differential run.
type DiffReport struct {
	Sim  *sim.Result
	Exec *Result
	// Mismatches lists every disagreement found (empty = backends agree).
	Mismatches []string
}

// Match reports whether the two backends agreed exactly.
func (r *DiffReport) Match() bool { return len(r.Mismatches) == 0 }

func (r *DiffReport) String() string {
	if r.Match() {
		return fmt.Sprintf("backends agree (time %.6gs, %s)", r.Sim.Time, r.Sim.Stats.String())
	}
	s := fmt.Sprintf("%d mismatches:", len(r.Mismatches))
	for _, m := range r.Mismatches {
		s += "\n  " + m
	}
	return s
}

// Run executes the program on both backends and compares. An error means a
// backend failed to run (or the configuration is unusable for differential
// testing); a completed report with mismatches means the backends disagree.
func (d Differ) Run(ctx context.Context, p *spmd.Program) (*DiffReport, error) {
	if d.Sim.Fault.Active() && !plansEqual(d.Sim.Fault, d.Fault) {
		return nil, &ConfigError{Msg: "differential oracle takes the fault plan via Differ.Fault (it must be identical for both backends)"}
	}
	if d.Exec.Fault.Active() && !plansEqual(d.Exec.Fault, d.Fault) {
		return nil, &ConfigError{Msg: "differential oracle takes the fault plan via Differ.Fault (it must be identical for both backends)"}
	}
	if d.Sim.CheckpointInterval > 0 && d.Sim.CheckpointInterval != d.CheckpointInterval {
		return nil, &ConfigError{Msg: "differential oracle takes the checkpoint interval via Differ.CheckpointInterval (it must be identical for both backends)"}
	}
	if d.Exec.CheckpointInterval > 0 && d.Exec.CheckpointInterval != d.CheckpointInterval {
		return nil, &ConfigError{Msg: "differential oracle takes the checkpoint interval via Differ.CheckpointInterval (it must be identical for both backends)"}
	}
	if d.Exec.HardCrashes {
		return nil, &ConfigError{Msg: "differential oracle cannot compare HardCrashes runs (run-level heals re-execute intervals the simulator models once)"}
	}
	if (d.Sim.Reduce != core.ReduceAuto && d.Sim.Reduce != d.Reduce) ||
		(d.Exec.Reduce != core.ReduceAuto && d.Exec.Reduce != d.Reduce) {
		return nil, &ConfigError{Msg: "differential oracle takes the reduce mode via Differ.Reduce (it must be identical for both backends)"}
	}
	d.Sim.Fault = d.Fault
	d.Exec.Fault = d.Fault
	d.Sim.CheckpointInterval = d.CheckpointInterval
	d.Exec.CheckpointInterval = d.CheckpointInterval
	d.Sim.Reduce = d.Reduce
	d.Exec.Reduce = d.Reduce
	if d.Trace != nil {
		d.Sim.Trace = d.Trace
		d.Exec.Trace = d.Trace
	}
	simRes, err := sim.RunContext(ctx, p, d.Sim)
	if err != nil {
		return nil, fmt.Errorf("differ: %w", err)
	}
	if simRes.Aborted {
		return nil, &ConfigError{Msg: "differential oracle cannot compare an aborted simulator run (raise Sim.MaxSeconds)"}
	}
	execRes, err := Run(ctx, p, d.Exec)
	if err != nil {
		return nil, fmt.Errorf("differ: %w", err)
	}
	r := &DiffReport{Sim: simRes, Exec: execRes}
	r.compare()
	return r, nil
}

// compare fills Mismatches. Values are compared bitwise: the backends share
// the evaluation core, so even rounding must be identical.
func (r *DiffReport) compare() {
	miss := func(format string, args ...any) {
		r.Mismatches = append(r.Mismatches, fmt.Sprintf(format, args...))
	}

	var names []string
	for name := range r.Sim.Scalars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := r.Sim.Scalars[name]
		got, ok := r.Exec.Scalars[name]
		if !ok {
			miss("scalar %s: missing from concurrent result", name)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			miss("scalar %s: sim %v, exec %v", name, want, got)
		}
	}

	names = names[:0]
	for name := range r.Sim.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := r.Sim.Arrays[name]
		got, ok := r.Exec.Arrays[name]
		if !ok {
			miss("array %s: missing from concurrent result", name)
			continue
		}
		if len(got) != len(want) {
			miss("array %s: sim has %d elements, exec %d", name, len(want), len(got))
			continue
		}
		bad := 0
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				if bad == 0 {
					miss("array %s: first divergence at element %d: sim %v, exec %v",
						name, i, want[i], got[i])
				}
				bad++
			}
		}
		if bad > 1 {
			miss("array %s: %d diverging elements in total", name, bad)
		}
	}

	ss, es := r.Sim.Stats, r.Exec.Stats
	counters := []struct {
		name      string
		sim, exec int64
	}{
		{"messages", ss.Messages, es.Messages},
		{"bytes moved", ss.BytesMoved, es.BytesMoved},
		{"broadcasts", ss.Broadcasts, es.Broadcasts},
		{"shifts", ss.Shifts, es.Shifts},
		{"reductions", ss.Reductions, es.Reductions},
		{"merges", ss.Merges, es.Merges},
		{"point-to-point", ss.PointToPoint, es.PointToPoint},
		{"all-to-alls", ss.AllToAlls, es.AllToAlls},
		{"retransmits", ss.Retransmits, es.Retransmits},
		{"duplicates", ss.Duplicates, es.Duplicates},
		{"crashes", ss.Crashes, es.Crashes},
		{"checkpoints", ss.Checkpoints, es.Checkpoints},
		{"checkpoint bytes", ss.CheckpointBytes, es.CheckpointBytes},
		{"recovery bytes", ss.RecoveryBytes, es.RecoveryBytes},
		{"recovery messages", ss.RecoveryMessages, es.RecoveryMessages},
	}
	for _, c := range counters {
		if c.sim != c.exec {
			miss("stats %s: sim %d, exec %d", c.name, c.sim, c.exec)
		}
	}
	if math.Float64bits(r.Sim.Time) != math.Float64bits(r.Exec.Time) {
		miss("simulated time: sim %v, exec %v", r.Sim.Time, r.Exec.Time)
	}

	// Event-level agreement: when both runs were traced, the planned
	// communication each backend observed — split by class — must be
	// structurally identical, and so must the number of reduction
	// collectives. (Time stamps differ by construction: simulated vs wall.)
	if st, et := r.Sim.Trace, r.Exec.Trace; st.Enabled() && et.Enabled() {
		sc, ec := st.SendsByClass(), et.SendsByClass()
		for c := dist.CommNone; c <= dist.CommGeneral; c++ {
			s, e := sc[c], ec[c]
			if s != e {
				miss("trace class %s: sim %d msgs/%d bytes, exec %d msgs/%d bytes",
					c, s.Msgs, s.Bytes, e.Msgs, e.Bytes)
			}
		}
		if s, e := st.KindCount(trace.Reduce), et.KindCount(trace.Reduce); s != e {
			miss("trace reduce events: sim %d, exec %d", s, e)
		}
		if s, e := st.MergedCount(), et.MergedCount(); s != e {
			miss("trace merged partials: sim %d, exec %d", s, e)
		}
		// Per-class fault-protocol events: both backends emit them from the
		// same replayed injector draws, so the counts must coincide.
		for _, k := range []trace.Kind{trace.Fault, trace.Checkpoint, trace.Restart} {
			if s, e := st.KindCount(k), et.KindCount(k); s != e {
				miss("trace %s events: sim %d, exec %d", k, s, e)
			}
		}
	}
}

// plansEqual reports whether two fault plans describe the same injection
// (nil and inactive plans count as equal).
func plansEqual(a, b *fault.Plan) bool {
	if !a.Active() && !b.Active() {
		return true
	}
	if !a.Active() || !b.Active() {
		return false
	}
	if a.Seed != b.Seed || a.LossRate != b.LossRate || a.DupRate != b.DupRate ||
		a.RTO != b.RTO || len(a.Crashes) != len(b.Crashes) || len(a.Slowdowns) != len(b.Slowdowns) {
		return false
	}
	for i := range a.Crashes {
		if a.Crashes[i] != b.Crashes[i] {
			return false
		}
	}
	for i := range a.Slowdowns {
		if a.Slowdowns[i] != b.Slowdowns[i] {
			return false
		}
	}
	return true
}
