package exec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"phpf/internal/comm"
	"phpf/internal/core"
	"phpf/internal/programs"
)

// commSource is a small program whose compilation produces real
// communication: the offset read b(i-1) under a block distribution is a
// vectorized nearest-neighbor shift (every processor sends its boundary
// element around the ring), and the sum is a global reduction — so workers
// must actually rendezvous.
const commSource = `
program talk
parameter n = 16
real a(n), b(n)
real s
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  b(i) = i * 1.5
end do
s = 0.0
do i = 2, n
  a(i) = b(i-1) + 1.0
  s = s + a(i)
end do
end
`

// TestWatchdogReportsWedgedWorkers: a worker whose sends are deliberately
// suppressed wedges its receivers; the watchdog must detect the stall and
// report the blocked processors and their pending operations instead of
// letting the test hang.
func TestWatchdogReportsWedgedWorkers(t *testing.T) {
	prog := compile(t, commSource, 4, core.DefaultOptions())
	cfg := Config{
		StallTimeout: 150 * time.Millisecond,
		testDropSend: func(proc int, req *comm.Requirement) bool {
			return proc == 1 // processor 1 goes silent on every planned send
		},
	}
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = Run(context.Background(), prog, cfg)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run hung: watchdog did not fire")
	}
	if err == nil {
		t.Fatalf("expected a stall, got success: %+v", res.Stats)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("expected *StallError, got %T: %v", err, err)
	}
	if len(se.Unfinished) == 0 {
		t.Fatalf("stall reports no unfinished workers: %v", se)
	}
	if len(se.Blocked) == 0 {
		t.Fatalf("stall reports no blocked operations: %v", se)
	}
	foundRecv := false
	for _, op := range se.Blocked {
		if op.Op == "recv" && op.Peer == 1 {
			foundRecv = true
		}
	}
	if !foundRecv {
		t.Fatalf("expected a receive blocked on the silent processor 1; got %v", se.Blocked)
	}
	if !strings.Contains(se.Error(), "blocked") {
		t.Fatalf("error text should name the blocked operations: %v", se)
	}
}

// TestPanicContainment: a panic inside one worker goroutine must surface as
// a structured *WorkerError with the process intact, not crash the run.
func TestPanicContainment(t *testing.T) {
	prog := compile(t, commSource, 4, core.DefaultOptions())
	cfg := Config{
		testHook: func(proc int) error {
			if proc == 2 {
				panic("injected worker failure")
			}
			return nil
		},
	}
	_, err := Run(context.Background(), prog, cfg)
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("expected *WorkerError, got %T: %v", err, err)
	}
	if we.Proc != 2 {
		t.Fatalf("panic attributed to processor %d, want 2", we.Proc)
	}
	if we.PanicValue != "injected worker failure" {
		t.Fatalf("panic value %v", we.PanicValue)
	}
	if !strings.Contains(we.Stack, "goroutine") {
		t.Fatalf("missing stack trace: %q", we.Stack)
	}
}

// TestDeadline: a context deadline aborts the run with the context's error
// (the concurrent backend's replacement for the simulator's MaxSeconds).
func TestDeadline(t *testing.T) {
	prog := compile(t, commSource, 4, core.DefaultOptions())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	cfg := Config{
		testHook: func(proc int) error {
			time.Sleep(5 * time.Millisecond) // make the run outlast the deadline
			return nil
		},
	}
	_, err := Run(ctx, prog, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
}

// TestCancellation: cancelling the caller's context unwinds every worker.
func TestCancellation(t *testing.T) {
	prog := compile(t, commSource, 4, core.DefaultOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		testHook: func(proc int) error {
			cancel() // first tick cancels the whole run
			return nil
		},
	}
	_, err := Run(ctx, prog, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected Canceled, got %v", err)
	}
}

// TestConfigValidation: impossible configurations are rejected up front
// with structured errors rather than deadlocking at the first rendezvous.
func TestConfigValidation(t *testing.T) {
	prog := compile(t, commSource, 4, core.DefaultOptions())
	var ce *ConfigError

	_, err := Run(context.Background(), prog, Config{Workers: 3})
	if !errors.As(err, &ce) {
		t.Fatalf("Workers=3 on a 4-processor plan: expected *ConfigError, got %v", err)
	}
	if !strings.Contains(ce.Error(), "deadlock") {
		t.Fatalf("error should explain the deadlock risk: %v", ce)
	}

	if _, err := Run(context.Background(), prog, Config{MailboxDepth: -1}); !errors.As(err, &ce) {
		t.Fatalf("negative MailboxDepth: expected *ConfigError, got %v", err)
	}
	if _, err := Run(context.Background(), nil, Config{}); !errors.As(err, &ce) {
		t.Fatalf("nil program: expected *ConfigError, got %v", err)
	}

	// Workers equal to the plan's processor count is accepted.
	if _, err := Run(context.Background(), prog, Config{Workers: 4}); err != nil {
		t.Fatalf("Workers=4: %v", err)
	}
}

// TestMailboxDepthOne: the executor must stay deadlock-free at the minimum
// mailbox depth (every send can rendezvous through a single buffer slot).
func TestMailboxDepthOne(t *testing.T) {
	for _, src := range []string{commSource, programs.TOMCATV(10, 2), programs.DGEFA(12)} {
		prog := compile(t, src, 4, core.DefaultOptions())
		if _, err := Run(context.Background(), prog, Config{MailboxDepth: 1, StallTimeout: 10 * time.Second}); err != nil {
			t.Fatalf("depth-1 run failed: %v", err)
		}
	}
}

// TestWorkerErrorMessage: the error type renders the processor and value.
func TestWorkerErrorMessage(t *testing.T) {
	we := &WorkerError{Proc: 3, PanicValue: "boom"}
	if got := we.Error(); !strings.Contains(got, "processor 3") || !strings.Contains(got, "boom") {
		t.Fatalf("unhelpful message: %q", got)
	}
}
