package exec

import (
	"context"
	"fmt"
	"testing"

	"phpf/internal/core"
	"phpf/internal/parser"
	"phpf/internal/programs"
	"phpf/internal/sim"
	"phpf/internal/spmd"
)

// compile lowers a source program for nprocs processors.
func compile(t *testing.T, src string, nprocs int, opts core.Options) *spmd.Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := core.BuildAndAnalyze(ap, nprocs, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return spmd.Generate(res)
}

// The three mapping strategies of Table 1: no privatization (everything
// replicated), privatization with producer alignment, and the full selected
// alignment — the oracle must hold under every one of them.
func strategies() map[string]core.Options {
	naive := core.DefaultOptions()
	naive.Scalars = core.ScalarsReplicated
	naive.AlignReductions = false
	producer := core.DefaultOptions()
	producer.Scalars = core.ScalarsProducerAligned
	return map[string]core.Options{
		"naive":    naive,
		"producer": producer,
		"selected": core.DefaultOptions(),
	}
}

// oraclePrograms is the corpus the differential oracle sweeps: every figure
// example plus the three benchmark kernels at test-friendly sizes.
func oraclePrograms() map[string]string {
	out := map[string]string{
		"tomcatv": programs.TOMCATV(10, 2),
		"dgefa":   programs.DGEFA(12),
		"appsp2d": programs.APPSP(4, 4, 4, 1, true),
		"appsp1d": programs.APPSP(4, 4, 4, 1, false),
		"smooth":  programs.Smooth(24, 2),
	}
	for name, src := range programs.Figures {
		out[name] = src
	}
	return out
}

// TestDifferMatrix is the differential oracle: for every program, every
// mapping strategy, and several processor counts, the concurrent executor's
// numeric results and communication statistics must equal the sequential
// simulator's bit-for-bit. Run under -race this also exercises the worker
// concurrency itself.
func TestDifferMatrix(t *testing.T) {
	for progName, src := range oraclePrograms() {
		for stratName, opts := range strategies() {
			for _, nprocs := range []int{1, 4, 8} {
				src, opts, nprocs := src, opts, nprocs
				t.Run(fmt.Sprintf("%s/%s/p%d", progName, stratName, nprocs), func(t *testing.T) {
					prog := compile(t, src, nprocs, opts)
					// Some figure sources are analysis examples, not
					// runnable programs (they trap on an uninitialized
					// subscript). The differential statement then is that
					// BOTH backends must reject them.
					if _, serr := sim.Run(prog, sim.Config{}); serr != nil {
						if _, eerr := Run(context.Background(), prog, Config{}); eerr == nil {
							t.Fatalf("sim rejects (%v) but exec runs", serr)
						}
						return
					}
					d := Differ{Sim: sim.Config{}, Exec: Config{}}
					rep, err := d.Run(context.Background(), prog)
					if err != nil {
						t.Fatalf("differ: %v", err)
					}
					if !rep.Match() {
						t.Fatal(rep.String())
					}
					if rep.Exec.Workers != prog.NProcs() {
						t.Fatalf("ran %d workers, want %d", rep.Exec.Workers, prog.NProcs())
					}
				})
			}
		}
	}
}

// TestDifferRejectsFaultyConfig: the oracle refuses configurations whose
// simulator run would not be comparable.
func TestDifferRejectsFaultyConfig(t *testing.T) {
	prog := compile(t, programs.Figures["figure1"], 4, core.DefaultOptions())
	d := Differ{Sim: sim.Config{CheckpointInterval: 1}, Exec: Config{}}
	if _, err := d.Run(context.Background(), prog); err == nil {
		t.Fatal("expected error for checkpointing sim config")
	}
}
