// Chaos mode: wall-clock fault tolerance for the concurrent backend.
//
// When the run has an active fault plan or a checkpoint interval, every
// worker replays the cost model on its own machine with its own seeded
// injector — the identical call sequence the simulator makes, so modeled
// Stats, simulated Time, and fault-event counts agree with sim bitwise by
// construction (the differential oracle demands exactly that).
//
// Crash recovery has two paths. The default, coordinated path mirrors the
// simulator's model: a scheduled fail-stop crash fires at the same
// crash-check site on every worker (same injector, same draw), each worker
// replays the simulator's Recover charge, restores its own memory from the
// last coordinated checkpoint snapshot, physically refetches the crashed
// processor's non-replicated state from a survivor, and re-executes the
// lost interval with accounting and tracing suppressed — so the final cost
// model never double-charges. The hard path (Config.HardCrashes, real
// panics, stalls) kills the worker set for real and heals at the run level:
// Run restores all workers from executor-held snapshots of the last
// complete checkpoint generation and re-spawns them with fresh transport.
package exec

import (
	"errors"
	"fmt"
	"math"

	"phpf/internal/eval"
	"phpf/internal/fault"
	"phpf/internal/machine"
)

// workerSnap is one worker's published checkpoint: everything needed to
// rebuild the worker at that boundary. The memory snapshot serves the
// coordinated in-band restore; the rest (sequence counters, machine
// accounting, injector draw position) serves the run-level heal, which
// rebuilds transport from scratch.
type workerSnap struct {
	gen      int64
	state    *eval.Snapshot
	cursor   eval.Cursor
	sendSeq  []uint64
	recvSeq  []uint64
	mach     machine.State
	inj      *fault.Injector
	lastCkpt float64
	valid    bool
}

// crashSignal unwinds a worker's walk when scheduled fail-stop crashes fire
// at a crash-check site (coordinated path). Every worker returns the same
// signal at the same site; the driver loop in runChaosWorker restores and
// resumes.
type crashSignal struct {
	crashes []fault.Crash
	target  int64 // site counter at the crash: replay suppression lifts here
}

func (c *crashSignal) Error() string {
	return fmt.Sprintf("exec: %d scheduled crash(es) fired", len(c.crashes))
}

// failStop is the panic value of a hard scheduled crash: the worker dies
// mid-protocol and the run-level heal recovers.
type failStop struct {
	crash fault.Crash
	at    float64 // replayed clock when the crash fired
}

// healState is the plan for one run-level heal: a complete snapshot
// generation, plus the crash to account and refetch (nil for stalls and
// real panics with no modeled crash time).
type healState struct {
	snaps []workerSnap
	crash *fault.Crash
	at    float64 // replayed clock of the crash (0 when crash is nil)
}

// setupChaos equips every worker with its replay machine and injector and,
// on a heal, rewinds them to the heal's checkpoint generation. It runs on
// Run's goroutine before workers spawn, so worker 0's shard-0 trace
// emission from the Recover charge below is race-free.
func (ex *executor) setupChaos(workers []*worker, heal *healState) {
	ex.machines = make([]*machine.Machine, ex.n)
	for p, w := range workers {
		m := machine.New(ex.prog.Grid(), ex.cfg.Params)
		inj := fault.NewInjector(ex.cfg.Fault)
		if heal != nil {
			snap := heal.snaps[p]
			m.RestoreState(snap.mach)
			inj = snap.inj.Clone()
			w.gen = snap.gen
			w.lastCkpt = snap.lastCkpt
			copy(w.sendSeq, snap.sendSeq)
			copy(w.recvSeq, snap.recvSeq)
			cur := snap.cursor
			w.resume = &cur
			// Re-seed the published snapshots so a second failure before
			// the next checkpoint can heal from the same generation.
			ex.snaps[p] = snap
			ex.prevSnaps[p] = workerSnap{}
		}
		m.Fault = inj
		if p == 0 {
			ex.mach = m
			if ex.rec != nil {
				// Worker 0's replay machine contributes the fault-protocol
				// events (checkpoint/restart/fault) stamped with wall time;
				// everything else the workers emit themselves from real
				// activity, so nothing is double-counted.
				m.Rec = ex.rec
				m.FaultEventsOnly = true
				m.Now = ex.wall
			}
		}
		ex.machines[p] = m
		w.mach = m
		w.inj = inj
	}
	if heal == nil || heal.crash == nil {
		return
	}
	// Replay the simulator's recovery accounting for the healed crash on
	// every machine, mark the crash consumed so it cannot refire, and
	// schedule the physical refetch at worker start.
	for p, w := range workers {
		snap := heal.snaps[p]
		lost := heal.at - snap.lastCkpt
		if lost < 0 {
			lost = 0
		}
		bytes, msgs := eval.RefetchCost(w.st, heal.crash.Proc, int64(ex.cfg.Params.ElemBytes))
		ex.machines[p].Recover(heal.crash.Proc, lost, bytes, msgs)
		w.lastCkpt = ex.machines[p].Time()
		w.inj.Consume(*heal.crash)
		w.healCrash = heal.crash
	}
}

// runChaosWorker is the chaos-mode worker driver: a tracked walk wrapped in
// the coordinated restore loop.
func (ex *executor) runChaosWorker(w *worker) error {
	if w.resume == nil {
		// The program start is a free, trivially consistent checkpoint:
		// gen 1 with a zero cursor (resume from the top).
		w.takeSnapshot()
	} else if w.healCrash != nil {
		c := *w.healCrash
		w.healCrash = nil
		if err := w.refetchAll([]fault.Crash{c}); err != nil {
			return err
		}
	}
	cur := w.resume
	w.resume = nil
	for {
		err := eval.WalkResume(w.st, w, cur)
		if err == nil {
			// Drain any message batch left open by trailing statements.
			err = w.flushBatch()
		}
		var cs *crashSignal
		if !errors.As(err, &cs) {
			return err
		}
		// Coordinated restore: every worker caught the same signal at the
		// same site. Memory rolls back to the last checkpoint; the machine
		// and injector do NOT (they went through Recover, exactly like the
		// simulator's, and replay suppression keeps their draw streams
		// aligned); sequence counters roll forward so re-executed sends get
		// fresh, consistent numbers on every edge.
		snap := ex.snaps[w.proc]
		w.st.Restore(snap.state)
		w.batch = openBatch{}
		w.replay = true
		w.replayTarget = cs.target
		w.sites = 0
		if w.proc == 0 {
			ex.softRestarts += int64(len(cs.crashes))
		}
		if err := w.refetchAll(cs.crashes); err != nil {
			return err
		}
		c2 := snap.cursor
		cur = &c2
	}
}

// crashCheck is one crash-check site — placed exactly where the simulator
// calls checkTime (per loop tick, after each hoisted communication, after
// each non-skipped per-instance communication, after a redistribution).
// During replay it only advances the site counter, lifting suppression at
// the recorded crash site.
func (w *worker) crashCheck() error {
	w.sites++
	if w.replay {
		if w.sites >= w.replayTarget {
			w.replay = false
		}
		return nil
	}
	if w.inj == nil {
		return nil
	}
	var crashes []fault.Crash
	// Drain until quiescent, like the simulator: each Recover advances the
	// clocks, which may bring the next scheduled crash due.
	for {
		c := w.inj.PendingCrash(w.mach.Time())
		if c == nil {
			break
		}
		if w.ex.cfg.HardCrashes {
			if c.Proc == w.proc {
				panic(&failStop{crash: *c, at: w.mach.Time()})
			}
			// Peers let the doomed worker's panic tear the attempt down;
			// the run-level heal restores everyone (their own injector is
			// rebuilt from the snapshot then, so consuming here is safe).
			continue
		}
		lost := w.mach.Time() - w.lastCkpt
		if lost < 0 {
			lost = 0
		}
		bytes, msgs := eval.RefetchCost(w.st, c.Proc, w.elemBytes())
		w.mach.Recover(c.Proc, lost, bytes, msgs)
		w.lastCkpt = w.mach.Time()
		crashes = append(crashes, *c)
	}
	if len(crashes) == 0 {
		return nil
	}
	return &crashSignal{crashes: crashes, target: w.sites}
}

// maybeCheckpoint takes a coordinated checkpoint when the replayed clock
// has advanced past the interval — the same condition, at the same
// loop-entry boundaries, as the simulator — then synchronizes all workers
// with a real barrier and publishes a snapshot. Suppressed during replay:
// by definition no checkpoint fired between the restored checkpoint and the
// crash, so none may fire during re-execution either.
func (w *worker) maybeCheckpoint() error {
	if w.replay || w.ex.cfg.CheckpointInterval <= 0 {
		return nil
	}
	now := w.mach.Time()
	if now-w.lastCkpt < w.ex.cfg.CheckpointInterval {
		return nil
	}
	w.mach.ClearAttr()
	w.mach.Checkpoint(eval.CheckpointBytes(w.st, w.elemBytes()))
	w.lastCkpt = w.mach.Time()
	// The barrier before the snapshot bounds generation skew to one: a
	// worker publishing gen k+1 proves every worker reached this boundary,
	// so all hold at least gen k — the run-level heal relies on that.
	if err := w.starBarrier(tagCkpt, tagCkptRelease, "checkpoint"); err != nil {
		return err
	}
	w.takeSnapshot()
	w.sites = 0
	return nil
}

// takeSnapshot publishes this worker's next checkpoint generation. The
// worker writes only its own slot; Run reads the slots after the workers
// join, so the accesses are ordered by the WaitGroup.
func (w *worker) takeSnapshot() {
	cur, _ := w.st.Cursor() // zero cursor (resume from start) outside LoopEntry
	w.gen++
	snap := workerSnap{
		gen:      w.gen,
		state:    w.st.Snapshot(),
		cursor:   cur,
		sendSeq:  append([]uint64(nil), w.sendSeq...),
		recvSeq:  append([]uint64(nil), w.recvSeq...),
		mach:     w.mach.SaveState(),
		inj:      w.inj.Clone(),
		lastCkpt: w.lastCkpt,
		valid:    true,
	}
	w.ex.prevSnaps[w.proc] = w.ex.snaps[w.proc]
	w.ex.snaps[w.proc] = snap
}

// refetchAll performs the physical recovery refetch: for each crashed
// processor, the lowest surviving worker streams that processor's
// non-replicated state — one message per eval.RefetchItem, exactly the
// modeled RecoveryMessages — carrying the element count and a checksum the
// restarted worker verifies against its restored image.
func (w *worker) refetchAll(crashes []fault.Crash) error {
	crashed := make(map[int]bool, len(crashes))
	for _, c := range crashes {
		crashed[c.Proc] = true
	}
	src := -1
	for p := 0; p < w.ex.n; p++ {
		if !crashed[p] {
			src = p
			break
		}
	}
	if src < 0 {
		return nil // everyone crashed: the local restores are all there is
	}
	for _, c := range crashes {
		if w.proc != src && w.proc != c.Proc {
			continue
		}
		items := eval.RefetchItems(w.st, c.Proc, w.elemBytes())
		what := fmt.Sprintf("recovery refetch for p%d", c.Proc)
		for _, it := range items {
			sum := w.itemSum(it)
			if w.proc == src {
				m := message{req: tagRefetch, count: int32(it.Elems), hasVal: true, bits: sum}
				if err := w.send(c.Proc, m, what); err != nil {
					return err
				}
				continue
			}
			got, err := w.recv(src, tagRefetch, what)
			if err != nil {
				return err
			}
			if int64(got.count) != it.Elems {
				return &DivergenceError{Proc: w.proc, Peer: src,
					What: what + ": " + it.Var.Name + " (element count)",
					Got:  float64(got.count), Want: float64(it.Elems)}
			}
			if got.hasVal && got.bits != sum {
				return &DivergenceError{Proc: w.proc, Peer: src,
					What: what + ": " + it.Var.Name + " (checksum)",
					Got:  math.Float64frombits(got.bits), Want: math.Float64frombits(sum)}
			}
		}
	}
	return nil
}

// itemSum folds one refetch item's current local value into a checksum:
// the full array image for arrays (identical on both sides under
// replicated execution), the scalar's bit pattern otherwise.
func (w *worker) itemSum(it eval.RefetchItem) uint64 {
	sum := uint64(fnvOffset)
	if it.Var.IsArray() {
		for _, x := range w.st.Array(it.Var) {
			sum = fnvAdd(sum, math.Float64bits(x))
		}
		return sum
	}
	return fnvAdd(sum, math.Float64bits(w.st.Scalar(it.Var)))
}

// healable reports whether a run-level heal can answer this error: worker
// deaths (panics, hard crashes) and stalls — not divergence or protocol
// violations, which a retry would only mask.
func healable(err error) bool {
	var we *WorkerError
	var se *StallError
	return errors.As(err, &we) || errors.As(err, &se)
}

// buildHeal assembles the restore plan for a run-level heal: the newest
// checkpoint generation every worker holds (the checkpoint barrier bounds
// skew to one, so it is the minimum of the latest generations), plus the
// crash to account when the failure was a scheduled fail-stop.
func (ex *executor) buildHeal(err error) *healState {
	g := int64(math.MaxInt64)
	for i := range ex.snaps {
		if !ex.snaps[i].valid {
			return nil
		}
		if ex.snaps[i].gen < g {
			g = ex.snaps[i].gen
		}
	}
	snaps := make([]workerSnap, ex.n)
	for i := range snaps {
		switch {
		case ex.snaps[i].gen == g:
			snaps[i] = ex.snaps[i]
		case ex.prevSnaps[i].valid && ex.prevSnaps[i].gen == g:
			snaps[i] = ex.prevSnaps[i]
		default:
			return nil
		}
	}
	h := &healState{snaps: snaps}
	var we *WorkerError
	if errors.As(err, &we) {
		if fs, ok := we.PanicValue.(*failStop); ok {
			h.crash = &fs.crash
			h.at = fs.at
		} else {
			// A real panic has no modeled crash time: account a crash of
			// that processor with no lost-work charge beyond the refetch.
			h.crash = &fault.Crash{Proc: we.Proc}
			h.at = snaps[we.Proc].lastCkpt
		}
	}
	return h
}

// checkMachineAgreement verifies every worker's replayed cost model agrees
// bitwise with worker 0's — the chaos-mode analogue of the memory
// consistency sweep (identical machines prove the replicated fault draws
// never diverged).
func (ex *executor) checkMachineAgreement() error {
	if !ex.chaos {
		return nil
	}
	ref := ex.machines[0]
	for p := 1; p < len(ex.machines); p++ {
		m := ex.machines[p]
		if math.Float64bits(m.Time()) != math.Float64bits(ref.Time()) {
			return &DivergenceError{Proc: p, Peer: 0, What: "replayed simulated time",
				Got: m.Time(), Want: ref.Time()}
		}
		if m.Stats != ref.Stats {
			return &DivergenceError{Proc: p, Peer: 0, What: "replayed cost-model statistics",
				Got: float64(m.Stats.Messages), Want: float64(ref.Stats.Messages)}
		}
	}
	return nil
}
