// Package exec is the concurrent SPMD execution backend: one goroutine per
// simulated processor runs the planned SPMD program for real, exchanging
// messages over channel-based bounded mailboxes wherever the communication
// plan (comm.Requirement) says data must move. It shares its entire
// interpretation core — value semantics, execution sets, communication
// decisions — with the sequential simulator (internal/sim) through
// internal/eval, which is what lets the differential oracle (Differ) demand
// bit-for-bit agreement between the two backends.
//
// Execution is replicated: every worker interprets the full program over its
// own memory image, exactly as the simulator interprets it over its single
// global image, so all workers make identical control-flow and
// communication decisions in the same order (the property that makes the
// rendezvous below deadlock-free). Messages carry the communicated value so
// receivers verify, bitwise, that the replicated images have not diverged;
// a final cross-worker sweep verifies complete memory agreement.
//
// The physical transport vectorizes: contiguous per-instance element
// transfers for one (source, destination, statement) — the inner-loop
// pattern the paper's message vectorization targets — coalesce into a
// single batched mailbox message carrying the element count and a checksum
// of the batched values, flushed whenever the batch key changes or other
// planned traffic must flow. The cost-model replay and the trace's exact
// counters are unaffected: the accountant still charges every instance, and
// a flushed batch emits one trace event that stands for Count messages.
//
// Communication statistics are kept exactly comparable with the simulator
// by a deterministic accountant: worker 0 — which observes every planned
// event in program order, like the simulator does — replays the same
// machine.Machine calls with the same arguments. The machine instance is
// owned by that one goroutine, so the accounting needs no locking, and the
// resulting Stats (and simulated clocks) are identical to the sequential
// run by construction. The real channel traffic is verified independently,
// through per-edge sequence numbers, requirement tags, and the watchdog.
//
// Robustness: a worker panic is contained and surfaced as *WorkerError
// with the process intact; a wedged worker set is detected by the stall
// watchdog and reported as *StallError naming the blocked operations; and
// cancellation or deadline on the caller's context unwinds every worker
// (replacing the simulator's ad-hoc simulated-time cutoff with real
// wall-clock enforcement).
package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"phpf/internal/comm"
	"phpf/internal/core"
	"phpf/internal/dist"
	"phpf/internal/eval"
	"phpf/internal/fault"
	"phpf/internal/ir"
	"phpf/internal/machine"
	"phpf/internal/spmd"
	"phpf/internal/trace"
)

// DefaultMailboxDepth is the default bound of each directed mailbox.
const DefaultMailboxDepth = 64

// DefaultStallTimeout is the default quiet period after which the watchdog
// declares the worker set stalled.
const DefaultStallTimeout = 10 * time.Second

// Config controls a concurrent run.
type Config struct {
	// Params is the machine cost model used for the statistics accounting
	// (zero value = machine.SP2(), mirroring sim.Config).
	Params machine.Params
	// Workers is the requested worker count. The SPMD program is planned
	// for exactly NProcs processors and every planned rendezvous names
	// concrete processor pairs, so the only valid values are 0 (meaning
	// NProcs) and NProcs itself; anything else is a ConfigError rather
	// than a deadlock at the first unmatched send.
	Workers int
	// MailboxDepth bounds each directed mailbox (0 = DefaultMailboxDepth;
	// must be at least 1 so self-sends and ring shifts cannot wedge).
	MailboxDepth int
	// StallTimeout is how long the watchdog waits without any worker
	// progress before declaring a stall (0 = DefaultStallTimeout,
	// negative = watchdog disabled).
	StallTimeout time.Duration
	// Trace, when non-nil, records runtime events (stamped with wall time
	// since run start) into Result.Trace; each worker emits into its own
	// shard, so tracing adds no locking to the hot path and is race-free.
	// Nil keeps the event path emission-free.
	Trace *trace.Options

	// Fault, when non-nil and active, injects the seeded fault plan into
	// the run at two layers. The model layer replays the simulator's fault
	// accounting on every worker (identical seeded draws, so Stats, Time,
	// and fault-event counts agree bitwise with sim for the same plan).
	// The wire layer makes losses, duplicates, and slowdowns physical:
	// keyed per-(src,dst,seq,attempt) draws drop or duplicate real mailbox
	// transmissions, healed by an ack/retransmit protocol with exponential
	// backoff — reproducible for a fixed seed regardless of goroutine
	// interleaving.
	Fault *fault.Plan
	// CheckpointInterval > 0 takes coordinated checkpoints — barrier-
	// aligned dense snapshots of every worker's eval.State — whenever the
	// replayed cost model's simulated clock has advanced that many seconds
	// since the last one, at the same loop-entry boundaries the simulator
	// checkpoints at (so the two backends' checkpoint schedules coincide).
	CheckpointInterval float64
	// MaxRestarts bounds run-level heals: full restarts from the last
	// complete checkpoint after a real worker panic or a watchdog-detected
	// stall. 0 means DefaultMaxRestarts; negative disables healing.
	MaxRestarts int
	// MaxCells caps the total array cells of each worker's memory image
	// (0 = unlimited; see eval.Budget). Every worker holds a full
	// replicated image, so a run's worst-case footprint is
	// MaxCells × 8 bytes × workers. A breach fails the run with a coded
	// E006 diagnostic before the images are allocated.
	MaxCells int64
	// Reduce selects the runtime reduction strategy (mirroring sim.Config):
	// ReduceAuto privatizes every reduction the reduceplan cleared,
	// ReduceCollective forces the §2.3 collective, ReducePrivatize demands
	// privatization and fails (E005) when any recognized reduction is
	// collective-only.
	Reduce core.ReduceMode
	// HardCrashes makes scheduled fail-stop crashes kill the worker
	// goroutine for real (a panic unwinds it mid-protocol) instead of the
	// default coordinated unwind. Recovery then goes through the run-level
	// heal path: crash detection by cancellation/watchdog, restore of all
	// workers from executor-held snapshots, re-spawn with refetch. Wall
	// traces then legitimately double-cover the re-executed interval, so
	// the differential oracle rejects this mode.
	HardCrashes bool

	// Test hooks (package-internal): testDropSend suppresses a worker's
	// sends for a requirement, wedging its receivers on purpose; testHook
	// runs at every loop-iteration tick; testDelayUnit overrides the wall
	// time one slowdown unit costs a sender.
	testDropSend  func(proc int, req *comm.Requirement) bool
	testHook      func(proc int) error
	testDelayUnit time.Duration
}

// DefaultMaxRestarts is the default bound on run-level heals.
const DefaultMaxRestarts = 3

// Result is the outcome of a concurrent run.
type Result struct {
	// Time and Stats are the accountant's replay of the cost model —
	// directly comparable with (and, fault-free, identical to) the
	// sequential simulator's.
	Time  float64
	Stats machine.Stats

	// Final memory (verified identical across all workers).
	Scalars map[string]float64
	Arrays  map[string][]float64

	// Workers is the number of worker goroutines that ran.
	Workers int
	// TrafficMessages counts the real channel messages exchanged (the
	// physical rendezvous, not the cost model's modeled message count).
	TrafficMessages int64

	// Trace holds the recorded event stream when Config.Trace was set
	// (nil otherwise). Events are stamped with wall time; per-class counts
	// of planned communication match the simulator's trace exactly, which
	// the differential oracle verifies.
	Trace *trace.Recorder

	// Restarts counts coordinated checkpoint restores: fail-stop crashes
	// recovered in-band by rolling every worker back to the last snapshot
	// and re-executing with accounting suppressed.
	Restarts int64
	// HardRestarts counts run-level heals (panic or stall recoveries that
	// rebuilt the worker set from executor-held snapshots).
	HardRestarts int
	// Wire-layer fault activity: real transmissions dropped by the seeded
	// injector, retransmissions after RTO expiry, duplicates put on the
	// wire, and duplicates suppressed by sequence number at the receiver.
	// These count physical events; the modeled fault counters live in
	// Stats, where the differential oracle compares them against sim.
	WireDrops         int64
	WireRetransmits   int64
	WireDuplicates    int64
	WireDupSuppressed int64
}

// message is one mailbox entry. Each directed edge carries an independent
// sequence number; receivers verify both the tag and the sequence, so any
// divergence in the workers' planned event order is a ProtocolError, not a
// silent mismatch.
type message struct {
	req    int    // comm.Requirement ID, or a negative protocol tag
	seq    uint64 // per-edge sequence number
	bits   uint64 // math.Float64bits of the payload, or a batch checksum
	count  int32  // batched element count (0 or 1 = a single element)
	hasVal bool
}

// Protocol tags for traffic that does not belong to a planned requirement.
const (
	tagReduce       = -2 // member -> root partial-value message
	tagReduceResult = -3 // root -> member combined-result message
	tagBarrier      = -4 // member -> coordinator redistribution barrier
	tagRelease      = -5 // coordinator -> member barrier release
	tagCkpt         = -6 // member -> coordinator checkpoint barrier
	tagCkptRelease  = -7 // coordinator -> member checkpoint release
	tagRefetch      = -8  // survivor -> restarted recovery refetch
	tagCopyOut      = -9  // lastprivate final-value broadcast, root -> member
	tagMerge        = -10 // privatized-reduction tree-merge hop, loser -> winner
)

type executor struct {
	prog   *spmd.Program
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	n      int
	depth  int

	// mail[from][to] is the bounded mailbox for one directed edge.
	mail [][]chan message
	// mach is the accountant's machine; owned exclusively by worker 0's
	// goroutine while workers run, read by Run after they all finish. In
	// chaos mode it is worker 0's replay machine (every worker then owns
	// one; see machines).
	mach *machine.Machine
	wd   *watchdog
	// reqDesc names each planned requirement for watchdog reports.
	reqDesc map[int]string

	// rec, when non-nil, receives wall-time events; start anchors the time
	// axis at run start.
	rec   *trace.Recorder
	start time.Time

	traffic atomic.Int64

	// Chaos mode (an active fault plan or a checkpoint interval): every
	// worker replays the cost model on its own machine with its own
	// injector clone, snapshots its state at coordinated checkpoints, and
	// the wire layer (when the plan has wire faults) drops, duplicates,
	// and delays real transmissions.
	chaos    bool
	winj     *fault.WallInjector
	wire     *wireNet
	machines []*machine.Machine
	// snaps/prevSnaps hold each worker's last two published checkpoint
	// snapshots. A worker writes only its own slot; Run reads them after
	// the workers join (the WaitGroup orders the accesses).
	snaps     []workerSnap
	prevSnaps []workerSnap

	// softRestarts counts coordinated in-band restores (written by worker
	// 0's goroutine, read by Run after the join).
	softRestarts int64

	wireDrops    atomic.Int64
	wireRetrans  atomic.Int64
	wireDups     atomic.Int64
	wireDupSupp  atomic.Int64
	hardRestarts int
}

// wall is the run-relative wall clock in seconds.
func (ex *executor) wall() float64 { return time.Since(ex.start).Seconds() }

// Run executes the program concurrently. The context's cancellation or
// deadline aborts the run (every worker unwinds and the context error is
// returned); a nil ctx means context.Background().
func Run(ctx context.Context, p *spmd.Program, cfg Config) (*Result, error) {
	if p == nil {
		return nil, &ConfigError{Msg: "nil program"}
	}
	if cfg.Params == (machine.Params{}) {
		cfg.Params = machine.SP2()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	n := p.NProcs()
	if cfg.Workers != 0 && cfg.Workers != n {
		return nil, &ConfigError{Msg: fmt.Sprintf(
			"program is planned for %d processors; Workers must be 0 or %d, got %d (a smaller worker set would deadlock the planned rendezvous)",
			n, n, cfg.Workers)}
	}
	if cfg.MailboxDepth < 0 {
		return nil, &ConfigError{Msg: fmt.Sprintf("MailboxDepth must be >= 0 (0 = default %d), got %d", DefaultMailboxDepth, cfg.MailboxDepth)}
	}
	depth := cfg.MailboxDepth
	if depth == 0 {
		depth = DefaultMailboxDepth
	}
	stall := cfg.StallTimeout
	if stall == 0 {
		stall = DefaultStallTimeout
	}
	if err := cfg.Fault.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	if cfg.Fault.Active() {
		for _, c := range cfg.Fault.Crashes {
			if c.Proc >= n {
				return nil, &ConfigError{Msg: fmt.Sprintf("crash names processor %d; the program runs on %d", c.Proc, n)}
			}
		}
		for _, s := range cfg.Fault.Slowdowns {
			if s.Proc >= n {
				return nil, &ConfigError{Msg: fmt.Sprintf("slowdown names processor %d; the program runs on %d", s.Proc, n)}
			}
		}
	}
	if cfg.CheckpointInterval < 0 || math.IsNaN(cfg.CheckpointInterval) || math.IsInf(cfg.CheckpointInterval, 0) {
		return nil, &ConfigError{Msg: fmt.Sprintf("CheckpointInterval must be finite and >= 0, got %v", cfg.CheckpointInterval)}
	}
	if cfg.MaxCells < 0 {
		return nil, &ConfigError{Msg: fmt.Sprintf("MaxCells must be >= 0 (0 = unlimited), got %d", cfg.MaxCells)}
	}
	if cfg.Reduce < core.ReduceAuto || cfg.Reduce > core.ReducePrivatize {
		return nil, &ConfigError{Msg: fmt.Sprintf("unknown Reduce mode %d", int(cfg.Reduce))}
	}
	if ctx == nil {
		ctx = context.Background()
	}

	ex := &executor{
		prog:    p,
		cfg:     cfg,
		n:       n,
		depth:   depth,
		reqDesc: map[int]string{},
		chaos:   cfg.Fault.Active() || cfg.CheckpointInterval > 0,
	}
	for _, req := range p.Plan.Reqs {
		ex.reqDesc[req.ID] = req.String()
	}
	if cfg.Trace != nil {
		// One shard per worker: each goroutine owns its ring outright, so
		// emission is lock-free and the run stays race-free under -race.
		ex.rec = trace.New(n, n, *cfg.Trace)
		ex.rec.SetLabels(p.StmtLabels())
	}
	if ex.chaos {
		ex.winj = fault.NewWallInjector(cfg.Fault)
		if ex.winj != nil && cfg.testDelayUnit > 0 {
			ex.winj.DelayUnit = cfg.testDelayUnit
		}
		ex.snaps = make([]workerSnap, n)
		ex.prevSnaps = make([]workerSnap, n)
	}
	ex.start = time.Now()

	maxRestarts := cfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = DefaultMaxRestarts
	}
	if maxRestarts < 0 {
		maxRestarts = 0
	}

	// The attempt loop is the run-level heal path: a worker panic (a real
	// one, or a scheduled fail-stop under HardCrashes) or a watchdog stall
	// tears the whole worker set down; when a complete checkpoint
	// generation exists, the run restores every worker from it and
	// re-spawns with fresh transport. Coordinated (soft) crash recovery
	// never reaches this loop — workers restore in-band.
	var heal *healState
	for {
		res, err := ex.attempt(ctx, stall, heal)
		if err == nil {
			res.HardRestarts = ex.hardRestarts
			return res, nil
		}
		if !ex.chaos || ex.hardRestarts >= maxRestarts || ctx.Err() != nil || !healable(err) {
			return nil, err
		}
		h := ex.buildHeal(err)
		if h == nil {
			return nil, err
		}
		heal = h
		ex.hardRestarts++
	}
}

// attempt runs the worker set once: from program start when heal is nil,
// else from the heal's checkpoint snapshots.
func (ex *executor) attempt(ctx context.Context, stall time.Duration, heal *healState) (*Result, error) {
	n := ex.n
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ex.ctx, ex.cancel = cctx, cancel
	ex.wd = newWatchdog(n)
	ex.mail = make([][]chan message, n)
	for i := range ex.mail {
		ex.mail[i] = make([]chan message, n)
		for j := range ex.mail[i] {
			ex.mail[i][j] = make(chan message, ex.depth)
		}
	}
	states := make([]*eval.State, n)
	for i := range states {
		st, err := eval.NewStateBudget(ex.prog, eval.Budget{MaxCells: ex.cfg.MaxCells})
		if err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		// Arm the partial tables before any Restore: heal snapshots carry
		// in-flight private partials and restore into the armed tables.
		if err := st.ConfigureReduce(ex.cfg.Reduce, eval.Budget{MaxCells: ex.cfg.MaxCells}); err != nil {
			return nil, fmt.Errorf("exec: %w", err)
		}
		if heal != nil {
			st.Restore(heal.snaps[i].state)
		}
		states[i] = st
	}
	workers := make([]*worker, n)
	for i := range workers {
		workers[i] = &worker{
			ex:       ex,
			proc:     i,
			st:       states[i],
			sendSeq:  make([]uint64, n),
			recvSeq:  make([]uint64, n),
			attrStmt: -1,
		}
	}
	if ex.chaos {
		ex.setupChaos(workers, heal)
	} else {
		ex.mach = machine.New(ex.prog.Grid(), ex.cfg.Params)
		workers[0].mach = ex.mach
	}
	if ex.winj != nil {
		ex.wire = newWireNet(ex, workers)
	}

	if stall > 0 {
		go ex.wd.watch(cctx, stall, cancel)
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(proc int) {
			defer wg.Done()
			defer ex.wd.finish(proc)
			defer func() {
				if r := recover(); r != nil {
					errs[proc] = &WorkerError{Proc: proc, PanicValue: r, Stack: string(debug.Stack())}
					cancel()
				}
			}()
			if err := ex.runWorker(workers[proc]); err != nil {
				errs[proc] = err
				cancel()
			}
		}(i)
	}
	wg.Wait()
	ex.wd.stop()
	cancel()
	if ex.wire != nil {
		ex.wire.wg.Wait()
		ex.wire = nil
	}

	if se := ex.wd.stallError(); se != nil {
		return nil, se
	}
	if err := pickError(errs); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	if err := checkConsistency(states); err != nil {
		return nil, err
	}
	if err := ex.checkMachineAgreement(); err != nil {
		return nil, err
	}

	res := &Result{
		Time:            ex.mach.Time(),
		Stats:           ex.mach.Stats,
		Scalars:         map[string]float64{},
		Arrays:          map[string][]float64{},
		Workers:         n,
		TrafficMessages: ex.traffic.Load(),
		Trace:           ex.rec,

		Restarts:          ex.softRestarts,
		WireDrops:         ex.wireDrops.Load(),
		WireRetransmits:   ex.wireRetrans.Load(),
		WireDuplicates:    ex.wireDups.Load(),
		WireDupSuppressed: ex.wireDupSupp.Load(),
	}
	for v, x := range states[0].Scalars() {
		res.Scalars[v.Name] = x
	}
	for v, a := range states[0].Arrays() {
		res.Arrays[v.Name] = a
	}
	return res, nil
}

// runWorker drives one worker goroutine. Fault-free runs keep the original
// single-walk fast path; chaos mode runs the tracked walk with coordinated
// crash recovery around it (see chaos.go).
func (ex *executor) runWorker(w *worker) error {
	if !ex.chaos {
		err := eval.Walk(w.st, w)
		if err == nil {
			// Drain any message batch left open by trailing statements.
			err = w.flushBatch()
		}
		return err
	}
	return ex.runChaosWorker(w)
}

// pickError selects the run's verdict from the per-worker errors: the first
// (lowest-processor) substantive error wins; context errors — which every
// other worker reports once the first failure cancels the run — are
// reported only when nothing better explains the failure.
func pickError(errs []error) error {
	var ctxErr error
	for proc, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		var ge *eval.GotoEscapeError
		if errors.As(err, &ge) {
			return fmt.Errorf("exec: goto %d escaped the program", ge.Label)
		}
		var we *WorkerError
		if errors.As(err, &we) {
			return we
		}
		return fmt.Errorf("exec: p%d: %w", proc, err)
	}
	if ctxErr != nil {
		return fmt.Errorf("exec: %w", ctxErr)
	}
	return nil
}

// checkConsistency verifies every worker's final memory image is bitwise
// identical to worker 0's — the replicated-execution invariant.
func checkConsistency(states []*eval.State) error {
	ref := states[0]
	for p := 1; p < len(states); p++ {
		st := states[p]
		for v, want := range ref.Scalars() {
			if got := st.Scalar(v); math.Float64bits(got) != math.Float64bits(want) {
				return &DivergenceError{Proc: p, Peer: 0, What: "final scalar " + v.Name, Got: got, Want: want}
			}
		}
		for v, want := range ref.Arrays() {
			got := st.Array(v)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					return &DivergenceError{Proc: p, Peer: 0,
						What: fmt.Sprintf("final %s element %d", v.Name, i), Got: got[i], Want: want[i]}
				}
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Worker

// worker is one simulated processor: an eval.Backend whose events perform
// real channel communication (and, on processor 0, the statistics replay).
type worker struct {
	ex   *executor
	proc int
	st   *eval.State
	// sendSeq[to] / recvSeq[from] are the per-edge sequence counters.
	sendSeq, recvSeq []uint64

	// Trace attribution for the communication currently in flight: statement,
	// class, and per-message payload bytes (the requirement ID travels in the
	// message itself). mute suppresses emission for real traffic the cost
	// model does not charge (e.g. ring slots of non-participants).
	attrStmt  int32
	attrClass dist.CommClass
	attrBytes int64
	mute      bool

	// batch is the single in-flight per-instance message batch (see
	// openBatch); count == 0 means no batch is open.
	batch openBatch

	// mach is this worker's cost-model replay machine. Fault-free runs give
	// it to worker 0 only (the accountant); chaos mode gives every worker
	// its own, so all replicated replays — including the seeded fault
	// draws — can be cross-checked after the run.
	mach *machine.Machine
	// inj replays the simulator's seeded injector (chaos mode only):
	// identical draw sequence, so modeled fault charges and crash points
	// agree with sim by construction.
	inj *fault.Injector
	// lastCkpt is the replayed clock at the last checkpoint (or recovery).
	lastCkpt float64
	// sites counts crash-check sites since the last checkpoint; it is the
	// replay-progress coordinate used to suppress re-execution side effects
	// exactly up to the crash point.
	sites int64
	// replay is true while re-executing the interval [checkpoint, crash]
	// after a coordinated restore: accounting, tracing, and checkpointing
	// are suppressed; real communication still flows (with fresh sequence
	// numbers, consistent across workers).
	replay       bool
	replayTarget int64
	// gen numbers this worker's published checkpoint snapshots.
	gen int64
	// healCrash, when set by a run-level heal, names the crashed processor
	// whose memory must be physically refetched at worker start.
	healCrash *fault.Crash
	// resume, when set by a run-level heal, is the checkpoint cursor the
	// worker's walk restarts from.
	resume *eval.Cursor
}

// setAttr stamps the attribution for the planned messages about to flow.
func (w *worker) setAttr(stmt int, class dist.CommClass, bytes int64) {
	w.attrStmt, w.attrClass, w.attrBytes = int32(stmt), class, bytes
}

// clearAttr resets the attribution to "none".
func (w *worker) clearAttr() {
	w.attrStmt, w.attrClass, w.attrBytes, w.mute = -1, dist.CommNone, 0, false
}

// emit records one event into this worker's shard (callers guard on
// w.ex.rec != nil).
func (w *worker) emit(k trace.Kind, peer int, dur float64, bytes int64, req int) {
	w.ex.rec.Emit(w.proc, trace.Event{
		Time: w.ex.wall(), Dur: dur, Bytes: bytes, Kind: k, Class: w.attrClass,
		Proc: int32(w.proc), Peer: int32(peer), Stmt: w.attrStmt, Req: int32(req),
	})
}

// emitN records one event standing for count planned messages (a flushed
// batch); the exact counters scale by count, keeping per-class totals
// identical to the simulator's per-instance emission.
func (w *worker) emitN(k trace.Kind, peer int, bytes int64, req int, count int32) {
	w.ex.rec.Emit(w.proc, trace.Event{
		Time: w.ex.wall(), Bytes: bytes, Kind: k, Class: w.attrClass,
		Proc: int32(w.proc), Peer: int32(peer), Stmt: w.attrStmt, Req: int32(req),
		Count: count,
	})
}

// elemBytes is the payload size of one element message.
func (w *worker) elemBytes() int64 { return int64(w.ex.cfg.Params.ElemBytes) }

// charges reports whether this worker replays the cost model right now:
// it owns a machine (worker 0 always; every worker in chaos mode) and is
// not re-executing an already-accounted interval after a restore.
func (w *worker) charges() bool { return w.mach != nil && !w.replay }

// traces reports whether this worker emits trace events right now (replay
// re-executes already-traced work, so emission is suppressed).
func (w *worker) traces() bool { return w.ex.rec != nil && !w.replay }

func (w *worker) desc(req *comm.Requirement) string { return w.ex.reqDesc[req.ID] }

// send delivers m on the edge proc->to, blocking when the mailbox is full.
// The blocked operation registers with the watchdog only after the
// non-blocking fast path fails.
func (w *worker) send(to int, m message, what string) error {
	m.seq = w.sendSeq[to]
	w.sendSeq[to]++
	if w.ex.wire != nil && to != w.proc {
		// Wire faults are live: route through the lossy link with its
		// ack/retransmit protocol. Self-sends stay on the direct edge — no
		// physical wire exists for them.
		return w.sendWire(to, m, what)
	}
	ch := w.ex.mail[w.proc][to]
	select {
	case ch <- m:
		w.ex.traffic.Add(1)
		w.ex.wd.tick()
		w.traceSend(to, m)
		return nil
	default:
	}
	h := w.ex.wd.block(w.proc, "send", to, what)
	defer w.ex.wd.unblock(h)
	blocked := w.ex.wall()
	select {
	case ch <- m:
		w.ex.traffic.Add(1)
		w.ex.wd.tick()
		if w.traces() {
			w.emit(trace.Wait, to, w.ex.wall()-blocked, 0, -1)
		}
		w.traceSend(to, m)
		return nil
	case <-w.ex.ctx.Done():
		return w.ex.ctx.Err()
	}
}

// traceSend records the departure of one planned message. Protocol traffic
// (negative tags: reduce gathers, barriers) is invisible to the cost model,
// so it is excluded — keeping Send/Recv counts structurally identical to the
// simulator's trace.
func (w *worker) traceSend(to int, m message) {
	if !w.traces() || m.req < 0 || w.mute {
		return
	}
	n := m.count
	if n <= 0 {
		n = 1
	}
	w.emitN(trace.Send, to, w.attrBytes*int64(n), m.req, n)
}

// recv takes the next message on the edge from->proc and verifies it
// matches the expected requirement tag and per-edge sequence number.
func (w *worker) recv(from, wantReq int, what string) (message, error) {
	ch := w.ex.mail[from][w.proc]
	var m message
	select {
	case m = <-ch:
	default:
		h := w.ex.wd.block(w.proc, "recv", from, what)
		blocked := w.ex.wall()
		select {
		case m = <-ch:
			w.ex.wd.unblock(h)
			if w.traces() {
				w.emit(trace.Wait, from, w.ex.wall()-blocked, 0, -1)
			}
		case <-w.ex.ctx.Done():
			w.ex.wd.unblock(h)
			return message{}, w.ex.ctx.Err()
		}
	}
	w.ex.wd.tick()
	wantSeq := w.recvSeq[from]
	w.recvSeq[from]++
	if m.req != wantReq || m.seq != wantSeq {
		return message{}, &ProtocolError{Proc: w.proc, From: from,
			WantReq: wantReq, GotReq: m.req, WantSeq: wantSeq, GotSeq: m.seq, What: what}
	}
	if w.traces() && m.req >= 0 && !w.mute {
		n := m.count
		if n <= 0 {
			n = 1
		}
		w.emitN(trace.Recv, from, w.attrBytes*int64(n), m.req, n)
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// eval.Backend

// Tick fires after every loop iteration: progress for the watchdog plus
// cancellation/deadline enforcement (and, in chaos mode, a crash-check site
// mirroring the simulator's per-iteration checkTime).
func (w *worker) Tick() error {
	w.ex.wd.tick()
	if h := w.ex.cfg.testHook; h != nil {
		if err := h(w.proc); err != nil {
			return err
		}
	}
	if w.ex.chaos {
		if err := w.crashCheck(); err != nil {
			return err
		}
	}
	return w.ex.ctx.Err()
}

// LoopEntry performs the vectorized communications hoisted to this loop.
// In chaos mode it is also the coordinated checkpoint boundary — the same
// loop-entry sites the simulator checkpoints at — and each hoisted
// communication is followed by a crash-check site mirroring the simulator's.
func (w *worker) LoopEntry(l *ir.Loop, lp *spmd.LoopPlan) error {
	// Any open batch flushes before other planned traffic so the per-edge
	// message order stays identical on every worker.
	if err := w.flushBatch(); err != nil {
		return err
	}
	if w.ex.chaos && (len(lp.Hoisted) > 0 || l.Parent == nil) {
		if err := w.maybeCheckpoint(); err != nil {
			return err
		}
	}
	for _, req := range lp.Hoisted {
		// A privatized combine consumes its operands at the owners that
		// accumulate them: no aggregated transfer, mirroring the simulator.
		if sp := w.ex.prog.PlanOf(req.Stmt); sp != nil &&
			w.st.PrivatizedActive(sp.Combine) && sp.Combine.Mapping == nil {
			continue
		}
		op, err := w.st.VectorizedOp(req, w.elemBytes())
		if err != nil {
			return err
		}
		if w.charges() {
			switch op.Kind {
			case eval.VecShift:
				w.mach.Shift(op.Participants, op.PerProc)
			case eval.VecBcast:
				w.mach.Multicast(op.From, op.Dst, op.Bytes)
			case eval.VecExchange:
				w.mach.Exchange(op.Src, op.Dst, op.Bytes)
			}
		}
		if w.traces() {
			w.stampVectorized(req, op)
		}
		err = w.vectorizedComm(req, op)
		w.clearAttr()
		if err != nil {
			return err
		}
		// Skipped requirements are not a crash-check site: the simulator
		// returns before its checkTime for VecSkip, so checking here would
		// detect a pending crash one op earlier than the reference.
		if w.ex.chaos && op.Kind != eval.VecSkip {
			if err := w.crashCheck(); err != nil {
				return err
			}
		}
	}
	return nil
}

// stampVectorized sets the trace attribution for one hoisted requirement's
// real traffic, mirroring the bytes the cost model charges per message; ring
// slots of shift non-participants are muted (the cost model does not charge
// them, and neither does the simulator's trace).
func (w *worker) stampVectorized(req *comm.Requirement, op eval.VectorizedOp) {
	switch op.Kind {
	case eval.VecShift:
		w.setAttr(req.Stmt.ID, req.Class, op.PerProc)
		w.mute = op.Participants.Count() < 2 || !op.Participants.Contains(w.proc)
	case eval.VecBcast:
		w.setAttr(req.Stmt.ID, req.Class, op.Bytes)
	case eval.VecExchange:
		per := op.Bytes
		if n := op.Src.Count(); n > 0 && op.Bytes/int64(n) > 0 {
			per = op.Bytes / int64(n)
		}
		w.setAttr(req.Stmt.ID, req.Class, per)
	}
}

// vectorizedComm performs the real traffic of one hoisted requirement. The
// concrete topology mirrors what the cost model charges: a ring exchange
// for shifts, root-to-members for broadcasts, owner-to-consumer messages
// for general aggregated communication.
func (w *worker) vectorizedComm(req *comm.Requirement, op eval.VectorizedOp) error {
	what := w.desc(req)
	dropped := w.ex.cfg.testDropSend != nil && w.ex.cfg.testDropSend(w.proc, req)
	switch op.Kind {
	case eval.VecSkip:
		return nil

	case eval.VecShift:
		if w.ex.n < 2 {
			return nil
		}
		next := (w.proc + 1) % w.ex.n
		prev := (w.proc - 1 + w.ex.n) % w.ex.n
		if !dropped {
			if err := w.send(next, message{req: req.ID}, what); err != nil {
				return err
			}
		}
		_, err := w.recv(prev, req.ID, what)
		return err

	case eval.VecBcast:
		members := 0
		for _, p := range op.Dst.Procs() {
			if p != op.From {
				members++
			}
		}
		if members == 0 {
			return nil
		}
		if w.proc == op.From {
			for _, p := range op.Dst.Procs() {
				if p == op.From || dropped {
					continue
				}
				if err := w.send(p, message{req: req.ID}, what); err != nil {
					return err
				}
			}
			return nil
		}
		if op.Dst.Contains(w.proc) {
			_, err := w.recv(op.From, req.ID, what)
			return err
		}
		return nil

	case eval.VecExchange:
		srcProcs := op.Src.Procs()
		if len(srcProcs) == 0 {
			return nil
		}
		var rcv []int
		for _, p := range op.Dst.Procs() {
			if !op.Src.Contains(p) {
				rcv = append(rcv, p)
			}
		}
		// Each receiver pairs with a deterministic owner.
		for i, d := range rcv {
			s := srcProcs[i%len(srcProcs)]
			if w.proc == s && !dropped {
				if err := w.send(d, message{req: req.ID}, what); err != nil {
					return err
				}
			}
		}
		for i, d := range rcv {
			if w.proc == d {
				if _, err := w.recv(srcProcs[i%len(srcProcs)], req.ID, what); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return nil
}

// LoopExit performs the global reduction combines that run after the loop —
// a star gather to a deterministic root and a result broadcast back, with
// the partial values compared bitwise (replicated execution makes every
// partial the full value, so they must all agree) — then the lastprivate
// copy-outs: the final iteration's owner broadcasts its value and every
// receiver verifies bitwise agreement.
func (w *worker) LoopExit(l *ir.Loop, lp *spmd.LoopPlan) error {
	if err := w.flushBatch(); err != nil {
		return err
	}
	for _, c := range lp.Combines {
		if w.st.PrivatizedActive(c) {
			if err := w.mergeCombine(c); err != nil {
				return err
			}
			continue
		}
		if c.Mapping == nil {
			// A collective elementwise reduction has no combine operation:
			// its reference execution is plain per-instance owner-computes.
			continue
		}
		m := c.Mapping
		set := w.st.PatternSet(m.Pattern, nil)
		if w.charges() {
			w.mach.Reduce(set, w.elemBytes())
		}
		procs := set.Procs()
		if len(procs) < 2 || !set.Contains(w.proc) {
			continue
		}
		if w.traces() && m.Def != nil && m.Def.Stmt != nil {
			w.setAttr(m.Def.Stmt.ID, dist.CommNone, 0)
		}
		what := "combine " + m.Def.Var.Name
		root := procs[0]
		bits := math.Float64bits(w.st.Scalar(m.Def.Var))
		if w.proc == root {
			for _, p := range procs[1:] {
				got, err := w.recv(p, tagReduce, what)
				if err != nil {
					return err
				}
				if got.hasVal && got.bits != bits {
					return &DivergenceError{Proc: w.proc, Peer: p, What: what,
						Got: math.Float64frombits(got.bits), Want: w.st.Scalar(m.Def.Var)}
				}
			}
			for _, p := range procs[1:] {
				if err := w.send(p, message{req: tagReduceResult, hasVal: true, bits: bits}, what); err != nil {
					return err
				}
			}
			if w.traces() {
				// One Reduce event per collective at the gathering root —
				// structurally identical to the simulator's emission.
				w.emit(trace.Reduce, -1, 0, w.elemBytes()*int64(len(procs)), -1)
			}
		} else {
			if err := w.send(root, message{req: tagReduce, hasVal: true, bits: bits}, what); err != nil {
				return err
			}
			got, err := w.recv(root, tagReduceResult, what)
			if err != nil {
				return err
			}
			if got.hasVal && got.bits != bits {
				return &DivergenceError{Proc: w.proc, Peer: root, What: what,
					Got: math.Float64frombits(got.bits), Want: w.st.Scalar(m.Def.Var)}
			}
		}
		w.clearAttr()
	}
	for _, m := range lp.CopyOuts {
		// The walker leaves the loop index at its final executed value, so
		// the pattern's owners are the final iteration's owners. Replicated
		// execution means every worker already holds the value; the real
		// broadcast verifies bitwise agreement with the owner.
		src := w.st.PatternSet(m.Pattern, nil)
		all := dist.AllProcs(w.st.Grid())
		if src.Count() == all.Count() {
			continue // degenerate alignment: already everywhere
		}
		root := src.First()
		if w.charges() {
			w.mach.Multicast(root, all, w.elemBytes())
		}
		what := "copy-out " + m.Def.Var.Name
		bits := math.Float64bits(w.st.Scalar(m.Def.Var))
		if w.traces() && m.Def.Stmt != nil {
			// Protocol-tagged traffic is invisible to traceSend/recv, so the
			// events are emitted manually — one Send per destination at the
			// root, one Recv per receiver, structurally identical to
			// machine.Multicast's emission.
			w.setAttr(m.Def.Stmt.ID, dist.CommBcast, w.elemBytes())
		}
		if w.proc == root {
			for _, p := range all.Procs() {
				if p == root {
					continue
				}
				if err := w.send(p, message{req: tagCopyOut, hasVal: true, bits: bits}, what); err != nil {
					return err
				}
				if w.traces() {
					w.emit(trace.Send, p, 0, w.elemBytes(), -1)
				}
			}
		} else {
			got, err := w.recv(root, tagCopyOut, what)
			if err != nil {
				return err
			}
			if got.hasVal && got.bits != bits {
				return &DivergenceError{Proc: w.proc, Peer: root, What: what,
					Got: math.Float64frombits(got.bits), Want: w.st.Scalar(m.Def.Var)}
			}
			if w.traces() {
				w.emit(trace.Recv, root, 0, w.elemBytes(), -1)
			}
		}
		w.clearAttr()
	}
	return nil
}

// mergeCombine runs the privatized loop-exit merge of one combine: the
// shared value semantics fold the partial tables locally (identically on
// every worker — replicated execution), the charging workers replay the
// TreeMerge cost, and the real wire traffic walks the deterministic tree,
// each hop's loser shipping the FNV checksum of its pre-merge partial row
// for the winner to verify bitwise.
func (w *worker) mergeCombine(c *spmd.Combine) error {
	elems := w.st.PartialElems(c)
	hops, err := w.st.MergePartials(c)
	if err != nil {
		return err
	}
	if w.charges() {
		w.mach.SetAttr(c.Red.Stmt.ID, -1, dist.CommNone)
		w.mach.TreeMerge(dist.AllProcs(w.st.Grid()), elems*w.elemBytes(), w.ex.n)
		w.mach.ClearAttr()
	}
	what := "merge " + c.Var().Name
	for _, h := range hops {
		if w.proc == h.Loser {
			if err := w.send(h.Winner, message{req: tagMerge, hasVal: true, bits: h.Check}, what); err != nil {
				return err
			}
		}
		if w.proc == h.Winner {
			got, err := w.recv(h.Loser, tagMerge, what)
			if err != nil {
				return err
			}
			if got.hasVal && got.bits != h.Check {
				return &DivergenceError{Proc: w.proc, Peer: h.Loser, What: what,
					Got: math.Float64frombits(got.bits), Want: math.Float64frombits(h.Check)}
			}
		}
	}
	if w.traces() && w.proc == 0 && len(hops) > 0 {
		// One Reduce event per merge at the tree root, stamped with the
		// merged-row count — structurally identical to the simulator's
		// TreeMerge emission (protocol-tagged hop traffic is invisible to
		// traceSend/recv, like the collective's gather).
		w.ex.rec.Emit(w.proc, trace.Event{
			Time: w.ex.wall(), Bytes: elems * w.elemBytes() * int64(len(hops)),
			Kind: trace.Reduce, Class: dist.CommNone,
			Proc: int32(w.proc), Peer: -1, Stmt: int32(c.Red.Stmt.ID), Req: -1,
			Merged: int32(w.ex.n),
		})
	}
	return nil
}

// Statement performs per-instance communication for one statement instance
// (and, on charging workers, replays the guard, message, and compute
// charges). In chaos mode every non-skipped per-instance communication is a
// crash-check site, mirroring the simulator's statement walk. A privatized
// elementwise reduction update skips its per-instance communication entirely
// — the instance accumulates into the data owner's partial row instead of
// shipping operands to the element's owner — which is where the privatized
// win comes from.
func (w *worker) Statement(st *ir.Stmt, sp *spmd.StmtPlan) error {
	privArray := w.st.PrivatizedActive(sp.Combine) && sp.Combine.Mapping == nil
	if privArray {
		var execSet dist.ProcSet
		var err error
		if sp.Combine.Red.DataRef != nil {
			execSet, err = w.st.OwnerSet(sp.Combine.Red.DataRef)
		} else {
			execSet, err = w.st.ExecSet(sp)
		}
		if err != nil {
			return err
		}
		if sp.Flops > 0 {
			if w.charges() {
				w.mach.Compute(execSet, float64(sp.Flops)*w.ex.cfg.Params.FlopTime)
			}
			if w.traces() && execSet.Contains(w.proc) {
				w.setAttr(st.ID, dist.CommNone, 0)
				w.emit(trace.Compute, -1, float64(sp.Flops)*w.ex.cfg.Params.FlopTime, 0, -1)
				w.clearAttr()
			}
		}
		return nil
	}
	for _, req := range sp.PerInstance {
		op, err := w.st.InstanceOp(req, sp, w.elemBytes())
		if err != nil {
			return err
		}
		if w.charges() && w.ex.cfg.Params.GuardTime > 0 {
			w.mach.Compute(dist.AllProcs(w.st.Grid()), w.ex.cfg.Params.GuardTime)
		}
		if op.Skip {
			continue
		}
		if w.charges() {
			// The replay charges the cost model per instance — batching is a
			// property of the physical transport only — so Stats and
			// simulated time stay identical to the sequential simulator's.
			if to, one := op.Dst.IsSingle(); one {
				w.mach.Send(op.From, to, op.Bytes)
			} else {
				w.mach.Multicast(op.From, op.Dst, op.Bytes)
			}
		}
		if err := w.batchInstance(req, st, op); err != nil {
			return err
		}
		if w.ex.chaos {
			if err := w.crashCheck(); err != nil {
				return err
			}
		}
	}
	execSet, err := w.st.ExecSet(sp)
	if err != nil {
		return err
	}
	if sp.Flops > 0 {
		if w.charges() {
			w.mach.Compute(execSet, float64(sp.Flops)*w.ex.cfg.Params.FlopTime)
		}
		if w.traces() && execSet.Contains(w.proc) {
			// The slice duration is the cost model's charge — the useful,
			// noise-free per-statement attribution for the timeline view.
			w.setAttr(st.ID, dist.CommNone, 0)
			w.emit(trace.Compute, -1, float64(sp.Flops)*w.ex.cfg.Params.FlopTime, 0, -1)
			w.clearAttr()
		}
	}
	return nil
}

// openBatch is the worker's single in-flight message batch: contiguous
// per-instance transfers of one requirement between one (source,
// destination) pair, coalesced into a single physical message per receiving
// edge. Replicated execution means every worker observes the identical
// instance sequence, so all workers open, extend, and flush batches at the
// same logical points — which keeps the per-edge message order (and
// sequence numbers) consistent without any negotiation.
type openBatch struct {
	req   *comm.Requirement
	from  int
	dst   dist.ProcSet
	stmt  int
	class dist.CommClass
	bytes int64 // per-element payload bytes
	count int32
	// sum is an FNV-1a fold of the batched values' bit patterns, accumulated
	// per instance on the pre-statement image (the image at flush time may
	// already have been overwritten). Receivers accumulate their own fold
	// and compare it against the sender's — the batched equivalent of the
	// per-instance bitwise divergence check.
	sum    uint64
	hasVal bool
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvAdd folds one 64-bit value into an FNV-1a checksum.
func fnvAdd(sum, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		sum ^= v & 0xff
		sum *= fnvPrime
		v >>= 8
	}
	return sum
}

// batchInstance coalesces one non-skipped per-instance transfer into the
// worker's open batch, flushing first when the (requirement, source,
// destination) key changes. Participants fold the element's local value —
// evaluated now, on the pre-statement image, where it is identical on every
// worker under replicated execution — into the batch checksum.
func (w *worker) batchInstance(req *comm.Requirement, st *ir.Stmt, op eval.InstanceOp) error {
	b := &w.batch
	if b.count > 0 && !(b.req == req && b.from == op.From && b.dst.Equal(op.Dst)) {
		if err := w.flushBatch(); err != nil {
			return err
		}
	}
	if b.count == 0 {
		*b = openBatch{req: req, from: op.From, dst: op.Dst, stmt: st.ID,
			class: req.Class, bytes: op.Bytes, sum: fnvOffset, hasVal: true}
	}
	b.count++
	if w.proc == op.From || op.Dst.Contains(w.proc) {
		local, lerr := w.st.Eval(req.Use.Ast)
		if lerr != nil {
			// The statement's own semantics will surface lerr; the batch
			// just loses its verifiable payload.
			b.hasVal = false
		} else {
			b.sum = fnvAdd(b.sum, math.Float64bits(local))
		}
	}
	return nil
}

// flushBatch performs the real traffic of the open batch — the owner
// representative sends one message per receiving edge carrying the element
// count and the payload checksum, and every receiver verifies both against
// its replicated accumulation. Every worker flushes at the same logical
// points: on a batch-key change, before any other planned traffic
// (vectorized communication, reduction combines, redistribution barriers),
// and at the end of the walk.
func (w *worker) flushBatch() error {
	b := &w.batch
	if b.count == 0 {
		return nil
	}
	op := *b
	b.count = 0
	b.req = nil
	if w.proc != op.from && !op.dst.Contains(w.proc) {
		return nil // not a participant in this batch
	}
	req := op.req
	what := w.desc(req)
	dropped := w.ex.cfg.testDropSend != nil && w.ex.cfg.testDropSend(w.proc, req)
	m := message{req: req.ID, count: op.count, hasVal: op.hasVal, bits: op.sum}
	w.setAttr(op.stmt, op.class, op.bytes)
	defer w.clearAttr()
	verify := func(got message, from int) error {
		if got.count != op.count {
			return &DivergenceError{Proc: w.proc, Peer: from,
				What: what + " (batch length)",
				Got:  float64(got.count), Want: float64(op.count)}
		}
		if !got.hasVal || !op.hasVal {
			return nil
		}
		if got.bits != op.sum {
			return &DivergenceError{Proc: w.proc, Peer: from,
				What: what + " (batch checksum)",
				Got:  math.Float64frombits(got.bits), Want: math.Float64frombits(op.sum)}
		}
		return nil
	}

	if to, one := op.dst.IsSingle(); one {
		// Point-to-point delivery (a self-send uses the self edge, kept
		// for exact parity with the cost model, which charges it too).
		if w.proc == op.from && !dropped {
			if err := w.send(to, m, what); err != nil {
				return err
			}
		}
		if w.proc == to {
			got, err := w.recv(op.from, req.ID, what)
			if err != nil {
				return err
			}
			return verify(got, op.from)
		}
		return nil
	}
	// Multicast delivery: the root does not message itself (the cost
	// model's Multicast excludes the source as well).
	if w.proc == op.from {
		for _, p := range op.dst.Procs() {
			if p == op.from || dropped {
				continue
			}
			if err := w.send(p, m, what); err != nil {
				return err
			}
		}
		return nil
	}
	got, err := w.recv(op.from, req.ID, what)
	if err != nil {
		return err
	}
	return verify(got, op.from)
}

// Redistribute performs the barrier an executable redistribution implies
// (the mapping update has already been applied to every worker's state) and
// replays its all-to-all charge. In chaos mode the end of the barrier is a
// crash-check site, mirroring the simulator's redistribution walk.
func (w *worker) Redistribute(st *ir.Stmt) error {
	if err := w.flushBatch(); err != nil {
		return err
	}
	if w.charges() {
		per := w.st.RedistBytesPerProc(st, w.elemBytes())
		w.mach.AllToAll(dist.AllProcs(w.st.Grid()), per)
	}
	if err := w.starBarrier(tagBarrier, tagRelease, "redistribute "+st.Redist.Array.Name); err != nil {
		return err
	}
	if w.ex.chaos {
		return w.crashCheck()
	}
	return nil
}

// starBarrier synchronizes all workers through processor 0: members send
// tagIn and wait for tagOut, the coordinator collects every tagIn before
// releasing anyone. Used by redistribution and by coordinated checkpoints.
func (w *worker) starBarrier(tagIn, tagOut int, what string) error {
	if w.ex.n < 2 {
		return nil
	}
	if w.proc == 0 {
		for p := 1; p < w.ex.n; p++ {
			if _, err := w.recv(p, tagIn, what); err != nil {
				return err
			}
		}
		for p := 1; p < w.ex.n; p++ {
			if err := w.send(p, message{req: tagOut}, what); err != nil {
				return err
			}
		}
		return nil
	}
	if err := w.send(0, message{req: tagIn}, what); err != nil {
		return err
	}
	_, err := w.recv(0, tagOut, what)
	return err
}
