package exec

import (
	"context"
	"errors"
	"math"
	"os"
	"testing"
	"time"

	"phpf/internal/core"
	"phpf/internal/fault"
	"phpf/internal/programs"
	"phpf/internal/sim"
	"phpf/internal/trace"
)

// chaosDiffers builds the seeded fault-plan matrix for one program, with
// crash times placed relative to the measured clean simulated time so a
// fail-stop reliably fires mid-loop regardless of program scale.
func chaosDiffers(cleanTime float64) map[string]Differ {
	ckpt := cleanTime / 5
	return map[string]Differ{
		"loss":     {Fault: &fault.Plan{Seed: 7, LossRate: 0.2}},
		"dup":      {Fault: &fault.Plan{Seed: 3, DupRate: 0.2}},
		"slowdown": {Fault: &fault.Plan{Seed: 1, Slowdowns: []fault.Slowdown{{Proc: 1, Factor: 3}}}},
		"checkpoint": {
			CheckpointInterval: ckpt,
		},
		"crash": {
			Fault:              &fault.Plan{Seed: 5, Crashes: []fault.Crash{{Proc: 1, At: 0.4 * cleanTime}}},
			CheckpointInterval: ckpt,
		},
		"mixed": {
			Fault: &fault.Plan{Seed: 11, LossRate: 0.1, DupRate: 0.1,
				Crashes: []fault.Crash{{Proc: 2, At: 0.6 * cleanTime}}},
			CheckpointInterval: ckpt,
		},
	}
}

// TestChaosMatrix is the chaos gate: for every seeded fault plan, the
// concurrent executor under real injected faults must agree with the
// simulator under the same plan — bitwise on every scalar and array
// element, on all cost-model statistics including the fault counters, and
// on per-class trace event counts. Includes mid-loop fail-stop crashes
// recovered via coordinated checkpoint/restart. Run under -race this is
// also the concurrency soak for the fault machinery.
func TestChaosMatrix(t *testing.T) {
	if os.Getenv("CHAOS_SKIP") == "1" {
		t.Skip("CHAOS_SKIP=1 set")
	}
	progs := map[string]string{
		"tomcatv": programs.TOMCATV(10, 2),
		"dgefa":   programs.DGEFA(12),
		"smooth":  programs.Smooth(24, 2),
		// APPSP-2D exercises Redistribute (and its barrier crash-check
		// site) plus skipped hoisted requirements, which the other
		// programs never hit.
		"appsp2d": programs.APPSP(6, 6, 6, 1, true),
		// The reduce-sweep kernels run privatized under the default auto
		// mode: crashes and restores land while per-processor partial
		// accumulators hold in-flight contributions, so a checkpoint that
		// failed to snapshot the partial tables (or a restore that failed
		// to rearm them) diverges here.
		"histogram": programs.Histogram(16384, 64, 3),
		"dotsweep":  programs.DotSweep(512, 24),
	}
	for progName, src := range progs {
		prog := compile(t, src, 4, core.DefaultOptions())
		clean, err := sim.Run(prog, sim.Config{})
		if err != nil {
			t.Fatalf("%s: clean sim: %v", progName, err)
		}
		for planName, d := range chaosDiffers(clean.Time) {
			d := d
			t.Run(progName+"/"+planName, func(t *testing.T) {
				d.Trace = &trace.Options{}
				// Keep injected slowdown delays test-sized.
				d.Exec.testDelayUnit = 50 * time.Microsecond
				rep, err := d.Run(context.Background(), prog)
				if err != nil {
					t.Fatalf("differ: %v", err)
				}
				if !rep.Match() {
					t.Fatal(rep.String())
				}
				hasCrash := d.Fault.Active() && len(d.Fault.Crashes) > 0
				if hasCrash {
					if rep.Sim.Stats.Crashes == 0 {
						t.Fatalf("scheduled crash never fired (sim time %v)", rep.Sim.Time)
					}
					if rep.Exec.Restarts == 0 {
						t.Fatal("exec recovered no coordinated restart for the scheduled crash")
					}
				}
				// Only the pure checkpoint plan promises a checkpoint
				// deterministically: crashes reset the interval clock, so
				// sparse loop boundaries can legitimately yield none (the
				// differ already proved both backends agree on the count).
				if planName == "checkpoint" && rep.Sim.Stats.Checkpoints == 0 {
					t.Fatal("checkpoint interval elapsed but no checkpoint was taken")
				}
				// The privatized reduce kernels move merge hops and
				// almost nothing else, so a fractional loss/dup rate
				// over a handful of real sends can legitimately touch
				// zero of them; only demand hits where the program
				// generates real traffic volume. (The differ above
				// already proved both backends agree on the counters
				// either way.)
				lowTraffic := rep.Sim.Stats.Messages < 64
				if d.Fault.Active() && d.Fault.LossRate > 0 && rep.Exec.WireDrops == 0 && !lowTraffic {
					t.Fatal("loss plan dropped no real transmissions")
				}
				if d.Fault.Active() && d.Fault.DupRate > 0 && rep.Exec.WireDuplicates == 0 && !lowTraffic {
					t.Fatal("dup plan duplicated no real transmissions")
				}
			})
		}
	}
}

// TestChaosReproducible: the same seeded plan twice gives identical wire
// activity and results — the reproducibility the seed promises.
func TestChaosReproducible(t *testing.T) {
	prog := compile(t, programs.DGEFA(12), 4, core.DefaultOptions())
	cfg := Config{Fault: &fault.Plan{Seed: 42, LossRate: 0.25, DupRate: 0.1}}
	a, err := Run(context.Background(), prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.WireDrops != b.WireDrops || a.WireDuplicates != b.WireDuplicates {
		t.Fatalf("seeded wire activity not reproducible: %d/%d drops, %d/%d dups",
			a.WireDrops, b.WireDrops, a.WireDuplicates, b.WireDuplicates)
	}
	for name, x := range a.Scalars {
		if b.Scalars[name] != x {
			t.Fatalf("scalar %s differs across identical seeded runs", name)
		}
	}
}

// TestHardCrashHeal: with HardCrashes the scheduled fail-stop kills the
// worker goroutine mid-protocol for real; the run-level heal must detect
// the death, restore every worker from the last complete checkpoint
// generation, refetch, and finish with consistent results.
func TestHardCrashHeal(t *testing.T) {
	prog := compile(t, programs.DGEFA(12), 4, core.DefaultOptions())
	clean, err := sim.Run(prog, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), prog, Config{
		Fault:              &fault.Plan{Seed: 9, Crashes: []fault.Crash{{Proc: 1, At: 0.5 * clean.Time}}},
		CheckpointInterval: clean.Time / 6,
		HardCrashes:        true,
	})
	if err != nil {
		t.Fatalf("hard-crash run failed: %v", err)
	}
	if res.HardRestarts == 0 {
		t.Fatal("hard crash never triggered a run-level heal")
	}
	// The healed run's numeric results must match a fault-free run: the
	// crash interrupts execution, not arithmetic.
	ref, err := Run(context.Background(), prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range ref.Scalars {
		if got := res.Scalars[name]; got != want {
			t.Fatalf("scalar %s after heal: got %v, want %v", name, got, want)
		}
	}
	for name, want := range ref.Arrays {
		got := res.Arrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("array %s[%d] after heal: got %v, want %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestHardCrashesRejectedByDiffer: run-level heals re-execute wall
// intervals the simulator models once, so the oracle must refuse the mode.
func TestHardCrashesRejectedByDiffer(t *testing.T) {
	prog := compile(t, programs.Figures["figure1"], 4, core.DefaultOptions())
	d := Differ{
		Fault:              &fault.Plan{Seed: 1, Crashes: []fault.Crash{{Proc: 0, At: 1}}},
		CheckpointInterval: 1,
	}
	d.Exec.HardCrashes = true
	var ce *ConfigError
	if _, err := d.Run(context.Background(), prog); !errors.As(err, &ce) {
		t.Fatalf("expected ConfigError for HardCrashes under the oracle, got %v", err)
	}
}

// TestWatchdogDelayRecovers (satellite): an injected slowdown below the
// stall threshold parks real workers on the wire but must recover cleanly
// and still produce fault-free-identical results.
func TestWatchdogDelayRecovers(t *testing.T) {
	prog := compile(t, programs.Figures["figure1"], 4, core.DefaultOptions())
	res, err := Run(context.Background(), prog, Config{
		Fault:         &fault.Plan{Seed: 2, Slowdowns: []fault.Slowdown{{Proc: 0, Factor: 4}}},
		StallTimeout:  2 * time.Second,
		testDelayUnit: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("sub-threshold delay did not recover: %v", err)
	}
	ref, err := Run(context.Background(), prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range ref.Scalars {
		if got := res.Scalars[name]; math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("scalar %s under slowdown: got %v, want %v", name, got, want)
		}
	}
}

// TestWatchdogNamesDelayedSend (satellite): a delay far beyond the stall
// threshold must surface as a StallError naming the blocked send, not hang
// and not heal (healing disabled so the error reaches the caller).
func TestWatchdogNamesDelayedSend(t *testing.T) {
	prog := compile(t, programs.Figures["figure1"], 4, core.DefaultOptions())
	_, err := Run(context.Background(), prog, Config{
		Fault:         &fault.Plan{Seed: 2, Slowdowns: []fault.Slowdown{{Proc: 0, Factor: 1e6}}},
		StallTimeout:  200 * time.Millisecond,
		MaxRestarts:   -1,
		testDelayUnit: time.Millisecond,
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("expected StallError from an over-threshold delay, got %v", err)
	}
	found := false
	for _, op := range se.Blocked {
		if op.Op == "send" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stall report does not name the blocked send: %v", se)
	}
}
