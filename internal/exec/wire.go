// The wire layer makes the fault plan's message faults physical. When the
// plan has loss, duplication, or slowdowns, every non-self directed edge
// gets a link goroutine between the sender and the destination mailbox: the
// seeded wall injector draws per-(src,dst,seq,attempt) decisions to drop or
// duplicate real transmissions, and senders run a stop-and-wait
// ack/retransmit protocol with exponential backoff on top. The draws are
// keyed, not sequential, so the outcome is reproducible for a fixed seed
// regardless of goroutine interleaving — and entirely invisible to the
// replayed cost model, which the differential oracle compares against the
// simulator (the physical activity is reported separately in Result).
package exec

import (
	"fmt"
	"sync"
	"time"
)

// maxWireAttempts bounds the retransmissions of one message. With doubling
// backoff this is far beyond any plausible loss run; hitting it means the
// receiver is gone, and the error is surfaced rather than spinning.
const maxWireAttempts = 20

// wireMsg is one transmission attempt on a link.
type wireMsg struct {
	m       message
	attempt int
	dup     bool
}

// wireEdge is the channel pair of one directed link: transmissions flow on
// wire, acknowledgements (reliable, in-process) flow back on ack.
type wireEdge struct {
	wire chan wireMsg
	ack  chan uint64
}

// wireNet is the set of link goroutines for one attempt's transport.
type wireNet struct {
	edges [][]*wireEdge // [src][dst]; nil on the diagonal
	wg    sync.WaitGroup
}

// newWireNet spawns one link per non-self edge. Each link's duplicate
// suppression starts at the destination worker's current expected sequence
// number — which a run-level heal restores from the checkpoint, keeping
// suppression correct across transport rebuilds.
func newWireNet(ex *executor, workers []*worker) *wireNet {
	n := ex.n
	wn := &wireNet{edges: make([][]*wireEdge, n)}
	for s := 0; s < n; s++ {
		wn.edges[s] = make([]*wireEdge, n)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			e := &wireEdge{
				wire: make(chan wireMsg, ex.depth),
				ack:  make(chan uint64, ex.depth),
			}
			wn.edges[s][d] = e
			wn.wg.Add(1)
			go wn.link(ex, s, d, e, workers[d].recvSeq[s])
		}
	}
	return wn
}

// link is the lossy wire of one directed edge. It is always ready to take
// the next transmission (so a sender's enqueue never deadlocks against a
// blocked delivery), suppresses already-delivered sequence numbers without
// acknowledging them, drops what the seeded injector says to drop, and
// delivers the rest into the real mailbox before acknowledging.
func (wn *wireNet) link(ex *executor, src, dst int, e *wireEdge, expect uint64) {
	defer wn.wg.Done()
	mail := ex.mail[src][dst]
	for {
		var wm wireMsg
		select {
		case wm = <-e.wire:
		case <-ex.ctx.Done():
			return
		}
		m := wm.m
		if m.seq < expect {
			// A duplicate or stale retransmit of a message already
			// delivered and acknowledged: suppress silently.
			ex.wireDupSupp.Add(1)
			continue
		}
		if ex.winj.DropAttempt(src, dst, m.seq, wm.attempt, wm.dup) {
			ex.wireDrops.Add(1)
			continue
		}
		select {
		case mail <- m:
		case <-ex.ctx.Done():
			return
		}
		expect = m.seq + 1
		select {
		case e.ack <- m.seq:
		case <-ex.ctx.Done():
			return
		}
	}
}

// sendWire transmits one message over the lossy link: optional slowdown
// delay, then stop-and-wait with RTO-based retransmission and exponential
// backoff until the exact acknowledgement arrives. Waiting for the ack is
// deadlock-equivalent to blocking on a full mailbox — the watchdog sees it
// as a blocked send either way.
func (w *worker) sendWire(to int, m message, what string) error {
	ex := w.ex
	e := ex.wire.edges[w.proc][to]
	if d := ex.winj.SendDelay(w.proc, ex.wall()); d > 0 {
		w.sleepWall(d, to, what+" (slowdown)")
	}
	rto := ex.winj.RTO()
	dup := ex.winj.Duplicate(w.proc, to, m.seq)
	h := ex.wd.block(w.proc, "send", to, what)
	defer ex.wd.unblock(h)
	for attempt := 0; attempt < maxWireAttempts; attempt++ {
		if attempt > 0 {
			ex.wireRetrans.Add(1)
		}
		if err := w.wirePut(e, wireMsg{m: m, attempt: attempt}); err != nil {
			return err
		}
		if dup {
			ex.wireDups.Add(1)
			if err := w.wirePut(e, wireMsg{m: m, attempt: attempt, dup: true}); err != nil {
				return err
			}
		}
		timer := time.NewTimer(rto)
		select {
		case seq := <-e.ack:
			timer.Stop()
			if seq != m.seq {
				return &ProtocolError{Proc: w.proc, From: to,
					WantSeq: m.seq, GotSeq: seq, What: what + " (wire ack)"}
			}
			ex.traffic.Add(1)
			ex.wd.tick()
			w.traceSend(to, m)
			return nil
		case <-timer.C:
			rto *= 2
		case <-ex.ctx.Done():
			timer.Stop()
			return ex.ctx.Err()
		}
	}
	return fmt.Errorf("exec: p%d: %s: no acknowledgement from p%d after %d transmissions",
		w.proc, what, to, maxWireAttempts)
}

// wirePut enqueues one transmission attempt on the link.
func (w *worker) wirePut(e *wireEdge, wm wireMsg) error {
	select {
	case e.wire <- wm:
		return nil
	case <-w.ex.ctx.Done():
		return w.ex.ctx.Err()
	}
}

// sleepWall parks the worker for a real-time delay (an injected slowdown
// made physical), registered with the watchdog so a delay beyond the stall
// threshold is detected and named like any other wedged operation.
func (w *worker) sleepWall(d time.Duration, peer int, what string) {
	h := w.ex.wd.block(w.proc, "send", peer, what)
	defer w.ex.wd.unblock(h)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-w.ex.ctx.Done():
	}
}
