package pass

import (
	"fmt"

	"phpf/internal/dataflow"
	"phpf/internal/diag"
	"phpf/internal/ir"
)

// AutoPriv is the privatization inference pass (FactAutoPriv): it classifies
// every variable written inside a loop as private / lastprivate / serialized
// on the CFG and SSA facts (dataflow.ClassifyPrivatization) and — when
// insert is set — materializes the provable decisions as inferred-NEW /
// lastprivate annotations on the loops, equivalent to what a NEW clause
// would have asserted, before the mapping pass consumes them.
//
// Insertion picks the outermost loop per variable where the decision holds;
// decisions already covered by an ancestor's insertion (or, unless strict,
// by an explicit NEW clause) are skipped. Scalars classified plain-private
// are not annotated: the mapping pass proves those itself from the same SSA
// facts, so an annotation would be redundant. Every variable the pass
// declines to privatize anywhere along its write's loop chain gets a W-coded
// serialized-with-reason diagnostic naming the blocking reference.
//
// strict makes inference the only source of privatization facts: explicit
// NEW clauses neither suppress insertion nor exempt a variable from the
// serialized diagnostic (the mapping pass independently ignores them).
func AutoPriv(insert, strict bool) Pass {
	return &Funcs{
		PassName: "autopriv",
		Needs:    []Fact{FactIR, FactCFG, FactSSA, FactConsts},
		Makes:    []Fact{FactAutoPriv},
		RunFunc: func(u *Unit) error {
			// Re-runs must be idempotent: annotations are recomputed from
			// scratch, never accumulated.
			for _, l := range u.Prog.Loops {
				l.InferredNew, l.InferredLast = nil, nil
			}
			sum := dataflow.ClassifyPrivatization(u.Prog, u.CFG, u.SSA, u.Consts)
			u.AutoPriv = sum
			if !insert {
				return nil
			}
			runAutoPrivInsert(u, sum, strict)
			return nil
		},
	}
}

func runAutoPrivInsert(u *Unit, sum *dataflow.PrivSummary, strict bool) {
	p := u.Prog

	// satisfied[v] lists the loops with respect to which v's privatization
	// is established (inserted, analysis-provable, or directive-asserted).
	satisfied := map[*ir.Var][]*ir.Loop{}
	coveredAt := func(v *ir.Var, l *ir.Loop) bool {
		for _, sl := range satisfied[v] {
			for cur := l; cur != nil; cur = cur.Parent {
				if cur == sl {
					return true
				}
			}
		}
		return false
	}

	// Classes are in loop preorder, so an outer loop's decision is always
	// processed before its descendants'.
	for i := range sum.Classes {
		c := &sum.Classes[i]
		if c.Decision == dataflow.PrivSerialized || coveredAt(c.Var, c.Loop) {
			continue
		}
		if !strict && directiveCovers(p, c.Var) {
			satisfied[c.Var] = append(satisfied[c.Var], c.Loop)
			continue
		}
		switch {
		case c.Decision == dataflow.PrivPrivate && c.Var.IsArray():
			c.Loop.InferredNew = append(c.Loop.InferredNew, c.Var.Name)
			c.Inserted = true
			u.Diag(diag.Diagnostic{
				Severity: diag.Info, Stage: "autopriv", Code: diag.CodeInferredPrivate,
				Subject: c.Var.Name, Pos: diag.Pos{Line: c.Loop.Line},
				Msg: fmt.Sprintf("array %s inferred private with respect to the %s-loop (no NEW clause needed): %s",
					c.Var.Name, c.Loop.Index.Name, c.Reason),
			})
		case c.Decision == dataflow.PrivLastPrivate:
			c.Loop.InferredLast = append(c.Loop.InferredLast, c.Var.Name)
			c.Inserted = true
			u.Diag(diag.Diagnostic{
				Severity: diag.Info, Stage: "autopriv", Code: diag.CodeLastPrivate,
				Subject: c.Var.Name, Pos: diag.Pos{Line: c.Loop.Line},
				Msg: fmt.Sprintf("scalar %s inferred lastprivate with respect to the %s-loop: %s",
					c.Var.Name, c.Loop.Index.Name, c.Reason),
			})
		}
		// Plain-private scalars: provable by the mapping pass from the
		// same SSA facts; established without an annotation.
		satisfied[c.Var] = append(satisfied[c.Var], c.Loop)
	}

	// Serialized-with-reason diagnostics: one per variable whose writes sit
	// under loops where no level of the enclosing chain privatized it.
	warned := map[*ir.Var]bool{}
	for _, st := range p.Stmts {
		if st.Kind != ir.SAssign || st.Loop == nil {
			continue
		}
		v := st.Lhs.Var
		if warned[v] || v.IsLoopIndex {
			continue
		}
		if !strict && directiveCovers(p, v) {
			continue
		}
		var cls *dataflow.PrivClass
		sat := false
		for l := st.Loop; l != nil; l = l.Parent {
			if coveredAt(v, l) {
				sat = true
				break
			}
			if cc := sum.Of(v, l); cc != nil && cls == nil {
				cls = cc // innermost candidate level: most precise reason
			}
		}
		if sat || cls == nil {
			continue
		}
		warned[v] = true
		pos := diag.Pos{Line: st.Line, Col: st.Col}
		if cls.Blocking != nil {
			pos = diag.Pos{Line: cls.Blocking.Stmt.Line, Col: cls.Blocking.Stmt.Col}
		}
		u.Diag(diag.Diagnostic{
			Severity: diag.Warning, Stage: "autopriv", Code: diag.CodeSerialized,
			Subject: v.Name, Pos: pos,
			Msg: fmt.Sprintf("%s %s with respect to the %s-loop",
				kindWord(v), cls.Reason, cls.Loop.Index.Name),
		})
	}
}

// directiveCovers reports whether an explicit directive already asserts
// privatization of v: a NEW clause naming it, or a NODEPS loop whose body
// writes it with loop-invariant subscripts (the §3.1 implied candidate set).
func directiveCovers(p *ir.Program, v *ir.Var) bool {
	for _, l := range p.Loops {
		for _, name := range l.New {
			if name == v.Name {
				return true
			}
		}
	}
	if !v.IsArray() {
		return false
	}
	for _, st := range p.Stmts {
		if st.Kind != ir.SAssign || st.Lhs.Var != v || st.Loop == nil {
			continue
		}
		for l := st.Loop; l != nil; l = l.Parent {
			if !l.NoDeps {
				continue
			}
			invariant := true
			for _, sub := range st.Lhs.Subs {
				if sub.VariesIn(l) || !sub.OK {
					invariant = false
					break
				}
			}
			if invariant {
				return true
			}
		}
	}
	return false
}

func kindWord(v *ir.Var) string {
	if v.IsArray() {
		return "array " + v.Name
	}
	return "scalar " + v.Name
}
