package pass

import (
	"phpf/internal/dataflow"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// Funcs adapts a plain function into a Pass via declared metadata.
type Funcs struct {
	PassName string
	Needs    []Fact
	Makes    []Fact
	MayDrop  []Fact
	RunFunc  func(u *Unit) error
}

func (f *Funcs) Name() string        { return f.PassName }
func (f *Funcs) Requires() []Fact    { return f.Needs }
func (f *Funcs) Provides() []Fact    { return f.Makes }
func (f *Funcs) Invalidates() []Fact { return f.MayDrop }
func (f *Funcs) Run(u *Unit) error   { return f.RunFunc(u) }

// IRBuild lowers the parsed program into the flat IR (FactIR).
func IRBuild() Pass {
	return &Funcs{
		PassName: "ir",
		Makes:    []Fact{FactIR},
		RunFunc: func(u *Unit) error {
			p, err := ir.Build(u.Source)
			if err != nil {
				return err
			}
			u.Prog = p
			return nil
		},
	}
}

// CFGBuild constructs the control flow graph (FactCFG).
func CFGBuild() Pass {
	return &Funcs{
		PassName: "cfg",
		Needs:    []Fact{FactIR},
		Makes:    []Fact{FactCFG},
		RunFunc: func(u *Unit) error {
			g, err := ir.BuildCFG(u.Prog)
			if err != nil {
				return err
			}
			u.CFG = g
			return nil
		},
	}
}

// SSABuild constructs scalar SSA form (FactSSA).
func SSABuild() Pass {
	return &Funcs{
		PassName: "ssa",
		Needs:    []Fact{FactIR, FactCFG},
		Makes:    []Fact{FactSSA},
		RunFunc: func(u *Unit) error {
			u.SSA = ssa.Build(u.Prog, u.CFG)
			return nil
		},
	}
}

// ConstProp runs sparse constant propagation (FactConsts).
func ConstProp() Pass {
	return &Funcs{
		PassName: "constprop",
		Needs:    []Fact{FactSSA},
		Makes:    []Fact{FactConsts},
		RunFunc: func(u *Unit) error {
			u.Consts = dataflow.PropagateConstants(u.SSA)
			return nil
		},
	}
}

// Induction recognizes induction variables and rewrites their increments to
// closed form. Rewriting changes expressions the SSA use links hang off, so
// the pass invalidates FactCFG (and transitively SSA and Consts) instead of
// rebuilding inline — the manager re-runs the providers before the next pass
// that needs them, and the re-runs show up in the profile.
func Induction() Pass {
	return &Funcs{
		PassName: "induction",
		Needs:    []Fact{FactIR, FactSSA, FactConsts},
		MayDrop:  []Fact{FactCFG},
		RunFunc: func(u *Unit) error {
			ivs := dataflow.FindInductionVars(u.Prog, u.SSA, u.Consts)
			u.Inductions = ivs
			if len(ivs) > 0 && dataflow.ApplyInductionRewrites(u.Prog, u.SSA, ivs) > 0 {
				u.Invalidate(FactCFG)
			}
			return nil
		},
	}
}

// Slots numbers the program's variables densely (ir.AssignSlots) and caches
// the numbering on every expression reference. It runs at the end of the
// pipeline, after every pass that may rewrite expressions (induction closed
// forms, the analyze pass), so the cached slots describe the IR the
// interpreter will actually walk.
func Slots() Pass {
	return &Funcs{
		PassName: "slots",
		Needs:    []Fact{FactIR},
		RunFunc: func(u *Unit) error {
			ir.AssignSlots(u.Prog)
			return nil
		},
	}
}

// ReducePlan recognizes the program's reductions over the induction-rewritten
// SSA and classifies each as privatizable or collective-only
// (FactReducePlan). It runs after autopriv so recognition and the
// exclusivity checks see the same rewritten program — with its inferred
// annotations — that the mapping pass consumes.
func ReducePlan() Pass {
	return &Funcs{
		PassName: "reduceplan",
		Needs:    []Fact{FactIR, FactSSA, FactAutoPriv},
		Makes:    []Fact{FactReducePlan},
		RunFunc: func(u *Unit) error {
			u.ReducePlan = dataflow.PlanReductions(u.Prog, dataflow.FindReductions(u.Prog, u.SSA))
			return nil
		},
	}
}

// Mapping resolves the distribution directives leniently (FactMapping):
// bad directives degrade to replication and surface as warning diagnostics.
func Mapping() Pass {
	return &Funcs{
		PassName: "mapping",
		Needs:    []Fact{FactIR},
		Makes:    []Fact{FactMapping},
		RunFunc: func(u *Unit) error {
			m, probs, err := dist.ResolveLenient(u.Prog, u.NProcs)
			if err != nil {
				return err
			}
			u.Mapping = m
			for _, d := range probs {
				u.Diag(d)
			}
			return nil
		},
	}
}
