package pass

import (
	"fmt"
	"sort"
	"strings"

	"phpf/internal/ast"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// DumpUnit renders a stable textual snapshot of every fact currently valid
// on the unit, for -dump-after and golden tests. The output is deterministic:
// all map iterations are sorted, and no addresses or timings appear.
func DumpUnit(u *Unit) string {
	var sb strings.Builder
	if u.Valid(FactIR) && u.Prog != nil {
		sb.WriteString("== ir ==\n")
		dumpIR(&sb, u.Prog)
	}
	if u.Valid(FactCFG) && u.CFG != nil {
		sb.WriteString("== cfg ==\n")
		sb.WriteString(u.CFG.String())
	}
	if u.Valid(FactSSA) && u.SSA != nil {
		sb.WriteString("== ssa ==\n")
		dumpSSA(&sb, u.SSA)
	}
	if u.Valid(FactConsts) && u.Consts != nil {
		sb.WriteString("== consts ==\n")
		dumpConsts(&sb, u)
	}
	if u.Valid(FactAutoPriv) && u.AutoPriv != nil {
		sb.WriteString("== autopriv ==\n")
		dumpAutoPriv(&sb, u)
	}
	if u.Valid(FactMapping) && u.Mapping != nil {
		sb.WriteString("== mapping ==\n")
		dumpMapping(&sb, u)
	}
	return sb.String()
}

func dumpIR(sb *strings.Builder, p *ir.Program) {
	fmt.Fprintf(sb, "program %s\n", p.Name)
	for _, v := range p.VarList {
		fmt.Fprintf(sb, "var %s", v.Name)
		if v.IsArray() {
			sb.WriteString("(")
			for i, d := range v.Dims {
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(sb, "%d", d)
			}
			sb.WriteString(")")
		}
		if v.IsLoopIndex {
			sb.WriteString(" loop-index")
		}
		sb.WriteString("\n")
	}
	for _, st := range p.Stmts {
		fmt.Fprintf(sb, "s%d %s %s", st.ID, st.Pos(), st.Kind)
		switch st.Kind {
		case ir.SAssign:
			fmt.Fprintf(sb, " %s = %s", st.Lhs, ast.ExprString(st.Rhs))
		case ir.SIf, ir.SIfGoto:
			fmt.Fprintf(sb, " (%s)", ast.ExprString(st.Cond))
			if st.Kind == ir.SIfGoto {
				fmt.Fprintf(sb, " goto %d", st.Label)
			}
		case ir.SGoto:
			fmt.Fprintf(sb, " %d", st.Label)
		case ir.SContinue:
			fmt.Fprintf(sb, " %d", st.Label)
		case ir.SRedistribute:
			fmt.Fprintf(sb, " %s", st.Redist.Array.Name)
		}
		if st.Loop != nil {
			fmt.Fprintf(sb, " in %s-loop", st.Loop.Index.Name)
		}
		sb.WriteString("\n")
	}
}

func dumpSSA(sb *strings.Builder, s *ssa.SSA) {
	for _, v := range s.Values {
		fmt.Fprintf(sb, "v%d %s", v.ID, v)
		if v.Kind == ssa.VPhi {
			sb.WriteString(" <-")
			for _, a := range v.Args {
				if a == nil {
					sb.WriteString(" _")
				} else {
					fmt.Fprintf(sb, " v%d", a.ID)
				}
			}
		}
		if n := len(v.UseRefs); n > 0 {
			fmt.Fprintf(sb, " uses:%d", n)
		}
		sb.WriteString("\n")
	}
}

func dumpConsts(sb *strings.Builder, u *Unit) {
	for _, v := range u.SSA.Values {
		c, ok := u.Consts.ValueConst(v)
		if !ok {
			continue
		}
		if c.IsInt {
			fmt.Fprintf(sb, "v%d %s = %d\n", v.ID, v, c.I)
		} else {
			fmt.Fprintf(sb, "v%d %s = %g\n", v.ID, v, c.F)
		}
	}
}

func dumpAutoPriv(sb *strings.Builder, u *Unit) {
	// Classes are already deterministic: loop preorder × declaration order.
	for i := range u.AutoPriv.Classes {
		c := &u.AutoPriv.Classes[i]
		fmt.Fprintf(sb, "%s wrt %s-loop: %s", c.Var.Name, c.Loop.Index.Name, c.Decision)
		if c.Directive {
			sb.WriteString(" [directive]")
		}
		if c.Inserted {
			sb.WriteString(" [inserted]")
		}
		fmt.Fprintf(sb, " — %s\n", c.Reason)
	}
	for _, l := range u.Prog.Loops {
		if len(l.InferredNew) > 0 {
			fmt.Fprintf(sb, "%s-loop inferred new(%s)\n", l.Index.Name, strings.Join(l.InferredNew, ","))
		}
		if len(l.InferredLast) > 0 {
			fmt.Fprintf(sb, "%s-loop inferred lastprivate(%s)\n", l.Index.Name, strings.Join(l.InferredLast, ","))
		}
	}
}

func dumpMapping(sb *strings.Builder, u *Unit) {
	m := u.Mapping
	fmt.Fprintf(sb, "grid(")
	for i, d := range m.Grid.Shape {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(sb, "%d", d)
	}
	sb.WriteString(")\n")
	var names []string
	byName := map[string]*ir.Var{}
	for v := range m.Arrays {
		names = append(names, v.Name)
		byName[v.Name] = v
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(sb, "%s\n", m.Arrays[byName[n]])
	}
}
