package pass

import (
	"strings"
	"testing"

	"phpf/internal/ast"
	"phpf/internal/parser"
	"phpf/internal/ssa"
)

const simpleSrc = `
program t
parameter n = 16
real a(n), b(n)
real x
integer i
!hpf$ distribute (block) :: a, b
do i = 1, n
  x = b(i)
  a(i) = x
end do
end
`

// inductionSrc increments k by hand each iteration, so the induction pass
// rewrites it to closed form and invalidates the SSA facts.
const inductionSrc = `
program t
parameter n = 16
real a(n)
integer i, k
!hpf$ distribute (block) :: a
k = 0
do i = 1, n
  k = k + 1
  a(k) = 1.0
end do
end
`

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ap
}

// stdPasses is the pass-package half of the core pipeline (everything but
// the analyze pass, which lives in core).
func stdPasses() []Pass {
	return []Pass{IRBuild(), CFGBuild(), SSABuild(), ConstProp(), Induction(), Mapping()}
}

// needsAll stands in for core's analyze pass: it requires every fact, so
// anything the induction rewrite invalidated is rebuilt before it runs.
func needsAll() Pass {
	return &Funcs{
		PassName: "needs-all",
		Needs:    []Fact{FactIR, FactSSA, FactConsts, FactMapping},
		RunFunc:  func(u *Unit) error { return nil },
	}
}

func runPipeline(t *testing.T, src string, extra ...Pass) (*Unit, *Manager) {
	t.Helper()
	mgr, err := NewManager(append(stdPasses(), extra...)...)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	mgr.Verify = true
	u := &Unit{Source: parse(t, src), NProcs: 4}
	if err := mgr.Run(u); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return u, mgr
}

func TestPipelineEstablishesAllFacts(t *testing.T) {
	u, mgr := runPipeline(t, simpleSrc)
	for _, f := range []Fact{FactIR, FactCFG, FactSSA, FactConsts, FactMapping} {
		if !u.Valid(f) {
			t.Errorf("fact %s not valid after pipeline", f)
		}
	}
	prof := mgr.Profile()
	wantOrder := []string{"ir", "cfg", "ssa", "constprop", "induction", "mapping"}
	if len(prof.Stats) != len(wantOrder) {
		t.Fatalf("got %d pass executions, want %d: %+v", len(prof.Stats), len(wantOrder), prof.Stats)
	}
	for i, w := range wantOrder {
		if prof.Stats[i].Name != w {
			t.Errorf("execution %d = %s, want %s", i, prof.Stats[i].Name, w)
		}
		if prof.Stats[i].Rerun {
			t.Errorf("execution %d (%s) marked as rerun on a straight-line pipeline", i, w)
		}
	}
}

// TestInductionInvalidatesLazily: the induction rewrite invalidates the
// CFG-derived facts, and a later pass requiring SSA triggers exactly one
// lazy rebuild, visible in the profile.
func TestInductionInvalidatesLazily(t *testing.T) {
	needsSSA := &Funcs{
		PassName: "needs-ssa",
		Needs:    []Fact{FactSSA, FactConsts},
		RunFunc:  func(u *Unit) error { return nil },
	}
	u, mgr := runPipeline(t, inductionSrc, needsSSA)
	if len(u.Inductions) == 0 {
		t.Fatal("no induction variables recognized; test program is broken")
	}
	prof := mgr.Profile()
	for _, name := range []string{"cfg", "ssa", "constprop"} {
		if got := prof.Runs(name); got != 2 {
			t.Errorf("%s ran %d times, want exactly 2 (initial + one lazy rebuild)", name, got)
		}
	}
	if got := prof.Runs("ir"); got != 1 {
		t.Errorf("ir ran %d times, want 1", got)
	}
	reruns := 0
	for _, s := range prof.Stats {
		if s.Rerun {
			reruns++
		}
	}
	if reruns != 3 {
		t.Errorf("%d executions marked rerun, want 3 (cfg, ssa, constprop)", reruns)
	}
}

// TestNoRewriteNoRebuild: without induction variables nothing is
// invalidated and every pass runs exactly once.
func TestNoRewriteNoRebuild(t *testing.T) {
	needsSSA := &Funcs{
		PassName: "needs-ssa",
		Needs:    []Fact{FactSSA, FactConsts},
		RunFunc:  func(u *Unit) error { return nil },
	}
	_, mgr := runPipeline(t, simpleSrc, needsSSA)
	for _, name := range []string{"ir", "cfg", "ssa", "constprop", "induction", "mapping"} {
		if got := mgr.Profile().Runs(name); got != 1 {
			t.Errorf("%s ran %d times, want 1", name, got)
		}
	}
}

func TestUndeclaredInvalidationFails(t *testing.T) {
	rogue := &Funcs{
		PassName: "rogue",
		Needs:    []Fact{FactSSA},
		RunFunc: func(u *Unit) error {
			u.Invalidate(FactIR) // not declared in MayDrop
			return nil
		},
	}
	mgr, err := NewManager(append(stdPasses(), rogue)...)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	u := &Unit{Source: parse(t, simpleSrc), NProcs: 4}
	err = mgr.Run(u)
	if err == nil || !strings.Contains(err.Error(), "rogue") ||
		!strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("undeclared invalidation not rejected: %v", err)
	}
}

func TestDuplicateProviderRejected(t *testing.T) {
	if _, err := NewManager(IRBuild(), IRBuild()); err == nil {
		t.Fatal("duplicate pass accepted")
	}
	other := &Funcs{PassName: "ir2", Makes: []Fact{FactIR},
		RunFunc: func(u *Unit) error { return nil }}
	if _, err := NewManager(IRBuild(), other); err == nil {
		t.Fatal("two providers for one fact accepted")
	}
}

func TestMissingProviderFails(t *testing.T) {
	needsSSA := &Funcs{PassName: "needs-ssa", Needs: []Fact{FactSSA},
		RunFunc: func(u *Unit) error { return nil }}
	mgr, err := NewManager(IRBuild(), needsSSA)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	u := &Unit{Source: parse(t, simpleSrc), NProcs: 4}
	if err := mgr.Run(u); err == nil || !strings.Contains(err.Error(), "no pass") {
		t.Fatalf("missing provider not reported: %v", err)
	}
}

// TestVerifierCatchesDanglingPhi: hand-corrupt the SSA by truncating a phi's
// argument list; the inter-pass verifier must fail the pipeline with an
// error naming the corrupting pass.
func TestVerifierCatchesDanglingPhi(t *testing.T) {
	corrupt := &Funcs{
		PassName: "corrupt-phi",
		Needs:    []Fact{FactSSA},
		RunFunc: func(u *Unit) error {
			for _, v := range u.SSA.Values {
				if v.Kind == ssa.VPhi && len(v.Args) > 0 {
					v.Args = v.Args[:len(v.Args)-1]
					return nil
				}
			}
			t.Fatal("no phi to corrupt; test program is broken")
			return nil
		},
	}
	mgr, err := NewManager(append(stdPasses(), corrupt)...)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	mgr.Verify = true
	u := &Unit{Source: parse(t, simpleSrc), NProcs: 4}
	err = mgr.Run(u)
	if err == nil {
		t.Fatal("verifier accepted a phi with wrong arity")
	}
	if !strings.Contains(err.Error(), "corrupt-phi") {
		t.Errorf("error does not name the offending pass: %v", err)
	}
	if !strings.Contains(err.Error(), "phi") {
		t.Errorf("error does not describe the phi violation: %v", err)
	}
}

// TestVerifierCatchesUnmappedGridDim: hand-corrupt the mapping by pointing a
// distributed axis at a grid dimension that does not exist.
func TestVerifierCatchesUnmappedGridDim(t *testing.T) {
	corrupt := &Funcs{
		PassName: "corrupt-mapping",
		Needs:    []Fact{FactMapping},
		RunFunc: func(u *Unit) error {
			for _, am := range u.Mapping.Arrays {
				for i := range am.Axes {
					if am.Axes[i].Distributed {
						am.Axes[i].GridDim = 97
						return nil
					}
				}
			}
			t.Fatal("no distributed axis to corrupt; test program is broken")
			return nil
		},
	}
	mgr, err := NewManager(append(stdPasses(), corrupt)...)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	mgr.Verify = true
	u := &Unit{Source: parse(t, simpleSrc), NProcs: 4}
	err = mgr.Run(u)
	if err == nil {
		t.Fatal("verifier accepted a distributed axis onto a nonexistent grid dim")
	}
	if !strings.Contains(err.Error(), "corrupt-mapping") {
		t.Errorf("error does not name the offending pass: %v", err)
	}
	if !strings.Contains(err.Error(), "grid dim") {
		t.Errorf("error does not describe the mapping violation: %v", err)
	}
}

// TestVerifierCatchesDominanceViolation: move a definition's statement after
// its use within the block ordering by swapping block contents.
func TestVerifierCatchesBrokenEdge(t *testing.T) {
	corrupt := &Funcs{
		PassName: "corrupt-cfg",
		Needs:    []Fact{FactCFG},
		RunFunc: func(u *Unit) error {
			for _, b := range u.CFG.Blocks {
				if len(b.Succs) > 0 {
					b.Succs[0] = u.CFG.Blocks[len(u.CFG.Blocks)-1]
					return nil
				}
			}
			return nil
		},
	}
	// Only ir/cfg before the corruption: SSA would be rebuilt over the
	// broken graph otherwise.
	mgr, err := NewManager(IRBuild(), CFGBuild(), corrupt)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	mgr.Verify = true
	u := &Unit{Source: parse(t, simpleSrc), NProcs: 4}
	err = mgr.Run(u)
	if err == nil {
		t.Fatal("verifier accepted an asymmetric CFG edge")
	}
	if !strings.Contains(err.Error(), "corrupt-cfg") {
		t.Errorf("error does not name the offending pass: %v", err)
	}
}

func TestVerifyCleanUnit(t *testing.T) {
	u, _ := runPipeline(t, inductionSrc, needsAll())
	if errs := VerifyUnit(u); len(errs) > 0 {
		t.Fatalf("clean unit fails verification: %v", errs[0])
	}
}

// TestDumpDeterministic: two independent compilations of the same program
// produce byte-identical snapshots.
func TestDumpDeterministic(t *testing.T) {
	for _, src := range []string{simpleSrc, inductionSrc} {
		u1, _ := runPipeline(t, src, needsAll())
		u2, _ := runPipeline(t, src, needsAll())
		d1, d2 := DumpUnit(u1), DumpUnit(u2)
		if d1 != d2 {
			t.Errorf("dump not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", d1, d2)
		}
		for _, section := range []string{"== ir ==", "== cfg ==", "== ssa ==", "== consts ==", "== mapping =="} {
			if !strings.Contains(d1, section) {
				t.Errorf("dump missing section %s", section)
			}
		}
	}
}

func TestDumpAfterCapturesSnapshot(t *testing.T) {
	mgr, err := NewManager(stdPasses()...)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	mgr.DumpAfter = "ssa"
	u := &Unit{Source: parse(t, simpleSrc), NProcs: 4}
	if err := mgr.Run(u); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	snap, ok := mgr.Profile().Dumps["ssa"]
	if !ok {
		t.Fatal("no snapshot captured for -dump-after=ssa")
	}
	if !strings.Contains(snap, "== ssa ==") || strings.Contains(snap, "== mapping ==") {
		t.Errorf("ssa snapshot has wrong sections:\n%s", snap)
	}
}

func TestProfileString(t *testing.T) {
	_, mgr := runPipeline(t, inductionSrc, needsAll())
	s := mgr.Profile().String()
	for _, w := range []string{"pass", "wall", "diags", "ir", "ssa*", "total"} {
		if !strings.Contains(s, w) {
			t.Errorf("profile table missing %q:\n%s", w, s)
		}
	}
}
