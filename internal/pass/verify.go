package pass

import (
	"fmt"

	"phpf/internal/dataflow"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// VerifyUnit checks the structural invariants of every fact currently valid
// on the unit and returns the violations found (nil when the unit is sound).
// The checks:
//
//	FactCFG:     block IDs are dense and consistent, successor/predecessor
//	             edges are symmetric, entry has no predecessors, every loop
//	             registered a header block, header blocks belong to their loop.
//	FactSSA:     phi arity matches the predecessor count, phi arguments are
//	             non-nil for reachable predecessors and share the phi's
//	             variable, every use's definition dominates the use
//	             (def-before-use within a block), def/use back links agree.
//	FactMapping: every distributed axis names a real grid dimension, at most
//	             one axis per grid dimension, replication flags cover exactly
//	             the untargeted grid dimensions, block sizes are positive.
func VerifyUnit(u *Unit) []error {
	var errs []error
	bad := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if u.Valid(FactCFG) && u.CFG != nil {
		verifyCFG(u, bad)
	}
	if u.Valid(FactSSA) && u.SSA != nil {
		verifySSA(u, bad)
	}
	if u.Valid(FactMapping) && u.Mapping != nil {
		verifyMapping(u, bad)
	}
	if u.Valid(FactAutoPriv) && u.AutoPriv != nil {
		verifyAutoPriv(u, bad)
	}
	return errs
}

func verifyCFG(u *Unit, bad func(string, ...interface{})) {
	g := u.CFG
	if g.Entry == nil || g.Exit == nil {
		bad("cfg: missing entry or exit block")
		return
	}
	inGraph := map[*ir.Block]bool{}
	for i, b := range g.Blocks {
		if b.ID != i {
			bad("cfg: block at index %d has ID %d", i, b.ID)
			return
		}
		inGraph[b] = true
	}
	if !inGraph[g.Entry] || !inGraph[g.Exit] {
		bad("cfg: entry or exit block not in block list")
	}
	if len(g.Entry.Preds) != 0 {
		bad("cfg: entry block B%d has %d predecessors", g.Entry.ID, len(g.Entry.Preds))
	}
	count := func(list []*ir.Block, b *ir.Block) int {
		n := 0
		for _, x := range list {
			if x == b {
				n++
			}
		}
		return n
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !inGraph[s] {
				bad("cfg: B%d has successor outside the graph", b.ID)
				continue
			}
			if count(b.Succs, s) != count(s.Preds, b) {
				bad("cfg: edge B%d->B%d asymmetric (succ count %d, pred count %d)",
					b.ID, s.ID, count(b.Succs, s), count(s.Preds, b))
			}
		}
		for _, p := range b.Preds {
			if !inGraph[p] {
				bad("cfg: B%d has predecessor outside the graph", b.ID)
			}
		}
		if b.IsHeader && b.Loop == nil {
			bad("cfg: header block B%d has no loop", b.ID)
		}
	}
	for l, h := range g.HeaderOf {
		if !inGraph[h] {
			bad("cfg: header of %s-loop not in the graph", l.Index.Name)
			continue
		}
		if !h.IsHeader || h.Loop != l {
			bad("cfg: header of %s-loop (B%d) not marked as its header", l.Index.Name, h.ID)
		}
	}
}

func verifySSA(u *Unit, bad func(string, ...interface{})) {
	s := u.SSA
	if s.CFG != u.CFG {
		bad("ssa: built over a stale CFG")
		return
	}
	inSSA := map[*ssa.Value]bool{}
	for _, v := range s.Values {
		inSSA[v] = true
	}
	// Statement order within a block, for same-block def-before-use.
	posInBlock := map[*ir.Stmt]int{}
	blockOf := map[*ir.Stmt]*ir.Block{}
	for _, b := range u.CFG.Blocks {
		for i, st := range b.Stmts {
			posInBlock[st] = i
			blockOf[st] = b
		}
	}
	for _, v := range s.Values {
		if v.Block == nil {
			bad("ssa: %s has no block", v)
			continue
		}
		if v.Kind == ssa.VPhi {
			if len(v.Args) != len(v.Block.Preds) {
				bad("ssa: phi %s has %d args for %d predecessors of B%d",
					v, len(v.Args), len(v.Block.Preds), v.Block.ID)
				continue
			}
			for i, a := range v.Args {
				pred := v.Block.Preds[i]
				if a == nil {
					if s.Dom.IsReachable(pred) {
						bad("ssa: phi %s has nil argument for reachable predecessor B%d", v, pred.ID)
					}
					continue
				}
				if !inSSA[a] {
					bad("ssa: phi %s argument %d dangles (value not in SSA)", v, i)
					continue
				}
				if a.Var != v.Var {
					bad("ssa: phi %s argument %d is of variable %s", v, i, a.Var.Name)
				}
			}
		}
		if v.Kind == ssa.VDef && v.Stmt == nil {
			bad("ssa: def %s has no statement", v)
		}
	}
	for use, def := range s.UseDef {
		if !inSSA[def] {
			bad("ssa: use %s bound to a value not in SSA", use)
			continue
		}
		if use.Var != def.Var {
			bad("ssa: use of %s bound to definition of %s", use.Var.Name, def.Var.Name)
		}
		ub := blockOf[use.Stmt]
		if ub == nil || !s.Dom.IsReachable(ub) {
			continue // unreachable code is exempt from dominance
		}
		if def.Block != ub {
			if !s.Dom.Dominates(def.Block, ub) {
				bad("ssa: definition %s (B%d) does not dominate use %s (B%d)",
					def, def.Block.ID, use, ub.ID)
			}
			continue
		}
		// Same block: phis and init defs precede all statements; an explicit
		// def must come from a strictly earlier statement.
		if def.Kind == ssa.VDef && posInBlock[def.Stmt] >= posInBlock[use.Stmt] {
			bad("ssa: definition %s does not precede same-block use %s", def, use)
		}
	}
}

func verifyAutoPriv(u *Unit, bad func(string, ...interface{})) {
	p := u.Prog
	writtenIn := func(v *ir.Var, l *ir.Loop) bool {
		for _, st := range p.Stmts {
			if st.Kind == ir.SAssign && st.Lhs.Var == v && ir.Encloses(l, st.Loop) {
				return true
			}
		}
		return false
	}
	check := func(l *ir.Loop, names []string, kind string, want dataflow.PrivDecision) {
		seen := map[string]bool{}
		for _, name := range names {
			if seen[name] {
				bad("autopriv: %s-loop lists %s twice in inferred %s", l.Index.Name, name, kind)
			}
			seen[name] = true
			v := p.LookupVar(name)
			if v == nil {
				bad("autopriv: %s-loop inferred %s names unknown variable %s", l.Index.Name, kind, name)
				continue
			}
			if v.IsLoopIndex {
				bad("autopriv: %s-loop inferred %s names loop index %s", l.Index.Name, kind, name)
			}
			if kind == "lastprivate" && v.IsArray() {
				bad("autopriv: %s-loop inferred lastprivate names array %s (scalars only)", l.Index.Name, name)
			}
			if !writtenIn(v, l) {
				bad("autopriv: %s-loop inferred %s names %s, which the loop never writes", l.Index.Name, kind, name)
			}
			c := u.AutoPriv.Of(v, l)
			if c == nil {
				bad("autopriv: %s-loop inferred %s for %s has no classification backing it", l.Index.Name, kind, name)
				continue
			}
			if c.Decision != want {
				bad("autopriv: %s-loop inferred %s for %s, but its classification is %s", l.Index.Name, kind, name, c.Decision)
			}
			if !c.Inserted {
				bad("autopriv: %s-loop inferred %s for %s not marked Inserted in the summary", l.Index.Name, kind, name)
			}
		}
	}
	for _, l := range p.Loops {
		check(l, l.InferredNew, "new", dataflow.PrivPrivate)
		check(l, l.InferredLast, "lastprivate", dataflow.PrivLastPrivate)
	}
}

func verifyMapping(u *Unit, bad func(string, ...interface{})) {
	m := u.Mapping
	if m.Grid == nil {
		bad("mapping: no grid")
		return
	}
	rank := m.Grid.Rank()
	for v, am := range m.Arrays {
		if am.Var != v {
			bad("mapping: entry for %s maps %s", v.Name, am.Var.Name)
		}
		if len(am.Axes) != v.Rank() {
			bad("mapping: %s has %d axes for rank %d", v.Name, len(am.Axes), v.Rank())
			continue
		}
		if len(am.Repl) != rank {
			bad("mapping: %s has %d replication flags for grid rank %d", v.Name, len(am.Repl), rank)
			continue
		}
		targeted := make([]bool, rank)
		for dim, ax := range am.Axes {
			if !ax.Distributed {
				continue
			}
			if ax.GridDim < 0 || ax.GridDim >= rank {
				bad("mapping: %s dim %d distributed onto grid dim %d, grid rank is %d",
					v.Name, dim, ax.GridDim, rank)
				continue
			}
			if targeted[ax.GridDim] {
				bad("mapping: %s maps two dimensions onto grid dim %d", v.Name, ax.GridDim)
			}
			targeted[ax.GridDim] = true
			if ax.Block <= 0 {
				bad("mapping: %s dim %d has non-positive block size %d", v.Name, dim, ax.Block)
			}
		}
		for d := 0; d < rank; d++ {
			if targeted[d] && am.Repl[d] {
				bad("mapping: %s both distributed over and replicated across grid dim %d", v.Name, d)
			}
			if !targeted[d] && !am.Repl[d] {
				bad("mapping: %s neither distributed over nor replicated across grid dim %d", v.Name, d)
			}
		}
	}
}
