// Package pass implements the instrumented compilation pipeline: a pass
// manager running declared passes over a shared compilation Unit, with
// explicit fact invalidation, per-pass wall-time and diagnostic metrics, an
// IR/SSA/mapping verifier that can run between passes, and stable textual
// snapshots of the unit after any pass (-dump-after).
//
// The pipeline is fact-based: every pass declares which facts it Requires,
// Provides, and may Invalidate. A pass that changes the program (induction
// rewriting) does not rebuild downstream structures inline; it calls
// Unit.Invalidate and the manager lazily re-runs the registered provider
// passes before the next pass that requires them. Re-runs are recorded in the
// profile, so tests can assert that a rebuild happened exactly once.
package pass

import (
	"fmt"
	"time"

	"phpf/internal/ast"
	"phpf/internal/dataflow"
	"phpf/internal/diag"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// Fact identifies one piece of derived compilation state on the Unit.
type Fact int

const (
	// FactIR: Unit.Prog, the lowered program.
	FactIR Fact = iota
	// FactCFG: Unit.CFG, the control flow graph over Prog.
	FactCFG
	// FactSSA: Unit.SSA, scalar SSA form over the CFG.
	FactSSA
	// FactConsts: Unit.Consts, constant propagation over the SSA values.
	FactConsts
	// FactMapping: Unit.Mapping, resolved distribution directives.
	FactMapping
	// FactAutoPriv: Unit.AutoPriv, the privatization classification (and
	// the inferred-NEW/lastprivate loop annotations the autopriv pass
	// inserts from it).
	FactAutoPriv
	// FactReducePlan: Unit.ReducePlan, the collective-vs-privatized
	// classification of every recognized reduction.
	FactReducePlan

	numFacts
)

func (f Fact) String() string {
	switch f {
	case FactIR:
		return "ir"
	case FactCFG:
		return "cfg"
	case FactSSA:
		return "ssa"
	case FactConsts:
		return "consts"
	case FactMapping:
		return "mapping"
	case FactAutoPriv:
		return "autopriv"
	case FactReducePlan:
		return "reduceplan"
	}
	return fmt.Sprintf("fact(%d)", int(f))
}

// derived[f] lists the facts computed directly from f; invalidating f
// transitively invalidates them.
var derived = map[Fact][]Fact{
	FactIR:     {FactCFG, FactMapping},
	FactCFG:    {FactSSA},
	FactSSA:    {FactConsts, FactAutoPriv, FactReducePlan},
	FactConsts: {FactAutoPriv},
}

// Unit is the shared compilation state threaded through the pipeline. Passes
// read the facts they declared in Requires and write the ones they declared
// in Provides; everything else is off limits.
type Unit struct {
	// Source is the parsed program the pipeline compiles.
	Source *ast.Program
	// NProcs is the target processor count.
	NProcs int
	// Options carries the caller's option struct, opaque to this package
	// (core.Options; typed any to keep pass free of a core dependency).
	Options any

	Prog       *ir.Program
	CFG        *ir.CFG
	SSA        *ssa.SSA
	Consts     *dataflow.ConstProp
	Mapping    *dist.Mapping
	Inductions []*dataflow.Induction
	AutoPriv   *dataflow.PrivSummary
	ReducePlan *dataflow.ReducePlan

	// Diags accumulates the non-fatal diagnostics every pass emitted, in
	// emission order.
	Diags diag.List

	valid       [numFacts]bool
	invalidated []Fact
}

// Valid reports whether fact f is currently established.
func (u *Unit) Valid(f Fact) bool { return u.valid[f] }

// Invalidate marks a fact (and, transitively, everything derived from it) as
// stale. A pass may only invalidate facts it declared in Invalidates; the
// manager enforces this after Run returns.
func (u *Unit) Invalidate(f Fact) {
	if !u.valid[f] {
		return
	}
	u.valid[f] = false
	u.invalidated = append(u.invalidated, f)
	for _, d := range derived[f] {
		u.Invalidate(d)
	}
}

// Diag records a non-fatal diagnostic.
func (u *Unit) Diag(d diag.Diagnostic) { u.Diags = append(u.Diags, d) }

// Pass is one step of the pipeline.
type Pass interface {
	// Name is the stable pass name used by -trace, -dump-after, and the
	// profile.
	Name() string
	// Requires lists the facts that must be valid before Run.
	Requires() []Fact
	// Provides lists the facts Run establishes.
	Provides() []Fact
	// Invalidates lists the facts Run MAY invalidate (via Unit.Invalidate).
	// Invalidating an undeclared fact is a pipeline bug and fails the run.
	Invalidates() []Fact
	// Run does the work. A returned error aborts the pipeline.
	Run(u *Unit) error
}

// PassStat records one execution of one pass.
type PassStat struct {
	Name string
	Wall time.Duration
	// Diags is the number of diagnostics this execution emitted.
	Diags int
	// Rerun is true when the manager re-ran the pass to restore a fact an
	// earlier pass invalidated (rather than by pipeline order).
	Rerun bool
}

// CompileProfile is the instrumentation record of one pipeline run.
type CompileProfile struct {
	// Stats lists every pass execution in the order it happened, including
	// lazy re-runs.
	Stats []PassStat
	// Dumps maps a pass name to the textual unit snapshot taken after it
	// (only the passes requested via Manager.DumpAfter).
	Dumps map[string]string
}

// Runs returns how many times the named pass executed.
func (p *CompileProfile) Runs(name string) int {
	n := 0
	for _, s := range p.Stats {
		if s.Name == name {
			n++
		}
	}
	return n
}

// Total returns the summed wall time of all pass executions.
func (p *CompileProfile) Total() time.Duration {
	var t time.Duration
	for _, s := range p.Stats {
		t += s.Wall
	}
	return t
}

// String renders the profile as the fixed-width table phpfc -trace prints.
func (p *CompileProfile) String() string {
	out := fmt.Sprintf("%-12s %12s %6s\n", "pass", "wall", "diags")
	for _, s := range p.Stats {
		name := s.Name
		if s.Rerun {
			name += "*"
		}
		out += fmt.Sprintf("%-12s %12s %6d\n", name, s.Wall.Round(time.Microsecond), s.Diags)
	}
	out += fmt.Sprintf("%-12s %12s %6d\n", "total", p.Total().Round(time.Microsecond), p.DiagCount())
	return out
}

// DiagCount returns the total diagnostics emitted across all executions.
func (p *CompileProfile) DiagCount() int {
	n := 0
	for _, s := range p.Stats {
		n += s.Diags
	}
	return n
}
