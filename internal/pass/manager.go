package pass

import (
	"fmt"
	"time"

	"phpf/internal/diag"
)

// Manager runs a declared sequence of passes over a Unit, restoring
// invalidated facts lazily and collecting the CompileProfile.
type Manager struct {
	// Verify runs the unit verifier after every pass execution; any
	// violation aborts the pipeline with an error naming the offending pass.
	Verify bool
	// DumpAfter names a pass whose post-state is snapshotted into
	// Profile.Dumps (empty: no dumps).
	DumpAfter string

	passes   []Pass
	provider map[Fact]Pass
	profile  *CompileProfile
}

// NewManager builds a manager over the given pipeline order.
func NewManager(passes ...Pass) (*Manager, error) {
	m := &Manager{
		passes:   passes,
		provider: map[Fact]Pass{},
		profile:  &CompileProfile{Dumps: map[string]string{}},
	}
	seen := map[string]bool{}
	for _, p := range passes {
		if seen[p.Name()] {
			return nil, fmt.Errorf("pass: duplicate pass name %q", p.Name())
		}
		seen[p.Name()] = true
		for _, f := range p.Provides() {
			if prev, dup := m.provider[f]; dup {
				return nil, fmt.Errorf("pass: fact %s provided by both %q and %q",
					f, prev.Name(), p.Name())
			}
			m.provider[f] = p
		}
	}
	return m, nil
}

// Profile returns the instrumentation collected so far (valid after Run,
// even a failed one).
func (m *Manager) Profile() *CompileProfile { return m.profile }

// Has reports whether the pipeline contains a pass with the given name.
func (m *Manager) Has(name string) bool {
	for _, p := range m.passes {
		if p.Name() == name {
			return true
		}
	}
	return false
}

// Run executes the pipeline in declared order. Before each pass, facts it
// requires that an earlier pass invalidated are restored by lazily re-running
// their providers (recorded in the profile as re-runs).
func (m *Manager) Run(u *Unit) error {
	for _, p := range m.passes {
		if err := m.ensure(u, p.Requires(), p.Name()); err != nil {
			return err
		}
		if err := m.exec(u, p, false); err != nil {
			return err
		}
	}
	return nil
}

// ensure restores the given facts, re-running providers as needed. forPass
// names the pass the facts are needed by (for error messages).
func (m *Manager) ensure(u *Unit, facts []Fact, forPass string) error {
	for _, f := range facts {
		if u.Valid(f) {
			continue
		}
		prov := m.provider[f]
		if prov == nil {
			return fmt.Errorf("pass %s: requires %s but no pass in the pipeline provides it", forPass, f)
		}
		if err := m.ensure(u, prov.Requires(), prov.Name()); err != nil {
			return err
		}
		if err := m.exec(u, prov, true); err != nil {
			return err
		}
		if !u.Valid(f) {
			return fmt.Errorf("pass %s: provider %s ran but did not establish %s", forPass, prov.Name(), f)
		}
	}
	return nil
}

// exec runs one pass with instrumentation and post-run checks.
func (m *Manager) exec(u *Unit, p Pass, rerun bool) error {
	diagsBefore := len(u.Diags)
	u.invalidated = nil
	start := time.Now()
	err := p.Run(u)
	wall := time.Since(start)
	m.profile.Stats = append(m.profile.Stats, PassStat{
		Name:  p.Name(),
		Wall:  wall,
		Diags: len(u.Diags) - diagsBefore,
		Rerun: rerun,
	})
	if err != nil {
		return err
	}
	// Invalidation discipline: everything Run invalidated must be declared,
	// directly or as a transitive consequence of a declared fact.
	allowed := map[Fact]bool{}
	var mark func(f Fact)
	mark = func(f Fact) {
		if allowed[f] {
			return
		}
		allowed[f] = true
		for _, d := range derived[f] {
			mark(d)
		}
	}
	for _, f := range p.Invalidates() {
		mark(f)
	}
	for _, f := range u.invalidated {
		if !allowed[f] {
			return fmt.Errorf("pass %s: invalidated undeclared fact %s", p.Name(), f)
		}
	}
	for _, f := range p.Provides() {
		u.valid[f] = true
	}
	if m.Verify {
		if errs := VerifyUnit(u); len(errs) > 0 {
			return &diag.Diagnostic{
				Severity: diag.Error,
				Stage:    "verify",
				Code:     diag.CodeVerify,
				Subject:  p.Name(),
				Msg:      fmt.Sprintf("after pass %s: %s", p.Name(), errs[0]),
			}
		}
	}
	if m.DumpAfter == p.Name() {
		m.profile.Dumps[p.Name()] = DumpUnit(u)
	}
	return nil
}
