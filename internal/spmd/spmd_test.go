package spmd

import (
	"strings"
	"testing"

	"phpf/internal/core"
	"phpf/internal/ir"
	"phpf/internal/parser"
)

func gen(t *testing.T, src string, nprocs int, opts core.Options) *Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := core.BuildAndAnalyze(ap, nprocs, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return Generate(res)
}

const figure1 = `
program figure1
parameter n = 100
real a(n), b(n), c(n), d(n), e(n), f(n)
real x, y, z
integer i, m
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
!hpf$ distribute (block) :: a
m = 2
do i = 2, n-1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i+1) = y / z
  d(m) = x / z
end do
end
`

func TestGenerateFigure1Guards(t *testing.T) {
	p := gen(t, figure1, 16, core.DefaultOptions())
	for _, st := range p.Res.Prog.Stmts {
		sp := p.Stmts[st]
		if sp == nil {
			t.Fatalf("no plan for s%d", st.ID)
		}
		if st.Kind != ir.SAssign {
			continue
		}
		switch st.Lhs.Var.Name {
		case "a", "d":
			if sp.Kind != ExecOwner || sp.OwnerRef != st.Lhs {
				t.Errorf("%s guard = %v, want owner(lhs)", st.Lhs, sp.Kind)
			}
		case "x", "y":
			if sp.Kind != ExecOwner {
				t.Errorf("%s guard = %v, want owner(target)", st.Lhs.Var.Name, sp.Kind)
			}
		case "z":
			if sp.Kind != ExecUnion {
				t.Errorf("z guard = %v, want union", sp.Kind)
			}
		case "m":
			if st.Loop != nil && sp.Kind != ExecUnion {
				t.Errorf("m guard = %v, want union", sp.Kind)
			}
		}
	}
}

func TestGenerateFlops(t *testing.T) {
	p := gen(t, figure1, 4, core.DefaultOptions())
	for _, st := range p.Res.Prog.Stmts {
		if st.Kind != ir.SAssign {
			continue
		}
		if p.Stmts[st].Flops < 1 {
			t.Errorf("s%d flops = %d", st.ID, p.Stmts[st].Flops)
		}
	}
}

func TestGenerateReductionCombine(t *testing.T) {
	src := `
program red
parameter n = 64
real a(n,n), b(n)
real s
integer i, j
!hpf$ align b(i) with a(i,*)
!hpf$ distribute (block,block) :: a
do i = 1, n
  s = 0.0
  do j = 1, n
    s = s + a(i,j)
  end do
  b(i) = s
end do
end
`
	p := gen(t, src, 16, core.DefaultOptions())
	jLoop := p.Res.Prog.Loops[1]
	lp := p.Loops[jLoop]
	if lp == nil || len(lp.Combines) != 1 {
		t.Fatalf("j-loop combines = %v, want 1", lp)
	}
	if lp.Combines[0].Var().Name != "s" {
		t.Errorf("combine var = %s", lp.Combines[0].Var().Name)
	}
	// The update statement executes on the owners of a(i,j).
	for _, st := range p.Res.Prog.Stmts {
		if st.Kind == ir.SAssign && st.Lhs.Var.Name == "s" && st.Loop != nil && st.Loop.Index.Name == "j" {
			sp := p.Stmts[st]
			if sp.Kind != ExecOwner || sp.OwnerRef.Var.Name != "a" {
				t.Errorf("update guard = %v owner=%v, want owner(a(i,j))", sp.Kind, sp.OwnerRef)
			}
		}
	}
}

func TestDumpContainsGuardsAndComm(t *testing.T) {
	p := gen(t, figure1, 16, core.DefaultOptions())
	d := p.Dump()
	for _, want := range []string{"do i", "owner(", "[union]", "[comm", "end do"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestGenerateControlGuards(t *testing.T) {
	src := `
program f7
parameter n = 64
real a(n), b(n), c(n)
integer i
!hpf$ align (i) with a(i) :: b, c
!hpf$ distribute (block) :: a
do i = 1, n
  if (b(i) /= 0.0) then
    a(i) = a(i) / b(i)
  else
    a(i) = c(i)
  end if
end do
end
`
	p := gen(t, src, 8, core.DefaultOptions())
	for _, st := range p.Res.Prog.Stmts {
		if st.Kind == ir.SIf {
			if p.Stmts[st].Kind != ExecUnion {
				t.Errorf("if guard = %v, want union", p.Stmts[st].Kind)
			}
		}
	}
	// Without control privatization: ExecAll.
	opts := core.DefaultOptions()
	opts.PrivatizeControlFlow = false
	p2 := gen(t, src, 8, opts)
	for _, st := range p2.Res.Prog.Stmts {
		if st.Kind == ir.SIf {
			if p2.Stmts[st].Kind != ExecAll {
				t.Errorf("if guard = %v, want all", p2.Stmts[st].Kind)
			}
		}
	}
}

func TestDumpCoversAllStatementKinds(t *testing.T) {
	src := `
program t
parameter n = 8
real a(n,n), b(n)
integer i
!hpf$ distribute (block,*) :: a
do i = 1, n
  if (b(i) < 0.0) goto 100
  a(i,1) = b(i)
  goto 200
100 continue
  a(i,2) = 0.0
200 continue
end do
!hpf$ redistribute a(*,block)
a(1,1) = 1.0
end
`
	p := gen(t, src, 4, core.DefaultOptions())
	d := p.Dump()
	for _, want := range []string{"goto 100", "goto 200", "100 continue",
		"redistribute a", "do i", "end do"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestGenerateIfGotoGuard(t *testing.T) {
	src := `
program t
parameter n = 8
real a(n), b(n)
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  if (b(i) < 0.0) goto 100
  a(i) = b(i)
100 continue
end do
end
`
	p := gen(t, src, 4, core.DefaultOptions())
	for _, st := range p.Res.Prog.Stmts {
		if st.Kind == ir.SIfGoto {
			if p.Stmts[st].Kind != ExecUnion {
				t.Errorf("ifgoto guard = %v, want union (label inside loop)", p.Stmts[st].Kind)
			}
		}
	}
}

func TestExecKindStrings(t *testing.T) {
	want := map[ExecKind]string{ExecAll: "all", ExecOwner: "owner",
		ExecPattern: "pattern", ExecUnion: "union"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d = %q, want %q", int(k), k.String(), w)
		}
	}
}
