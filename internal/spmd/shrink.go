package spmd

import (
	"fmt"

	"phpf/internal/ast"
	"phpf/internal/dist"
	"phpf/internal/ir"
)

// ShrinkInfo describes a loop whose bounds can be shrunk to each
// processor's local iterations in the generated SPMD code: every statement
// in the body executes on an owner set whose coordinate along GridDim is
// the loop index (plus a bounded offset) under one common distribution, so
// a processor only visits the iterations that map to it.
//
// This is the paper's §4 observation ("the loop bounds can be shrunk in the
// final SPMD code"): it requires that no statement in the loop executes on
// all processors and that no communication is left inside the loop (which
// would force every processor to walk the full iteration space evaluating
// guards — the simulator's GuardTime models exactly that cost).
type ShrinkInfo struct {
	Loop *ir.Loop
	// GridDim is the grid dimension the iterations are partitioned over.
	GridDim int
	// Kind/Block/Extent describe the distribution of iterations.
	Kind   ast.DistKind
	Block  int64
	Extent int64
	// MaxSkew is the largest |offset| between the loop index and the
	// owning position over the body's statements; processors must extend
	// their local range by this halo.
	MaxSkew int64
}

// LocalRange returns the iteration sub-range (inclusive) a processor
// coordinate executes for global bounds [lo, hi], before halo extension.
// ok is false when the coordinate has no local iterations.
func (s ShrinkInfo) LocalRange(coord, nproc int, lo, hi int64) (int64, int64, bool) {
	switch s.Kind {
	case ast.DistBlock:
		first := int64(coord)*s.Block + 1 // 1-based template position
		last := first + s.Block - 1
		first -= s.MaxSkew
		last += s.MaxSkew
		if first < lo {
			first = lo
		}
		if last > hi {
			last = hi
		}
		return first, last, first <= last
	case ast.DistCyclic:
		// Cyclic shrinking visits every nproc-th iteration; represent the
		// range bounds only (the step is nproc).
		if hi < lo {
			return 0, 0, false
		}
		return lo, hi, true
	}
	return 0, 0, false
}

// ShrinkableLoops identifies the loops whose bounds shrink. A loop
// qualifies when:
//   - every assignment in its body has an ExecOwner/ExecPattern guard whose
//     pattern determines a common grid dimension by an affine position with
//     coefficient 1 on this loop's index, and
//   - no statement in the body carries per-instance communication, and
//   - no statement executes on all processors (ExecAll) or on a dynamic
//     union (ExecUnion is acceptable: it follows the owner statements).
func (p *Program) ShrinkableLoops() map[*ir.Loop]*ShrinkInfo {
	out := map[*ir.Loop]*ShrinkInfo{}
	for _, l := range p.Res.Prog.Loops {
		if info := p.shrinkLoop(l); info != nil {
			out[l] = info
		}
	}
	return out
}

func (p *Program) shrinkLoop(l *ir.Loop) *ShrinkInfo {
	info := &ShrinkInfo{Loop: l, GridDim: -1}
	found := false
	for _, st := range p.Res.Prog.Stmts {
		if !ir.Encloses(l, st.Loop) {
			continue
		}
		sp := p.Stmts[st]
		if sp == nil {
			continue
		}
		if len(sp.PerInstance) > 0 {
			return nil // inner-loop communication defeats shrinking
		}
		switch st.Kind {
		case ir.SGoto, ir.SContinue, ir.SLoopBounds:
			continue
		}
		var pat dist.OwnerPattern
		switch sp.Kind {
		case ExecOwner:
			pat = p.Res.RefPattern(sp.OwnerRef)
		case ExecPattern:
			pat = sp.Scalar.Pattern
		case ExecUnion:
			continue // follows the owner statements
		default:
			return nil // ExecAll in the body
		}
		// Find the grid dim whose position depends on l's index.
		matched := false
		for d := range pat.Dims {
			dp := pat.Dims[d]
			if dp.Repl || !dp.Sub.OK {
				continue
			}
			coef := dp.Sub.CoefOf(l)
			if coef == 0 {
				continue
			}
			if coef != 1 {
				return nil
			}
			if info.GridDim == -1 {
				info.GridDim = d
				info.Kind = dp.Kind
				info.Block = dp.Block
				info.Extent = dp.Extent
			} else if info.GridDim != d || info.Kind != dp.Kind || info.Block != dp.Block {
				return nil // statements partition over different dims
			}
			skew := dp.Sub.Const + dp.Offset
			if skew < 0 {
				skew = -skew
			}
			if skew > info.MaxSkew {
				info.MaxSkew = skew
			}
			matched = true
			found = true
		}
		if !matched {
			// The statement's owners are invariant in l: every processor
			// holding them would execute all iterations — shrinking would
			// be wrong only if ALL statements are like this; it is still
			// fine (they execute their full local set), but it contributes
			// no partitioned dimension.
			continue
		}
	}
	if !found || info.GridDim == -1 {
		return nil
	}
	return info
}

func (s *ShrinkInfo) String() string {
	return fmt.Sprintf("%s-loop shrinks over grid dim %d (%s, block %d, halo %d)",
		s.Loop.Index.Name, s.GridDim, s.Kind, s.Block, s.MaxSkew)
}
