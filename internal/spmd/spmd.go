// Package spmd lowers the mapping decisions and the communication plan into
// an explicit SPMD program: every statement carries an execution-set
// specification (the owner-computes guard), vectorized communication
// operations are attached to the loop they were hoisted to, per-instance
// communications to their statement, and reduction combines to the loop
// after which they run. The form is directly interpretable (package sim)
// and printable (cmd/phpfc).
package spmd

import (
	"fmt"
	"sort"
	"strings"

	"phpf/internal/ast"
	"phpf/internal/comm"
	"phpf/internal/core"
	"phpf/internal/dataflow"
	"phpf/internal/diag"
	"phpf/internal/dist"
	"phpf/internal/ir"
)

// ExecKind describes how a statement's execution set is determined.
type ExecKind int

const (
	// ExecAll: every processor executes the statement.
	ExecAll ExecKind = iota
	// ExecOwner: the owners of OwnerRef execute (owner-computes).
	ExecOwner
	// ExecPattern: the processors matching the scalar mapping's pattern
	// (aligned scalars, reduction results).
	ExecPattern
	// ExecUnion: the union of processors executing the other statements of
	// the current iteration (privatization without alignment, privatized
	// control flow).
	ExecUnion
)

func (k ExecKind) String() string {
	switch k {
	case ExecAll:
		return "all"
	case ExecOwner:
		return "owner"
	case ExecPattern:
		return "pattern"
	case ExecUnion:
		return "union"
	}
	return "?"
}

// StmtPlan is the SPMD execution plan of one statement.
type StmtPlan struct {
	Stmt *ir.Stmt
	Kind ExecKind
	// OwnerRef is the reference whose owners execute (ExecOwner): the lhs
	// for array assignments, the alignment target for aligned scalars, the
	// reduction data reference for reduction updates.
	OwnerRef *ir.Ref
	// Scalar is the mapping decision for scalar assignments (may be nil).
	Scalar *core.ScalarMapping
	// PerInstance lists communications performed at every instance.
	PerInstance []*comm.Requirement
	// Flops is the statement's per-instance computation cost in floating
	// point operations.
	Flops int
	// Combine links a reduction update statement to its loop-exit combine
	// (nil for every other statement). When the runtime reduction mode
	// privatizes the combine, the statement's instances accumulate into
	// private partials instead of storing through the accumulator.
	Combine *Combine
}

// Combine is one reduction whose merge runs at a loop's exit: either the
// §2.3 global collective (today's behavior, the differential reference) or —
// when the reduceplan cleared it and the runtime knob asks for it — a
// deterministic tree merge of per-processor private partials.
type Combine struct {
	// Mapping is the §2.3 reduction-scalar mapping. Nil for elementwise
	// array reductions, which have no scalar mapping (their collective
	// reference is plain per-instance owner-computes execution).
	Mapping *core.ScalarMapping
	// Red is the recognized reduction driving the combine.
	Red *dataflow.Reduction
	// Privatizable: the reduceplan cleared this reduction for privatized
	// execution. Whether the runtime uses it is decided per run
	// (core.ReduceMode), so one compiled program serves both strategies.
	Privatizable bool
	// Reason says why not, when !Privatizable.
	Reason string
	// AccIndex is the dense index of this combine's private partial table
	// in eval.State: assigned over privatizable combines in deterministic
	// (loop ID, statement ID) order; -1 for collective-only combines.
	AccIndex int
}

// Var returns the reduction target variable.
func (c *Combine) Var() *ir.Var { return c.Red.Var }

// LoopPlan carries the operations attached to a loop.
type LoopPlan struct {
	Loop *ir.Loop
	// Hoisted communications performed once per instance of this loop
	// (before the iterations).
	Hoisted []*comm.Requirement
	// Combines lists reductions whose merge runs after this loop completes.
	Combines []*Combine
	// CopyOuts lists lastprivate scalar mappings whose final-iteration
	// value is broadcast from its owner after this loop completes (and
	// after the Combines).
	CopyOuts []*core.ScalarMapping
}

// RecoveryClass describes how a variable's live state is restored on a
// processor after a fail-stop failure: replicated values restore locally
// (every survivor holds a copy, and the restarted processor recomputes or
// re-reads them for free), while aligned or distributed values must be
// refetched from the checkpoint store — the mapping-dependent recovery cost
// the paper's cost model can quantify.
type RecoveryClass int

const (
	// RecoverLocal: replicated state, restored without communication.
	RecoverLocal RecoveryClass = iota
	// RecoverRefetch: partitioned or aligned state, refetched over the
	// network during recovery.
	RecoverRefetch
)

func (c RecoveryClass) String() string {
	if c == RecoverRefetch {
		return "refetch"
	}
	return "local"
}

// Program is the complete SPMD program.
type Program struct {
	Res   *core.Result
	Plan  *comm.Plan
	Stmts map[*ir.Stmt]*StmtPlan
	Loops map[*ir.Loop]*LoopPlan

	// stmtByID/loopByID are the same plans indexed densely by Stmt.ID and
	// Loop.ID — the interpreter's per-instance lookup path (PlanOf,
	// LoopPlanOf) avoids the pointer-keyed maps above, which stay as the
	// stable API for tools and tests.
	stmtByID []*StmtPlan
	loopByID []*LoopPlan
	// Recovery classifies every variable's post-crash restoration cost
	// under the chosen mapping (see RecoveryClass).
	Recovery map[*ir.Var]RecoveryClass
	// NumAcc is the number of privatizable combines — the number of private
	// partial tables a state configured for privatized reduction allocates.
	NumAcc int
	// ReducePlan is the resolved reduction classification the combines were
	// built from (the pipeline's, or derived here for a Result built by
	// calling Analyze directly). It covers every recognized reduction —
	// including those with no combine attached, such as an unmapped scalar
	// reduction or a collective-only array reduction — which is what a
	// reduce=privatize demand must be validated against.
	ReducePlan *dataflow.ReducePlan
	// Diags are the diagnostics communication analysis and SPMD generation
	// emitted (placement notes, generation fallbacks), in emission order.
	Diags []diag.Diagnostic
}

// Grid returns the processor grid the program is mapped onto.
func (p *Program) Grid() *dist.Grid { return p.Res.Mapping.Grid }

// NProcs returns the number of simulated processors the plan targets — the
// degree of parallelism a faithful executor must provide.
func (p *Program) NProcs() int { return p.Res.Mapping.Grid.Size() }

// StmtLabels returns a human-readable label per statement ID ("s3 line 7
// a(i) = ..."), used by the trace recorder to attribute runtime events back
// to source statements.
func (p *Program) StmtLabels() map[int]string {
	out := make(map[int]string, len(p.Res.Prog.Stmts))
	for _, st := range p.Res.Prog.Stmts {
		label := fmt.Sprintf("s%d", st.ID)
		if st.Line > 0 {
			label += fmt.Sprintf(" line %d", st.Line)
		}
		out[st.ID] = label + " " + describeStmt(st)
	}
	return out
}

// Generate builds the SPMD program for a mapping result.
// PlanOf returns the plan of a statement by its dense ID — the hot-path
// equivalent of Stmts[st].
func (p *Program) PlanOf(st *ir.Stmt) *StmtPlan {
	if p.stmtByID != nil && st.ID >= 0 && st.ID < len(p.stmtByID) {
		return p.stmtByID[st.ID]
	}
	return p.Stmts[st]
}

// LoopPlanOf returns the plan of a loop by its dense ID — the hot-path
// equivalent of Loops[l].
func (p *Program) LoopPlanOf(l *ir.Loop) *LoopPlan {
	if p.loopByID != nil && l.ID >= 0 && l.ID < len(p.loopByID) {
		return p.loopByID[l.ID]
	}
	return p.Loops[l]
}

func Generate(res *core.Result) *Program {
	plan := comm.Analyze(res)
	p := &Program{
		Res:   res,
		Plan:  plan,
		Stmts: map[*ir.Stmt]*StmtPlan{},
		Loops: map[*ir.Loop]*LoopPlan{},
	}
	// Execution reads plans by dense statement/loop ID; freeze the variable
	// numbering alongside so a Program built outside the pass pipeline is
	// still slot-indexed (AssignSlots is idempotent).
	ir.AssignSlots(res.Prog)
	p.stmtByID = make([]*StmtPlan, len(res.Prog.Stmts))
	p.loopByID = make([]*LoopPlan, len(res.Prog.Loops))
	for _, st := range res.Prog.Stmts {
		sp := p.planStmt(st)
		p.Stmts[st] = sp
		p.stmtByID[st.ID] = sp
	}
	for _, l := range res.Prog.Loops {
		lp := &LoopPlan{Loop: l, Hoisted: plan.AtLoop[l]}
		p.Loops[l] = lp
		p.loopByID[l.ID] = lp
	}
	// The reduceplan classification normally rides the pipeline result; a
	// Result built by calling Analyze directly derives it here.
	rp := res.ReducePlan
	if rp == nil {
		rp = dataflow.PlanReductions(res.Prog, res.Reductions)
	}
	p.ReducePlan = rp
	// Attach scalar reduction combines to their outermost carried loop.
	for _, m := range res.Scalars {
		if m.Kind != core.ScalarReduction || len(m.RedGridDims) == 0 || m.Red == nil {
			continue
		}
		if m.Red.Stmt != m.Def.Stmt {
			continue // only the update def triggers the combine
		}
		outer := m.Red.Loops[len(m.Red.Loops)-1]
		lp := p.Loops[outer]
		if lp != nil {
			c := &Combine{Mapping: m, Red: m.Red, AccIndex: -1}
			if d := rp.Of(m.Red.Stmt); d != nil {
				c.Privatizable = d.Privatizable
				c.Reason = d.Reason
			} else {
				c.Reason = "not classified by the reduceplan"
			}
			lp.Combines = append(lp.Combines, c)
		} else {
			p.Diags = append(p.Diags, diag.Warningf("spmd", diag.CodeScalarFallback,
				m.Def.Var.Name, m.Red.Stmt.Pos(),
				"no loop plan for the %s-loop; global combine for %s stays per-iteration",
				outer.Index.Name, m.Def.Var.Name))
		}
	}
	// Attach privatizable elementwise (array) reduction combines. Their
	// collective reference is plain owner-computes execution — no scalar
	// mapping, no collective combine — so only the privatized path attaches
	// an operation here, and only when the runtime knob enables it.
	for _, d := range rp.Decisions {
		if !d.Red.IsArray() || !d.Privatizable {
			continue
		}
		outer := d.Red.Loops[len(d.Red.Loops)-1]
		lp := p.Loops[outer]
		if lp == nil {
			p.Diags = append(p.Diags, diag.Warningf("spmd", diag.CodeScalarFallback,
				d.Red.Var.Name, d.Red.Stmt.Pos(),
				"no loop plan for the %s-loop; elementwise reduction %s stays collective",
				outer.Index.Name, d.Red.Var.Name))
			continue
		}
		lp.Combines = append(lp.Combines, &Combine{Red: d.Red, Privatizable: true, AccIndex: -1})
	}
	// Attach lastprivate copy-outs to their privatization loop.
	for _, m := range res.Scalars {
		if !m.LastPrivate || m.PrivLoop == nil || m.Kind != core.ScalarAligned {
			continue
		}
		lp := p.Loops[m.PrivLoop]
		if lp != nil {
			lp.CopyOuts = append(lp.CopyOuts, m)
		} else {
			p.Diags = append(p.Diags, diag.Warningf("spmd", diag.CodeScalarFallback,
				m.Def.Var.Name, m.Def.Stmt.Pos(),
				"no loop plan for the %s-loop; lastprivate copy-out for %s dropped",
				m.PrivLoop.Index.Name, m.Def.Var.Name))
		}
	}
	for _, lp := range p.Loops {
		sort.Slice(lp.Combines, func(i, j int) bool {
			return lp.Combines[i].Red.Stmt.ID < lp.Combines[j].Red.Stmt.ID
		})
		sort.Slice(lp.CopyOuts, func(i, j int) bool {
			return lp.CopyOuts[i].Def.ID < lp.CopyOuts[j].Def.ID
		})
	}
	// Number the privatizable combines densely in (loop ID, statement ID)
	// order — the partial-table index every backend and every processor
	// derives identically — and link each combine back to its update
	// statement's plan so the interpreter can route instances into partials.
	for _, lp := range p.loopByID {
		if lp == nil {
			continue
		}
		for _, c := range lp.Combines {
			if c.Privatizable {
				c.AccIndex = p.NumAcc
				p.NumAcc++
			}
			if sp := p.stmtByID[c.Red.Stmt.ID]; sp != nil {
				sp.Combine = c
			}
		}
	}
	p.Recovery = recoveryClasses(res)
	p.Diags = append(p.Diags, plan.Diags...)
	return p
}

// recoveryClasses classifies each variable's crash-recovery cost: arrays by
// their (static) mapping, scalars by their per-definition mapping decisions
// — a scalar with any aligned or reduction-mapped definition has a uniquely
// owned live copy that must be refetched, while replicated and
// privatized-without-alignment scalars restore locally.
func recoveryClasses(res *core.Result) map[*ir.Var]RecoveryClass {
	out := map[*ir.Var]RecoveryClass{}
	for _, v := range res.Prog.VarList {
		if v.IsLoopIndex {
			continue
		}
		if v.IsArray() {
			am := res.Mapping.Arrays[v]
			if am != nil && !am.FullyReplicated() {
				out[v] = RecoverRefetch
			} else {
				out[v] = RecoverLocal
			}
			continue
		}
		out[v] = RecoverLocal
	}
	for _, m := range res.Scalars {
		if m.Kind == core.ScalarAligned || m.Kind == core.ScalarReduction {
			out[m.Def.Var] = RecoverRefetch
		}
	}
	return out
}

func (p *Program) planStmt(st *ir.Stmt) *StmtPlan {
	res := p.Res
	sp := &StmtPlan{
		Stmt:        st,
		PerInstance: p.Plan.ByStmt[st],
		Flops:       stmtFlops(st),
	}
	switch st.Kind {
	case ir.SAssign:
		if st.Lhs.Var.IsArray() {
			sp.Kind = ExecOwner
			sp.OwnerRef = st.Lhs
			return sp
		}
		m := res.ScalarOfStmt(st)
		sp.Scalar = m
		switch {
		case m == nil || m.Kind == core.ScalarReplicated:
			sp.Kind = ExecAll
		case m.Kind == core.ScalarNoAlign:
			sp.Kind = ExecUnion
		case m.Kind == core.ScalarReduction:
			if m.Red != nil && m.Red.DataRef != nil && m.Red.Stmt == st {
				// The local partial update runs on the data owners.
				sp.Kind = ExecOwner
				sp.OwnerRef = m.Red.DataRef
			} else {
				sp.Kind = ExecPattern
			}
		case m.Kind == core.ScalarAligned:
			sp.Kind = ExecOwner
			sp.OwnerRef = m.Target
		}
	case ir.SIf, ir.SIfGoto:
		if res.CtrlPrivatized(st) {
			sp.Kind = ExecUnion
		} else {
			sp.Kind = ExecAll
		}
	default: // goto, continue, bounds, redistribute
		sp.Kind = ExecAll
	}
	return sp
}

// stmtFlops estimates the floating-point work of one statement instance.
func stmtFlops(st *ir.Stmt) int {
	n := 0
	if st.Rhs != nil {
		n += exprFlops(st.Rhs)
	}
	if st.Cond != nil {
		n += exprFlops(st.Cond)
	}
	if st.Kind == ir.SAssign {
		n++ // the store / addressing share
	}
	return n
}

// exprFlops counts operations in an expression (sqrt and exp weighted
// heavier, per their latency on 1990s hardware).
func exprFlops(e ast.Expr) int {
	n := 0
	ast.Walk(e, func(x ast.Expr) {
		switch c := x.(type) {
		case *ast.BinOp:
			n++
		case *ast.UnaryMinus, *ast.Not:
			n++
		case *ast.Call:
			switch c.Name {
			case "sqrt", "exp":
				n += 8
			default:
				n++
			}
		}
	})
	return n
}

// Dump renders the SPMD program as text, one line per statement with its
// guard and communications — the inspectable "generated code".
func (p *Program) Dump() string {
	shrink := p.ShrinkableLoops()
	var b strings.Builder
	var walk func(nodes []ir.Node, depth int)
	ind := func(d int) string { return strings.Repeat("  ", d) }
	walk = func(nodes []ir.Node, depth int) {
		for _, n := range nodes {
			switch x := n.(type) {
			case *ir.Loop:
				lp := p.Loops[x]
				for _, r := range lp.Hoisted {
					fmt.Fprintf(&b, "%s[comm before %s-loop] %s\n", ind(depth), x.Index.Name, r)
				}
				if si := shrink[x]; si != nil {
					fmt.Fprintf(&b, "%s[shrunk bounds: %s]\n", ind(depth), si)
				}
				fmt.Fprintf(&b, "%sdo %s\n", ind(depth), x.Index.Name)
				walk(x.Body, depth+1)
				fmt.Fprintf(&b, "%send do\n", ind(depth))
				for _, c := range lp.Combines {
					if c.Mapping != nil {
						fmt.Fprintf(&b, "%s[combine %s over grid dims %v%s]\n",
							ind(depth), c.Var().Name, c.Mapping.RedGridDims, combineNote(c))
					} else {
						fmt.Fprintf(&b, "%s[combine array %s%s]\n", ind(depth), c.Var().Name, combineNote(c))
					}
				}
				for _, m := range lp.CopyOuts {
					fmt.Fprintf(&b, "%s[copy-out %s from owner(%s)]\n", ind(depth), m.Def.Var.Name, m.Target)
				}
			case *ir.If:
				p.dumpStmt(&b, x.Cond, depth)
				walk(x.Then, depth+1)
				if len(x.Else) > 0 {
					fmt.Fprintf(&b, "%selse\n", ind(depth))
					walk(x.Else, depth+1)
				}
				fmt.Fprintf(&b, "%send if\n", ind(depth))
			case *ir.Stmt:
				p.dumpStmt(&b, x, depth)
			}
		}
	}
	walk(p.Res.Prog.Body, 0)
	return b.String()
}

// combineNote renders a combine's reduceplan classification for Dump.
func combineNote(c *Combine) string {
	if c.Privatizable {
		return "; privatizable"
	}
	return "; collective-only: " + c.Reason
}

func (p *Program) dumpStmt(b *strings.Builder, st *ir.Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	sp := p.Stmts[st]
	guard := sp.Kind.String()
	if sp.OwnerRef != nil {
		guard = fmt.Sprintf("owner(%s)", sp.OwnerRef)
	}
	for _, r := range sp.PerInstance {
		fmt.Fprintf(b, "%s[comm] %s\n", ind, r)
	}
	fmt.Fprintf(b, "%s[%s] s%d %s\n", ind, guard, st.ID, describeStmt(st))
}

func describeStmt(st *ir.Stmt) string {
	switch st.Kind {
	case ir.SAssign:
		return fmt.Sprintf("%s = ...", st.Lhs)
	case ir.SIf:
		return "if (...)"
	case ir.SIfGoto:
		return fmt.Sprintf("if (...) goto %d", st.Label)
	case ir.SGoto:
		return fmt.Sprintf("goto %d", st.Label)
	case ir.SContinue:
		return fmt.Sprintf("%d continue", st.Label)
	case ir.SRedistribute:
		return fmt.Sprintf("redistribute %s", st.Redist.Array.Name)
	case ir.SLoopBounds:
		return "loop bounds"
	}
	return "?"
}
