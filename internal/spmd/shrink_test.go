package spmd

import (
	"testing"

	"phpf/internal/ast"
	"phpf/internal/core"
)

func TestShrinkSimpleLocalLoop(t *testing.T) {
	src := `
program t
parameter n = 100
real a(n), b(n)
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = b(i) * 2.0
end do
end
`
	p := gen(t, src, 4, core.DefaultOptions())
	shrink := p.ShrinkableLoops()
	loop := p.Res.Prog.Loops[0]
	info := shrink[loop]
	if info == nil {
		t.Fatal("local loop should shrink")
	}
	if info.GridDim != 0 || info.Kind != ast.DistBlock || info.Block != 25 {
		t.Errorf("info = %+v", info)
	}
	if info.MaxSkew != 0 {
		t.Errorf("skew = %d, want 0", info.MaxSkew)
	}
	// Local ranges partition [1,100] into 25-iteration chunks.
	total := int64(0)
	for c := 0; c < 4; c++ {
		lo, hi, ok := info.LocalRange(c, 4, 1, 100)
		if !ok {
			t.Fatalf("coord %d has no range", c)
		}
		total += hi - lo + 1
	}
	if total != 100 {
		t.Errorf("ranges cover %d iterations, want 100", total)
	}
}

func TestShrinkWithHalo(t *testing.T) {
	// The stencil writes a(i) but x is aligned with a(i+1)-style shifted
	// consumers; the skew extends the local range.
	src := `
program t
parameter n = 100
real a(n), b(n)
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 2, n-1
  a(i) = b(i-1) + b(i+1)
end do
end
`
	p := gen(t, src, 4, core.DefaultOptions())
	info := p.ShrinkableLoops()[p.Res.Prog.Loops[0]]
	if info == nil {
		t.Fatal("stencil loop should shrink (communication is hoisted)")
	}
	lo, hi, ok := info.LocalRange(1, 4, 2, 99)
	if !ok || lo > 26 || hi < 50 {
		t.Errorf("range = [%d,%d] ok=%v", lo, hi, ok)
	}
}

func TestNoShrinkWithReplicatedStatement(t *testing.T) {
	src := `
program t
parameter n = 100
real a(n), b(n), u(n)
real x
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  x = u(i)
  a(i) = b(i) + x
end do
end
`
	// u is unmapped/replicated; x's rhs is replicated → x privatized
	// without alignment (union guard), which still shrinks. Force a truly
	// replicated statement instead: a scalar needed by all (loop bound of
	// an inner loop is overkill here, so use the naive strategy).
	opts := core.DefaultOptions()
	opts.Scalars = core.ScalarsReplicated
	p := gen(t, src, 4, opts)
	if info := p.ShrinkableLoops()[p.Res.Prog.Loops[0]]; info != nil {
		t.Errorf("loop with a replicated statement must not shrink: %v", info)
	}
}

func TestNoShrinkWithInnerLoopComm(t *testing.T) {
	// Producer alignment leaves x's communication inside the loop (the
	// Figure 1 y-case): the loop must not shrink.
	src := `
program t
parameter n = 100
real a(n), b(n)
real x
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 2, n-1
  x = a(i) + b(i)
  a(i+1) = x * 0.5
end do
end
`
	p := gen(t, src, 4, core.DefaultOptions())
	if info := p.ShrinkableLoops()[p.Res.Prog.Loops[0]]; info != nil {
		t.Errorf("loop with per-instance communication must not shrink: %v", info)
	}
}

func TestShrinkOuterLoopOnly(t *testing.T) {
	// Column distribution: the j-loop shrinks, the i-loop does not
	// partition anything (its dimension is collapsed) but is harmless.
	src := `
program t
parameter n = 64
real a(n,n), b(n,n)
integer i, j
!hpf$ align b(i,j) with a(i,j)
!hpf$ distribute (*,block) :: a
do j = 1, n
  do i = 1, n
    a(i,j) = b(i,j) * 2.0
  end do
end do
end
`
	p := gen(t, src, 4, core.DefaultOptions())
	shrink := p.ShrinkableLoops()
	jLoop, iLoop := p.Res.Prog.Loops[0], p.Res.Prog.Loops[1]
	if shrink[jLoop] == nil {
		t.Error("j-loop should shrink over the column distribution")
	}
	if shrink[iLoop] != nil {
		t.Error("i-loop has no partitioned dimension to shrink over")
	}
}
