package dist

import (
	"fmt"

	"phpf/internal/ast"
	"phpf/internal/diag"
	"phpf/internal/ir"
)

// AxisMap describes how one array dimension is mapped.
type AxisMap struct {
	// Distributed is false for collapsed (purely local) dimensions.
	Distributed bool
	GridDim     int
	Kind        ast.DistKind // DistBlock or DistCyclic when Distributed
	// Offset shifts the index into the distribution space: element i lives
	// at template position i+Offset (from ALIGN b(i) WITH a(i+off)).
	Offset int64
	// Extent is the distribution-space extent (the distributee's dimension
	// size) and Block the block size ceil(Extent/gridShape[GridDim]).
	Extent int64
	Block  int64
}

// ArrayMap is the resolved mapping of one array onto the grid.
type ArrayMap struct {
	Var  *ir.Var
	Axes []AxisMap
	// Repl[d] is true when the array is replicated across grid dimension d
	// (grid dimensions not targeted by any axis).
	Repl []bool
}

// Mapping resolves all declarative directives of a program onto a concrete
// grid for a given processor count.
type Mapping struct {
	Grid   *Grid
	Arrays map[*ir.Var]*ArrayMap
}

// OwnerDim returns the grid coordinate owning index idx (1-based) along the
// axis, given the grid shape extent nproc.
func (a AxisMap) OwnerDim(idx int64, nproc int) int {
	t := idx + a.Offset - 1 // 0-based template position
	if t < 0 {
		t = 0
	}
	switch a.Kind {
	case ast.DistBlock:
		c := int(t / a.Block)
		if c >= nproc {
			c = nproc - 1
		}
		return c
	case ast.DistCyclic:
		return int(t % int64(nproc))
	}
	return 0
}

// LocalCount returns how many indices of [1..Extent] map to coordinate c.
func (a AxisMap) LocalCount(c, nproc int) int64 {
	switch a.Kind {
	case ast.DistBlock:
		lo := int64(c)*a.Block + 1
		hi := lo + a.Block - 1
		if hi > a.Extent {
			hi = a.Extent
		}
		if lo > a.Extent {
			return 0
		}
		return hi - lo + 1
	case ast.DistCyclic:
		n := a.Extent / int64(nproc)
		if int64(c) < a.Extent%int64(nproc) {
			n++
		}
		return n
	}
	return a.Extent
}

// Owner returns the processor set owning element idx (1-based indices) of
// the array.
func (m *ArrayMap) Owner(g *Grid, idx []int64) ProcSet {
	s := MutableAll(g)
	// Grid dims not replicated and not set by any axis default to
	// coordinate 0 (cannot happen for well-formed mappings, but keep the
	// ownership total).
	for d := 0; d < g.Rank(); d++ {
		if !m.Repl[d] {
			s = s.FixDim(d, 0)
		}
	}
	for dim, ax := range m.Axes {
		if !ax.Distributed {
			continue
		}
		s = s.FixDim(ax.GridDim, ax.OwnerDim(idx[dim], g.Shape[ax.GridDim]))
	}
	return s
}

// FullyReplicated reports whether the array lives on every processor.
func (m *ArrayMap) FullyReplicated() bool {
	for _, ax := range m.Axes {
		if ax.Distributed {
			return false
		}
	}
	for _, r := range m.Repl {
		if !r {
			return false
		}
	}
	return true
}

// DistributedAxes returns the indices of distributed array dimensions.
func (m *ArrayMap) DistributedAxes() []int {
	var out []int
	for d, ax := range m.Axes {
		if ax.Distributed {
			out = append(out, d)
		}
	}
	return out
}

// LocalElems returns the number of elements of the array stored on one
// processor at the given coordinates.
func (m *ArrayMap) LocalElems(g *Grid, procCoords []int) int64 {
	n := int64(1)
	for dim, ax := range m.Axes {
		if !ax.Distributed {
			n *= m.Var.Dims[dim]
			continue
		}
		n *= ax.LocalCount(procCoords[ax.GridDim], g.Shape[ax.GridDim])
	}
	return n
}

// String renders the mapping of one array.
func (m *ArrayMap) String() string {
	s := m.Var.Name + "("
	for i, ax := range m.Axes {
		if i > 0 {
			s += ","
		}
		if !ax.Distributed {
			s += "*"
		} else {
			s += fmt.Sprintf("%s@g%d", ax.Kind, ax.GridDim)
			if ax.Offset != 0 {
				s += fmt.Sprintf("%+d", ax.Offset)
			}
		}
	}
	s += ")"
	for d, r := range m.Repl {
		if r {
			s += fmt.Sprintf(" repl:g%d", d)
		}
	}
	return s
}

// A skipped directive is reported as a diag.Diagnostic with stage "mapping"
// and code diag.CodeDirective: the offending directive was skipped and the
// affected arrays default to replication.

// Resolve interprets the program's directives for nprocs processors.
//
// The grid rank is taken from the PROCESSORS directive if present, else from
// the largest number of distributed dimensions in any DISTRIBUTE directive.
// The shape is a near-balanced factorization of nprocs (the PROCESSORS
// extents give relative ordering only, so one source program can be run at
// any processor count, as in the paper's experiments).
//
// Resolve is strict: the first bad directive is returned as an error.
func Resolve(p *ir.Program, nprocs int) (*Mapping, error) {
	m, _, err := resolve(p, nprocs, false)
	return m, err
}

// ResolveLenient is Resolve in graceful-degradation mode: bad directives are
// skipped and recorded as warning diagnostics instead of aborting, and every array a
// skipped directive would have mapped falls back to replication (always a
// correct, if slower, mapping). The error return covers only conditions no
// mapping can be built under (nprocs < 1).
func ResolveLenient(p *ir.Program, nprocs int) (*Mapping, []diag.Diagnostic, error) {
	return resolve(p, nprocs, true)
}

func resolve(p *ir.Program, nprocs int, lenient bool) (*Mapping, []diag.Diagnostic, error) {
	if nprocs < 1 {
		return nil, nil, fmt.Errorf("dist: nprocs must be >= 1, got %d", nprocs)
	}
	var probs []diag.Diagnostic
	// report returns a non-nil error in strict mode (caller aborts) and
	// records a warning diagnostic in lenient mode (caller skips the
	// directive).
	report := func(pos diag.Pos, subject, format string, args ...interface{}) error {
		if lenient {
			probs = append(probs, diag.Warningf("mapping", diag.CodeDirective, subject, pos, format, args...))
			return nil
		}
		return diag.Errorf("mapping", diag.CodeDirective, pos, format, args...)
	}
	rank := 0
	for _, d := range p.Dirs {
		switch x := d.(type) {
		case *ast.ProcessorsDir:
			if len(x.Extents) > rank {
				rank = len(x.Extents)
			}
		case *ast.DistributeDir:
			n := 0
			for _, f := range x.Formats {
				if f.Kind != ast.DistNone {
					n++
				}
			}
			if n > rank {
				rank = n
			}
		}
	}
	if rank == 0 {
		rank = 1
	}
	grid := NewGrid(FactorShape(nprocs, rank)...)

	m := &Mapping{Grid: grid, Arrays: map[*ir.Var]*ArrayMap{}}

	// Pass 1: direct distributions.
	for _, d := range p.Dirs {
		dd, ok := d.(*ast.DistributeDir)
		if !ok {
			continue
		}
		for _, name := range dd.Arrays {
			v := p.LookupVar(name)
			if v == nil {
				if err := report(diag.Pos{Line: dd.Line, Col: dd.Col}, name, "distribute of undeclared %s", name); err != nil {
					return nil, nil, err
				}
				continue
			}
			if !v.IsArray() {
				if err := report(diag.Pos{Line: dd.Line, Col: dd.Col}, name, "distribute of scalar %s", name); err != nil {
					return nil, nil, err
				}
				continue
			}
			if len(dd.Formats) != v.Rank() {
				if err := report(diag.Pos{Line: dd.Line, Col: dd.Col}, name, "distribute of %s: %d formats for rank %d",
					name, len(dd.Formats), v.Rank()); err != nil {
					return nil, nil, err
				}
				continue
			}
			if _, dup := m.Arrays[v]; dup {
				if err := report(diag.Pos{Line: dd.Line, Col: dd.Col}, name, "%s mapped twice", name); err != nil {
					return nil, nil, err
				}
				continue
			}
			am, derr := DistributeArray(grid, v, dd.Formats)
			if derr != nil {
				if err := report(diag.Pos{Line: dd.Line, Col: dd.Col}, name, "%v", derr); err != nil {
					return nil, nil, err
				}
				continue
			}
			m.Arrays[v] = am
		}
	}

	// Pass 2: alignments (may chain; iterate until resolved).
	type pending struct {
		dir   *ast.AlignDir
		array *ir.Var
	}
	var work []pending
	for _, d := range p.Dirs {
		ad, ok := d.(*ast.AlignDir)
		if !ok {
			continue
		}
		for _, name := range ad.Arrays {
			v := p.LookupVar(name)
			if v == nil {
				if err := report(diag.Pos{Line: ad.Line, Col: ad.Col}, name, "align of undeclared %s", name); err != nil {
					return nil, nil, err
				}
				continue
			}
			work = append(work, pending{dir: ad, array: v})
		}
	}
	for len(work) > 0 {
		progress := false
		var next []pending
		for _, w := range work {
			target := p.LookupVar(w.dir.Target)
			if target == nil {
				if err := report(diag.Pos{Line: w.dir.Line, Col: w.dir.Col}, w.array.Name, "align target %s undeclared", w.dir.Target); err != nil {
					return nil, nil, err
				}
				progress = true
				continue
			}
			tm, ok := m.Arrays[target]
			if !ok {
				next = append(next, w)
				continue
			}
			am, aerr := AlignArray(grid, w.array, w.dir, target, tm)
			if aerr != nil {
				if err := report(diag.Pos{Line: w.dir.Line, Col: w.dir.Col}, w.array.Name, "%v", aerr); err != nil {
					return nil, nil, err
				}
				progress = true
				continue
			}
			if _, dup := m.Arrays[w.array]; dup {
				if err := report(diag.Pos{Line: w.dir.Line, Col: w.dir.Col}, w.array.Name, "%s mapped twice", w.array.Name); err != nil {
					return nil, nil, err
				}
				progress = true
				continue
			}
			m.Arrays[w.array] = am
			progress = true
		}
		if !progress {
			if err := report(diag.Pos{Line: next[0].dir.Line, Col: next[0].dir.Col}, next[0].array.Name,
				"alignment chain for %s cannot be resolved", next[0].array.Name); err != nil {
				return nil, nil, err
			}
			// Lenient: abandon the whole stuck chain; those arrays stay
			// replicated. Record the rest so nothing is silently dropped.
			for _, w := range next[1:] {
				probs = append(probs, diag.Warningf("mapping", diag.CodeDirective, w.array.Name,
					diag.Pos{Line: w.dir.Line, Col: w.dir.Col},
					"alignment chain for %s cannot be resolved", w.array.Name))
			}
			next = nil
		}
		work = next
	}

	// Arrays with no mapping are replicated (HPF default for unmapped data
	// under our compilation model).
	for _, v := range p.VarList {
		if !v.IsArray() {
			continue
		}
		if _, ok := m.Arrays[v]; !ok {
			m.Arrays[v] = ReplicatedArray(grid, v)
		}
	}
	return m, probs, nil
}

// DistributeArray builds the ArrayMap for a directly distributed array. The
// i-th non-collapsed format maps to grid dimension i.
func DistributeArray(grid *Grid, v *ir.Var, formats []ast.DistFormat) (*ArrayMap, error) {
	am := &ArrayMap{Var: v, Axes: make([]AxisMap, v.Rank()), Repl: make([]bool, grid.Rank())}
	gd := 0
	for dim, f := range formats {
		if f.Kind == ast.DistNone {
			am.Axes[dim] = AxisMap{Distributed: false, Extent: v.Dims[dim]}
			continue
		}
		if gd >= grid.Rank() {
			return nil, fmt.Errorf("distribute of %s uses more dimensions than the %s grid",
				v.Name, grid)
		}
		ext := v.Dims[dim]
		am.Axes[dim] = AxisMap{
			Distributed: true,
			GridDim:     gd,
			Kind:        f.Kind,
			Extent:      ext,
			Block:       ceilDiv(ext, int64(grid.Shape[gd])),
		}
		gd++
	}
	// Unused grid dims (grid rank exceeds distributed dims): replicate.
	used := make([]bool, grid.Rank())
	for _, ax := range am.Axes {
		if ax.Distributed {
			used[ax.GridDim] = true
		}
	}
	for d := range am.Repl {
		am.Repl[d] = !used[d]
	}
	return am, nil
}

// ReplicatedArray builds a fully replicated mapping.
func ReplicatedArray(grid *Grid, v *ir.Var) *ArrayMap {
	am := &ArrayMap{Var: v, Axes: make([]AxisMap, v.Rank()), Repl: make([]bool, grid.Rank())}
	for dim := range am.Axes {
		am.Axes[dim] = AxisMap{Distributed: false, Extent: v.Dims[dim]}
	}
	for d := range am.Repl {
		am.Repl[d] = true
	}
	return am
}

// AlignArray builds the ArrayMap of an array aligned with a target:
// source dummy k appearing as target subscript dummy+off maps source dim k
// to the target dim's distribution (with offset). Target "*" subscripts
// replicate over that target dim's grid dimension. The ":" dummy form
// denotes identity alignment of all dimensions.
func AlignArray(grid *Grid, v *ir.Var, ad *ast.AlignDir, target *ir.Var, tm *ArrayMap) (*ArrayMap, error) {
	am := &ArrayMap{Var: v, Axes: make([]AxisMap, v.Rank()), Repl: make([]bool, grid.Rank())}
	// Identity form: align (:) with t(:).
	identity := len(ad.Dummies) == 1 && ad.Dummies[0] == ":"
	if identity {
		if v.Rank() != target.Rank() {
			return nil, fmt.Errorf("align (:) of %s with %s: rank mismatch", v.Name, target.Name)
		}
		copy(am.Axes, tm.Axes)
		copy(am.Repl, tm.Repl)
		return am, nil
	}
	if len(ad.Dummies) != v.Rank() {
		return nil, fmt.Errorf("align of %s: %d dummies for rank %d", v.Name, len(ad.Dummies), v.Rank())
	}
	if len(ad.Subs) != target.Rank() {
		return nil, fmt.Errorf("align with %s: %d subscripts for rank %d",
			target.Name, len(ad.Subs), target.Rank())
	}
	// Start collapsed everywhere.
	for dim := range am.Axes {
		am.Axes[dim] = AxisMap{Distributed: false, Extent: v.Dims[dim]}
	}
	used := make([]bool, grid.Rank())
	for tdim, sub := range ad.Subs {
		tax := tm.Axes[tdim]
		switch {
		case sub.Star:
			// Replicated over the target dim's grid dimension.
			if tax.Distributed {
				am.Repl[tax.GridDim] = true
				used[tax.GridDim] = true
			}
		case sub.Const:
			// Fixed position along that target dim: pin to its owner's
			// coordinate. Represent as an axis-less fixed dimension by
			// adding a zero-extent pseudo axis: simplest is to fold into
			// Repl=false with owner coordinate 0 handling; we instead
			// reject for now (not used by the paper's codes).
			if tax.Distributed {
				return nil, fmt.Errorf("align with constant subscript on distributed dim of %s not supported", target.Name)
			}
		case sub.Dummy == ":":
			return nil, fmt.Errorf("':' subscript requires the (:) dummy form")
		default:
			// Find the source dim with this dummy.
			sdim := -1
			for k, du := range ad.Dummies {
				if du == sub.Dummy {
					sdim = k
				}
			}
			if sdim < 0 {
				return nil, fmt.Errorf("align subscript %s names unknown dummy", sub.Dummy)
			}
			if tax.Distributed {
				am.Axes[sdim] = AxisMap{
					Distributed: true,
					GridDim:     tax.GridDim,
					Kind:        tax.Kind,
					Offset:      tax.Offset + sub.Offset,
					Extent:      tax.Extent,
					Block:       tax.Block,
				}
				used[tax.GridDim] = true
			}
		}
	}
	// Inherit target replication; any grid dim untouched by the alignment
	// is replicated (the source has no coordinate there).
	for d := range am.Repl {
		if tm.Repl[d] {
			am.Repl[d] = true
			used[d] = true
		}
		if !used[d] {
			am.Repl[d] = true
		}
	}
	return am, nil
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
