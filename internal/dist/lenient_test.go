package dist

import (
	"strings"
	"testing"

	"phpf/internal/ir"
	"phpf/internal/parser"
)

func buildProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

const lenientSrc = `
program t
parameter n = 16
real a(n), b(n)
integer i
!hpf$ distribute (block) :: nosuch
!hpf$ distribute (block) :: a
!hpf$ align b(i) with missing(i)
do i = 1, n
  a(i) = 1.0
end do
end
`

// TestResolveLenientSkipsBadDirectives: strict Resolve fails, lenient
// resolution records the problems and maps what it can.
func TestResolveLenientSkipsBadDirectives(t *testing.T) {
	p := buildProg(t, lenientSrc)

	if _, err := Resolve(p, 4); err == nil {
		t.Fatal("strict Resolve accepted a bad directive")
	}

	m, probs, err := ResolveLenient(p, 4)
	if err != nil {
		t.Fatalf("lenient resolve: %v", err)
	}
	if len(probs) != 2 {
		t.Fatalf("want 2 problems, got %d: %v", len(probs), probs)
	}
	if probs[0].Pos.Line != 6 || !strings.Contains(probs[0].Msg, "nosuch") {
		t.Errorf("problem 0 = %v, want undeclared 'nosuch' at line 6", probs[0])
	}
	if probs[1].Pos.Line != 8 || !strings.Contains(probs[1].Msg, "missing") {
		t.Errorf("problem 1 = %v, want undeclared target 'missing' at line 8", probs[1])
	}
	for v, am := range m.Arrays {
		switch v.Name {
		case "a":
			if am.FullyReplicated() {
				t.Error("valid distribute of a was dropped")
			}
		case "b":
			if !am.FullyReplicated() {
				t.Error("b's align was skipped; it must default to replication")
			}
		}
	}
}

// TestResolveLenientStuckChain: an alignment chain with no resolvable root
// is abandoned as a problem set, one entry per stuck array.
func TestResolveLenientStuckChain(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n)
integer i
!hpf$ align a(i) with b(i)
!hpf$ align b(i) with a(i)
do i = 1, n
  a(i) = 1.0
end do
end
`
	p := buildProg(t, src)
	m, probs, err := ResolveLenient(p, 4)
	if err != nil {
		t.Fatalf("lenient resolve: %v", err)
	}
	if len(probs) != 2 {
		t.Fatalf("want one problem per stuck array, got %v", probs)
	}
	for _, am := range m.Arrays {
		if !am.FullyReplicated() {
			t.Errorf("stuck-chain array %s should be replicated", am.Var.Name)
		}
	}
}

// TestResolveLenientCleanProgram: no problems on valid directives, and the
// mapping is identical to strict resolution.
func TestResolveLenientCleanProgram(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n)
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = b(i)
end do
end
`
	p := buildProg(t, src)
	strict, err := Resolve(p, 4)
	if err != nil {
		t.Fatalf("strict: %v", err)
	}
	lenient, probs, err := ResolveLenient(p, 4)
	if err != nil {
		t.Fatalf("lenient: %v", err)
	}
	if len(probs) != 0 {
		t.Fatalf("clean program produced problems: %v", probs)
	}
	for v, sm := range strict.Arrays {
		lm := lenient.Arrays[p.LookupVar(v.Name)]
		if lm.String() != sm.String() {
			t.Errorf("%s: lenient %s != strict %s", v.Name, lm, sm)
		}
	}
}

// TestResolveLenientBadNprocs: conditions no mapping exists under are still
// hard errors.
func TestResolveLenientBadNprocs(t *testing.T) {
	p := buildProg(t, lenientSrc)
	if _, _, err := ResolveLenient(p, 0); err == nil {
		t.Error("nprocs=0 must remain a hard error")
	}
}
