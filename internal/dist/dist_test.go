package dist

import (
	"testing"
	"testing/quick"

	"phpf/internal/ast"
	"phpf/internal/ir"
	"phpf/internal/parser"
)

func mkProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatalf("ir: %v", err)
	}
	return p
}

func TestGridCoordsRoundTrip(t *testing.T) {
	g := NewGrid(4, 2, 3)
	for id := 0; id < g.Size(); id++ {
		if got := g.ID(g.Coords(id)); got != id {
			t.Errorf("roundtrip %d -> %v -> %d", id, g.Coords(id), got)
		}
	}
	if g.Size() != 24 {
		t.Errorf("size = %d", g.Size())
	}
}

func TestFactorShape(t *testing.T) {
	cases := []struct {
		n, rank int
		want    []int
	}{
		{16, 2, []int{4, 4}},
		{8, 2, []int{4, 2}},
		{16, 1, []int{16}},
		{12, 2, []int{4, 3}},
		{7, 2, []int{7, 1}},
		{1, 2, []int{1, 1}},
		{8, 3, []int{2, 2, 2}},
	}
	for _, c := range cases {
		got := FactorShape(c.n, c.rank)
		if len(got) != len(c.want) {
			t.Errorf("FactorShape(%d,%d) = %v", c.n, c.rank, got)
			continue
		}
		prod := 1
		for i := range got {
			prod *= got[i]
			if got[i] != c.want[i] {
				t.Errorf("FactorShape(%d,%d) = %v, want %v", c.n, c.rank, got, c.want)
				break
			}
		}
		if prod != c.n {
			t.Errorf("FactorShape(%d,%d) product = %d", c.n, c.rank, prod)
		}
	}
}

func TestProcSetBasics(t *testing.T) {
	g := NewGrid(4, 4)
	all := AllProcs(g)
	if !all.IsAll() || all.Count() != 16 {
		t.Errorf("all = %v count=%d", all, all.Count())
	}
	row := all.WithDim(0, 2)
	if row.Count() != 4 {
		t.Errorf("row count = %d", row.Count())
	}
	single := row.WithDim(1, 3)
	id, ok := single.IsSingle()
	if !ok || id != g.ID([]int{2, 3}) {
		t.Errorf("single = %v id=%d", single, id)
	}
	if !row.Contains(id) || !all.Contains(id) {
		t.Error("containment failed")
	}
	u := single.Union(all.WithDim(0, 2).WithDim(1, 1))
	if c, ok := u.Fixed(0); !ok || c != 2 {
		t.Errorf("union fixed dim0 = %v", u)
	}
	if _, ok := u.Fixed(1); ok {
		t.Errorf("union dim1 should be all: %v", u)
	}
	if len(single.Procs()) != 1 || len(row.Procs()) != 4 {
		t.Error("Procs enumeration wrong")
	}
}

func TestResolveBlockDistribution(t *testing.T) {
	p := mkProg(t, `
program t
parameter n = 100
real a(n), b(n)
!hpf$ align (i) with a(i) :: b
!hpf$ distribute (block) :: a
a(1) = 0.0
end
`)
	m, err := Resolve(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Grid.Rank() != 1 || m.Grid.Shape[0] != 4 {
		t.Fatalf("grid = %v", m.Grid)
	}
	a := m.Arrays[p.LookupVar("a")]
	if !a.Axes[0].Distributed || a.Axes[0].Kind != ast.DistBlock || a.Axes[0].Block != 25 {
		t.Errorf("a axes = %+v", a.Axes)
	}
	// Ownership: element 1 on proc 0, element 26 on proc 1, element 100 on
	// proc 3.
	own := func(arr *ArrayMap, i int64) int {
		id, ok := arr.Owner(m.Grid, []int64{i}).IsSingle()
		if !ok {
			t.Fatalf("owner of %d not single", i)
		}
		return id
	}
	if own(a, 1) != 0 || own(a, 26) != 1 || own(a, 100) != 3 {
		t.Errorf("owners = %d %d %d", own(a, 1), own(a, 26), own(a, 100))
	}
	// b aligned identically.
	b := m.Arrays[p.LookupVar("b")]
	for _, i := range []int64{1, 25, 26, 99, 100} {
		if own(a, i) != own(b, i) {
			t.Errorf("a and b disagree at %d", i)
		}
	}
}

func TestResolveAlignOffset(t *testing.T) {
	p := mkProg(t, `
program t
parameter n = 100
real a(n), b(n)
!hpf$ align b(i) with a(i+1)
!hpf$ distribute (block) :: a
a(1) = 0.0
end
`)
	m, err := Resolve(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Arrays[p.LookupVar("a")]
	b := m.Arrays[p.LookupVar("b")]
	// b(i) is aligned with a(i+1): owner(b,25) == owner(a,26).
	oa, _ := a.Owner(m.Grid, []int64{26}).IsSingle()
	ob, _ := b.Owner(m.Grid, []int64{25}).IsSingle()
	if oa != ob {
		t.Errorf("owner(a,26)=%d owner(b,25)=%d", oa, ob)
	}
}

func TestResolveReplicatedAlign(t *testing.T) {
	p := mkProg(t, `
program t
parameter n = 100
real a(n), e(n)
!hpf$ align (i) with a(*) :: e
!hpf$ distribute (block) :: a
a(1) = 0.0
end
`)
	m, err := Resolve(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Arrays[p.LookupVar("e")]
	if !e.FullyReplicated() {
		t.Errorf("e = %v, want fully replicated", e)
	}
	if !e.Owner(m.Grid, []int64{5}).IsAll() {
		t.Error("owner of replicated element should be all procs")
	}
}

func TestResolvePartialReplicationAlign(t *testing.T) {
	// b(i) with a(i,*): b distributed like a's rows, replicated across the
	// grid dim of a's columns.
	p := mkProg(t, `
program t
parameter n = 64
real a(n,n), b(n)
!hpf$ align b(i) with a(i,*)
!hpf$ distribute (block,block) :: a
a(1,1) = 0.0
end
`)
	m, err := Resolve(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Grid.Rank() != 2 {
		t.Fatalf("grid = %v", m.Grid)
	}
	b := m.Arrays[p.LookupVar("b")]
	if !b.Axes[0].Distributed || b.Axes[0].GridDim != 0 {
		t.Errorf("b axes = %+v", b.Axes)
	}
	if !b.Repl[1] || b.Repl[0] {
		t.Errorf("b repl = %v, want [false true]", b.Repl)
	}
	own := b.Owner(m.Grid, []int64{1})
	if c, ok := own.Fixed(0); !ok || c != 0 {
		t.Errorf("owner = %v", own)
	}
	if _, ok := own.Fixed(1); ok {
		t.Errorf("owner should span grid dim 1: %v", own)
	}
	if own.Count() != 4 {
		t.Errorf("owner count = %d, want 4", own.Count())
	}
}

func TestResolveCyclic(t *testing.T) {
	p := mkProg(t, `
program t
parameter n = 10
real a(n,n)
!hpf$ distribute (*,cyclic) :: a
a(1,1) = 0.0
end
`)
	m, err := Resolve(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Arrays[p.LookupVar("a")]
	if a.Axes[0].Distributed {
		t.Error("dim 1 should be collapsed")
	}
	owners := make([]int, 0, 8)
	for j := int64(1); j <= 8; j++ {
		id, _ := a.Owner(m.Grid, []int64{3, j}).IsSingle()
		owners = append(owners, id)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if owners[i] != want[i] {
			t.Errorf("cyclic owners = %v, want %v", owners, want)
			break
		}
	}
}

func TestResolveUnmappedArrayReplicated(t *testing.T) {
	p := mkProg(t, `
program t
parameter n = 8
real a(n), u(n)
!hpf$ distribute (block) :: a
a(1) = u(1)
end
`)
	m, err := Resolve(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := m.Arrays[p.LookupVar("u")]
	if !u.FullyReplicated() {
		t.Error("unmapped array should be replicated")
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []string{
		// distribute scalar
		"program t\nreal x\n!hpf$ distribute (block) :: x\nx = 1.0\nend\n",
		// rank mismatch
		"program t\nreal a(4,4)\n!hpf$ distribute (block) :: a\na(1,1) = 0.0\nend\n",
		// double mapping
		"program t\nreal a(4)\n!hpf$ distribute (block) :: a\n!hpf$ distribute (cyclic) :: a\na(1) = 0.0\nend\n",
		// unresolvable alignment chain (target never distributed... b->c->b)
		"program t\nreal b(4), c(4)\n!hpf$ align b(i) with c(i)\n!hpf$ align c(i) with b(i)\nb(1) = 0.0\nend\n",
	}
	for _, src := range cases {
		p := mkProg(t, src)
		if _, err := Resolve(p, 4); err == nil {
			t.Errorf("expected Resolve error for:\n%s", src)
		}
	}
}

// Property: block and cyclic distributions partition the index space — each
// index is owned by exactly one coordinate, and per-coordinate local counts
// sum to the extent.
func TestOwnershipPartitionProperty(t *testing.T) {
	check := func(extentRaw int16, nprocRaw, kindRaw uint8) bool {
		extent := int64(extentRaw) % 500
		if extent < 0 {
			extent = -extent
		}
		extent++
		nproc := int(nprocRaw%16) + 1
		kind := ast.DistBlock
		if kindRaw%2 == 1 {
			kind = ast.DistCyclic
		}
		ax := AxisMap{
			Distributed: true, GridDim: 0, Kind: kind,
			Extent: extent, Block: (extent + int64(nproc) - 1) / int64(nproc),
		}
		counts := make([]int64, nproc)
		for i := int64(1); i <= extent; i++ {
			c := ax.OwnerDim(i, nproc)
			if c < 0 || c >= nproc {
				return false
			}
			counts[c]++
		}
		var sum int64
		for c := 0; c < nproc; c++ {
			if counts[c] != ax.LocalCount(c, nproc) {
				return false
			}
			sum += counts[c]
		}
		return sum == extent
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: grid Coords/ID are inverse bijections.
func TestGridBijectionProperty(t *testing.T) {
	check := func(a, b, c uint8) bool {
		g := NewGrid(int(a%5)+1, int(b%5)+1, int(c%5)+1)
		for id := 0; id < g.Size(); id++ {
			if g.ID(g.Coords(id)) != id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ProcSet.Union over-approximates membership of both operands.
func TestProcSetUnionProperty(t *testing.T) {
	g := NewGrid(3, 4)
	check := func(a0, a1, b0, b1 uint8) bool {
		mk := func(x0, x1 uint8) ProcSet {
			s := AllProcs(g)
			if x0%2 == 0 {
				s = s.WithDim(0, int(x0)%3)
			}
			if x1%2 == 0 {
				s = s.WithDim(1, int(x1)%4)
			}
			return s
		}
		sa, sb := mk(a0, a1), mk(b0, b1)
		u := sa.Union(sb)
		for id := 0; id < g.Size(); id++ {
			if (sa.Contains(id) || sb.Contains(id)) && !u.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
