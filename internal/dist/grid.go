// Package dist implements HPF data mapping: processor grids, DISTRIBUTE
// formats (block / cyclic / collapsed), ALIGN relations, and the ownership
// functions that the owner-computes rule and communication analysis are
// built on.
package dist

import (
	"fmt"
	"strings"
)

// Grid is a (virtual) processor grid of one or more dimensions.
type Grid struct {
	Shape []int

	// all is the shared "every dimension spans" coordinate vector AllProcs
	// hands out. ProcSet operations copy on write, so sharing is safe; it
	// removes the allocation from the hottest set constructor. Lazily
	// rebuilt for Grid values constructed without NewGrid.
	all []int
}

// NewGrid returns a grid with the given shape.
func NewGrid(shape ...int) *Grid {
	s := make([]int, len(shape))
	copy(s, shape)
	g := &Grid{Shape: s}
	g.all = makeAll(len(s))
	return g
}

func makeAll(rank int) []int {
	a := make([]int, rank)
	for i := range a {
		a[i] = -1
	}
	return a
}

// Rank returns the number of grid dimensions.
func (g *Grid) Rank() int { return len(g.Shape) }

// Size returns the total number of processors.
func (g *Grid) Size() int {
	n := 1
	for _, d := range g.Shape {
		n *= d
	}
	return n
}

// Coords converts a linear processor id (row-major, dimension 0 slowest) to
// grid coordinates.
func (g *Grid) Coords(id int) []int {
	c := make([]int, len(g.Shape))
	for d := len(g.Shape) - 1; d >= 0; d-- {
		c[d] = id % g.Shape[d]
		id /= g.Shape[d]
	}
	return c
}

// ID converts grid coordinates to the linear processor id.
func (g *Grid) ID(coords []int) int {
	id := 0
	for d, c := range coords {
		id = id*g.Shape[d] + c
	}
	return id
}

func (g *Grid) String() string {
	parts := make([]string, len(g.Shape))
	for i, d := range g.Shape {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "(" + strings.Join(parts, "x") + ")"
}

// FactorShape factors nprocs into rank near-balanced dimensions (larger
// factors first), e.g. 16 over rank 2 → [4 4], 8 over rank 2 → [4 2].
func FactorShape(nprocs, rank int) []int {
	if rank <= 1 {
		return []int{nprocs}
	}
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = 1
	}
	remaining := nprocs
	// Repeatedly take the smallest prime factor and assign it to the
	// currently smallest dimension; assign large factors first for balance.
	var factors []int
	for f := 2; f*f <= remaining; f++ {
		for remaining%f == 0 {
			factors = append(factors, f)
			remaining /= f
		}
	}
	if remaining > 1 {
		factors = append(factors, remaining)
	}
	// Largest factors first.
	for i := len(factors) - 1; i >= 0; i-- {
		// Find the smallest dimension.
		minDim := 0
		for d := 1; d < rank; d++ {
			if shape[d] < shape[minDim] {
				minDim = d
			}
		}
		shape[minDim] *= factors[i]
	}
	// Sort descending so dimension 0 is largest (deterministic layout).
	for i := 0; i < rank; i++ {
		for j := i + 1; j < rank; j++ {
			if shape[j] > shape[i] {
				shape[i], shape[j] = shape[j], shape[i]
			}
		}
	}
	return shape
}

// ProcSet is a rectangular set of processors described per grid dimension:
// either a fixed coordinate or "all coordinates". This closed form covers
// everything owner-computes needs (owners of a reference, replication sets,
// reduction groups).
type ProcSet struct {
	grid *Grid
	// coord[d] is the fixed coordinate in dimension d, or -1 for all.
	coord []int
}

// AllProcs is the set of all processors in the grid. The returned set
// shares the grid's canonical "all" coordinates; every ProcSet operation is
// copy-on-write, so the sharing is invisible to callers.
func AllProcs(g *Grid) ProcSet {
	if len(g.all) != len(g.Shape) {
		g.all = makeAll(len(g.Shape))
	}
	return ProcSet{grid: g, coord: g.all}
}

// MutableAll is an all-covering set with private coordinate storage, for
// builders that fix dimensions in place via FixDim (one allocation for a
// whole WithDim chain). Sets from the other constructors may share storage
// and must be narrowed with WithDim instead.
func MutableAll(g *Grid) ProcSet {
	return ProcSet{grid: g, coord: makeAll(g.Rank())}
}

// FixDim fixes dimension d to c in place and returns the receiver. Only
// valid on sets created by MutableAll (see there).
func (s ProcSet) FixDim(d, c int) ProcSet {
	s.coord[d] = c
	return s
}

// SingleProc is the singleton set {coords}.
func SingleProc(g *Grid, coords []int) ProcSet {
	c := make([]int, g.Rank())
	copy(c, coords)
	return ProcSet{grid: g, coord: c}
}

// Grid returns the grid this set ranges over.
func (s ProcSet) Grid() *Grid { return s.grid }

// Fixed reports whether dimension d has a fixed coordinate, and which.
func (s ProcSet) Fixed(d int) (int, bool) {
	if s.coord[d] < 0 {
		return 0, false
	}
	return s.coord[d], true
}

// WithDim returns a copy with dimension d fixed to c (or all if c == -1).
func (s ProcSet) WithDim(d, c int) ProcSet {
	nc := make([]int, len(s.coord))
	copy(nc, s.coord)
	nc[d] = c
	return ProcSet{grid: s.grid, coord: nc}
}

// IsAll reports whether the set covers the whole grid.
func (s ProcSet) IsAll() bool {
	for _, c := range s.coord {
		if c >= 0 {
			return false
		}
	}
	return true
}

// IsSingle reports whether the set is a single processor, and its id.
func (s ProcSet) IsSingle() (int, bool) {
	for _, c := range s.coord {
		if c < 0 {
			return 0, false
		}
	}
	return s.grid.ID(s.coord), true
}

// Count returns the number of processors in the set.
func (s ProcSet) Count() int {
	n := 1
	for d, c := range s.coord {
		if c < 0 {
			n *= s.grid.Shape[d]
		}
	}
	return n
}

// Contains reports whether processor id is in the set.
func (s ProcSet) Contains(id int) bool {
	// Decode the id inline (dimension 0 slowest) instead of materializing
	// the coordinate vector; this runs on per-instance paths.
	for d := len(s.coord) - 1; d >= 0; d-- {
		ext := s.grid.Shape[d]
		c := id % ext
		id /= ext
		if w := s.coord[d]; w >= 0 && c != w {
			return false
		}
	}
	return true
}

// First returns the smallest processor id in the set (the deterministic
// representative Procs()[0] names, without building the slice).
func (s ProcSet) First() int {
	id := 0
	for d, c := range s.coord {
		if c < 0 {
			c = 0
		}
		id = id*s.grid.Shape[d] + c
	}
	return id
}

// Each calls f for every processor id in the set, ascending.
func (s ProcSet) Each(f func(id int)) {
	if id, ok := s.IsSingle(); ok {
		f(id)
		return
	}
	total := s.grid.Size()
	for id := 0; id < total; id++ {
		if s.Contains(id) {
			f(id)
		}
	}
}

// Procs enumerates the processor ids in the set, ascending.
func (s ProcSet) Procs() []int {
	if id, ok := s.IsSingle(); ok {
		return []int{id}
	}
	out := make([]int, 0, s.Count())
	total := s.grid.Size()
	for id := 0; id < total; id++ {
		if s.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// Union returns the smallest rectangular set covering both (dimension-wise:
// coordinates that differ become "all"). This over-approximation keeps
// owner sets in closed form; exact for the patterns owner-computes yields.
func (s ProcSet) Union(o ProcSet) ProcSet {
	nc := make([]int, len(s.coord))
	for d := range nc {
		if s.coord[d] == o.coord[d] {
			nc[d] = s.coord[d]
		} else {
			nc[d] = -1
		}
	}
	return ProcSet{grid: s.grid, coord: nc}
}

// CoversSet reports whether every processor of o is in s.
func (s ProcSet) CoversSet(o ProcSet) bool {
	for d := range s.coord {
		if s.coord[d] < 0 {
			continue // s spans the dimension
		}
		if o.coord[d] != s.coord[d] {
			return false // o has a different fixed coord, or spans the dim
		}
	}
	return true
}

// Equal reports set equality.
func (s ProcSet) Equal(o ProcSet) bool {
	if len(s.coord) != len(o.coord) {
		return false
	}
	for d := range s.coord {
		if s.coord[d] != o.coord[d] {
			return false
		}
	}
	return true
}

func (s ProcSet) String() string {
	parts := make([]string, len(s.coord))
	for d, c := range s.coord {
		if c < 0 {
			parts[d] = "*"
		} else {
			parts[d] = fmt.Sprintf("%d", c)
		}
	}
	return "P(" + strings.Join(parts, ",") + ")"
}
