package dist

import (
	"strings"
	"testing"

	"phpf/internal/ir"
	"phpf/internal/parser"
)

// mkPatternEnv builds a program with two aligned arrays and one offset
// array in an i-loop, returning the refs and loop used by pattern tests.
func mkPatternEnv(t *testing.T) (*ir.Program, *Mapping, map[string]*ir.Ref) {
	t.Helper()
	src := `
program t
parameter n = 100
real a(n), b(n), e(n), g(n,n)
integer i, m
!hpf$ align b(i) with a(i)
!hpf$ align (i) with a(*) :: e
!hpf$ distribute (block) :: a
!hpf$ distribute (*,cyclic) :: g
m = 1
do i = 2, n-1
  a(i) = b(i) + b(i-1) + e(i) + g(1,i) + a(m)
end do
end
`
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Resolve(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	refs := map[string]*ir.Ref{}
	for _, r := range p.Refs {
		key := r.String()
		if r.IsDef {
			key = "def:" + key
		}
		refs[key] = r
	}
	return p, m, refs
}

func patOf(m *Mapping, r *ir.Ref) OwnerPattern {
	return PatternOf(m.Grid, m.Arrays[r.Var], r)
}

func TestPatternCoversAligned(t *testing.T) {
	_, m, refs := mkPatternEnv(t)
	lhs := patOf(m, refs["def:a(i)"])
	bi := patOf(m, refs["b(i)"])
	if !Covers(bi, lhs) || !Covers(lhs, bi) {
		t.Errorf("b(i) and a(i) should cover each other: %v vs %v", bi, lhs)
	}
}

func TestPatternShiftClassification(t *testing.T) {
	_, m, refs := mkPatternEnv(t)
	lhs := patOf(m, refs["def:a(i)"])
	bm1 := patOf(m, refs["b((i - 1))"])
	if Covers(bm1, lhs) {
		t.Error("b(i-1) does not cover a(i)")
	}
	if got := Classify(bm1, lhs); got != CommShift {
		t.Errorf("classify(b(i-1) -> a(i)) = %v, want shift", got)
	}
}

func TestPatternReplicatedSourceCovers(t *testing.T) {
	_, m, refs := mkPatternEnv(t)
	lhs := patOf(m, refs["def:a(i)"])
	e := patOf(m, refs["e(i)"])
	if !e.IsReplicated() {
		t.Fatalf("e should be replicated: %v", e)
	}
	if !Covers(e, lhs) {
		t.Error("replicated data covers everything")
	}
	if got := Classify(e, lhs); got != CommNone {
		t.Errorf("classify = %v, want none", got)
	}
}

func TestPatternBroadcastClassification(t *testing.T) {
	_, m, refs := mkPatternEnv(t)
	bi := patOf(m, refs["b(i)"])
	repl := ReplicatedPattern(m.Grid)
	if got := Classify(bi, repl); got != CommBcast {
		t.Errorf("classify(partitioned -> all) = %v, want broadcast", got)
	}
}

func TestPatternGeneralClassification(t *testing.T) {
	_, m, refs := mkPatternEnv(t)
	lhs := patOf(m, refs["def:a(i)"])
	am := patOf(m, refs["a(m)"]) // non-affine subscript
	if got := Classify(am, lhs); got != CommGeneral {
		t.Errorf("classify(a(m) -> a(i)) = %v, want general", got)
	}
	// Different distribution kinds are also general.
	g := patOf(m, refs["g(1,i)"])
	if got := Classify(g, lhs); got != CommGeneral {
		t.Errorf("classify(cyclic -> block) = %v, want general", got)
	}
}

func TestPatternCloneIsolation(t *testing.T) {
	_, m, refs := mkPatternEnv(t)
	p1 := patOf(m, refs["b(i)"])
	p2 := p1.Clone()
	p2.Dims[0] = DimPattern{Repl: true}
	if p1.Dims[0].Repl {
		t.Error("Clone shares the Dims slice")
	}
}

func TestPatternVariesInLoop(t *testing.T) {
	p, m, refs := mkPatternEnv(t)
	loop := p.Loops[0]
	bi := patOf(m, refs["b(i)"])
	if !bi.VariesInLoop(loop) {
		t.Error("b(i)'s owner varies with i")
	}
	e := patOf(m, refs["e(i)"])
	if e.VariesInLoop(loop) {
		t.Error("replicated pattern varies nowhere")
	}
}

func TestPatternString(t *testing.T) {
	_, m, refs := mkPatternEnv(t)
	s := patOf(m, refs["b(i)"]).String()
	if !strings.Contains(s, "block") {
		t.Errorf("pattern string = %q", s)
	}
	if rs := ReplicatedPattern(m.Grid).String(); rs != "<*>" {
		t.Errorf("replicated string = %q", rs)
	}
}

func TestProcSetCoversSetAndEqual(t *testing.T) {
	g := NewGrid(4, 2)
	all := AllProcs(g)
	row := all.WithDim(0, 1)
	cell := row.WithDim(1, 0)
	if !all.CoversSet(row) || !row.CoversSet(cell) {
		t.Error("covers relation broken")
	}
	if cell.CoversSet(row) || row.CoversSet(all) {
		t.Error("covers relation too permissive")
	}
	if !row.Equal(all.WithDim(0, 1)) || row.Equal(cell) {
		t.Error("equality broken")
	}
	if s := cell.String(); s != "P(1,0)" {
		t.Errorf("string = %q", s)
	}
	if s := SingleProc(g, []int{2, 1}); !s.Contains(g.ID([]int{2, 1})) {
		t.Error("SingleProc wrong")
	}
	if row.Grid() != g {
		t.Error("Grid accessor wrong")
	}
}

func TestGridString(t *testing.T) {
	if s := NewGrid(4, 4).String(); s != "(4x4)" {
		t.Errorf("grid string = %q", s)
	}
}

func TestArrayMapHelpers(t *testing.T) {
	p, m, _ := mkPatternEnv(t)
	a := m.Arrays[p.LookupVar("a")]
	if axes := a.DistributedAxes(); len(axes) != 1 || axes[0] != 0 {
		t.Errorf("distributed axes = %v", axes)
	}
	// Block over 100 elements on 4 procs: 25 each.
	for c := 0; c < 4; c++ {
		if n := a.LocalElems(m.Grid, []int{c}); n != 25 {
			t.Errorf("local elems at %d = %d", c, n)
		}
	}
	if s := a.String(); !strings.Contains(s, "block") {
		t.Errorf("array map string = %q", s)
	}
	g := m.Arrays[p.LookupVar("g")]
	// g is (*,cyclic): 100 columns over 4 procs = 25 each, times 100 rows.
	if n := g.LocalElems(m.Grid, []int{0}); n != 2500 {
		t.Errorf("g local elems = %d", n)
	}
}
