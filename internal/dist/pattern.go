package dist

import (
	"fmt"
	"strings"

	"phpf/internal/ast"
	"phpf/internal/ir"
)

// DimPattern describes, symbolically, which coordinate of one grid dimension
// holds a reference's data, as a function of the enclosing loop indices.
type DimPattern struct {
	// Repl: the data is present at every coordinate of this grid dimension.
	Repl bool
	// Otherwise the coordinate is determined by a distribution of kind Kind
	// (block size Block over extent Extent) applied at position Sub+Offset.
	Kind   ast.DistKind
	Block  int64
	Extent int64
	Sub    ir.Affine // affine subscript (Sub.OK false → data-dependent position)
	Offset int64
}

// OwnerPattern is the symbolic owner of a reference: one DimPattern per grid
// dimension.
type OwnerPattern struct {
	Grid *Grid
	Dims []DimPattern
}

// Clone returns a deep copy (the Dims slice is not shared). Use before any
// in-place modification of a pattern obtained from shared state.
func (p OwnerPattern) Clone() OwnerPattern {
	dims := make([]DimPattern, len(p.Dims))
	copy(dims, p.Dims)
	return OwnerPattern{Grid: p.Grid, Dims: dims}
}

// ReplicatedPattern is the pattern of fully replicated data.
func ReplicatedPattern(g *Grid) OwnerPattern {
	dims := make([]DimPattern, g.Rank())
	for i := range dims {
		dims[i].Repl = true
	}
	return OwnerPattern{Grid: g, Dims: dims}
}

// PatternOf computes the owner pattern of an array reference under the
// array's mapping.
func PatternOf(g *Grid, am *ArrayMap, ref *ir.Ref) OwnerPattern {
	p := OwnerPattern{Grid: g, Dims: make([]DimPattern, g.Rank())}
	for d := range p.Dims {
		if am.Repl[d] {
			p.Dims[d].Repl = true
		} else {
			// Determined below by an axis, or pinned at coordinate 0.
			p.Dims[d] = DimPattern{Kind: ast.DistBlock, Block: 1, Extent: 1,
				Sub: ir.Affine{OK: true, Const: 1}}
		}
	}
	for dim, ax := range am.Axes {
		if !ax.Distributed {
			continue
		}
		p.Dims[ax.GridDim] = DimPattern{
			Kind:   ax.Kind,
			Block:  ax.Block,
			Extent: ax.Extent,
			Sub:    ref.Subs[dim],
			Offset: ax.Offset,
		}
	}
	return p
}

// affineDelta returns b-a when both are affine with identical loop terms.
// Terms are matched by index variable (not loop identity) so that congruent
// loop nests — e.g. a producer and a consumer nest both iterating over j —
// compare equal, which is what the paper's co-location arguments rely on.
func affineDelta(a, b ir.Affine) (int64, bool) {
	if !a.OK || !b.OK || len(a.Terms) != len(b.Terms) {
		return 0, false
	}
	for i := range a.Terms {
		if a.Terms[i].Loop.Index != b.Terms[i].Loop.Index ||
			a.Terms[i].Coef != b.Terms[i].Coef {
			return 0, false
		}
	}
	return b.Const - a.Const, true
}

// sameDim reports whether two dim patterns denote the same coordinate at
// every iteration.
func sameDim(a, b DimPattern) bool {
	if a.Repl || b.Repl {
		return a.Repl && b.Repl
	}
	if a.Kind != b.Kind || a.Block != b.Block || a.Extent != b.Extent {
		return false
	}
	delta, ok := affineDelta(a.Sub, b.Sub)
	if !ok {
		return false
	}
	return delta+b.Offset-a.Offset == 0
}

// Covers reports whether data with pattern src is present wherever pattern
// dst requires it, at every iteration (no communication needed).
func Covers(src, dst OwnerPattern) bool {
	for d := range src.Dims {
		if src.Dims[d].Repl {
			continue
		}
		if dst.Dims[d].Repl {
			return false // needed everywhere, held at one coordinate
		}
		if !sameDim(src.Dims[d], dst.Dims[d]) {
			return false
		}
	}
	return true
}

// CommClass classifies the communication needed to move data from src to
// dst.
type CommClass int

const (
	// CommNone: src covers dst.
	CommNone CommClass = iota
	// CommShift: owners differ by a constant position offset along grid
	// dimensions (nearest-neighbor style collective shift).
	CommShift
	// CommBcast: data at one coordinate needed at all coordinates of some
	// grid dimension.
	CommBcast
	// CommGeneral: anything else (data-dependent or unstructured).
	CommGeneral
)

func (c CommClass) String() string {
	switch c {
	case CommNone:
		return "none"
	case CommShift:
		return "shift"
	case CommBcast:
		return "broadcast"
	}
	return "general"
}

// Classify determines the communication class for moving a reference's data
// from src to dst.
func Classify(src, dst OwnerPattern) CommClass {
	if Covers(src, dst) {
		return CommNone
	}
	bcast := false
	shift := false
	general := false
	for d := range src.Dims {
		s, t := src.Dims[d], dst.Dims[d]
		if s.Repl {
			continue
		}
		if t.Repl {
			bcast = true
			continue
		}
		if sameDim(s, t) {
			continue
		}
		// Same distribution, constant position offset → shift.
		if s.Kind == t.Kind && s.Block == t.Block && s.Extent == t.Extent {
			if delta, ok := affineDelta(s.Sub, t.Sub); ok {
				_ = delta
				shift = true
				continue
			}
		}
		general = true
	}
	switch {
	case general:
		return CommGeneral
	case bcast:
		return CommBcast
	case shift:
		return CommShift
	default:
		return CommGeneral
	}
}

// VariesIn reports whether the pattern's coordinate in grid dimension d can
// change across iterations of loop l.
func (p OwnerPattern) VariesIn(d int, l *ir.Loop) bool {
	dp := p.Dims[d]
	if dp.Repl {
		return false
	}
	return dp.Sub.VariesIn(l)
}

// VariesInLoop reports whether any coordinate changes across iterations of l.
func (p OwnerPattern) VariesInLoop(l *ir.Loop) bool {
	for d := range p.Dims {
		if p.VariesIn(d, l) {
			return true
		}
	}
	return false
}

// IsReplicated reports whether the pattern covers the whole grid.
func (p OwnerPattern) IsReplicated() bool {
	for _, d := range p.Dims {
		if !d.Repl {
			return false
		}
	}
	return true
}

func (p OwnerPattern) String() string {
	parts := make([]string, len(p.Dims))
	for d, dp := range p.Dims {
		if dp.Repl {
			parts[d] = "*"
		} else {
			parts[d] = fmt.Sprintf("%s[%s%+d]", dp.Kind, dp.Sub, dp.Offset)
		}
	}
	return "<" + strings.Join(parts, "|") + ">"
}
