package lexer

import (
	"strings"
	"unicode"

	"phpf/internal/diag"
)

// Error is a lexical error: a positioned diagnostic with stage "lex" and
// code diag.CodeLex.
type Error = diag.Diagnostic

// Lexer scans source text into tokens.
type Lexer struct {
	src         string
	pos         int
	line, col   int
	inDirective bool // inside a !hpf$ line: recognize directive keywords
	atLineStart bool
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, atLineStart: true}
}

// Scan tokenizes the entire input. Consecutive newlines are collapsed into a
// single Newline token and a final Newline is guaranteed before EOF.
func Scan(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == Newline && len(toks) > 0 && toks[len(toks)-1].Kind == Newline {
			continue
		}
		if t.Kind == EOF {
			if len(toks) == 0 || toks[len(toks)-1].Kind != Newline {
				toks = append(toks, Token{Kind: Newline, Line: t.Line, Col: t.Col})
			}
			toks = append(toks, t)
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errorf(line, col int, format string, args ...any) error {
	return diag.Errorf("lex", diag.CodeLex, diag.Pos{Line: line, Col: col}, format, args...)
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	for {
		c := lx.peek()
		switch {
		case c == 0:
			return Token{Kind: EOF, Line: lx.line, Col: lx.col}, nil
		case c == '\n':
			t := Token{Kind: Newline, Line: lx.line, Col: lx.col}
			lx.advance()
			lx.inDirective = false
			lx.atLineStart = true
			return t, nil
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
		case c == '!':
			// Comment or directive. A directive is "!hpf$" at the start of
			// the statement (only whitespace before it on the line).
			if lx.atLineStart && lx.isDirectiveStart() {
				t := Token{Kind: HPFDirective, Text: "!hpf$", Line: lx.line, Col: lx.col}
				for i := 0; i < 5; i++ {
					lx.advance()
				}
				lx.inDirective = true
				lx.atLineStart = false
				return t, nil
			}
			for lx.peek() != 0 && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			lx.atLineStart = false
			return lx.scanToken()
		}
	}
}

func (lx *Lexer) isDirectiveStart() bool {
	if lx.pos+5 > len(lx.src) {
		return false
	}
	return strings.EqualFold(lx.src[lx.pos:lx.pos+5], "!hpf$")
}

func (lx *Lexer) scanToken() (Token, error) {
	line, col := lx.line, lx.col
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.scanIdent(line, col), nil
	case isDigit(c):
		return lx.scanNumber(line, col)
	}
	lx.advance()
	mk := func(k Kind, text string) (Token, error) {
		return Token{Kind: k, Text: text, Line: line, Col: col}, nil
	}
	switch c {
	case '(':
		return mk(LParen, "(")
	case ')':
		return mk(RParen, ")")
	case ',':
		return mk(Comma, ",")
	case '+':
		return mk(Plus, "+")
	case '-':
		return mk(Minus, "-")
	case '*':
		return mk(Star, "*")
	case ':':
		if lx.peek() == ':' {
			lx.advance()
			return mk(DoubleColon, "::")
		}
		return mk(Colon, ":")
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return mk(Eq, "==")
		}
		return mk(Assign, "=")
	case '/':
		if lx.peek() == '=' {
			lx.advance()
			return mk(Ne, "/=")
		}
		return mk(Slash, "/")
	case '<':
		if lx.peek() == '=' {
			lx.advance()
			return mk(Le, "<=")
		}
		return mk(Lt, "<")
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return mk(Ge, ">=")
		}
		return mk(Gt, ">")
	}
	return Token{}, lx.errorf(line, col, "unexpected character %q", c)
}

func (lx *Lexer) scanIdent(line, col int) Token {
	start := lx.pos
	for isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := strings.ToLower(lx.src[start:lx.pos])
	if lx.inDirective {
		if k, ok := directiveKeywords[text]; ok {
			return Token{Kind: k, Text: text, Line: line, Col: col}
		}
	}
	if k, ok := keywords[text]; ok {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	return Token{Kind: Ident, Text: text, Line: line, Col: col}
}

func (lx *Lexer) scanNumber(line, col int) (Token, error) {
	start := lx.pos
	for isDigit(lx.peek()) {
		lx.advance()
	}
	isReal := false
	// Fractional part. A '.' is part of the number only when followed by a
	// digit or when the number ends the numeric token (e.g. "1.").
	if lx.peek() == '.' {
		isReal = true
		lx.advance()
		for isDigit(lx.peek()) {
			lx.advance()
		}
	}
	// Exponent part: e or d, optional sign, digits.
	if p := lx.peek(); p == 'e' || p == 'E' || p == 'd' || p == 'D' {
		q := lx.peekAt(1)
		r := lx.peekAt(2)
		if isDigit(q) || ((q == '+' || q == '-') && isDigit(r)) {
			isReal = true
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			for isDigit(lx.peek()) {
				lx.advance()
			}
		}
	}
	text := strings.ToLower(lx.src[start:lx.pos])
	kind := IntLit
	if isReal {
		kind = RealLit
		text = strings.Replace(text, "d", "e", 1)
	}
	return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c)
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }
