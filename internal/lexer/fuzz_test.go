package lexer

import (
	"errors"
	"testing"

	"phpf/internal/programs"
)

// FuzzLex asserts the scanner's robustness contract on arbitrary input: it
// never panics, and when it rejects the input the error is a *lexer.Error
// carrying a valid source position.
func FuzzLex(f *testing.F) {
	f.Add(programs.TOMCATV(17, 2))
	f.Add(programs.DGEFA(16))
	f.Add(programs.APPSP(6, 6, 6, 1, true))
	f.Add(programs.Smooth(64, 2))
	for _, src := range programs.Figures {
		f.Add(src)
	}
	f.Add("program t\nx = 1.0e\nend\n")
	f.Add("!hpf$ distribute (block) :: a\n")
	f.Add("do i = 1, \x00\n")

	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Scan(src)
		if err != nil {
			var le *Error
			if !errors.As(err, &le) {
				t.Fatalf("scan error is not a *lexer.Error: %T %v", err, err)
			}
			if le.Pos.Line < 1 || le.Pos.Col < 1 {
				t.Fatalf("error position %s not positive: %v", le.Pos, le)
			}
			return
		}
		// A successful scan ends with EOF and every token carries a
		// positive position.
		if len(toks) == 0 {
			t.Fatal("successful scan returned no tokens")
		}
		for _, tok := range toks {
			if tok.Line < 1 || tok.Col < 1 {
				t.Fatalf("token %v at non-positive position %d:%d", tok.Kind, tok.Line, tok.Col)
			}
		}
	})
}
