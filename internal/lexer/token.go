// Package lexer tokenizes the mini-Fortran/HPF dialect accepted by phpf-go.
//
// The language is line-oriented like fixed/free-form Fortran: statements end
// at a newline, keywords are case-insensitive, and compiler directives appear
// on comment lines beginning with "!hpf$". Ordinary comments start with "!"
// and run to the end of the line.
package lexer

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds. Keyword kinds are produced for identifiers matching a keyword
// case-insensitively; the original spelling is preserved in Token.Text.
const (
	EOF Kind = iota
	Newline
	Ident
	IntLit
	RealLit

	// Punctuation and operators.
	LParen
	RParen
	Comma
	Colon
	DoubleColon
	Assign // =
	Plus
	Minus
	Star
	Slash
	Eq // ==
	Ne // /=
	Lt
	Le
	Gt
	Ge

	// Keywords.
	KwProgram
	KwEnd
	KwDo
	KwEndDo
	KwIf
	KwThen
	KwElse
	KwEndIf
	KwGoto
	KwContinue
	KwInteger
	KwReal
	KwParameter
	KwAnd
	KwOr
	KwNot

	// Directive introducer and directive keywords. Directive keywords are
	// only recognized inside a directive line.
	HPFDirective // the "!hpf$" marker at the start of a directive line
	KwProcessors
	KwTemplate
	KwDistribute
	KwRedistribute
	KwAlign
	KwWith
	KwIndependent
	KwNoDeps
	KwNew
	KwBlock
	KwCyclic
	KwOnto
)

var kindNames = map[Kind]string{
	EOF:            "EOF",
	Newline:        "newline",
	Ident:          "identifier",
	IntLit:         "integer literal",
	RealLit:        "real literal",
	LParen:         "'('",
	RParen:         "')'",
	Comma:          "','",
	Colon:          "':'",
	DoubleColon:    "'::'",
	Assign:         "'='",
	Plus:           "'+'",
	Minus:          "'-'",
	Star:           "'*'",
	Slash:          "'/'",
	Eq:             "'=='",
	Ne:             "'/='",
	Lt:             "'<'",
	Le:             "'<='",
	Gt:             "'>'",
	Ge:             "'>='",
	KwProgram:      "'program'",
	KwEnd:          "'end'",
	KwDo:           "'do'",
	KwEndDo:        "'end do'",
	KwIf:           "'if'",
	KwThen:         "'then'",
	KwElse:         "'else'",
	KwEndIf:        "'end if'",
	KwGoto:         "'goto'",
	KwContinue:     "'continue'",
	KwInteger:      "'integer'",
	KwReal:         "'real'",
	KwParameter:    "'parameter'",
	KwAnd:          "'and'",
	KwOr:           "'or'",
	KwNot:          "'not'",
	HPFDirective:   "'!hpf$'",
	KwProcessors:   "'processors'",
	KwTemplate:     "'template'",
	KwDistribute:   "'distribute'",
	KwRedistribute: "'redistribute'",
	KwAlign:        "'align'",
	KwWith:         "'with'",
	KwIndependent:  "'independent'",
	KwNoDeps:       "'nodeps'",
	KwNew:          "'new'",
	KwBlock:        "'block'",
	KwCyclic:       "'cyclic'",
	KwOnto:         "'onto'",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a single lexical unit with its source position.
type Token struct {
	Kind Kind
	Text string // original spelling (lower-cased for keywords/identifiers)
	Line int    // 1-based source line
	Col  int    // 1-based column of the first character
}

// Pos formats the token position as "line:col".
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }

// statement keywords recognized anywhere.
var keywords = map[string]Kind{
	"program":   KwProgram,
	"end":       KwEnd,
	"do":        KwDo,
	"enddo":     KwEndDo,
	"if":        KwIf,
	"then":      KwThen,
	"else":      KwElse,
	"endif":     KwEndIf,
	"goto":      KwGoto,
	"continue":  KwContinue,
	"integer":   KwInteger,
	"real":      KwReal,
	"parameter": KwParameter,
	"and":       KwAnd,
	"or":        KwOr,
	"not":       KwNot,
}

// directive keywords recognized only on "!hpf$" lines.
var directiveKeywords = map[string]Kind{
	"processors":   KwProcessors,
	"template":     KwTemplate,
	"distribute":   KwDistribute,
	"redistribute": KwRedistribute,
	"align":        KwAlign,
	"with":         KwWith,
	"independent":  KwIndependent,
	"nodeps":       KwNoDeps,
	"new":          KwNew,
	"block":        KwBlock,
	"cyclic":       KwCyclic,
	"onto":         KwOnto,
}
