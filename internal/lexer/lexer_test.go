package lexer

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func scanOK(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Scan(src)
	if err != nil {
		t.Fatalf("Scan(%q): %v", src, err)
	}
	return toks
}

func TestScanAssignment(t *testing.T) {
	toks := scanOK(t, "a(i+1) = b(i) / 2.0\n")
	want := []Kind{Ident, LParen, Ident, Plus, IntLit, RParen, Assign,
		Ident, LParen, Ident, RParen, Slash, RealLit, Newline, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanKeywordsCaseInsensitive(t *testing.T) {
	toks := scanOK(t, "DO i = 1, N\nEnd Do\n")
	want := []Kind{KwDo, Ident, Assign, IntLit, Comma, Ident, Newline,
		KwEnd, KwDo, Newline, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanDirectiveLine(t *testing.T) {
	toks := scanOK(t, "!HPF$ distribute (block, cyclic) :: a, b\n")
	want := []Kind{HPFDirective, KwDistribute, LParen, KwBlock, Comma,
		KwCyclic, RParen, DoubleColon, Ident, Comma, Ident, Newline, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v (%q), want %v", i, got[i], toks[i].Text, want[i])
		}
	}
}

func TestDirectiveKeywordsOnlyInDirectives(t *testing.T) {
	// "block" outside a directive is a plain identifier.
	toks := scanOK(t, "block = 1\n")
	if toks[0].Kind != Ident || toks[0].Text != "block" {
		t.Errorf("got %v %q, want Ident \"block\"", toks[0].Kind, toks[0].Text)
	}
	// ...and inside a directive it is a keyword; the directive state resets
	// at the newline.
	toks = scanOK(t, "!hpf$ distribute a(block)\nblock = 1\n")
	sawKw, sawIdent := false, false
	for _, tk := range toks {
		if tk.Kind == KwBlock {
			sawKw = true
		}
		if tk.Kind == Ident && tk.Text == "block" {
			sawIdent = true
		}
	}
	if !sawKw || !sawIdent {
		t.Errorf("sawKw=%v sawIdent=%v, want both true", sawKw, sawIdent)
	}
}

func TestScanComments(t *testing.T) {
	toks := scanOK(t, "x = 1 ! trailing comment\n! whole-line comment\ny = 2\n")
	var idents []string
	for _, tk := range toks {
		if tk.Kind == Ident {
			idents = append(idents, tk.Text)
		}
	}
	if strings.Join(idents, ",") != "x,y" {
		t.Errorf("idents = %v, want [x y]", idents)
	}
}

func TestScanRelationalOperators(t *testing.T) {
	toks := scanOK(t, "a == b /= c < d <= e > f >= g\n")
	want := []Kind{Ident, Eq, Ident, Ne, Ident, Lt, Ident, Le, Ident, Gt,
		Ident, Ge, Ident, Newline, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		text string
	}{
		{"42", IntLit, "42"},
		{"3.25", RealLit, "3.25"},
		{"1.", RealLit, "1."},
		{"1e6", RealLit, "1e6"},
		{"2.5e-3", RealLit, "2.5e-3"},
		{"1d0", RealLit, "1e0"},
		{"7E+2", RealLit, "7e+2"},
	}
	for _, c := range cases {
		toks := scanOK(t, c.src+"\n")
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("%q: got (%v, %q), want (%v, %q)",
				c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestScanNumberFollowedByComma(t *testing.T) {
	toks := scanOK(t, "do i = 1, 10\n")
	if toks[3].Kind != IntLit || toks[3].Text != "1" {
		t.Errorf("got %v %q, want IntLit 1", toks[3].Kind, toks[3].Text)
	}
	if toks[5].Kind != IntLit || toks[5].Text != "10" {
		t.Errorf("got %v %q, want IntLit 10", toks[5].Kind, toks[5].Text)
	}
}

func TestScanPositions(t *testing.T) {
	toks := scanOK(t, "x = 1\ny = 2\n")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("x at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	var yTok Token
	for _, tk := range toks {
		if tk.Kind == Ident && tk.Text == "y" {
			yTok = tk
		}
	}
	if yTok.Line != 2 || yTok.Col != 1 {
		t.Errorf("y at %d:%d, want 2:1", yTok.Line, yTok.Col)
	}
}

func TestScanCollapsesBlankLines(t *testing.T) {
	toks := scanOK(t, "x = 1\n\n\n\ny = 2\n")
	n := 0
	for _, tk := range toks {
		if tk.Kind == Newline {
			n++
		}
	}
	if n != 2 {
		t.Errorf("got %d newline tokens, want 2", n)
	}
}

func TestScanErrorUnexpectedChar(t *testing.T) {
	_, err := Scan("x = @\n")
	if err == nil {
		t.Fatal("expected error for '@'")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if le.Pos.Line != 1 || le.Pos.Col != 5 {
		t.Errorf("error at %s, want 1:5", le.Pos)
	}
}

func TestScanEOFWithoutTrailingNewline(t *testing.T) {
	toks := scanOK(t, "x = 1")
	got := kinds(toks)
	want := []Kind{Ident, Assign, IntLit, Newline, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKindString(t *testing.T) {
	if KwDo.String() != "'do'" {
		t.Errorf("KwDo.String() = %q", KwDo.String())
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should still produce a string")
	}
}
