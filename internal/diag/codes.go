package diag

// Stable diagnostic codes. E-codes are fatal, W-codes are graceful
// degradations (a correct fallback was taken), I-codes are informational.
// Codes are part of the tool-facing contract (tests and downstream scripts
// may match on them); change messages freely, codes never.
const (
	// CodeLex: lexical error (unexpected character, malformed literal).
	CodeLex = "E001"
	// CodeParse: syntax error.
	CodeParse = "E002"
	// CodeIRBuild: semantic error during IR lowering (undeclared variable,
	// rank mismatch, bad GOTO target).
	CodeIRBuild = "E003"
	// CodeVerify: an inter-pass verifier invariant failed — a compiler bug,
	// not a user error.
	CodeVerify = "E004"
	// CodeConfig: a run configuration is invalid for the requested backend
	// or mode (e.g. fault injection handed to the differential oracle).
	CodeConfig = "E005"
	// CodeBudget: a run exceeded an explicit resource budget (MaxCells on
	// the interpreter's memory image). The breach is the requester's fault,
	// not the process's — servers map it to a client error, never an OOM.
	CodeBudget = "E006"
	// CodePanic: an execution panicked and was contained (the serving
	// layer's per-request isolation; the process keeps running).
	CodePanic = "E007"

	// CodeDirective: a mapping directive was skipped; the affected arrays
	// stay replicated.
	CodeDirective = "W101"
	// CodeScalarFallback: a scalar alignment candidate was rejected and the
	// definition fell back to replication.
	CodeScalarFallback = "W102"
	// CodeSerialized: the privatization inference pass declined to
	// privatize a variable written inside a loop; the value stays shared
	// (replicated), serializing its cross-iteration or cross-loop flow.
	// The message names the blocking reference with its position.
	CodeSerialized = "W103"

	// CodeInnerComm: a communication requirement could not be vectorized
	// and executes per statement instance.
	CodeInnerComm = "I201"
	// CodeNoVectorize: message vectorization disabled by options; every
	// communication stays at its statement.
	CodeNoVectorize = "I202"
	// CodeInferredPrivate: the privatization inference pass proved a
	// variable privatizable with respect to a loop without a NEW clause
	// and inserted the equivalent annotation.
	CodeInferredPrivate = "I203"
	// CodeLastPrivate: the inference pass classified a scalar as
	// lastprivate — privatizable within the loop with its final-iteration
	// value copied out at loop exit for the uses that follow.
	CodeLastPrivate = "I204"
)
