// Package diag defines the unified diagnostic currency of the compiler:
// every stage — lexer, parser, IR construction, directive resolution, the
// mapping analyses, communication analysis, SPMD generation, and the
// inter-pass verifier — reports problems as positioned, coded Diagnostics.
//
// A Diagnostic is either fatal (Severity Error; the stage returns it as an
// error and compilation stops) or a graceful-degradation record (Warning or
// Info; the stage falls back to a correct-if-slower decision and appends the
// diagnostic to the compile unit). Each carries the stage that emitted it, a
// stable error code (see codes.go), the subject variable or directive, and a
// Line:Col source position.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info records a decision worth surfacing (e.g. communication left at
	// its statement) with no fallback involved.
	Info Severity = iota
	// Warning records a graceful degradation: something was given up and a
	// correct fallback taken (skipped directive, replication fallback).
	Warning
	// Error is fatal: the stage cannot produce a usable result.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Pos is a source position. Line is 1-based; Col is 1-based and 0 when only
// the line is known. The zero Pos means "no position".
type Pos struct {
	Line int
	Col  int
}

// Known reports whether the position carries at least a line.
func (p Pos) Known() bool { return p.Line > 0 }

// String renders "line:col", or "line" when the column is unknown, or ""
// for the zero position.
func (p Pos) String() string {
	switch {
	case p.Line > 0 && p.Col > 0:
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	case p.Line > 0:
		return fmt.Sprintf("%d", p.Line)
	}
	return ""
}

// Less orders positions by line then column (unknown positions first).
func (p Pos) Less(o Pos) bool {
	if p.Line != o.Line {
		return p.Line < o.Line
	}
	return p.Col < o.Col
}

// Diagnostic is one positioned problem report.
type Diagnostic struct {
	Severity Severity
	// Stage names the pass or front-end stage that emitted the diagnostic:
	// "lex", "parse", "ir", "cfg", "ssa", "mapping", "scalar-mapping",
	// "comm", "spmd", "verify".
	Stage string
	// Code is the stable machine-readable code from codes.go.
	Code string
	// Subject is the variable or directive the problem concerns ("" when
	// not applicable).
	Subject string
	// Pos is the source position (zero when unknown).
	Pos Pos
	// Msg describes the problem and, for degradations, the fallback taken.
	Msg string
}

// String renders "pos: severity: stage: subject: msg [code]", omitting the
// parts that are unknown.
func (d Diagnostic) String() string {
	var b strings.Builder
	if p := d.Pos.String(); p != "" {
		b.WriteString(p)
		b.WriteString(": ")
	}
	b.WriteString(d.Severity.String())
	b.WriteString(": ")
	if d.Stage != "" {
		b.WriteString(d.Stage)
		b.WriteString(": ")
	}
	if d.Subject != "" {
		b.WriteString(d.Subject)
		b.WriteString(": ")
	}
	b.WriteString(d.Msg)
	if d.Code != "" {
		fmt.Fprintf(&b, " [%s]", d.Code)
	}
	return b.String()
}

// Error makes *Diagnostic usable as a Go error (fatal front-end errors are
// returned this way).
func (d *Diagnostic) Error() string { return d.String() }

// Errorf builds a fatal diagnostic.
func Errorf(stage, code string, pos Pos, format string, args ...any) *Diagnostic {
	return &Diagnostic{Severity: Error, Stage: stage, Code: code, Pos: pos,
		Msg: fmt.Sprintf(format, args...)}
}

// Warningf builds a graceful-degradation diagnostic about subject.
func Warningf(stage, code, subject string, pos Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Severity: Warning, Stage: stage, Code: code, Subject: subject,
		Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Infof builds an informational diagnostic about subject.
func Infof(stage, code, subject string, pos Pos, format string, args ...any) Diagnostic {
	return Diagnostic{Severity: Info, Stage: stage, Code: code, Subject: subject,
		Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// List is an ordered collection of diagnostics.
type List []Diagnostic

// Count returns how many diagnostics have the given severity.
func (l List) Count(s Severity) int {
	n := 0
	for _, d := range l {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Min returns the diagnostics with severity >= s.
func (l List) Min(s Severity) List {
	var out List
	for _, d := range l {
		if d.Severity >= s {
			out = append(out, d)
		}
	}
	return out
}

// SortBySource stable-sorts the list by source position (unknown first),
// preserving emission order within a position.
func (l List) SortBySource() {
	sort.SliceStable(l, func(i, j int) bool { return l[i].Pos.Less(l[j].Pos) })
}
