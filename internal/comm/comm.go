// Package comm performs communication analysis over the mapping decisions:
// for every right-hand-side / predicate reference it determines whether the
// data may need to move under owner-computes, classifies the communication
// (shift / broadcast / point-to-point / general), and computes its placement
// — the outermost loop out of which the messages can be vectorized (the
// paper's "message vectorization", the decisive lever between producer and
// consumer alignment in §2.1).
package comm

import (
	"fmt"

	"phpf/internal/diag"
	"sort"
	"strings"

	"phpf/internal/core"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// Requirement is one reference's communication need.
type Requirement struct {
	// ID numbers the requirement within its plan (stable across runs of the
	// same program); the concurrent executor tags every message with it so
	// receivers can verify the traffic matches the plan.
	ID   int
	Use  *ir.Ref
	Stmt *ir.Stmt

	Class  dist.CommClass
	SrcPat dist.OwnerPattern
	DstPat dist.OwnerPattern

	// Placement is the loop immediately before whose iterations the
	// aggregated communication is performed; nil means outside all loops.
	// When Hoisted is empty the communication is per statement instance
	// (inner-loop communication).
	Placement *ir.Loop
	// Hoisted lists the loops whose iterations are aggregated into one
	// communication (innermost first). Empty = not vectorizable.
	Hoisted []*ir.Loop
}

// Vectorized reports whether the communication is hoisted out of at least
// one loop.
func (r *Requirement) Vectorized() bool { return len(r.Hoisted) > 0 }

func (r *Requirement) String() string {
	where := "per-instance"
	if r.Vectorized() {
		where = fmt.Sprintf("hoisted out of %d loop(s)", len(r.Hoisted))
		if r.Placement != nil {
			where += fmt.Sprintf(" to %s-loop", r.Placement.Index.Name)
		} else {
			where += " to top level"
		}
	}
	return fmt.Sprintf("s%d %s: %s %s", r.Stmt.ID, r.Use, r.Class, where)
}

// Plan is the communication plan for a program.
type Plan struct {
	Res  *core.Result
	Reqs []*Requirement
	// ByStmt lists per-instance requirements per statement.
	ByStmt map[*ir.Stmt][]*Requirement
	// AtLoop lists vectorized requirements performed at each entry of the
	// given loop (the outermost hoisted loop), covering all its iterations
	// in one aggregated communication.
	AtLoop map[*ir.Loop][]*Requirement
	// Diags are informational diagnostics about communication placement
	// (inner-loop communications the vectorizer could not hoist, disabled
	// vectorization).
	Diags []diag.Diagnostic
}

// Analyze builds the communication plan.
func Analyze(res *core.Result) *Plan {
	p := &Plan{
		Res:    res,
		ByStmt: map[*ir.Stmt][]*Requirement{},
		AtLoop: map[*ir.Loop][]*Requirement{},
	}
	for _, st := range res.Prog.Stmts {
		switch st.Kind {
		case ir.SAssign, ir.SIf, ir.SIfGoto, ir.SLoopBounds:
		default:
			continue
		}
		dst := execPattern(res, st)
		for _, u := range st.Uses {
			if u.IsDef {
				continue
			}
			src := res.RefPattern(u)
			req := analyzeUse(res, st, u, src, dst)
			if req == nil {
				continue
			}
			req.ID = len(p.Reqs)
			p.Reqs = append(p.Reqs, req)
			if req.Vectorized() {
				outer := req.Hoisted[len(req.Hoisted)-1]
				p.AtLoop[outer] = append(p.AtLoop[outer], req)
			} else {
				p.ByStmt[st] = append(p.ByStmt[st], req)
				if st.Loop != nil && !res.Opts.DisableVectorization {
					p.Diags = append(p.Diags, diag.Infof("comm", diag.CodeInnerComm,
						u.Var.Name, st.Pos(),
						"communication for %s stays inside the %s-loop (%s)",
						u, st.Loop.Index.Name, req.Class))
				}
			}
		}
	}
	if res.Opts.DisableVectorization && len(p.Reqs) > 0 {
		p.Diags = append(p.Diags, diag.Infof("comm", diag.CodeNoVectorize, "",
			diag.Pos{}, "message vectorization disabled: %d communication(s) kept at their statements",
			len(p.Reqs)))
	}
	return p
}

// execPattern is the symbolic execution set of a statement under the final
// decisions (see also core's in-flux variant).
func execPattern(res *core.Result, st *ir.Stmt) dist.OwnerPattern {
	g := res.Mapping.Grid
	switch st.Kind {
	case ir.SAssign:
		if !st.Lhs.Var.IsArray() {
			m := res.ScalarOfStmt(st)
			if m != nil && m.Kind == core.ScalarReduction && m.Red != nil && m.Red.DataRef != nil {
				// The local partial update executes on the data owners.
				return res.RefPattern(m.Red.DataRef)
			}
			if m != nil && m.Kind == core.ScalarNoAlign {
				// Executes on the union of the iteration's processors;
				// approximated by the union pattern of sibling statements.
				return unionPattern(res, st)
			}
			return res.ScalarPattern(m)
		}
		return res.RefPattern(st.Lhs)
	case ir.SIf, ir.SIfGoto:
		if res.CtrlPrivatized(st) {
			return unionPattern(res, st)
		}
		return dist.ReplicatedPattern(g)
	default:
		return dist.ReplicatedPattern(g)
	}
}

// unionPattern over-approximates the union of the execution sets of the
// other statements in the statement's innermost loop body.
func unionPattern(res *core.Result, st *ir.Stmt) dist.OwnerPattern {
	g := res.Mapping.Grid
	if st.Loop == nil {
		return dist.ReplicatedPattern(g)
	}
	var pats []dist.OwnerPattern
	for _, other := range res.Prog.Stmts {
		if other == st || other.Kind != ir.SAssign || !ir.Encloses(st.Loop, other.Loop) {
			continue
		}
		if !other.Lhs.Var.IsArray() {
			m := res.ScalarOfStmt(other)
			if m == nil || m.Kind == core.ScalarNoAlign {
				continue
			}
			if m.Kind == core.ScalarReduction && m.Red != nil && m.Red.DataRef != nil {
				pats = append(pats, res.RefPattern(m.Red.DataRef))
				continue
			}
			if m.Kind == core.ScalarReplicated {
				continue
			}
			pats = append(pats, res.ScalarPattern(m))
			continue
		}
		pats = append(pats, res.RefPattern(other.Lhs))
	}
	if len(pats) == 0 {
		return dist.ReplicatedPattern(g)
	}
	// Dimension-wise union: dims that agree across all patterns keep their
	// determination; other dims are widened to all coordinates. Dims whose
	// determination varies in loops nested inside st.Loop are widened too
	// (the union ranges over those inner iterations).
	out := pats[0].Clone()
	for _, q := range pats[1:] {
		out = unionDims(out, q)
	}
	for d := range out.Dims {
		if out.Dims[d].Repl {
			continue
		}
		for _, inner := range innerLoops(res.Prog, st.Loop) {
			if out.Dims[d].Sub.VariesIn(inner) {
				out.Dims[d] = dist.DimPattern{Repl: true}
				break
			}
		}
	}
	return out
}

func unionDims(a, b dist.OwnerPattern) dist.OwnerPattern {
	out := a.Clone()
	for d := range out.Dims {
		if a.Dims[d].Repl || b.Dims[d].Repl {
			out.Dims[d] = dist.DimPattern{Repl: true}
			continue
		}
		if !samePatternDim(a.Dims[d], b.Dims[d]) {
			out.Dims[d] = dist.DimPattern{Repl: true}
		}
	}
	return out
}

func samePatternDim(a, b dist.DimPattern) bool {
	pa := dist.OwnerPattern{Dims: []dist.DimPattern{a}}
	pb := dist.OwnerPattern{Dims: []dist.DimPattern{b}}
	return dist.Covers(pa, pb) && dist.Covers(pb, pa)
}

func innerLoops(p *ir.Program, outer *ir.Loop) []*ir.Loop {
	var out []*ir.Loop
	for _, l := range p.Loops {
		if l != outer && ir.Encloses(outer, l) {
			out = append(out, l)
		}
	}
	return out
}

// analyzeUse builds the requirement for one use (nil when no communication
// can ever be needed).
func analyzeUse(res *core.Result, st *ir.Stmt, u *ir.Ref, src, dst dist.OwnerPattern) *Requirement {
	// Values of privatized-without-alignment and replicated scalars are
	// available wherever they are needed.
	if src.IsReplicated() {
		return nil
	}
	class := dist.Classify(src, dst)
	if class == dist.CommNone {
		return nil
	}
	req := &Requirement{Use: u, Stmt: st, Class: class, SrcPat: src, DstPat: dst}

	if res.Opts.DisableVectorization {
		return req // per-instance (ablation)
	}

	// Placement: hoist out of enclosing loops while legal.
	cur := st.Loop
	for cur != nil && hoistable(res, u, src, dst, cur) {
		req.Hoisted = append(req.Hoisted, cur)
		cur = cur.Parent
	}
	req.Placement = cur
	if len(req.Hoisted) == 0 {
		req.Placement = nil
	}
	return req
}

// hoistable reports whether communication for u can be aggregated out of
// loop l: the data must not be produced inside l (flow dependence) and both
// endpoint patterns must be statically enumerable across l's iterations
// (affine positions).
func hoistable(res *core.Result, u *ir.Ref, src, dst dist.OwnerPattern, l *ir.Loop) bool {
	for d := range src.Dims {
		if !src.Dims[d].Repl && !src.Dims[d].Sub.OK {
			return false
		}
		if !dst.Dims[d].Repl && !dst.Dims[d].Sub.OK {
			return false
		}
	}
	if u.Var.IsArray() {
		// A definition of the array inside l defeats hoisting only if it
		// may produce an element the use reads (Banerjee-style test).
		for _, st := range res.Prog.Stmts {
			if st.Kind == ir.SAssign && st.Lhs.Var == u.Var && ir.Encloses(l, st.Loop) {
				if res.Opts.DisableDependenceTest || ir.MayOverlapAcross(st.Lhs, u, l) {
					return false
				}
			}
		}
		return true
	}
	// Scalar: every reaching definition must lie outside l.
	for _, d := range res.SSA.ReachingDefs(u) {
		if d.Kind == ssa.VDef && ir.Encloses(l, d.Stmt.Loop) {
			return false
		}
	}
	return true
}

// ShiftDelta returns the constant position offset of a shift-class
// requirement along grid dimension d (0 when the dimension matches).
func (r *Requirement) ShiftDelta(d int) int64 {
	s, t := r.SrcPat.Dims[d], r.DstPat.Dims[d]
	if s.Repl || t.Repl || !s.Sub.OK || !t.Sub.OK {
		return 0
	}
	return (t.Sub.Const + t.Offset) - (s.Sub.Const + s.Offset)
}

// Summary renders the plan compactly for diagnostics and tests.
func (p *Plan) Summary() string {
	var lines []string
	for _, r := range p.Reqs {
		lines = append(lines, r.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// CountByClass tallies requirements per communication class.
func (p *Plan) CountByClass() map[dist.CommClass]int {
	out := map[dist.CommClass]int{}
	for _, r := range p.Reqs {
		out[r.Class]++
	}
	return out
}

// ExecPattern exposes the symbolic execution set of a statement under the
// final decisions (used by diagnostics and tests).
func ExecPattern(res *core.Result, st *ir.Stmt) dist.OwnerPattern {
	return execPattern(res, st)
}
