package comm

import (
	"strings"
	"testing"

	"phpf/internal/core"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/parser"
)

func plan(t *testing.T, src string, nprocs int, opts core.Options) *Plan {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := core.BuildAndAnalyze(ap, nprocs, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return Analyze(res)
}

const figure1 = `
program figure1
parameter n = 100
real a(n), b(n), c(n), d(n), e(n), f(n)
real x, y, z
integer i, m
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
!hpf$ distribute (block) :: a
m = 2
do i = 2, n-1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i+1) = y / z
  d(m) = x / z
end do
end
`

// reqFor finds the requirement for the use of variable v on the idx-th
// assignment to lhsName.
func reqFor(p *Plan, lhsName, useName string) *Requirement {
	for _, r := range p.Reqs {
		st := r.Stmt
		if st.Kind == ir.SAssign && st.Lhs.Var.Name == lhsName && r.Use.Var.Name == useName {
			return r
		}
	}
	return nil
}

// TestFigure1SelectedCommPlan: with selected alignment, the only
// communications in the loop are vectorized shifts (b and c to the owner of
// d(i+1), and y to the owner of a(i+1), which is a per-instance shift
// because y is produced in the loop).
func TestFigure1SelectedCommPlan(t *testing.T) {
	p := plan(t, figure1, 16, core.DefaultOptions())
	// b(i) and c(i) feed x, which is aligned with the consumer d(i+1):
	// shift communications, vectorized out of the i-loop.
	for _, name := range []string{"b", "c"} {
		r := reqFor(p, "x", name)
		if r == nil {
			t.Fatalf("no requirement for %s on x's statement", name)
		}
		if r.Class != dist.CommShift {
			t.Errorf("%s class = %v, want shift", name, r.Class)
		}
		if !r.Vectorized() {
			t.Errorf("%s communication not vectorized", name)
		}
	}
	// x itself needs no communication at d(m) (aligned with its consumer).
	if r := reqFor(p, "d", "x"); r != nil {
		t.Errorf("x should need no communication at its consumer: %v", r)
	}
	// y is aligned with the producer a(i): no communication computing y...
	if r := reqFor(p, "y", "a"); r != nil {
		t.Errorf("a(i) should be local to y's statement: %v", r)
	}
	if r := reqFor(p, "y", "b"); r != nil {
		t.Errorf("b(i) should be local to y's statement: %v", r)
	}
	// ...but y must move to the owner of a(i+1), per instance (y is
	// produced in the loop).
	r := reqFor(p, "a", "y")
	if r == nil {
		t.Fatal("y should need communication at a(i+1)")
	}
	if r.Vectorized() {
		t.Errorf("y's communication cannot be vectorized (produced in loop): %v", r)
	}
	// z is privatized without alignment: no communication anywhere.
	if r := reqFor(p, "a", "z"); r != nil {
		t.Errorf("z should need no communication: %v", r)
	}
	if r := reqFor(p, "d", "z"); r != nil {
		t.Errorf("z should need no communication: %v", r)
	}
}

// TestFigure1ProducerCommPlan: with producer alignment, x sits with b(i)
// and must be sent to the owner of d(i+1) in every iteration — the
// inner-loop communication the paper blames for the Table 1 middle column.
func TestFigure1ProducerCommPlan(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Scalars = core.ScalarsProducerAligned
	p := plan(t, figure1, 16, opts)
	r := reqFor(p, "d", "x")
	if r == nil {
		t.Fatal("x should need communication at d(i+1) under producer alignment")
	}
	if r.Vectorized() {
		t.Errorf("x's communication should be per-instance: %v", r)
	}
}

// TestFigure1ReplicatedCommPlan: with replication, the scalar statements
// execute on all processors and their partitioned inputs must be broadcast.
func TestFigure1ReplicatedCommPlan(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Scalars = core.ScalarsReplicated
	p := plan(t, figure1, 16, opts)
	r := reqFor(p, "x", "b")
	if r == nil {
		t.Fatal("b should need communication to replicated x")
	}
	if r.Class != dist.CommBcast {
		t.Errorf("class = %v, want broadcast", r.Class)
	}
	// a(i) feeding replicated y cannot be hoisted (a written in the loop).
	ra := reqFor(p, "y", "a")
	if ra == nil {
		t.Fatal("a should need broadcast to replicated y")
	}
	if ra.Vectorized() {
		t.Errorf("a's broadcast must stay in the loop: %v", ra)
	}
}

// TestFigure7NoPredicateComm: with control privatization, the predicate
// b(i) is owned by the processors executing the guarded statements — no
// communication (the paper's §4 point).
func TestFigure7NoPredicateComm(t *testing.T) {
	src := `
program figure7
parameter n = 64
real a(n), b(n), c(n)
integer i
!hpf$ align (i) with a(i) :: b, c
!hpf$ distribute (block) :: a
do i = 1, n
  if (b(i) /= 0.0) then
    a(i) = a(i) / b(i)
  else
    a(i) = c(i)
  end if
end do
end
`
	p := plan(t, src, 16, core.DefaultOptions())
	for _, r := range p.Reqs {
		if r.Stmt.Kind == ir.SIf {
			t.Errorf("privatized predicate should need no communication: %v", r)
		}
	}

	// Without control privatization the predicate executes everywhere and
	// b(i) must be broadcast per iteration.
	opts := core.DefaultOptions()
	opts.PrivatizeControlFlow = false
	p2 := plan(t, src, 16, opts)
	found := false
	for _, r := range p2.Reqs {
		if r.Stmt.Kind == ir.SIf && r.Use.Var.Name == "b" {
			found = true
			if r.Class != dist.CommBcast {
				t.Errorf("predicate comm class = %v, want broadcast", r.Class)
			}
		}
	}
	if !found {
		t.Error("expected broadcast requirement for unprivatized predicate")
	}
}

// TestStencilShiftVectorized: a classic shifted read is a vectorized shift.
func TestStencilShiftVectorized(t *testing.T) {
	src := `
program stencil
parameter n = 64
real a(n), b(n)
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 2, n-1
  a(i) = b(i-1) + b(i+1)
end do
end
`
	p := plan(t, src, 8, core.DefaultOptions())
	nshift := 0
	for _, r := range p.Reqs {
		if r.Class != dist.CommShift {
			t.Errorf("unexpected class %v for %v", r.Class, r)
		}
		if !r.Vectorized() {
			t.Errorf("stencil shift not vectorized: %v", r)
		}
		nshift++
	}
	if nshift != 2 {
		t.Errorf("got %d shift requirements, want 2", nshift)
	}
	// Deltas are -1 and +1 along grid dim 0.
	deltas := map[int64]bool{}
	for _, r := range p.Reqs {
		deltas[r.ShiftDelta(0)] = true
	}
	if !deltas[1] || !deltas[-1] {
		t.Errorf("shift deltas = %v, want {-1, +1}", deltas)
	}
}

// TestLocalLoopNoComm: a perfectly aligned loop needs no communication at
// all.
func TestLocalLoopNoComm(t *testing.T) {
	src := `
program local
parameter n = 64
real a(n), b(n)
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = b(i) * 2.0
end do
end
`
	p := plan(t, src, 8, core.DefaultOptions())
	if len(p.Reqs) != 0 {
		t.Errorf("expected no requirements, got:\n%s", p.Summary())
	}
}

// TestSummaryAndCounts exercises the diagnostics.
func TestSummaryAndCounts(t *testing.T) {
	p := plan(t, figure1, 16, core.DefaultOptions())
	s := p.Summary()
	if !strings.Contains(s, "shift") {
		t.Errorf("summary missing shifts:\n%s", s)
	}
	counts := p.CountByClass()
	if counts[dist.CommShift] == 0 {
		t.Errorf("counts = %v", counts)
	}
}

// TestExecPattern: the exported exec-pattern accessor matches expectations
// for the three guard flavors.
func TestExecPattern(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n), e(n)
real x, z
integer i
!hpf$ align b(i) with a(i)
!hpf$ align (i) with a(*) :: e
!hpf$ distribute (block) :: a
do i = 1, n
  x = b(i) * 2.0
  z = e(i) + 1.0
  a(i) = x + z
end do
end
`
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BuildAndAnalyze(ap, 4, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Prog.Stmts {
		if st.Kind != ir.SAssign {
			continue
		}
		pat := ExecPattern(res, st)
		switch st.Lhs.Var.Name {
		case "a":
			if pat.IsReplicated() {
				t.Error("a(i) should execute on its owner only")
			}
		case "x":
			// Aligned with the consumer a(i): same pattern as a's.
			if pat.IsReplicated() {
				t.Error("x should execute on owner(a(i))")
			}
		case "z":
			// Privatized without alignment: executes on the iteration's
			// union — here the owners of a(i).
			if pat.IsReplicated() {
				t.Error("z's union should narrow to the iteration's owners")
			}
		}
	}
}
