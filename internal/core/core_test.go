package core

import (
	"testing"

	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/parser"
	"phpf/internal/ssa"
)

func analyze(t *testing.T, src string, nprocs int, opts Options) *Result {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := BuildAndAnalyze(ap, nprocs, opts)
	if err != nil {
		t.Fatalf("BuildAndAnalyze: %v", err)
	}
	return res
}

// scalarMappingOf finds the mapping of the idx-th assignment to name.
func scalarMappingOf(t *testing.T, r *Result, name string, idx int) *ScalarMapping {
	t.Helper()
	n := 0
	for _, st := range r.Prog.Stmts {
		if st.Kind == ir.SAssign && st.Lhs.Var.Name == name {
			if n == idx {
				m := r.ScalarOfStmt(st)
				if m == nil {
					t.Fatalf("no mapping recorded for %s (assignment %d)", name, idx)
				}
				return m
			}
			n++
		}
	}
	t.Fatalf("assignment %d to %s not found", idx, name)
	return nil
}

const figure1 = `
program figure1
parameter n = 100
real a(n), b(n), c(n), d(n), e(n), f(n)
real x, y, z
integer i, m
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
!hpf$ distribute (block) :: a
m = 2
do i = 2, n-1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i+1) = y / z
  d(m) = x / z
end do
end
`

// TestFigure1Mappings checks every decision the paper walks through in §2.1:
// m is an induction variable privatized without alignment; x aligns with the
// consumer reference d(m)=d(i+1); y aligns with a producer reference (a(i)
// or b(i)); z is privatized without alignment.
func TestFigure1Mappings(t *testing.T) {
	r := analyze(t, figure1, 16, DefaultOptions())

	// m: induction variable, privatized without alignment (paper: "any
	// scalar variable recognized as an induction variable should be
	// privatized without alignment").
	if len(r.Inductions) != 1 || r.Inductions[0].Var.Name != "m" {
		t.Fatalf("inductions = %v", r.Inductions)
	}
	mMap := scalarMappingOf(t, r, "m", 1)
	if mMap.Kind != ScalarNoAlign {
		t.Errorf("m mapping = %v, want private-noalign", mMap)
	}

	// x: aligned with the consumer d(i+1).
	xMap := scalarMappingOf(t, r, "x", 0)
	if xMap.Kind != ScalarAligned || !xMap.TargetIsConsumer {
		t.Fatalf("x mapping = %v, want consumer alignment", xMap)
	}
	if xMap.Target.Var.Name != "d" {
		t.Errorf("x target = %s, want d(...)", xMap.Target)
	}

	// y: aligned with a producer (a(i) or b(i)); consumer a(i+1) rejected
	// because a is written in the loop (inner-loop communication).
	yMap := scalarMappingOf(t, r, "y", 0)
	if yMap.Kind != ScalarAligned || yMap.TargetIsConsumer {
		t.Fatalf("y mapping = %v, want producer alignment", yMap)
	}
	if n := yMap.Target.Var.Name; n != "a" && n != "b" {
		t.Errorf("y target = %s, want a(i) or b(i)", yMap.Target)
	}

	// z: rhs data (e, f) replicated → privatized without alignment.
	zMap := scalarMappingOf(t, r, "z", 0)
	if zMap.Kind != ScalarNoAlign {
		t.Errorf("z mapping = %v, want private-noalign", zMap)
	}
}

// TestFigure1ReplicationStrategy: under the naive strategy everything stays
// replicated.
func TestFigure1ReplicationStrategy(t *testing.T) {
	opts := DefaultOptions()
	opts.Scalars = ScalarsReplicated
	r := analyze(t, figure1, 16, opts)
	for _, name := range []string{"x", "y", "z"} {
		m := scalarMappingOf(t, r, name, 0)
		if m.Kind != ScalarReplicated {
			t.Errorf("%s mapping = %v, want replicated", name, m)
		}
	}
}

// TestFigure1ProducerStrategy: the producer-alignment compiler aligns x and
// y with partitioned rhs references.
func TestFigure1ProducerStrategy(t *testing.T) {
	opts := DefaultOptions()
	opts.Scalars = ScalarsProducerAligned
	r := analyze(t, figure1, 16, opts)
	xMap := scalarMappingOf(t, r, "x", 0)
	if xMap.Kind != ScalarAligned || xMap.TargetIsConsumer {
		t.Fatalf("x mapping = %v, want producer alignment", xMap)
	}
	if n := xMap.Target.Var.Name; n != "b" && n != "c" {
		t.Errorf("x target = %s, want b(i) or c(i)", xMap.Target)
	}
	// z has no partitioned producer → privatized without alignment.
	zMap := scalarMappingOf(t, r, "z", 0)
	if zMap.Kind != ScalarNoAlign {
		t.Errorf("z mapping = %v, want private-noalign", zMap)
	}
}

const figure2 = `
program figure2
parameter n = 64
real h(n,n), g(n,n), a(n), b(n), c(n)
real p, q
integer i
!hpf$ align g(i,j) with h(i,j)
!hpf$ align a(i) with h(i,*)
!hpf$ distribute (block,*) :: h
do i = 1, n
  p = b(i)
  q = c(i)
  a(i) = h(i,p) + g(q,i)
end do
end
`

// TestFigure2SubscriptConsumers: the consumer reference of p (subscript of
// an rhs reference needing no communication) is a(i); for q (subscript of a
// reference that needs communication, so the value must be broadcast) it is
// the dummy replicated reference, keeping q replicated. Because p's rhs
// (b(i), unmapped hence replicated) stays replicated, the end-of-pass rule
// privatizes p without alignment.
func TestFigure2SubscriptConsumers(t *testing.T) {
	r := analyze(t, figure2, 8, DefaultOptions())
	pMap := scalarMappingOf(t, r, "p", 0)
	if pMap.ForcedReplicated {
		t.Error("p should not be forced replicated")
	}
	if pMap.SelectedConsumer == nil || pMap.SelectedConsumer.Var.Name != "a" {
		t.Errorf("p consumer = %v, want a(i)", pMap.SelectedConsumer)
	}
	if pMap.Kind != ScalarNoAlign {
		t.Errorf("p mapping = %v, want private-noalign (replicated rhs)", pMap)
	}
	qMap := scalarMappingOf(t, r, "q", 0)
	if !qMap.ForcedReplicated {
		t.Error("q should be forced replicated (broadcast subscript)")
	}
	if qMap.Kind != ScalarReplicated {
		t.Errorf("q mapping = %v, want replicated (needed on all processors)", qMap)
	}
}

// TestFigure2PartitionedRhsAligned: when p's producer data is partitioned,
// the consumer alignment with a(i) is applied (no-align no longer applies).
func TestFigure2PartitionedRhsAligned(t *testing.T) {
	src := `
program figure2b
parameter n = 64
real h(n,n), g(n,n), a(n), b(n), c(n)
real p
integer i
!hpf$ align g(i,j) with h(i,j)
!hpf$ align a(i) with h(i,*)
!hpf$ align b(i) with h(i,*)
!hpf$ distribute (block,*) :: h
do i = 1, n
  p = b(i)
  a(i) = h(i,p) + 1.0
end do
end
`
	r := analyze(t, src, 8, DefaultOptions())
	pMap := scalarMappingOf(t, r, "p", 0)
	if pMap.Kind != ScalarAligned || pMap.Target.Var.Name != "a" {
		t.Errorf("p mapping = %v, want aligned with a(i)", pMap)
	}
	if !pMap.TargetIsConsumer {
		t.Error("p target should be a consumer reference")
	}
}

const figure5 = `
program figure5
parameter n = 64
real a(n,n), b(n)
real s
integer i, j
!hpf$ align b(i) with a(i,*)
!hpf$ distribute (block,block) :: a
do i = 1, n
  s = 0.0
  do j = 1, n
    s = s + a(i,j)
  end do
  b(i) = s
end do
end
`

// TestFigure5ReductionMapping: s is replicated across the second grid
// dimension (where the j-reduction combines) and aligned with row i of a in
// the first.
func TestFigure5ReductionMapping(t *testing.T) {
	r := analyze(t, figure5, 16, DefaultOptions())
	sMap := scalarMappingOf(t, r, "s", 1) // the update s = s + a(i,j)
	if sMap.Kind != ScalarReduction {
		t.Fatalf("s mapping = %v, want reduction", sMap)
	}
	if len(sMap.RedGridDims) != 1 || sMap.RedGridDims[0] != 1 {
		t.Errorf("reduction grid dims = %v, want [1]", sMap.RedGridDims)
	}
	// Pattern: dim 0 determined by subscript i of a; dim 1 replicated.
	if sMap.Pattern.Dims[0].Repl {
		t.Error("s should be aligned (not replicated) in grid dim 0")
	}
	if !sMap.Pattern.Dims[1].Repl {
		t.Error("s should be replicated in grid dim 1")
	}
	// The initialization s = 0.0 inherits the same mapping.
	initMap := scalarMappingOf(t, r, "s", 0)
	if initMap.Kind != ScalarReduction {
		t.Errorf("s init mapping = %v, want reduction", initMap)
	}
}

// TestFigure5ReductionDisabled: with reduction alignment off, s stays
// replicated (the Table 2 "Default" configuration).
func TestFigure5ReductionDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.AlignReductions = false
	r := analyze(t, figure5, 16, opts)
	sMap := scalarMappingOf(t, r, "s", 1)
	if sMap.Kind != ScalarReplicated {
		t.Errorf("s mapping = %v, want replicated", sMap)
	}
}

const figure6 = `
program figure6
parameter nx = 8
parameter ny = 8
parameter nz = 8
real c(nx,ny,3), rsd(5,nx,ny,nz)
integer i, j, k
!hpf$ distribute (*,*,block,block) :: rsd
!hpf$ independent, new(c)
do k = 2, nz-1
  do j = 2, ny-1
    do i = 2, nx-1
      c(i,j,1) = rsd(2,i,j,k) + 1.0
    end do
  end do
  do j = 3, ny-1
    do i = 2, nx-1
      rsd(1,i,j,k) = c(i,j-1,1) * 2.0
    end do
  end do
end do
end
`

// TestFigure6PartialPrivatization: c cannot be fully privatized (the
// alignment target's j subscript is only well-defined at level 2, inside
// the NEW loop at level 1), so it is partitioned in the grid dimension of
// rsd's j dimension and privatized along the grid dimension of rsd's k
// dimension.
func TestFigure6PartialPrivatization(t *testing.T) {
	r := analyze(t, figure6, 16, DefaultOptions())
	c := r.Prog.LookupVar("c")
	ap := r.Arrays[c]
	if ap == nil {
		t.Fatal("c not privatized")
	}
	if !ap.Partial {
		t.Fatalf("c privatization = %+v, want partial", ap)
	}
	if ap.Target.Var.Name != "rsd" {
		t.Errorf("target = %s, want rsd(...)", ap.Target)
	}
	// rsd dims 3 (j) and 4 (k) are distributed on grid dims 0 and 1: c is
	// partitioned on grid dim 0 (dim 2 of c, the j dimension) and
	// privatized along grid dim 1.
	if ap.PrivGrid[0] || !ap.PrivGrid[1] {
		t.Errorf("PrivGrid = %v, want [false true]", ap.PrivGrid)
	}
	if !ap.Axes[1].Distributed || ap.Axes[1].GridDim != 0 {
		t.Errorf("partition axes = %+v, want c dim 2 on grid dim 0", ap.Axes)
	}
}

// TestFigure6NoPartialPrivatization: with partial privatization disabled, c
// cannot be privatized at all.
func TestFigure6NoPartialPrivatization(t *testing.T) {
	opts := DefaultOptions()
	opts.PartialPrivatization = false
	r := analyze(t, figure6, 16, opts)
	if ap := r.Arrays[r.Prog.LookupVar("c")]; ap != nil {
		t.Errorf("c privatized = %v, want not privatized", ap)
	}
}

// TestFigure6FullPrivatizationWhenValid: if the consumer only uses c with
// subscripts well-defined at the NEW loop's level, privatization is full.
func TestFigure6FullPrivatizationWhenValid(t *testing.T) {
	src := `
program t
parameter nx = 8
parameter nz = 8
real c(nx), rsd(nx,nz)
integer i, k
!hpf$ distribute (*,block) :: rsd
!hpf$ independent, new(c)
do k = 2, nz-1
  do i = 2, nx-1
    c(i) = 1.0
  end do
  do i = 2, nx-1
    rsd(i,k) = c(i)
  end do
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	ap := r.Arrays[r.Prog.LookupVar("c")]
	if ap == nil {
		t.Fatal("c not privatized")
	}
	if ap.Partial {
		t.Errorf("c = %v, want full privatization", ap)
	}
	if !ap.PrivGrid[0] {
		t.Error("grid dim 0 should be privatized")
	}
}

const figure7 = `
program figure7
parameter n = 64
real a(n), b(n), c(n)
integer i
!hpf$ align (i) with a(i) :: b, c
!hpf$ distribute (block) :: a
do i = 1, n
  if (b(i) /= 0.0) then
    a(i) = a(i) / b(i)
    if (b(i) < 0.0) goto 100
  else
    a(i) = c(i)
    c(i) = c(i) * c(i)
  end if
100 continue
end do
end
`

// TestFigure7ControlFlow: both IF statements transfer control only within
// the i-loop, so both are privatized.
func TestFigure7ControlFlow(t *testing.T) {
	r := analyze(t, figure7, 16, DefaultOptions())
	nIf, nPriv := 0, 0
	for _, st := range r.Prog.Stmts {
		if st.Kind == ir.SIf || st.Kind == ir.SIfGoto {
			nIf++
			if r.CtrlPrivatized(st) {
				nPriv++
			}
		}
	}
	if nIf != 2 || nPriv != 2 {
		t.Errorf("privatized %d of %d control statements, want 2 of 2", nPriv, nIf)
	}
}

// TestControlFlowEscapingGoto: a goto leaving the loop defeats privatized
// execution.
func TestControlFlowEscapingGoto(t *testing.T) {
	src := `
program t
parameter n = 8
real a(n), b(n)
integer i
!hpf$ align (i) with a(i) :: b
!hpf$ distribute (block) :: a
do i = 1, n
  if (b(i) < 0.0) goto 200
  a(i) = b(i)
end do
200 continue
end
`
	r := analyze(t, src, 4, DefaultOptions())
	for _, st := range r.Prog.Stmts {
		if st.Kind == ir.SIfGoto && r.CtrlPrivatized(st) {
			t.Error("escaping goto must not be privatized")
		}
	}
}

// TestDGEFAReductionConfinement: with the (*,cyclic) column distribution,
// the pivot search reduction variables are aligned with the current column
// in the (only) grid dimension and need no cross-processor combine — the
// computation is confined to the column's owner (§5.2).
func TestDGEFAReductionConfinement(t *testing.T) {
	src := `
program dgefa
parameter n = 32
real a(n,n)
real t0
integer i, k, l
!hpf$ distribute (*,cyclic) :: a
do k = 1, n-1
  t0 = abs(a(k,k))
  l = k
  do i = k+1, n
    if (abs(a(i,k)) > t0) then
      t0 = abs(a(i,k))
      l = i
    end if
  end do
  a(l,k) = t0
end do
end
`
	r := analyze(t, src, 8, DefaultOptions())
	tMap := scalarMappingOf(t, r, "t0", 1) // conditional update
	if tMap.Kind != ScalarReduction {
		t.Fatalf("t0 mapping = %v, want reduction", tMap)
	}
	if len(tMap.RedGridDims) != 0 {
		t.Errorf("reduction dims = %v, want none (row dim is collapsed)", tMap.RedGridDims)
	}
	if tMap.Pattern.Dims[0].Repl {
		t.Error("t0 should be confined to the column owner, not replicated")
	}
	lMap := scalarMappingOf(t, r, "l", 1)
	if lMap.Kind != ScalarReduction {
		t.Errorf("l mapping = %v, want reduction (maxloc companion)", lMap)
	}
}

// TestScalarUsedInLoopBoundsStaysReplicated: a scalar consumed by a loop
// bound is needed on every processor.
func TestScalarUsedInLoopBoundsStaysReplicated(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n)
integer i, j, m
!hpf$ distribute (block) :: a
do i = 1, n
  m = i / 2
  do j = 1, m
    a(j) = b(j)
  end do
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	mMap := scalarMappingOf(t, r, "m", 0)
	if mMap.Kind != ScalarReplicated {
		t.Errorf("m mapping = %v, want replicated (used in loop bound)", mMap)
	}
}

// TestSiblingDefsShareMapping: both reaching definitions of a use receive
// one mapping.
func TestSiblingDefsShareMapping(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n), c(n)
real x
integer i
!hpf$ align (i) with a(i) :: b, c
!hpf$ distribute (block) :: a
do i = 1, n
  if (b(i) > 0.0) then
    x = b(i)
  else
    x = c(i)
  end if
  a(i) = x
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	m0 := scalarMappingOf(t, r, "x", 0)
	m1 := scalarMappingOf(t, r, "x", 1)
	if m0.Kind != m1.Kind {
		t.Errorf("sibling defs mapped differently: %v vs %v", m0, m1)
	}
	if m0.Kind == ScalarAligned && m1.Kind == ScalarAligned && m0.Target != m1.Target {
		t.Errorf("sibling defs aligned to different targets: %v vs %v", m0.Target, m1.Target)
	}
}

// TestRefPatternConsistency: RefPattern agrees between a scalar's def and
// its uses.
func TestRefPatternConsistency(t *testing.T) {
	r := analyze(t, figure1, 8, DefaultOptions())
	for _, st := range r.Prog.Stmts {
		for _, u := range st.Uses {
			if u.Var.IsArray() {
				continue
			}
			defs := r.SSA.ReachingDefs(u)
			if len(defs) == 0 {
				continue
			}
			upat := r.RefPattern(u)
			for _, d := range defs {
				if d.Kind != ssa.VDef {
					continue
				}
				dm := r.Scalars[d]
				if dm == nil {
					continue
				}
				dpat := r.ScalarPattern(dm)
				if !dist.Covers(dpat, upat) || !dist.Covers(upat, dpat) {
					t.Errorf("pattern mismatch for %s: def %v use %v", u.Var.Name, dpat, upat)
				}
			}
		}
	}
}
