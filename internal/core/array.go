package core

import (
	"sort"

	"phpf/internal/dist"
	"phpf/internal/ir"
)

// privatizeArrays implements §3: for every loop carrying a privatization
// fact — a NEW clause, a NODEPS directive implying memory-based dependences
// on written arrays, or an inferred-NEW annotation the autopriv pass
// inserted — it privatizes the named arrays: fully when the alignment
// target is valid throughout the loop, partially (partition + privatize)
// otherwise. Strict inference ignores the directive-asserted sources.
func (a *analyzer) privatizeArrays() {
	strict := a.opts.PrivatizationMode() == PrivInferStrict
	for _, L := range a.prog.Loops {
		var cands []*ir.Var
		seen := map[*ir.Var]bool{}
		addNames := func(names []string) {
			for _, name := range names {
				v := a.prog.LookupVar(name)
				if v != nil && v.IsArray() && !seen[v] {
					cands = append(cands, v)
					seen[v] = true
				}
			}
		}
		if !strict {
			addNames(L.New)
		}
		addNames(L.InferredNew)
		if L.NoDeps && !strict {
			// Paper §3.1: under the weaker directive, any lhs array
			// reference whose subscripts are all invariant with respect to
			// the loop (or affine in inner loop indices only) contributes
			// memory-based loop-carried dependences eliminable only by
			// privatization.
			for _, st := range a.prog.Stmts {
				if st.Kind != ir.SAssign || !st.Lhs.Var.IsArray() || !ir.Encloses(L, st.Loop) {
					continue
				}
				v := st.Lhs.Var
				if seen[v] {
					continue
				}
				invariant := true
				for _, sub := range st.Lhs.Subs {
					if sub.VariesIn(L) || !sub.OK {
						invariant = false
						break
					}
				}
				if invariant {
					cands = append(cands, v)
					seen[v] = true
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].Name < cands[j].Name })
		for _, v := range cands {
			if a.res.Arrays[v] != nil {
				continue
			}
			if ap := a.privatizeArray(v, L); ap != nil {
				a.res.Arrays[v] = ap
			}
		}
	}
}

// privatizeArray attempts to privatize array c with respect to loop L.
func (a *analyzer) privatizeArray(c *ir.Var, L *ir.Loop) *ArrayPrivatization {
	target := a.selectArrayTarget(c, L)
	if target == nil {
		return nil
	}
	g := a.m.Grid
	ap := &ArrayPrivatization{
		Var:      c,
		Loop:     L,
		Target:   target,
		PrivGrid: make([]bool, g.Rank()),
		Axes:     make([]dist.AxisMap, c.Rank()),
	}

	tm := a.m.Arrays[target.Var]
	if tm == nil {
		return nil
	}

	// Full privatization: valid when the target's alignment information is
	// well-defined throughout L.
	if a.alignLevel(target, nil) <= L.Level {
		for _, ax := range tm.Axes {
			if ax.Distributed {
				ap.PrivGrid[ax.GridDim] = true
			}
		}
		return ap
	}

	if !a.opts.PartialPrivatization {
		return nil
	}

	// Partial privatization (§3.2): per distributed dimension of the
	// target, privatize along grid dimensions whose subscript is
	// well-defined throughout L; partition the others by matching the
	// corresponding dimension of c.
	for tdim, tax := range tm.Axes {
		if !tax.Distributed {
			continue
		}
		lvl := ir.SubscriptAlignLevel(target.Subs[tdim], target.Stmt)
		if lvl <= L.Level {
			ap.PrivGrid[tax.GridDim] = true
			continue
		}
		cdim, offAdj, ok := a.matchPartitionDim(c, L, target.Subs[tdim])
		if !ok {
			return nil
		}
		ap.Axes[cdim] = dist.AxisMap{
			Distributed: true,
			GridDim:     tax.GridDim,
			Kind:        tax.Kind,
			Offset:      tax.Offset + offAdj,
			Extent:      tax.Extent,
			Block:       tax.Block,
		}
		ap.Partial = true
	}
	if !ap.Partial {
		return nil
	}
	return ap
}

// selectArrayTarget traverses the uses of c within L and selects a consumer
// alignment target (the lhs reference of the using statement), preferring
// partitioned references traversed in inner loops — the same heuristic as
// for scalars. Seemingly reached uses outside L are spurious (NEW asserts
// per-iteration lifetime) and ignored.
func (a *analyzer) selectArrayTarget(c *ir.Var, L *ir.Loop) *ir.Ref {
	var best *ir.Ref
	bestScore := -1
	for _, st := range a.prog.Stmts {
		if st.Kind != ir.SAssign || !ir.Encloses(L, st.Loop) {
			continue
		}
		usesC := false
		for _, u := range st.Uses {
			if u.Var == c && !u.InSubscript {
				usesC = true
			}
		}
		if !usesC || !st.Lhs.Var.IsArray() || st.Lhs.Var == c {
			continue
		}
		if a.refPattern(st.Lhs).IsReplicated() {
			continue
		}
		score := a.scoreTarget(st.Lhs, st, st)
		if score > bestScore {
			best, bestScore = st.Lhs, score
		}
	}
	return best
}

// matchPartitionDim finds the dimension of c whose subscripts at definition
// sites within L have the same loop terms as the target subscript tsub, so
// that partitioning that dimension co-locates c's elements with the target.
// Returns the dimension, the constant offset adjustment (target const minus
// def const), and whether a match was found.
func (a *analyzer) matchPartitionDim(c *ir.Var, L *ir.Loop, tsub ir.Affine) (int, int64, bool) {
	if !tsub.OK {
		return 0, 0, false
	}
	for _, st := range a.prog.Stmts {
		if st.Kind != ir.SAssign || st.Lhs.Var != c || !ir.Encloses(L, st.Loop) {
			continue
		}
		for dim, sub := range st.Lhs.Subs {
			if !sub.OK || len(sub.Terms) != len(tsub.Terms) || len(sub.Terms) == 0 {
				continue
			}
			match := true
			for i := range sub.Terms {
				// Match on the loop index variable: the consumer and
				// producer sit in different loop nests, so compare the
				// index variables rather than loop identities.
				if sub.Terms[i].Loop.Index != tsub.Terms[i].Loop.Index ||
					sub.Terms[i].Coef != tsub.Terms[i].Coef {
					match = false
					break
				}
			}
			if match {
				return dim, tsub.Const - sub.Const, true
			}
		}
	}
	return 0, 0, false
}
