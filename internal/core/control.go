package core

import (
	"phpf/internal/ir"
)

// mapControlFlow implements §4: a control flow statement S inside loop L is
// privatized when it cannot transfer control to a target outside the body
// of L. A privatized control statement contributes no computation
// partitioning guard — it executes on the union of processors executing the
// other statements of the iteration, and its predicate data is communicated
// only to the processors executing statements control dependent on it.
// Non-privatized control statements execute on every processor.
func (a *analyzer) mapControlFlow() {
	for _, st := range a.prog.Stmts {
		if st.Kind != ir.SIf && st.Kind != ir.SIfGoto {
			continue
		}
		a.res.Ctrl[st] = &CtrlMapping{Stmt: st, Privatized: a.ctrlPrivatizable(st)}
	}
}

// ctrlPrivatizable reports whether the control statement's transfers all
// stay within the body of its innermost enclosing loop.
func (a *analyzer) ctrlPrivatizable(st *ir.Stmt) bool {
	if st.Loop == nil {
		return false
	}
	switch st.Kind {
	case ir.SIfGoto:
		return a.labelInLoop(st.Label, st.Loop)
	case ir.SIf:
		ok := true
		var scan func(nodes []ir.Node)
		scan = func(nodes []ir.Node) {
			for _, n := range nodes {
				switch x := n.(type) {
				case *ir.Stmt:
					if x.Kind == ir.SGoto || x.Kind == ir.SIfGoto {
						if !a.labelInLoop(x.Label, st.Loop) {
							ok = false
						}
					}
				case *ir.Loop:
					scan(x.Body)
				case *ir.If:
					scan(x.Then)
					scan(x.Else)
				}
			}
		}
		if st.IfNode != nil {
			scan(st.IfNode.Then)
			scan(st.IfNode.Else)
		}
		return ok
	}
	return false
}

// labelInLoop reports whether the CONTINUE statement bearing the label lies
// within loop l.
func (a *analyzer) labelInLoop(label int, l *ir.Loop) bool {
	for _, st := range a.prog.Stmts {
		if st.Kind == ir.SContinue && st.Label == label {
			return ir.Encloses(l, st.Loop)
		}
	}
	return false
}

// CtrlPrivatized reports the §4 decision for a control statement (false
// when control privatization was disabled).
func (r *Result) CtrlPrivatized(st *ir.Stmt) bool {
	c := r.Ctrl[st]
	return c != nil && c.Privatized
}
