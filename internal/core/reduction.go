package core

import (
	"phpf/internal/dataflow"
	"phpf/internal/dist"
)

// mapReduction applies the §2.3 mapping to a recognized reduction: the
// accumulator is replicated across the grid dimensions over which the
// reduction combines (those traversed by the data reference during the
// carried loops), and — when the definition is privatizable with respect to
// the loop immediately surrounding the outermost reduction loop — aligned
// with the data reference in the remaining grid dimensions.
//
// During execution the update statement runs on the owners of the data
// reference (each processor accumulates a private partial), and a global
// combine across the reduction dimensions runs when the outermost carried
// loop completes.
func (a *analyzer) mapReduction(red *dataflow.Reduction) {
	def := a.ssa.DefOf[red.Stmt]
	if def == nil || a.res.Scalars[def] != nil {
		return
	}
	a.reductionOf[red.Stmt] = red

	g := a.m.Grid
	pattern := dist.ReplicatedPattern(g)
	var redDims []int

	if red.DataRef != nil {
		dataPat := a.refPattern(red.DataRef)
		outer := red.Loops[len(red.Loops)-1]

		// Reduction grid dimensions: where the data's owner varies across
		// the carried loops.
		isRedDim := make([]bool, g.Rank())
		for d := 0; d < g.Rank(); d++ {
			if dataPat.Dims[d].Repl {
				continue
			}
			for _, l := range red.Loops {
				if dataPat.VariesIn(d, l) {
					isRedDim[d] = true
				}
			}
		}
		for d, r := range isRedDim {
			if r {
				redDims = append(redDims, d)
			}
		}

		// Non-reduction dims: align with the data reference when the value
		// is privatizable with respect to the surrounding loop.
		alignRest := outer.Parent != nil && a.privatizableWrt(def, outer.Parent)
		if alignRest {
			for d := 0; d < g.Rank(); d++ {
				if !isRedDim[d] && !dataPat.Dims[d].Repl {
					pattern.Dims[d] = dataPat.Dims[d]
				}
			}
		}
	}

	m := &ScalarMapping{
		Def:         def,
		Kind:        ScalarReduction,
		Target:      red.DataRef,
		Red:         red,
		RedGridDims: redDims,
		PrivLoop:    red.Loops[len(red.Loops)-1],
		Pattern:     pattern,
	}
	a.record(def, m)
	// Propagate to the other reaching definitions of the accumulator's
	// uses (typically the initialization before the loop), so that the
	// initialization executes on the same processor set.
	a.propagateToSiblings(def, m)
}
