package core

import (
	"strings"
	"testing"

	"phpf/internal/parser"
)

// compileDiag parses and analyzes, failing the test on hard errors.
func compileDiag(t *testing.T, src string, nprocs int) *Result {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := BuildAndAnalyze(ap, nprocs, DefaultOptions())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return res
}

// TestBadDirectiveDegradesToReplication: a distribute of an undeclared array
// no longer fails the compilation; it is skipped with a positioned
// diagnostic, and the run proceeds with the remaining (valid) mappings.
func TestBadDirectiveDegradesToReplication(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n)
integer i
!hpf$ distribute (block) :: nosuch
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = 1.0
end do
end
`
	res := compileDiag(t, src, 4)
	if len(res.Diags) == 0 {
		t.Fatal("skipped directive produced no diagnostic")
	}
	d := res.Diags[0]
	if d.Stage != "mapping" || d.Pos.Line != 6 {
		t.Errorf("diagnostic = %+v, want mapping stage at line 6", d)
	}
	if !strings.Contains(d.String(), "nosuch") {
		t.Errorf("diagnostic %q does not name the offending array", d.String())
	}
	// The valid directive still took effect.
	for v, am := range res.Mapping.Arrays {
		if v.Name == "a" && am.FullyReplicated() {
			t.Error("valid distribute of a was lost")
		}
	}
}

// TestRankMismatchDirectiveSkipped: a format-count/rank mismatch is skipped
// and the array defaults to replication instead of aborting.
func TestRankMismatchDirectiveSkipped(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n, n)
integer i
!hpf$ distribute (block) :: a
do i = 1, n
  a(i, 1) = 1.0
end do
end
`
	res := compileDiag(t, src, 4)
	if len(res.Diags) == 0 {
		t.Fatal("rank-mismatched distribute produced no diagnostic")
	}
	for v, am := range res.Mapping.Arrays {
		if v.Name == "a" && !am.FullyReplicated() {
			t.Error("array with skipped directive should fall back to replication")
		}
	}
}

// TestMultipleProblemsAggregated: all problems are reported, not just the
// first, each with its own source line.
func TestMultipleProblemsAggregated(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n)
integer i
!hpf$ distribute (block) :: nosuch
!hpf$ align q(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = 1.0
end do
end
`
	res := compileDiag(t, src, 4)
	if len(res.Diags) < 2 {
		t.Fatalf("want >= 2 diagnostics, got %d: %v", len(res.Diags), res.Diags)
	}
	lines := map[int]bool{}
	for _, d := range res.Diags {
		lines[d.Pos.Line] = true
	}
	if !lines[6] || !lines[7] {
		t.Errorf("diagnostics missing source lines 6 and 7: %v", res.Diags)
	}
}

// TestCleanProgramHasNoDiags: valid programs pay nothing — no diagnostics.
func TestCleanProgramHasNoDiags(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n)
integer i
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = 1.0
end do
end
`
	res := compileDiag(t, src, 4)
	if len(res.Diags) != 0 {
		t.Errorf("clean program produced diagnostics: %v", res.Diags)
	}
}
