// Package core implements the paper's primary contribution: selecting the
// mapping of privatized scalar and array variables under data-driven
// (owner-computes) parallelization.
//
// For each scalar definition the compiler chooses among replication
// (default), alignment with a consumer reference, alignment with a producer
// reference, and privatization without alignment (§2); scalar reductions get
// the special treatment of §2.3; privatizable arrays are aligned, fully or
// partially (partition some grid dimensions, privatize the others, §3); and
// control flow statements are privatized when they cannot transfer control
// out of their loop (§4).
package core

import (
	"fmt"

	"phpf/internal/dataflow"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/pass"
	"phpf/internal/ssa"
)

// ScalarStrategy selects how aggressively scalar mappings are chosen. The
// three levels correspond to the compiler versions measured in Table 1.
type ScalarStrategy int

const (
	// ScalarsReplicated: no privatization; every scalar is replicated.
	ScalarsReplicated ScalarStrategy = iota
	// ScalarsProducerAligned: privatize, but always align each definition
	// with a partitioned producer (rhs) reference when one exists.
	ScalarsProducerAligned
	// ScalarsSelected: the full §2.2 algorithm (consumer preferred unless
	// it induces inner-loop communication; privatization without alignment
	// when the rhs is replicated).
	ScalarsSelected
)

func (s ScalarStrategy) String() string {
	switch s {
	case ScalarsReplicated:
		return "replicated"
	case ScalarsProducerAligned:
		return "producer"
	case ScalarsSelected:
		return "selected"
	}
	return "?"
}

// PrivMode selects where privatization facts come from.
type PrivMode int

const (
	// PrivDirectives: privatization facts come only from directives (NEW
	// clauses; NODEPS-implied candidates). The inference pass still runs
	// and classifies, but inserts nothing — the paper's prototype behavior.
	PrivDirectives PrivMode = iota
	// PrivInfer: the autopriv pass additionally inserts every privatization
	// it can prove (inferred NEW for arrays, lastprivate for scalars) and
	// reports what it declined. Directives it already covers are respected,
	// not re-derived. The default.
	PrivInfer
	// PrivInferStrict: inference is the only source of privatization facts;
	// NEW clauses and NODEPS-implied candidates are ignored by the mapping
	// pass (an oracle for how much the directives assert beyond what the
	// analysis proves).
	PrivInferStrict
)

func (m PrivMode) String() string {
	switch m {
	case PrivDirectives:
		return "directives"
	case PrivInfer:
		return "infer"
	case PrivInferStrict:
		return "infer-strict"
	}
	return "?"
}

// ParsePrivMode parses the -privatize spellings.
func ParsePrivMode(s string) (PrivMode, bool) {
	switch s {
	case "directives":
		return PrivDirectives, true
	case "infer":
		return PrivInfer, true
	case "infer-strict":
		return PrivInferStrict, true
	}
	return PrivDirectives, false
}

// ReduceMode selects the runtime reduction strategy — how recognized
// reductions execute, not how they are mapped (the §2.3 static mapping is
// compiled either way, so one compiled program serves every mode).
type ReduceMode int

const (
	// ReduceAuto: privatize every reduction the reduceplan classified
	// privatizable; the rest stay collective. The default.
	ReduceAuto ReduceMode = iota
	// ReduceCollective: every reduction pays the global collective at the
	// carried loop's exit (the differential reference).
	ReduceCollective
	// ReducePrivatize: require privatized execution; running a program with
	// a recognized reduction the plan could not privatize is a configuration
	// error (E005), surfaced identically by both backends.
	ReducePrivatize
)

func (m ReduceMode) String() string {
	switch m {
	case ReduceAuto:
		return "auto"
	case ReduceCollective:
		return "collective"
	case ReducePrivatize:
		return "privatize"
	}
	return "?"
}

// ParseReduceMode parses the -reduce spellings.
func ParseReduceMode(s string) (ReduceMode, bool) {
	switch s {
	case "auto", "":
		return ReduceAuto, true
	case "collective":
		return ReduceCollective, true
	case "privatize":
		return ReducePrivatize, true
	}
	return ReduceAuto, false
}

// Options controls which optimizations the mapping pass applies.
type Options struct {
	Scalars ScalarStrategy
	// AlignReductions enables the §2.3 reduction-variable mapping
	// (replicate over reduction grid dims, align elsewhere). When false,
	// reduction scalars fall back to the scalar strategy (Table 2's
	// "Default" column replicates them).
	AlignReductions bool
	// PrivatizeArrays enables §3.1 array privatization from NEW clauses.
	PrivatizeArrays bool
	// Privatization selects where privatization facts come from; the zero
	// value (PrivDirectives) reproduces the paper's directive-driven
	// prototype, DefaultOptions selects PrivInfer.
	Privatization PrivMode
	// AutoPrivatizeArrays is the deprecated spelling of
	// Privatization: PrivInfer, kept so existing option structs keep
	// working; setting it while Privatization is PrivDirectives upgrades
	// the effective mode to PrivInfer (see PrivatizationMode).
	AutoPrivatizeArrays bool
	// PartialPrivatization enables §3.2 (partition + privatize) when full
	// privatization is invalid.
	PartialPrivatization bool
	// PrivatizeControlFlow enables §4.
	PrivatizeControlFlow bool
	// DisableVectorization keeps every communication at its statement
	// (ablation: quantifies what message vectorization contributes; the
	// paper's cost model is "guided by ... the placement of communication,
	// and hence, optimizations like message vectorization").
	DisableVectorization bool
	// DisableDependenceTest makes hoisting maximally conservative: any
	// write to an array inside a loop defeats vectorizing reads of it out
	// of that loop, even provably independent ones (ablation: shows what
	// the Banerjee-style test buys, e.g. DGEFA's pivot-column broadcast).
	DisableDependenceTest bool

	// Verify runs the IR/SSA/mapping verifier between every pipeline pass
	// and fails compilation on any invariant violation. Always on under
	// `go test`; opt in here for production runs.
	Verify bool
	// DumpAfter names a pipeline pass ("ir", "cfg", "ssa", "constprop",
	// "induction", "autopriv", "mapping", "analyze") whose post-state
	// snapshot is captured into Result.Profile.Dumps (empty: no snapshots).
	DumpAfter string
}

// PrivatizationMode returns the effective privatization mode after applying
// the deprecated AutoPrivatizeArrays shim.
func (o Options) PrivatizationMode() PrivMode {
	if o.Privatization == PrivDirectives && o.AutoPrivatizeArrays {
		return PrivInfer
	}
	return o.Privatization
}

// DefaultOptions enables everything (the "selected alignment" compiler).
func DefaultOptions() Options {
	return Options{
		Scalars:              ScalarsSelected,
		AlignReductions:      true,
		PrivatizeArrays:      true,
		Privatization:        PrivInfer,
		PartialPrivatization: true,
		PrivatizeControlFlow: true,
	}
}

// ScalarKind is the chosen mapping for one scalar definition.
type ScalarKind int

const (
	// ScalarReplicated: every processor computes and holds the value.
	ScalarReplicated ScalarKind = iota
	// ScalarAligned: owned by the owner of the Target reference.
	ScalarAligned
	// ScalarNoAlign: privatized without alignment — computed by whichever
	// processors execute the iteration, from replicated data; treated as
	// replicated by communication analysis.
	ScalarNoAlign
	// ScalarReduction: §2.3 mapping — replicated across the reduction grid
	// dimensions, aligned with the reduction data reference elsewhere.
	ScalarReduction
)

func (k ScalarKind) String() string {
	switch k {
	case ScalarReplicated:
		return "replicated"
	case ScalarAligned:
		return "aligned"
	case ScalarNoAlign:
		return "private-noalign"
	case ScalarReduction:
		return "reduction"
	}
	return "?"
}

// ScalarMapping is the mapping decision for one SSA definition.
type ScalarMapping struct {
	Def  *ssa.Value
	Kind ScalarKind

	// Target is the alignment target reference (ScalarAligned and, for the
	// non-reduction grid dimensions, ScalarReduction).
	Target *ir.Ref
	// TargetIsConsumer records whether Target was a consumer reference.
	TargetIsConsumer bool
	// PrivLoop is the loop with respect to which the value is privatized.
	PrivLoop *ir.Loop
	// LastPrivate marks an inferred lastprivate privatization: the value is
	// private within PrivLoop and the final iteration's value is copied out
	// (broadcast from its owner) at loop exit for the uses that follow.
	// Uses outside PrivLoop therefore see the value as replicated.
	LastPrivate bool

	// Red is the recognized reduction (ScalarReduction).
	Red *dataflow.Reduction
	// RedGridDims lists the grid dimensions across which the reduction
	// combines (the scalar is replicated over them).
	RedGridDims []int

	// Pattern is the symbolic owner of the value.
	Pattern dist.OwnerPattern

	// SelectedConsumer records the consumer reference the traversal chose,
	// even when the final decision was privatization without alignment
	// (diagnostic; mirrors the paper's Figure 2 discussion).
	SelectedConsumer *ir.Ref
	// ForcedReplicated records that some reached use required the dummy
	// replicated reference (loop bound or broadcast subscript).
	ForcedReplicated bool
}

func (m *ScalarMapping) String() string {
	s := fmt.Sprintf("%s: %s", m.Def, m.Kind)
	if m.Target != nil {
		role := "producer"
		if m.TargetIsConsumer {
			role = "consumer"
		}
		if m.Kind == ScalarReduction {
			role = "reduction-data"
		}
		s += fmt.Sprintf(" with %s (%s)", m.Target, role)
	}
	if m.PrivLoop != nil {
		s += fmt.Sprintf(" wrt %s-loop", m.PrivLoop.Index.Name)
	}
	if m.LastPrivate {
		s += " lastprivate"
	}
	return s
}

// ArrayPrivatization is the §3 decision for one array with respect to one
// loop.
type ArrayPrivatization struct {
	Var    *ir.Var
	Loop   *ir.Loop // the INDEPENDENT/NEW (or NODEPS) loop
	Target *ir.Ref  // alignment target reference
	// Partial is true when the array is partitioned in some grid dims and
	// privatized in the others (§3.2).
	Partial bool
	// PrivGrid[d] is true when grid dimension d is privatized: the array's
	// coordinate there follows the target reference's coordinate.
	PrivGrid []bool
	// Axes[dim] maps partitioned array dimensions (zero value = collapsed).
	Axes []dist.AxisMap
}

func (ap *ArrayPrivatization) String() string {
	mode := "full"
	if ap.Partial {
		mode = "partial"
	}
	return fmt.Sprintf("%s privatized (%s) wrt %s-loop with target %s",
		ap.Var.Name, mode, ap.Loop.Index.Name, ap.Target)
}

// PatternOf computes the owner pattern of a reference to the privatized
// array: partitioned dims from Axes, privatized grid dims following the
// target's pattern.
func (ap *ArrayPrivatization) PatternOf(g *dist.Grid, ref *ir.Ref, targetPat dist.OwnerPattern) dist.OwnerPattern {
	p := dist.ReplicatedPattern(g)
	for d := 0; d < g.Rank(); d++ {
		if ap.PrivGrid[d] {
			p.Dims[d] = targetPat.Dims[d]
		}
	}
	for dim, ax := range ap.Axes {
		if !ax.Distributed {
			continue
		}
		p.Dims[ax.GridDim] = dist.DimPattern{
			Kind:   ax.Kind,
			Block:  ax.Block,
			Extent: ax.Extent,
			Sub:    ref.Subs[dim],
			Offset: ax.Offset,
		}
	}
	return p
}

// CtrlMapping is the §4 decision for one control flow statement.
type CtrlMapping struct {
	Stmt *ir.Stmt
	// Privatized: the statement does not contribute a computation
	// partitioning guard; it executes on the union of processors executing
	// the other statements of the iteration, and its predicate data flows
	// only to that union. Non-privatized control statements execute on all
	// processors.
	Privatized bool
}

// Result is the complete set of mapping decisions for a program.
type Result struct {
	Prog    *ir.Program
	SSA     *ssa.SSA
	Mapping *dist.Mapping
	Opts    Options

	// Scalars maps each scalar SSA definition to its mapping decision.
	Scalars map[*ssa.Value]*ScalarMapping
	// Arrays maps privatized arrays to their privatization.
	Arrays map[*ir.Var]*ArrayPrivatization
	// Ctrl maps SIf/SIfGoto statements to their §4 decision.
	Ctrl map[*ir.Stmt]*CtrlMapping

	Inductions []*dataflow.Induction
	Reductions []*dataflow.Reduction

	// ReducePlan is the reduceplan pass's collective-vs-privatized
	// classification of every recognized reduction (nil when Analyze was
	// called directly; SPMD generation then derives it on demand).
	ReducePlan *dataflow.ReducePlan

	// Priv is the autopriv pass's classification of every candidate
	// (loop, variable) pair — what was privatized, what was declined and
	// why (nil when Analyze was called directly, outside the pipeline).
	Priv *dataflow.PrivSummary

	// Diags lists the non-fatal problems the analyses degraded around
	// (skipped directives, alignment fallbacks), with source positions.
	Diags []Diagnostic

	// Profile is the per-pass instrumentation of the pipeline run that
	// produced this result (nil when Analyze was called directly).
	Profile *pass.CompileProfile
}

// ScalarOfStmt returns the mapping of the scalar defined by an assignment
// statement (nil for array assignments or non-assignments).
func (r *Result) ScalarOfStmt(st *ir.Stmt) *ScalarMapping {
	def := r.SSA.DefOf[st]
	if def == nil {
		return nil
	}
	return r.Scalars[def]
}

// UseMapping returns the mapping governing a scalar use: the mapping
// recorded with its first reaching definition (the algorithm guarantees all
// reaching definitions agree).
func (r *Result) UseMapping(use *ir.Ref) *ScalarMapping {
	defs := r.SSA.ReachingDefs(use)
	for _, d := range defs {
		if m := r.Scalars[d]; m != nil {
			return m
		}
	}
	return nil
}

// RefPattern returns the symbolic owner pattern of any reference under the
// final decisions: arrays via their (possibly privatized) mapping, scalar
// uses via their reaching definition's mapping, scalar definitions via their
// own mapping.
func (r *Result) RefPattern(ref *ir.Ref) dist.OwnerPattern {
	g := r.Mapping.Grid
	if ref.Var.IsArray() {
		if ap := r.Arrays[ref.Var]; ap != nil && ir.Encloses(ap.Loop, ref.Stmt.Loop) {
			return ap.PatternOf(g, ref, r.RefPattern(ap.Target))
		}
		return dist.PatternOf(g, r.Mapping.Arrays[ref.Var], ref)
	}
	var m *ScalarMapping
	if ref.IsDef {
		m = r.Scalars[r.SSA.DefOf[ref.Stmt]]
	} else {
		m = r.UseMapping(ref)
	}
	if m != nil && m.LastPrivate && m.PrivLoop != nil && !ir.Encloses(m.PrivLoop, ref.Stmt.Loop) {
		// Past the copy-out: every processor holds the final value.
		return dist.ReplicatedPattern(g)
	}
	return r.ScalarPattern(m)
}

// ScalarPattern returns the owner pattern for a scalar mapping decision
// (replicated when m is nil).
func (r *Result) ScalarPattern(m *ScalarMapping) dist.OwnerPattern {
	g := r.Mapping.Grid
	if m == nil {
		return dist.ReplicatedPattern(g)
	}
	switch m.Kind {
	case ScalarAligned, ScalarReduction:
		return m.Pattern
	default:
		// Replicated and privatized-without-alignment scalars are treated
		// as replicated by communication analysis.
		return dist.ReplicatedPattern(g)
	}
}
