package core

import "fmt"

// Diagnostic is a structured, non-fatal problem discovered during analysis.
// Instead of aborting the pipeline on the first issue, the analyses degrade
// gracefully — an unmappable directive is skipped (the array stays
// replicated), an invalid alignment candidate falls back to replication —
// and record here what was given up and why, with the source position.
type Diagnostic struct {
	// Line is the source line the problem was found at (0 when unknown).
	Line int
	// Stage names the pass that degraded: "mapping", "scalar-mapping".
	Stage string
	// Subject is the variable or directive the problem concerns.
	Subject string
	// Msg describes the problem and the fallback taken.
	Msg string
}

func (d Diagnostic) String() string {
	loc := ""
	if d.Line > 0 {
		loc = fmt.Sprintf("line %d: ", d.Line)
	}
	return fmt.Sprintf("%s%s: %s: %s", loc, d.Stage, d.Subject, d.Msg)
}

// diagf records a graceful-degradation diagnostic on the result.
func (a *analyzer) diagf(line int, stage, subject, format string, args ...interface{}) {
	a.res.Diags = append(a.res.Diags, Diagnostic{
		Line: line, Stage: stage, Subject: subject,
		Msg: fmt.Sprintf(format, args...),
	})
}
