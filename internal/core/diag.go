package core

import "phpf/internal/diag"

// Diagnostic is the unified positioned diagnostic type (see internal/diag).
// Instead of aborting the pipeline on the first issue, the analyses degrade
// gracefully — an unmappable directive is skipped (the array stays
// replicated), an invalid alignment candidate falls back to replication —
// and record what was given up and why, with the source position.
type Diagnostic = diag.Diagnostic

// diagf records a graceful-degradation diagnostic on the result.
func (a *analyzer) diagf(pos diag.Pos, stage, subject, format string, args ...interface{}) {
	a.res.Diags = append(a.res.Diags,
		diag.Warningf(stage, diag.CodeScalarFallback, subject, pos, format, args...))
}
