package core

import (
	"phpf/internal/ast"
	"phpf/internal/dataflow"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// determineScalar implements Figure 3's DetermineMapping(def, stmt) plus the
// producer-only strategy used for the Table 1 comparison. It returns the
// (possibly provisional) mapping for def.
func (a *analyzer) determineScalar(def *ssa.Value) *ScalarMapping {
	if m := a.res.Scalars[def]; m != nil {
		return m
	}
	if a.inProgress[def] {
		// Recursive query: unresolved yet, treat as replicated for now.
		return nil
	}
	a.inProgress[def] = true
	defer delete(a.inProgress, def)

	st := def.Stmt
	m := a.replicatedMapping(def)

	// Reduction accumulators are handled outside this algorithm (§2.3).
	if a.reductionOf[def.Stmt] != nil {
		a.record(def, m)
		return m
	}

	// All reaching definitions of a use share one mapping: adopt a sibling
	// definition's decision when one exists.
	if sib := a.existingSiblingMapping(def); sib != nil {
		adopted := *sib
		adopted.Def = def
		// The copy-out belongs to the sibling's definition alone.
		adopted.LastPrivate = false
		a.record(def, &adopted)
		return &adopted
	}

	privLoop, lastPriv := a.privatizationLoop(def)
	if privLoop == nil {
		a.record(def, m)
		return m
	}
	m.PrivLoop = privLoop

	rhsRepl := a.isRhsReplicated(st)

	if lastPriv && rhsRepl {
		// Replicating the definition costs nothing (its inputs are already
		// on every processor), while lastprivate would spend a broadcast on
		// the copy-out: keep it replicated.
		m.PrivLoop = nil
		a.record(def, m)
		return m
	}
	// Uses past a lastprivate loop are served by the copy-out; they neither
	// force replication nor act as consumers.
	var skipOutside *ir.Loop
	if lastPriv {
		skipOutside = privLoop
	}

	if a.opts.Scalars == ScalarsProducerAligned {
		// Correctness still forces replication for values needed on every
		// processor (loop bounds, broadcast subscripts). The check must not
		// recurse into consumer mappings (that would finalize later
		// definitions before their own producers are resolved).
		if _, forced := a.selectConsumerMode(def, false, skipOutside); forced {
			if lastPriv {
				m.PrivLoop = nil
			}
			a.record(def, m)
			return m
		}
		// Always align with a partitioned producer reference if one exists.
		if prod := a.selectProducer(st); prod != nil {
			if pat := a.refPattern(prod); !patternValid(pat) {
				a.diagf(st.Pos(), "scalar-mapping", def.Var.Name,
					"producer candidate %s has an invalid owner pattern; falling back to replication", prod)
			} else if lp := a.alignmentLoop(def, prod); lp != nil {
				m.Kind = ScalarAligned
				m.Target = prod
				m.TargetIsConsumer = false
				m.PrivLoop = lp
				m.LastPrivate = lastPriv
				m.Pattern = pat
				a.record(def, m)
				a.propagateToSiblings(def, m)
				return m
			} else {
				a.diagf(st.Pos(), "scalar-mapping", def.Var.Name,
					"no loop level admits alignment with producer %s; falling back to replication", prod)
			}
		}
		if rhsRepl && a.ssa.IsUniqueDef(def) {
			a.noAlignExam = append(a.noAlignExam, def)
		}
		if lastPriv {
			m.PrivLoop = nil
		}
		a.record(def, m)
		return m
	}

	// --- Full §2.2 algorithm ---

	consumer, forcedRepl := a.selectConsumer(def, skipOutside)
	m.SelectedConsumer = consumer
	m.ForcedReplicated = forcedRepl
	if forcedRepl {
		// Some reached use needs the value on every processor (loop bound
		// or broadcast subscript): the dummy replicated reference wins and
		// the traversal is terminated. This also excludes privatization
		// without alignment.
		if lastPriv {
			m.PrivLoop = nil
		}
		a.record(def, m)
		return m
	}

	if rhsRepl && a.ssa.IsUniqueDef(def) {
		a.noAlignExam = append(a.noAlignExam, def)
	}

	var target *ir.Ref
	targetIsConsumer := false
	if consumer != nil {
		target = consumer
		targetIsConsumer = true
	}
	if !rhsRepl && (target == nil || a.innerLoopCommWith(st, target)) {
		if prod := a.selectProducer(st); prod != nil {
			target = prod
			targetIsConsumer = false
		}
	}

	if target != nil {
		if pat := a.refPattern(target); !patternValid(pat) {
			a.diagf(st.Pos(), "scalar-mapping", def.Var.Name,
				"alignment candidate %s has an invalid owner pattern; falling back to replication", target)
		} else if lp := a.alignmentLoop(def, target); lp != nil {
			m.Kind = ScalarAligned
			m.Target = target
			m.TargetIsConsumer = targetIsConsumer
			m.PrivLoop = lp
			m.LastPrivate = lastPriv
			m.Pattern = pat
			a.record(def, m)
			a.propagateToSiblings(def, m)
			return m
		} else {
			a.diagf(st.Pos(), "scalar-mapping", def.Var.Name,
				"no loop level admits alignment with %s; falling back to replication", target)
		}
	}
	if lastPriv {
		m.PrivLoop = nil
	}
	a.record(def, m)
	return m
}

// patternValid rejects owner patterns with degenerate distributions: a
// non-replicated grid dimension must have a positive block size and extent,
// or downstream cost computations divide by zero. Such a candidate is not
// alignable; the caller degrades to replication with a diagnostic.
func patternValid(p dist.OwnerPattern) bool {
	for _, d := range p.Dims {
		if d.Repl {
			continue
		}
		if d.Block <= 0 || d.Extent <= 0 {
			return false
		}
	}
	return true
}

// existingSiblingMapping returns the mapping already recorded for another
// reaching definition sharing a use with def, if any.
func (a *analyzer) existingSiblingMapping(def *ssa.Value) *ScalarMapping {
	for _, ru := range a.ssa.ReachedUses(def) {
		for _, d := range a.ssa.ReachingDefs(ru.Ref) {
			if d == def {
				continue
			}
			if m := a.res.Scalars[d]; m != nil {
				return m
			}
		}
	}
	return nil
}

// privatizationLoop determines the loop with respect to which def is
// privatizable: data-flow analysis first, then the NEW clause of an
// enclosing INDEPENDENT/NODEPS loop (which asserts privatizability and makes
// any seemingly-reached use outside that loop spurious), then the autopriv
// pass's inferred annotations. The second result marks a lastprivate
// privatization: valid only with the final-iteration copy-out at loop exit.
// Strict inference ignores NEW clauses.
func (a *analyzer) privatizationLoop(def *ssa.Value) (*ir.Loop, bool) {
	if _, l := dataflow.PrivatizationLevel(a.ssa, def); l != nil {
		return l, false
	}
	strict := a.opts.PrivatizationMode() == PrivInferStrict
	for l := def.Stmt.Loop; l != nil; l = l.Parent {
		if !strict {
			for _, name := range l.New {
				if name == def.Var.Name {
					return l, false
				}
			}
		}
		for _, name := range l.InferredNew {
			if name == def.Var.Name {
				return l, false
			}
		}
	}
	for l := def.Stmt.Loop; l != nil; l = l.Parent {
		for _, name := range l.InferredLast {
			if name == def.Var.Name {
				return l, true
			}
		}
	}
	return nil, false
}

// privatizableWrt reports whether def may be privatized with respect to l
// (analysis, NEW assertion unless strict inference, or inferred annotation).
// A lastprivate annotation asserts privatizability only at exactly its loop
// — the level where the copy-out happens.
func (a *analyzer) privatizableWrt(def *ssa.Value, l *ir.Loop) bool {
	if dataflow.Privatizable(a.ssa, def, l) {
		return true
	}
	if !ir.Encloses(l, def.Stmt.Loop) {
		return false
	}
	if a.opts.PrivatizationMode() != PrivInferStrict {
		for _, name := range l.New {
			if name == def.Var.Name {
				return true
			}
		}
	}
	for _, name := range l.InferredNew {
		if name == def.Var.Name {
			return true
		}
	}
	for _, name := range l.InferredLast {
		if name == def.Var.Name {
			return true
		}
	}
	return false
}

// alignmentLoop finds the outermost enclosing loop l such that def is
// privatizable with respect to l and the alignment with target is valid
// throughout l (AlignLevel(target) <= level(l)). Returns nil when no level
// works.
func (a *analyzer) alignmentLoop(def *ssa.Value, target *ir.Ref) *ir.Loop {
	al := a.alignLevel(target, nil)
	var chain []*ir.Loop
	for l := def.Stmt.Loop; l != nil; l = l.Parent {
		chain = append([]*ir.Loop{l}, chain...)
	}
	for _, l := range chain {
		if l.Level >= al && a.privatizableWrt(def, l) {
			return l
		}
	}
	return nil
}

// alignLevel computes the paper's AlignLevel(r): the maximum
// SubscriptAlignLevel over the subscripts appearing in partitioned
// dimensions of r. restrictGrid, when non-nil, restricts the computation to
// array dimensions mapped to those grid dimensions (partial privatization).
func (a *analyzer) alignLevel(r *ir.Ref, restrictGrid map[int]bool) int {
	if !r.Var.IsArray() {
		return 0
	}
	am := a.m.Arrays[r.Var]
	if am == nil {
		return 0
	}
	lvl := 0
	for dim, ax := range am.Axes {
		if !ax.Distributed {
			continue
		}
		if restrictGrid != nil && !restrictGrid[ax.GridDim] {
			continue
		}
		if s := ir.SubscriptAlignLevel(r.Subs[dim], r.Stmt); s > lvl {
			lvl = s
		}
	}
	return lvl
}

// propagateToSiblings records the same mapping for every reaching definition
// of every reached use of def — the compiler's restriction that all reaching
// definitions of a use share one mapping.
func (a *analyzer) propagateToSiblings(def *ssa.Value, m *ScalarMapping) {
	for _, ru := range a.ssa.ReachedUses(def) {
		for _, d := range a.ssa.ReachingDefs(ru.Ref) {
			if d == def || d.Kind != ssa.VDef {
				continue
			}
			if a.res.Scalars[d] == nil {
				sib := *m
				sib.Def = d
				// The copy-out belongs to def alone.
				sib.LastPrivate = false
				a.res.Scalars[d] = &sib
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Consumer selection

// selectConsumer traverses the reached uses of def and picks a consumer
// alignment target. The second result is true when some use forces the
// dummy replicated reference (the value is needed on all processors:
// loop-bound uses and broadcast subscripts), terminating the traversal.
// skipOutside, when non-nil, excludes uses outside that loop from the
// traversal (a lastprivate copy-out serves them).
func (a *analyzer) selectConsumer(def *ssa.Value, skipOutside *ir.Loop) (*ir.Ref, bool) {
	return a.selectConsumerMode(def, true, skipOutside)
}

// selectConsumerMode is selectConsumer with control over whether
// privatizable-scalar consumers are resolved recursively.
func (a *analyzer) selectConsumerMode(def *ssa.Value, resolve bool, skipOutside *ir.Loop) (*ir.Ref, bool) {
	var best *ir.Ref
	bestScore := -1
	consider := func(cand *ir.Ref, use *ir.Ref) {
		if cand == nil {
			return
		}
		score := a.scoreTarget(cand, def.Stmt, use.Stmt)
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	for _, ru := range a.ssa.ReachedUses(def) {
		u := ru.Ref
		st := u.Stmt
		if skipOutside != nil && !ir.Encloses(skipOutside, st.Loop) {
			continue
		}
		switch {
		case st.Kind == ir.SLoopBounds:
			// Loop bounds must be evaluated by every processor.
			return nil, true

		case u.InSubscript:
			encl := u.EnclosingRef
			if encl == nil {
				return nil, true
			}
			if encl.IsDef {
				// Subscript of the lhs: if it indexes a distributed
				// dimension, every processor needs it to evaluate the
				// ownership guard.
				if a.subscriptOnDistributedDim(u, encl) {
					return nil, true
				}
				consider(encl, u)
				continue
			}
			// Subscript of an rhs reference: needed only by the statement's
			// executors when the reference itself needs no communication;
			// otherwise it must be broadcast (phpf's §2.1 optimization).
			if a.refNeedsComm(encl, st) {
				return nil, true
			}
			if st.Kind == ir.SAssign {
				consider(st.Lhs, u)
			}
			continue

		case st.Kind == ir.SIf || st.Kind == ir.SIfGoto:
			// Predicate use: the consumer is the union of processors
			// executing control-dependent statements. When that union is
			// representable by the lhs of a dependent assignment, use it;
			// otherwise force replication.
			if cand := a.controlConsumer(st); cand != nil {
				consider(cand, u)
				continue
			}
			return nil, true

		case st.Kind == ir.SAssign:
			if resolve || st.Lhs.Var.IsArray() {
				consider(a.consumerRefOf(st), u)
			}

		default:
			// Redistribute or other statements: value needed everywhere.
			return nil, true
		}
	}
	return best, false
}

// consumerRefOf resolves the consumer reference of a plain rhs use: the lhs
// of the assignment. Privatizable-scalar lhs references are resolved
// recursively to their own alignment target (paper §2.2).
func (a *analyzer) consumerRefOf(st *ir.Stmt) *ir.Ref {
	lhs := st.Lhs
	if lhs.Var.IsArray() {
		if a.refPattern(lhs).IsReplicated() {
			return nil // consumer refers to replicated data: ignore
		}
		return lhs
	}
	// Scalar lhs: recursively determine its mapping.
	lhsDef := a.ssa.DefOf[st]
	if lhsDef == nil {
		return nil
	}
	lm := a.determineScalar(lhsDef)
	if lm == nil {
		return nil // in-progress (cycle): treated as replicated
	}
	if lm.Kind == ScalarAligned || lm.Kind == ScalarReduction {
		return lm.Target
	}
	return nil
}

// controlConsumer picks a representative alignment target for data used in
// a control predicate: the lhs of the first control-dependent assignment to
// partitioned data, provided the control statement is privatizable (§4).
func (a *analyzer) controlConsumer(ctrl *ir.Stmt) *ir.Ref {
	if !a.opts.PrivatizeControlFlow || !a.ctrlPrivatizable(ctrl) {
		return nil
	}
	var found *ir.Ref
	for _, st := range a.prog.Stmts {
		if st.Kind != ir.SAssign {
			continue
		}
		for _, e := range st.EnclosingIfs {
			if e == ctrl {
				if st.Lhs.Var.IsArray() && !a.refPattern(st.Lhs).IsReplicated() {
					return st.Lhs
				}
				if found == nil {
					found = st.Lhs
				}
			}
		}
	}
	return found
}

// subscriptOnDistributedDim reports whether use u sits in a subscript
// position of ref that indexes a distributed dimension.
func (a *analyzer) subscriptOnDistributedDim(u *ir.Ref, ref *ir.Ref) bool {
	am := a.m.Arrays[ref.Var]
	if ap := a.res.Arrays[ref.Var]; ap != nil {
		// Privatized array: partitioned dims are in ap.Axes.
		for dim, ax := range ap.Axes {
			if ax.Distributed && subscriptContains(ref, dim, u) {
				return true
			}
		}
		return false
	}
	if am == nil {
		return false
	}
	for dim, ax := range am.Axes {
		if ax.Distributed && subscriptContains(ref, dim, u) {
			return true
		}
	}
	return false
}

// subscriptContains reports whether the use's AST node appears within the
// dim-th subscript expression of ref.
func subscriptContains(ref *ir.Ref, dim int, u *ir.Ref) bool {
	if dim >= len(ref.Ast.Subs) {
		return false
	}
	found := false
	ast.Walk(ref.Ast.Subs[dim], func(e ast.Expr) {
		if e == ast.Expr(u.Ast) {
			found = true
		}
	})
	return found
}

// refNeedsComm reports whether rhs reference ref requires communication for
// statement st under the current decisions.
func (a *analyzer) refNeedsComm(ref *ir.Ref, st *ir.Stmt) bool {
	src := a.refPattern(ref)
	dst := a.execPattern(st)
	return !dist.Covers(src, dst)
}

// ---------------------------------------------------------------------------
// Producer selection

// selectProducer picks a partitioned rhs reference of the statement (array
// references first, then aligned scalars' targets), preferring references
// that traverse a distributed dimension in the statement's innermost loop.
func (a *analyzer) selectProducer(st *ir.Stmt) *ir.Ref {
	var best *ir.Ref
	bestScore := -1
	for _, u := range st.Uses {
		if u.InSubscript {
			continue
		}
		var cand *ir.Ref
		if u.Var.IsArray() {
			cand = u
		} else {
			// A scalar rhs whose mapping is (already) aligned contributes
			// its target.
			for _, d := range a.ssa.ReachingDefs(u) {
				if mm := a.res.Scalars[d]; mm != nil && mm.Kind == ScalarAligned {
					cand = mm.Target
					break
				}
			}
		}
		if cand == nil {
			continue
		}
		if a.refPattern(cand).IsReplicated() {
			continue
		}
		score := a.scoreTarget(cand, st, st)
		if score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best
}

// scoreTarget ranks an alignment candidate: partitioned references whose
// distributed dimension is traversed in the innermost common loop of the
// definition and the use score highest (the paper prefers A(i) over A(1)
// inside an i-loop).
func (a *analyzer) scoreTarget(cand *ir.Ref, defStmt, useStmt *ir.Stmt) int {
	pat := a.refPattern(cand)
	if pat.IsReplicated() {
		return -1
	}
	icl := ir.InnermostCommonLoop(defStmt.Loop, useStmt.Loop)
	score := 1
	for l := icl; l != nil; l = l.Parent {
		if pat.VariesInLoop(l) {
			score = 2
			break
		}
	}
	return score
}

// ---------------------------------------------------------------------------
// Inner-loop communication test

// innerLoopCommWith reports whether aligning the scalar defined by st with
// target would require communication placed inside st's innermost loop for
// some rhs reference of st — i.e. a message per iteration rather than a
// vectorized one (§2.1's x-versus-y distinction).
func (a *analyzer) innerLoopCommWith(st *ir.Stmt, target *ir.Ref) bool {
	loop := st.Loop
	if loop == nil {
		return false
	}
	dst := a.refPattern(target)
	for _, u := range st.Uses {
		if u.InSubscript && u.EnclosingRef == st.Lhs {
			continue
		}
		src := a.refPattern(u)
		if dist.Covers(src, dst) {
			continue // no communication for this reference
		}
		if !a.hoistableFrom(u, loop) {
			return true
		}
	}
	return false
}

// hoistableFrom reports whether communication for reference u can be moved
// outside loop l (message vectorization): the referenced data must not be
// produced inside l (no flow dependence carried within l) and the access
// must be analyzable (affine subscripts for arrays).
func (a *analyzer) hoistableFrom(u *ir.Ref, l *ir.Loop) bool {
	if u.Var.IsArray() {
		for _, sub := range u.Subs {
			if !sub.OK {
				return false
			}
		}
		// A definition of the array inside l defeats hoisting only when it
		// may produce an element the use reads.
		for _, st := range a.prog.Stmts {
			if st.Kind == ir.SAssign && st.Lhs.Var == u.Var && ir.Encloses(l, st.Loop) {
				if ir.MayOverlapAcross(st.Lhs, u, l) {
					return false
				}
			}
		}
		return true
	}
	// Scalar: hoistable only if no reaching definition lies inside l.
	for _, d := range a.ssa.ReachingDefs(u) {
		if d.Kind == ssa.VDef && ir.Encloses(l, d.Stmt.Loop) {
			return false
		}
	}
	return true
}
