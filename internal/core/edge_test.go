package core

import (
	"testing"

	"phpf/internal/ir"
)

// TestNewClauseAssertsScalarPrivatizability: a scalar that looks live-out
// is still privatized when the NEW clause asserts per-iteration lifetime.
func TestNewClauseAssertsScalarPrivatizability(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n), d(n)
real x
integer i
!hpf$ align (i) with a(i) :: b, d
!hpf$ distribute (block) :: a
!hpf$ independent, new(x)
do i = 1, n
  x = b(i)
  a(i) = x
end do
d(1) = x
end
`
	r := analyze(t, src, 4, DefaultOptions())
	m := scalarMappingOf(t, r, "x", 0)
	if m.Kind == ScalarReplicated {
		t.Errorf("x mapping = %v; NEW should make it privatizable", m)
	}
}

// TestScalarChainRecursion: x's consumer is y (privatizable), whose
// consumer is the array — the recursive resolution aligns both with the
// final array reference.
func TestScalarChainRecursion(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n)
real x, y
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 2, n
  x = b(i-1)
  y = x * 2.0
  a(i) = y
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	xm := scalarMappingOf(t, r, "x", 0)
	ym := scalarMappingOf(t, r, "y", 0)
	if ym.Kind != ScalarAligned || ym.Target.Var.Name != "a" {
		t.Errorf("y mapping = %v, want aligned with a(i)", ym)
	}
	if xm.Kind != ScalarAligned {
		t.Fatalf("x mapping = %v, want aligned", xm)
	}
	// x's consumer y resolves to y's target a(i).
	if xm.Target.Var.Name != "a" && xm.Target.Var.Name != "b" {
		t.Errorf("x target = %v", xm.Target)
	}
}

// TestMutualScalarCycle: two scalars feeding each other across iterations
// must not send the analysis into infinite recursion.
func TestMutualScalarCycle(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n)
real x, y
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
x = 0.0
y = 0.0
do i = 1, n
  x = y + b(i)
  y = x * 0.5
  a(i) = y
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	// Just verify the analysis terminated and produced mappings.
	if scalarMappingOf(t, r, "x", 1) == nil || scalarMappingOf(t, r, "y", 1) == nil {
		t.Fatal("missing mappings")
	}
}

// TestAlignLevelBlocksDeepTarget: when the only consumer's alignment is
// valid only in an inner loop but the definition must be privatized with
// respect to an outer loop (its uses span the outer body), no alignment is
// applied.
func TestAlignLevelBlocksDeepTarget(t *testing.T) {
	src := `
program t
parameter n = 8
real a(n,n), b(n)
real x
integer i, j
!hpf$ distribute (*,block) :: a
do i = 1, n
  x = b(i)
  do j = 1, n
    a(i,j) = x + a(i,j)
  end do
end do
end
`
	// x's consumer a(i,j): partitioned dim 2's subscript j has
	// SubscriptAlignLevel 2, but x is defined at level 1 and its uses span
	// the j-loop, so it is privatizable only with respect to the i-loop —
	// AlignLevel 2 > 1 makes the alignment invalid.
	r := analyze(t, src, 4, DefaultOptions())
	m := scalarMappingOf(t, r, "x", 0)
	if m.Kind == ScalarAligned {
		t.Errorf("x mapping = %v; alignment should be invalid (AlignLevel)", m)
	}
}

// TestNoDepsArrayInference: under the weaker NODEPS directive, a written
// array whose lhs subscripts are invariant in the loop is inferred
// privatizable.
func TestNoDepsArrayInference(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n)
integer i, j
!hpf$ distribute (*,block) :: a
!hpf$ nodeps
do j = 1, n
  do i = 1, n
    w(i) = a(i,j) * 2.0
  end do
  do i = 1, n
    a(i,j) = w(i) + 1.0
  end do
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	w := r.Prog.LookupVar("w")
	ap := r.Arrays[w]
	if ap == nil {
		t.Fatal("w should be inferred privatizable under NODEPS")
	}
	if ap.Loop.Index.Name != "j" {
		t.Errorf("w privatized wrt %s-loop, want j", ap.Loop.Index.Name)
	}
	if ap.Target == nil || ap.Target.Var.Name != "a" {
		t.Errorf("target = %v", ap.Target)
	}
}

// TestNoDepsDoesNotCaptureVaryingArray: an array whose subscripts vary with
// the NODEPS loop has no memory-based carried dependence, so the directive
// does not capture it (pinned in directives-only mode — the inference pass
// can and does privatize it on its own merits).
func TestNoDepsDoesNotCaptureVaryingArray(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n,n)
integer i, j
!hpf$ distribute (*,block) :: a
!hpf$ nodeps
do j = 1, n
  do i = 1, n
    w(i,j) = a(i,j) * 2.0
  end do
  do i = 1, n
    a(i,j) = w(i,j) + 1.0
  end do
end do
end
`
	opts := DefaultOptions()
	opts.Privatization = PrivDirectives
	r := analyze(t, src, 4, opts)
	if ap := r.Arrays[r.Prog.LookupVar("w")]; ap != nil {
		t.Errorf("w privatized (%v) although its subscripts vary with j", ap)
	}
}

// TestArrayPrivatizationDisabled honors the option toggle.
func TestArrayPrivatizationDisabled(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), w(n)
integer i, k
!hpf$ distribute (block) :: a
!hpf$ independent, new(w)
do k = 1, n
  do i = 1, n
    w(i) = 1.0
  end do
  do i = 1, n
    a(i) = w(i)
  end do
end do
end
`
	opts := DefaultOptions()
	opts.PrivatizeArrays = false
	r := analyze(t, src, 4, opts)
	if len(r.Arrays) != 0 {
		t.Errorf("arrays privatized with the option off: %v", r.Arrays)
	}
}

// TestInductionWithNonUnitIncrement: m = m + 3 rewrites to an affine form.
func TestInductionWithNonUnitIncrement(t *testing.T) {
	src := `
program t
parameter n = 40
real d(n)
integer i, m
m = 0
do i = 1, 10
  m = m + 3
  d(m) = 1.0
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	if len(r.Inductions) != 1 || r.Inductions[0].Incr != 3 {
		t.Fatalf("inductions = %v", r.Inductions)
	}
	var dStmt *ir.Stmt
	for _, st := range r.Prog.Stmts {
		if st.Kind == ir.SAssign && st.Lhs.Var.Name == "d" {
			dStmt = st
		}
	}
	if !dStmt.Lhs.Subs[0].OK {
		t.Errorf("d(m) subscript = %v, want affine 3*i", dStmt.Lhs.Subs[0])
	}
}

// TestReplicatedLhsConsumerIgnored: a consumer referring to replicated data
// is ignored; with no other candidate the scalar stays unaligned.
func TestReplicatedLhsConsumerIgnored(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), u(n)
real x
integer i
!hpf$ distribute (block) :: a
do i = 1, n
  x = a(i)
  u(i) = x
end do
end
`
	// u is unmapped → replicated; the consumer u(i) is ignored, and the
	// producer a(i) is selected instead (rhs not replicated).
	r := analyze(t, src, 4, DefaultOptions())
	m := scalarMappingOf(t, r, "x", 0)
	if m.Kind != ScalarAligned || m.TargetIsConsumer {
		t.Errorf("x mapping = %v, want producer alignment with a(i)", m)
	}
	if m.Target.Var.Name != "a" {
		t.Errorf("x target = %v", m.Target)
	}
}

// TestScalarAtTopLevelStaysReplicated: definitions outside any loop cannot
// be privatized.
func TestScalarAtTopLevelStaysReplicated(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n)
real x
integer i
!hpf$ distribute (block) :: a
x = 3.0
do i = 1, n
  a(i) = x
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	m := scalarMappingOf(t, r, "x", 0)
	if m.Kind != ScalarReplicated {
		t.Errorf("x mapping = %v, want replicated (top-level def)", m)
	}
}

// TestPartialPrivatizationNeedsMatchingDim: when no dimension of the
// private array matches the target's partitioned subscript, privatization
// fails gracefully.
func TestPartialPrivatizationNeedsMatchingDim(t *testing.T) {
	src := `
program t
parameter n = 8
real c(n), rsd(n,n)
integer i, j, k
!hpf$ distribute (block,block) :: rsd
!hpf$ independent, new(c)
do k = 2, n-1
  do j = 2, n-1
    do i = 2, n-1
      c(i) = rsd(i,j) + 1.0
    end do
    do i = 2, n-1
      rsd(i,j) = c(i) * 2.0
    end do
  end do
end do
end
`
	// Target rsd(i,j): dim 1 (i) has SAL 3, dim 2 (j) has SAL 2, both > 1
	// (the k-loop level). Partition matching: c's def subscript i matches
	// rsd's dim-1 subscript, j has no matching dimension of c → partial
	// privatization impossible.
	r := analyze(t, src, 4, DefaultOptions())
	if ap := r.Arrays[r.Prog.LookupVar("c")]; ap != nil {
		t.Errorf("c privatized = %v, want failure (no matching dim for j)", ap)
	}
}

// TestControlPredicateConsumer: a scalar read only by a privatized IF's
// predicate aligns with the lhs of a control-dependent assignment (§4: the
// predicate data flows to the union of dependent statements).
func TestControlPredicateConsumer(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n)
real x
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  x = b(i) * 2.0
  if (x > 0.0) then
    a(i) = x
  end if
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	m := scalarMappingOf(t, r, "x", 0)
	if m.Kind != ScalarAligned || m.Target.Var.Name != "a" {
		t.Errorf("x mapping = %v, want aligned with a(i)", m)
	}
}

// TestControlPredicateForcedWhenNotPrivatized: with §4 off, the predicate
// runs everywhere and the scalar must be replicated.
func TestControlPredicateForcedWhenNotPrivatized(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n)
real x
integer i
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  x = b(i) * 2.0
  if (x > 0.0) then
    a(i) = x
  end if
end do
end
`
	opts := DefaultOptions()
	opts.PrivatizeControlFlow = false
	r := analyze(t, src, 4, opts)
	m := scalarMappingOf(t, r, "x", 0)
	if m.Kind != ScalarReplicated || !m.ForcedReplicated {
		t.Errorf("x mapping = %v, want forced replicated", m)
	}
}

// TestLhsSubscriptDistributedDimForcesReplication: a scalar indexing a
// distributed dimension of the lhs must be known everywhere (the ownership
// guard needs it).
func TestLhsSubscriptDistributedDimForcesReplication(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n), b(n)
integer i, k1
!hpf$ align b(i) with a(i)
!hpf$ distribute (block) :: a
do i = 1, n
  k1 = mod(i * 7, n) + 1
  a(k1) = b(i)
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	m := scalarMappingOf(t, r, "k1", 0)
	if !m.ForcedReplicated || m.Kind != ScalarReplicated {
		t.Errorf("k1 mapping = %v, want forced replicated", m)
	}
}

// TestLhsSubscriptCollapsedDimAllowsAlignment: the same pattern on a
// collapsed dimension only needs the value at the owner (the DGEFA a(l,k)
// situation).
func TestLhsSubscriptCollapsedDimAllowsAlignment(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), b(n)
integer i, k1
!hpf$ distribute (*,cyclic) :: a
do i = 1, n
  k1 = mod(i * 7, n) + 1
  a(k1,i) = b(i)
end do
end
`
	r := analyze(t, src, 4, DefaultOptions())
	m := scalarMappingOf(t, r, "k1", 0)
	if m.ForcedReplicated {
		t.Errorf("k1 mapping = %v; collapsed-dim subscript should not force replication", m)
	}
	// The consumer traversal selects a(k1,i); because k1's rhs is
	// replicated data (loop index arithmetic), the end-of-pass rule then
	// privatizes it without alignment — strictly better, and exactly what
	// Figure 3 prescribes.
	if m.SelectedConsumer == nil || m.SelectedConsumer.Var.Name != "a" {
		t.Errorf("k1 consumer = %v, want a(k1,i)", m.SelectedConsumer)
	}
	if m.Kind != ScalarNoAlign {
		t.Errorf("k1 mapping = %v, want private-noalign", m)
	}
}
