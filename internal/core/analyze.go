package core

import (
	"phpf/internal/dataflow"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// analyzer carries the state of one mapping pass.
type analyzer struct {
	prog *ir.Program
	ssa  *ssa.SSA
	cp   *dataflow.ConstProp
	m    *dist.Mapping
	opts Options
	res  *Result

	// inProgress guards the recursive consumer-mapping invocation.
	inProgress map[*ssa.Value]bool
	// noAlignExam is the paper's deferred list: definitions eligible for
	// privatization without alignment, re-examined at the end of the pass.
	noAlignExam []*ssa.Value
	// reductionOf maps the defining statement of a recognized reduction
	// accumulator to its reduction.
	reductionOf map[*ir.Stmt]*dataflow.Reduction
}

// Analyze runs the complete mapping pass over a program whose induction
// variables have already been rewritten (see dataflow.ApplyInductionRewrites)
// and whose SSA has been rebuilt afterwards.
func Analyze(p *ir.Program, s *ssa.SSA, cp *dataflow.ConstProp, m *dist.Mapping,
	ivs []*dataflow.Induction, opts Options) *Result {

	a := &analyzer{
		prog: p, ssa: s, cp: cp, m: m, opts: opts,
		inProgress:  map[*ssa.Value]bool{},
		reductionOf: map[*ir.Stmt]*dataflow.Reduction{},
		res: &Result{
			Prog: p, SSA: s, Mapping: m, Opts: opts,
			Scalars:    map[*ssa.Value]*ScalarMapping{},
			Arrays:     map[*ir.Var]*ArrayPrivatization{},
			Ctrl:       map[*ir.Stmt]*CtrlMapping{},
			Inductions: ivs,
		},
	}

	// 1. Array privatization (§3) — before scalars, so that scalar
	// consumer/producer selection sees privatized array mappings.
	if opts.PrivatizeArrays {
		a.privatizeArrays()
	}

	// 2. Reductions (§2.3). Reduction accumulators are handled outside the
	// Figure-3 algorithm in either case: mapped per §2.3 when the
	// optimization is on, replicated when it is off (the Table 2 "Default"
	// configuration).
	a.res.Reductions = dataflow.FindReductions(p, s)
	for _, red := range a.res.Reductions {
		a.reductionOf[red.Stmt] = red
	}
	for _, red := range a.res.Reductions {
		if opts.AlignReductions {
			a.mapReduction(red)
		} else if def := s.DefOf[red.Stmt]; def != nil && a.res.Scalars[def] == nil {
			m := a.replicatedMapping(def)
			a.record(def, m)
			a.propagateToSiblings(def, m)
		}
	}

	// 3. Scalar mappings (§2.2), in program order.
	if opts.Scalars != ScalarsReplicated {
		for _, st := range p.Stmts {
			if st.Kind != ir.SAssign || st.Lhs.Var.IsArray() {
				continue
			}
			def := s.DefOf[st]
			if def == nil || a.res.Scalars[def] != nil {
				continue
			}
			a.determineScalar(def)
		}
		// Final pass over the deferred no-alignment list: privatize without
		// alignment those whose rhs data is still replicated.
		a.finalizeNoAlign()
	}
	// Every remaining scalar definition gets the default mapping.
	for _, st := range p.Stmts {
		if st.Kind != ir.SAssign || st.Lhs.Var.IsArray() {
			continue
		}
		if def := s.DefOf[st]; def != nil && a.res.Scalars[def] == nil {
			a.record(def, a.replicatedMapping(def))
		}
	}

	// 4. Control flow statements (§4).
	if opts.PrivatizeControlFlow {
		a.mapControlFlow()
	}

	return a.res
}

// record installs a mapping for def.
func (a *analyzer) record(def *ssa.Value, m *ScalarMapping) {
	m.Def = def
	a.res.Scalars[def] = m
}

// replicatedMapping is the default decision.
func (a *analyzer) replicatedMapping(def *ssa.Value) *ScalarMapping {
	return &ScalarMapping{Def: def, Kind: ScalarReplicated,
		Pattern: dist.ReplicatedPattern(a.m.Grid)}
}

// finalizeNoAlign re-examines the deferred list (end of Figure 3's
// description): if all rhs data on the defining statement is still
// replicated, the definition is privatized without alignment, overriding any
// alignment recorded earlier.
func (a *analyzer) finalizeNoAlign() {
	for _, def := range a.noAlignExam {
		if !a.isRhsReplicated(def.Stmt) {
			continue
		}
		m := a.res.Scalars[def]
		if m == nil {
			m = a.replicatedMapping(def)
			a.record(def, m)
		}
		m.Kind = ScalarNoAlign
		m.Target = nil
		m.Pattern = dist.ReplicatedPattern(a.m.Grid)
		if m.PrivLoop == nil {
			_, m.PrivLoop = dataflow.PrivatizationLevel(a.ssa, def)
			if m.PrivLoop == nil {
				m.PrivLoop = def.Stmt.Loop
			}
		}
	}
}

// isRhsReplicated reports whether every rhs datum of the statement is
// replicated under the current (possibly partial) decisions. Loop indices
// and constants are implicitly replicated.
func (a *analyzer) isRhsReplicated(st *ir.Stmt) bool {
	for _, u := range st.Uses {
		if u.IsDef {
			continue
		}
		// Uses inside the LHS subscript are not rhs data.
		if u.InSubscript && u.EnclosingRef == st.Lhs {
			continue
		}
		if !a.refPattern(u).IsReplicated() {
			return false
		}
	}
	return true
}

// refPattern is RefPattern against the in-flux state: scalars whose mapping
// is still being determined count as replicated (the paper defers for
// exactly this reason).
func (a *analyzer) refPattern(ref *ir.Ref) dist.OwnerPattern {
	g := a.m.Grid
	if ref.Var.IsArray() {
		if ap := a.res.Arrays[ref.Var]; ap != nil && ir.Encloses(ap.Loop, ref.Stmt.Loop) {
			return ap.PatternOf(g, ref, a.refPattern(ap.Target))
		}
		return dist.PatternOf(g, a.m.Arrays[ref.Var], ref)
	}
	var m *ScalarMapping
	if ref.IsDef {
		m = a.res.Scalars[a.ssa.DefOf[ref.Stmt]]
	} else {
		for _, d := range a.ssa.ReachingDefs(ref) {
			if mm := a.res.Scalars[d]; mm != nil {
				m = mm
				break
			}
		}
	}
	if m != nil && m.LastPrivate && m.PrivLoop != nil && !ir.Encloses(m.PrivLoop, ref.Stmt.Loop) {
		// Past the copy-out: every processor holds the final value.
		return dist.ReplicatedPattern(g)
	}
	return a.res.ScalarPattern(m)
}

// execPattern approximates where a statement executes under owner-computes
// with the current decisions.
func (a *analyzer) execPattern(st *ir.Stmt) dist.OwnerPattern {
	switch st.Kind {
	case ir.SAssign:
		return a.refPattern(st.Lhs)
	default:
		// Control statements, bounds and redistributes: everywhere (until
		// §4 privatizes them, which only narrows communication, handled
		// separately).
		return dist.ReplicatedPattern(a.m.Grid)
	}
}
