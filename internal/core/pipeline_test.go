package core

import (
	"strings"
	"testing"

	"phpf/internal/parser"
)

func analyzeSrc(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := BuildAndAnalyze(ap, 4, opts)
	if err != nil {
		t.Fatalf("BuildAndAnalyze: %v", err)
	}
	return res
}

// TestInductionRebuildExactlyOnce is the regression test for the silent
// double-rebuild: after induction rewriting, cfg/ssa/constprop must be
// rebuilt exactly once — by the manager, lazily, before analyze — and the
// rebuild must be visible in the profile.
func TestInductionRebuildExactlyOnce(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n)
integer i, k
!hpf$ distribute (block) :: a
k = 0
do i = 1, n
  k = k + 1
  a(k) = 1.0
end do
end
`
	res := analyzeSrc(t, src, DefaultOptions())
	if len(res.Inductions) == 0 {
		t.Fatal("no induction variable recognized; test program is broken")
	}
	if res.Profile == nil {
		t.Fatal("no compile profile on the result")
	}
	for _, name := range []string{"cfg", "ssa", "constprop"} {
		if got := res.Profile.Runs(name); got != 2 {
			t.Errorf("%s ran %d times, want exactly 2 (initial + one post-rewrite rebuild)",
				name, got)
		}
	}
	for _, name := range []string{"ir", "induction", "mapping", "analyze"} {
		if got := res.Profile.Runs(name); got != 1 {
			t.Errorf("%s ran %d times, want 1", name, got)
		}
	}
	// The analysis must be built over the rebuilt SSA, not a stale one.
	if res.SSA.Prog != res.Prog {
		t.Error("result SSA not over the result program")
	}
}

// TestNoInductionNoRebuild: without induction rewrites every pass runs once.
func TestNoInductionNoRebuild(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n)
real x
integer i
!hpf$ distribute (block) :: a
do i = 1, n
  x = a(i)
  a(i) = x + 1.0
end do
end
`
	res := analyzeSrc(t, src, DefaultOptions())
	for _, name := range []string{"ir", "cfg", "ssa", "constprop", "induction", "mapping", "analyze"} {
		if got := res.Profile.Runs(name); got != 1 {
			t.Errorf("%s ran %d times, want 1", name, got)
		}
	}
}

// TestDumpAfterOption: Options.DumpAfter captures the snapshot in the
// profile, and two compilations agree byte for byte.
func TestDumpAfterOption(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n)
integer i
!hpf$ distribute (block) :: a
do i = 1, n
  a(i) = 1.0
end do
end
`
	opts := DefaultOptions()
	opts.DumpAfter = "ssa"
	r1 := analyzeSrc(t, src, opts)
	r2 := analyzeSrc(t, src, opts)
	d1, ok := r1.Profile.Dumps["ssa"]
	if !ok {
		t.Fatal("DumpAfter=ssa captured no snapshot")
	}
	if !strings.Contains(d1, "== ssa ==") {
		t.Errorf("snapshot missing ssa section:\n%s", d1)
	}
	if d2 := r2.Profile.Dumps["ssa"]; d1 != d2 {
		t.Errorf("snapshot not byte-stable across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", d1, d2)
	}
}
