package core

import (
	"phpf/internal/ast"
	"phpf/internal/dataflow"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// BuildAndAnalyze runs the full analysis front end on a parsed program for a
// given processor count: IR construction, CFG + SSA, constant propagation,
// induction-variable recognition with closed-form rewriting (followed by an
// SSA rebuild), directive resolution, and the mapping pass.
//
// Directive resolution is lenient: a bad mapping directive does not fail the
// compilation — the directive is skipped (the affected arrays stay
// replicated, which is always correct) and the problem is recorded in
// Result.Diags with its source position. Errors are reserved for programs no
// mapping can make executable (parse/IR construction failures).
func BuildAndAnalyze(src *ast.Program, nprocs int, opts Options) (*Result, error) {
	p, err := ir.Build(src)
	if err != nil {
		return nil, err
	}
	g, err := ir.BuildCFG(p)
	if err != nil {
		return nil, err
	}
	s := ssa.Build(p, g)
	cp := dataflow.PropagateConstants(s)

	ivs := dataflow.FindInductionVars(p, s, cp)
	if len(ivs) > 0 {
		dataflow.ApplyInductionRewrites(p, s, ivs)
		// Expression rewriting invalidates the SSA use links; rebuild.
		g, err = ir.BuildCFG(p)
		if err != nil {
			return nil, err
		}
		s = ssa.Build(p, g)
		cp = dataflow.PropagateConstants(s)
	}

	m, probs, err := dist.ResolveLenient(p, nprocs)
	if err != nil {
		return nil, err
	}
	res := Analyze(p, s, cp, m, ivs, opts)
	if len(probs) > 0 {
		// Mapping problems precede any scalar-mapping diagnostics Analyze
		// recorded, in source order.
		diags := make([]Diagnostic, 0, len(probs)+len(res.Diags))
		for _, pr := range probs {
			diags = append(diags, Diagnostic{Line: pr.Line, Stage: "mapping",
				Subject: "directive", Msg: pr.Msg})
		}
		res.Diags = append(diags, res.Diags...)
	}
	return res, nil
}
