package core

import (
	"testing"

	"phpf/internal/ast"
	"phpf/internal/pass"
)

// Pipeline returns the declared analysis pipeline, ending in the analyze
// pass which deposits its Result through the returned pointer-pointer. The
// pass order is: ir, cfg, ssa, constprop, induction, autopriv, reduceplan,
// mapping, analyze, slots. Induction rewriting does not rebuild downstream
// structures inline; it invalidates FactCFG and the manager lazily re-runs
// cfg/ssa before autopriv and constprop before analyze (visible in the
// profile as re-runs). The autopriv pass runs over the rewritten SSA —
// privatization inference sees closed-form induction expressions — and
// deposits its inferred annotations before the mapping pass consumes them.
// The slots pass runs last — after every expression rewrite has settled —
// and freezes the dense variable numbering the interpreter's slot-indexed
// state relies on.
func Pipeline(opts Options, out **Result) []pass.Pass {
	mode := opts.PrivatizationMode()
	analyze := &pass.Funcs{
		PassName: "analyze",
		Needs: []pass.Fact{pass.FactIR, pass.FactSSA, pass.FactConsts,
			pass.FactMapping, pass.FactAutoPriv, pass.FactReducePlan},
		RunFunc: func(u *pass.Unit) error {
			res := Analyze(u.Prog, u.SSA, u.Consts, u.Mapping, u.Inductions, opts)
			res.Priv = u.AutoPriv
			res.ReducePlan = u.ReducePlan
			for _, d := range res.Diags {
				u.Diag(d)
			}
			*out = res
			return nil
		},
	}
	return []pass.Pass{
		pass.IRBuild(),
		pass.CFGBuild(),
		pass.SSABuild(),
		pass.ConstProp(),
		pass.Induction(),
		pass.AutoPriv(mode != PrivDirectives, mode == PrivInferStrict),
		pass.ReducePlan(),
		pass.Mapping(),
		analyze,
		pass.Slots(),
	}
}

// BuildAndAnalyze runs the full analysis pipeline on a parsed program for a
// given processor count: IR construction, CFG + SSA, constant propagation,
// induction-variable recognition with closed-form rewriting (followed by a
// lazily scheduled SSA rebuild), directive resolution, and the mapping pass.
//
// Directive resolution is lenient: a bad mapping directive does not fail the
// compilation — the directive is skipped (the affected arrays stay
// replicated, which is always correct) and the problem is recorded in
// Result.Diags with its source position. Errors are reserved for programs no
// mapping can make executable (parse/IR construction failures) and, when the
// verifier is enabled, internal invariant violations.
//
// The unit verifier runs between every pass when Options.Verify is set; it
// is always on under `go test`, so the full test suite exercises it.
func BuildAndAnalyze(src *ast.Program, nprocs int, opts Options) (*Result, error) {
	var res *Result
	mgr, err := pass.NewManager(Pipeline(opts, &res)...)
	if err != nil {
		return nil, err
	}
	mgr.Verify = opts.Verify || testing.Testing()
	mgr.DumpAfter = opts.DumpAfter
	u := &pass.Unit{Source: src, NProcs: nprocs, Options: opts}
	runErr := mgr.Run(u)
	if runErr != nil {
		return nil, runErr
	}
	// Unit.Diags has every pass's diagnostics in emission order (mapping
	// problems precede the analyze pass's scalar-mapping diagnostics).
	res.Diags = u.Diags
	res.Profile = mgr.Profile()
	return res, nil
}
