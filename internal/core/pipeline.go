package core

import (
	"phpf/internal/ast"
	"phpf/internal/dataflow"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// BuildAndAnalyze runs the full analysis front end on a parsed program for a
// given processor count: IR construction, CFG + SSA, constant propagation,
// induction-variable recognition with closed-form rewriting (followed by an
// SSA rebuild), directive resolution, and the mapping pass.
func BuildAndAnalyze(src *ast.Program, nprocs int, opts Options) (*Result, error) {
	p, err := ir.Build(src)
	if err != nil {
		return nil, err
	}
	g, err := ir.BuildCFG(p)
	if err != nil {
		return nil, err
	}
	s := ssa.Build(p, g)
	cp := dataflow.PropagateConstants(s)

	ivs := dataflow.FindInductionVars(p, s, cp)
	if len(ivs) > 0 {
		dataflow.ApplyInductionRewrites(p, s, ivs)
		// Expression rewriting invalidates the SSA use links; rebuild.
		g, err = ir.BuildCFG(p)
		if err != nil {
			return nil, err
		}
		s = ssa.Build(p, g)
		cp = dataflow.PropagateConstants(s)
	}

	m, err := dist.Resolve(p, nprocs)
	if err != nil {
		return nil, err
	}
	return Analyze(p, s, cp, m, ivs, opts), nil
}
