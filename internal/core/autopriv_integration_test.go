package core

import (
	"testing"
)

// autoPrivSrc is a sweep whose work array w carries no NEW clause.
const autoPrivSrc = `
program t
parameter n = 32
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`

// TestAutoArrayPrivatizationIntegration: under the default inference mode,
// the work array is privatized exactly as if NEW(w) had been written; in
// directives-only mode it stays replicated.
func TestAutoArrayPrivatizationIntegration(t *testing.T) {
	r := analyze(t, autoPrivSrc, 4, DefaultOptions())
	w := r.Prog.LookupVar("w")
	ap := r.Arrays[w]
	if ap == nil {
		t.Fatal("w not auto-privatized")
	}
	if ap.Loop.Index.Name != "k" {
		t.Errorf("privatized wrt %s-loop, want k", ap.Loop.Index.Name)
	}
	if ap.Target == nil || ap.Target.Var.Name != "a" {
		t.Errorf("target = %v", ap.Target)
	}

	// Directives-only mode (and no NEW): w stays replicated.
	opts := DefaultOptions()
	opts.Privatization = PrivDirectives
	r2 := analyze(t, autoPrivSrc, 4, opts)
	if r2.Arrays[r2.Prog.LookupVar("w")] != nil {
		t.Error("w privatized without NEW in directives-only mode")
	}
}

// TestAutoPrivMatchesNewClause: the automatic decision coincides with the
// directive-driven one.
func TestAutoPrivMatchesNewClause(t *testing.T) {
	withNew := `
program t
parameter n = 32
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
!hpf$ independent, new(w)
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`
	rNew := analyze(t, withNew, 4, DefaultOptions())
	rAuto := analyze(t, autoPrivSrc, 4, DefaultOptions())

	apNew := rNew.Arrays[rNew.Prog.LookupVar("w")]
	apAuto := rAuto.Arrays[rAuto.Prog.LookupVar("w")]
	if apNew == nil || apAuto == nil {
		t.Fatalf("missing privatizations: new=%v auto=%v", apNew, apAuto)
	}
	if apNew.Partial != apAuto.Partial {
		t.Errorf("partial flags differ: new=%v auto=%v", apNew.Partial, apAuto.Partial)
	}
	if (apNew.Target.Var.Name) != (apAuto.Target.Var.Name) {
		t.Errorf("targets differ: new=%v auto=%v", apNew.Target, apAuto.Target)
	}
}
