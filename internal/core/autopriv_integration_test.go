package core

import (
	"testing"
)

// autoPrivSrc is a sweep whose work array w carries no NEW clause.
const autoPrivSrc = `
program t
parameter n = 32
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`

// TestAutoArrayPrivatizationIntegration: with the extension enabled, the
// work array is privatized exactly as if NEW(w) had been written.
func TestAutoArrayPrivatizationIntegration(t *testing.T) {
	opts := DefaultOptions()
	opts.AutoPrivatizeArrays = true
	r := analyze(t, autoPrivSrc, 4, opts)
	w := r.Prog.LookupVar("w")
	ap := r.Arrays[w]
	if ap == nil {
		t.Fatal("w not auto-privatized")
	}
	if ap.Loop.Index.Name != "k" {
		t.Errorf("privatized wrt %s-loop, want k", ap.Loop.Index.Name)
	}
	if ap.Target == nil || ap.Target.Var.Name != "a" {
		t.Errorf("target = %v", ap.Target)
	}

	// Without the extension (and without NEW), w stays replicated.
	r2 := analyze(t, autoPrivSrc, 4, DefaultOptions())
	if r2.Arrays[r2.Prog.LookupVar("w")] != nil {
		t.Error("w privatized without NEW and without the extension")
	}
}

// TestAutoPrivMatchesNewClause: the automatic decision coincides with the
// directive-driven one.
func TestAutoPrivMatchesNewClause(t *testing.T) {
	withNew := `
program t
parameter n = 32
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
!hpf$ independent, new(w)
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`
	rNew := analyze(t, withNew, 4, DefaultOptions())
	opts := DefaultOptions()
	opts.AutoPrivatizeArrays = true
	rAuto := analyze(t, autoPrivSrc, 4, opts)

	apNew := rNew.Arrays[rNew.Prog.LookupVar("w")]
	apAuto := rAuto.Arrays[rAuto.Prog.LookupVar("w")]
	if apNew == nil || apAuto == nil {
		t.Fatalf("missing privatizations: new=%v auto=%v", apNew, apAuto)
	}
	if apNew.Partial != apAuto.Partial {
		t.Errorf("partial flags differ: new=%v auto=%v", apNew.Partial, apAuto.Partial)
	}
	if (apNew.Target.Var.Name) != (apAuto.Target.Var.Name) {
		t.Errorf("targets differ: new=%v auto=%v", apNew.Target, apAuto.Target)
	}
}
