package serve

import (
	"errors"
	"fmt"
	"testing"

	"phpf"
	"phpf/internal/diag"
)

// FuzzServeRequest asserts the request decoder's robustness contract on
// arbitrary bodies: DecodeRunSpec + validate never panic, and every
// rejection is a coded *diag.Diagnostic (the 4xx the server would send) —
// never a bare error and never a fall-through into compile/execute with
// absurd values (procs, timeouts, and budgets come back clamped to the
// server's limits).
func FuzzServeRequest(f *testing.F) {
	// Seed with the figure corpus in every request shape the API accepts...
	for _, fig := range append(phpf.FigureNames(), "smooth") {
		f.Add([]byte(fmt.Sprintf(`{"figure":%q,"procs":4}`, fig)))
		f.Add([]byte(fmt.Sprintf(`{"figure":%q,"procs":16,"opt":"naive","backend":"concurrent"}`, fig)))
		f.Add([]byte(fmt.Sprintf(`{"figure":%q,"procs":8,"opt":"producer","timeout_ms":500,"max_cells":65536}`, fig)))
		f.Add([]byte(fmt.Sprintf(`{"figure":%q,"procs":4,"chaos":{"seed":7,"loss_rate":0.05,"dup_rate":0.01,"checkpoint_interval":0.05}}`, fig)))
	}
	f.Add([]byte(fmt.Sprintf(`{"source":%q,"procs":4,"return_arrays":true}`, phpf.SmoothSource(16, 1))))
	// The reduce-sweep kernels in every runtime reduction strategy,
	// plus a strategy name the validator must reject.
	f.Add([]byte(fmt.Sprintf(`{"source":%q,"procs":8,"reduce":"privatize"}`, phpf.HistogramSource(64, 16, 2))))
	f.Add([]byte(fmt.Sprintf(`{"source":%q,"procs":4,"reduce":"collective","return_arrays":true}`, phpf.DotSweepSource(16, 12))))
	f.Add([]byte(`{"figure":"figure1","procs":4,"reduce":"bogus"}`))
	// ...and with malformed shapes the decoder must reject, not choke on.
	f.Add([]byte(`{"figure":"figure1","procs":4`))
	f.Add([]byte(`{"figure":"figure1","procs":4} trailing`))
	f.Add([]byte(`{"figure":"figure1","procs":4,"unknown":true}`))
	f.Add([]byte(`{"procs":1e308}`))
	f.Add([]byte(`{"figure":"figure1","procs":-1,"timeout_ms":-9223372036854775808}`))
	f.Add([]byte(`{"figure":"figure1","procs":4,"max_cells":9223372036854775807}`))
	f.Add([]byte(`{"figure":"figure1","procs":4,"chaos":{"seed":1,"loss_rate":1e999}}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	cfg := Config{Chaos: true}.withDefaults()
	f.Fuzz(func(t *testing.T, body []byte) {
		if int64(len(body)) > cfg.MaxBodyBytes {
			return // the server bounds the body before the decoder sees it
		}
		spec, err := DecodeRunSpec(body)
		if err != nil {
			requireCoded(t, err)
			return
		}
		for _, needBackend := range []bool{false, true} {
			v, err := spec.validate(cfg, needBackend)
			if err != nil {
				requireCoded(t, err)
				continue
			}
			// A validated request is inside every server limit.
			if v.procs < 1 || v.procs > cfg.MaxProcs {
				t.Fatalf("validated procs %d escaped [1,%d]", v.procs, cfg.MaxProcs)
			}
			if int64(len(v.source)) > cfg.MaxSourceBytes {
				t.Fatalf("validated source of %d bytes escaped the %d-byte limit", len(v.source), cfg.MaxSourceBytes)
			}
			if v.timeout <= 0 || v.timeout > cfg.MaxTimeout {
				t.Fatalf("validated timeout %v escaped (0,%v]", v.timeout, cfg.MaxTimeout)
			}
			if cfg.MaxCells > 0 && (v.run.MaxCells <= 0 || v.run.MaxCells > cfg.MaxCells) {
				t.Fatalf("validated budget %d escaped (0,%d]", v.run.MaxCells, cfg.MaxCells)
			}
			if err := v.run.Validate(); err != nil {
				t.Fatalf("validated RunOptions re-validate failed: %v", err)
			}
			if v.key == "" {
				t.Fatal("validated request has no cache key")
			}
		}
	})
}

func requireCoded(t *testing.T, err error) {
	t.Helper()
	var d *diag.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("rejection is not a coded *diag.Diagnostic: %T %v", err, err)
	}
	if d.Code == "" {
		t.Fatalf("rejection has no stable code: %v", d)
	}
}
