package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustAdmit(t *testing.T, a *Admission, tenant string) func() {
	t.Helper()
	release, err := a.Admit(context.Background(), tenant)
	if err != nil {
		t.Fatalf("Admit(%s): %v", tenant, err)
	}
	return release
}

// TestQueueFullShedsImmediately: once a tenant's slots and waiting line are
// full, the next request is declined synchronously with QueueFull — it never
// blocks and never spawns anything.
func TestQueueFullShedsImmediately(t *testing.T) {
	a := NewAdmission(8, 1, 1) // 1 slot + line of 1 => 2 queue tokens

	r1 := mustAdmit(t, a, "t") // holds the slot
	defer r1()

	// Second request: takes the last queue token, then waits for the slot.
	waiting := make(chan error, 1)
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	go func() {
		release, err := a.Admit(wctx, "t")
		if release != nil {
			defer release()
		}
		waiting <- err
	}()
	for a.Queued("t") < 2 { // admitted + waiting
		time.Sleep(time.Millisecond)
	}

	// Third request: line full => immediate shed.
	start := time.Now()
	release, err := a.Admit(context.Background(), "t")
	if err == nil {
		release()
		t.Fatal("full line must shed")
	}
	var shed *ErrShed
	if !errors.As(err, &shed) || !shed.QueueFull {
		t.Fatalf("want QueueFull ErrShed, got %T %v", err, err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("full-line shed took %v, must be immediate", d)
	}
	if a.Sheds() != 1 {
		t.Fatalf("sheds = %d, want 1", a.Sheds())
	}

	// The waiter expires with a (non-QueueFull) shed when its context dies.
	wcancel()
	err = <-waiting
	if !errors.As(err, &shed) || shed.QueueFull {
		t.Fatalf("expired waiter: want waiting-timeout ErrShed, got %T %v", err, err)
	}
	if a.Sheds() != 2 {
		t.Fatalf("sheds = %d, want 2", a.Sheds())
	}
}

// TestPerTenantIsolation: one tenant saturating its own line cannot block a
// different tenant from admitting.
func TestPerTenantIsolation(t *testing.T) {
	a := NewAdmission(8, 1, 1)
	r := mustAdmit(t, a, "noisy")
	defer r()
	if _, err := a.Admit(contextWithTimeout(t, 10*time.Millisecond), "noisy"); err == nil {
		// the line has room for one waiter; fill it so the next sheds fast
		t.Log("waiter admitted unexpectedly fast (slot freed?)")
	}

	release, err := a.Admit(context.Background(), "quiet")
	if err != nil {
		t.Fatalf("quiet tenant blocked by noisy tenant: %v", err)
	}
	release()
}

// TestGlobalCap: the global pool bounds the whole process even when every
// tenant has spare slots of its own.
func TestGlobalCap(t *testing.T) {
	a := NewAdmission(1, 1, 4)
	r := mustAdmit(t, a, "a")

	_, err := a.Admit(contextWithTimeout(t, 20*time.Millisecond), "b")
	var shed *ErrShed
	if !errors.As(err, &shed) {
		t.Fatalf("tenant b should wait on the global pool and expire: %T %v", err, err)
	}

	r() // free the global slot; now b admits
	release, err := a.Admit(contextWithTimeout(t, time.Second), "b")
	if err != nil {
		t.Fatalf("Admit after release: %v", err)
	}
	release()
}

// TestReleaseIdempotent: calling release twice must not double-free a slot
// (which would silently widen the pool).
func TestReleaseIdempotent(t *testing.T) {
	a := NewAdmission(1, 1, 1)
	release := mustAdmit(t, a, "t")
	release()
	release() // second call is a no-op

	// If the double release freed two slots, two concurrent admits would
	// both succeed despite maxConcurrent=1.
	r1 := mustAdmit(t, a, "t")
	_, err := a.Admit(contextWithTimeout(t, 20*time.Millisecond), "t")
	if err == nil {
		t.Fatal("second admit succeeded: release() freed the slot twice")
	}
	r1()
}

// TestTenantTableBounded: hostile traffic inventing a tenant name per
// request must not grow the table without bound.
func TestTenantTableBounded(t *testing.T) {
	a := NewAdmission(8, 2, 2)
	for i := 0; i < 3*maxTrackedTenants; i++ {
		release, err := a.Admit(context.Background(), "hostile-"+itoa(i))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	a.mu.Lock()
	n := len(a.tenants)
	a.mu.Unlock()
	if n > maxTrackedTenants {
		t.Fatalf("tenant table grew to %d, bound is %d", n, maxTrackedTenants)
	}
}

// TestAdmitParallelStress exercises the slot accounting under -race: many
// goroutines churning admits across a few tenants, with the invariant that
// the admitted count converges and nothing deadlocks.
func TestAdmitParallelStress(t *testing.T) {
	a := NewAdmission(4, 2, 4)
	tenants := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				release, err := a.Admit(ctx, tenants[(i+j)%len(tenants)])
				cancel()
				if err == nil {
					release()
				}
			}
		}(i)
	}
	wg.Wait()
	if a.Admitted() == 0 {
		t.Fatal("stress run admitted nothing")
	}
	for _, tn := range tenants {
		if q := a.Queued(tn); q != 0 {
			t.Fatalf("tenant %s still shows %d queued after the churn", tn, q)
		}
	}
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}
