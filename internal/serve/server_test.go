package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"phpf"
	"phpf/internal/diag"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, body)
	}
	return er.Code
}

func TestServeHappyPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Compile.
	resp, body := postJSON(t, ts.URL+"/v1/compile", `{"figure":"figure1","procs":4}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("compile: %d %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil || cr.Key == "" || cr.Cache != "miss" {
		t.Fatalf("compile response %s (err %v)", body, err)
	}

	// Run on both backends; the second identical request must hit the cache.
	for _, backend := range []string{"sim", "concurrent"} {
		spec := fmt.Sprintf(`{"source":%q,"procs":4,"backend":%q}`, phpf.SmoothSource(16, 1), backend)
		resp, body := postJSON(t, ts.URL+"/v1/run", spec, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("run(%s): %d %s", backend, resp.StatusCode, body)
		}
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatalf("run(%s) response: %v (%s)", backend, err, body)
		}
		if rr.Backend != backend || len(rr.ArrayCells) == 0 || rr.TimingMS["service"] <= 0 {
			t.Fatalf("run(%s) response incomplete: %s", backend, body)
		}
	}
	spec := fmt.Sprintf(`{"source":%q,"procs":4}`, phpf.SmoothSource(16, 1))
	resp, _ = postJSON(t, ts.URL+"/v1/run", spec, nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("repeat run X-Cache = %q, want hit", got)
	}

	// Privatization modes are accepted and keyed separately: a
	// directives-only run of the same program must miss the cache the
	// infer-mode run just filled.
	dirSpec := fmt.Sprintf(`{"source":%q,"procs":4,"privatize":"directives"}`, phpf.SmoothSource(16, 1))
	resp, body = postJSON(t, ts.URL+"/v1/run", dirSpec, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("run(privatize=directives): %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("privatize=directives X-Cache = %q, want miss (mode must be part of the cache key)", got)
	}

	// Diff: both backends agree on the smooth kernel.
	resp, body = postJSON(t, ts.URL+"/v1/diff", spec, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("diff: %d %s", resp.StatusCode, body)
	}
	var dr DiffResponse
	if err := json.Unmarshal(body, &dr); err != nil || !dr.Match {
		t.Fatalf("diff response %s (err %v)", body, err)
	}
}

// TestServeNaNScalars: figure programs leave NaN in uninitialized cells; the
// response must still be valid JSON (the encode-before-status regression).
func TestServeNaNScalars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4,"return_arrays":true}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	if len(body) == 0 {
		t.Fatal("empty body: the response failed to encode")
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if len(rr.Arrays) == 0 {
		t.Fatal("return_arrays was set but no arrays came back")
	}
}

func TestServeRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxProcs: 8, Chaos: false})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"broken JSON", `{"figure":"figure1"`, 400, diag.CodeConfig},
		{"unknown field", `{"figure":"figure1","procs":4,"bogus":1}`, 400, diag.CodeConfig},
		{"trailing data", `{"figure":"figure1","procs":4} extra`, 400, diag.CodeConfig},
		{"no program", `{"procs":4}`, 400, diag.CodeConfig},
		{"both program forms", `{"figure":"figure1","source":"x","procs":4}`, 400, diag.CodeConfig},
		{"unknown figure", `{"figure":"nope","procs":4}`, 400, diag.CodeConfig},
		{"zero procs", `{"figure":"figure1","procs":0}`, 400, diag.CodeConfig},
		{"absurd procs", `{"figure":"figure1","procs":4096}`, 400, diag.CodeConfig},
		{"unknown opt", `{"figure":"figure1","procs":4,"opt":"O3"}`, 400, diag.CodeConfig},
		{"unknown privatize", `{"figure":"figure1","procs":4,"privatize":"auto"}`, 400, diag.CodeConfig},
		{"unknown backend", `{"figure":"figure1","procs":4,"backend":"gpu"}`, 400, diag.CodeConfig},
		{"negative timeout", `{"figure":"figure1","procs":4,"timeout_ms":-1}`, 400, diag.CodeConfig},
		{"huge timeout", `{"figure":"figure1","procs":4,"timeout_ms":86400000}`, 400, diag.CodeConfig},
		{"negative budget", `{"figure":"figure1","procs":4,"max_cells":-1}`, 400, diag.CodeConfig},
		{"widened budget", `{"figure":"figure1","procs":4,"max_cells":9007199254740992}`, 400, diag.CodeConfig},
		{"chaos disabled", `{"figure":"figure1","procs":4,"chaos":{"seed":1,"loss_rate":0.1}}`, 400, diag.CodeConfig},
		{"bad chaos rate", `{"figure":"figure1","procs":4,"chaos":{"seed":1,"loss_rate":2.0}}`, 400, diag.CodeConfig},
		{"parse error", `{"source":"this is not a program","procs":4}`, 400, ""},
		{"budget breach", `{"figure":"figure1","procs":4,"max_cells":2}`, 422, diag.CodeBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/run", tc.body, nil)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if tc.code != "" && errCode(t, body) != tc.code {
				t.Fatalf("code %q, want %q (%s)", errCode(t, body), tc.code, body)
			}
		})
	}
}

func TestServeBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	big := strings.Repeat("x", 4096)
	resp, _ := postJSON(t, ts.URL+"/v1/run", `{"source":"`+big+`","procs":4}`, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// TestServePanicIsolation: a panicking execution produces one coded 500 and
// the server keeps serving subsequent requests.
func TestServePanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.execute = func(context.Context, *phpf.Compiled, phpf.Backend, phpf.RunOptions) (*phpf.Report, error) {
		panic("injected execution bug")
	}
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
	if resp.StatusCode != 500 {
		t.Fatalf("panicking request: %d %s", resp.StatusCode, body)
	}
	if errCode(t, body) != diag.CodePanic {
		t.Fatalf("code %q, want %q (E007)", errCode(t, body), diag.CodePanic)
	}
	if s.Metrics().panics.Load() != 1 {
		t.Fatalf("panics metric = %d, want 1", s.Metrics().panics.Load())
	}

	// The server survives: restore the backend and serve normally.
	s.execute = func(ctx context.Context, c *phpf.Compiled, b phpf.Backend, opts phpf.RunOptions) (*phpf.Report, error) {
		return c.Execute(ctx, b, opts)
	}
	resp, body = postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("request after panic: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("cache should have survived the panic")
	}
}

// blockingServer wires the execute seam to a gate so tests control exactly
// when an in-flight request finishes (or observes cancellation).
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}, chan struct{}) {
	s, ts := newTestServer(t, cfg)
	started := make(chan struct{}, 64)
	gate := make(chan struct{})
	s.execute = func(ctx context.Context, c *phpf.Compiled, b phpf.Backend, opts phpf.RunOptions) (*phpf.Report, error) {
		started <- struct{}{}
		select {
		case <-gate:
			return c.Execute(ctx, b, opts)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, ts, started, gate
}

// TestServeSheddingUnderOverload: with one slot and a line of one, the third
// concurrent request is shed with 429 + Retry-After while the first two are
// still being worked.
func TestServeSheddingUnderOverload(t *testing.T) {
	s, ts, started, gate := blockingServer(t, Config{MaxConcurrent: 1, PerTenant: 1, QueueDepth: 1})

	type res struct {
		status int
		retry  string
	}
	results := make(chan res, 3)
	do := func() {
		resp, _ := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
		results <- res{resp.StatusCode, resp.Header.Get("Retry-After")}
	}

	go do()
	<-started // first request holds the slot inside execute

	go do() // second request waits in the line
	for s.adm.Queued("default") < 2 {
		time.Sleep(time.Millisecond)
	}

	r3resp, r3body := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
	if r3resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: %d %s, want 429", r3resp.StatusCode, r3body)
	}
	if r3resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if s.Sheds() != 1 {
		t.Fatalf("sheds = %d, want 1", s.Sheds())
	}

	close(gate) // let the two admitted requests finish
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != 200 {
			t.Fatalf("admitted request %d finished with %d", i, r.status)
		}
	}
}

// TestServeDrainCompletes: a drain with room to spare lets the in-flight
// request finish with 200 and returns nil.
func TestServeDrainCompletes(t *testing.T) {
	s, ts, started, gate := blockingServer(t, Config{})

	result := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
		result <- resp.StatusCode
	}()
	<-started

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainErr <- s.Drain(ctx)
	}()

	// While draining: readyz 503, new /v1 work 503, healthz still 200.
	waitDraining(t, s)
	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != 503 {
		t.Fatalf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil); resp.StatusCode != 503 {
		t.Fatalf("new work while draining: %d, want 503", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}

	close(gate)
	if status := <-result; status != 200 {
		t.Fatalf("in-flight request finished with %d, want 200", status)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain with completed in-flight work: %v, want nil", err)
	}
}

// TestServeDrainDeadlineCancels: an in-flight request that outlives the
// drain deadline is cancelled (the handler answers; the client is not hung)
// and Drain reports the deadline.
func TestServeDrainDeadlineCancels(t *testing.T) {
	s, ts, started, gate := blockingServer(t, Config{})
	defer close(gate)

	result := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
		result <- resp.StatusCode
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain past deadline: %v, want DeadlineExceeded", err)
	}
	select {
	case status := <-result:
		// The cancelled execution surfaces as 503 (drain-cancel), never 200.
		if status != 503 {
			t.Fatalf("deadline-cancelled request answered %d, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline-cancelled request never answered: client hung")
	}
}

// TestServeCancelInflight is the second-SIGTERM path: force-cancel
// immediately, no grace.
func TestServeCancelInflight(t *testing.T) {
	s, ts, started, gate := blockingServer(t, Config{})
	defer close(gate)

	result := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
		result <- resp.StatusCode
	}()
	<-started
	s.CancelInflight()
	select {
	case status := <-result:
		if status != 503 {
			t.Fatalf("force-cancelled request answered %d, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("force-cancel did not unblock the request")
	}
}

func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeChaosRequest: with chaos enabled the request routes through the
// fault layer and still completes deterministically.
func TestServeChaosRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Chaos: true})
	spec := fmt.Sprintf(`{"source":%q,"procs":4,"backend":"concurrent","chaos":{"seed":11,"loss_rate":0.05,"checkpoint_interval":0.05}}`,
		phpf.SmoothSource(16, 1))
	resp, body := postJSON(t, ts.URL+"/v1/run", spec, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("chaos run: %d %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
}

// TestServeDeadline: a request whose execution outlives its own timeout_ms
// answers 408, not a hang and not a 5xx.
func TestServeDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.execute = func(ctx context.Context, c *phpf.Compiled, b phpf.Backend, opts phpf.RunOptions) (*phpf.Report, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4,"timeout_ms":30}`, nil)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("expired request: %d %s, want 408", resp.StatusCode, body)
	}
}

// TestServeTenantsIndependent: a saturated tenant sheds while another tenant
// sails through.
func TestServeTenantsIndependent(t *testing.T) {
	s, ts, started, gate := blockingServer(t, Config{MaxConcurrent: 8, PerTenant: 1, QueueDepth: 1})

	go func() {
		postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, map[string]string{"X-Tenant": "noisy"})
	}()
	<-started
	go func() {
		postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, map[string]string{"X-Tenant": "noisy"})
	}()
	for s.adm.Queued("noisy") < 2 {
		time.Sleep(time.Millisecond)
	}

	resp, _ := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, map[string]string{"X-Tenant": "noisy"})
	if resp.StatusCode != 429 {
		t.Fatalf("saturated tenant: %d, want 429", resp.StatusCode)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var quietStatus int
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, map[string]string{"X-Tenant": "quiet"})
		quietStatus = resp.StatusCode
	}()
	// The quiet tenant needs its own execute slot; unblock the gate so all
	// blocked executions (noisy + quiet) proceed.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if quietStatus != 200 {
		t.Fatalf("quiet tenant: %d, want 200", quietStatus)
	}
}

// TestServeMetricsSnapshot: the counters a drain flushes (and healthz
// serves) reflect what actually happened.
func TestServeMetricsSnapshot(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
	postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
	postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1"`, nil) // 400

	snap := s.Snapshot()
	if snap.Run != 3 || snap.Status2xx != 2 || snap.Status4xx != 1 {
		t.Fatalf("snapshot %+v, want run=3 2xx=2 4xx=1", snap)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 miss", snap.Cache)
	}
	if snap.ServiceP50Ms <= 0 {
		t.Fatalf("service p50 %v, want > 0", snap.ServiceP50Ms)
	}

	resp, body := postJSON(t, ts.URL+"/v1/run", `{"figure":"figure1","procs":4}`, nil)
	_ = resp
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.TimingMS["queue"] < 0 || rr.TimingMS["exec"] <= 0 {
		t.Fatalf("timing breakdown %v", rr.TimingMS)
	}
}
