// Package serve is the hardened multi-tenant compile-and-execute service
// over the unified phpf.Backend API: the paper's privatization pipeline
// (Gupta, IPPS 1997) behind an HTTP surface that survives hostile traffic.
//
// The admission path of every /v1 request:
//
//	decode (strict, size-bounded) -> validate (coded 400s, budget clamps)
//	-> admit (per-tenant bounded queue; full -> 429 + Retry-After)
//	-> compile via the content-hash LRU cache (singleflight: concurrent
//	   identical requests compile once)
//	-> execute under a context deadline and a MaxCells memory budget
//	-> respond (panics contained per request: a 500, never a dead process)
//
// Endpoints: POST /v1/compile, /v1/run, /v1/diff; GET /healthz (always 200
// while the process lives, with a metrics snapshot body) and /readyz (503
// once draining). SIGTERM handling lives in cmd/phpfserve: Drain stops
// admitting, lets in-flight requests finish or deadline-cancels them, and
// flushes metrics.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"phpf"
	"phpf/internal/diag"
	"phpf/internal/eval"
	"phpf/internal/exec"
)

// Config are the server's hard limits. Zero fields select the defaults —
// every limit has one; an unconfigured server is still a bounded server.
type Config struct {
	// MaxProcs caps the per-request processor count (default 64).
	MaxProcs int
	// MaxSourceBytes caps the program text (default 1 MiB).
	MaxSourceBytes int64
	// MaxBodyBytes caps the request body (default 2*MaxSourceBytes+4096,
	// room for the JSON encoding of a maximal source).
	MaxBodyBytes int64
	// CacheSize is the compiled-program LRU capacity (default 128).
	CacheSize int
	// MaxConcurrent / PerTenant / QueueDepth shape admission control (see
	// NewAdmission).
	MaxConcurrent int
	PerTenant     int
	QueueDepth    int
	// DefaultTimeout / MaxTimeout bound each execution's wall time
	// (defaults 10s / 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxCells is the per-memory-image cell budget (default 1<<22 cells =
	// 32 MiB; requests may narrow it, never widen it). See eval.Budget.
	MaxCells int64
	// Chaos permits requests to route through the fault-injection layer.
	Chaos bool
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxProcs <= 0 {
		c.MaxProcs = 64
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 2*c.MaxSourceBytes + 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxTimeout < c.DefaultTimeout {
		c.MaxTimeout = c.DefaultTimeout
	}
	if c.MaxCells == 0 {
		c.MaxCells = 1 << 22
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the service: handlers plus the shared cache, admission
// controller, and metrics. Create with New, mount as an http.Handler.
type Server struct {
	cfg   Config
	cache *Cache
	adm   *Admission
	met   *Metrics
	mux   *http.ServeMux

	draining   atomic.Bool
	inflight   sync.WaitGroup
	stopCtx    context.Context
	stopCancel context.CancelFunc

	// execute is the backend call, indirected so tests can substitute a
	// slow or failing execution without a program that really misbehaves.
	execute func(ctx context.Context, c *phpf.Compiled, b phpf.Backend, opts phpf.RunOptions) (*phpf.Report, error)
}

// New builds a Server from the config (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheSize),
		adm:   NewAdmission(cfg.MaxConcurrent, cfg.PerTenant, cfg.QueueDepth),
		met:   NewMetrics(),
		mux:   http.NewServeMux(),
		execute: func(ctx context.Context, c *phpf.Compiled, b phpf.Backend, opts phpf.RunOptions) (*phpf.Report, error) {
			return c.Execute(ctx, b, opts)
		},
	}
	s.stopCtx, s.stopCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/diff", s.handleDiff)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// Metrics returns the server's live metrics (for tests and final flushes).
func (s *Server) Metrics() *Metrics { return s.met }

// CacheStats returns the compiled-program cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Sheds returns the number of load-shed requests so far.
func (s *Server) Sheds() int64 { return s.adm.Sheds() }

// Snapshot renders the current service metrics.
func (s *Server) Snapshot() Snapshot { return s.met.Snapshot(s.cache, s.draining.Load()) }

// ServeHTTP dispatches with per-request panic isolation: a panicking
// handler (a compiler or interpreter bug tickled by one request) produces a
// coded 500 for that request and the server keeps serving. The concurrent
// backend additionally contains worker panics itself (exec.WorkerError).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panics.Add(1)
			s.cfg.Logf("serve: panic serving %s %s: %v", r.Method, r.URL.Path, rec)
			if !sw.wrote {
				writeJSON(sw, http.StatusInternalServerError, ErrorResponse{
					Error: fmt.Sprintf("internal error: request panicked: %v", rec),
					Code:  diag.CodePanic,
				})
			}
		}
		s.met.Status(sw.status)
	}()
	s.mux.ServeHTTP(sw, r)
}

// statusWriter records the response status for metrics and panic recovery.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status, w.wrote = http.StatusOK, true
	}
	return w.ResponseWriter.Write(b)
}

// writeJSON marshals BEFORE writing the status line: an unencodable value
// must become a coded 500, not a 200 with an empty body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		b = []byte(`{"error":"internal error: response failed to encode","code":"` + diag.CodePanic + `"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b = append(b, '\n')
	_, _ = w.Write(b)
}

// ---------------------------------------------------------------------------
// The admission path

// tenantOf extracts the request's tenant (the X-Tenant header; absent means
// the shared "default" tenant).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// retryAfterSeconds estimates when a shed tenant should come back: its
// queue occupancy times the recent median service time, clamped to [1,30]s.
func (s *Server) retryAfterSeconds(queued int) int {
	p50 := s.met.service.quantile(0.50)
	if p50 <= 0 {
		p50 = 50 * time.Millisecond
	}
	secs := int(math.Ceil((time.Duration(queued+1) * p50).Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// admitted is the per-request state the admission path assembles before a
// handler does endpoint-specific work.
type admitted struct {
	spec    *RunSpec
	release func()
	queueMS float64
}

// admit runs the shared front half of every /v1 endpoint: drain check,
// bounded body read, strict decode, admission. On a non-nil error the
// response has already been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (*admitted, bool) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining"})
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
				Error: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
		} else {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("reading body: %v", err)})
		}
		return nil, false
	}
	spec, err := DecodeRunSpec(body)
	if err != nil {
		s.writeError(w, err)
		return nil, false
	}

	tenant := tenantOf(r)
	queueStart := time.Now()
	release, err := s.adm.Admit(r.Context(), tenant)
	if err != nil {
		var shed *ErrShed
		if errors.As(err, &shed) {
			secs := s.retryAfterSeconds(shed.Queued)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: shed.Error()})
			return nil, false
		}
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		return nil, false
	}
	wait := time.Since(queueStart)
	s.met.queue.observe(wait)
	w.Header().Set("X-Queue-Ms", strconv.FormatFloat(ms(wait), 'f', 3, 64))
	return &admitted{spec: spec, release: release, queueMS: ms(wait)}, true
}

// compileCached resolves the spec through the cache (singleflight compile).
func (s *Server) compileCached(v *validated) (*phpf.Compiled, CacheOutcome, error) {
	return s.cache.Get(v.key, func() (*phpf.Compiled, error) {
		return phpf.Compile(v.source, v.procs, v.opts)
	})
}

// execCtx derives the execution context: the request's own context bounded
// by the validated timeout, and cut short when the server deadline-cancels
// in-flight work at the end of a drain.
func (s *Server) execCtx(r *http.Request, v *validated) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), v.timeout)
	stop := context.AfterFunc(s.stopCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.met.reqCompile.Add(1)
	s.met.inflight.Add(1)
	s.inflight.Add(1)
	defer func() { s.met.inflight.Add(-1); s.inflight.Done() }()
	start := time.Now()

	a, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer a.release()
	v, err := a.spec.validate(s.cfg, false)
	if err != nil {
		s.writeError(w, err)
		return
	}
	c, outcome, err := s.compileCached(v)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.met.service.observe(time.Since(start))
	w.Header().Set("X-Cache", string(outcome))
	writeJSON(w, http.StatusOK, CompileResponse{
		Key:   v.key,
		Cache: string(outcome),
		Procs: v.procs,
		Diags: diagStrings(c),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.met.reqRun.Add(1)
	s.met.inflight.Add(1)
	s.inflight.Add(1)
	defer func() { s.met.inflight.Add(-1); s.inflight.Done() }()
	start := time.Now()

	a, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer a.release()
	v, err := a.spec.validate(s.cfg, true)
	if err != nil {
		s.writeError(w, err)
		return
	}
	c, outcome, err := s.compileCached(v)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", string(outcome))

	ctx, cancel := s.execCtx(r, v)
	defer cancel()
	execStart := time.Now()
	rep, err := s.execute(ctx, c, v.backend, v.run)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.met.service.observe(time.Since(start))

	resp := RunResponse{
		Key:        v.key,
		Cache:      string(outcome),
		Backend:    rep.Backend,
		Time:       jsonF64(rep.Time),
		Stats:      rep.Stats.String(),
		Scalars:    jsonScalars(rep.Scalars),
		ArrayCells: map[string]int64{},
		Restarts:   rep.Restarts,
		WireDrops:  rep.WireDrops,
		Diags:      diagStrings(c),
		TimingMS: map[string]float64{
			"queue":   a.queueMS,
			"exec":    ms(time.Since(execStart)),
			"service": ms(time.Since(start)),
		},
	}
	for name, cells := range rep.Arrays {
		resp.ArrayCells[name] = int64(len(cells))
	}
	if a.spec.ReturnArrays {
		resp.Arrays = jsonArrays(rep.Arrays)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	s.met.reqDiff.Add(1)
	s.met.inflight.Add(1)
	s.inflight.Add(1)
	defer func() { s.met.inflight.Add(-1); s.inflight.Done() }()
	start := time.Now()

	a, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer a.release()
	if a.spec.Backend != "" {
		s.writeError(w, badRequest("diff always runs both backends; backend does not apply"))
		return
	}
	v, err := a.spec.validate(s.cfg, false)
	if err != nil {
		s.writeError(w, err)
		return
	}
	c, outcome, err := s.compileCached(v)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", string(outcome))

	ctx, cancel := s.execCtx(r, v)
	defer cancel()
	rep, err := c.Diff(ctx, v.run)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.met.service.observe(time.Since(start))
	writeJSON(w, http.StatusOK, DiffResponse{
		Key:        v.key,
		Cache:      string(outcome),
		Match:      rep.Match(),
		Mismatches: rep.Mismatches,
		Time:       jsonF64(rep.Sim.Time),
		Stats:      rep.Sim.Stats.String(),
		TimingMS: map[string]float64{
			"queue":   a.queueMS,
			"service": ms(time.Since(start)),
		},
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: 200 while the process can serve anything at all, with the
	// metrics snapshot as the body (the flushed-on-drain view, live).
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// diagStrings renders a compilation's warnings and infos for the wire.
func diagStrings(c *phpf.Compiled) []string {
	var out []string
	for _, d := range c.Diags() {
		if d.Severity >= phpf.SeverityWarning {
			out = append(out, d.String())
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Error mapping

// writeError maps an error from the compile/validate/execute path to a
// status code and coded JSON body. The contract: client mistakes (bad
// requests, bad programs, budget breaches, expired budgets) are 4xx;
// only genuine service failures (contained panics, backend protocol
// violations) are 5xx.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	if status >= 500 {
		s.cfg.Logf("serve: internal error: %v", err)
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}

func errorStatus(err error) (int, string) {
	var d *diag.Diagnostic
	if errors.As(err, &d) {
		switch d.Code {
		case diag.CodeBudget:
			// The request asked for more memory than its budget allows.
			return http.StatusUnprocessableEntity, d.Code
		case diag.CodePanic, diag.CodeVerify:
			return http.StatusInternalServerError, d.Code
		default:
			// Lex/parse/build/config: the request itself is wrong.
			return http.StatusBadRequest, d.Code
		}
	}
	var we *exec.WorkerError
	if errors.As(err, &we) {
		// A contained worker panic: isolated to this request.
		return http.StatusInternalServerError, diag.CodePanic
	}
	var ce *exec.ConfigError
	if errors.As(err, &ce) {
		return http.StatusBadRequest, diag.CodeConfig
	}
	var pe *exec.ProtocolError
	var de *exec.DivergenceError
	var se *exec.StallError
	if errors.As(err, &pe) || errors.As(err, &de) || errors.As(err, &se) {
		return http.StatusInternalServerError, ""
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// The request's own execution budget expired.
		return http.StatusRequestTimeout, ""
	}
	if errors.Is(err, context.Canceled) {
		// Deadline-cancelled by a drain (or the client went away).
		return http.StatusServiceUnavailable, ""
	}
	var ne *eval.NumericError
	if errors.As(err, &ne) {
		return http.StatusUnprocessableEntity, ""
	}
	// Everything else the backends return is a program-semantics failure
	// (out-of-bounds subscript, zero step, escaped goto): the program is
	// well-formed JSON-wise but cannot execute — the client's fault.
	return http.StatusUnprocessableEntity, ""
}

// ---------------------------------------------------------------------------
// Drain

// Drain performs the graceful half of shutdown: stop admitting (readyz
// flips to 503, /v1 requests get an immediate 503), then wait for in-flight
// requests. If ctx expires first, every in-flight execution is
// deadline-cancelled (they unwind through their backends' cancellation
// paths and answer 503) and Drain still waits for the handlers to finish
// writing before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stopCancel()
		<-done
		return ctx.Err()
	}
}

// CancelInflight force-cancels every in-flight execution immediately (the
// second-SIGTERM path). Safe to call at any time, once or many times.
func (s *Server) CancelInflight() { s.stopCancel() }
