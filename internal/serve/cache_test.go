package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phpf"
)

func compiled(t *testing.T) *phpf.Compiled {
	t.Helper()
	c, err := phpf.Compile(phpf.SmoothSource(16, 1), 4, phpf.SelectedOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheHitMissOutcomes(t *testing.T) {
	c := NewCache(4)
	want := compiled(t)
	var calls atomic.Int64
	compile := func() (*phpf.Compiled, error) { calls.Add(1); return want, nil }

	got, outcome, err := c.Get("k1", compile)
	if err != nil || got != want || outcome != CacheMiss {
		t.Fatalf("first Get = (%v, %v, %v), want (compiled, miss, nil)", got, outcome, err)
	}
	got, outcome, err = c.Get("k1", compile)
	if err != nil || got != want || outcome != CacheHit {
		t.Fatalf("second Get = (%v, %v, %v), want (compiled, hit, nil)", got, outcome, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("compile ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	w := compiled(t)
	var calls atomic.Int64
	get := func(k string) CacheOutcome {
		t.Helper()
		_, outcome, err := c.Get(k, func() (*phpf.Compiled, error) { calls.Add(1); return w, nil })
		if err != nil {
			t.Fatal(err)
		}
		return outcome
	}

	get("a")
	get("b")
	get("a") // touch a: b becomes LRU
	get("c") // capacity 2: evicts b
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if outcome := get("a"); outcome != CacheHit {
		t.Fatalf("recently-touched a evicted (outcome %v)", outcome)
	}
	if outcome := get("b"); outcome != CacheMiss {
		t.Fatalf("LRU b should have been evicted (outcome %v)", outcome)
	}
	if ev := c.Stats().Evictions; ev < 1 {
		t.Fatalf("evictions = %d, want >= 1", ev)
	}
}

// TestCacheSingleflight is the 100-way stampede test (run under -race): one
// hundred concurrent identical compiles must run the compile function once —
// one miss, ninety-nine coalesced waiters sharing the leader's result.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(8)
	w := compiled(t)
	var calls atomic.Int64
	gate := make(chan struct{})

	const waiters = 100
	var wg sync.WaitGroup
	outcomes := make([]CacheOutcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, outcome, err := c.Get("stampede", func() (*phpf.Compiled, error) {
				calls.Add(1)
				<-gate // hold every follower in the coalescing path
				return w, nil
			})
			if err != nil || got != w {
				t.Errorf("goroutine %d: (%v, %v)", i, got, err)
			}
			outcomes[i] = outcome
		}(i)
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compile ran %d times under a %d-way stampede, want exactly 1", calls.Load(), waiters)
	}
	misses := 0
	for _, o := range outcomes {
		if o == CacheMiss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1 (the leader)", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d shared results", st, waiters-1)
	}
	if got := st.HitRate(); got < 0.98 {
		t.Fatalf("hit rate %v, want ~0.99", got)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	w := compiled(t)
	var calls atomic.Int64
	boom := errors.New("boom")
	fail := func() (*phpf.Compiled, error) { calls.Add(1); return nil, boom }

	if _, _, err := c.Get("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("a failed compile must not occupy a cache slot")
	}
	// The next attempt retries instead of replaying the failure.
	got, outcome, err := c.Get("k", func() (*phpf.Compiled, error) { calls.Add(1); return w, nil })
	if err != nil || got != w || outcome != CacheMiss {
		t.Fatalf("retry = (%v, %v, %v), want (compiled, miss, nil)", got, outcome, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("compile ran %d times, want 2", calls.Load())
	}
}

// TestCacheStampedeError: an error during a stampede propagates to every
// coalesced waiter, and none of them caches it.
func TestCacheStampedeError(t *testing.T) {
	c := NewCache(4)
	boom := fmt.Errorf("compile exploded")
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	const followers = 49
	errs := make([]error, followers+1)
	wg.Add(1)
	go func() { // the leader holds the flight open until every follower joins
		defer wg.Done()
		_, _, errs[0] = c.Get("k", func() (*phpf.Compiled, error) {
			calls.Add(1)
			close(started)
			<-gate
			return nil, boom
		})
	}()
	<-started
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Get("k", func() (*phpf.Compiled, error) {
				calls.Add(1)
				return nil, boom
			})
		}(i)
	}
	// The coalesced counter bumps before a follower blocks on the flight,
	// so this wait makes the release deterministic.
	for c.Stats().Coalesced < followers {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compile ran %d times, want 1", calls.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d got %v, want the leader's error", i, err)
		}
	}
	if c.Len() != 0 {
		t.Fatal("failed stampede must leave the cache empty")
	}
}
