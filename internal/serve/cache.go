// The compiled-program cache: content-hash-keyed LRU with singleflight
// deduplication. Compilation is pure — the same (source, procs, options)
// input always yields an equivalent Compiled — and a Compiled is safe for
// concurrent reuse (regression-tested under -race at the repo root), so the
// cache can hand one compiled program to many simultaneous requests. The
// singleflight layer guarantees that N concurrent requests for the same
// uncached key run the compiler once: the leader compiles, the followers
// block on its result. Compile errors propagate to every waiter and are not
// cached (the next request retries), which keeps a transient failure from
// poisoning a key forever.
package serve

import (
	"container/list"
	"sync"

	"phpf"
)

// DefaultCacheSize is the compiled-program capacity when Config.CacheSize
// is zero.
const DefaultCacheSize = 128

// CacheOutcome says how a lookup was satisfied.
type CacheOutcome string

const (
	// CacheHit: the compiled program was already resident.
	CacheHit CacheOutcome = "hit"
	// CacheMiss: this request ran the compiler (the singleflight leader).
	CacheMiss CacheOutcome = "miss"
	// CacheCoalesced: another in-flight request was already compiling the
	// same key; this one waited for its result without compiling.
	CacheCoalesced CacheOutcome = "coalesced"
)

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
}

// HitRate is the fraction of lookups served without running the compiler
// (hits plus coalesced waiters), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// Cache is the LRU + singleflight compiled-program cache.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used; values are *cacheEntry
	byKey    map[string]*list.Element // key -> LRU element
	inflight map[string]*flight       // key -> the compile in progress

	hits, misses, coalesced, evictions int64
}

type cacheEntry struct {
	key string
	c   *phpf.Compiled
}

// flight is one in-progress compile other requests can wait on.
type flight struct {
	done chan struct{}
	c    *phpf.Compiled
	err  error
}

// NewCache returns an empty cache holding at most capacity compiled
// programs (capacity <= 0 selects DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// Get returns the compiled program for key, running compile at most once
// across all concurrent callers with the same key. The returned outcome
// says whether this call hit the cache, compiled, or waited on another
// caller's compile.
func (c *Cache) Get(key string, compile func() (*phpf.Compiled, error)) (*phpf.Compiled, CacheOutcome, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry).c, CacheHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.c, CacheCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.c, f.err = compile()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(key, f.c)
	}
	c.mu.Unlock()
	close(f.done)
	return f.c, CacheMiss, f.err
}

// insertLocked adds an entry at the front and evicts beyond capacity.
// Callers hold c.mu.
func (c *Cache) insertLocked(key string, compiled *phpf.Compiled) {
	if el, ok := c.byKey[key]; ok {
		// A racing leader for the same key already inserted (possible when
		// a key is evicted and immediately re-requested); just refresh.
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).c = compiled
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, c: compiled})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of resident compiled programs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a point-in-time view of cache effectiveness.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
	}
}
