// The wire format: a program plus a small declarative run spec (backend,
// strategy, procs — the Mapple-style request surface), decoded strictly and
// validated against the server's limits before any resource is committed.
// Every malformed or absurd field is a fast 400 with a coded diagnostic;
// nothing about a request can make the decoder allocate more than the body
// limit the server already enforced.
package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"time"

	"phpf"
	"phpf/internal/diag"
)

// RunSpec is the declarative request body shared by /v1/compile, /v1/run,
// and /v1/diff (compile ignores the execution-only fields).
type RunSpec struct {
	// Source is the mini-HPF program text. Exactly one of Source and
	// Figure must be set.
	Source string `json:"source,omitempty"`
	// Figure names a built-in example program ("figure1".."figure7",
	// "smooth") — a tiny request body for cache-friendly traffic.
	Figure string `json:"figure,omitempty"`
	// Procs is the processor count to compile for (1..MaxProcs).
	Procs int `json:"procs"`
	// Opt is the optimization level: "naive", "producer", or "selected"
	// (default).
	Opt string `json:"opt,omitempty"`
	// Privatize selects where privatization facts come from: "directives",
	// "infer" (default), or "infer-strict".
	Privatize string `json:"privatize,omitempty"`
	// Reduce selects the runtime reduction strategy: "auto" (default),
	// "collective", or "privatize". It is part of the cache key.
	Reduce string `json:"reduce,omitempty"`
	// Backend selects the execution backend for /v1/run: "sim" (default)
	// or "concurrent". /v1/diff always runs both.
	Backend string `json:"backend,omitempty"`
	// TimeoutMS bounds the execution wall time (0 = the server default;
	// capped at the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxCells tightens the server's per-image cell budget for this
	// request (0 = the server budget; larger values are rejected — a
	// request can only narrow its budget).
	MaxCells int64 `json:"max_cells,omitempty"`
	// ReturnArrays includes full final array contents in the response
	// (default off: responses carry scalars and array cell counts only,
	// so a huge result cannot amplify into a huge response body).
	ReturnArrays bool `json:"return_arrays,omitempty"`
	// Chaos routes the request through the fault-injection layer
	// (rejected unless the server runs with chaos mode enabled).
	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

// ChaosSpec is the opt-in per-request fault plan: the PR 6 fault layer
// repurposed as self-testing. The simulator models the faults; the
// concurrent backend makes them physical (real dropped transmissions healed
// by retransmission, coordinated checkpoint/restart).
type ChaosSpec struct {
	Seed     int64   `json:"seed"`
	LossRate float64 `json:"loss_rate,omitempty"`
	DupRate  float64 `json:"dup_rate,omitempty"`
	// CheckpointInterval enables coordinated checkpointing every so many
	// simulated seconds (0 = off).
	CheckpointInterval float64 `json:"checkpoint_interval,omitempty"`
}

// badRequest builds the coded 400-class diagnostic for an invalid request.
func badRequest(format string, args ...any) error {
	return diag.Errorf("serve", diag.CodeConfig, diag.Pos{}, format, args...)
}

// DecodeRunSpec strictly decodes a request body: unknown fields and
// trailing garbage are errors, so a typo'd field name fails loudly instead
// of being silently ignored. The caller has already bounded len(body).
func DecodeRunSpec(body []byte) (*RunSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var spec RunSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, badRequest("invalid request body: %v", err)
	}
	// A second document (or any non-space trailing bytes) is malformed.
	if dec.More() {
		return nil, badRequest("invalid request body: trailing data after the JSON object")
	}
	return &spec, nil
}

// resolveSource returns the program text the spec names.
func (spec *RunSpec) resolveSource(maxSourceBytes int64) (string, error) {
	switch {
	case spec.Source != "" && spec.Figure != "":
		return "", badRequest("set exactly one of source and figure, not both")
	case spec.Source != "":
		if int64(len(spec.Source)) > maxSourceBytes {
			return "", badRequest("source is %d bytes; the limit is %d", len(spec.Source), maxSourceBytes)
		}
		return spec.Source, nil
	case spec.Figure == "smooth":
		return phpf.SmoothSource(64, 4), nil
	case spec.Figure != "":
		src, ok := phpf.FigureSource(spec.Figure)
		if !ok {
			return "", badRequest("unknown figure %q (want one of %v or smooth)", spec.Figure, phpf.FigureNames())
		}
		return src, nil
	}
	return "", badRequest("empty program: set source or figure")
}

// options maps the Opt and Privatize fields to a compiler option set.
func (spec *RunSpec) options() (phpf.Options, error) {
	var opts phpf.Options
	switch spec.Opt {
	case "", "selected":
		opts = phpf.SelectedOptions()
	case "producer":
		opts = phpf.ProducerOptions()
	case "naive":
		opts = phpf.NaiveOptions()
	default:
		return phpf.Options{}, badRequest("unknown opt %q (want naive, producer, or selected)", spec.Opt)
	}
	if spec.Privatize != "" {
		mode, ok := phpf.ParsePrivMode(spec.Privatize)
		if !ok {
			return phpf.Options{}, badRequest("unknown privatize %q (want directives, infer, or infer-strict)", spec.Privatize)
		}
		opts.Privatization = mode
	}
	return opts, nil
}

// validated is a fully checked request: the resolved program source, cache
// key, and the execution configuration derived from the spec under the
// server's limits.
type validated struct {
	source  string
	key     string
	procs   int
	opts    phpf.Options
	backend phpf.Backend
	timeout time.Duration
	run     phpf.RunOptions
}

// validate checks the spec against the server's limits and assembles the
// execution configuration. Every rejection is a coded diagnostic; the
// zero/negative/absurd-value checks on RunOptions and machine parameters
// run here, before a single cycle of compile or execute is spent.
func (spec *RunSpec) validate(cfg Config, needBackend bool) (*validated, error) {
	src, err := spec.resolveSource(cfg.MaxSourceBytes)
	if err != nil {
		return nil, err
	}
	if spec.Procs < 1 || spec.Procs > cfg.MaxProcs {
		return nil, badRequest("procs must be in [1,%d], got %d", cfg.MaxProcs, spec.Procs)
	}
	opts, err := spec.options()
	if err != nil {
		return nil, err
	}
	reduce := phpf.ReduceAuto
	if spec.Reduce != "" {
		mode, ok := phpf.ParseReduceMode(spec.Reduce)
		if !ok {
			return nil, badRequest("unknown reduce %q (want auto, collective, or privatize)", spec.Reduce)
		}
		reduce = mode
	}
	v := &validated{
		source: src,
		key:    phpf.CacheKey(src, spec.Procs, opts, reduce),
		procs:  spec.Procs,
		opts:   opts,
	}
	v.run.Reduce = reduce

	if needBackend {
		name := spec.Backend
		if name == "" {
			name = "sim"
		}
		b, ok := phpf.BackendByName(name)
		if !ok {
			return nil, badRequest("unknown backend %q (want one of %v)", spec.Backend, phpf.Backends())
		}
		v.backend = b
	} else if spec.Backend != "" {
		return nil, badRequest("backend does not apply to this endpoint")
	}

	switch {
	case spec.TimeoutMS < 0:
		return nil, badRequest("timeout_ms must be >= 0, got %d", spec.TimeoutMS)
	case spec.TimeoutMS == 0:
		v.timeout = cfg.DefaultTimeout
	default:
		v.timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
		if v.timeout > cfg.MaxTimeout {
			return nil, badRequest("timeout_ms %d exceeds the server maximum %d",
				spec.TimeoutMS, cfg.MaxTimeout.Milliseconds())
		}
	}

	// The request may narrow its cell budget but never widen the server's.
	switch {
	case spec.MaxCells < 0:
		return nil, badRequest("max_cells must be >= 0, got %d", spec.MaxCells)
	case spec.MaxCells == 0:
		v.run.MaxCells = cfg.MaxCells
	case cfg.MaxCells > 0 && spec.MaxCells > cfg.MaxCells:
		return nil, badRequest("max_cells %d exceeds the server budget %d", spec.MaxCells, cfg.MaxCells)
	default:
		v.run.MaxCells = spec.MaxCells
	}

	if spec.Chaos != nil {
		if !cfg.Chaos {
			return nil, badRequest("chaos mode is disabled on this server (start phpfserve with -chaos)")
		}
		plan := &phpf.FaultPlan{
			Seed:     spec.Chaos.Seed,
			LossRate: spec.Chaos.LossRate,
			DupRate:  spec.Chaos.DupRate,
		}
		if err := plan.Validate(); err != nil {
			return nil, badRequest("chaos: %v", err)
		}
		if spec.Chaos.CheckpointInterval < 0 {
			return nil, badRequest("chaos: checkpoint_interval must be >= 0, got %v", spec.Chaos.CheckpointInterval)
		}
		if plan.Active() {
			v.run.Fault = plan
		}
		v.run.CheckpointInterval = spec.Chaos.CheckpointInterval
	}

	// The backend-independent zero/negative/absurd-value gate over the
	// assembled options (machine params, fault plan, budgets).
	if err := v.run.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// jsonF64 is a float64 that always JSON-encodes: interpreter results
// legitimately contain NaN (uninitialized cells) and infinities, which
// encoding/json rejects as bare numbers. Non-finite values render as the
// strings "NaN", "+Inf", "-Inf" so a response can never fail to encode.
type jsonF64 float64

func (f jsonF64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts both encodings so responses round-trip (clients and
// tests can decode what the server produced).
func (f *jsonF64) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"NaN"`:
		*f = jsonF64(math.NaN())
		return nil
	case `"+Inf"`:
		*f = jsonF64(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = jsonF64(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonF64(v)
	return nil
}

func jsonScalars(m map[string]float64) map[string]jsonF64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]jsonF64, len(m))
	for k, v := range m {
		out[k] = jsonF64(v)
	}
	return out
}

func jsonArrays(m map[string][]float64) map[string][]jsonF64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string][]jsonF64, len(m))
	for k, vs := range m {
		cells := make([]jsonF64, len(vs))
		for i, v := range vs {
			cells[i] = jsonF64(v)
		}
		out[k] = cells
	}
	return out
}

// ErrorResponse is the JSON error body: a human message plus the stable
// diagnostic code when the failure carries one.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// CompileResponse is the /v1/compile result.
type CompileResponse struct {
	Key   string   `json:"key"`
	Cache string   `json:"cache"`
	Procs int      `json:"procs"`
	Diags []string `json:"diags,omitempty"`
}

// RunResponse is the /v1/run result: the backend-independent report
// flattened for the wire. Arrays are summarized as cell counts unless the
// request asked for contents.
type RunResponse struct {
	Key     string `json:"key"`
	Cache   string `json:"cache"`
	Backend string `json:"backend"`
	// Time is the simulated execution time of the program.
	Time    jsonF64            `json:"time"`
	Stats   string             `json:"stats"`
	Scalars map[string]jsonF64 `json:"scalars,omitempty"`
	// ArrayCells maps each array to its element count; Arrays carries the
	// contents only when return_arrays was set.
	ArrayCells map[string]int64     `json:"array_cells,omitempty"`
	Arrays     map[string][]jsonF64 `json:"arrays,omitempty"`
	Restarts   int64                `json:"restarts,omitempty"`
	WireDrops  int64                `json:"wire_drops,omitempty"`
	Diags      []string             `json:"diags,omitempty"`
	TimingMS   map[string]float64   `json:"timing_ms"`
}

// DiffResponse is the /v1/diff result: both backends under one request,
// with the oracle's verdict.
type DiffResponse struct {
	Key        string             `json:"key"`
	Cache      string             `json:"cache"`
	Match      bool               `json:"match"`
	Mismatches []string           `json:"mismatches,omitempty"`
	Time       jsonF64            `json:"time"`
	Stats      string             `json:"stats"`
	TimingMS   map[string]float64 `json:"timing_ms"`
}
