// Service metrics: cheap atomic counters and a fixed-bucket log-scale
// latency histogram good enough for p50/p99 estimates under concurrent
// update. The serving layer's observability contract is a consistent
// Snapshot (exposed on /healthz and flushed on drain), not a full metrics
// pipeline — no external dependencies, no locks on the request path.
package serve

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency buckets: log-spaced ×2 from
// histBase, covering 50µs .. ~1.9h. Out-of-range observations clamp to the
// end buckets, so quantile estimates stay defined for any input.
const (
	histBuckets = 27
	histBase    = 50 * time.Microsecond
)

// histogram is a concurrent-update-safe log-bucketed latency histogram.
type histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sumNS  atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	b := 0
	for hi := histBase; d > hi && b < histBuckets-1; hi *= 2 {
		b++
	}
	return b
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sumNS.Add(int64(d))
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the containing bucket. Zero observations return 0.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	seen := float64(0)
	lo, hi := time.Duration(0), histBase
	for b := 0; b < histBuckets; b++ {
		n := float64(h.counts[b].Load())
		if n > 0 && seen+n >= rank {
			frac := (rank - seen) / n
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += n
		lo = hi
		hi *= 2
	}
	return lo
}

// mean returns the arithmetic mean of all observations (0 when empty).
func (h *histogram) mean() time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / total)
}

// Metrics aggregates the serving layer's counters. All fields are updated
// atomically on the request path and read consistently enough for a
// monitoring snapshot (counters may be a request apart — that is fine).
type Metrics struct {
	start time.Time

	reqCompile atomic.Int64
	reqRun     atomic.Int64
	reqDiff    atomic.Int64

	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64
	shed      atomic.Int64 // 429s: admission declined, counted apart from other 4xx
	panics    atomic.Int64 // contained request panics (each also a 5xx)

	inflight atomic.Int64

	service histogram // admission + execution, what the client observes minus transport
	queue   histogram // time spent waiting for an admission slot
}

// NewMetrics returns a zeroed metrics set anchored at now.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// Status records one response's status code.
func (m *Metrics) Status(code int) {
	switch {
	case code == 429:
		m.shed.Add(1)
	case code >= 500:
		m.status5xx.Add(1)
	case code >= 400:
		m.status4xx.Add(1)
	case code >= 200 && code < 300:
		m.status2xx.Add(1)
	}
}

// CacheStatsSource is what a Snapshot needs from the compiled-program cache.
type CacheStatsSource interface{ Stats() CacheStats }

// Snapshot is a consistent-enough point-in-time view of the service,
// rendered as the /healthz body and flushed to the log on drain.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Compile int64 `json:"requests_compile"`
	Run     int64 `json:"requests_run"`
	Diff    int64 `json:"requests_diff"`

	Status2xx int64 `json:"status_2xx"`
	Status4xx int64 `json:"status_4xx"`
	Status5xx int64 `json:"status_5xx"`
	Shed      int64 `json:"shed"`
	Panics    int64 `json:"panics"`
	Inflight  int64 `json:"inflight"`

	Cache CacheStats `json:"cache"`

	ServiceP50Ms  float64 `json:"service_p50_ms"`
	ServiceP90Ms  float64 `json:"service_p90_ms"`
	ServiceP99Ms  float64 `json:"service_p99_ms"`
	ServiceMeanMs float64 `json:"service_mean_ms"`
	QueueP50Ms    float64 `json:"queue_p50_ms"`
	QueueP99Ms    float64 `json:"queue_p99_ms"`

	Draining bool `json:"draining"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Snapshot renders the current counters.
func (m *Metrics) Snapshot(cache CacheStatsSource, draining bool) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Compile:       m.reqCompile.Load(),
		Run:           m.reqRun.Load(),
		Diff:          m.reqDiff.Load(),
		Status2xx:     m.status2xx.Load(),
		Status4xx:     m.status4xx.Load(),
		Status5xx:     m.status5xx.Load(),
		Shed:          m.shed.Load(),
		Panics:        m.panics.Load(),
		Inflight:      m.inflight.Load(),
		ServiceP50Ms:  ms(m.service.quantile(0.50)),
		ServiceP90Ms:  ms(m.service.quantile(0.90)),
		ServiceP99Ms:  ms(m.service.quantile(0.99)),
		ServiceMeanMs: ms(m.service.mean()),
		QueueP50Ms:    ms(m.queue.quantile(0.50)),
		QueueP99Ms:    ms(m.queue.quantile(0.99)),
		Draining:      draining,
	}
	if cache != nil {
		s.Cache = cache.Stats()
	}
	return s
}
