// Admission control: bounded per-tenant work queues with backpressure and
// load shedding. Every /v1 request must acquire an execution slot before it
// touches the compiler or an execution backend. A tenant gets PerTenant
// concurrent slots and a bounded waiting line of QueueDepth requests behind
// them; a global MaxConcurrent bound caps the whole process. When a
// tenant's line is full the request is shed immediately — a 429 with a
// Retry-After estimate — instead of queueing without bound, so hostile or
// merely enthusiastic traffic degrades into fast, explicit rejections
// rather than unbounded goroutines, latency collapse, or OOM. A request
// whose context expires while it waits in line is shed the same way: the
// service was too busy to start it within its budget.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// Admission defaults (see Config for the tunable versions).
const (
	DefaultMaxConcurrent = 16
	DefaultPerTenant     = 8
	DefaultQueueDepth    = 32
	// maxTrackedTenants bounds the tenant table itself: hostile traffic
	// inventing a new tenant name per request must not grow server memory
	// without bound. Idle tenants are evicted past this watermark.
	maxTrackedTenants = 1024
)

// ErrShed is returned when a request is load-shed: its tenant's waiting
// line was full (QueueFull) or its context expired before a slot freed up.
type ErrShed struct {
	Tenant string
	// Queued is how many requests were in the tenant's line when this one
	// was declined (informs the Retry-After estimate).
	Queued int
	// QueueFull distinguishes an immediate shed from a waiting timeout.
	QueueFull bool
}

func (e *ErrShed) Error() string {
	if e.QueueFull {
		return "serve: overloaded: tenant queue full"
	}
	return "serve: overloaded: request expired while queued"
}

// Admission is the per-tenant + global slot manager.
type Admission struct {
	perTenant  int
	queueDepth int
	global     chan struct{}

	mu      sync.Mutex
	tenants map[string]*tenantState

	sheds    atomic.Int64
	admitted atomic.Int64
}

type tenantState struct {
	slots chan struct{} // capacity = perTenant: running requests
	queue chan struct{} // capacity = perTenant+queueDepth: running + waiting
	// active counts requests holding a queue token; an idle tenant
	// (active == 0) may be evicted to bound the table.
	active int
}

// NewAdmission builds an admission controller (non-positive arguments
// select the defaults).
func NewAdmission(maxConcurrent, perTenant, queueDepth int) *Admission {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	if perTenant <= 0 {
		perTenant = DefaultPerTenant
	}
	if perTenant > maxConcurrent {
		perTenant = maxConcurrent
	}
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	return &Admission{
		perTenant:  perTenant,
		queueDepth: queueDepth,
		global:     make(chan struct{}, maxConcurrent),
		tenants:    map[string]*tenantState{},
	}
}

// tenant returns (creating if needed) the tenant's state, evicting idle
// tenants when the table has grown past its bound.
func (a *Admission) tenant(name string) *tenantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[name]
	if !ok {
		if len(a.tenants) >= maxTrackedTenants {
			for n, s := range a.tenants {
				if s.active == 0 {
					delete(a.tenants, n)
				}
			}
		}
		t = &tenantState{
			slots: make(chan struct{}, a.perTenant),
			queue: make(chan struct{}, a.perTenant+a.queueDepth),
		}
		a.tenants[name] = t
	}
	t.active++
	return t
}

func (a *Admission) leave(t *tenantState) {
	a.mu.Lock()
	t.active--
	a.mu.Unlock()
}

// Admit blocks until the request may execute, its context expires, or its
// tenant's line is full. On success it returns a release function the
// caller must invoke exactly once when the work is done. On failure it
// returns *ErrShed.
func (a *Admission) Admit(ctx context.Context, tenant string) (release func(), err error) {
	t := a.tenant(tenant)

	// Backpressure boundary: a full line sheds immediately.
	select {
	case t.queue <- struct{}{}:
	default:
		a.sheds.Add(1)
		a.leave(t)
		return nil, &ErrShed{Tenant: tenant, Queued: len(t.queue), QueueFull: true}
	}
	giveUp := func() (func(), error) {
		<-t.queue
		a.sheds.Add(1)
		a.leave(t)
		return nil, &ErrShed{Tenant: tenant, Queued: len(t.queue)}
	}

	// Wait for a tenant slot, then a global slot, bounded by the request's
	// own deadline. Tenant first: one tenant's burst drains into its own
	// line and cannot occupy the global pool while waiting.
	select {
	case t.slots <- struct{}{}:
	case <-ctx.Done():
		return giveUp()
	}
	select {
	case a.global <- struct{}{}:
	case <-ctx.Done():
		<-t.slots
		return giveUp()
	}

	a.admitted.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			<-a.global
			<-t.slots
			<-t.queue
			a.leave(t)
		})
	}, nil
}

// Queued returns how many requests the tenant currently has admitted or
// waiting (0 for unknown tenants).
func (a *Admission) Queued(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[tenant]; ok {
		return len(t.queue)
	}
	return 0
}

// Sheds returns the total number of load-shed requests.
func (a *Admission) Sheds() int64 { return a.sheds.Load() }

// Admitted returns the total number of admitted requests.
func (a *Admission) Admitted() int64 { return a.admitted.Load() }
