// Package fault provides a deterministic, seed-driven fault model for the
// simulated machine: per-message loss and duplication, transient
// per-processor slowdowns, and fail-stop processor crashes at chosen
// simulated times. Every random decision is a pure function of (seed,
// sequence number), so a run with a fixed seed is bit-identical across
// invocations regardless of Go's rand state — a property the recovery
// experiments in EXPERIMENTS.md rely on.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Slowdown is a transient per-processor compute slowdown: between Start and
// Start+Duration (simulated seconds) processor Proc runs Factor times slower.
// A zero Duration means the slowdown never ends.
type Slowdown struct {
	Proc     int
	Factor   float64
	Start    float64
	Duration float64
}

// Crash is a fail-stop failure of processor Proc at simulated time At. The
// simulator recovers it from the last coordinated checkpoint.
type Crash struct {
	Proc int
	At   float64
}

// Plan is a complete fault schedule for one run. The zero Plan injects
// nothing (a perfectly reliable machine).
type Plan struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// LossRate is the probability that any one message transmission is
	// lost (and must be retransmitted after a timeout).
	LossRate float64
	// DupRate is the probability that a message is duplicated (the sender
	// pays overhead and wire bytes twice).
	DupRate float64
	// RTO is the base retransmission timeout in seconds; 0 selects the
	// machine's default (10x its latency). Each successive retransmission
	// of one message doubles the timeout (exponential backoff).
	RTO float64

	Slowdowns []Slowdown
	Crashes   []Crash
}

// Active reports whether the plan injects anything at all. Inactive plans
// cost nothing: the simulator skips the fault layer entirely
// (pay-for-what-you-use).
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.LossRate > 0 || p.DupRate > 0 || len(p.Slowdowns) > 0 || len(p.Crashes) > 0
}

// Validate rejects rates outside [0,1), non-positive crash/slowdown
// parameters, and NaN/Inf values.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if !(p.LossRate >= 0 && p.LossRate < 1) || math.IsNaN(p.LossRate) {
		return fmt.Errorf("fault: loss rate must be in [0,1), got %v", p.LossRate)
	}
	if !(p.DupRate >= 0 && p.DupRate < 1) || math.IsNaN(p.DupRate) {
		return fmt.Errorf("fault: duplication rate must be in [0,1), got %v", p.DupRate)
	}
	if p.RTO < 0 || math.IsNaN(p.RTO) || math.IsInf(p.RTO, 0) {
		return fmt.Errorf("fault: retransmission timeout must be finite and >= 0, got %v", p.RTO)
	}
	for _, s := range p.Slowdowns {
		if s.Proc < 0 {
			return fmt.Errorf("fault: slowdown processor must be >= 0, got %d", s.Proc)
		}
		if !(s.Factor >= 1) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("fault: slowdown factor must be >= 1 and finite, got %v", s.Factor)
		}
		if s.Start < 0 || s.Duration < 0 || math.IsNaN(s.Start) || math.IsNaN(s.Duration) {
			return fmt.Errorf("fault: slowdown start/duration must be >= 0")
		}
	}
	for _, c := range p.Crashes {
		if c.Proc < 0 {
			return fmt.Errorf("fault: crash processor must be >= 0, got %d", c.Proc)
		}
		if !(c.At >= 0) || math.IsInf(c.At, 0) {
			return fmt.Errorf("fault: crash time must be finite and >= 0, got %v", c.At)
		}
	}
	return nil
}

// ParseCrashes parses a crash schedule of the form "proc@time[,proc@time...]"
// (e.g. "3@0.5,7@1.2"). The empty string is an empty schedule.
func ParseCrashes(spec string) ([]Crash, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Crash
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), "@")
		if len(fields) != 2 {
			return nil, fmt.Errorf("fault: crash %q: want proc@time", part)
		}
		proc, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("fault: crash %q: bad processor: %v", part, err)
		}
		at, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: crash %q: bad time: %v", part, err)
		}
		out = append(out, Crash{Proc: proc, At: at})
	}
	return out, nil
}

// ParseSlowdowns parses a slowdown schedule of the form
// "proc:factor[:start[:duration]]" entries separated by commas
// (e.g. "2:1.5:0.1:0.4,5:2"). The empty string is an empty schedule.
func ParseSlowdowns(spec string) ([]Slowdown, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Slowdown
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 4 {
			return nil, fmt.Errorf("fault: slowdown %q: want proc:factor[:start[:duration]]", part)
		}
		proc, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("fault: slowdown %q: bad processor: %v", part, err)
		}
		s := Slowdown{Proc: proc}
		if s.Factor, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("fault: slowdown %q: bad factor: %v", part, err)
		}
		if len(fields) > 2 {
			if s.Start, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("fault: slowdown %q: bad start: %v", part, err)
			}
		}
		if len(fields) > 3 {
			if s.Duration, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("fault: slowdown %q: bad duration: %v", part, err)
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// Injector draws fault decisions from a Plan. It is stateful only in the
// message sequence counter and consumed-crash marks; given the same plan and
// the same call sequence it makes the same decisions.
type Injector struct {
	plan     Plan
	seq      uint64
	consumed []bool
}

// NewInjector returns an injector for the plan, or nil when the plan is
// inactive (so callers can gate the whole fault layer on a nil check).
func NewInjector(p *Plan) *Injector {
	if !p.Active() {
		return nil
	}
	return &Injector{plan: *p, consumed: make([]bool, len(p.Crashes))}
}

// Plan returns the plan the injector draws from.
func (in *Injector) Plan() Plan { return in.plan }

// splitmix64 finalizer: a high-quality 64-bit mix of seed and counter.
func mix(seed int64, seq uint64) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(seq+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// draw returns the next uniform value in [0,1).
func (in *Injector) draw() float64 {
	in.seq++
	return float64(mix(in.plan.Seed, in.seq)>>11) / (1 << 53)
}

// DropMessage decides whether the next message transmission is lost.
func (in *Injector) DropMessage() bool {
	if in.plan.LossRate <= 0 {
		return false
	}
	return in.draw() < in.plan.LossRate
}

// DuplicateMessage decides whether the next message is duplicated.
func (in *Injector) DuplicateMessage() bool {
	if in.plan.DupRate <= 0 {
		return false
	}
	return in.draw() < in.plan.DupRate
}

// DropsAmong draws k independent loss decisions (for the k constituent
// messages of a collective) and returns how many were lost.
func (in *Injector) DropsAmong(k int) int {
	if in.plan.LossRate <= 0 || k <= 0 {
		return 0
	}
	n := 0
	for i := 0; i < k; i++ {
		if in.draw() < in.plan.LossRate {
			n++
		}
	}
	return n
}

// BaseRTO returns the retransmission timeout: the plan's RTO if set, else
// 10x the machine latency (a classic conservative static RTO).
func (in *Injector) BaseRTO(latency float64) float64 {
	if in.plan.RTO > 0 {
		return in.plan.RTO
	}
	return 10 * latency
}

// SlowFactor returns the compute-slowdown multiplier for proc at simulated
// time now (>= 1; 1 means full speed). Overlapping slowdowns compound.
func (in *Injector) SlowFactor(proc int, now float64) float64 {
	f := 1.0
	for _, s := range in.plan.Slowdowns {
		if s.Proc != proc {
			continue
		}
		if now < s.Start {
			continue
		}
		if s.Duration > 0 && now >= s.Start+s.Duration {
			continue
		}
		f *= s.Factor
	}
	return f
}

// HasSlowdowns reports whether any slowdown is scheduled (lets the machine
// keep its uniform fast path when only message faults are active).
func (in *Injector) HasSlowdowns() bool { return len(in.plan.Slowdowns) > 0 }

// PendingCrash returns the earliest unconsumed crash whose time has been
// reached at simulated time now, marking it consumed; nil when none is due.
// Each crash fires exactly once.
func (in *Injector) PendingCrash(now float64) *Crash {
	best := -1
	for i, c := range in.plan.Crashes {
		if in.consumed[i] || c.At > now {
			continue
		}
		if best < 0 || c.At < in.plan.Crashes[best].At {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	in.consumed[best] = true
	c := in.plan.Crashes[best]
	return &c
}
