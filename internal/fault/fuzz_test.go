package fault

import (
	"strings"
	"testing"
)

// FuzzParseCrashes hammers the crash-schedule parser with arbitrary input.
// The contract: never panic, and on success every parsed entry round-trips
// through Plan.Validate without tripping an internal inconsistency (invalid
// values are allowed — Validate rejects them with an error, not a panic).
// Seeds mirror the syntax phpfrun's -crash flag accepts.
func FuzzParseCrashes(f *testing.F) {
	for _, s := range []string{
		"",
		"3@0.5",
		"3@0.5,7@1.2",
		"0@0",
		" 1@2 , 2@3 ",
		"1@1e-3",
		"1@",
		"@1",
		"x@y",
		"1@2@3",
		"-1@0.5",
		"1@-2",
		"1@NaN",
		"1@Inf",
		strings.Repeat("1@1,", 64) + "1@1",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		crashes, err := ParseCrashes(spec)
		if err != nil {
			if crashes != nil {
				t.Fatalf("ParseCrashes(%q) returned entries alongside error %v", spec, err)
			}
			return
		}
		p := &Plan{Crashes: crashes}
		_ = p.Validate() // must not panic; errors are fine
		if p.Active() != (len(crashes) > 0) {
			t.Fatalf("ParseCrashes(%q): Active()=%v with %d crashes", spec, p.Active(), len(crashes))
		}
	})
}

// FuzzParseSlowdowns is the same contract for the slowdown-schedule parser
// behind phpfrun's -slowdown flag.
func FuzzParseSlowdowns(f *testing.F) {
	for _, s := range []string{
		"",
		"2:1.5",
		"2:1.5:0.1:0.4,5:2",
		"0:1",
		" 1:2 : 3 ",
		"1:1e3:0:0",
		"1",
		"1:",
		":2",
		"1:2:3:4:5",
		"-1:2",
		"1:-2",
		"1:NaN",
		"1:Inf:0:0",
		strings.Repeat("1:2,", 64) + "1:2",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		slow, err := ParseSlowdowns(spec)
		if err != nil {
			if slow != nil {
				t.Fatalf("ParseSlowdowns(%q) returned entries alongside error %v", spec, err)
			}
			return
		}
		p := &Plan{Slowdowns: slow}
		_ = p.Validate() // must not panic; errors are fine
		if p.Active() != (len(slow) > 0) {
			t.Fatalf("ParseSlowdowns(%q): Active()=%v with %d slowdowns", spec, p.Active(), len(slow))
		}
	})
}
