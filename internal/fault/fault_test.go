package fault

import (
	"math"
	"testing"
)

// TestDeterminism: the same plan makes bit-identical decisions across
// injector instances.
func TestDeterminism(t *testing.T) {
	p := &Plan{Seed: 42, LossRate: 0.1, DupRate: 0.05}
	a, b := NewInjector(p), NewInjector(p)
	for i := 0; i < 10000; i++ {
		if a.DropMessage() != b.DropMessage() {
			t.Fatalf("drop decision %d diverged", i)
		}
		if a.DuplicateMessage() != b.DuplicateMessage() {
			t.Fatalf("dup decision %d diverged", i)
		}
	}
}

// TestSeedChangesDecisions: different seeds give different drop sequences.
func TestSeedChangesDecisions(t *testing.T) {
	a := NewInjector(&Plan{Seed: 1, LossRate: 0.5})
	b := NewInjector(&Plan{Seed: 2, LossRate: 0.5})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.DropMessage() == b.DropMessage() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 1 and 2 produced identical decision streams")
	}
}

// TestLossRateCalibration: the empirical drop frequency tracks the rate.
func TestLossRateCalibration(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		in := NewInjector(&Plan{Seed: 7, LossRate: rate})
		n, drops := 200000, 0
		for i := 0; i < n; i++ {
			if in.DropMessage() {
				drops++
			}
		}
		got := float64(drops) / float64(n)
		if math.Abs(got-rate) > 0.01 {
			t.Errorf("rate %v: empirical %v", rate, got)
		}
	}
}

func TestInactivePlan(t *testing.T) {
	if NewInjector(nil) != nil {
		t.Error("nil plan must yield nil injector")
	}
	if NewInjector(&Plan{Seed: 5}) != nil {
		t.Error("plan with no faults must yield nil injector")
	}
	p := &Plan{LossRate: 0.1}
	if NewInjector(p) == nil {
		t.Error("plan with loss must yield an injector")
	}
}

func TestSlowFactor(t *testing.T) {
	in := NewInjector(&Plan{Slowdowns: []Slowdown{
		{Proc: 2, Factor: 1.5, Start: 1, Duration: 2},
		{Proc: 2, Factor: 2, Start: 2},
	}})
	cases := []struct {
		proc int
		now  float64
		want float64
	}{
		{0, 1.5, 1},   // other processor
		{2, 0.5, 1},   // before start
		{2, 1.5, 1.5}, // first window only
		{2, 2.5, 3},   // overlapping windows compound
		{2, 4.0, 2},   // first expired, unbounded one persists
	}
	for _, c := range cases {
		if got := in.SlowFactor(c.proc, c.now); got != c.want {
			t.Errorf("SlowFactor(%d, %v) = %v, want %v", c.proc, c.now, got, c.want)
		}
	}
}

func TestPendingCrash(t *testing.T) {
	in := NewInjector(&Plan{Crashes: []Crash{{Proc: 3, At: 2.0}, {Proc: 1, At: 1.0}}})
	if c := in.PendingCrash(0.5); c != nil {
		t.Fatalf("no crash due at 0.5, got %+v", c)
	}
	c := in.PendingCrash(5)
	if c == nil || c.Proc != 1 {
		t.Fatalf("earliest crash first: got %+v", c)
	}
	c = in.PendingCrash(5)
	if c == nil || c.Proc != 3 {
		t.Fatalf("second crash next: got %+v", c)
	}
	if c = in.PendingCrash(5); c != nil {
		t.Fatalf("crashes fire once, got %+v", c)
	}
}

func TestParseCrashes(t *testing.T) {
	got, err := ParseCrashes(" 3@0.5, 7@1.2 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Crash{{Proc: 3, At: 0.5}, {Proc: 7, At: 1.2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got, err := ParseCrashes(""); err != nil || got != nil {
		t.Fatalf("empty spec: got %+v, %v", got, err)
	}
	for _, bad := range []string{"3", "x@1", "3@y", "3@1@2",
		"@1", "3@", "@", "3@0.5,", ",3@0.5", "3@0.5,,7@1.2", "3 @ 0.5"} {
		if _, err := ParseCrashes(bad); err == nil {
			t.Errorf("ParseCrashes(%q): want error", bad)
		}
	}
}

// TestParsedNegativesRejectedByValidate: negative times and processors are
// syntactically valid specs — the parser accepts them and Plan.Validate is
// the layer that rejects them, so a CLI typo still dies with a clear error.
func TestParsedNegativesRejectedByValidate(t *testing.T) {
	crashes, err := ParseCrashes("3@-0.5")
	if err != nil {
		t.Fatalf("negative time should parse: %v", err)
	}
	if err := (&Plan{Crashes: crashes}).Validate(); err == nil {
		t.Error("negative crash time passed Validate")
	}
	crashes, err = ParseCrashes("-3@0.5")
	if err != nil {
		t.Fatalf("negative processor should parse: %v", err)
	}
	if err := (&Plan{Crashes: crashes}).Validate(); err == nil {
		t.Error("negative crash processor passed Validate")
	}
	slows, err := ParseSlowdowns("2:1.5:-0.1")
	if err != nil {
		t.Fatalf("negative start should parse: %v", err)
	}
	if err := (&Plan{Slowdowns: slows}).Validate(); err == nil {
		t.Error("negative slowdown start passed Validate")
	}
	slows, err = ParseSlowdowns("2:0.5")
	if err != nil {
		t.Fatalf("sub-unit factor should parse: %v", err)
	}
	if err := (&Plan{Slowdowns: slows}).Validate(); err == nil {
		t.Error("slowdown factor < 1 passed Validate")
	}
}

func TestParseSlowdowns(t *testing.T) {
	got, err := ParseSlowdowns("2:1.5:0.1:0.4,5:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Slowdown{{Proc: 2, Factor: 1.5, Start: 0.1, Duration: 0.4}, {Proc: 5, Factor: 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if got, err := ParseSlowdowns("  "); err != nil || got != nil {
		t.Fatalf("blank spec: got %+v, %v", got, err)
	}
	for _, bad := range []string{"2", "x:2", "2:y", "2:2:z", "2:2:0:w", "1:2:3:4:5",
		":2", "2:", ":", "2:1.5,", ",2:1.5", "2:1.5,,3:2", "2 : 1.5"} {
		if _, err := ParseSlowdowns(bad); err == nil {
			t.Errorf("ParseSlowdowns(%q): want error", bad)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := &Plan{Seed: 1, LossRate: 0.5, DupRate: 0.1, RTO: 1e-3,
		Slowdowns: []Slowdown{{Proc: 0, Factor: 2}},
		Crashes:   []Crash{{Proc: 1, At: 0.5}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
	bad := []*Plan{
		{LossRate: 1},
		{LossRate: -0.1},
		{LossRate: math.NaN()},
		{DupRate: 1.5},
		{RTO: math.Inf(1)},
		{RTO: -1},
		{Slowdowns: []Slowdown{{Proc: -1, Factor: 2}}},
		{Slowdowns: []Slowdown{{Proc: 0, Factor: 0.5}}},
		{Slowdowns: []Slowdown{{Proc: 0, Factor: math.NaN()}}},
		{Crashes: []Crash{{Proc: 0, At: -1}}},
		{Crashes: []Crash{{Proc: 0, At: math.NaN()}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, *p)
		}
	}
}
