// Wall-clock fault injection for the concurrent backend. The sequential
// Injector draws from a seed-keyed stream indexed by a running counter,
// which requires a single deterministic call order; goroutine-per-processor
// execution has no such order, so the wall injector instead keys every draw
// off the identity of the transmission itself: (src, dst, seq, attempt).
// Two runs with the same plan make the same per-message decisions no matter
// how the goroutines interleave — the reproducibility property the chaos
// gate depends on.
package fault

import "time"

// DefaultWallRTO is the base retransmission timeout for real (wall-clock)
// transport when the plan does not set one. It only has to beat goroutine
// scheduling jitter, not a network.
const DefaultWallRTO = 2 * time.Millisecond

// DefaultDelayUnit converts a slowdown factor into wall time: a sender
// inside a slowdown window sleeps (factor-1) delay units per message.
const DefaultDelayUnit = time.Millisecond

// draw kinds keep the keyed streams for different decisions independent.
const (
	wallDrop uint64 = iota + 1
	wallDup
)

// WallInjector draws wall-clock fault decisions for the concurrent
// backend's wire layer. Unlike Injector it is stateless: every method is a
// pure function of the plan seed and the transmission's identity, so it may
// be shared by all worker goroutines without synchronization.
type WallInjector struct {
	plan Plan
	// DelayUnit is the wall time one unit of slowdown costs a sender
	// (tests shrink or grow it to steer the stall watchdog).
	DelayUnit time.Duration
}

// NewWallInjector returns a wall injector for the plan, or nil when the
// plan carries no wire-level faults (losses, duplicates, or slowdowns).
// Crashes and checkpoints are model-level and do not need one.
func NewWallInjector(p *Plan) *WallInjector {
	if p == nil || (p.LossRate <= 0 && p.DupRate <= 0 && len(p.Slowdowns) == 0) {
		return nil
	}
	return &WallInjector{plan: *p, DelayUnit: DefaultDelayUnit}
}

// keyed folds the transmission identity into one uniform draw in [0,1).
func (w *WallInjector) keyed(kind uint64, src, dst int, seq uint64, attempt int) float64 {
	h := mix(w.plan.Seed, kind)
	h = mix(int64(h), uint64(uint32(src))<<32|uint64(uint32(dst)))
	h = mix(int64(h), seq)
	h = mix(int64(h), uint64(attempt))
	return float64(h>>11) / (1 << 53)
}

// DropAttempt decides whether transmission attempt `attempt` of message
// (src, dst, seq) is lost on the wire. dup marks the duplicated copy of an
// attempt so it draws independently from the original.
func (w *WallInjector) DropAttempt(src, dst int, seq uint64, attempt int, dup bool) bool {
	if w == nil || w.plan.LossRate <= 0 {
		return false
	}
	if dup {
		attempt = -1 - attempt
	}
	return w.keyed(wallDrop, src, dst, seq, attempt) < w.plan.LossRate
}

// Duplicate decides whether message (src, dst, seq) is sent twice.
func (w *WallInjector) Duplicate(src, dst int, seq uint64) bool {
	if w == nil || w.plan.DupRate <= 0 {
		return false
	}
	return w.keyed(wallDup, src, dst, seq, 0) < w.plan.DupRate
}

// RTO returns the base wall-clock retransmission timeout: the plan's RTO
// (interpreted as seconds) when set, else DefaultWallRTO. Retransmissions
// double it (exponential backoff), mirroring the simulated protocol.
func (w *WallInjector) RTO() time.Duration {
	if w != nil && w.plan.RTO > 0 {
		return time.Duration(w.plan.RTO * float64(time.Second))
	}
	return DefaultWallRTO
}

// SendDelay returns the wall time a send by proc at wall-clock second `now`
// must stall for under the plan's slowdown windows: (factor-1) delay units,
// with overlapping windows compounding like the simulator's SlowFactor.
func (w *WallInjector) SendDelay(proc int, now float64) time.Duration {
	if w == nil || len(w.plan.Slowdowns) == 0 {
		return 0
	}
	f := 1.0
	for _, s := range w.plan.Slowdowns {
		if s.Proc != proc || now < s.Start {
			continue
		}
		if s.Duration > 0 && now >= s.Start+s.Duration {
			continue
		}
		f *= s.Factor
	}
	if f <= 1 {
		return 0
	}
	return time.Duration((f - 1) * float64(w.DelayUnit))
}

// Clone returns an independent copy of the injector's draw state, so a
// checkpoint can capture "where the fault stream was" and a restore can
// resume it bit-identically. Clone of nil is nil.
func (in *Injector) Clone() *Injector {
	if in == nil {
		return nil
	}
	c := &Injector{plan: in.plan, seq: in.seq}
	c.consumed = append([]bool(nil), in.consumed...)
	return c
}

// Consume marks the crash equal to c as already fired (so a healed run
// restored from a pre-crash snapshot does not re-fire it). It reports
// whether an unconsumed matching crash was found.
func (in *Injector) Consume(c Crash) bool {
	if in == nil {
		return false
	}
	for i, p := range in.plan.Crashes {
		if !in.consumed[i] && p == c {
			in.consumed[i] = true
			return true
		}
	}
	return false
}
