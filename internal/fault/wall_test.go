package fault

import (
	"testing"
	"time"
)

// TestWallInjectorDeterministic: keyed draws are pure functions of the
// transmission identity — same key, same decision; the duplicated copy of
// an attempt draws independently of the original.
func TestWallInjectorDeterministic(t *testing.T) {
	p := &Plan{Seed: 42, LossRate: 0.3, DupRate: 0.3}
	a := NewWallInjector(p)
	b := NewWallInjector(p)
	if a == nil || b == nil {
		t.Fatal("active plan produced nil wall injector")
	}
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			for seq := uint64(0); seq < 50; seq++ {
				for att := 0; att < 3; att++ {
					if a.DropAttempt(src, dst, seq, att, false) != b.DropAttempt(src, dst, seq, att, false) {
						t.Fatalf("drop draw not reproducible at (%d,%d,%d,%d)", src, dst, seq, att)
					}
					if a.DropAttempt(src, dst, seq, att, true) != b.DropAttempt(src, dst, seq, att, true) {
						t.Fatalf("dup-copy drop draw not reproducible at (%d,%d,%d,%d)", src, dst, seq, att)
					}
				}
				if a.Duplicate(src, dst, seq) != b.Duplicate(src, dst, seq) {
					t.Fatalf("dup draw not reproducible at (%d,%d,%d)", src, dst, seq)
				}
			}
		}
	}
	// The drop rate should roughly track the plan (loose sanity bound).
	drops := 0
	const n = 4000
	for seq := uint64(0); seq < n; seq++ {
		if a.DropAttempt(0, 1, seq, 0, false) {
			drops++
		}
	}
	if frac := float64(drops) / n; frac < 0.2 || frac > 0.4 {
		t.Fatalf("drop fraction %.3f far from loss rate 0.3", frac)
	}
}

// TestWallInjectorGating: plans without wire faults get no wall injector,
// and nil receivers behave as a perfectly reliable wire.
func TestWallInjectorGating(t *testing.T) {
	if NewWallInjector(nil) != nil {
		t.Fatal("nil plan produced a wall injector")
	}
	if NewWallInjector(&Plan{Crashes: []Crash{{Proc: 1, At: 0.5}}}) != nil {
		t.Fatal("crash-only plan produced a wall injector (crashes are model-level)")
	}
	var w *WallInjector
	if w.DropAttempt(0, 1, 0, 0, false) || w.Duplicate(0, 1, 0) {
		t.Fatal("nil wall injector injected a fault")
	}
	if w.SendDelay(0, 0) != 0 {
		t.Fatal("nil wall injector delayed a send")
	}
	if w.RTO() != DefaultWallRTO {
		t.Fatalf("nil wall injector RTO = %v, want default", w.RTO())
	}
}

// TestWallInjectorRTOAndDelay: the plan's RTO converts to wall seconds, and
// slowdown windows convert factors to delay units with compounding.
func TestWallInjectorRTOAndDelay(t *testing.T) {
	w := NewWallInjector(&Plan{RTO: 0.25, Slowdowns: []Slowdown{
		{Proc: 1, Factor: 3, Start: 0, Duration: 10},
		{Proc: 1, Factor: 2, Start: 5, Duration: 0},
	}})
	if got := w.RTO(); got != 250*time.Millisecond {
		t.Fatalf("RTO = %v, want 250ms", got)
	}
	w.DelayUnit = time.Millisecond
	if got := w.SendDelay(0, 1); got != 0 {
		t.Fatalf("unslowed proc delayed %v", got)
	}
	if got := w.SendDelay(1, 1); got != 2*time.Millisecond {
		t.Fatalf("factor-3 window: delay = %v, want 2ms", got)
	}
	// At t=6 both windows overlap: factor 3*2=6 → 5 units.
	if got := w.SendDelay(1, 6); got != 5*time.Millisecond {
		t.Fatalf("compounded windows: delay = %v, want 5ms", got)
	}
	// After the bounded window ends only the unbounded one remains.
	if got := w.SendDelay(1, 11); got != time.Millisecond {
		t.Fatalf("after first window: delay = %v, want 1ms", got)
	}
}

// TestInjectorCloneConsume: Clone captures the draw stream position and the
// consumed-crash marks; Consume retires a crash so restored runs do not
// re-fire it.
func TestInjectorCloneConsume(t *testing.T) {
	p := &Plan{Seed: 7, LossRate: 0.5, Crashes: []Crash{{Proc: 0, At: 1}, {Proc: 1, At: 2}}}
	in := NewInjector(p)
	for i := 0; i < 10; i++ {
		in.DropMessage()
	}
	snap := in.Clone()
	// Diverge the original, then check the clone replays from the snapshot.
	var orig, cloned []bool
	for i := 0; i < 20; i++ {
		orig = append(orig, in.DropMessage())
	}
	for i := 0; i < 20; i++ {
		cloned = append(cloned, snap.DropMessage())
	}
	for i := range orig {
		if orig[i] != cloned[i] {
			t.Fatalf("clone diverged from original at draw %d", i)
		}
	}
	fresh := NewInjector(p)
	if !fresh.Consume(Crash{Proc: 0, At: 1}) {
		t.Fatal("Consume missed a scheduled crash")
	}
	if fresh.Consume(Crash{Proc: 0, At: 1}) {
		t.Fatal("Consume retired the same crash twice")
	}
	if c := fresh.PendingCrash(5); c == nil || c.Proc != 1 {
		t.Fatalf("after consume, pending = %+v, want proc 1", c)
	}
	if c := fresh.PendingCrash(5); c != nil {
		t.Fatalf("all crashes consumed, pending = %+v", c)
	}
	var nilIn *Injector
	if nilIn.Clone() != nil || nilIn.Consume(Crash{}) {
		t.Fatal("nil injector Clone/Consume misbehaved")
	}
}
