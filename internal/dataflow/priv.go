package dataflow

import (
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// Privatizable reports whether the scalar definition def is privatizable
// (without copy-out) with respect to loop L: the defined value is consumed
// entirely within the same iteration of L — no reached use lies outside L
// and no def→use path crosses L's back edge.
//
// Per the paper, this is the data-flow test behind IsPrivatizable in Figure
// 3; the NEW clause of an INDEPENDENT directive can assert it when analysis
// cannot prove it (handled by the caller).
func Privatizable(s *ssa.SSA, def *ssa.Value, L *ir.Loop) bool {
	if def == nil || def.Kind != ssa.VDef || L == nil {
		return false
	}
	if !ir.Encloses(L, def.Stmt.Loop) {
		return false
	}
	for _, ru := range s.ReachedUses(def) {
		if !ir.Encloses(L, ru.Ref.Stmt.Loop) {
			return false // live outside the loop
		}
		if ru.CrossesBackOf[L] {
			return false // carried into a later iteration
		}
	}
	return true
}

// PrivatizationLevel returns the outermost loop level l such that def is
// privatizable with respect to its enclosing loop at level l, together with
// that loop. Returns (0, nil) when the definition is not privatizable with
// respect to any enclosing loop.
//
// Privatizability is monotone in nesting: privatizable at level l implies
// privatizable at every shallower enclosing loop that still contains all
// uses; we simply scan from the outermost loop inward.
func PrivatizationLevel(s *ssa.SSA, def *ssa.Value) (int, *ir.Loop) {
	if def == nil || def.Kind != ssa.VDef || def.Stmt.Loop == nil {
		return 0, nil
	}
	// Collect enclosing loops outermost-first.
	var chain []*ir.Loop
	for l := def.Stmt.Loop; l != nil; l = l.Parent {
		chain = append([]*ir.Loop{l}, chain...)
	}
	for _, l := range chain {
		if Privatizable(s, def, l) {
			return l.Level, l
		}
	}
	return 0, nil
}

// LiveOutOf reports whether def's value may be used outside loop L.
func LiveOutOf(s *ssa.SSA, def *ssa.Value, L *ir.Loop) bool {
	for _, ru := range s.ReachedUses(def) {
		if !ir.Encloses(L, ru.Ref.Stmt.Loop) {
			return true
		}
	}
	return false
}
