package dataflow

import (
	"testing"

	"phpf/internal/ast"
	"phpf/internal/ir"
	"phpf/internal/parser"
	"phpf/internal/ssa"
)

type env struct {
	p  *ir.Program
	g  *ir.CFG
	s  *ssa.SSA
	cp *ConstProp
}

func mkEnv(t *testing.T, src string) *env {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatalf("ir: %v", err)
	}
	g, err := ir.BuildCFG(p)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	s := ssa.Build(p, g)
	return &env{p: p, g: g, s: s, cp: PropagateConstants(s)}
}

func assign(p *ir.Program, name string, idx int) *ir.Stmt {
	n := 0
	for _, st := range p.Stmts {
		if st.Kind == ir.SAssign && st.Lhs.Var.Name == name {
			if n == idx {
				return st
			}
			n++
		}
	}
	return nil
}

// --- constant propagation --------------------------------------------------

func TestConstPropStraightLine(t *testing.T) {
	e := mkEnv(t, `
program t
integer a, b, c
a = 3
b = a * 4
c = b - 2
end
`)
	d := e.s.DefOf[assign(e.p, "c", 0)]
	c, ok := e.cp.ValueConst(d)
	if !ok || !c.IsInt || c.I != 10 {
		t.Errorf("c = %+v ok=%v, want 10", c, ok)
	}
}

func TestConstPropPhiAgreement(t *testing.T) {
	e := mkEnv(t, `
program t
real x, c, y
if (c > 0.0) then
  x = 2.0
else
  x = 2.0
end if
y = x + 1.0
end
`)
	d := e.s.DefOf[assign(e.p, "y", 0)]
	c, ok := e.cp.ValueConst(d)
	if !ok || c.Float() != 3.0 {
		t.Errorf("y = %+v ok=%v, want 3.0", c, ok)
	}
}

func TestConstPropPhiDisagreement(t *testing.T) {
	e := mkEnv(t, `
program t
real x, c, y
if (c > 0.0) then
  x = 2.0
else
  x = 3.0
end if
y = x
end
`)
	d := e.s.DefOf[assign(e.p, "y", 0)]
	if _, ok := e.cp.ValueConst(d); ok {
		t.Error("y should not be constant")
	}
}

func TestConstPropLoopCarriedNotConst(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 4
real a(n)
integer m, i
m = 2
do i = 1, n
  m = m + 1
  a(m) = 0.0
end do
end
`)
	d := e.s.DefOf[assign(e.p, "m", 1)]
	if _, ok := e.cp.ValueConst(d); ok {
		t.Error("loop-carried m should not be constant")
	}
	// The outer m=2 is constant.
	d0 := e.s.DefOf[assign(e.p, "m", 0)]
	c, ok := e.cp.ValueConst(d0)
	if !ok || c.I != 2 {
		t.Errorf("m0 = %+v", c)
	}
}

func TestConstPropIntrinsics(t *testing.T) {
	e := mkEnv(t, `
program t
real x, y
integer k
x = abs(-3.0)
y = max(x, 5.0)
k = mod(7, 4)
end
`)
	if c, ok := e.cp.ValueConst(e.s.DefOf[assign(e.p, "y", 0)]); !ok || c.Float() != 5.0 {
		t.Errorf("y = %+v ok=%v", c, ok)
	}
	if c, ok := e.cp.ValueConst(e.s.DefOf[assign(e.p, "k", 0)]); !ok || c.I != 3 {
		t.Errorf("k = %+v ok=%v", c, ok)
	}
}

// --- induction variables ----------------------------------------------------

func TestInductionFigure1(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 10
real d(n)
integer i, m
m = 2
do i = 2, n-1
  m = m + 1
  d(m) = 1.0
end do
end
`)
	ivs := FindInductionVars(e.p, e.s, e.cp)
	if len(ivs) != 1 {
		t.Fatalf("found %d induction vars, want 1", len(ivs))
	}
	iv := ivs[0]
	if iv.Var.Name != "m" || iv.Init != 2 || iv.Incr != 1 {
		t.Errorf("iv = %+v", iv)
	}
	// Closed form: 2 + ((i-2)+1)*1 simplifies to i + 1.
	if got := ast.ExprString(iv.ClosedForm); got != "(i + 1)" {
		t.Errorf("closed form = %s, want (i + 1)", got)
	}
}

func TestInductionRewriteMakesSubscriptAffine(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 10
real d(n)
integer i, m
m = 2
do i = 2, n-1
  m = m + 1
  d(m) = 1.0
end do
end
`)
	ivs := FindInductionVars(e.p, e.s, e.cp)
	nrw := ApplyInductionRewrites(e.p, e.s, ivs)
	if nrw != 1 {
		t.Errorf("rewrote %d uses, want 1", nrw)
	}
	dm := assign(e.p, "d", 0)
	sub := dm.Lhs.Subs[0]
	if !sub.OK {
		t.Fatalf("d(m) subscript not affine after rewrite: %s", sub)
	}
	if sub.Const != 1 || len(sub.Terms) != 1 || sub.Terms[0].Coef != 1 {
		t.Errorf("subscript = %s, want i+1", sub)
	}
	// The m use in the subscript is gone from the statement's uses.
	for _, u := range dm.Uses {
		if u.Var.Name == "m" {
			t.Error("m use still tracked after rewrite")
		}
	}
}

func TestInductionNotRecognizedUnderIf(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 10
real d(n), c(n)
integer i, m
m = 0
do i = 1, n
  if (c(i) > 0.0) then
    m = m + 1
  end if
  d(i) = 1.0
end do
end
`)
	ivs := FindInductionVars(e.p, e.s, e.cp)
	if len(ivs) != 0 {
		t.Errorf("conditional increment recognized as induction: %+v", ivs)
	}
}

func TestInductionNonConstInit(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 10
real d(n), c(n)
integer i, m
m = 0
do i = 1, n
  m = m + 1
end do
do i = 1, n
  m = m + 1
  d(i) = c(i)
end do
end
`)
	// The second loop's m starts from the first loop's result: the first
	// loop's increment is a valid IV (init 0); the second's init is the
	// first loop's final value, which our constprop does not track, so it
	// is rejected.
	ivs := FindInductionVars(e.p, e.s, e.cp)
	if len(ivs) != 1 {
		t.Fatalf("got %d IVs, want 1 (first loop only): %+v", len(ivs), ivs)
	}
	if ivs[0].Stmt != assign(e.p, "m", 1) {
		t.Error("wrong IV statement")
	}
}

func TestInductionDecrement(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 10
real d(n)
integer i, m
m = 11
do i = 1, n
  m = m - 1
  d(m) = 0.0
end do
end
`)
	ivs := FindInductionVars(e.p, e.s, e.cp)
	if len(ivs) != 1 || ivs[0].Incr != -1 || ivs[0].Init != 11 {
		t.Fatalf("ivs = %+v", ivs)
	}
	ApplyInductionRewrites(e.p, e.s, ivs)
	sub := assign(e.p, "d", 0).Lhs.Subs[0]
	// 11 + (i-1+1)*(-1) = 11 - i.
	if !sub.OK || sub.Const != 11 || sub.Terms[0].Coef != -1 {
		t.Errorf("subscript = %s, want 11-i", sub)
	}
}

// --- reductions --------------------------------------------------------------

func TestReductionSum(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 8
real a(n,n), b(n)
real s
integer i, j
do i = 1, n
  s = 0.0
  do j = 1, n
    s = s + a(i,j)
  end do
  b(i) = s
end do
end
`)
	reds := FindReductions(e.p, e.s)
	if len(reds) != 1 {
		t.Fatalf("found %d reductions, want 1", len(reds))
	}
	r := reds[0]
	if r.Var.Name != "s" || r.Op != RedSum {
		t.Errorf("reduction = %+v", r)
	}
	if r.Loop.Index.Name != "j" {
		t.Errorf("carrier loop = %s, want j", r.Loop.Index.Name)
	}
	if r.DataRef == nil || r.DataRef.Var.Name != "a" {
		t.Errorf("data ref = %v", r.DataRef)
	}
}

func TestReductionMaxIntrinsic(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 8
real a(n)
real t0
integer i
t0 = 0.0
do i = 1, n
  t0 = max(t0, abs(a(i)))
end do
a(1) = t0
end
`)
	reds := FindReductions(e.p, e.s)
	if len(reds) != 1 || reds[0].Op != RedMax {
		t.Fatalf("reds = %+v", reds)
	}
}

func TestReductionConditionalMaxloc(t *testing.T) {
	// The DGEFA pivot-search pattern.
	e := mkEnv(t, `
program t
parameter n = 8
real a(n,n)
real t0
integer i, k, l
do k = 1, n
  t0 = abs(a(k,k))
  l = k
  do i = k+1, n
    if (abs(a(i,k)) > t0) then
      t0 = abs(a(i,k))
      l = i
    end if
  end do
  a(l,k) = t0
end do
end
`)
	reds := FindReductions(e.p, e.s)
	if len(reds) != 2 {
		t.Fatalf("found %d reductions, want 2 (t0 max + l maxloc): %+v", len(reds), reds)
	}
	var maxRed, locRed *Reduction
	for _, r := range reds {
		switch r.Var.Name {
		case "t0":
			maxRed = r
		case "l":
			locRed = r
		}
	}
	if maxRed == nil || maxRed.Op != RedMax {
		t.Fatalf("t0 reduction = %+v", maxRed)
	}
	if locRed == nil || locRed.Op != RedMaxLoc || locRed.Companion != maxRed {
		t.Fatalf("l reduction = %+v", locRed)
	}
	if maxRed.Loop.Index.Name != "i" {
		t.Errorf("carrier = %s, want i", maxRed.Loop.Index.Name)
	}
	if maxRed.DataRef == nil || maxRed.DataRef.Var.Name != "a" {
		t.Errorf("data ref = %v", maxRed.DataRef)
	}
}

func TestReductionNotWhenUsedInsideLoop(t *testing.T) {
	// s is read by another statement inside the loop: the running value is
	// consumed per-iteration, so it is not a pure reduction. We still
	// recognize the update shape, but the crucial property (only
	// loop-carried through itself) holds; uses of the running value inside
	// the loop make parallel reduction invalid.
	e := mkEnv(t, `
program t
parameter n = 8
real a(n), b(n)
real s
integer i
s = 0.0
do i = 1, n
  s = s + a(i)
  b(i) = s
end do
end
`)
	reds := FindReductions(e.p, e.s)
	// The running prefix-sum is recognized by shape; callers must check
	// for other uses. Document the current contract: it IS found here.
	if len(reds) != 1 {
		t.Fatalf("reds = %+v", reds)
	}
}

// --- privatizability ----------------------------------------------------------

func TestPrivatizableSimple(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 8
real b(n), d(n)
real x
integer i
do i = 1, n
  x = b(i)
  d(i) = x
end do
end
`)
	d := e.s.DefOf[assign(e.p, "x", 0)]
	loop := e.p.Loops[0]
	if !Privatizable(e.s, d, loop) {
		t.Error("x should be privatizable wrt the i-loop")
	}
	lvl, l := PrivatizationLevel(e.s, d)
	if lvl != 1 || l != loop {
		t.Errorf("privatization level = %d", lvl)
	}
}

func TestNotPrivatizableLiveOut(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 8
real b(n), d(n)
real x
integer i
do i = 1, n
  x = b(i)
end do
d(1) = x
end
`)
	d := e.s.DefOf[assign(e.p, "x", 0)]
	loop := e.p.Loops[0]
	if Privatizable(e.s, d, loop) {
		t.Error("x is live-out; must not be privatizable")
	}
	if !LiveOutOf(e.s, d, loop) {
		t.Error("LiveOutOf should report true")
	}
}

func TestNotPrivatizableLoopCarried(t *testing.T) {
	e := mkEnv(t, `
program t
parameter n = 8
real b(n), d(n)
real x
integer i
x = 0.0
do i = 1, n
  d(i) = x
  x = b(i)
end do
end
`)
	d := e.s.DefOf[assign(e.p, "x", 1)]
	loop := e.p.Loops[0]
	if Privatizable(e.s, d, loop) {
		t.Error("x carries across iterations; must not be privatizable")
	}
}

func TestPrivatizableAtInnerNotOuter(t *testing.T) {
	// x is consumed within each j-iteration; it is privatizable wrt both
	// loops, and the outermost level is reported.
	e := mkEnv(t, `
program t
parameter n = 8
real b(n,n), d(n,n)
real x
integer i, j
do i = 1, n
  do j = 1, n
    x = b(i,j)
    d(i,j) = x
  end do
end do
end
`)
	d := e.s.DefOf[assign(e.p, "x", 0)]
	lvl, l := PrivatizationLevel(e.s, d)
	if lvl != 1 || l.Index.Name != "i" {
		t.Errorf("level = %d loop = %v, want outermost (1, i)", lvl, l)
	}
	if !Privatizable(e.s, d, e.p.Loops[1]) {
		t.Error("also privatizable wrt the j-loop")
	}
}

func TestPrivatizableUsedAcrossInnerLoopOnly(t *testing.T) {
	// x set before the j-loop, used inside it: privatizable wrt the i-loop
	// but NOT wrt the j-loop (defined outside it).
	e := mkEnv(t, `
program t
parameter n = 8
real b(n), d(n,n)
real x
integer i, j
do i = 1, n
  x = b(i)
  do j = 1, n
    d(i,j) = x
  end do
end do
end
`)
	d := e.s.DefOf[assign(e.p, "x", 0)]
	iL, jL := e.p.Loops[0], e.p.Loops[1]
	if !Privatizable(e.s, d, iL) {
		t.Error("x should be privatizable wrt i-loop")
	}
	if Privatizable(e.s, d, jL) {
		t.Error("x defined outside j-loop; not privatizable wrt it")
	}
	lvl, _ := PrivatizationLevel(e.s, d)
	if lvl != 1 {
		t.Errorf("level = %d, want 1", lvl)
	}
}
