package dataflow

import (
	"testing"

	"phpf/internal/ir"
	"phpf/internal/parser"
)

func findAuto(t *testing.T, src string) (*ir.Program, []AutoPrivatizable) {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatalf("ir: %v", err)
	}
	return p, FindAutoPrivatizableArrays(p)
}

func hasAuto(list []AutoPrivatizable, varName, loopIdx string) bool {
	for _, a := range list {
		if a.Var.Name == varName && a.Loop.Index.Name == loopIdx {
			return true
		}
	}
	return false
}

// TestAutoPrivFullyWrittenThenRead: the classic pattern — a work array
// fully written then fully read in each iteration.
func TestAutoPrivFullyWrittenThenRead(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n)
integer i, k
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`
	_, auto := findAuto(t, src)
	if !hasAuto(auto, "w", "k") {
		t.Errorf("w should be auto-privatizable wrt the k-loop; got %v", auto)
	}
}

// TestAutoPrivRejectsLiveOut: the work array read after the loop is not
// privatizable.
func TestAutoPrivRejectsLiveOut(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n)
integer i, k
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
end do
do i = 1, n
  a(i,1) = w(i)
end do
end
`
	_, auto := findAuto(t, src)
	if hasAuto(auto, "w", "k") {
		t.Error("w is live-out and must not be privatizable")
	}
}

// TestAutoPrivRejectsExposedRead: reading before writing in the iteration
// (upward-exposed) blocks privatization.
func TestAutoPrivRejectsExposedRead(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n)
integer i, k
do k = 1, n
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
end do
end
`
	_, auto := findAuto(t, src)
	if hasAuto(auto, "w", "k") {
		t.Error("w has an upward-exposed read and must not be privatizable")
	}
}

// TestAutoPrivRejectsConditionalWrite: a write under an IF does not cover.
func TestAutoPrivRejectsConditionalWrite(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n)
integer i, k
do k = 1, n
  do i = 1, n
    if (a(i,k) > 0.0) then
      w(i) = a(i,k)
    end if
  end do
  do i = 1, n
    a(i,k) = w(i)
  end do
end do
end
`
	_, auto := findAuto(t, src)
	if hasAuto(auto, "w", "k") {
		t.Error("conditionally-written w must not be privatizable")
	}
}

// TestAutoPrivRecurrenceSameNest: a trailing read c(i-1) after writing c(i)
// in the same nest is covered when the read range trails the written range.
func TestAutoPrivRecurrenceSameNest(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), c(n)
integer i, k
do k = 1, n
  do i = 2, n
    c(i) = a(i,k)
    a(i,k) = c(i) + c(i-1)
  end do
end do
end
`
	// Read c(i-1) at iteration i reads the position written at iteration
	// i-1 — but iteration i=2 reads c(1), which is never written: exposed.
	_, auto := findAuto(t, src)
	if hasAuto(auto, "c", "k") {
		t.Error("c(1) is exposed at i=2; c must not be privatizable")
	}
}

// TestAutoPrivRecurrenceCovered: when the read range provably trails the
// writes, the recurrence is covered.
func TestAutoPrivRecurrenceCovered(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), c(n)
integer i, k
do k = 1, n
  do i = 1, n
    c(i) = a(i,k)
  end do
  do i = 2, n
    a(i,k) = c(i) + c(i-1)
  end do
end do
end
`
	// Writes cover [1,n]; reads cover [2,n] and [1,n-1]: contained.
	_, auto := findAuto(t, src)
	if !hasAuto(auto, "c", "k") {
		t.Errorf("c should be auto-privatizable; got %v", auto)
	}
}

// TestAutoPrivRejectsPartialWriteRange: writes [2..n] do not cover reads
// [1..n].
func TestAutoPrivRejectsPartialWriteRange(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n)
integer i, k
do k = 1, n
  do i = 2, n
    w(i) = a(i,k)
  end do
  do i = 1, n
    a(i,k) = w(i)
  end do
end do
end
`
	_, auto := findAuto(t, src)
	if hasAuto(auto, "w", "k") {
		t.Error("w(1) is never written; must not be privatizable")
	}
}

// TestAutoPrivInvariantDim: invariant subscripts must match exactly.
func TestAutoPrivInvariantDim(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n,n), w(n,2)
integer i, k
do k = 1, n
  do i = 1, n
    w(i,1) = a(i,k)
  end do
  do i = 1, n
    a(i,k) = w(i,1) * 2.0
  end do
end do
end
`
	_, auto := findAuto(t, src)
	if !hasAuto(auto, "w", "k") {
		t.Errorf("w with matching invariant dim should privatize; got %v", auto)
	}

	// Mismatched plane: read w(i,2) never written.
	src2 := `
program t
parameter n = 16
real a(n,n), w(n,2)
integer i, k
do k = 1, n
  do i = 1, n
    w(i,1) = a(i,k)
  end do
  do i = 1, n
    a(i,k) = w(i,2) * 2.0
  end do
end do
end
`
	_, auto2 := findAuto(t, src2)
	if hasAuto(auto2, "w", "k") {
		t.Error("w(i,2) is never written; must not be privatizable")
	}
}
