package dataflow

import (
	"fmt"

	"phpf/internal/ast"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// This file implements the privatization classification analysis behind the
// autopriv pipeline pass: for every (loop, variable-written-in-loop) pair it
// decides private / lastprivate / serialized, recording the blocking
// reference when privatization is declined (the Tu & Padua-style analysis
// the paper names as future work, with intrepydd's serialize-with-reason
// discipline).
//
// Scalars are classified on SSA def-use facts: a scalar is private with
// respect to L when every use inside L is reached only by definitions
// inside L (def-before-use on every iteration path) and no def→use pair
// crosses L's back edge (no loop-carried flow). A scalar whose only failure
// is being live after the loop is lastprivate when its final-iteration
// value is well-defined (a single unconditional definition that is the
// unique reaching definition of its uses); the mapping layer then emits a
// copy-out at loop exit.
//
// Arrays are classified with the per-iteration region machinery below
// (written regions covering read regions dimension-wise), with liveness
// decided on the CFG: a read outside L blocks privatization only when its
// block is reachable from L's exit — a read that can only execute before
// the loop consumes the pre-loop value and is harmless.

// PrivDecision is the per-(loop, variable) classification.
type PrivDecision int

const (
	// PrivSerialized: not privatizable; the value stays shared and its
	// cross-iteration (or cross-loop) flow serializes.
	PrivSerialized PrivDecision = iota
	// PrivPrivate: provably privatizable with respect to the loop.
	PrivPrivate
	// PrivLastPrivate: privatizable within the loop, with the final
	// iteration's value live after it (scalars only; requires a copy-out).
	PrivLastPrivate
)

func (d PrivDecision) String() string {
	switch d {
	case PrivPrivate:
		return "private"
	case PrivLastPrivate:
		return "lastprivate"
	case PrivSerialized:
		return "serialized"
	}
	return "?"
}

// PrivClass is the classification of one variable with respect to one loop.
type PrivClass struct {
	Var      *ir.Var
	Loop     *ir.Loop
	Decision PrivDecision
	// Directive records that an explicit NEW clause on Loop already asserts
	// the privatization (the analysis result is then a cross-check).
	Directive bool
	// Inserted records that the autopriv pass materialized the decision as
	// an inferred annotation on Loop.
	Inserted bool
	// Reason explains the decision in one clause; for PrivSerialized it
	// names the blocking reference with its position.
	Reason string
	// Blocking is the reference that defeats privatization (PrivSerialized
	// only; may be nil when the failure is structural).
	Blocking *ir.Ref
}

func (c *PrivClass) String() string {
	s := fmt.Sprintf("%s wrt %s-loop: %s", c.Var.Name, c.Loop.Index.Name, c.Decision)
	if c.Reason != "" {
		s += " (" + c.Reason + ")"
	}
	return s
}

// PrivSummary is the full classification of a program: one PrivClass per
// (loop, candidate variable), in deterministic order (loop preorder, then
// variable declaration order within a loop).
type PrivSummary struct {
	Classes []PrivClass
}

// Of returns the classification of v with respect to l (nil when v is not a
// candidate for l).
func (s *PrivSummary) Of(v *ir.Var, l *ir.Loop) *PrivClass {
	for i := range s.Classes {
		if s.Classes[i].Var == v && s.Classes[i].Loop == l {
			return &s.Classes[i]
		}
	}
	return nil
}

// ForLoop returns the classifications attached to one loop.
func (s *PrivSummary) ForLoop(l *ir.Loop) []*PrivClass {
	var out []*PrivClass
	for i := range s.Classes {
		if s.Classes[i].Loop == l {
			out = append(out, &s.Classes[i])
		}
	}
	return out
}

// ClassifyPrivatization classifies every candidate (loop, variable) pair of
// the program. Candidates are variables written inside the loop, excluding
// loop indices and recognized reduction accumulators (handled by the §2.3
// reduction mapping); array candidates must additionally be read inside the
// loop — privatizing a write-only array eliminates no communication under
// owner-computes, so it is neither privatized nor reported as serialized.
// cp may be nil; when present, constant-propagation facts sharpen the
// lastprivate test by proving loops execute at least one iteration.
func ClassifyPrivatization(p *ir.Program, g *ir.CFG, s *ssa.SSA, cp *ConstProp) *PrivSummary {
	sum := &PrivSummary{}

	// Reduction accumulators are outside this analysis.
	redVar := map[*ir.Var]bool{}
	if s != nil {
		for _, red := range FindReductions(p, s) {
			redVar[red.Var] = true
		}
	}

	// stmt → CFG block, for the reachability liveness test.
	blockOf := map[*ir.Stmt]*ir.Block{}
	if g != nil {
		for _, b := range g.Blocks {
			for _, st := range b.Stmts {
				blockOf[st] = b
			}
		}
	}

	for _, L := range p.Loops {
		for _, v := range candidateVars(p, L, redVar) {
			var c PrivClass
			if v.IsArray() {
				c = classifyArray(p, g, blockOf, v, L)
			} else {
				if s == nil {
					continue
				}
				c = classifyScalar(p, g, s, cp, v, L)
			}
			for _, name := range L.New {
				if name == v.Name {
					c.Directive = true
				}
			}
			sum.Classes = append(sum.Classes, c)
		}
	}
	return sum
}

// candidateVars returns the classification candidates for L in declaration
// order: non-index variables written inside L (arrays only when also read
// inside L).
func candidateVars(p *ir.Program, L *ir.Loop, exclude map[*ir.Var]bool) []*ir.Var {
	written := map[*ir.Var]bool{}
	for _, st := range p.Stmts {
		if st.Kind == ir.SAssign && ir.Encloses(L, st.Loop) {
			written[st.Lhs.Var] = true
		}
	}
	readIn := map[*ir.Var]bool{}
	for _, r := range p.Refs {
		if !r.IsDef && ir.Encloses(L, r.Stmt.Loop) {
			readIn[r.Var] = true
		}
	}
	var out []*ir.Var
	for _, v := range p.VarList {
		if !written[v] || v.IsLoopIndex || exclude[v] {
			continue
		}
		if v.IsArray() && !readIn[v] {
			continue
		}
		out = append(out, v)
	}
	return out
}

// refAt renders a reference with its source position for diagnostics.
func refAt(r *ir.Ref) string {
	if r == nil {
		return "?"
	}
	return fmt.Sprintf("%s at %d:%d", r, r.Stmt.Line, r.Stmt.Col)
}

// classifyScalar classifies scalar v with respect to L on SSA facts.
func classifyScalar(p *ir.Program, g *ir.CFG, s *ssa.SSA, cp *ConstProp, v *ir.Var, L *ir.Loop) PrivClass {
	c := PrivClass{Var: v, Loop: L}

	var defs []*ssa.Value
	for _, st := range p.Stmts {
		if st.Kind != ir.SAssign || st.Lhs.Var != v || !ir.Encloses(L, st.Loop) {
			continue
		}
		if d := s.DefOf[st]; d != nil {
			defs = append(defs, d)
		}
	}

	// Def-before-use on every iteration path: a read inside L reached by a
	// definition from outside the loop (or the implicit initial value) is
	// upward-exposed — a fresh private copy would not hold that value.
	for _, r := range p.Refs {
		if r.IsDef || r.Var != v || !ir.Encloses(L, r.Stmt.Loop) {
			continue
		}
		for _, d := range s.ReachingDefs(r) {
			if d.Kind != ssa.VDef || !ir.Encloses(L, d.Stmt.Loop) {
				c.Decision = PrivSerialized
				c.Blocking = r
				c.Reason = fmt.Sprintf("serialized because %s may read the value live on entry to the loop", refAt(r))
				return c
			}
		}
	}

	// No loop-carried flow: no def→use pair may cross L's back edge.
	var liveOutUse *ir.Ref
	for _, d := range defs {
		for _, ru := range s.ReachedUses(d) {
			if !ir.Encloses(L, ru.Ref.Stmt.Loop) {
				if liveOutUse == nil {
					liveOutUse = ru.Ref
				}
				continue
			}
			if ru.CrossesBackOf[L] {
				c.Decision = PrivSerialized
				c.Blocking = ru.Ref
				c.Reason = fmt.Sprintf("serialized because %s reads the value defined in an earlier iteration", refAt(ru.Ref))
				return c
			}
		}
	}

	if liveOutUse == nil {
		c.Decision = PrivPrivate
		c.Reason = "every use is reached only by same-iteration definitions"
		return c
	}

	// Live after the loop: lastprivate when the final-iteration value is
	// well-defined — a single unconditional definition that is the unique
	// reaching definition of everything it reaches. A possibly-zero-trip
	// loop leaves the pre-loop value reaching the post-loop use, which
	// IsUniqueDef rejects; constant bounds proving at least one trip make
	// that pre-loop value dead, so the weaker finalValueGuaranteed test
	// accepts it.
	if len(defs) == 1 && len(defs[0].Stmt.EnclosingIfs) == 0 &&
		(s.IsUniqueDef(defs[0]) || finalValueGuaranteed(g, s, cp, defs[0], L)) {
		c.Decision = PrivLastPrivate
		c.Reason = fmt.Sprintf("final iteration's value is read by %s; copy-out at loop exit", refAt(liveOutUse))
		return c
	}
	c.Decision = PrivSerialized
	c.Blocking = liveOutUse
	c.Reason = fmt.Sprintf("serialized because %s reads the value after the loop and the final-iteration copy-out is unprovable (conditional or multiple definitions)", refAt(liveOutUse))
	return c
}

// finalValueGuaranteed reports whether def — the sole in-loop definition of
// its variable — is certain to have executed by the time L exits, so the
// value the loop leaves behind is def's final-iteration value and any
// pre-loop definitions still reaching the post-loop uses are dead. This is
// the zero-trip refinement of IsUniqueDef: it requires
//
//   - a provably positive trip count for every loop from def's own loop up
//     to L (constant bounds evaluated with constant propagation),
//   - def's block to dominate every back edge of L (def runs on every
//     complete iteration, even in the presence of GOTOs),
//   - L to exit only through its header (no jump can leave mid-iteration),
//   - every other definition reaching def's reached uses to come from
//     outside L (those are exactly the dead pre-loop values).
func finalValueGuaranteed(g *ir.CFG, s *ssa.SSA, cp *ConstProp, def *ssa.Value, L *ir.Loop) bool {
	if g == nil || cp == nil || def.Stmt == nil {
		return false
	}
	for l := def.Stmt.Loop; l != nil; l = l.Parent {
		if !tripAtLeastOnce(cp, l) {
			return false
		}
		if l == L {
			break
		}
	}
	header, exit := g.HeaderOf[L], g.ExitOf[L]
	if header == nil || exit == nil {
		return false
	}
	for _, pr := range exit.Preds {
		if pr != header && pr.Loop != nil && ir.Encloses(L, pr.Loop) {
			return false // irregular exit from inside the loop body
		}
	}
	latches := 0
	for _, pr := range header.Preds {
		if pr.Loop == nil || !ir.Encloses(L, pr.Loop) {
			continue // preheader edge
		}
		latches++
		if !s.Dom.Dominates(def.Block, pr) {
			return false
		}
	}
	if latches == 0 {
		return false
	}
	for _, ru := range s.ReachedUses(def) {
		for _, d := range s.ReachingDefs(ru.Ref) {
			if d != def && d.Kind == ssa.VDef && ir.Encloses(L, d.Stmt.Loop) {
				return false
			}
		}
	}
	return true
}

// tripAtLeastOnce reports whether l provably executes its body at least once:
// its bounds and step evaluate to integer constants and span a non-empty
// range. Parameter-only bounds fold directly (BoundsStmt is nil then);
// bounds referencing tracked scalars are evaluated with the constants known
// at the loop's bounds pseudo-statement.
func tripAtLeastOnce(cp *ConstProp, l *ir.Loop) bool {
	if cp == nil {
		return false
	}
	lo, okLo := cp.evalExpr(l.Lo, l.BoundsStmt)
	hi, okHi := cp.evalExpr(l.Hi, l.BoundsStmt)
	if !okLo || !okHi || !lo.IsInt || !hi.IsInt {
		return false
	}
	step := int64(1)
	if l.Step != nil {
		sc, ok := cp.evalExpr(l.Step, l.BoundsStmt)
		if !ok || !sc.IsInt || sc.I == 0 {
			return false
		}
		step = sc.I
	}
	if step > 0 {
		return lo.I <= hi.I
	}
	return lo.I >= hi.I
}

// classifyArray classifies array v with respect to L: every read inside L
// must be covered by writes earlier in the same iteration, and no read
// reachable after the loop may consume values written in it.
func classifyArray(p *ir.Program, g *ir.CFG, blockOf map[*ir.Stmt]*ir.Block, v *ir.Var, L *ir.Loop) PrivClass {
	c := PrivClass{Var: v, Loop: L}

	var writes []*ir.Ref
	for _, st := range p.Stmts {
		if st.Kind != ir.SAssign || st.Lhs.Var != v {
			continue
		}
		if !ir.Encloses(L, st.Loop) {
			// A write outside L is harmless for privatization wrt L.
			continue
		}
		writes = append(writes, st.Lhs)
	}

	for _, r := range p.Refs {
		if r.IsDef || r.Var != v {
			continue
		}
		if !ir.Encloses(L, r.Stmt.Loop) {
			if readsAfterLoop(g, blockOf, r, L) {
				c.Decision = PrivSerialized
				c.Blocking = r
				c.Reason = fmt.Sprintf("serialized because %s reads the array after the loop", refAt(r))
				return c
			}
			continue // only reachable before the loop: pre-loop value, harmless
		}
		if !readCovered(r, writes, L) {
			c.Decision = PrivSerialized
			c.Blocking = r
			c.Reason = fmt.Sprintf("serialized because %s is not covered by writes earlier in the iteration", refAt(r))
			return c
		}
	}
	c.Decision = PrivPrivate
	c.Reason = "every read is covered by same-iteration writes and no value lives past the loop"
	return c
}

// readsAfterLoop reports whether the read (outside L) can execute after L
// completes: its block is reachable from L's exit block on the CFG. Without
// a CFG the answer is conservatively true.
func readsAfterLoop(g *ir.CFG, blockOf map[*ir.Stmt]*ir.Block, r *ir.Ref, L *ir.Loop) bool {
	if g == nil {
		return true
	}
	exit := g.ExitOf[L]
	target := blockOf[r.Stmt]
	if exit == nil || target == nil {
		return true
	}
	seen := map[*ir.Block]bool{}
	work := []*ir.Block{exit}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == target {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		work = append(work, b.Succs...)
	}
	return false
}

// AutoPrivatizable describes an automatically discovered privatizable array
// (the paper's stated future work: integrating the mapping techniques with
// automatic array privatization in the style of Tu & Padua [18]).
type AutoPrivatizable struct {
	Var  *ir.Var
	Loop *ir.Loop
}

// FindAutoPrivatizableArrays discovers arrays that are privatizable with
// respect to a loop without a NEW directive. It is the array projection of
// ClassifyPrivatization, kept for callers that have only an IR program (the
// CFG and SSA facts are built internally).
func FindAutoPrivatizableArrays(p *ir.Program) []AutoPrivatizable {
	var g *ir.CFG
	var s *ssa.SSA
	var cp *ConstProp
	if cfg, err := ir.BuildCFG(p); err == nil {
		g = cfg
		s = ssa.Build(p, g)
		cp = PropagateConstants(s)
	}
	var out []AutoPrivatizable
	for _, c := range ClassifyPrivatization(p, g, s, cp).Classes {
		if c.Var.IsArray() && c.Decision == PrivPrivate {
			out = append(out, AutoPrivatizable{Var: c.Var, Loop: c.Loop})
		}
	}
	return out
}

// readCovered reports whether some write covers the read within one
// iteration of L.
func readCovered(read *ir.Ref, writes []*ir.Ref, L *ir.Loop) bool {
	for _, w := range writes {
		// The write must be certain (not under a condition) and textually
		// precede the read's statement (a same-statement rhs read happens
		// before the write and stays exposed).
		if len(w.Stmt.EnclosingIfs) > 0 {
			continue
		}
		if w.Stmt.ID >= read.Stmt.ID {
			continue
		}
		if coversRegions(w, read, L) {
			return true
		}
	}
	return false
}

// coversRegions checks dimension-wise that the write's per-iteration region
// includes the read's.
func coversRegions(w, r *ir.Ref, L *ir.Loop) bool {
	sameStmtNest := w.Stmt.Loop == r.Stmt.Loop
	for dim := 0; dim < w.Var.Rank(); dim++ {
		ws, rs := w.Subs[dim], r.Subs[dim]
		if !ws.OK || !rs.OK {
			return false
		}
		wLoop, wCoef := innerTerm(ws, L)
		rLoop, rCoef := innerTerm(rs, L)
		switch {
		case wLoop == nil && rLoop == nil:
			// Both invariant within L: positions must be provably equal.
			if d, ok := affineConstDiff(ws, rs, L); !ok || d != 0 {
				return false
			}
		case wLoop != nil && rLoop == nil:
			// Write scans a range; read at a fixed position — covered if
			// the position lies within [lo+c, hi+c]. Requires a bounds
			// proof; keep conservative and reject.
			return false
		case wLoop == nil && rLoop != nil:
			return false
		default:
			if wCoef != 1 || rCoef != 1 {
				return false
			}
			// Constant offset between the scans.
			delta, ok := scanDelta(ws, wLoop, rs, rLoop, L)
			if !ok {
				return false
			}
			switch {
			case wLoop != rLoop:
				// The write nest completes before the read nest runs (the
				// write statement precedes the read): plain region
				// containment, shifted by delta.
				if !boundsContained(wLoop, rLoop, delta, L) {
					return false
				}
			case delta == 0:
				// Same scanning loop, same position: the write at this
				// very iteration covers the read only if it precedes it
				// textually (checked by the caller) — containment is
				// trivial.
			case delta < 0 && sameStmtNest && w.Stmt.ID < r.Stmt.ID:
				// Recurrence read of earlier-written positions in the same
				// nest (c(i,j-1) after writing c(i,j)): the first
				// iterations read positions below the written range unless
				// the read's low bound trails the write's by |delta|.
				if !boundsContained(wLoop, rLoop, delta, L) {
					return false
				}
			default:
				return false
			}
		}
	}
	return true
}

// innerTerm returns the single loop within L whose index appears in the
// subscript (nil when invariant within L). Multiple within-L terms are
// reported as coefficient 0 (unsupported).
func innerTerm(a ir.Affine, L *ir.Loop) (*ir.Loop, int64) {
	var found *ir.Loop
	var coef int64
	for _, t := range a.Terms {
		within := false
		for cur := t.Loop; cur != nil; cur = cur.Parent {
			if cur == L {
				within = true
				break
			}
		}
		if !within {
			continue
		}
		if found != nil {
			return found, 0
		}
		found, coef = t.Loop, t.Coef
	}
	return found, coef
}

// affineConstDiff computes r-w when the forms differ only by a constant
// (terms matched by index variable; all terms must be invariant within L,
// which the callers guarantee).
func affineConstDiff(w, r ir.Affine, L *ir.Loop) (int64, bool) {
	diff := map[*ir.Var]int64{}
	for _, t := range w.Terms {
		diff[t.Loop.Index] -= t.Coef
	}
	for _, t := range r.Terms {
		diff[t.Loop.Index] += t.Coef
	}
	for _, d := range diff {
		if d != 0 {
			return 0, false
		}
	}
	return r.Const - w.Const, true
}

// scanDelta computes the constant offset between the read scan and the
// write scan: (r at iteration x of rLoop) - (w at iteration x of wLoop),
// requiring the remaining (outer) terms to cancel.
func scanDelta(ws ir.Affine, wLoop *ir.Loop, rs ir.Affine, rLoop *ir.Loop, L *ir.Loop) (int64, bool) {
	diff := map[*ir.Var]int64{}
	for _, t := range ws.Terms {
		if t.Loop == wLoop {
			continue
		}
		diff[t.Loop.Index] -= t.Coef
	}
	for _, t := range rs.Terms {
		if t.Loop == rLoop {
			continue
		}
		diff[t.Loop.Index] += t.Coef
	}
	for _, d := range diff {
		if d != 0 {
			return 0, false
		}
	}
	return rs.Const - ws.Const, true
}

// boundsContained proves that the read traversal's positions (shifted by
// delta) stay within the write traversal's: wLo <= rLo+delta and
// rHi+delta <= wHi, with bounds affine over indices of loops enclosing L.
func boundsContained(wLoop, rLoop *ir.Loop, delta int64, L *ir.Loop) bool {
	nonNeg := func(a, b ast.Expr, off int64) bool {
		// Prove b + off - a >= 0.
		fa := ir.AnalyzeAffine(a, wLoop.Parent, nil)
		fb := ir.AnalyzeAffine(b, rLoop.Parent, nil)
		if !fa.OK || !fb.OK {
			return false
		}
		d, ok := affineConstDiff(fa, fb, L)
		if !ok {
			return false
		}
		return d+off >= 0
	}
	// wLo <= rLo + delta  ⇔  (rLo - wLo) + delta >= 0
	if !nonNeg(wLoop.Lo, rLoop.Lo, delta) {
		return false
	}
	// rHi + delta <= wHi  ⇔  (wHi - rHi) - delta >= 0
	fa := ir.AnalyzeAffine(rLoop.Hi, rLoop.Parent, nil)
	fb := ir.AnalyzeAffine(wLoop.Hi, wLoop.Parent, nil)
	if !fa.OK || !fb.OK {
		return false
	}
	d, ok := affineConstDiff(fa, fb, L)
	if !ok {
		return false
	}
	return d-delta >= 0
}
