package dataflow

import (
	"phpf/internal/ast"
	"phpf/internal/ir"
)

// AutoPrivatizable describes an automatically discovered privatizable array
// (the paper's stated future work: integrating the mapping techniques with
// automatic array privatization in the style of Tu & Padua [18]).
type AutoPrivatizable struct {
	Var  *ir.Var
	Loop *ir.Loop
}

// FindAutoPrivatizableArrays discovers arrays that are privatizable with
// respect to a loop without a NEW directive: within each iteration of L,
// every read of the array is covered by writes earlier in the same
// iteration, and the values do not live past the loop.
//
// The implementation is a simplified array-section analysis:
//
//   - For each dimension, a written region is derived from the defining
//     nest's bounds when the subscript is the nest's index (+/- a constant)
//     or loop-invariant; regions are compared symbolically (bounds affine in
//     indices of loops enclosing L).
//   - A read is covered when some unguarded write that textually precedes it
//     inside the same iteration covers its region dimension-wise. Reads in
//     the same nest as the write are also covered when they trail the write
//     by a constant negative offset in the nest's traversal order (the
//     recurrence c(i, j-1) after a write to c(i, j)).
//   - Liveness is approximated textually: any read of the array outside L
//     anywhere in the program rejects privatization.
func FindAutoPrivatizableArrays(p *ir.Program) []AutoPrivatizable {
	var out []AutoPrivatizable
	for _, L := range p.Loops {
		// Candidates: arrays written inside L.
		written := map[*ir.Var]bool{}
		for _, st := range p.Stmts {
			if st.Kind == ir.SAssign && st.Lhs.Var.IsArray() && ir.Encloses(L, st.Loop) {
				written[st.Lhs.Var] = true
			}
		}
		for _, v := range p.VarList {
			if !written[v] {
				continue
			}
			if arrayPrivatizableWrt(p, v, L) {
				out = append(out, AutoPrivatizable{Var: v, Loop: L})
			}
		}
	}
	return out
}

func arrayPrivatizableWrt(p *ir.Program, v *ir.Var, L *ir.Loop) bool {
	var writes []*ir.Ref
	for _, st := range p.Stmts {
		if st.Kind != ir.SAssign || st.Lhs.Var != v {
			continue
		}
		if !ir.Encloses(L, st.Loop) {
			// A write outside L is harmless for privatization wrt L.
			continue
		}
		writes = append(writes, st.Lhs)
	}
	if len(writes) == 0 {
		return false
	}
	for _, r := range p.Refs {
		if r.IsDef || r.Var != v {
			continue
		}
		if !ir.Encloses(L, r.Stmt.Loop) {
			return false // value read after (or before) the loop: live-out
		}
		if !readCovered(r, writes, L) {
			return false // upward-exposed read
		}
	}
	return true
}

// readCovered reports whether some write covers the read within one
// iteration of L.
func readCovered(read *ir.Ref, writes []*ir.Ref, L *ir.Loop) bool {
	for _, w := range writes {
		// The write must be certain (not under a condition) and textually
		// precede the read's statement (a same-statement rhs read happens
		// before the write and stays exposed).
		if len(w.Stmt.EnclosingIfs) > 0 {
			continue
		}
		if w.Stmt.ID >= read.Stmt.ID {
			continue
		}
		if coversRegions(w, read, L) {
			return true
		}
	}
	return false
}

// coversRegions checks dimension-wise that the write's per-iteration region
// includes the read's.
func coversRegions(w, r *ir.Ref, L *ir.Loop) bool {
	sameStmtNest := w.Stmt.Loop == r.Stmt.Loop
	for dim := 0; dim < w.Var.Rank(); dim++ {
		ws, rs := w.Subs[dim], r.Subs[dim]
		if !ws.OK || !rs.OK {
			return false
		}
		wLoop, wCoef := innerTerm(ws, L)
		rLoop, rCoef := innerTerm(rs, L)
		switch {
		case wLoop == nil && rLoop == nil:
			// Both invariant within L: positions must be provably equal.
			if d, ok := affineConstDiff(ws, rs, L); !ok || d != 0 {
				return false
			}
		case wLoop != nil && rLoop == nil:
			// Write scans a range; read at a fixed position — covered if
			// the position lies within [lo+c, hi+c]. Requires a bounds
			// proof; keep conservative and reject.
			return false
		case wLoop == nil && rLoop != nil:
			return false
		default:
			if wCoef != 1 || rCoef != 1 {
				return false
			}
			// Constant offset between the scans.
			delta, ok := scanDelta(ws, wLoop, rs, rLoop, L)
			if !ok {
				return false
			}
			switch {
			case wLoop != rLoop:
				// The write nest completes before the read nest runs (the
				// write statement precedes the read): plain region
				// containment, shifted by delta.
				if !boundsContained(wLoop, rLoop, delta, L) {
					return false
				}
			case delta == 0:
				// Same scanning loop, same position: the write at this
				// very iteration covers the read only if it precedes it
				// textually (checked by the caller) — containment is
				// trivial.
			case delta < 0 && sameStmtNest && w.Stmt.ID < r.Stmt.ID:
				// Recurrence read of earlier-written positions in the same
				// nest (c(i,j-1) after writing c(i,j)): the first
				// iterations read positions below the written range unless
				// the read's low bound trails the write's by |delta|.
				if !boundsContained(wLoop, rLoop, delta, L) {
					return false
				}
			default:
				return false
			}
		}
	}
	return true
}

// innerTerm returns the single loop within L whose index appears in the
// subscript (nil when invariant within L). Multiple within-L terms are
// reported as coefficient 0 (unsupported).
func innerTerm(a ir.Affine, L *ir.Loop) (*ir.Loop, int64) {
	var found *ir.Loop
	var coef int64
	for _, t := range a.Terms {
		within := false
		for cur := t.Loop; cur != nil; cur = cur.Parent {
			if cur == L {
				within = true
				break
			}
		}
		if !within {
			continue
		}
		if found != nil {
			return found, 0
		}
		found, coef = t.Loop, t.Coef
	}
	return found, coef
}

// affineConstDiff computes r-w when the forms differ only by a constant
// (terms matched by index variable; all terms must be invariant within L,
// which the callers guarantee).
func affineConstDiff(w, r ir.Affine, L *ir.Loop) (int64, bool) {
	diff := map[*ir.Var]int64{}
	for _, t := range w.Terms {
		diff[t.Loop.Index] -= t.Coef
	}
	for _, t := range r.Terms {
		diff[t.Loop.Index] += t.Coef
	}
	for _, d := range diff {
		if d != 0 {
			return 0, false
		}
	}
	return r.Const - w.Const, true
}

// scanDelta computes the constant offset between the read scan and the
// write scan: (r at iteration x of rLoop) - (w at iteration x of wLoop),
// requiring the remaining (outer) terms to cancel.
func scanDelta(ws ir.Affine, wLoop *ir.Loop, rs ir.Affine, rLoop *ir.Loop, L *ir.Loop) (int64, bool) {
	diff := map[*ir.Var]int64{}
	for _, t := range ws.Terms {
		if t.Loop == wLoop {
			continue
		}
		diff[t.Loop.Index] -= t.Coef
	}
	for _, t := range rs.Terms {
		if t.Loop == rLoop {
			continue
		}
		diff[t.Loop.Index] += t.Coef
	}
	for _, d := range diff {
		if d != 0 {
			return 0, false
		}
	}
	return rs.Const - ws.Const, true
}

// boundsContained proves that the read traversal's positions (shifted by
// delta) stay within the write traversal's: wLo <= rLo+delta and
// rHi+delta <= wHi, with bounds affine over indices of loops enclosing L.
func boundsContained(wLoop, rLoop *ir.Loop, delta int64, L *ir.Loop) bool {
	nonNeg := func(a, b ast.Expr, off int64) bool {
		// Prove b + off - a >= 0.
		fa := ir.AnalyzeAffine(a, wLoop.Parent, nil)
		fb := ir.AnalyzeAffine(b, rLoop.Parent, nil)
		if !fa.OK || !fb.OK {
			return false
		}
		d, ok := affineConstDiff(fa, fb, L)
		if !ok {
			return false
		}
		return d+off >= 0
	}
	// wLo <= rLo + delta  ⇔  (rLo - wLo) + delta >= 0
	if !nonNeg(wLoop.Lo, rLoop.Lo, delta) {
		return false
	}
	// rHi + delta <= wHi  ⇔  (wHi - rHi) - delta >= 0
	fa := ir.AnalyzeAffine(rLoop.Hi, rLoop.Parent, nil)
	fb := ir.AnalyzeAffine(wLoop.Hi, wLoop.Parent, nil)
	if !fa.OK || !fb.OK {
		return false
	}
	d, ok := affineConstDiff(fa, fb, L)
	if !ok {
		return false
	}
	return d-delta >= 0
}
