// The reduceplan decision: which recognized reductions the runtime may
// execute through privatized per-processor partials merged in a
// deterministic tree at loop exit, and which must stay on the collective
// path. The classification is static (it rides the compiled program); the
// strategy actually used is a runtime knob, so one compiled program serves
// both paths and the differential oracle can compare them.
package dataflow

import (
	"fmt"

	"phpf/internal/ir"
)

// ReduceDecision classifies one recognized reduction.
type ReduceDecision struct {
	Red *Reduction
	// Privatizable: the runtime may accumulate this reduction into private
	// per-processor partials and merge them once at the outermost carrier
	// loop's exit without changing the program's meaning.
	Privatizable bool
	// Reason says why not, when !Privatizable.
	Reason string
}

func (d *ReduceDecision) String() string {
	if d.Privatizable {
		return fmt.Sprintf("%s (%s): privatized", d.Red.Var.Name, d.Red.Op)
	}
	return fmt.Sprintf("%s (%s): collective — %s", d.Red.Var.Name, d.Red.Op, d.Reason)
}

// ReducePlan is the classification of every recognized reduction.
type ReducePlan struct {
	Decisions []*ReduceDecision
	ByStmt    map[*ir.Stmt]*ReduceDecision
}

// Of returns the decision for a reduction's update statement (nil when the
// statement is not a recognized reduction).
func (rp *ReducePlan) Of(st *ir.Stmt) *ReduceDecision {
	if rp == nil {
		return nil
	}
	return rp.ByStmt[st]
}

// PlanReductions classifies every recognized reduction as privatizable or
// collective-only. A reduction is privatizable when its update has an
// extractable contribution expression (no maxloc coupling, no conditional
// update) and the accumulator is touched by no other statement inside the
// outermost carrier loop — the region over which partials defer the real
// value, so any intermediate read or redefinition there would observe a
// stale accumulator.
func PlanReductions(p *ir.Program, reds []*Reduction) *ReducePlan {
	rp := &ReducePlan{ByStmt: map[*ir.Stmt]*ReduceDecision{}}
	for _, red := range reds {
		d := &ReduceDecision{Red: red}
		switch {
		case red.Op == RedMaxLoc || red.Companion != nil:
			d.Reason = "maxloc couples the value with its location"
		case red.Data == nil:
			d.Reason = "conditional update has no extractable contribution"
		case !accumulatorExclusive(p, red):
			d.Reason = fmt.Sprintf("accumulator %s is read or redefined inside the %s-loop",
				red.Var.Name, red.Loops[len(red.Loops)-1].Index.Name)
		default:
			d.Privatizable = true
		}
		rp.Decisions = append(rp.Decisions, d)
		rp.ByStmt[red.Stmt] = d
	}
	return rp
}

// accumulatorExclusive reports whether the update statement is the only
// statement referencing the accumulator inside the outermost carrier loop.
// Array reductions established this during recognition (their carrier loops
// are defined by it); scalar carrier loops come from SSA back-edge flow,
// which does not forbid intermediate reads, so they are re-checked here.
func accumulatorExclusive(p *ir.Program, red *Reduction) bool {
	outer := red.Loops[len(red.Loops)-1]
	for _, st2 := range p.Stmts {
		if st2 == red.Stmt || !ir.Encloses(outer, st2.Loop) {
			continue
		}
		if st2.Lhs != nil && st2.Lhs.Var == red.Var {
			return false
		}
		for _, u := range st2.Uses {
			if u.Var == red.Var {
				return false
			}
		}
	}
	return true
}
