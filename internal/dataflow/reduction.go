package dataflow

import (
	"math"

	"phpf/internal/ast"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// ReductionOp identifies the combining operation of a reduction.
type ReductionOp int

const (
	RedSum ReductionOp = iota
	RedProd
	RedMax
	RedMin
	// RedMaxLoc marks a companion "location" variable updated alongside a
	// conditional max/min reduction (e.g. the pivot row in DGEFA).
	RedMaxLoc
)

func (o ReductionOp) String() string {
	switch o {
	case RedSum:
		return "sum"
	case RedProd:
		return "prod"
	case RedMax:
		return "max"
	case RedMin:
		return "min"
	case RedMaxLoc:
		return "maxloc"
	}
	return "?"
}

// Identity returns the operation's neutral element — the value a private
// partial accumulator starts from (and is reset to after every merge).
func (o ReductionOp) Identity() float64 {
	switch o {
	case RedProd:
		return 1
	case RedMax:
		return math.Inf(-1)
	case RedMin:
		return math.Inf(1)
	}
	return 0
}

// Fold combines two values under the operation. Folding the identity is a
// no-op, so partials that never accumulated merge for free.
func (o ReductionOp) Fold(a, b float64) float64 {
	switch o {
	case RedProd:
		return a * b
	case RedMax:
		return math.Max(a, b)
	case RedMin:
		return math.Min(a, b)
	}
	return a + b
}

// Reduction describes a scalar reduction carried by a loop.
type Reduction struct {
	Var  *ir.Var
	Op   ReductionOp
	Loop *ir.Loop // the innermost loop carrying the reduction
	// Loops lists every enclosing loop around whose back edge the
	// accumulator flows (innermost first); the last entry is the outermost
	// carried loop, after which the global combine happens.
	Loops []*ir.Loop
	Stmt  *ir.Stmt // the updating assignment

	// DataRef is the partitioned array reference combined into the
	// accumulator in each iteration — "the special array reference whose
	// ownership governs the partitioning of the partial reduction
	// operation" (paper §2.3). Nil when the reduced data is scalar.
	DataRef *ir.Ref

	// Data is the contribution expression e of the update (s = s ⊕ e):
	// the part a privatized runtime evaluates and folds into a private
	// partial without reading the accumulator. Nil for conditional
	// (maxloc-style) updates, which have no extractable contribution.
	Data ast.Expr
	// Negate marks the s = s - e form: the contribution folds in as -e
	// under a sum.
	Negate bool

	// Companion links a maxloc location variable to its max reduction.
	Companion *Reduction
}

// IsArray reports whether the reduction target is an array updated
// elementwise (a commutative update like h(e) = h(e) + 1) rather than a
// scalar accumulator.
func (r *Reduction) IsArray() bool { return r.Var.IsArray() }

// FindReductions recognizes scalar reductions:
//
//	s = s + e, s = s * e, s = max(s, e), s = min(s, e)
//
// and the conditional form used for pivoting:
//
//	if (e > t) then      (or >=, or t < e, ...)
//	  t = e
//	  l = i              (companion location variables)
//	end if
//
// The accumulator's value must flow around the loop only through the
// updating statement (verified via SSA).
func FindReductions(p *ir.Program, s *ssa.SSA) []*Reduction {
	var out []*Reduction
	seen := map[*ir.Stmt]bool{}
	for _, st := range p.Stmts {
		if seen[st] || st.Kind != ir.SAssign || st.Loop == nil {
			continue
		}
		if r := recognizePlainReduction(st, s); r != nil {
			out = append(out, r)
			seen[st] = true
			continue
		}
		if r := recognizeArrayReduction(st, p); r != nil {
			out = append(out, r)
			seen[st] = true
			continue
		}
	}
	// Conditional max/maxloc: scan IF statements.
	for _, st := range p.Stmts {
		if st.Kind != ir.SIf || st.Loop == nil || st.IfNode == nil {
			continue
		}
		rs := recognizeConditionalMax(st, s, seen)
		out = append(out, rs...)
	}
	return out
}

// recognizePlainReduction matches s = s op e forms.
func recognizePlainReduction(st *ir.Stmt, s *ssa.SSA) *Reduction {
	v := st.Lhs.Var
	if v.IsArray() || len(st.EnclosingIfs) > 0 {
		return nil
	}
	var op ReductionOp
	var selfUse *ir.Ref
	var dataExpr ast.Expr

	findSelf := func(e ast.Expr) *ir.Ref {
		r, ok := e.(*ast.Ref)
		if !ok || len(r.Subs) > 0 || r.Name != v.Name {
			return nil
		}
		for _, u := range st.Uses {
			if u.Ast == r {
				return u
			}
		}
		return nil
	}

	switch rhs := st.Rhs.(type) {
	case *ast.BinOp:
		switch rhs.Op {
		case ast.Add, ast.Mul:
			if u := findSelf(rhs.L); u != nil {
				selfUse, dataExpr = u, rhs.R
			} else if u := findSelf(rhs.R); u != nil {
				selfUse, dataExpr = u, rhs.L
			}
			if rhs.Op == ast.Add {
				op = RedSum
			} else {
				op = RedProd
			}
		case ast.Sub:
			// s = s - e is a sum reduction of -e.
			if u := findSelf(rhs.L); u != nil {
				selfUse, dataExpr = u, rhs.R
				op = RedSum
			}
		}
	case *ast.Call:
		if (rhs.Name == "max" || rhs.Name == "min") && len(rhs.Args) == 2 {
			if u := findSelf(rhs.Args[0]); u != nil {
				selfUse, dataExpr = u, rhs.Args[1]
			} else if u := findSelf(rhs.Args[1]); u != nil {
				selfUse, dataExpr = u, rhs.Args[0]
			}
			if rhs.Name == "max" {
				op = RedMax
			} else {
				op = RedMin
			}
		}
	}
	if selfUse == nil {
		return nil
	}
	// The data expression must not read the accumulator.
	for _, r := range ast.Refs(dataExpr) {
		if r.Name == v.Name {
			return nil
		}
	}
	loops := carrierLoops(st, selfUse, s)
	if len(loops) == 0 {
		return nil
	}
	negate := false
	if rhs, ok := st.Rhs.(*ast.BinOp); ok && rhs.Op == ast.Sub {
		negate = true
	}
	return &Reduction{
		Var:     v,
		Op:      op,
		Loop:    loops[0],
		Loops:   loops,
		Stmt:    st,
		DataRef: partitionableDataRef(st, dataExpr),
		Data:    dataExpr,
		Negate:  negate,
	}
}

// recognizeArrayReduction matches elementwise commutative updates of an
// array:
//
//	a(subs) = a(subs) + e, a(subs) = a(subs) * e,
//	a(subs) = max(a(subs), e), ...
//
// with syntactically identical subscripts on both sides (data-dependent
// subscripts like h(key(i)) included — the histogram pattern) and a
// contribution e that never reads the array. The carrier loops are the
// enclosing loops in which no other statement touches the array, so
// accumulating into private copies and merging once at the outermost
// carrier's exit is semantics-preserving. SSA covers scalars only, so the
// carrier test here is the syntactic exclusivity scan.
func recognizeArrayReduction(st *ir.Stmt, p *ir.Program) *Reduction {
	v := st.Lhs.Var
	if !v.IsArray() || len(st.EnclosingIfs) > 0 || len(st.Lhs.Subs) == 0 {
		return nil
	}
	self := ast.ExprString(st.Lhs.Ast)
	matchSelf := func(e ast.Expr) bool {
		r, ok := e.(*ast.Ref)
		return ok && r.Name == v.Name && ast.ExprString(r) == self
	}
	var op ReductionOp
	var dataExpr ast.Expr
	negate := false
	switch rhs := st.Rhs.(type) {
	case *ast.BinOp:
		switch rhs.Op {
		case ast.Add, ast.Mul:
			if matchSelf(rhs.L) {
				dataExpr = rhs.R
			} else if matchSelf(rhs.R) {
				dataExpr = rhs.L
			}
			if rhs.Op == ast.Add {
				op = RedSum
			} else {
				op = RedProd
			}
		case ast.Sub:
			if matchSelf(rhs.L) {
				dataExpr = rhs.R
				op = RedSum
				negate = true
			}
		}
	case *ast.Call:
		if (rhs.Name == "max" || rhs.Name == "min") && len(rhs.Args) == 2 {
			if matchSelf(rhs.Args[0]) {
				dataExpr = rhs.Args[1]
			} else if matchSelf(rhs.Args[1]) {
				dataExpr = rhs.Args[0]
			}
			if rhs.Name == "max" {
				op = RedMax
			} else {
				op = RedMin
			}
		}
	}
	if dataExpr == nil {
		return nil
	}
	// The contribution must not read the array, and the array must appear in
	// the statement exactly twice (the update pair): a read in a subscript or
	// the contribution would see stale private values.
	selfUses := 0
	for _, u := range st.Uses {
		if u.Var == v {
			selfUses++
		}
	}
	if selfUses != 1 {
		return nil
	}
	// Carrier loops: climb while the enclosing loop contains no other
	// statement touching the array. A loop whose index appears affinely in
	// some subscript of the update target writes each element at most once
	// per iteration (affine subscripts are injective) — it is an ordinary
	// elementwise traversal in that loop, not a commutative accumulation, so
	// it cannot carry the reduction. It is skipped, not a barrier: an outer
	// loop still carries h(i)-style updates repeated across its iterations
	// (r(j) = r(j) + x(i,j)*y(i,j) is carried by the i-loop alone).
	// Data-dependent subscripts like h(key(i)) stay carried by the i-loop:
	// many iterations may hit the same element, which is exactly the
	// histogram pattern privatization exists for.
	var loops []*ir.Loop
	for l := st.Loop; l != nil; l = l.Parent {
		if !arrayExclusiveIn(p, v, st, l) {
			break
		}
		if subsVaryAffinelyWith(st.Lhs, l) {
			continue
		}
		loops = append(loops, l)
	}
	if len(loops) == 0 {
		return nil
	}
	return &Reduction{
		Var:     v,
		Op:      op,
		Loop:    loops[0],
		Loops:   loops,
		Stmt:    st,
		DataRef: updateDataRef(st),
		Data:    dataExpr,
		Negate:  negate,
	}
}

// subsVaryAffinelyWith reports whether any subscript of the reference is an
// affine function of the loop's index with a nonzero coefficient — the
// access is then injective in that loop, so one pass over it writes each
// element at most once. Non-affine subscripts (h(key(i)), i*i) report
// false: injectivity cannot be concluded, and the loop may carry repeated
// updates of one element.
func subsVaryAffinelyWith(ref *ir.Ref, l *ir.Loop) bool {
	for _, sub := range ref.Subs {
		if !sub.OK {
			continue
		}
		for _, t := range sub.Terms {
			if t.Loop == l && t.Coef != 0 {
				return true
			}
		}
	}
	return false
}

// arrayExclusiveIn reports whether the update statement is the only
// statement inside loop l that references array v.
func arrayExclusiveIn(p *ir.Program, v *ir.Var, st *ir.Stmt, l *ir.Loop) bool {
	for _, st2 := range p.Stmts {
		if st2 == st || !ir.Encloses(l, st2.Loop) {
			continue
		}
		if st2.Lhs != nil && st2.Lhs.Var == v {
			return false
		}
		for _, u := range st2.Uses {
			if u.Var == v {
				return false
			}
		}
	}
	return true
}

// updateDataRef picks the array reference whose owner executes (and
// accumulates) each instance of a privatized elementwise update: the first
// subscripted read of a different array anywhere in the statement — the
// subscript read key(i) for a histogram h(key(i)), the operand x(i,j) for a
// dot-product sweep r(j) = r(j) + x(i,j)*y(i,j). Nil when every input is
// scalar (the update then accumulates on processor 0's partial).
func updateDataRef(st *ir.Stmt) *ir.Ref {
	for _, u := range st.Uses {
		if u.Var != st.Lhs.Var && u.Var.IsArray() && len(u.Subs) > 0 {
			return u
		}
	}
	return nil
}

// carrierLoops verifies the self use is fed by this definition around loop
// back edges, and returns every such enclosing loop, innermost first.
func carrierLoops(st *ir.Stmt, selfUse *ir.Ref, s *ssa.SSA) []*ir.Loop {
	def := s.DefOf[st]
	if def == nil {
		return nil
	}
	for _, ru := range s.ReachedUses(def) {
		if ru.Ref != selfUse {
			continue
		}
		var out []*ir.Loop
		for l := st.Loop; l != nil; l = l.Parent {
			if ru.CrossesBackOf[l] {
				out = append(out, l)
			}
		}
		return out
	}
	return nil
}

// partitionableDataRef picks the array reference in the data expression that
// will govern the partial reduction's partitioning (the first partitioned
// array read; distribution is resolved later, so we return the first array
// reference and let the mapping phase check its distribution).
func partitionableDataRef(st *ir.Stmt, dataExpr ast.Expr) *ir.Ref {
	for _, ar := range ast.Refs(dataExpr) {
		if len(ar.Subs) == 0 {
			continue
		}
		for _, u := range st.Uses {
			if u.Ast == ar {
				return u
			}
		}
	}
	return nil
}

// recognizeConditionalMax matches the pivoting pattern:
//
//	if (e REL t) then { t = e; l1 = i1; ... }   with no ELSE branch
//
// where REL compares the candidate against the accumulator t. t becomes a
// max/min reduction; the other assignments in the branch become maxloc
// companions.
func recognizeConditionalMax(ifStmt *ir.Stmt, s *ssa.SSA, seen map[*ir.Stmt]bool) []*Reduction {
	ifn := ifStmt.IfNode
	if len(ifn.Else) != 0 {
		return nil
	}
	cond, ok := ifStmt.Cond.(*ast.BinOp)
	if !ok || !cond.Op.IsRelational() || cond.Op == ast.OpEq || cond.Op == ast.OpNe {
		return nil
	}
	// Collect the simple assignments of the branch.
	var assigns []*ir.Stmt
	for _, n := range ifn.Then {
		st, ok := n.(*ir.Stmt)
		if !ok || st.Kind != ir.SAssign || st.Lhs.Var.IsArray() {
			return nil
		}
		assigns = append(assigns, st)
	}
	if len(assigns) == 0 {
		return nil
	}
	// One side of the condition must be a scalar assigned in the branch
	// (the accumulator), the other the candidate expression.
	var accStmt *ir.Stmt
	var candidate ast.Expr
	var op ReductionOp
	matchAcc := func(e ast.Expr) *ir.Stmt {
		r, ok := e.(*ast.Ref)
		if !ok || len(r.Subs) > 0 {
			return nil
		}
		for _, a := range assigns {
			if a.Lhs.Var.Name == r.Name {
				return a
			}
		}
		return nil
	}
	if acc := matchAcc(cond.R); acc != nil {
		// e REL t: for > or >= this is a max update.
		accStmt, candidate = acc, cond.L
		if cond.Op == ast.OpGt || cond.Op == ast.OpGe {
			op = RedMax
		} else {
			op = RedMin
		}
	} else if acc := matchAcc(cond.L); acc != nil {
		// t REL e: for < or <= this is a max update.
		accStmt, candidate = acc, cond.R
		if cond.Op == ast.OpLt || cond.Op == ast.OpLe {
			op = RedMax
		} else {
			op = RedMin
		}
	} else {
		return nil
	}
	// The accumulator must be assigned the candidate expression (same
	// shape), i.e. t = e.
	if ast.ExprString(accStmt.Rhs) != ast.ExprString(candidate) {
		return nil
	}
	// Verify the accumulator is loop-carried through this update.
	var selfUse *ir.Ref
	for _, u := range ifStmt.Uses {
		if u.Var == accStmt.Lhs.Var {
			selfUse = u
		}
	}
	if selfUse == nil {
		return nil
	}
	def := s.DefOf[accStmt]
	if def == nil {
		return nil
	}
	loops := conditionalCarrierLoops(ifStmt, accStmt, selfUse, s)
	if len(loops) == 0 {
		return nil
	}

	dataRef := partitionableDataRef(ifStmt, candidate)
	main := &Reduction{
		Var:     accStmt.Lhs.Var,
		Op:      op,
		Loop:    loops[0],
		Loops:   loops,
		Stmt:    accStmt,
		DataRef: dataRef,
	}
	out := []*Reduction{main}
	seen[accStmt] = true
	for _, a := range assigns {
		if a == accStmt {
			continue
		}
		companion := &Reduction{
			Var:       a.Lhs.Var,
			Op:        RedMaxLoc,
			Loop:      loops[0],
			Loops:     loops,
			Stmt:      a,
			DataRef:   dataRef,
			Companion: main,
		}
		seen[a] = true
		out = append(out, companion)
	}
	return out
}

// conditionalCarrierLoops finds the loops around whose back edges the
// accumulator's conditional update flows into the predicate's use,
// innermost first.
func conditionalCarrierLoops(ifStmt, accStmt *ir.Stmt, selfUse *ir.Ref, s *ssa.SSA) []*ir.Loop {
	def := s.DefOf[accStmt]
	for _, ru := range s.ReachedUses(def) {
		if ru.Ref != selfUse {
			continue
		}
		var out []*ir.Loop
		for l := ifStmt.Loop; l != nil; l = l.Parent {
			if ru.CrossesBackOf[l] {
				out = append(out, l)
			}
		}
		return out
	}
	return nil
}
