// Package dataflow implements the scalar analyses the mapping algorithm
// depends on: sparse constant propagation over SSA, induction-variable
// recognition with closed-form replacement, reduction recognition (including
// the conditional max/maxloc pattern used by partial pivoting), and
// privatizability of scalar definitions with respect to enclosing loops.
package dataflow

import (
	"math"

	"phpf/internal/ast"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// Const is a compile-time constant value.
type Const struct {
	IsInt bool
	I     int64
	F     float64
}

// IntConst makes an integer constant.
func IntConst(v int64) Const { return Const{IsInt: true, I: v} }

// Float returns the value as float64.
func (c Const) Float() float64 {
	if c.IsInt {
		return float64(c.I)
	}
	return c.F
}

// Equal reports value equality.
func (c Const) Equal(o Const) bool {
	if c.IsInt && o.IsInt {
		return c.I == o.I
	}
	return c.Float() == o.Float()
}

// ConstProp computes, for each SSA value, whether it is a compile-time
// constant. The propagation is pessimistic: a value is constant only when
// its inputs are already known constant, iterated to a fixed point (phi
// values require all reachable arguments to agree).
type ConstProp struct {
	s     *ssa.SSA
	known map[*ssa.Value]Const
}

// PropagateConstants runs constant propagation over the SSA form.
func PropagateConstants(s *ssa.SSA) *ConstProp {
	cp := &ConstProp{s: s, known: map[*ssa.Value]Const{}}
	for changed := true; changed; {
		changed = false
		for _, v := range s.Values {
			if _, done := cp.known[v]; done {
				continue
			}
			if c, ok := cp.eval(v); ok {
				cp.known[v] = c
				changed = true
			}
		}
	}
	return cp
}

// ValueConst returns the constant for an SSA value, if known.
func (cp *ConstProp) ValueConst(v *ssa.Value) (Const, bool) {
	c, ok := cp.known[v]
	return c, ok
}

// UseConst returns the constant read by a scalar use reference, if known.
func (cp *ConstProp) UseConst(u *ir.Ref) (Const, bool) {
	v := cp.s.UseDef[u]
	if v == nil {
		return Const{}, false
	}
	return cp.ValueConst(v)
}

func (cp *ConstProp) eval(v *ssa.Value) (Const, bool) {
	switch v.Kind {
	case ssa.VInit:
		return Const{}, false
	case ssa.VPhi:
		var first Const
		have := false
		for _, a := range v.Args {
			if a == nil {
				continue
			}
			c, ok := cp.known[a]
			if !ok {
				return Const{}, false
			}
			if !have {
				first, have = c, true
			} else if !first.Equal(c) {
				return Const{}, false
			}
		}
		return first, have
	default: // VDef
		return cp.evalExpr(v.Stmt.Rhs, v.Stmt)
	}
}

// evalExpr evaluates an expression given the constants known at stmt.
// Array references and loop indices make it non-constant.
func (cp *ConstProp) evalExpr(e ast.Expr, stmt *ir.Stmt) (Const, bool) {
	switch x := e.(type) {
	case *ast.IntConst:
		return IntConst(x.Value), true
	case *ast.RealConst:
		return Const{F: x.Value}, true
	case *ast.Ref:
		if stmt == nil || len(x.Subs) > 0 {
			return Const{}, false
		}
		// Find the matching use reference on the statement.
		for _, u := range stmt.Uses {
			if u.Ast == x {
				return cp.UseConst(u)
			}
		}
		return Const{}, false // loop index or untracked
	case *ast.UnaryMinus:
		c, ok := cp.evalExpr(x.X, stmt)
		if !ok {
			return Const{}, false
		}
		if c.IsInt {
			return IntConst(-c.I), true
		}
		return Const{F: -c.F}, true
	case *ast.BinOp:
		l, ok := cp.evalExpr(x.L, stmt)
		if !ok {
			return Const{}, false
		}
		r, ok := cp.evalExpr(x.R, stmt)
		if !ok {
			return Const{}, false
		}
		return foldBin(x.Op, l, r)
	case *ast.Call:
		args := make([]Const, len(x.Args))
		for i, a := range x.Args {
			c, ok := cp.evalExpr(a, stmt)
			if !ok {
				return Const{}, false
			}
			args[i] = c
		}
		return foldCall(x.Name, args)
	}
	return Const{}, false
}

func foldBin(op ast.Op, l, r Const) (Const, bool) {
	if l.IsInt && r.IsInt {
		switch op {
		case ast.Add:
			return IntConst(l.I + r.I), true
		case ast.Sub:
			return IntConst(l.I - r.I), true
		case ast.Mul:
			return IntConst(l.I * r.I), true
		case ast.Div:
			if r.I == 0 {
				return Const{}, false
			}
			return IntConst(l.I / r.I), true
		}
		return Const{}, false
	}
	lf, rf := l.Float(), r.Float()
	switch op {
	case ast.Add:
		return Const{F: lf + rf}, true
	case ast.Sub:
		return Const{F: lf - rf}, true
	case ast.Mul:
		return Const{F: lf * rf}, true
	case ast.Div:
		if rf == 0 {
			return Const{}, false
		}
		return Const{F: lf / rf}, true
	}
	return Const{}, false
}

func foldCall(name string, args []Const) (Const, bool) {
	switch name {
	case "abs":
		c := args[0]
		if c.IsInt {
			if c.I < 0 {
				return IntConst(-c.I), true
			}
			return c, true
		}
		return Const{F: math.Abs(c.F)}, true
	case "sqrt":
		return Const{F: math.Sqrt(args[0].Float())}, true
	case "exp":
		return Const{F: math.Exp(args[0].Float())}, true
	case "max", "min":
		best := args[0]
		for _, a := range args[1:] {
			if (name == "max") == (a.Float() > best.Float()) {
				best = a
			}
		}
		return best, true
	case "mod":
		if args[0].IsInt && args[1].IsInt && args[1].I != 0 {
			return IntConst(args[0].I % args[1].I), true
		}
		return Const{}, false
	}
	return Const{}, false
}
