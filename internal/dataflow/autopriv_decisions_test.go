package dataflow

import (
	"strings"
	"testing"

	"phpf/internal/ir"
	"phpf/internal/parser"
	"phpf/internal/ssa"
)

// classifySrc runs the full classification pipeline (parse → IR → CFG → SSA →
// const-prop → ClassifyPrivatization) on one source.
func classifySrc(t *testing.T, src string) (*ir.Program, *PrivSummary) {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatalf("ir: %v", err)
	}
	g, err := ir.BuildCFG(p)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	s := ssa.Build(p, g)
	return p, ClassifyPrivatization(p, g, s, PropagateConstants(s))
}

// TestClassifyDecisions pins the per-variable classification against
// hand-derived expectations: the decision for each (variable, loop) pair and
// a fragment of the recorded reason.
func TestClassifyDecisions(t *testing.T) {
	type want struct {
		v, loop   string
		decision  PrivDecision
		reasonHas string
	}
	cases := []struct {
		name  string
		src   string
		wants []want
	}{
		{
			name: "private scalar, def-before-use each iteration",
			src: `
program t
parameter n = 16
real a(n), b(n)
real x
integer i
!hpf$ distribute (block) :: a, b
do i = 1, n
  x = a(i) * 2.0
  b(i) = x + 1.0
end do
end
`,
			wants: []want{{"x", "i", PrivPrivate, "same-iteration definitions"}},
		},
		{
			name: "lastprivate: constant bounds prove a final iteration",
			src: `
program t
parameter n = 16
real a(n), b(n)
real x
integer i, k
!hpf$ distribute (block) :: a, b
do i = 1, n
  x = a(i) * 2.0
  b(i) = x + 1.0
end do
do k = 1, n
  b(k) = b(k) + x
end do
end
`,
			wants: []want{{"x", "i", PrivLastPrivate, "copy-out at loop exit"}},
		},
		{
			name: "lastprivate: bound is a scalar const-prop proves",
			src: `
program t
parameter n = 16
real a(n), b(n)
real x
integer i, k, m
!hpf$ distribute (block) :: a, b
m = 12
do i = 1, m
  x = a(i) * 2.0
  b(i) = x + 1.0
end do
do k = 1, n
  b(k) = b(k) + x
end do
end
`,
			wants: []want{{"x", "i", PrivLastPrivate, "copy-out at loop exit"}},
		},
		{
			name: "serialized: unprovable trip count blocks the copy-out",
			src: `
program t
parameter n = 16
real a(n), b(n)
real x
integer i, k, m
!hpf$ distribute (block) :: a, b
m = a(1)
do i = 1, m
  x = a(i) * 2.0
  b(i) = x + 1.0
end do
do k = 1, n
  b(k) = b(k) + x
end do
end
`,
			wants: []want{{"x", "i", PrivSerialized, "copy-out is unprovable"}},
		},
		{
			name: "serialized: upward-exposed read of the pre-loop value",
			src: `
program t
parameter n = 16
real a(n), b(n)
real x
integer i
!hpf$ distribute (block) :: a, b
x = 3.0
do i = 1, n
  b(i) = x + a(i)
  x = a(i) * 2.0
end do
end
`,
			wants: []want{{"x", "i", PrivSerialized, "live on entry"}},
		},
		{
			name: "serialized: conditional definition defeats the copy-out",
			src: `
program t
parameter n = 16
real a(n), b(n)
real x
integer i, k
!hpf$ distribute (block) :: a, b
x = 0.0
do i = 1, n
  if (a(i) > 0.0) then
    x = a(i)
  end if
  b(i) = a(i) * 2.0
end do
do k = 1, n
  b(k) = b(k) + x
end do
end
`,
			wants: []want{{"x", "i", PrivSerialized, "copy-out is unprovable"}},
		},
		{
			name: "private array: fully written then read each iteration",
			src: `
program t
parameter n = 16
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`,
			wants: []want{{"w", "k", PrivPrivate, "covered by same-iteration writes"}},
		},
		{
			name: "serialized array: read after the loop",
			src: `
program t
parameter n = 16
real a(n,n), w(n), b(n)
integer i, k
!hpf$ distribute (*,block) :: a
do k = 1, n
  do i = 1, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
do i = 1, n
  b(i) = w(i)
end do
end
`,
			wants: []want{{"w", "k", PrivSerialized, "reads the array after the loop"}},
		},
		{
			// The write scans i ∈ [2,n] but the read scans i ∈ [1,n]: w(1)
			// reads a value from before the loop (or an earlier iteration).
			name: "serialized array: read not covered by earlier writes",
			src: `
program t
parameter n = 16
real a(n,n), w(n)
integer i, k
!hpf$ distribute (*,block) :: a
do k = 1, n
  do i = 2, n
    w(i) = a(i,k) * 2.0
  end do
  do i = 1, n
    a(i,k) = w(i) + 1.0
  end do
end do
end
`,
			wants: []want{{"w", "k", PrivSerialized, "not covered by writes earlier in the iteration"}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, sum := classifySrc(t, tc.src)
			for _, w := range tc.wants {
				v := p.LookupVar(w.v)
				if v == nil {
					t.Fatalf("no variable %s", w.v)
				}
				var loop *ir.Loop
				for _, l := range p.Loops {
					if l.Index.Name == w.loop {
						loop = l
					}
				}
				if loop == nil {
					t.Fatalf("no %s-loop", w.loop)
				}
				c := sum.Of(v, loop)
				if c == nil {
					t.Fatalf("%s wrt %s-loop: not a candidate; classes: %v", w.v, w.loop, sum.Classes)
				}
				if c.Decision != w.decision {
					t.Errorf("%s wrt %s-loop: decision %s, want %s (%s)", w.v, w.loop, c.Decision, w.decision, c.Reason)
				}
				if !strings.Contains(c.Reason, w.reasonHas) {
					t.Errorf("%s wrt %s-loop: reason %q does not mention %q", w.v, w.loop, c.Reason, w.reasonHas)
				}
				if c.Decision == PrivSerialized && c.Blocking == nil {
					t.Errorf("%s wrt %s-loop: serialized without a blocking reference", w.v, w.loop)
				}
			}
		})
	}
}

// TestClassifyTripCount pins tripAtLeastOnce across the bound forms.
func TestClassifyTripCount(t *testing.T) {
	src := `
program t
parameter n = 16
real a(n)
integer i, j, k, m, z
!hpf$ distribute (block) :: a
m = 4
z = a(1)
do i = 1, n
  a(i) = 1.0
end do
do j = 1, m
  a(j) = 2.0
end do
do k = 1, z
  a(k) = 3.0
end do
end
`
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ir.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	s := ssa.Build(p, g)
	cp := PropagateConstants(s)
	wants := map[string]bool{
		"i": true,  // parameter bounds fold to constants
		"j": true,  // bound scalar m is const-propagated
		"k": false, // z comes from memory: unprovable
	}
	for _, l := range p.Loops {
		if got := tripAtLeastOnce(cp, l); got != wants[l.Index.Name] {
			t.Errorf("%s-loop: tripAtLeastOnce = %v, want %v", l.Index.Name, got, wants[l.Index.Name])
		}
	}
	if tripAtLeastOnce(nil, p.Loops[0]) {
		t.Error("nil ConstProp must be conservative")
	}
}
