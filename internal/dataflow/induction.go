package dataflow

import (
	"phpf/internal/ast"
	"phpf/internal/ir"
	"phpf/internal/ssa"
)

// Induction describes a recognized basic induction variable: a scalar
// updated exactly once per iteration of Loop as v = v ± c with c and the
// initial value loop-invariant constants.
type Induction struct {
	Var  *ir.Var
	Loop *ir.Loop
	Stmt *ir.Stmt // the increment statement
	Init int64    // value before the loop
	Incr int64    // per-iteration increment (negative for decrements)

	// ClosedForm is the expression for the value of the variable just after
	// the increment in iteration I of Loop: Init + ((I - lo)/step + 1)*Incr.
	ClosedForm ast.Expr
}

// FindInductionVars recognizes basic induction variables, following the
// paper: "any scalar variable recognized as an induction variable ... the
// phpf compiler replaces the rhs of that assignment statement by the
// closed-form expression for the value of that induction variable as a
// function of surrounding loop indices."
//
// Requirements checked:
//   - the statement has the shape v = v + c, v = c + v, or v = v - c with
//     c an integer constant;
//   - the statement executes unconditionally exactly once per iteration
//     (directly in the loop body, not under an IF);
//   - the rhs use of v is reached only by this definition (via the back
//     edge) and by constant definitions from outside the loop that agree
//     on the initial value.
func FindInductionVars(p *ir.Program, s *ssa.SSA, cp *ConstProp) []*Induction {
	var out []*Induction
	for _, st := range p.Stmts {
		if iv := recognizeInduction(st, s, cp); iv != nil {
			out = append(out, iv)
		}
	}
	return out
}

func recognizeInduction(st *ir.Stmt, s *ssa.SSA, cp *ConstProp) *Induction {
	if st.Kind != ir.SAssign || st.Loop == nil || len(st.EnclosingIfs) > 0 {
		return nil
	}
	v := st.Lhs.Var
	if v.IsArray() || v.Type != ast.Integer {
		return nil
	}
	selfUse, incr, ok := matchIncrement(st, v)
	if !ok {
		return nil
	}
	loop := st.Loop

	// The self use must be fed by exactly: this def (crossing the loop's
	// back edge) plus constant defs from outside the loop.
	thisDef := s.DefOf[st]
	defs := s.ReachingDefs(selfUse)
	var init Const
	haveInit := false
	sawSelf := false
	for _, d := range defs {
		if d == thisDef {
			sawSelf = true
			continue
		}
		// Outside definition: must be a constant, and the def must be
		// outside the loop.
		if d.Kind == ssa.VDef && ir.Encloses(loop, d.Stmt.Loop) {
			return nil // another def inside the loop
		}
		c, isConst := cp.ValueConst(d)
		if !isConst || !c.IsInt {
			return nil
		}
		if haveInit && c.I != init.I {
			return nil
		}
		init, haveInit = c, true
	}
	if !sawSelf || !haveInit {
		return nil
	}
	// Verify the self use only arrives via the back edge from this def
	// (i.e. the def from a previous iteration), never within the same
	// iteration — guaranteed here because the use is on the defining
	// statement itself.

	iv := &Induction{
		Var:  v,
		Loop: loop,
		Stmt: st,
		Init: init.I,
		Incr: incr,
	}
	iv.ClosedForm = closedForm(iv)
	return iv
}

// matchIncrement matches st.Rhs against v+c, c+v, v-c and returns the self
// use reference and signed increment.
func matchIncrement(st *ir.Stmt, v *ir.Var) (*ir.Ref, int64, bool) {
	b, ok := st.Rhs.(*ast.BinOp)
	if !ok {
		return nil, 0, false
	}
	asSelf := func(e ast.Expr) *ir.Ref {
		r, ok := e.(*ast.Ref)
		if !ok || len(r.Subs) > 0 || r.Name != v.Name {
			return nil
		}
		for _, u := range st.Uses {
			if u.Ast == r {
				return u
			}
		}
		return nil
	}
	asConst := func(e ast.Expr) (int64, bool) {
		if c, ok := e.(*ast.IntConst); ok {
			return c.Value, true
		}
		return 0, false
	}
	switch b.Op {
	case ast.Add:
		if u := asSelf(b.L); u != nil {
			if c, ok := asConst(b.R); ok {
				return u, c, true
			}
		}
		if u := asSelf(b.R); u != nil {
			if c, ok := asConst(b.L); ok {
				return u, c, true
			}
		}
	case ast.Sub:
		if u := asSelf(b.L); u != nil {
			if c, ok := asConst(b.R); ok {
				return u, -c, true
			}
		}
	}
	return nil, 0, false
}

// closedForm builds Init + ((i - lo)/step + 1) * Incr as an AST expression,
// simplified for the common step=1 case.
func closedForm(iv *Induction) ast.Expr {
	loop := iv.Loop
	idx := &ast.Ref{Name: loop.Index.Name}
	// k = (i - lo)/step + 1
	var k ast.Expr = &ast.BinOp{Op: ast.Sub, L: idx, R: loop.Lo}
	if loop.Step != nil {
		if c, isOne := loop.Step.(*ast.IntConst); !isOne || c.Value != 1 {
			k = &ast.BinOp{Op: ast.Div, L: k, R: loop.Step}
		}
	}
	k = &ast.BinOp{Op: ast.Add, L: k, R: &ast.IntConst{Value: 1}}
	var scaled ast.Expr = k
	if iv.Incr != 1 {
		scaled = &ast.BinOp{Op: ast.Mul, L: &ast.IntConst{Value: iv.Incr}, R: k}
	}
	return simplify(&ast.BinOp{Op: ast.Add, L: &ast.IntConst{Value: iv.Init}, R: scaled})
}

// simplify performs constant folding and +0 elimination on integer affine
// expressions (enough to turn 2 + ((i-2)+1) into i+1).
func simplify(e ast.Expr) ast.Expr {
	b, ok := e.(*ast.BinOp)
	if !ok {
		return e
	}
	l := simplify(b.L)
	r := simplify(b.R)
	lc, lok := l.(*ast.IntConst)
	rc, rok := r.(*ast.IntConst)
	if lok && rok {
		switch b.Op {
		case ast.Add:
			return &ast.IntConst{Value: lc.Value + rc.Value}
		case ast.Sub:
			return &ast.IntConst{Value: lc.Value - rc.Value}
		case ast.Mul:
			return &ast.IntConst{Value: lc.Value * rc.Value}
		case ast.Div:
			if rc.Value != 0 {
				return &ast.IntConst{Value: lc.Value / rc.Value}
			}
		}
	}
	// x + 0, 0 + x, x - 0, 1*x, x*1.
	if b.Op == ast.Add && rok && rc.Value == 0 {
		return l
	}
	if b.Op == ast.Add && lok && lc.Value == 0 {
		return r
	}
	if b.Op == ast.Sub && rok && rc.Value == 0 {
		return l
	}
	if b.Op == ast.Mul && lok && lc.Value == 1 {
		return r
	}
	if b.Op == ast.Mul && rok && rc.Value == 1 {
		return l
	}
	// Canonicalize c + x to x + c so reassociation below applies.
	if b.Op == ast.Add && lok && !rok {
		return simplify(&ast.BinOp{Op: ast.Add, L: r, R: l})
	}
	// Reassociate (x + c1) + c2 and (x - c1) + c2 into x + c.
	if b.Op == ast.Add && rok {
		if lb, ok := l.(*ast.BinOp); ok {
			if ic, ok2 := lb.R.(*ast.IntConst); ok2 {
				switch lb.Op {
				case ast.Add:
					return simplify(&ast.BinOp{Op: ast.Add, L: lb.L,
						R: &ast.IntConst{Value: ic.Value + rc.Value}})
				case ast.Sub:
					return simplify(&ast.BinOp{Op: ast.Add, L: lb.L,
						R: &ast.IntConst{Value: rc.Value - ic.Value}})
				}
			}
		}
	}
	// Normalize x + (-c) to x - c.
	if b.Op == ast.Add && rok && rc.Value < 0 {
		return &ast.BinOp{Op: ast.Sub, L: l, R: &ast.IntConst{Value: -rc.Value}}
	}
	return &ast.BinOp{Op: b.Op, L: l, R: r}
}

// ApplyInductionRewrites substitutes the closed form:
//   - the increment statement's rhs becomes the closed form, and
//   - every same-iteration use of the variable whose only reaching
//     definition is the increment is replaced in place by the closed form
//     (this is what lets d(m) be analyzed as d(i+1)).
//
// The IR is mutated; the caller must rebuild the CFG and SSA afterwards.
// Returns the number of rewritten use sites.
func ApplyInductionRewrites(p *ir.Program, s *ssa.SSA, ivs []*Induction) int {
	rewritten := 0
	for _, iv := range ivs {
		def := s.DefOf[iv.Stmt]
		// Collect same-iteration uses uniquely reached by this def.
		var replaceUses []*ir.Ref
		for _, ru := range s.ReachedUses(def) {
			if ru.CrossesBackOf[iv.Loop] {
				continue // previous-iteration use (the increment's own rhs)
			}
			defs := s.ReachingDefs(ru.Ref)
			if len(defs) == 1 && defs[0] == def {
				replaceUses = append(replaceUses, ru.Ref)
			}
		}
		for _, u := range replaceUses {
			if substituteRef(u, iv.ClosedForm) {
				rewritten++
			}
		}
		// Replace the increment's rhs by the closed form. The statement's
		// remaining use (of the previous value) disappears.
		iv.Stmt.Rhs = cloneExpr(iv.ClosedForm)
		removeUses(iv.Stmt, func(r *ir.Ref) bool { return r.Var == iv.Var && !r.IsDef })
	}
	if rewritten > 0 || len(ivs) > 0 {
		reanalyzeSubscripts(p)
	}
	return rewritten
}

// substituteRef replaces use's ast.Ref node with a clone of repl inside the
// statement that contains it, and removes the use from the statement's use
// lists. Returns false if the node could not be located.
func substituteRef(use *ir.Ref, repl ast.Expr) bool {
	st := use.Stmt
	target := use.Ast
	replaced := false
	var sub func(e ast.Expr) ast.Expr
	sub = func(e ast.Expr) ast.Expr {
		if e == nil {
			return nil
		}
		if e == ast.Expr(target) {
			replaced = true
			return cloneExpr(repl)
		}
		switch x := e.(type) {
		case *ast.BinOp:
			x.L = sub(x.L)
			x.R = sub(x.R)
		case *ast.UnaryMinus:
			x.X = sub(x.X)
		case *ast.Not:
			x.X = sub(x.X)
		case *ast.Call:
			for i := range x.Args {
				x.Args[i] = sub(x.Args[i])
			}
		case *ast.Ref:
			for i := range x.Subs {
				x.Subs[i] = sub(x.Subs[i])
			}
		}
		return e
	}
	if st.Rhs != nil {
		st.Rhs = sub(st.Rhs)
	}
	if st.Cond != nil {
		st.Cond = sub(st.Cond)
	}
	if st.Lhs != nil {
		for i := range st.Lhs.Ast.Subs {
			st.Lhs.Ast.Subs[i] = sub(st.Lhs.Ast.Subs[i])
		}
	}
	if replaced {
		removeUses(st, func(r *ir.Ref) bool { return r == use })
	}
	return replaced
}

func removeUses(st *ir.Stmt, drop func(*ir.Ref) bool) {
	filter := func(refs []*ir.Ref) []*ir.Ref {
		out := refs[:0]
		for _, r := range refs {
			if !drop(r) {
				out = append(out, r)
			}
		}
		return out
	}
	st.Uses = filter(st.Uses)
	st.Refs = filter(st.Refs)
}

// reanalyzeSubscripts refreshes the affine analysis of every array
// reference after expression rewriting.
func reanalyzeSubscripts(p *ir.Program) {
	for _, r := range p.Refs {
		if !r.Var.IsArray() {
			continue
		}
		r.Subs = r.Subs[:0]
		for _, e := range r.Ast.Subs {
			r.Subs = append(r.Subs, ir.AnalyzeAffine(e, r.Stmt.Loop, p.LookupVar))
		}
	}
}

func cloneExpr(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.IntConst:
		c := *x
		return &c
	case *ast.RealConst:
		c := *x
		return &c
	case *ast.Ref:
		c := &ast.Ref{Name: x.Name, Line: x.Line}
		for _, s := range x.Subs {
			c.Subs = append(c.Subs, cloneExpr(s))
		}
		return c
	case *ast.BinOp:
		return &ast.BinOp{Op: x.Op, L: cloneExpr(x.L), R: cloneExpr(x.R)}
	case *ast.UnaryMinus:
		return &ast.UnaryMinus{X: cloneExpr(x.X)}
	case *ast.Not:
		return &ast.Not{X: cloneExpr(x.X)}
	case *ast.Call:
		c := &ast.Call{Name: x.Name}
		for _, a := range x.Args {
			c.Args = append(c.Args, cloneExpr(a))
		}
		return c
	}
	return e
}
