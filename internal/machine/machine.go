// Package machine simulates a distributed-memory message-passing machine in
// the style of the IBM SP2 the paper measured on: per-processor clocks, a
// LogGP-like point-to-point cost (latency α, sender overhead o, inverse
// bandwidth 1/β), and log-tree collectives. Statement execution and
// communication advance the clocks; the program's execution time is the
// maximum clock.
package machine

import (
	"fmt"
	"math"

	"phpf/internal/dist"
	"phpf/internal/fault"
	"phpf/internal/trace"
)

// Params are the machine cost parameters, in seconds and bytes/second.
type Params struct {
	Latency   float64 // α: end-to-end message latency
	Overhead  float64 // o: sender CPU occupancy per message
	Bandwidth float64 // β⁻¹: bytes per second on a link
	FlopTime  float64 // time per floating-point operation
	ElemBytes int64   // bytes per array element / scalar message
	// GuardTime is the per-iteration cost of communication left inside a
	// loop: the generated code must evaluate ownership guards and invoke
	// the runtime's send/receive checks every iteration, whether or not a
	// message actually flows. It is the model's counterpart of the paper's
	// "inner-loop communication" penalty that message vectorization
	// removes.
	GuardTime float64
}

// Validate rejects parameter sets that would poison the clocks with NaN or
// Inf times: non-positive latency, bandwidth, flop time, or element size
// (a zero bandwidth makes every transfer infinitely long; a negative latency
// lets time run backwards), and any non-finite value.
func (p Params) Validate() error {
	pos := []struct {
		name string
		v    float64
	}{
		{"Latency", p.Latency},
		{"Bandwidth", p.Bandwidth},
		{"FlopTime", p.FlopTime},
		{"ElemBytes", float64(p.ElemBytes)},
	}
	for _, f := range pos {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("machine: %s must be finite, got %v", f.name, f.v)
		}
		if f.v <= 0 {
			return fmt.Errorf("machine: %s must be positive, got %v", f.name, f.v)
		}
	}
	nonneg := []struct {
		name string
		v    float64
	}{
		{"Overhead", p.Overhead},
		{"GuardTime", p.GuardTime},
	}
	for _, f := range nonneg {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("machine: %s must be finite, got %v", f.name, f.v)
		}
		if f.v < 0 {
			return fmt.Errorf("machine: %s must be >= 0, got %v", f.name, f.v)
		}
	}
	return nil
}

// SP2 returns parameters approximating a 1995-era IBM SP2 thin node with
// MPL user-space communication: ~40µs latency, ~35 MB/s bandwidth,
// ~66 MFLOPS sustained per node, ~0.5µs per inner-loop communication guard.
func SP2() Params {
	return Params{
		Latency:   40e-6,
		Overhead:  10e-6,
		Bandwidth: 35e6,
		FlopTime:  15e-9,
		ElemBytes: 8,
		GuardTime: 0.5e-6,
	}
}

// Stats aggregates communication activity.
type Stats struct {
	Messages     int64 // point-to-point messages (incl. collective rounds)
	BytesMoved   int64
	Broadcasts   int64
	Shifts       int64
	Reductions   int64
	Merges       int64 // privatized-reduction tree merges (see TreeMerge)
	PointToPoint int64
	AllToAlls    int64

	// Fault and recovery activity (all zero on fault-free runs).
	Retransmits      int64 // lost transmissions repeated after a timeout
	Duplicates       int64 // spurious duplicate transmissions delivered
	Crashes          int64 // fail-stop failures recovered from
	Checkpoints      int64 // coordinated checkpoints taken
	CheckpointBytes  int64 // state written to stable store at checkpoints
	RecoveryBytes    int64 // bytes refetched to restore a crashed processor
	RecoveryMessages int64 // refetch messages during recovery
}

// Machine is a simulated machine instance.
type Machine struct {
	Params Params
	Grid   *dist.Grid
	Clock  []float64
	Stats  Stats
	// Fault, when non-nil, injects message loss/duplication and compute
	// slowdowns into every cost below. Nil keeps the exact fault-free
	// arithmetic (pay-for-what-you-use).
	Fault *fault.Injector
	// Rec, when non-nil, receives one trace event per modeled message,
	// computation charge, collective, checkpoint, and fault — stamped with
	// simulated time and the attribution set via SetAttr. Nil keeps the
	// cost paths allocation- and emission-free.
	Rec *trace.Recorder
	// FaultEventsOnly restricts emission to Checkpoint/Restart/Fault
	// events. The concurrent backend replays the cost model on a machine
	// per worker but its workers emit Compute/Send/Recv themselves from
	// real activity; worker 0's replay machine contributes only the
	// fault-protocol events so nothing is double-counted.
	FaultEventsOnly bool
	// Now, when non-nil, overrides the timestamp of emitted events (the
	// concurrent backend stamps its fault events with the run's wall
	// clock while the charges themselves stay in simulated time).
	Now func() float64

	// Attribution for subsequent charges (see SetAttr).
	attrStmt  int32
	attrReq   int32
	attrClass dist.CommClass
}

// New creates a machine over the given grid.
func New(grid *dist.Grid, p Params) *Machine {
	return &Machine{Params: p, Grid: grid, Clock: make([]float64, grid.Size()),
		attrStmt: -1, attrReq: -1}
}

// SetAttr stamps the statement, communication-plan requirement, and
// communication class that subsequent charges realize; emitted events carry
// them. Pass -1/-1/CommNone for unattributed charges.
func (m *Machine) SetAttr(stmt, req int, class dist.CommClass) {
	m.attrStmt, m.attrReq, m.attrClass = int32(stmt), int32(req), class
}

// ClearAttr resets the attribution to "none".
func (m *Machine) ClearAttr() { m.SetAttr(-1, -1, dist.CommNone) }

// emit records one event with the current attribution (callers guard on
// m.Rec != nil so the disabled path stays a single branch).
func (m *Machine) emit(k trace.Kind, proc, peer int, t, dur float64, bytes int64) {
	if m.FaultEventsOnly && k != trace.Checkpoint && k != trace.Restart && k != trace.Fault {
		return
	}
	if m.Now != nil {
		t = m.Now()
	}
	m.Rec.Emit(0, trace.Event{
		Time: t, Dur: dur, Bytes: bytes, Kind: k, Class: m.attrClass,
		Proc: int32(proc), Peer: int32(peer), Stmt: m.attrStmt, Req: m.attrReq,
	})
}

// State is an opaque copy of a machine's mutable accounting (clocks and
// statistics), captured at a checkpoint and restored on recovery so a
// healed run's final cost model does not double-charge the lost interval.
type State struct {
	clock []float64
	stats Stats
}

// SaveState captures the machine's accounting state.
func (m *Machine) SaveState() State {
	return State{clock: append([]float64(nil), m.Clock...), stats: m.Stats}
}

// RestoreState overwrites the machine's accounting from a saved state.
func (m *Machine) RestoreState(s State) {
	copy(m.Clock, s.clock)
	m.Stats = s.stats
}

// NProcs returns the processor count.
func (m *Machine) NProcs() int { return len(m.Clock) }

// Time returns the current execution time: the maximum clock.
func (m *Machine) Time() float64 {
	t := 0.0
	for _, c := range m.Clock {
		if c > t {
			t = c
		}
	}
	return t
}

// Compute charges t seconds of computation to every processor in set.
func (m *Machine) Compute(set dist.ProcSet, t float64) {
	if t == 0 {
		return
	}
	if m.Fault != nil && m.Fault.HasSlowdowns() {
		if set.IsAll() {
			for i := range m.Clock {
				d := t * m.Fault.SlowFactor(i, m.Clock[i])
				m.Clock[i] += d
				if m.Rec != nil {
					m.emit(trace.Compute, i, -1, m.Clock[i], d, 0)
				}
			}
			return
		}
		set.Each(func(p int) {
			d := t * m.Fault.SlowFactor(p, m.Clock[p])
			m.Clock[p] += d
			if m.Rec != nil {
				m.emit(trace.Compute, p, -1, m.Clock[p], d, 0)
			}
		})
		return
	}
	if set.IsAll() {
		for i := range m.Clock {
			m.Clock[i] += t
			if m.Rec != nil {
				m.emit(trace.Compute, i, -1, m.Clock[i], t, 0)
			}
		}
		return
	}
	set.Each(func(p int) {
		m.Clock[p] += t
		if m.Rec != nil {
			m.emit(trace.Compute, p, -1, m.Clock[p], t, 0)
		}
	})
}

// ComputeProc charges t seconds to one processor.
func (m *Machine) ComputeProc(p int, t float64) {
	if m.Fault != nil && m.Fault.HasSlowdowns() {
		t *= m.Fault.SlowFactor(p, m.Clock[p])
	}
	m.Clock[p] += t
	if m.Rec != nil {
		m.emit(trace.Compute, p, -1, m.Clock[p], t, 0)
	}
}

// retransmitDelay draws the loss decisions for one message and returns the
// extra sender-side wait before the delivery that finally succeeds: each
// lost transmission costs one timeout, doubling per attempt (exponential
// backoff). The sender also pays overhead and the wire bytes again per
// retransmission. Returns 0 on fault-free machines.
func (m *Machine) retransmitDelay(from int, bytes int64) float64 {
	if m.Fault == nil {
		return 0
	}
	delay := 0.0
	rto := m.Fault.BaseRTO(m.Params.Latency)
	const maxRetries = 16
	for try := 0; try < maxRetries && m.Fault.DropMessage(); try++ {
		m.Stats.Retransmits++
		m.Stats.Messages++
		m.Stats.BytesMoved += bytes
		if from >= 0 {
			m.Clock[from] += m.Params.Overhead
			if m.Rec != nil {
				m.emit(trace.Fault, from, -1, m.Clock[from], 0, bytes)
			}
		}
		delay += rto
		rto *= 2
	}
	if m.Fault.DuplicateMessage() {
		m.Stats.Duplicates++
		m.Stats.Messages++
		m.Stats.BytesMoved += bytes
		if from >= 0 {
			m.Clock[from] += m.Params.Overhead
			if m.Rec != nil {
				m.emit(trace.Fault, from, -1, m.Clock[from], 0, bytes)
			}
		}
	}
	return delay
}

// collectiveFaultDelay draws loss decisions for the k constituent messages
// of a collective and returns the added completion delay: the collective
// finishes one base timeout later per lost constituent (the retransmissions
// pipeline, so backoff does not compound across distinct messages).
func (m *Machine) collectiveFaultDelay(k int, bytes int64) float64 {
	if m.Fault == nil || k <= 0 {
		return 0
	}
	drops := m.Fault.DropsAmong(k)
	if drops == 0 {
		return 0
	}
	m.Stats.Retransmits += int64(drops)
	m.Stats.Messages += int64(drops)
	m.Stats.BytesMoved += bytes * int64(drops)
	if m.Rec != nil {
		for i := 0; i < drops; i++ {
			m.emit(trace.Fault, -1, -1, m.Time(), 0, bytes)
		}
	}
	return float64(drops) * m.Fault.BaseRTO(m.Params.Latency)
}

// xferTime is the wire time of one message.
func (m *Machine) xferTime(bytes int64) float64 {
	return m.Params.Latency + float64(bytes)/m.Params.Bandwidth
}

// Send models one point-to-point message.
func (m *Machine) Send(from, to int, bytes int64) {
	m.Stats.Messages++
	m.Stats.PointToPoint++
	m.Stats.BytesMoved += bytes
	if from == to {
		// A local (owner = executor) delivery still traces as a send/recv
		// pair so both backends' event counts agree (the concurrent backend
		// really transfers it over the self edge).
		if m.Rec != nil {
			m.emit(trace.Send, from, to, m.Clock[from], 0, bytes)
			m.emit(trace.Recv, to, from, m.Clock[to], 0, bytes)
		}
		return
	}
	depart := m.Clock[from]
	m.Clock[from] += m.Params.Overhead
	depart += m.retransmitDelay(from, bytes)
	arrive := depart + m.xferTime(bytes)
	if arrive > m.Clock[to] {
		m.Clock[to] = arrive
	}
	if m.Rec != nil {
		m.emit(trace.Send, from, to, depart, 0, bytes)
		m.emit(trace.Recv, to, from, arrive, 0, bytes)
	}
}

// Multicast models a tree multicast of bytes from one processor to a set of
// destinations: ceil(log2(k+1)) rounds of α+bytes/β, synchronizing the
// destinations behind the source.
func (m *Machine) Multicast(from int, dst dist.ProcSet, bytes int64) {
	procs := dst.Procs()
	k := 0
	for _, p := range procs {
		if p != from {
			k++
		}
	}
	if k == 0 {
		return
	}
	rounds := int(math.Ceil(math.Log2(float64(k + 1))))
	m.Stats.Broadcasts++
	m.Stats.Messages += int64(k)
	m.Stats.BytesMoved += bytes * int64(k)
	start := m.Clock[from]
	cost := float64(rounds) * (m.xferTime(bytes) + m.Params.Overhead)
	cost += m.collectiveFaultDelay(k, bytes)
	done := m.Clock[from] + cost
	m.Clock[from] += float64(rounds) * m.Params.Overhead
	for _, p := range procs {
		if p == from {
			continue
		}
		if done > m.Clock[p] {
			m.Clock[p] = done
		}
		if m.Rec != nil {
			// The tree multicast delivers one logical message per destination
			// — the same k send/recv pairs the concurrent backend's root
			// really transmits.
			m.emit(trace.Send, from, p, start, 0, bytes)
			m.emit(trace.Recv, p, from, done, 0, bytes)
		}
	}
}

// Shift models a collective nearest-neighbor shift among the processors of
// set: every participant sends bytesPerProc to a neighbor. Participants
// advance independently (no global barrier), which matches the pipelined
// behavior of compiled shift communication.
func (m *Machine) Shift(set dist.ProcSet, bytesPerProc int64) {
	procs := set.Procs()
	if len(procs) < 2 {
		return
	}
	m.Stats.Shifts++
	m.Stats.Messages += int64(len(procs))
	m.Stats.BytesMoved += bytesPerProc * int64(len(procs))
	cost := m.Params.Overhead + m.xferTime(bytesPerProc)
	// emitShift records participant i's ring transfer: a send to the next
	// participant and a receive from the previous one — the same (p±1) ring
	// the concurrent backend's workers actually exchange on.
	emitShift := func(i int, depart, arrive float64) {
		k := len(procs)
		m.emit(trace.Send, procs[i], procs[(i+1)%k], depart, 0, bytesPerProc)
		m.emit(trace.Recv, procs[i], procs[(i-1+k)%k], arrive, 0, bytesPerProc)
	}
	if m.Fault != nil {
		// Each participant's message is lost independently; a lost shift
		// stalls only its own receiver-sender pair.
		rto := m.Fault.BaseRTO(m.Params.Latency)
		for i, p := range procs {
			extra := 0.0
			r := rto
			const maxRetries = 16
			for try := 0; try < maxRetries && m.Fault.DropMessage(); try++ {
				m.Stats.Retransmits++
				m.Stats.Messages++
				m.Stats.BytesMoved += bytesPerProc
				extra += r
				r *= 2
			}
			depart := m.Clock[p]
			m.Clock[p] += cost + extra
			if m.Rec != nil {
				emitShift(i, depart, m.Clock[p])
			}
		}
		return
	}
	for i, p := range procs {
		depart := m.Clock[p]
		m.Clock[p] += cost
		if m.Rec != nil {
			emitShift(i, depart, m.Clock[p])
		}
	}
}

// Reduce models a combining tree over set (result available on the whole
// set, i.e. reduce + broadcast of the 8-byte result folded into
// ceil(log2 k) + ceil(log2 k) rounds); all participants synchronize.
func (m *Machine) Reduce(set dist.ProcSet, bytes int64) {
	procs := set.Procs()
	if len(procs) < 2 {
		return
	}
	rounds := 2 * int(math.Ceil(math.Log2(float64(len(procs)))))
	m.Stats.Reductions++
	m.Stats.Messages += int64(rounds)
	m.Stats.BytesMoved += bytes * int64(len(procs))
	// Synchronize: everyone waits for the slowest, then pays the rounds.
	t := 0.0
	for _, p := range procs {
		if m.Clock[p] > t {
			t = m.Clock[p]
		}
	}
	start := t
	t += float64(rounds) * (m.xferTime(bytes) + m.Params.Overhead)
	t += m.collectiveFaultDelay(rounds, bytes)
	for _, p := range procs {
		m.Clock[p] = t
	}
	if m.Rec != nil {
		// One Reduce event per collective, attributed to the root the
		// concurrent backend gathers on (procs[0]); Bytes is the combined
		// contribution of all participants.
		m.emit(trace.Reduce, procs[0], -1, t, t-start, bytes*int64(len(procs)))
	}
}

// TreeMerge models the deterministic combining tree that merges privatized
// reduction partials at loop exit: ceil(log2 k) rounds in which the loser of
// each pair ships its partial row (bytes) to the winner. Unlike Reduce, no
// result broadcast follows — under replicated interpretation every processor
// folds the same partial tables locally, so the merged value is already
// everywhere and the k-1 tree messages only verify agreement. All
// participants synchronize. merged is the number of partial rows combined,
// carried on the emitted Reduce event's Merged field.
func (m *Machine) TreeMerge(set dist.ProcSet, bytes int64, merged int) {
	procs := set.Procs()
	k := len(procs)
	if k < 2 {
		return
	}
	rounds := int(math.Ceil(math.Log2(float64(k))))
	m.Stats.Merges++
	m.Stats.Messages += int64(k - 1)
	m.Stats.BytesMoved += bytes * int64(k-1)
	t := 0.0
	for _, p := range procs {
		if m.Clock[p] > t {
			t = m.Clock[p]
		}
	}
	start := t
	t += float64(rounds) * (m.xferTime(bytes) + m.Params.Overhead)
	t += m.collectiveFaultDelay(k-1, bytes)
	for _, p := range procs {
		m.Clock[p] = t
	}
	if m.Rec != nil && !m.FaultEventsOnly {
		// One Reduce event per merge, at the tree root, stamped with the
		// merged-row count so the trace distinguishes privatized merges from
		// collective reductions.
		tm := t
		if m.Now != nil {
			tm = m.Now()
		}
		m.Rec.Emit(0, trace.Event{
			Time: tm, Dur: t - start, Bytes: bytes * int64(k-1),
			Kind: trace.Reduce, Class: m.attrClass,
			Proc: int32(procs[0]), Peer: -1, Stmt: m.attrStmt, Req: m.attrReq,
			Merged: int32(merged),
		})
	}
}

// AllToAll models a full exchange among set with bytesPerProc leaving each
// participant (e.g. a transpose/redistribution); acts as a barrier.
func (m *Machine) AllToAll(set dist.ProcSet, bytesPerProc int64) {
	procs := set.Procs()
	k := len(procs)
	if k < 2 {
		return
	}
	m.Stats.AllToAlls++
	m.Stats.Messages += int64(k * (k - 1))
	m.Stats.BytesMoved += bytesPerProc * int64(k)
	t := 0.0
	for _, p := range procs {
		if m.Clock[p] > t {
			t = m.Clock[p]
		}
	}
	per := float64(k-1)*(m.Params.Latency+m.Params.Overhead) +
		float64(bytesPerProc)/m.Params.Bandwidth
	t += per
	t += m.collectiveFaultDelay(k*(k-1), bytesPerProc)
	for _, p := range procs {
		m.Clock[p] = t
		if m.Rec != nil {
			// One collective-participation event per processor (Peer = -1, no
			// requirement attribution: the concurrent backend realizes a
			// redistribution with its own barrier protocol, so these events
			// are outside the cross-backend parity set).
			m.emit(trace.Send, p, -1, t, 0, bytesPerProc)
		}
	}
}

// Exchange models moving totalBytes from the owners in src to the
// processors in dst (vectorized general communication): each destination
// receives one aggregated message.
func (m *Machine) Exchange(src, dst dist.ProcSet, totalBytes int64) {
	srcProcs := src.Procs()
	if len(srcProcs) == 0 {
		return
	}
	dstProcs := dst.Procs()
	recv := 0
	for _, p := range dstProcs {
		if !src.Contains(p) {
			recv++
		}
	}
	if recv == 0 {
		return
	}
	per := totalBytes / int64(len(srcProcs))
	if per == 0 {
		per = totalBytes
	}
	m.Stats.Messages += int64(recv)
	m.Stats.BytesMoved += totalBytes
	// Senders pay overhead; receivers synchronize behind the slowest
	// sender plus the wire time.
	depart := 0.0
	for _, p := range srcProcs {
		if m.Clock[p] > depart {
			depart = m.Clock[p]
		}
		m.Clock[p] += m.Params.Overhead
	}
	arrive := depart + m.xferTime(per) + m.collectiveFaultDelay(recv, per)
	i := 0
	for _, p := range dstProcs {
		if src.Contains(p) {
			continue
		}
		if arrive > m.Clock[p] {
			m.Clock[p] = arrive
		}
		if m.Rec != nil {
			// Receiver i is fed by source i%len(srcProcs) — the same
			// round-robin pairing the concurrent backend uses to realize a
			// vectorized general exchange with one message per destination.
			s := srcProcs[i%len(srcProcs)]
			m.emit(trace.Send, s, p, depart, 0, per)
			m.emit(trace.Recv, p, s, arrive, 0, per)
		}
		i++
	}
}

// Checkpoint charges a coordinated checkpoint: every processor synchronizes
// and writes bytesPerProc of local state to stable storage at link speed.
// bytesPerProc[p] is processor p's live state.
func (m *Machine) Checkpoint(bytesPerProc []int64) {
	t := 0.0
	for _, c := range m.Clock {
		if c > t {
			t = c
		}
	}
	m.Stats.Checkpoints++
	for p := range m.Clock {
		var b int64
		if p < len(bytesPerProc) {
			b = bytesPerProc[p]
		}
		m.Stats.CheckpointBytes += b
		m.Clock[p] = t + m.Params.Latency + float64(b)/m.Params.Bandwidth
		if m.Rec != nil {
			m.emit(trace.Checkpoint, p, -1, m.Clock[p], m.Clock[p]-t, b)
		}
	}
}

// Recover charges the restoration of processor p after a fail-stop failure:
// all processors synchronize (coordinated rollback), everyone re-executes
// the work lost since the last checkpoint (lost seconds), and the restarted
// processor refetches refetchBytes of non-locally-recoverable state in msgs
// messages. Replicated private state costs nothing here — that is the
// mapping-dependent term the recovery experiments measure.
func (m *Machine) Recover(p int, lost float64, refetchBytes, msgs int64) {
	t := 0.0
	for _, c := range m.Clock {
		if c > t {
			t = c
		}
	}
	m.Stats.Crashes++
	m.Stats.RecoveryBytes += refetchBytes
	m.Stats.RecoveryMessages += msgs
	if m.Rec != nil {
		m.emit(trace.Fault, p, -1, t, 0, 0)
	}
	t += lost // coordinated re-execution of the lost interval
	for i := range m.Clock {
		m.Clock[i] = t
	}
	if msgs > 0 {
		m.Clock[p] = t + float64(msgs)*(m.Params.Latency+m.Params.Overhead) +
			float64(refetchBytes)/m.Params.Bandwidth
	}
	if m.Rec != nil {
		m.emit(trace.Restart, p, -1, m.Clock[p], lost, refetchBytes)
	}
}

func (s Stats) String() string {
	out := fmt.Sprintf("msgs=%d bytes=%d bcast=%d shift=%d reduce=%d p2p=%d a2a=%d",
		s.Messages, s.BytesMoved, s.Broadcasts, s.Shifts, s.Reductions,
		s.PointToPoint, s.AllToAlls)
	if s.Merges > 0 {
		out += fmt.Sprintf(" merge=%d", s.Merges)
	}
	return out
}

// FaultString renders the fault/recovery counters (empty when no fault
// activity occurred).
func (s Stats) FaultString() string {
	if s.Retransmits == 0 && s.Duplicates == 0 && s.Crashes == 0 &&
		s.Checkpoints == 0 && s.RecoveryBytes == 0 {
		return ""
	}
	return fmt.Sprintf("retrans=%d dup=%d crashes=%d ckpts=%d ckpt_bytes=%d recovery_msgs=%d recovery_bytes=%d",
		s.Retransmits, s.Duplicates, s.Crashes, s.Checkpoints, s.CheckpointBytes,
		s.RecoveryMessages, s.RecoveryBytes)
}
