package machine

import (
	"math"
	"testing"
	"testing/quick"

	"phpf/internal/dist"
	"phpf/internal/fault"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestComputeAll(t *testing.T) {
	g := dist.NewGrid(4)
	m := New(g, SP2())
	m.Compute(dist.AllProcs(g), 1.5)
	for p := 0; p < 4; p++ {
		if !approx(m.Clock[p], 1.5) {
			t.Errorf("clock[%d] = %v", p, m.Clock[p])
		}
	}
	if !approx(m.Time(), 1.5) {
		t.Errorf("time = %v", m.Time())
	}
}

func TestComputeSubset(t *testing.T) {
	g := dist.NewGrid(2, 2)
	m := New(g, SP2())
	row := dist.AllProcs(g).WithDim(0, 1)
	m.Compute(row, 2.0)
	if !approx(m.Time(), 2.0) {
		t.Errorf("time = %v", m.Time())
	}
	if m.Clock[0] != 0 {
		t.Errorf("proc 0 should be idle, clock=%v", m.Clock[0])
	}
}

func TestSendSynchronizesReceiver(t *testing.T) {
	g := dist.NewGrid(2)
	p := SP2()
	m := New(g, p)
	m.ComputeProc(0, 1.0)
	m.Send(0, 1, 800)
	wantArrive := 1.0 + p.Latency + 800/p.Bandwidth
	if !approx(m.Clock[1], wantArrive) {
		t.Errorf("clock[1] = %v, want %v", m.Clock[1], wantArrive)
	}
	if !approx(m.Clock[0], 1.0+p.Overhead) {
		t.Errorf("clock[0] = %v", m.Clock[0])
	}
	if m.Stats.Messages != 1 || m.Stats.BytesMoved != 800 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestSendToSelfFree(t *testing.T) {
	g := dist.NewGrid(2)
	m := New(g, SP2())
	m.Send(1, 1, 100)
	if m.Clock[1] != 0 {
		t.Errorf("self-send should not advance clock: %v", m.Clock[1])
	}
}

func TestSendNoBackwardsTime(t *testing.T) {
	g := dist.NewGrid(2)
	m := New(g, SP2())
	m.ComputeProc(1, 100.0) // receiver far ahead
	m.Send(0, 1, 8)
	if m.Clock[1] != 100.0 {
		t.Errorf("receiver clock moved backwards: %v", m.Clock[1])
	}
}

func TestMulticastRounds(t *testing.T) {
	g := dist.NewGrid(8)
	p := SP2()
	m := New(g, p)
	m.Multicast(0, dist.AllProcs(g), 8)
	// 7 destinations → ceil(log2 8) = 3 rounds.
	want := 3 * (p.Latency + 8/p.Bandwidth + p.Overhead)
	if !approx(m.Clock[7], want) {
		t.Errorf("clock[7] = %v, want %v", m.Clock[7], want)
	}
	if m.Stats.Broadcasts != 1 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestReduceSynchronizesAll(t *testing.T) {
	g := dist.NewGrid(4)
	p := SP2()
	m := New(g, p)
	m.ComputeProc(2, 5.0)
	m.Reduce(dist.AllProcs(g), 8)
	want := 5.0 + 4*(p.Latency+8/p.Bandwidth+p.Overhead) // 2*log2(4) rounds
	for q := 0; q < 4; q++ {
		if !approx(m.Clock[q], want) {
			t.Errorf("clock[%d] = %v, want %v", q, m.Clock[q], want)
		}
	}
}

func TestShiftIndependentClocks(t *testing.T) {
	g := dist.NewGrid(4)
	p := SP2()
	m := New(g, p)
	m.ComputeProc(0, 3.0)
	m.Shift(dist.AllProcs(g), 80)
	cost := p.Overhead + p.Latency + 80/p.Bandwidth
	if !approx(m.Clock[0], 3.0+cost) || !approx(m.Clock[1], cost) {
		t.Errorf("clocks = %v", m.Clock)
	}
}

func TestShiftSingleProcFree(t *testing.T) {
	g := dist.NewGrid(1)
	m := New(g, SP2())
	m.Shift(dist.AllProcs(g), 80)
	if m.Clock[0] != 0 || m.Stats.Shifts != 0 {
		t.Error("single-processor shift should be free")
	}
}

func TestAllToAllBarrier(t *testing.T) {
	g := dist.NewGrid(4)
	m := New(g, SP2())
	m.ComputeProc(3, 2.0)
	m.AllToAll(dist.AllProcs(g), 1000)
	base := m.Clock[0]
	for q := 1; q < 4; q++ {
		if !approx(m.Clock[q], base) {
			t.Errorf("all-to-all should synchronize: %v", m.Clock)
		}
	}
	if base <= 2.0 {
		t.Errorf("all-to-all cost missing: %v", base)
	}
}

func TestExchange(t *testing.T) {
	g := dist.NewGrid(4)
	p := SP2()
	m := New(g, p)
	src := dist.AllProcs(g).WithDim(0, 0)
	m.Exchange(src, dist.AllProcs(g), 4000)
	// Destinations 1..3 synchronize behind src + wire time of 4000 bytes.
	want := p.Latency + 4000/p.Bandwidth
	for q := 1; q < 4; q++ {
		if !approx(m.Clock[q], want) {
			t.Errorf("clock[%d] = %v, want %v", q, m.Clock[q], want)
		}
	}
	// Receivers already holding the data are not charged.
	m2 := New(g, p)
	m2.Exchange(dist.AllProcs(g), dist.AllProcs(g), 4000)
	if m2.Time() != 0 {
		t.Error("exchange into owners should be free")
	}
}

// Property: time never decreases under any operation sequence.
func TestTimeMonotoneProperty(t *testing.T) {
	g := dist.NewGrid(4)
	check := func(ops []uint8) bool {
		m := New(g, SP2())
		prev := 0.0
		for _, op := range ops {
			switch op % 5 {
			case 0:
				m.Compute(dist.AllProcs(g), float64(op)*1e-6)
			case 1:
				m.Send(int(op)%4, int(op/4)%4, int64(op))
			case 2:
				m.Multicast(int(op)%4, dist.AllProcs(g), int64(op))
			case 3:
				m.Reduce(dist.AllProcs(g), 8)
			case 4:
				m.Shift(dist.AllProcs(g), int64(op))
			}
			now := m.Time()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: cost is monotone in message size.
func TestCostMonotoneInBytesProperty(t *testing.T) {
	g := dist.NewGrid(2)
	check := func(b1, b2 uint16) bool {
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		m1 := New(g, SP2())
		m1.Send(0, 1, int64(b1))
		m2 := New(g, SP2())
		m2.Send(0, 1, int64(b2))
		return m1.Time() <= m2.Time()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Params validation

// TestParamsValidate: the constructor-time validation rejects parameter sets
// whose costs would otherwise be NaN or Inf.
func TestParamsValidate(t *testing.T) {
	if err := SP2().Validate(); err != nil {
		t.Fatalf("SP2 params rejected: %v", err)
	}
	mk := func(f func(*Params)) Params {
		p := SP2()
		f(&p)
		return p
	}
	bad := map[string]Params{
		"zero latency":    mk(func(p *Params) { p.Latency = 0 }),
		"neg latency":     mk(func(p *Params) { p.Latency = -1e-6 }),
		"zero bandwidth":  mk(func(p *Params) { p.Bandwidth = 0 }),
		"neg bandwidth":   mk(func(p *Params) { p.Bandwidth = -1 }),
		"zero floptime":   mk(func(p *Params) { p.FlopTime = 0 }),
		"zero elem bytes": mk(func(p *Params) { p.ElemBytes = 0 }),
		"neg overhead":    mk(func(p *Params) { p.Overhead = -1e-9 }),
		"neg guard":       mk(func(p *Params) { p.GuardTime = -1e-9 }),
		"nan latency":     mk(func(p *Params) { p.Latency = math.NaN() }),
		"inf bandwidth":   mk(func(p *Params) { p.Bandwidth = math.Inf(1) }),
		"nan floptime":    mk(func(p *Params) { p.FlopTime = math.NaN() }),
	}
	for name, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", name, p)
		}
	}
	// Zero overhead and guard time are legitimate (idealized network).
	ok := mk(func(p *Params) { p.Overhead = 0; p.GuardTime = 0 })
	if err := ok.Validate(); err != nil {
		t.Errorf("zero overhead/guard rejected: %v", err)
	}
}

// TestValidatePreventsNaNPropagation: the exact failure mode validation
// guards against — a zero bandwidth or NaN latency turns a single Send into
// a NaN/Inf clock that silently poisons the whole run.
func TestValidatePreventsNaNPropagation(t *testing.T) {
	g := dist.NewGrid(2)

	p := SP2()
	p.Bandwidth = 0 // Validate rejects this...
	if err := p.Validate(); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	m := New(g, p) // ...because without validation the time becomes +Inf:
	m.Send(0, 1, 8)
	if !math.IsInf(m.Time(), 1) {
		t.Fatalf("expected Inf time under zero bandwidth, got %v", m.Time())
	}

	p = SP2()
	p.Latency = math.NaN()
	if err := p.Validate(); err == nil {
		t.Fatal("NaN latency accepted")
	}
	m = New(g, p)
	m.Send(0, 1, 8)
	// The NaN arrival time fails every comparison, so the receiver is
	// silently never synchronized — the message vanishes from the cost
	// model without any error surfacing.
	if m.Clock[1] != 0 {
		t.Fatalf("expected silently-lost arrival under NaN latency, clock[1]=%v", m.Clock[1])
	}
}

// ---------------------------------------------------------------------------
// Fault injection

func testInjector(t *testing.T, plan *fault.Plan) *fault.Injector {
	t.Helper()
	in := fault.NewInjector(plan)
	if in == nil {
		t.Fatal("plan should be active")
	}
	return in
}

// TestSendRetransmitCharged: a certain-loss-free send and a lossy send
// differ by the retransmission timeout, and the retry is counted.
func TestSendRetransmitCharged(t *testing.T) {
	g := dist.NewGrid(2)
	p := SP2()

	base := New(g, p)
	base.Send(0, 1, 800)

	// Find a seed whose first draw drops (rate 0.5 ⇒ a few tries suffice).
	for seed := int64(0); seed < 64; seed++ {
		m := New(g, p)
		m.Fault = testInjector(t, &fault.Plan{Seed: seed, LossRate: 0.5})
		m.Send(0, 1, 800)
		if m.Stats.Retransmits > 0 {
			if m.Clock[1] <= base.Clock[1] {
				t.Errorf("retransmitted send not slower: %v vs %v", m.Clock[1], base.Clock[1])
			}
			if m.Stats.BytesMoved <= base.Stats.BytesMoved {
				t.Errorf("retransmission bytes not counted: %+v", m.Stats)
			}
			return
		}
	}
	t.Fatal("no seed in [0,64) dropped the first message at rate 0.5")
}

// TestZeroFaultIdentical: an injector with rate 0 never perturbs costs, and
// a nil injector is the exact seed arithmetic.
func TestZeroFaultIdentical(t *testing.T) {
	g := dist.NewGrid(4)
	p := SP2()
	run := func(m *Machine) {
		m.Compute(dist.AllProcs(g), 1e-3)
		m.Send(0, 1, 800)
		m.Multicast(0, dist.AllProcs(g), 64)
		m.Shift(dist.AllProcs(g), 80)
		m.Reduce(dist.AllProcs(g), 8)
		m.AllToAll(dist.AllProcs(g), 1000)
	}
	a := New(g, p)
	run(a)
	b := New(g, p)
	b.Fault = fault.NewInjector(&fault.Plan{Seed: 9, LossRate: 0}) // nil: inactive
	if b.Fault != nil {
		t.Fatal("inactive plan must give nil injector")
	}
	run(b)
	for q := range a.Clock {
		if a.Clock[q] != b.Clock[q] {
			t.Fatalf("clock[%d]: %v vs %v", q, a.Clock[q], b.Clock[q])
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestSlowdownFactor: a slowed processor accrues proportionally more time.
func TestSlowdownFactor(t *testing.T) {
	g := dist.NewGrid(2)
	m := New(g, SP2())
	m.Fault = testInjector(t, &fault.Plan{
		Slowdowns: []fault.Slowdown{{Proc: 1, Factor: 3}},
	})
	m.Compute(dist.AllProcs(g), 2.0)
	if !approx(m.Clock[0], 2.0) || !approx(m.Clock[1], 6.0) {
		t.Errorf("clocks = %v, want [2 6]", m.Clock)
	}
	m.ComputeProc(1, 1.0)
	if !approx(m.Clock[1], 9.0) {
		t.Errorf("ComputeProc not slowed: %v", m.Clock[1])
	}
}

// TestCheckpointAndRecover: checkpoint synchronizes and charges the state
// write; recovery re-executes the lost interval everywhere and charges the
// refetch only to the restarted processor.
func TestCheckpointAndRecover(t *testing.T) {
	g := dist.NewGrid(2)
	p := SP2()
	m := New(g, p)
	m.ComputeProc(0, 1.0)
	m.Checkpoint([]int64{3500, 3500})
	want := 1.0 + p.Latency + 3500/p.Bandwidth
	if !approx(m.Clock[0], want) || !approx(m.Clock[1], want) {
		t.Fatalf("checkpoint clocks = %v, want %v", m.Clock, want)
	}
	if m.Stats.Checkpoints != 1 || m.Stats.CheckpointBytes != 7000 {
		t.Fatalf("checkpoint stats = %+v", m.Stats)
	}

	before := m.Time()
	m.Recover(1, 0.25, 8000, 2)
	if m.Stats.Crashes != 1 || m.Stats.RecoveryBytes != 8000 || m.Stats.RecoveryMessages != 2 {
		t.Fatalf("recovery stats = %+v", m.Stats)
	}
	if !approx(m.Clock[0], before+0.25) {
		t.Errorf("survivor clock = %v, want %v", m.Clock[0], before+0.25)
	}
	wantCrashed := before + 0.25 + 2*(p.Latency+p.Overhead) + 8000/p.Bandwidth
	if !approx(m.Clock[1], wantCrashed) {
		t.Errorf("crashed clock = %v, want %v", m.Clock[1], wantCrashed)
	}

	// Local-only recovery (replicated state): no refetch charge.
	m2 := New(g, p)
	m2.ComputeProc(0, 1.0)
	t0 := m2.Time()
	m2.Recover(1, 0.5, 0, 0)
	if !approx(m2.Clock[1], t0+0.5) {
		t.Errorf("local recovery should not charge refetch: %v", m2.Clock[1])
	}
}
