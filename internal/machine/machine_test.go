package machine

import (
	"math"
	"testing"
	"testing/quick"

	"phpf/internal/dist"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestComputeAll(t *testing.T) {
	g := dist.NewGrid(4)
	m := New(g, SP2())
	m.Compute(dist.AllProcs(g), 1.5)
	for p := 0; p < 4; p++ {
		if !approx(m.Clock[p], 1.5) {
			t.Errorf("clock[%d] = %v", p, m.Clock[p])
		}
	}
	if !approx(m.Time(), 1.5) {
		t.Errorf("time = %v", m.Time())
	}
}

func TestComputeSubset(t *testing.T) {
	g := dist.NewGrid(2, 2)
	m := New(g, SP2())
	row := dist.AllProcs(g).WithDim(0, 1)
	m.Compute(row, 2.0)
	if !approx(m.Time(), 2.0) {
		t.Errorf("time = %v", m.Time())
	}
	if m.Clock[0] != 0 {
		t.Errorf("proc 0 should be idle, clock=%v", m.Clock[0])
	}
}

func TestSendSynchronizesReceiver(t *testing.T) {
	g := dist.NewGrid(2)
	p := SP2()
	m := New(g, p)
	m.ComputeProc(0, 1.0)
	m.Send(0, 1, 800)
	wantArrive := 1.0 + p.Latency + 800/p.Bandwidth
	if !approx(m.Clock[1], wantArrive) {
		t.Errorf("clock[1] = %v, want %v", m.Clock[1], wantArrive)
	}
	if !approx(m.Clock[0], 1.0+p.Overhead) {
		t.Errorf("clock[0] = %v", m.Clock[0])
	}
	if m.Stats.Messages != 1 || m.Stats.BytesMoved != 800 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestSendToSelfFree(t *testing.T) {
	g := dist.NewGrid(2)
	m := New(g, SP2())
	m.Send(1, 1, 100)
	if m.Clock[1] != 0 {
		t.Errorf("self-send should not advance clock: %v", m.Clock[1])
	}
}

func TestSendNoBackwardsTime(t *testing.T) {
	g := dist.NewGrid(2)
	m := New(g, SP2())
	m.ComputeProc(1, 100.0) // receiver far ahead
	m.Send(0, 1, 8)
	if m.Clock[1] != 100.0 {
		t.Errorf("receiver clock moved backwards: %v", m.Clock[1])
	}
}

func TestMulticastRounds(t *testing.T) {
	g := dist.NewGrid(8)
	p := SP2()
	m := New(g, p)
	m.Multicast(0, dist.AllProcs(g), 8)
	// 7 destinations → ceil(log2 8) = 3 rounds.
	want := 3 * (p.Latency + 8/p.Bandwidth + p.Overhead)
	if !approx(m.Clock[7], want) {
		t.Errorf("clock[7] = %v, want %v", m.Clock[7], want)
	}
	if m.Stats.Broadcasts != 1 {
		t.Errorf("stats = %+v", m.Stats)
	}
}

func TestReduceSynchronizesAll(t *testing.T) {
	g := dist.NewGrid(4)
	p := SP2()
	m := New(g, p)
	m.ComputeProc(2, 5.0)
	m.Reduce(dist.AllProcs(g), 8)
	want := 5.0 + 4*(p.Latency+8/p.Bandwidth+p.Overhead) // 2*log2(4) rounds
	for q := 0; q < 4; q++ {
		if !approx(m.Clock[q], want) {
			t.Errorf("clock[%d] = %v, want %v", q, m.Clock[q], want)
		}
	}
}

func TestShiftIndependentClocks(t *testing.T) {
	g := dist.NewGrid(4)
	p := SP2()
	m := New(g, p)
	m.ComputeProc(0, 3.0)
	m.Shift(dist.AllProcs(g), 80)
	cost := p.Overhead + p.Latency + 80/p.Bandwidth
	if !approx(m.Clock[0], 3.0+cost) || !approx(m.Clock[1], cost) {
		t.Errorf("clocks = %v", m.Clock)
	}
}

func TestShiftSingleProcFree(t *testing.T) {
	g := dist.NewGrid(1)
	m := New(g, SP2())
	m.Shift(dist.AllProcs(g), 80)
	if m.Clock[0] != 0 || m.Stats.Shifts != 0 {
		t.Error("single-processor shift should be free")
	}
}

func TestAllToAllBarrier(t *testing.T) {
	g := dist.NewGrid(4)
	m := New(g, SP2())
	m.ComputeProc(3, 2.0)
	m.AllToAll(dist.AllProcs(g), 1000)
	base := m.Clock[0]
	for q := 1; q < 4; q++ {
		if !approx(m.Clock[q], base) {
			t.Errorf("all-to-all should synchronize: %v", m.Clock)
		}
	}
	if base <= 2.0 {
		t.Errorf("all-to-all cost missing: %v", base)
	}
}

func TestExchange(t *testing.T) {
	g := dist.NewGrid(4)
	p := SP2()
	m := New(g, p)
	src := dist.AllProcs(g).WithDim(0, 0)
	m.Exchange(src, dist.AllProcs(g), 4000)
	// Destinations 1..3 synchronize behind src + wire time of 4000 bytes.
	want := p.Latency + 4000/p.Bandwidth
	for q := 1; q < 4; q++ {
		if !approx(m.Clock[q], want) {
			t.Errorf("clock[%d] = %v, want %v", q, m.Clock[q], want)
		}
	}
	// Receivers already holding the data are not charged.
	m2 := New(g, p)
	m2.Exchange(dist.AllProcs(g), dist.AllProcs(g), 4000)
	if m2.Time() != 0 {
		t.Error("exchange into owners should be free")
	}
}

// Property: time never decreases under any operation sequence.
func TestTimeMonotoneProperty(t *testing.T) {
	g := dist.NewGrid(4)
	check := func(ops []uint8) bool {
		m := New(g, SP2())
		prev := 0.0
		for _, op := range ops {
			switch op % 5 {
			case 0:
				m.Compute(dist.AllProcs(g), float64(op)*1e-6)
			case 1:
				m.Send(int(op)%4, int(op/4)%4, int64(op))
			case 2:
				m.Multicast(int(op)%4, dist.AllProcs(g), int64(op))
			case 3:
				m.Reduce(dist.AllProcs(g), 8)
			case 4:
				m.Shift(dist.AllProcs(g), int64(op))
			}
			now := m.Time()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: cost is monotone in message size.
func TestCostMonotoneInBytesProperty(t *testing.T) {
	g := dist.NewGrid(2)
	check := func(b1, b2 uint16) bool {
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		m1 := New(g, SP2())
		m1.Send(0, 1, int64(b1))
		m2 := New(g, SP2())
		m2.Send(0, 1, int64(b2))
		return m1.Time() <= m2.Time()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
