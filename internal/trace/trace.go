// Package trace is the runtime observability layer shared by both execution
// backends: a low-overhead recorder of typed execution events (compute,
// message send/receive, waits, reductions, checkpoints, restarts, faults),
// each carrying processor, timestamp, byte count, peer, statement and
// communication-class attribution. The sequential simulator stamps simulated
// time; the concurrent executor stamps wall time — so the two traces are
// structurally comparable event for event (the differential oracle checks
// exactly that), while their time axes mean different things.
//
// Design constraints, in order:
//
//   - Disabled tracing costs nothing: a nil *Recorder is a valid recorder
//     whose methods are no-ops, so every emission site is a nil check and
//     the event path allocates zero bytes (benchmark-guarded).
//   - Enabled tracing is bounded: events land in fixed-capacity per-shard
//     ring buffers (newest win) with optional 1-in-N sampling; the derived
//     counters (per-class totals, the P×P communication matrix) are exact
//     regardless of ring capacity or sampling.
//   - Concurrent emission is race-free: each worker goroutine owns one
//     shard's ring and per-statement map outright, while the shared
//     counters are atomics — so the concurrent backend can trace under
//     -race without locks on the hot path.
package trace

import (
	"sort"
	"sync/atomic"

	"phpf/internal/dist"
)

// Kind is the type of one traced event.
type Kind uint8

const (
	// Compute is a computation charge on one processor.
	Compute Kind = iota
	// Send is one message leaving a processor.
	Send
	// Recv is one message arriving at a processor.
	Recv
	// Wait is time a processor spent blocked on a peer (concurrent backend).
	Wait
	// Reduce is one global reduction combine (one event per collective).
	Reduce
	// Checkpoint is one processor's share of a coordinated checkpoint.
	Checkpoint
	// Restart is the recovery of a crashed processor (Bytes = refetched
	// state, Dur = re-executed interval).
	Restart
	// Fault is an injected fault taking effect (a dropped or duplicated
	// transmission, or the crash itself).
	Fault

	nkinds
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Send:
		return "send"
	case Recv:
		return "recv"
	case Wait:
		return "wait"
	case Reduce:
		return "reduce"
	case Checkpoint:
		return "checkpoint"
	case Restart:
		return "restart"
	case Fault:
		return "fault"
	}
	return "?"
}

// nclasses covers dist.CommNone..dist.CommGeneral.
const nclasses = int(dist.CommGeneral) + 1

// Event is one traced runtime event. It is a plain value — emission never
// allocates — and negative Peer/Stmt/Req mean "not applicable".
type Event struct {
	// Time is the event timestamp in seconds: simulated time from the
	// simulator, wall time since run start from the concurrent executor.
	Time float64
	// Dur is the event's duration in the same unit (0 = instant).
	Dur float64
	// Bytes is the payload or state size the event moved.
	Bytes int64
	// Kind is the event type.
	Kind Kind
	// Class is the communication class of the planned requirement the event
	// realizes (CommNone when not a planned communication).
	Class dist.CommClass
	// Proc is the processor the event happened on (-1 = the machine).
	Proc int32
	// Peer is the other endpoint of a message (-1 = none/collective).
	Peer int32
	// Stmt is the source statement ID the event is attributed to (-1 = none).
	Stmt int32
	// Req is the communication-plan requirement ID (-1 = none).
	Req int32
	// Count is the number of planned messages this event represents: the
	// concurrent executor coalesces contiguous element transfers for one
	// (source, destination, statement) into a single physical message, and
	// the flush emits one event with Count = batch length and Bytes = the
	// aggregate payload. Zero or one means an unbatched event. The exact
	// counters treat the event as Count messages, so per-class totals and
	// the communication matrix stay identical to the simulator's
	// per-instance emission.
	Count int32
	// Merged is the number of private partial rows a privatized-reduction
	// tree merge combined (Reduce events only; 0 for collective reductions).
	// It is carried separately from Count so merge events never perturb the
	// planned-message accounting above.
	Merged int32
}

// Options configures a Recorder.
type Options struct {
	// Capacity is the per-shard ring capacity in events
	// (0 = DefaultCapacity).
	Capacity int
	// SampleEvery keeps one of every N events in the ring (0 or 1 = keep
	// all). Counters and the communication matrix stay exact either way.
	SampleEvery int
}

// DefaultCapacity is the default per-shard ring capacity.
const DefaultCapacity = 1 << 16

// shard is one emitter's private event store. The ring, seen counter, and
// per-statement aggregation are owned by a single goroutine; cross-shard
// reads happen only after the emitting goroutines are joined.
type shard struct {
	seen int64 // events emitted to this shard (pre-sampling)
	head int   // next overwrite position once the ring is full
	ring []Event
	// stmt aggregates per-statement planned communication (Send events).
	stmt map[int32]*StmtComm

	_ [64]byte // keep adjacent shards off one cache line
}

// StmtComm is one statement's planned-communication histogram: messages and
// bytes sent, split by communication class.
type StmtComm struct {
	Stmt  int32
	Msgs  [nclasses]int64
	Bytes [nclasses]int64
}

// TotalMsgs sums the per-class message counts.
func (s *StmtComm) TotalMsgs() int64 {
	var n int64
	for _, m := range s.Msgs {
		n += m
	}
	return n
}

// TotalBytes sums the per-class byte counts.
func (s *StmtComm) TotalBytes() int64 {
	var n int64
	for _, b := range s.Bytes {
		n += b
	}
	return n
}

// Recorder collects events from one run. The zero value of the pointer type
// (nil) is a valid, disabled recorder: every method is nil-safe and the
// event path performs no work and no allocation.
type Recorder struct {
	nprocs   int
	capacity int
	sample   int64
	labels   map[int32]string

	shards []shard

	// Exact counters, independent of ring capacity and sampling. Updated
	// with atomics so any goroutine may read them at any time.
	kindCnt   [nkinds]atomic.Int64
	classMsgs [nclasses]atomic.Int64
	classByte [nclasses]atomic.Int64
	// matMsgs/matBytes are the P×P communication matrix (row-major,
	// from*nprocs+to), counting planned point-to-point deliveries.
	matMsgs  []atomic.Int64
	matBytes []atomic.Int64
	// merged is the exact total of Event.Merged across Reduce events — the
	// number of partial rows privatized tree merges combined.
	merged atomic.Int64
}

// New creates a recorder for nprocs processors with nshards independent
// emitters (the simulator uses one shard; the concurrent executor one per
// worker). nshards is clamped to at least 1.
func New(nprocs, nshards int, o Options) *Recorder {
	if nprocs < 1 {
		nprocs = 1
	}
	if nshards < 1 {
		nshards = 1
	}
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	sample := int64(o.SampleEvery)
	if sample < 1 {
		sample = 1
	}
	return &Recorder{
		nprocs:   nprocs,
		capacity: capacity,
		sample:   sample,
		shards:   make([]shard, nshards),
		matMsgs:  make([]atomic.Int64, nprocs*nprocs),
		matBytes: make([]atomic.Int64, nprocs*nprocs),
	}
}

// NProcs returns the processor count the recorder was sized for.
func (r *Recorder) NProcs() int {
	if r == nil {
		return 0
	}
	return r.nprocs
}

// Enabled reports whether the recorder collects anything.
func (r *Recorder) Enabled() bool { return r != nil }

// SetLabels installs human-readable statement labels (statement ID → label)
// used by the formatters and the Chrome exporter. Call before the run.
func (r *Recorder) SetLabels(labels map[int]string) {
	if r == nil {
		return
	}
	r.labels = make(map[int32]string, len(labels))
	for id, l := range labels {
		r.labels[int32(id)] = l
	}
}

// Label returns the label of a statement ID ("" when unknown).
func (r *Recorder) Label(stmt int32) string {
	if r == nil {
		return ""
	}
	return r.labels[stmt]
}

// Emit records one event into the given shard. Only one goroutine may emit
// into a shard; distinct shards may emit concurrently. A nil recorder
// ignores the event at zero cost.
func (r *Recorder) Emit(sh int, e Event) {
	if r == nil {
		return
	}
	s := &r.shards[sh]
	s.seen++
	// A batched event stands for Count planned messages; its Bytes already
	// carry the aggregate payload, so only the message counts scale.
	n := int64(e.Count)
	if n <= 0 {
		n = 1
	}
	r.kindCnt[e.Kind].Add(n)
	if e.Kind == Reduce && e.Merged > 0 {
		r.merged.Add(int64(e.Merged))
	}
	if e.Kind == Send && e.Req >= 0 {
		// Exact planned-communication accounting: per-class counters, the
		// pairwise matrix, and the per-statement histogram.
		cl := int(e.Class)
		r.classMsgs[cl].Add(n)
		r.classByte[cl].Add(e.Bytes)
		if e.Proc >= 0 && e.Peer >= 0 && int(e.Proc) < r.nprocs && int(e.Peer) < r.nprocs {
			i := int(e.Proc)*r.nprocs + int(e.Peer)
			r.matMsgs[i].Add(n)
			r.matBytes[i].Add(e.Bytes)
		}
		if e.Stmt >= 0 {
			if s.stmt == nil {
				s.stmt = map[int32]*StmtComm{}
			}
			sc := s.stmt[e.Stmt]
			if sc == nil {
				sc = &StmtComm{Stmt: e.Stmt}
				s.stmt[e.Stmt] = sc
			}
			sc.Msgs[cl] += n
			sc.Bytes[cl] += e.Bytes
		}
	}
	if r.sample > 1 && (s.seen-1)%r.sample != 0 {
		return
	}
	if len(s.ring) < r.capacity {
		s.ring = append(s.ring, e)
		return
	}
	s.ring[s.head] = e
	s.head++
	if s.head == r.capacity {
		s.head = 0
	}
}

// Seen returns the total number of events emitted (before sampling and ring
// eviction).
func (r *Recorder) Seen() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for i := range r.shards {
		n += r.shards[i].seen
	}
	return n
}

// Len returns the number of events currently stored in the rings.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		n += len(r.shards[i].ring)
	}
	return n
}

// KindCount returns the exact number of events of kind k emitted.
func (r *Recorder) KindCount(k Kind) int64 {
	if r == nil {
		return 0
	}
	return r.kindCnt[k].Load()
}

// MergedCount returns the exact total number of partial rows privatized
// tree merges combined (the sum of Event.Merged over Reduce events).
func (r *Recorder) MergedCount() int64 {
	if r == nil {
		return 0
	}
	return r.merged.Load()
}

// Events returns the stored events: each shard's ring in chronological
// order, shards concatenated in index order (the simulator's single shard
// is therefore the exact program-order stream). Call only after the
// emitting goroutines have finished.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		if len(s.ring) < r.capacity {
			out = append(out, s.ring...)
			continue
		}
		out = append(out, s.ring[s.head:]...)
		out = append(out, s.ring[:s.head]...)
	}
	return out
}

// Timeline returns the stored events of one processor, sorted by time
// (stable, so same-time events keep emission order within a shard).
func (r *Recorder) Timeline(proc int) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, e := range r.Events() {
		if int(e.Proc) == proc {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// StmtComms returns the merged per-statement planned-communication
// histograms, sorted by statement ID. Call only after the emitting
// goroutines have finished.
func (r *Recorder) StmtComms() []StmtComm {
	if r == nil {
		return nil
	}
	merged := map[int32]*StmtComm{}
	for i := range r.shards {
		for id, sc := range r.shards[i].stmt {
			m := merged[id]
			if m == nil {
				m = &StmtComm{Stmt: id}
				merged[id] = m
			}
			for c := 0; c < nclasses; c++ {
				m.Msgs[c] += sc.Msgs[c]
				m.Bytes[c] += sc.Bytes[c]
			}
		}
	}
	out := make([]StmtComm, 0, len(merged))
	for _, m := range merged {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stmt < out[j].Stmt })
	return out
}
