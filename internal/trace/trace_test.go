package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"phpf/internal/dist"
)

// send builds a planned point-to-point Send event.
func send(t float64, from, to int32, bytes int64, class dist.CommClass, stmt, req int32) Event {
	return Event{Time: t, Kind: Send, Proc: from, Peer: to, Bytes: bytes, Class: class, Stmt: stmt, Req: req}
}

// TestNilRecorder pins the disabled-tracing contract: a nil *Recorder is a
// valid recorder whose every method is a no-op.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Emit(0, send(1, 0, 1, 8, dist.CommShift, 3, 0))
	r.SetLabels(map[int]string{1: "x"})
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.NProcs() != 0 || r.Seen() != 0 || r.Len() != 0 || r.KindCount(Send) != 0 {
		t.Error("nil recorder reports activity")
	}
	if r.Events() != nil || r.Timeline(0) != nil || r.StmtComms() != nil {
		t.Error("nil recorder returns events")
	}
	if r.SendsByClass() != nil || r.CommMatrix() != nil {
		t.Error("nil recorder returns views")
	}
	if r.Label(3) != "" || r.FormatEvents() != "" || r.Summary() != "" {
		t.Error("nil recorder renders text")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var f struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil Chrome trace is not JSON: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Errorf("nil Chrome trace has %d events", len(f.TraceEvents))
	}
}

// TestZeroAllocationDisabled guards the acceptance criterion directly:
// emitting through a nil recorder allocates nothing.
func TestZeroAllocationDisabled(t *testing.T) {
	var r *Recorder
	e := send(1, 0, 1, 8, dist.CommShift, 3, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(0, e)
	})
	if allocs != 0 {
		t.Fatalf("disabled event path allocates %v bytes/op, want 0", allocs)
	}
}

// BenchmarkEmitDisabled is the standing benchmark guard for the same
// criterion; run with -benchmem to see 0 allocs/op.
func BenchmarkEmitDisabled(b *testing.B) {
	var r *Recorder
	e := send(1, 0, 1, 8, dist.CommShift, 3, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(0, e)
	}
}

// BenchmarkEmitEnabled measures the enabled hot path (steady state: ring
// full, statement entry present — the per-event work is counter updates and
// one ring store).
func BenchmarkEmitEnabled(b *testing.B) {
	r := New(4, 1, Options{Capacity: 1024})
	e := send(1, 0, 1, 8, dist.CommShift, 3, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(0, e)
	}
}

// TestRingWrapAround checks that a full ring keeps the newest events and
// Events() returns them oldest-first.
func TestRingWrapAround(t *testing.T) {
	r := New(2, 1, Options{Capacity: 4})
	for i := 0; i < 10; i++ {
		r.Emit(0, Event{Time: float64(i), Kind: Compute, Proc: 0, Peer: -1, Stmt: -1, Req: -1})
	}
	if r.Seen() != 10 {
		t.Fatalf("Seen = %d, want 10", r.Seen())
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	evs := r.Events()
	want := []float64{6, 7, 8, 9}
	for i, e := range evs {
		if e.Time != want[i] {
			t.Fatalf("event %d has time %v, want %v (events: %v)", i, e.Time, want[i], evs)
		}
	}
	// Exact counters are unaffected by eviction.
	if r.KindCount(Compute) != 10 {
		t.Errorf("KindCount(Compute) = %d, want 10", r.KindCount(Compute))
	}
}

// TestSamplingBounds checks 1-in-N sampling: the ring stores ceil(seen/N)
// events while every exact counter still sees all of them.
func TestSamplingBounds(t *testing.T) {
	const n, every = 103, 10
	r := New(2, 1, Options{SampleEvery: every})
	for i := 0; i < n; i++ {
		r.Emit(0, send(float64(i), 0, 1, 4, dist.CommShift, 7, 2))
	}
	if r.Seen() != n {
		t.Fatalf("Seen = %d, want %d", r.Seen(), n)
	}
	wantStored := (n + every - 1) / every
	if r.Len() != wantStored {
		t.Fatalf("Len = %d, want ceil(%d/%d) = %d", r.Len(), n, every, wantStored)
	}
	if got := r.KindCount(Send); got != n {
		t.Errorf("KindCount(Send) = %d, want %d", got, n)
	}
	cc := r.SendsByClass()[dist.CommShift]
	if cc.Msgs != n || cc.Bytes != int64(4*n) {
		t.Errorf("class shift = %d msgs/%d bytes, want %d/%d", cc.Msgs, cc.Bytes, n, 4*n)
	}
	m := r.CommMatrix()
	if m.Msgs[0*2+1] != n || m.Bytes[0*2+1] != int64(4*n) {
		t.Errorf("matrix[0->1] = %d/%d, want %d/%d", m.Msgs[1], m.Bytes[1], n, 4*n)
	}
	scs := r.StmtComms()
	if len(scs) != 1 || scs[0].Stmt != 7 || scs[0].TotalMsgs() != n || scs[0].TotalBytes() != int64(4*n) {
		t.Errorf("stmt histogram %+v, want stmt 7 with %d msgs/%d bytes", scs, n, 4*n)
	}
}

// TestCountersSelective checks that only planned Sends (Req >= 0) reach the
// class counters, matrix, and histograms — Recvs, collectives (Peer = -1),
// and protocol traffic stay out.
func TestCountersSelective(t *testing.T) {
	r := New(2, 1, Options{})
	r.Emit(0, send(1, 0, 1, 8, dist.CommShift, 3, 5))  // counted
	r.Emit(0, send(2, 0, 1, 8, dist.CommShift, 3, -1)) // req < 0: ring only
	r.Emit(0, Event{Time: 3, Kind: Recv, Proc: 1, Peer: 0, Bytes: 8, Class: dist.CommShift, Stmt: 3, Req: 5})
	r.Emit(0, Event{Time: 4, Kind: Send, Proc: 0, Peer: -1, Bytes: 8, Class: dist.CommGeneral, Stmt: 3, Req: 6}) // collective: class yes, matrix no
	if got := r.SendsByClass()[dist.CommShift].Msgs; got != 1 {
		t.Errorf("shift msgs = %d, want 1", got)
	}
	if got := r.SendsByClass()[dist.CommGeneral].Msgs; got != 1 {
		t.Errorf("general msgs = %d, want 1", got)
	}
	if got := r.CommMatrix().Total(); got.Msgs != 1 || got.Bytes != 8 {
		t.Errorf("matrix total = %+v, want 1 msg/8 bytes", got)
	}
	if got := r.StmtComms()[0].TotalMsgs(); got != 2 {
		t.Errorf("stmt msgs = %d, want 2 (planned sends only)", got)
	}
	if r.Len() != 4 {
		t.Errorf("ring stores %d events, want all 4", r.Len())
	}
}

// TestConcurrentShards checks the concurrency contract under -race: distinct
// goroutines emitting into distinct shards while another goroutine reads the
// atomic counters live.
func TestConcurrentShards(t *testing.T) {
	const nshards, perShard = 8, 2000
	r := New(nshards, nshards, Options{Capacity: 256})
	done := make(chan struct{})
	go func() { // live counter reader
		for {
			select {
			case <-done:
				return
			default:
				_ = r.KindCount(Send)
				_ = r.SendsByClass()
				_ = r.CommMatrix()
			}
		}
	}()
	var wg sync.WaitGroup
	for sh := 0; sh < nshards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			from := int32(sh)
			to := (from + 1) % nshards
			for i := 0; i < perShard; i++ {
				r.Emit(sh, send(float64(i), from, to, 2, dist.CommShift, int32(sh), 1))
			}
		}(sh)
	}
	wg.Wait()
	close(done)
	if got := r.KindCount(Send); got != nshards*perShard {
		t.Fatalf("KindCount(Send) = %d, want %d", got, nshards*perShard)
	}
	m := r.CommMatrix()
	for sh := 0; sh < nshards; sh++ {
		i := sh*nshards + (sh+1)%nshards
		if m.Msgs[i] != perShard {
			t.Fatalf("matrix entry %d = %d, want %d", i, m.Msgs[i], perShard)
		}
	}
	if got := len(r.StmtComms()); got != nshards {
		t.Fatalf("merged %d stmt histograms, want %d", got, nshards)
	}
}

// TestChromeTraceShape checks the exporter: valid JSON, complete events
// shifted back by their duration, instants for zero-duration events.
func TestChromeTraceShape(t *testing.T) {
	r := New(2, 1, Options{})
	r.SetLabels(map[int]string{3: "s3 line 14 y = ..."})
	r.Emit(0, Event{Time: 2.5, Dur: 0.5, Kind: Compute, Proc: 0, Peer: -1, Stmt: 3, Req: -1})
	r.Emit(0, Event{Time: 3, Kind: Fault, Proc: 1, Peer: -1, Stmt: -1, Req: -1})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string   `json:"name"`
			Phase string   `json:"ph"`
			TS    float64  `json:"ts"`
			Dur   *float64 `json:"dur"`
			TID   int      `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) != 2 {
		t.Fatalf("%d trace events, want 2", len(f.TraceEvents))
	}
	c := f.TraceEvents[0]
	if c.Phase != "X" || c.Dur == nil || *c.Dur != 0.5e6 || c.TS != 2e6 || c.TID != 0 {
		t.Errorf("complete slice = %+v, want ph X at ts 2e6 dur 0.5e6 on tid 0", c)
	}
	if !strings.Contains(c.Name, "s3 line 14") {
		t.Errorf("slice name %q does not carry the statement label", c.Name)
	}
	i := f.TraceEvents[1]
	if i.Phase != "i" || i.TS != 3e6 || i.TID != 1 {
		t.Errorf("instant = %+v, want ph i at ts 3e6 on tid 1", i)
	}
}

// TestTimelineOrder checks per-processor timelines are time-sorted even when
// the underlying shards interleave.
func TestTimelineOrder(t *testing.T) {
	r := New(2, 2, Options{})
	r.Emit(1, Event{Time: 2, Kind: Recv, Proc: 0, Peer: 1, Stmt: -1, Req: 0})
	r.Emit(0, Event{Time: 1, Kind: Compute, Proc: 0, Peer: -1, Stmt: -1, Req: -1})
	r.Emit(0, Event{Time: 3, Kind: Compute, Proc: 1, Peer: -1, Stmt: -1, Req: -1})
	tl := r.Timeline(0)
	if len(tl) != 2 || tl[0].Time != 1 || tl[1].Time != 2 {
		t.Fatalf("timeline(0) = %v, want times [1 2]", tl)
	}
}

// TestFormatEventStable pins the single-line rendering the golden trace test
// depends on.
func TestFormatEventStable(t *testing.T) {
	r := New(4, 1, Options{})
	r.SetLabels(map[int]string{5: "s5 line 16 a((i + 1)) = ..."})
	got := r.FormatEvent(send(0.0025, 1, 2, 800, dist.CommShift, 5, 4))
	want := fmt.Sprintf("%.9f p1 send->p2 shift 800B req4 [s5 line 16 a((i + 1)) = ...]", 0.0025)
	if got != want {
		t.Fatalf("FormatEvent = %q, want %q", got, want)
	}
}
