// Derived views over a recorder: per-class totals, the P×P communication
// matrix, and deterministic text renderings (the simulator's text rendering
// is byte-stable across runs and golden-tested).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"phpf/internal/dist"
)

// ClassCount is the exact planned-communication activity of one class.
type ClassCount struct {
	Msgs  int64
	Bytes int64
}

// SendsByClass returns the exact per-class counts of planned messages sent
// (Send events carrying a requirement ID). Classes with no activity are
// omitted.
func (r *Recorder) SendsByClass() map[dist.CommClass]ClassCount {
	if r == nil {
		return nil
	}
	out := map[dist.CommClass]ClassCount{}
	for c := 0; c < nclasses; c++ {
		m, b := r.classMsgs[c].Load(), r.classByte[c].Load()
		if m != 0 || b != 0 {
			out[dist.CommClass(c)] = ClassCount{Msgs: m, Bytes: b}
		}
	}
	return out
}

// CommMatrix is the P×P planned point-to-point communication activity:
// entry [from*N+to] counts the deliveries from processor `from` to `to`.
type CommMatrix struct {
	N     int
	Msgs  []int64
	Bytes []int64
}

// CommMatrix snapshots the recorder's exact pairwise matrix.
func (r *Recorder) CommMatrix() *CommMatrix {
	if r == nil {
		return nil
	}
	m := &CommMatrix{
		N:     r.nprocs,
		Msgs:  make([]int64, r.nprocs*r.nprocs),
		Bytes: make([]int64, r.nprocs*r.nprocs),
	}
	for i := range m.Msgs {
		m.Msgs[i] = r.matMsgs[i].Load()
		m.Bytes[i] = r.matBytes[i].Load()
	}
	return m
}

// Total sums the matrix.
func (m *CommMatrix) Total() ClassCount {
	var t ClassCount
	for i := range m.Msgs {
		t.Msgs += m.Msgs[i]
		t.Bytes += m.Bytes[i]
	}
	return t
}

// String renders the matrix as a table of "msgs/bytes" cells (rows = sender,
// columns = receiver), skipping the header for the 1-processor case.
func (m *CommMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "src\\dst")
	for to := 0; to < m.N; to++ {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("p%d", to))
	}
	b.WriteString("\n")
	for from := 0; from < m.N; from++ {
		fmt.Fprintf(&b, "%6s", fmt.Sprintf("p%d", from))
		for to := 0; to < m.N; to++ {
			i := from*m.N + to
			if m.Msgs[i] == 0 {
				fmt.Fprintf(&b, " %12s", ".")
			} else {
				fmt.Fprintf(&b, " %12s", fmt.Sprintf("%d/%dB", m.Msgs[i], m.Bytes[i]))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatEvent renders one event as a deterministic single line.
func (r *Recorder) FormatEvent(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.9f p%d %s", e.Time, e.Proc, e.Kind)
	if e.Peer >= 0 {
		switch e.Kind {
		case Send:
			fmt.Fprintf(&b, "->p%d", e.Peer)
		case Recv, Wait:
			fmt.Fprintf(&b, "<-p%d", e.Peer)
		default:
			fmt.Fprintf(&b, " p%d", e.Peer)
		}
	}
	if e.Class != dist.CommNone {
		fmt.Fprintf(&b, " %s", e.Class)
	}
	if e.Bytes != 0 {
		fmt.Fprintf(&b, " %dB", e.Bytes)
	}
	if e.Count > 1 {
		fmt.Fprintf(&b, " x%d", e.Count)
	}
	if e.Dur != 0 {
		fmt.Fprintf(&b, " dur=%.9f", e.Dur)
	}
	if e.Req >= 0 {
		fmt.Fprintf(&b, " req%d", e.Req)
	}
	if e.Stmt >= 0 {
		if l := r.Label(e.Stmt); l != "" {
			fmt.Fprintf(&b, " [%s]", l)
		} else {
			fmt.Fprintf(&b, " [s%d]", e.Stmt)
		}
	}
	return b.String()
}

// FormatEvents renders the stored event stream, one line per event, in
// Events() order — for the simulator this is the deterministic program-order
// stream the golden-trace test pins down.
func (r *Recorder) FormatEvents() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(r.FormatEvent(e))
		b.WriteString("\n")
	}
	return b.String()
}

// Summary renders the exact aggregate view: per-class totals, per-kind
// counts, and the per-statement histogram — bounded output independent of
// ring capacity.
func (r *Recorder) Summary() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	var classes []int
	byClass := r.SendsByClass()
	for c := range byClass {
		classes = append(classes, int(c))
	}
	sort.Ints(classes)
	for _, c := range classes {
		cc := byClass[dist.CommClass(c)]
		fmt.Fprintf(&b, "class %-9s %8d msgs %12d bytes\n", dist.CommClass(c), cc.Msgs, cc.Bytes)
	}
	for k := Kind(0); k < nkinds; k++ {
		if n := r.KindCount(k); n > 0 {
			fmt.Fprintf(&b, "events %-10s %8d\n", k, n)
		}
	}
	for _, sc := range r.StmtComms() {
		name := r.Label(sc.Stmt)
		if name == "" {
			name = fmt.Sprintf("s%d", sc.Stmt)
		}
		fmt.Fprintf(&b, "stmt %-28s %8d msgs %12d bytes\n", name, sc.TotalMsgs(), sc.TotalBytes())
	}
	return b.String()
}
