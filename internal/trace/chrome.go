// Chrome trace_event exporter: renders the stored events in the JSON Array
// Format understood by chrome://tracing and Perfetto (ui.perfetto.dev).
// Each simulated processor becomes one thread lane; instantaneous events
// (sends, faults) render as instant markers, events with a duration
// (compute, waits, restarts) as complete slices.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"phpf/internal/dist"
)

// chromeEvent is one trace_event record. Field order is fixed, so the
// marshaled output is deterministic for a deterministic event stream.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   *float64       `json:"dur,omitempty"` // microseconds, "X" only
	Scope string         `json:"s,omitempty"`   // instant scope, "i" only
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeName labels one event for the trace viewer.
func (r *Recorder) chromeName(e Event) string {
	base := e.Kind.String()
	if e.Kind == Send || e.Kind == Recv {
		base = fmt.Sprintf("%s %s", e.Kind, e.Class)
	}
	if e.Stmt >= 0 {
		if l := r.Label(e.Stmt); l != "" {
			return base + " " + l
		}
		return fmt.Sprintf("%s s%d", base, e.Stmt)
	}
	return base
}

// WriteChromeTrace writes the stored events as Chrome trace_event JSON.
// Load the file in chrome://tracing or Perfetto; processors appear as
// threads of one process, ordered by ID.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`+"\n")
		return err
	}
	events := r.Events()
	out := chromeFile{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		ce := chromeEvent{
			Name: r.chromeName(e),
			Cat:  e.Kind.String(),
			TS:   e.Time * 1e6,
			PID:  0,
			TID:  int(e.Proc),
		}
		if e.Dur > 0 {
			d := e.Dur * 1e6
			ce.Phase = "X"
			ce.Dur = &d
			// A complete slice spans [ts, ts+dur]; our Time stamps are the
			// event's completion, so shift the slice back to its start.
			ce.TS -= d
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		args := map[string]any{}
		if e.Bytes != 0 {
			args["bytes"] = e.Bytes
		}
		if e.Peer >= 0 {
			args["peer"] = int(e.Peer)
		}
		if e.Req >= 0 {
			args["req"] = int(e.Req)
		}
		if e.Count > 1 {
			args["count"] = int(e.Count)
		}
		if e.Class != dist.CommNone {
			args["class"] = e.Class.String()
		}
		if len(args) > 0 {
			ce.Args = args
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
