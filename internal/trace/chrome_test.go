package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"phpf/internal/dist"
)

// TestChromeTraceLabelEscaping feeds the exporter statement labels containing
// the characters JSON must escape — quotes, backslashes, newlines, tabs, and
// control bytes — and checks the emitted trace unmarshals cleanly with
// encoding/json and round-trips every label verbatim inside the event name.
func TestChromeTraceLabelEscaping(t *testing.T) {
	labels := map[int]string{
		0: `s0 line 1 a("quoted") = ...`,
		1: `s1 line 2 path\to\x = "a\"b" + ...`,
		2: "s2 line 3 multi\nline = ...",
		3: "s3 line 4 tab\tand ctrl \x01 = ...",
		4: "s4 line 5 unicode é← = ...",
	}
	r := New(2, 1, Options{})
	r.SetLabels(labels)
	for id := range labels {
		r.Emit(0, Event{Time: float64(id), Kind: Send, Proc: 0, Peer: 1,
			Bytes: 8, Class: dist.CommShift, Stmt: int32(id), Req: int32(id)})
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) != len(labels) {
		t.Fatalf("%d trace events, want %d", len(f.TraceEvents), len(labels))
	}
	for _, ce := range f.TraceEvents {
		id := int(ce.TS / 1e6)
		want := "send shift " + labels[id]
		if ce.Name != want {
			t.Errorf("event name %q, want %q (label not round-tripped)", ce.Name, want)
		}
	}
}
