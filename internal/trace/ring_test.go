package trace

import (
	"fmt"
	"testing"
)

// TestRingWrapBoundary audits the ring shard at the wrap boundary: emitting
// exactly capacity events must keep all of them once each, and crossing the
// boundary by one must drop exactly the oldest — no off-by-one drop or
// duplicate in Events()'s chronological reassembly (ring[head:] + ring[:head]).
// The table pins capacity−1, capacity, and capacity+1, plus a full second
// revolution and one past it.
func TestRingWrapBoundary(t *testing.T) {
	const capacity = 8
	for _, n := range []int{capacity - 1, capacity, capacity + 1, 2 * capacity, 2*capacity + 1} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			r := New(1, 1, Options{Capacity: capacity})
			for i := 0; i < n; i++ {
				r.Emit(0, Event{Time: float64(i), Kind: Compute, Proc: 0, Peer: -1, Stmt: -1, Req: -1})
			}
			if got := r.Seen(); got != int64(n) {
				t.Fatalf("Seen = %d, want %d", got, n)
			}
			wantLen := n
			if wantLen > capacity {
				wantLen = capacity
			}
			if got := r.Len(); got != wantLen {
				t.Fatalf("Len = %d, want %d", got, wantLen)
			}
			evs := r.Events()
			if len(evs) != wantLen {
				t.Fatalf("Events returned %d events, want %d", len(evs), wantLen)
			}
			// The newest wantLen events, oldest first, each exactly once.
			first := n - wantLen
			for i, e := range evs {
				if want := float64(first + i); e.Time != want {
					t.Fatalf("event %d has time %v, want %v (dropped or duplicated at the wrap)", i, e.Time, want)
				}
			}
			// Exact counters never lose evicted events.
			if got := r.KindCount(Compute); got != int64(n) {
				t.Errorf("KindCount = %d, want %d", got, n)
			}
		})
	}
}
