package ast

import (
	"fmt"
	"strings"
)

// Print renders a program back to (normalized) surface syntax. The output
// round-trips through the parser and is used by golden tests and the
// compiler's -dump-ast mode.
func Print(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, pa := range p.Params {
		fmt.Fprintf(&b, "parameter %s = %d\n", pa.Name, pa.Value)
	}
	for _, d := range p.Decls {
		if d.IsArray() {
			dims := make([]string, len(d.Dims))
			for i, e := range d.Dims {
				dims[i] = ExprString(e)
			}
			fmt.Fprintf(&b, "%s %s(%s)\n", d.Type, d.Name, strings.Join(dims, ","))
		} else {
			fmt.Fprintf(&b, "%s %s\n", d.Type, d.Name)
		}
	}
	for _, d := range p.Dirs {
		b.WriteString(printDirective(d))
	}
	printStmts(&b, p.Body, 0)
	b.WriteString("end\n")
	return b.String()
}

func printDirective(d Directive) string {
	switch x := d.(type) {
	case *ProcessorsDir:
		ext := make([]string, len(x.Extents))
		for i, e := range x.Extents {
			ext[i] = ExprString(e)
		}
		return fmt.Sprintf("!hpf$ processors %s(%s)\n", x.Name, strings.Join(ext, ","))
	case *DistributeDir:
		fm := make([]string, len(x.Formats))
		for i, f := range x.Formats {
			fm[i] = f.Kind.String()
		}
		return fmt.Sprintf("!hpf$ distribute (%s) :: %s\n",
			strings.Join(fm, ","), strings.Join(x.Arrays, ", "))
	case *AlignDir:
		subs := make([]string, len(x.Subs))
		for i, s := range x.Subs {
			subs[i] = s.String()
		}
		return fmt.Sprintf("!hpf$ align (%s) with %s(%s) :: %s\n",
			strings.Join(x.Dummies, ","), x.Target,
			strings.Join(subs, ","), strings.Join(x.Arrays, ", "))
	}
	return "!hpf$ ?\n"
}

// String renders an align subscript.
func (s AlignSub) String() string {
	switch {
	case s.Star:
		return "*"
	case s.Const:
		return fmt.Sprintf("%d", s.Value)
	case s.Offset > 0:
		return fmt.Sprintf("%s+%d", s.Dummy, s.Offset)
	case s.Offset < 0:
		return fmt.Sprintf("%s-%d", s.Dummy, -s.Offset)
	default:
		return s.Dummy
	}
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch x := s.(type) {
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, ExprString(x.Lhs), ExprString(x.Rhs))
		case *DoLoop:
			for _, d := range x.Dirs {
				b.WriteString(ind + "!hpf$ ")
				var parts []string
				if d.Independent {
					parts = append(parts, "independent")
				}
				if d.NoDeps {
					parts = append(parts, "nodeps")
				}
				line := strings.Join(parts, ", ")
				if len(d.New) > 0 {
					line += ", new(" + strings.Join(d.New, ",") + ")"
				}
				b.WriteString(line + "\n")
			}
			fmt.Fprintf(b, "%sdo %s = %s, %s", ind, x.Var, ExprString(x.Lo), ExprString(x.Hi))
			if x.Step != nil {
				fmt.Fprintf(b, ", %s", ExprString(x.Step))
			}
			b.WriteString("\n")
			printStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%send do\n", ind)
		case *If:
			fmt.Fprintf(b, "%sif (%s) then\n", ind, ExprString(x.Cond))
			printStmts(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%selse\n", ind)
				printStmts(b, x.Else, depth+1)
			}
			fmt.Fprintf(b, "%send if\n", ind)
		case *IfGoto:
			fmt.Fprintf(b, "%sif (%s) goto %d\n", ind, ExprString(x.Cond), x.Label)
		case *Goto:
			fmt.Fprintf(b, "%sgoto %d\n", ind, x.Label)
		case *Continue:
			fmt.Fprintf(b, "%s%d continue\n", ind, x.Label)
		case *Redistribute:
			fm := make([]string, len(x.Formats))
			for i, f := range x.Formats {
				fm[i] = f.Kind.String()
			}
			fmt.Fprintf(b, "%s!hpf$ redistribute %s(%s)\n", ind, x.Array, strings.Join(fm, ","))
		}
	}
}
