package ast

import (
	"strings"
	"testing"
)

func TestExprString(t *testing.T) {
	e := &BinOp{
		Op: Add,
		L:  &Ref{Name: "a", Subs: []Expr{&Ref{Name: "i"}}},
		R:  &BinOp{Op: Mul, L: &IntConst{Value: 2}, R: &RealConst{Value: 0.5}},
	}
	if got := ExprString(e); got != "(a(i) + (2 * 0.5))" {
		t.Errorf("got %q", got)
	}
	if got := ExprString(&UnaryMinus{X: &Ref{Name: "x"}}); got != "(-x)" {
		t.Errorf("got %q", got)
	}
	if got := ExprString(&Not{X: &Ref{Name: "p"}}); got != "(not p)" {
		t.Errorf("got %q", got)
	}
	if got := ExprString(&Call{Name: "max", Args: []Expr{&Ref{Name: "a"}, &Ref{Name: "b"}}}); got != "max(a,b)" {
		t.Errorf("got %q", got)
	}
}

func TestOpStringAndRelational(t *testing.T) {
	cases := map[Op]string{
		Add: "+", Sub: "-", Mul: "*", Div: "/",
		OpEq: "==", OpNe: "/=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
		OpAnd: "and", OpOr: "or",
	}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	for _, op := range []Op{Add, Sub, Mul, Div} {
		if op.IsRelational() {
			t.Errorf("%v should not be relational", op)
		}
	}
	for _, op := range []Op{OpEq, OpLt, OpAnd} {
		if !op.IsRelational() {
			t.Errorf("%v should be relational", op)
		}
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	e := &BinOp{
		Op: Add,
		L:  &Call{Name: "abs", Args: []Expr{&Ref{Name: "a", Subs: []Expr{&Ref{Name: "i"}}}}},
		R:  &UnaryMinus{X: &Ref{Name: "b"}},
	}
	n := 0
	Walk(e, func(Expr) { n++ })
	// BinOp, Call, Ref a, Ref i, UnaryMinus, Ref b.
	if n != 6 {
		t.Errorf("visited %d nodes, want 6", n)
	}
}

func TestRefsCollectsInOrder(t *testing.T) {
	e := &BinOp{
		Op: Add,
		L:  &Ref{Name: "a", Subs: []Expr{&Ref{Name: "i"}}},
		R:  &Ref{Name: "b"},
	}
	refs := Refs(e)
	var names []string
	for _, r := range refs {
		names = append(names, r.Name)
	}
	if strings.Join(names, ",") != "a,i,b" {
		t.Errorf("refs = %v", names)
	}
}

func TestWalkStmtsRecurses(t *testing.T) {
	inner := &Assign{Lhs: &Ref{Name: "x"}, Rhs: &IntConst{Value: 1}}
	prog := []Stmt{
		&DoLoop{Var: "i", Lo: &IntConst{Value: 1}, Hi: &IntConst{Value: 2},
			Body: []Stmt{
				&If{Cond: &Ref{Name: "c"}, Then: []Stmt{inner},
					Else: []Stmt{&Goto{Label: 10}}},
			}},
		&Continue{Label: 10},
	}
	var kinds []string
	WalkStmts(prog, func(s Stmt) {
		switch s.(type) {
		case *DoLoop:
			kinds = append(kinds, "do")
		case *If:
			kinds = append(kinds, "if")
		case *Assign:
			kinds = append(kinds, "assign")
		case *Goto:
			kinds = append(kinds, "goto")
		case *Continue:
			kinds = append(kinds, "continue")
		}
	})
	if strings.Join(kinds, ",") != "do,if,assign,goto,continue" {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestVarDeclHelpers(t *testing.T) {
	s := &VarDecl{Name: "x", Type: Real}
	if s.IsArray() {
		t.Error("scalar reported as array")
	}
	a := &VarDecl{Name: "a", Type: Integer, Dims: []Expr{&IntConst{Value: 4}}}
	if !a.IsArray() {
		t.Error("array not reported")
	}
	if Integer.String() != "integer" || Real.String() != "real" {
		t.Error("type names wrong")
	}
}

func TestDistKindString(t *testing.T) {
	if DistBlock.String() != "block" || DistCyclic.String() != "cyclic" || DistNone.String() != "*" {
		t.Error("dist kind names wrong")
	}
}

func TestAlignSubString(t *testing.T) {
	cases := []struct {
		sub  AlignSub
		want string
	}{
		{AlignSub{Star: true}, "*"},
		{AlignSub{Const: true, Value: 3}, "3"},
		{AlignSub{Dummy: "i"}, "i"},
		{AlignSub{Dummy: "i", Offset: 2}, "i+2"},
		{AlignSub{Dummy: "i", Offset: -1}, "i-1"},
	}
	for _, c := range cases {
		if got := c.sub.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestStmtPositions(t *testing.T) {
	stmts := []Stmt{
		&Assign{Line: 1},
		&DoLoop{Line: 2},
		&If{Line: 3},
		&IfGoto{Line: 4},
		&Goto{Line: 5},
		&Continue{Line: 6},
		&Redistribute{Line: 7},
	}
	for i, s := range stmts {
		if s.Pos() != i+1 {
			t.Errorf("stmt %d: Pos = %d", i, s.Pos())
		}
	}
}

func TestPrintProgram(t *testing.T) {
	p := &Program{
		Name:   "t",
		Params: []*Param{{Name: "n", Value: 8}},
		Decls: []*VarDecl{
			{Name: "a", Type: Real, Dims: []Expr{&Ref{Name: "n"}}},
			{Name: "x", Type: Real},
		},
		Dirs: []Directive{
			&DistributeDir{Formats: []DistFormat{{Kind: DistBlock}}, Arrays: []string{"a"}},
		},
		Body: []Stmt{
			&Assign{Lhs: &Ref{Name: "x"}, Rhs: &RealConst{Value: 1.5}},
		},
	}
	out := Print(p)
	for _, want := range []string{"program t", "parameter n = 8", "real a(n)",
		"!hpf$ distribute (block) :: a", "x = 1.5", "end"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed program missing %q:\n%s", want, out)
		}
	}
}
