// Package ast defines the abstract syntax tree for the mini-Fortran/HPF
// dialect: a program with declarations, HPF mapping directives, and a body of
// DO loops, IF statements, GOTOs and assignments over scalar and array
// variables.
package ast

import (
	"fmt"
	"strings"
)

// Type is a variable's element type.
type Type int

const (
	Integer Type = iota
	Real
)

func (t Type) String() string {
	if t == Integer {
		return "integer"
	}
	return "real"
}

// Program is a whole translation unit.
type Program struct {
	Name   string
	Params []*Param   // named integer constants
	Decls  []*VarDecl // variable declarations
	Dirs   []Directive
	Body   []Stmt
}

// Param is a named compile-time integer constant ("parameter n = 64").
type Param struct {
	Name  string
	Value int64
	Line  int
	Col   int
}

// VarDecl declares one variable, scalar (len(Dims)==0) or array.
type VarDecl struct {
	Name string
	Type Type
	Dims []Expr // extents; arrays are 1-based, size Dims[i] per dimension
	Line int
	Col  int
}

// IsArray reports whether the declaration has array shape.
func (d *VarDecl) IsArray() bool { return len(d.Dims) > 0 }

// ---------------------------------------------------------------------------
// Statements

// Stmt is any executable statement.
type Stmt interface {
	stmtNode()
	Pos() int // source line
}

// Assign is "lhs = rhs".
type Assign struct {
	Lhs  *Ref
	Rhs  Expr
	Line int
	Col  int
}

// DoLoop is "do v = lo, hi [, step] ... end do". Directives attached to the
// loop (INDEPENDENT / NODEPS with NEW lists) are stored in Dirs.
type DoLoop struct {
	Var      string
	Lo, Hi   Expr
	Step     Expr // nil means 1
	Body     []Stmt
	Dirs     []LoopDirective
	Line     int
	Col      int
	EndLine  int
	LabelDoc string // unused placeholder for future labeled-do support
}

// If is a block IF: "if (cond) then ... [else ...] end if".
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
	Col  int
}

// IfGoto is the logical IF form "if (cond) goto label".
type IfGoto struct {
	Cond  Expr
	Label int
	Line  int
	Col   int
}

// Goto is an unconditional "goto label".
type Goto struct {
	Label int
	Line  int
	Col   int
}

// Continue is a labeled "nnn continue" no-op, the target of GOTOs.
type Continue struct {
	Label int
	Line  int
	Col   int
}

// Redistribute is the executable "!hpf$ redistribute A(fmt,...)" directive,
// which changes the distribution of A at this point in the program (modeled
// at run time as an all-to-all).
type Redistribute struct {
	Array   string
	Formats []DistFormat
	Line    int
	Col     int
}

func (*Assign) stmtNode()       {}
func (*DoLoop) stmtNode()       {}
func (*If) stmtNode()           {}
func (*IfGoto) stmtNode()       {}
func (*Goto) stmtNode()         {}
func (*Continue) stmtNode()     {}
func (*Redistribute) stmtNode() {}

func (s *Assign) Pos() int       { return s.Line }
func (s *DoLoop) Pos() int       { return s.Line }
func (s *If) Pos() int           { return s.Line }
func (s *IfGoto) Pos() int       { return s.Line }
func (s *Goto) Pos() int         { return s.Line }
func (s *Continue) Pos() int     { return s.Line }
func (s *Redistribute) Pos() int { return s.Line }

// ---------------------------------------------------------------------------
// Expressions

// Expr is any expression.
type Expr interface {
	exprNode()
}

// Ref is a use or definition of a variable; scalar if len(Subs)==0.
type Ref struct {
	Name string
	Subs []Expr
	Line int
	Col  int

	// Slot caches the variable's 1-based slot number assigned by
	// ir.AssignSlots (0 = not yet assigned). The IR builder gives every
	// reference occurrence its own Ref node, so the cache is sound; the
	// evaluator uses it to resolve the variable without a name lookup.
	Slot int32
}

// IntConst is an integer literal.
type IntConst struct{ Value int64 }

// RealConst is a floating-point literal.
type RealConst struct{ Value float64 }

// BinOp operators.
type Op int

const (
	Add Op = iota
	Sub
	Mul
	Div
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opStr = [...]string{"+", "-", "*", "/", "==", "/=", "<", "<=", ">", ">=", "and", "or"}

func (o Op) String() string { return opStr[o] }

// IsRelational reports whether the operator yields a logical value.
func (o Op) IsRelational() bool { return o >= OpEq }

// BinOp is a binary operation.
type BinOp struct {
	Op   Op
	L, R Expr
}

// UnaryMinus is arithmetic negation.
type UnaryMinus struct{ X Expr }

// Not is logical negation.
type Not struct{ X Expr }

// Call is an intrinsic function call (abs, sqrt, max, min, mod, exp).
type Call struct {
	Name string
	Args []Expr
}

func (*Ref) exprNode()        {}
func (*IntConst) exprNode()   {}
func (*RealConst) exprNode()  {}
func (*BinOp) exprNode()      {}
func (*UnaryMinus) exprNode() {}
func (*Not) exprNode()        {}
func (*Call) exprNode()       {}

// Intrinsics is the set of recognized intrinsic function names.
var Intrinsics = map[string]int{ // name -> arity (-1 = variadic >= 2)
	"abs":  1,
	"sqrt": 1,
	"exp":  1,
	"max":  -1,
	"min":  -1,
	"mod":  2,
}

// ---------------------------------------------------------------------------
// Directives

// Directive is a declarative HPF mapping directive.
type Directive interface {
	dirNode()
	Pos() int
}

// ProcessorsDir declares the processor grid: "processors P(4,4)". Extents of
// 0 denote "fill with available processors" (set at compile time).
type ProcessorsDir struct {
	Name    string
	Extents []Expr
	Line    int
	Col     int
}

// DistKind is a per-dimension distribution format.
type DistKind int

const (
	DistNone DistKind = iota // "*": dimension not distributed
	DistBlock
	DistCyclic
)

func (k DistKind) String() string {
	switch k {
	case DistBlock:
		return "block"
	case DistCyclic:
		return "cyclic"
	}
	return "*"
}

// DistFormat is one dimension's distribution specification.
type DistFormat struct {
	Kind DistKind
}

// DistributeDir maps arrays onto the processor grid:
// "distribute (block, *) :: a, b" or "distribute a(block, *)".
type DistributeDir struct {
	Formats []DistFormat
	Arrays  []string
	Line    int
	Col     int
}

// AlignSub is one target subscript in an ALIGN directive: either a dummy
// variable (possibly with offset, e.g. i+1), a "*" (replicate over that
// target dimension), or a constant.
type AlignSub struct {
	Dummy  string // "" for "*" or constant
	Offset int64
	Star   bool
	Const  bool
	Value  int64
}

// AlignDir aligns arrays with a target array:
// "align b(i) with a(i,*) [:: more arrays]" or "align (i) with a(i) :: b, c".
type AlignDir struct {
	Dummies []string   // source dummy variables, one per source dimension
	Target  string     // target array name
	Subs    []AlignSub // target subscripts, one per target dimension
	Arrays  []string   // arrays being aligned
	Line    int
	Col     int
}

func (*ProcessorsDir) dirNode() {}
func (*DistributeDir) dirNode() {}
func (*AlignDir) dirNode()      {}

func (d *ProcessorsDir) Pos() int { return d.Line }
func (d *DistributeDir) Pos() int { return d.Line }
func (d *AlignDir) Pos() int      { return d.Line }

// LoopDirective annotates the DO loop that follows it.
type LoopDirective struct {
	Independent bool     // INDEPENDENT: iterations reorderable
	NoDeps      bool     // NODEPS: no true loop-carried value dependences
	New         []string // NEW(...) clause: privatizable variables
	Line        int
	Col         int
}

// ---------------------------------------------------------------------------
// Printing

// ExprString renders an expression as surface syntax.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Ref:
		if len(x.Subs) == 0 {
			return x.Name
		}
		parts := make([]string, len(x.Subs))
		for i, s := range x.Subs {
			parts[i] = ExprString(s)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(parts, ","))
	case *IntConst:
		return fmt.Sprintf("%d", x.Value)
	case *RealConst:
		return fmt.Sprintf("%g", x.Value)
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.L), x.Op, ExprString(x.R))
	case *UnaryMinus:
		return fmt.Sprintf("(-%s)", ExprString(x.X))
	case *Not:
		return fmt.Sprintf("(not %s)", ExprString(x.X))
	case *Call:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(parts, ","))
	}
	return "?"
}

// Walk calls fn for every expression node in e, parents before children.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Ref:
		for _, s := range x.Subs {
			Walk(s, fn)
		}
	case *BinOp:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *UnaryMinus:
		Walk(x.X, fn)
	case *Not:
		Walk(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}

// WalkStmts calls fn for every statement in the list, recursively, parents
// before children.
func WalkStmts(stmts []Stmt, fn func(Stmt)) {
	for _, s := range stmts {
		fn(s)
		switch x := s.(type) {
		case *DoLoop:
			WalkStmts(x.Body, fn)
		case *If:
			WalkStmts(x.Then, fn)
			WalkStmts(x.Else, fn)
		}
	}
}

// Refs collects every Ref in an expression, in source order.
func Refs(e Expr) []*Ref {
	var out []*Ref
	Walk(e, func(x Expr) {
		if r, ok := x.(*Ref); ok {
			out = append(out, r)
		}
	})
	return out
}
