package programs

import "fmt"

// Smooth returns the quickstart example's 1-D three-point smoothing kernel:
// a block-distributed vector relaxed through privatizable boundary scalars
// (left, right). The offset reads u(i-1)/u(i+1) make its compiled form a
// nearest-neighbor shift — the smallest program with real vectorized
// communication, which is why it seeds both the fuzz corpora and the
// differential oracle.
func Smooth(n, niter int) string {
	return fmt.Sprintf(`
program smooth
parameter n = %d
parameter niter = %d
real u(n), v(n)
real left, right
integer i, it
!hpf$ align v(i) with u(i)
!hpf$ distribute (block) :: u
do i = 1, n
  u(i) = i * 0.001
end do
do it = 1, niter
  do i = 2, n-1
    left = u(i-1)
    right = u(i+1)
    v(i) = 0.25 * left + 0.5 * u(i) + 0.25 * right
  end do
  do i = 2, n-1
    u(i) = v(i)
  end do
end do
end
`, n, niter)
}
