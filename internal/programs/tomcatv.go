// Package programs holds the benchmark kernels of the paper's evaluation
// (§5) as mini-HPF sources — TOMCATV, DGEFA and an APPSP-style sweep — plus
// sequential Go reference implementations used to validate the simulator's
// numerics, and the paper's figure examples.
package programs

import "fmt"

// TOMCATV returns the mesh-generation kernel (SPEC92 TOMCATV with HPF
// directives, §5.1): a residual stencil over the mesh, max-residual
// reductions, a column-local smoothing recurrence, and the mesh update. The
// per-point geometry scalars (xx, yx, xy, yy, aa, bb, cc) are the
// privatization targets whose mapping Table 1 varies; column distribution
// is (*,BLOCK).
func TOMCATV(n, niter int) string {
	return fmt.Sprintf(`
program tomcatv
parameter n = %d
parameter niter = %d
real x(n,n), y(n,n), rx(n,n), ry(n,n)
real xx, yx, xy, yy, aa, bb, cc, rxm, rym, r1, r2
integer i, j, it
!hpf$ align (i,j) with x(i,j) :: y, rx, ry
!hpf$ distribute (*,block) :: x
do j = 1, n
  do i = 1, n
    x(i,j) = i * 1.0 + j * 0.01
    y(i,j) = j * 1.0 + i * 0.01
  end do
end do
do it = 1, niter
  do j = 2, n-1
    do i = 2, n-1
      xx = x(i+1,j) - x(i-1,j)
      yx = y(i+1,j) - y(i-1,j)
      xy = x(i,j+1) - x(i,j-1)
      yy = y(i,j+1) - y(i,j-1)
      aa = 0.25 * (xy*xy + yy*yy)
      bb = 0.25 * (xx*xx + yx*yx)
      cc = 0.125 * (xx*xy + yx*yy)
      rx(i,j) = aa*(x(i+1,j) - 2.0*x(i,j) + x(i-1,j)) + bb*(x(i,j+1) - 2.0*x(i,j) + x(i,j-1)) - cc*(x(i+1,j+1) - x(i+1,j-1) - x(i-1,j+1) + x(i-1,j-1))
      ry(i,j) = aa*(y(i+1,j) - 2.0*y(i,j) + y(i-1,j)) + bb*(y(i,j+1) - 2.0*y(i,j) + y(i,j-1)) - cc*(y(i+1,j+1) - y(i+1,j-1) - y(i-1,j+1) + y(i-1,j-1))
    end do
  end do
  rxm = 0.0
  rym = 0.0
  do j = 2, n-1
    do i = 2, n-1
      rxm = max(rxm, abs(rx(i,j)))
      rym = max(rym, abs(ry(i,j)))
    end do
  end do
  do j = 2, n-1
    do i = 3, n-1
      r1 = rx(i,j) + 0.45 * rx(i-1,j)
      rx(i,j) = r1
      r2 = ry(i,j) + 0.45 * ry(i-1,j)
      ry(i,j) = r2
    end do
  end do
  do j = 2, n-1
    do i = 2, n-1
      x(i,j) = x(i,j) + 0.05 * rx(i,j)
      y(i,j) = y(i,j) + 0.05 * ry(i,j)
    end do
  end do
end do
end
`, n, niter)
}

// TOMCATVRef runs the identical computation sequentially. It returns the
// final x and y meshes (flattened column-major like the simulator: element
// (i,j) at (j-1)*n+(i-1)) and the last iteration's residual maxima.
func TOMCATVRef(n, niter int) (x, y []float64, rxm, rym float64) {
	idx := func(i, j int) int { return (j-1)*n + (i - 1) }
	x = make([]float64, n*n)
	y = make([]float64, n*n)
	rx := make([]float64, n*n)
	ry := make([]float64, n*n)
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			x[idx(i, j)] = float64(i) + float64(j)*0.01
			y[idx(i, j)] = float64(j) + float64(i)*0.01
		}
	}
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for it := 0; it < niter; it++ {
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				xx := x[idx(i+1, j)] - x[idx(i-1, j)]
				yx := y[idx(i+1, j)] - y[idx(i-1, j)]
				xy := x[idx(i, j+1)] - x[idx(i, j-1)]
				yy := y[idx(i, j+1)] - y[idx(i, j-1)]
				aa := 0.25 * (xy*xy + yy*yy)
				bb := 0.25 * (xx*xx + yx*yx)
				cc := 0.125 * (xx*xy + yx*yy)
				rx[idx(i, j)] = aa*(x[idx(i+1, j)]-2.0*x[idx(i, j)]+x[idx(i-1, j)]) +
					bb*(x[idx(i, j+1)]-2.0*x[idx(i, j)]+x[idx(i, j-1)]) -
					cc*(x[idx(i+1, j+1)]-x[idx(i+1, j-1)]-x[idx(i-1, j+1)]+x[idx(i-1, j-1)])
				ry[idx(i, j)] = aa*(y[idx(i+1, j)]-2.0*y[idx(i, j)]+y[idx(i-1, j)]) +
					bb*(y[idx(i, j+1)]-2.0*y[idx(i, j)]+y[idx(i, j-1)]) -
					cc*(y[idx(i+1, j+1)]-y[idx(i+1, j-1)]-y[idx(i-1, j+1)]+y[idx(i-1, j-1)])
			}
		}
		rxm, rym = 0, 0
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				if a := abs(rx[idx(i, j)]); a > rxm {
					rxm = a
				}
				if a := abs(ry[idx(i, j)]); a > rym {
					rym = a
				}
			}
		}
		for j := 2; j <= n-1; j++ {
			for i := 3; i <= n-1; i++ {
				rx[idx(i, j)] += 0.45 * rx[idx(i-1, j)]
				ry[idx(i, j)] += 0.45 * ry[idx(i-1, j)]
			}
		}
		for j := 2; j <= n-1; j++ {
			for i := 2; i <= n-1; i++ {
				x[idx(i, j)] += 0.05 * rx[idx(i, j)]
				y[idx(i, j)] += 0.05 * ry[idx(i, j)]
			}
		}
	}
	return x, y, rxm, rym
}
