package programs

import (
	"math"
	"testing"

	"phpf/internal/core"
	"phpf/internal/parser"
	"phpf/internal/sim"
	"phpf/internal/spmd"
)

func simulate(t *testing.T, src string, nprocs int, opts core.Options) *sim.Result {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := core.BuildAndAnalyze(ap, nprocs, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	out, err := sim.Run(spmd.Generate(res), sim.Config{})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return out
}

func matchSlices(t *testing.T, got, want []float64, name string, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestAllSourcesParseAndAnalyze(t *testing.T) {
	srcs := map[string]string{
		"tomcatv":   TOMCATV(17, 2),
		"dgefa":     DGEFA(12),
		"appsp-1d":  APPSP(6, 8, 8, 2, false),
		"appsp-2d":  APPSP(6, 8, 8, 2, true),
		"histogram": Histogram(64, 16, 2),
		"dotsweep":  DotSweep(16, 12),
	}
	for name, s := range Figures {
		srcs[name] = s
	}
	for name, src := range srcs {
		ap, err := parser.Parse(src)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		if _, err := core.BuildAndAnalyze(ap, 4, core.DefaultOptions()); err != nil {
			t.Errorf("%s: analyze: %v", name, err)
		}
	}
}

// TestReduceKernelNumerics: both reduce-sweep kernels produce the
// sequential reference under every runtime reduction strategy. The
// histogram accumulates integers (exact under any association); the
// dot-product sweep's float sums are compared with a tolerance because the
// privatized strategy legitimately reassociates them.
func TestReduceKernelNumerics(t *testing.T) {
	simulateReduce := func(src string, nprocs int, mode core.ReduceMode) *sim.Result {
		t.Helper()
		ap, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		res, err := core.BuildAndAnalyze(ap, nprocs, core.DefaultOptions())
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		out, err := sim.Run(spmd.Generate(res), sim.Config{Reduce: mode})
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
		return out
	}
	n, m, niter := 96, 16, 2
	wantH := HistogramRef(n, m, niter)
	wantR := DotSweepRef(24, 12)
	for _, mode := range []core.ReduceMode{core.ReduceCollective, core.ReduceAuto, core.ReducePrivatize} {
		out := simulateReduce(Histogram(n, m, niter), 4, mode)
		matchSlices(t, out.Arrays["h"], wantH, "h/"+mode.String(), 0)
		out = simulateReduce(DotSweep(24, 12), 4, mode)
		matchSlices(t, out.Arrays["r"], wantR, "r/"+mode.String(), 1e-12)
		priv := mode != core.ReduceCollective
		if priv && out.Stats.Merges == 0 {
			t.Errorf("%s: dotsweep ran without tree merges", mode)
		}
		if !priv && out.Stats.Merges != 0 {
			t.Errorf("%s: dotsweep merged %d times, want 0", mode, out.Stats.Merges)
		}
	}
}

func TestTOMCATVNumerics(t *testing.T) {
	n, niter := 17, 3
	wantX, wantY, wantRxm, wantRym := TOMCATVRef(n, niter)
	for _, strat := range []core.ScalarStrategy{
		core.ScalarsReplicated, core.ScalarsProducerAligned, core.ScalarsSelected,
	} {
		opts := core.DefaultOptions()
		opts.Scalars = strat
		out := simulate(t, TOMCATV(n, niter), 4, opts)
		matchSlices(t, out.Arrays["x"], wantX, "x/"+strat.String(), 1e-9)
		matchSlices(t, out.Arrays["y"], wantY, "y/"+strat.String(), 1e-9)
		if math.Abs(out.Scalars["rxm"]-wantRxm) > 1e-9 {
			t.Errorf("rxm = %v, want %v", out.Scalars["rxm"], wantRxm)
		}
		if math.Abs(out.Scalars["rym"]-wantRym) > 1e-9 {
			t.Errorf("rym = %v, want %v", out.Scalars["rym"], wantRym)
		}
	}
}

func TestDGEFANumerics(t *testing.T) {
	n := 16
	want := DGEFARef(n)
	for _, alignRed := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.AlignReductions = alignRed
		out := simulate(t, DGEFA(n), 4, opts)
		matchSlices(t, out.Arrays["a"], want, "a", 1e-9)
	}
}

func TestDGEFAPivotingActuallyHappens(t *testing.T) {
	// Sanity: the pivot search must move rows (the input is crafted so
	// that |a(k,k)| is not always maximal).
	n := 16
	ref := DGEFARef(n)
	// Recompute without pivoting; results must differ.
	idx := func(i, j int) int { return (j-1)*n + (i - 1) }
	a := make([]float64, n*n)
	mod := func(x, m int) int {
		r := x % m
		if r < 0 {
			r += m
		}
		return r
	}
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			a[idx(i, j)] = float64(mod(i*7+j*3, 13)) - 6.0
		}
	}
	for i := 1; i <= n; i++ {
		a[idx(i, i)] += 13.5
	}
	for k := 1; k <= n-1; k++ {
		piv := a[idx(k, k)]
		if piv == 0 {
			continue
		}
		for i := k + 1; i <= n; i++ {
			a[idx(i, k)] = -a[idx(i, k)] / piv
		}
		for j := k + 1; j <= n; j++ {
			p := a[idx(k, j)]
			for i := k + 1; i <= n; i++ {
				a[idx(i, j)] += p * a[idx(i, k)]
			}
		}
	}
	same := true
	for i := range a {
		if math.Abs(a[i]-ref[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("pivoting never triggered; the test matrix is too tame")
	}
}

func TestAPPSPNumerics1D(t *testing.T) {
	nx, ny, nz, niter := 6, 8, 8, 2
	want := APPSPRef(nx, ny, nz, niter)
	out := simulate(t, APPSP(nx, ny, nz, niter, false), 4, core.DefaultOptions())
	matchSlices(t, out.Arrays["v"], want, "v (1-D)", 1e-9)
}

func TestAPPSPNumerics2D(t *testing.T) {
	nx, ny, nz, niter := 6, 8, 8, 2
	want := APPSPRef(nx, ny, nz, niter)
	for _, partial := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.PartialPrivatization = partial
		out := simulate(t, APPSP(nx, ny, nz, niter, true), 4, opts)
		matchSlices(t, out.Arrays["v"], want, "v (2-D)", 1e-9)
	}
}

func TestAPPSP2DPartialPrivatizationApplied(t *testing.T) {
	ap, err := parser.Parse(APPSP(6, 8, 8, 1, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BuildAndAnalyze(ap, 4, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Prog.LookupVar("c")
	apv := res.Arrays[c]
	if apv == nil {
		t.Fatal("c not privatized under the 2-D distribution")
	}
	if !apv.Partial {
		t.Errorf("c privatization = %+v, want partial", apv)
	}
}

func TestAPPSP1DFullPrivatizationApplied(t *testing.T) {
	ap, err := parser.Parse(APPSP(6, 8, 8, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.BuildAndAnalyze(ap, 4, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Prog.LookupVar("c")
	apv := res.Arrays[c]
	if apv == nil {
		t.Fatal("c not privatized under the 1-D distribution")
	}
	if apv.Partial {
		t.Errorf("c privatization = %+v, want full", apv)
	}
}

// TestTOMCATVStrategyOrdering: the Table 1 shape at a small size.
func TestTOMCATVStrategyOrdering(t *testing.T) {
	src := TOMCATV(33, 2)
	times := map[core.ScalarStrategy]float64{}
	for _, strat := range []core.ScalarStrategy{
		core.ScalarsReplicated, core.ScalarsProducerAligned, core.ScalarsSelected,
	} {
		opts := core.DefaultOptions()
		opts.Scalars = strat
		if strat == core.ScalarsReplicated {
			opts.AlignReductions = false
		}
		times[strat] = simulate(t, src, 8, opts).Time
	}
	if !(times[core.ScalarsSelected] < times[core.ScalarsProducerAligned] &&
		times[core.ScalarsProducerAligned] < times[core.ScalarsReplicated]) {
		t.Errorf("ordering violated: repl=%v producer=%v selected=%v",
			times[core.ScalarsReplicated], times[core.ScalarsProducerAligned],
			times[core.ScalarsSelected])
	}
}

// TestDGEFAAlignmentHelps: the Table 2 shape.
func TestDGEFAAlignmentHelps(t *testing.T) {
	src := DGEFA(48)
	optsDefault := core.DefaultOptions()
	optsDefault.AlignReductions = false
	tDefault := simulate(t, src, 8, optsDefault).Time
	tAligned := simulate(t, src, 8, core.DefaultOptions()).Time
	if tAligned >= tDefault {
		t.Errorf("aligned (%v) should beat default (%v)", tAligned, tDefault)
	}
}

// TestAPPSPPrivatizationHelps: the Table 3 shapes at a small size.
func TestAPPSPPrivatizationHelps(t *testing.T) {
	src2d := APPSP(6, 12, 12, 1, true)
	optsNoPartial := core.DefaultOptions()
	optsNoPartial.PartialPrivatization = false
	tNoPartial := simulate(t, src2d, 4, optsNoPartial).Time
	tPartial := simulate(t, src2d, 4, core.DefaultOptions()).Time
	if tPartial >= tNoPartial {
		t.Errorf("partial privatization (%v) should beat none (%v)", tPartial, tNoPartial)
	}

	src1d := APPSP(6, 12, 12, 1, false)
	optsNoPriv := core.DefaultOptions()
	optsNoPriv.PrivatizeArrays = false
	tNoPriv := simulate(t, src1d, 4, optsNoPriv).Time
	tPriv := simulate(t, src1d, 4, core.DefaultOptions()).Time
	if tPriv >= tNoPriv {
		t.Errorf("array privatization (%v) should beat none (%v)", tPriv, tNoPriv)
	}
}
