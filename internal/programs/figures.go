package programs

import "strings"

// Figure1 is the paper's §2.1 example: the four scalar mapping flavors
// (induction variable m, consumer-aligned x, producer-aligned y, and
// privatized-without-alignment z).
const Figure1 = `
program figure1
parameter n = 100
real a(n), b(n), c(n), d(n), e(n), f(n)
real x, y, z
integer i, m
!hpf$ align (i) with a(i) :: b, c, d
!hpf$ align (i) with a(*) :: e, f
!hpf$ distribute (block) :: a
m = 2
do i = 2, n-1
  m = m + 1
  x = b(i) + c(i)
  y = a(i) + b(i)
  z = e(i) + f(i)
  a(i+1) = y / z
  d(m) = x / z
end do
end
`

// Figure2 illustrates availability requirements for subscripts: p feeds a
// local subscript, q a subscript that must be broadcast.
const Figure2 = `
program figure2
parameter n = 64
real h(n,n), g(n,n), a(n), b(n), c(n)
real p, q
integer i
!hpf$ align g(i,j) with h(i,j)
!hpf$ align a(i) with h(i,*)
!hpf$ distribute (block,*) :: h
do i = 1, n
  p = b(i)
  q = c(i)
  a(i) = h(i,p) + g(q,i)
end do
end
`

// Figure4 demonstrates AlignLevel: the non-affine subscript s pushes
// B(s,j,k)'s alignment validity to the k loop.
const Figure4 = `
program figure4
parameter n = 8
real a(n,n,n), b(n,n,n)
real s
integer i, j, k
!hpf$ distribute (block,block,*) :: a, b
do i = 1, n
  do j = 1, n
    s = a(i,j,1)
    do k = 1, n
      a(i,j,k) = 1.0
      b(s,j,k) = 2.0
    end do
  end do
end do
end
`

// Figure5 is the reduction-mapping example: s is replicated across the
// reduction (second) grid dimension and aligned with row i of A in the
// first.
const Figure5 = `
program figure5
parameter n = 64
real a(n,n), b(n)
real s
integer i, j
!hpf$ align b(i) with a(i,*)
!hpf$ distribute (block,block) :: a
do i = 1, n
  s = 0.0
  do j = 1, n
    s = s + a(i,j)
  end do
  b(i) = s
end do
end
`

// Figure6 is the partial-privatization example adapted from APPSP: c is
// privatizable with respect to the k loop but not the j loop.
const Figure6 = `
program figure6
parameter nx = 8
parameter ny = 8
parameter nz = 8
real c(nx,ny,3), rsd(5,nx,ny,nz)
integer i, j, k
!hpf$ distribute (*,*,block,block) :: rsd
!hpf$ independent, new(c)
do k = 2, nz-1
  do j = 2, ny-1
    do i = 2, nx-1
      c(i,j,1) = rsd(2,i,j,k) + 1.0
    end do
  end do
  do j = 3, ny-1
    do i = 2, nx-1
      rsd(1,i,j,k) = c(i,j-1,1) * 2.0
    end do
  end do
end do
end
`

// Figure7 is the control-flow privatization example: both IF statements
// transfer control only within the i loop.
const Figure7 = `
program figure7
parameter n = 64
real a(n), b(n), c(n)
integer i
!hpf$ align (i) with a(i) :: b, c
!hpf$ distribute (block) :: a
do i = 1, n
  if (b(i) /= 0.0) then
    a(i) = a(i) / b(i)
    if (b(i) < 0.0) goto 100
  else
    a(i) = c(i)
    c(i) = c(i) * c(i)
  end if
100 continue
end do
end
`

// Figures maps figure names to their sources, for the examples and tools.
var Figures = map[string]string{
	"figure1": Figure1,
	"figure2": Figure2,
	"figure4": Figure4,
	"figure5": Figure5,
	"figure6": Figure6,
	"figure7": Figure7,
}

// StripPrivatization returns src with every privatization directive removed:
// INDEPENDENT/NODEPS loop-directive lines (and the NEW clauses riding on
// them) are dropped. Data-mapping directives — ALIGN, DISTRIBUTE,
// REDISTRIBUTE — stay: layout is an input to the compiler, privatization a
// fact the autopriv pass must rediscover on its own.
func StripPrivatization(src string) string {
	var b strings.Builder
	for _, line := range strings.Split(src, "\n") {
		t := strings.ToLower(strings.TrimSpace(line))
		if rest, ok := strings.CutPrefix(t, "!hpf$"); ok {
			rest = strings.TrimSpace(rest)
			if strings.HasPrefix(rest, "independent") || strings.HasPrefix(rest, "nodeps") {
				continue
			}
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// FiguresUnannotated maps each figure name to its directive-stripped source:
// the programs the paper's programmer annotated by hand, with every
// privatization assertion removed so only inference can parallelize them.
var FiguresUnannotated = func() map[string]string {
	out := make(map[string]string, len(Figures))
	for name, src := range Figures {
		out[name] = StripPrivatization(src)
	}
	return out
}()
