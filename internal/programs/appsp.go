package programs

import "fmt"

// APPSP returns an APPSP-style pseudo-application (§5.3, Figure 6): per
// iteration, a forward-elimination sweep along j for every plane k builds a
// work array c that is privatizable with respect to the k loop but not the
// j loop, followed by a z-direction relaxation. twoD selects the fixed 2-D
// distribution (*,*,BLOCK,BLOCK) over (j,k); otherwise the 1-D distribution
// (*,*,*,BLOCK) over k is used and the z-sweep brackets itself with
// redistributions (the transpose of the paper's sweepz).
func APPSP(nx, ny, nz, niter int, twoD bool) string {
	distr := "!hpf$ distribute (*,*,*,block) :: v"
	if twoD {
		distr = "!hpf$ distribute (*,*,block,block) :: v"
	}
	zsweep := `
!hpf$ redistribute v(*,*,block,*)
!hpf$ redistribute rsd(*,*,block,*)
  do k = 3, nz-1
    do j = 2, ny-1
      do i = 2, nx-1
        v(1,i,j,k) = v(1,i,j,k) + 0.2 * v(1,i,j,k-1)
        v(2,i,j,k) = v(2,i,j,k) + 0.2 * v(2,i,j,k-1)
      end do
    end do
  end do
!hpf$ redistribute v(*,*,*,block)
!hpf$ redistribute rsd(*,*,*,block)
`
	if twoD {
		// Under the 2-D distribution the z sweep runs in place (pipelined
		// over the k blocks).
		zsweep = `
  do k = 3, nz-1
    do j = 2, ny-1
      do i = 2, nx-1
        v(1,i,j,k) = v(1,i,j,k) + 0.2 * v(1,i,j,k-1)
        v(2,i,j,k) = v(2,i,j,k) + 0.2 * v(2,i,j,k-1)
      end do
    end do
  end do
`
	}
	return fmt.Sprintf(`
program appsp
parameter nx = %d
parameter ny = %d
parameter nz = %d
parameter niter = %d
real v(2,nx,ny,nz), rsd(2,nx,ny,nz), c(nx,ny,2)
integer i, j, k, it
!hpf$ align (m,i,j,k) with v(m,i,j,k) :: rsd
%s
do k = 1, nz
  do j = 1, ny
    do i = 1, nx
      v(1,i,j,k) = i * 0.01 + j * 0.02 + k * 0.03
      v(2,i,j,k) = i * 0.03 - j * 0.01 + k * 0.02
      rsd(1,i,j,k) = 0.0
      rsd(2,i,j,k) = 0.0
    end do
  end do
end do
do it = 1, niter
!hpf$ independent, new(c)
  do k = 2, nz-1
    do j = 3, ny-1
      do i = 2, nx-1
        rsd(1,i,j,k) = rsd(1,i,j-1,k) * 0.5 + v(1,i,j,k)
        c(i,j,1) = rsd(1,i,j,k) * 0.25 + v(1,i,j,k-1)
        c(i,j,2) = rsd(1,i,j-1,k) + v(2,i,j,k)
        rsd(2,i,j,k) = rsd(2,i,j,k) + c(i,j-1,1) * 0.5 + c(i,j,2) * 0.25
      end do
    end do
  end do
  do k = 2, nz-1
    do j = 2, ny-1
      do i = 2, nx-1
        v(1,i,j,k) = v(1,i,j,k) + 0.1 * rsd(1,i,j,k)
        v(2,i,j,k) = v(2,i,j,k) + 0.1 * rsd(2,i,j,k)
      end do
    end do
  end do
%s
end do
end
`, nx, ny, nz, niter, distr, zsweep)
}

// APPSPRef runs the same computation sequentially, returning the final v
// (flattened with dimension 1 fastest: ((k-1)*ny+(j-1))*nx*2 + (i-1)*2 +
// (m-1), matching the simulator's layout for v(2,nx,ny,nz)).
func APPSPRef(nx, ny, nz, niter int) []float64 {
	idx := func(m, i, j, k int) int {
		return (m - 1) + 2*((i-1)+nx*((j-1)+ny*(k-1)))
	}
	v := make([]float64, 2*nx*ny*nz)
	rsd := make([]float64, 2*nx*ny*nz)
	c := make([]float64, nx*ny*2)
	cidx := func(i, j, m int) int { return (i - 1) + nx*((j-1)+ny*(m-1)) }
	for k := 1; k <= nz; k++ {
		for j := 1; j <= ny; j++ {
			for i := 1; i <= nx; i++ {
				v[idx(1, i, j, k)] = float64(i)*0.01 + float64(j)*0.02 + float64(k)*0.03
				v[idx(2, i, j, k)] = float64(i)*0.03 - float64(j)*0.01 + float64(k)*0.02
			}
		}
	}
	for it := 0; it < niter; it++ {
		for k := 2; k <= nz-1; k++ {
			for j := 3; j <= ny-1; j++ {
				for i := 2; i <= nx-1; i++ {
					rsd[idx(1, i, j, k)] = rsd[idx(1, i, j-1, k)]*0.5 + v[idx(1, i, j, k)]
					c[cidx(i, j, 1)] = rsd[idx(1, i, j, k)]*0.25 + v[idx(1, i, j, k-1)]
					c[cidx(i, j, 2)] = rsd[idx(1, i, j-1, k)] + v[idx(2, i, j, k)]
					rsd[idx(2, i, j, k)] += c[cidx(i, j-1, 1)]*0.5 + c[cidx(i, j, 2)]*0.25
				}
			}
		}
		for k := 2; k <= nz-1; k++ {
			for j := 2; j <= ny-1; j++ {
				for i := 2; i <= nx-1; i++ {
					v[idx(1, i, j, k)] += 0.1 * rsd[idx(1, i, j, k)]
					v[idx(2, i, j, k)] += 0.1 * rsd[idx(2, i, j, k)]
				}
			}
		}
		for k := 3; k <= nz-1; k++ {
			for j := 2; j <= ny-1; j++ {
				for i := 2; i <= nx-1; i++ {
					v[idx(1, i, j, k)] += 0.2 * v[idx(1, i, j, k-1)]
					v[idx(2, i, j, k)] += 0.2 * v[idx(2, i, j, k-1)]
				}
			}
		}
	}
	return v
}
