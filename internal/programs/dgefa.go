package programs

import "fmt"

// DGEFA returns the LINPACK gaussian-elimination kernel with partial
// pivoting (§5.2): column-cyclic distribution, pivot search as a
// conditional maxloc reduction over the current column, row swap, column
// scaling, and the trailing-submatrix update. The reduction variables t0
// (pivot magnitude) and l (pivot row) are the §2.3 targets whose alignment
// Table 2 toggles.
func DGEFA(n int) string {
	return fmt.Sprintf(`
program dgefa
parameter n = %d
real a(n,n)
real t0, piv
integer i, j, k, l
!hpf$ distribute (*,cyclic) :: a
do j = 1, n
  do i = 1, n
    a(i,j) = mod(i*7 + j*3, 13) * 1.0 - 6.0
  end do
end do
do i = 1, n
  a(i,i) = a(i,i) + 13.5
end do
do k = 1, n-1
  t0 = abs(a(k,k))
  l = k
  do i = k+1, n
    if (abs(a(i,k)) > t0) then
      t0 = abs(a(i,k))
      l = i
    end if
  end do
  if (t0 /= 0.0) then
    piv = a(l,k)
    a(l,k) = a(k,k)
    a(k,k) = piv
    do i = k+1, n
      a(i,k) = -a(i,k) / piv
    end do
    do j = k+1, n
      piv = a(l,j)
      a(l,j) = a(k,j)
      a(k,j) = piv
      do i = k+1, n
        a(i,j) = a(i,j) + piv * a(i,k)
      end do
    end do
  end if
end do
end
`, n)
}

// DGEFARef performs the same factorization sequentially and returns the
// resulting matrix (flattened (j-1)*n+(i-1)).
func DGEFARef(n int) []float64 {
	idx := func(i, j int) int { return (j-1)*n + (i - 1) }
	a := make([]float64, n*n)
	mod := func(x, m int) int {
		r := x % m
		if r < 0 {
			r += m
		}
		return r
	}
	for j := 1; j <= n; j++ {
		for i := 1; i <= n; i++ {
			a[idx(i, j)] = float64(mod(i*7+j*3, 13)) - 6.0
		}
	}
	for i := 1; i <= n; i++ {
		a[idx(i, i)] += 13.5
	}
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for k := 1; k <= n-1; k++ {
		t0 := abs(a[idx(k, k)])
		l := k
		for i := k + 1; i <= n; i++ {
			if abs(a[idx(i, k)]) > t0 {
				t0 = abs(a[idx(i, k)])
				l = i
			}
		}
		if t0 == 0 {
			continue
		}
		piv := a[idx(l, k)]
		a[idx(l, k)] = a[idx(k, k)]
		a[idx(k, k)] = piv
		for i := k + 1; i <= n; i++ {
			a[idx(i, k)] = -a[idx(i, k)] / piv
		}
		for j := k + 1; j <= n; j++ {
			p := a[idx(l, j)]
			a[idx(l, j)] = a[idx(k, j)]
			a[idx(k, j)] = p
			for i := k + 1; i <= n; i++ {
				a[idx(i, j)] += p * a[idx(i, k)]
			}
		}
	}
	return a
}
