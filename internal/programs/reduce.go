package programs

import "fmt"

// Histogram returns the commutative-update benchmark of the reduce sweep: a
// block-distributed histogram h updated through the data-dependent
// subscript h(key(i)) = h(key(i)) + 1. Many iterations hit the same bin, so
// the update is a genuine cross-iteration array reduction: the collective
// (owner-computes) reference pays per-instance general communication to
// route every contribution to the bin's owner, while the privatized runtime
// accumulates into local partials and tree-merges once at loop exit. Counts
// are integers, so the two strategies agree bitwise despite reassociation.
func Histogram(n, m, niter int) string {
	return fmt.Sprintf(`
program histogram
parameter n = %d
parameter m = %d
parameter niter = %d
real h(m)
integer key(n)
integer i, it
!hpf$ distribute (block) :: h
!hpf$ distribute (block) :: key
do i = 1, n
  key(i) = mod(i*17 + 3, m) + 1
end do
do it = 1, niter
  do i = 1, n
    h(key(i)) = h(key(i)) + 1.0
  end do
end do
end
`, n, m, niter)
}

// HistogramRef computes the histogram sequentially (bin b at index b-1).
func HistogramRef(n, m, niter int) []float64 {
	h := make([]float64, m)
	for it := 1; it <= niter; it++ {
		for i := 1; i <= n; i++ {
			h[(i*17+3)%m]++
		}
	}
	return h
}

// DotSweep returns the second reduce-sweep benchmark: a column-wise
// dot-product sweep r(j) = r(j) + x(i-1,j)*y(i,j) carried by the i-loop,
// where each outer iteration both produces row i of x and consumes the row
// the previous iteration produced. The loop-carried read defeats both
// message vectorization past the i-loop and array privatization of x, so
// the collective reference pays one aggregated row exchange from the row's
// owner to r's owners per outer iteration — O(n) exchanges. The privatized
// runtime reads the row where it lives, folds the products into the
// executing processor's partial copy of r, and tree-merges the P partials
// once when the i-loop completes — O(log P) hops.
func DotSweep(n, m int) string {
	return fmt.Sprintf(`
program dotsweep
parameter n = %d
parameter m = %d
real x(n,m), y(n,m), r(m)
integer i, j
!hpf$ align y(i,j) with x(i,j)
!hpf$ distribute (block,*) :: x
!hpf$ distribute (block) :: r
do i = 1, n
  do j = 1, m
    y(i,j) = mod(i*2 + j*7, 9) * 0.5
  end do
end do
do j = 1, m
  x(1,j) = mod(5 + j*3, 11) * 0.25
end do
do i = 2, n
  do j = 1, m
    x(i,j) = mod(i*5 + j*3, 11) * 0.25
  end do
  do j = 1, m
    r(j) = r(j) + x(i-1,j) * y(i,j)
  end do
end do
end
`, n, m)
}

// DotSweepRef computes the sweep sequentially in loop order (column j at
// index j-1) — the association the collective strategy reproduces.
func DotSweepRef(n, m int) []float64 {
	r := make([]float64, m)
	for i := 2; i <= n; i++ {
		for j := 1; j <= m; j++ {
			x := float64(((i-1)*5+j*3)%11) * 0.25
			y := float64((i*2+j*7)%9) * 0.5
			r[j-1] += x * y
		}
	}
	return r
}
