package ssa

import (
	"fmt"
	"sort"

	"phpf/internal/ir"
)

// ValueKind discriminates SSA values.
type ValueKind int

const (
	// VInit is the implicit entry definition a variable has before any
	// explicit assignment (reading it yields an undefined value).
	VInit ValueKind = iota
	// VDef is an explicit assignment statement.
	VDef
	// VPhi merges values at a control flow join.
	VPhi
)

// Value is one SSA definition of a scalar variable.
type Value struct {
	ID      int
	Kind    ValueKind
	Var     *ir.Var
	Version int

	Stmt  *ir.Stmt  // VDef: the defining assignment
	Block *ir.Block // block holding the definition (phi: the join block)

	// Phi arguments, one per predecessor of Block (VPhi only). An argument
	// may be nil if the corresponding predecessor is unreachable.
	Args []*Value

	// UseRefs are the direct textual uses bound to this value.
	UseRefs []*ir.Ref
	// UsePhis are the phi values that take this value as an argument.
	UsePhis []*Value

	// HeaderLoop is the loop whose header block carries this phi (nil for
	// non-loop-header phis and non-phis).
	HeaderLoop *ir.Loop
}

func (v *Value) String() string {
	switch v.Kind {
	case VInit:
		return fmt.Sprintf("%s.init", v.Var.Name)
	case VPhi:
		return fmt.Sprintf("%s.%d=phi@B%d", v.Var.Name, v.Version, v.Block.ID)
	default:
		return fmt.Sprintf("%s.%d@s%d", v.Var.Name, v.Version, v.Stmt.ID)
	}
}

// SSA is the result of construction.
type SSA struct {
	Prog   *ir.Program
	CFG    *ir.CFG
	Dom    *DomInfo
	Values []*Value

	// DefOf maps an assignment statement (with scalar lhs) to its value.
	DefOf map[*ir.Stmt]*Value
	// UseDef maps every scalar use reference to the value it reads.
	UseDef map[*ir.Ref]*Value
}

// Build constructs SSA form for all scalar (non-loop-index) variables.
func Build(p *ir.Program, g *ir.CFG) *SSA {
	s := &SSA{
		Prog:   p,
		CFG:    g,
		Dom:    ComputeDom(g),
		DefOf:  map[*ir.Stmt]*Value{},
		UseDef: map[*ir.Ref]*Value{},
	}
	s.build()
	return s
}

func (s *SSA) newValue(kind ValueKind, v *ir.Var, blk *ir.Block) *Value {
	val := &Value{ID: len(s.Values), Kind: kind, Var: v, Block: blk}
	s.Values = append(s.Values, val)
	return val
}

// ssaVars returns the scalar variables subject to renaming, in declaration
// order.
func (s *SSA) ssaVars() []*ir.Var {
	var out []*ir.Var
	for _, v := range s.Prog.VarList {
		if !v.IsArray() && !v.IsLoopIndex {
			out = append(out, v)
		}
	}
	return out
}

func (s *SSA) build() {
	vars := s.ssaVars()

	// Definition sites per variable.
	defBlocks := map[*ir.Var][]*ir.Block{}
	for _, b := range s.Dom.Reachable {
		for _, st := range b.Stmts {
			if st.Kind == ir.SAssign && !st.Lhs.Var.IsArray() {
				defBlocks[st.Lhs.Var] = append(defBlocks[st.Lhs.Var], b)
			}
		}
	}

	// Phi placement via iterated dominance frontiers. Every variable also
	// has an implicit init def at entry.
	phis := map[*ir.Block]map[*ir.Var]*Value{} // join block -> var -> phi
	for _, v := range vars {
		work := append([]*ir.Block{}, defBlocks[v]...)
		work = append(work, s.CFG.Entry)
		inWork := map[*ir.Block]bool{}
		for _, b := range work {
			inWork[b] = true
		}
		hasPhi := map[*ir.Block]bool{}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, f := range s.Dom.Frontier[b.ID] {
				if hasPhi[f] {
					continue
				}
				hasPhi[f] = true
				phi := s.newValue(VPhi, v, f)
				phi.Args = make([]*Value, len(f.Preds))
				if f.IsHeader {
					phi.HeaderLoop = f.Loop
				}
				if phis[f] == nil {
					phis[f] = map[*ir.Var]*Value{}
				}
				phis[f][v] = phi
				if !inWork[f] {
					inWork[f] = true
					work = append(work, f)
				}
			}
		}
	}

	// Renaming: dominator-tree walk with version stacks.
	stack := map[*ir.Var][]*Value{}
	version := map[*ir.Var]int{}
	for _, v := range vars {
		init := s.newValue(VInit, v, s.CFG.Entry)
		stack[v] = []*Value{init}
	}
	top := func(v *ir.Var) *Value { return stack[v][len(stack[v])-1] }
	push := func(val *Value) {
		version[val.Var]++
		val.Version = version[val.Var]
		stack[val.Var] = append(stack[val.Var], val)
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		pushed := map[*ir.Var]int{}
		// Phi definitions first.
		if pm := phis[b]; pm != nil {
			// Deterministic order.
			var pvars []*ir.Var
			for v := range pm {
				pvars = append(pvars, v)
			}
			sort.Slice(pvars, func(i, j int) bool { return pvars[i].Name < pvars[j].Name })
			for _, v := range pvars {
				push(pm[v])
				pushed[v]++
			}
		}
		for _, st := range b.Stmts {
			// Uses read the current version.
			for _, u := range st.Uses {
				if u.Var.IsArray() || u.Var.IsLoopIndex {
					continue
				}
				def := top(u.Var)
				s.UseDef[u] = def
				def.UseRefs = append(def.UseRefs, u)
			}
			// Then the definition, if scalar.
			if st.Kind == ir.SAssign && !st.Lhs.Var.IsArray() {
				val := s.newValue(VDef, st.Lhs.Var, b)
				val.Stmt = st
				s.DefOf[st] = val
				push(val)
				pushed[st.Lhs.Var]++
			}
		}
		// Fill phi arguments in successors.
		for _, succ := range b.Succs {
			pm := phis[succ]
			if pm == nil {
				continue
			}
			pos := -1
			for i, p := range succ.Preds {
				if p == b {
					pos = i
					break
				}
			}
			for v, phi := range pm {
				arg := top(v)
				phi.Args[pos] = arg
				arg.UsePhis = append(arg.UsePhis, phi)
			}
		}
		for _, c := range s.Dom.Children[b.ID] {
			rename(c)
		}
		for v, n := range pushed {
			stack[v] = stack[v][:len(stack[v])-n]
		}
	}
	rename(s.CFG.Entry)
}

// ReachingDefs returns the non-phi values (explicit defs and init values)
// that may reach the given use, flattening phi functions transitively.
// The result is deterministic (ordered by value ID).
func (s *SSA) ReachingDefs(use *ir.Ref) []*Value {
	root := s.UseDef[use]
	if root == nil {
		return nil
	}
	seen := map[*Value]bool{}
	var out []*Value
	var walk func(v *Value)
	walk = func(v *Value) {
		if v == nil || seen[v] {
			return
		}
		seen[v] = true
		if v.Kind == VPhi {
			for _, a := range v.Args {
				walk(a)
			}
			return
		}
		out = append(out, v)
	}
	walk(root)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ReachedUse describes one use reached by a definition, with the loops whose
// back edge some def→use path crosses (the value is carried into a later
// iteration of those loops).
type ReachedUse struct {
	Ref *ir.Ref
	// CrossesBackOf holds loops whose back edge was crossed on some path
	// from the definition to this use.
	CrossesBackOf map[*ir.Loop]bool
}

// ReachedUses returns every textual use the definition's value may reach,
// flattening phis, with back-edge crossing information. Deterministic order
// (by ref ID).
func (s *SSA) ReachedUses(def *Value) []ReachedUse {
	type state struct {
		val     *Value
		crossed map[*ir.Loop]bool
	}
	// For termination, track the best-known crossing sets per value; revisit
	// a value only when the crossing set grows.
	seen := map[*Value]map[*ir.Loop]bool{}
	uses := map[*ir.Ref]map[*ir.Loop]bool{}

	subset := func(a, b map[*ir.Loop]bool) bool {
		for l := range a {
			if !b[l] {
				return false
			}
		}
		return true
	}
	merge := func(dst, src map[*ir.Loop]bool) map[*ir.Loop]bool {
		out := map[*ir.Loop]bool{}
		for l := range dst {
			out[l] = true
		}
		for l := range src {
			out[l] = true
		}
		return out
	}

	work := []state{{val: def, crossed: map[*ir.Loop]bool{}}}
	for len(work) > 0 {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		if prev, ok := seen[st.val]; ok && subset(st.crossed, prev) {
			continue
		}
		if prev, ok := seen[st.val]; ok {
			seen[st.val] = merge(prev, st.crossed)
		} else {
			seen[st.val] = merge(nil, st.crossed)
		}
		for _, u := range st.val.UseRefs {
			if prev, ok := uses[u]; ok {
				uses[u] = merge(prev, st.crossed)
			} else {
				uses[u] = merge(nil, st.crossed)
			}
		}
		for _, phi := range st.val.UsePhis {
			crossed := st.crossed
			if phi.HeaderLoop != nil && s.isBackEdgeArg(phi, st.val) {
				crossed = merge(st.crossed, map[*ir.Loop]bool{phi.HeaderLoop: true})
			}
			work = append(work, state{val: phi, crossed: crossed})
		}
	}

	var out []ReachedUse
	for r, crossed := range uses {
		out = append(out, ReachedUse{Ref: r, CrossesBackOf: crossed})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref.ID < out[j].Ref.ID })
	return out
}

// isBackEdgeArg reports whether val flows into phi through a back edge of
// the phi's header loop (i.e. from a predecessor inside the loop).
func (s *SSA) isBackEdgeArg(phi, val *Value) bool {
	for i, a := range phi.Args {
		if a != val {
			continue
		}
		pred := phi.Block.Preds[i]
		if ir.Encloses(phi.HeaderLoop, pred.Loop) && pred.Loop != nil {
			return true
		}
	}
	return false
}

// IsUniqueDef reports whether def is the only reaching definition of every
// use it reaches (the paper's IsUniqueDef predicate in Figure 3).
func (s *SSA) IsUniqueDef(def *Value) bool {
	for _, ru := range s.ReachedUses(def) {
		defs := s.ReachingDefs(ru.Ref)
		if len(defs) != 1 || defs[0] != def {
			return false
		}
	}
	return true
}
