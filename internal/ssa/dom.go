// Package ssa constructs static single assignment form for the scalar
// variables of a lowered program (Cytron et al. [5] in the paper), and
// exposes the def-use relations the privatization analysis is built on:
// reaching definitions of a use and reached uses of a definition, traced
// through phi functions.
package ssa

import (
	"phpf/internal/ir"
)

// DomInfo holds dominator-tree information for a CFG, computed with the
// Cooper-Harvey-Kennedy iterative algorithm over a reverse postorder.
type DomInfo struct {
	// Reachable lists blocks reachable from entry in reverse postorder.
	Reachable []*ir.Block
	// RPO[b.ID] is the reverse-postorder number (only for reachable blocks).
	RPO []int
	// Idom[b.ID] is the immediate dominator (nil for entry / unreachable).
	Idom []*ir.Block
	// Children[b.ID] lists the dominator-tree children of b.
	Children [][]*ir.Block
	// Frontier[b.ID] is the dominance frontier of b.
	Frontier [][]*ir.Block

	isReachable []bool
}

// ComputeDom computes dominators and dominance frontiers for g.
func ComputeDom(g *ir.CFG) *DomInfo {
	n := len(g.Blocks)
	d := &DomInfo{
		RPO:         make([]int, n),
		Idom:        make([]*ir.Block, n),
		Children:    make([][]*ir.Block, n),
		Frontier:    make([][]*ir.Block, n),
		isReachable: make([]bool, n),
	}
	// Postorder DFS from entry.
	var post []*ir.Block
	visited := make([]bool, n)
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b.ID] = true
		for _, s := range b.Succs {
			if !visited[s.ID] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	// Reverse postorder.
	for i := len(post) - 1; i >= 0; i-- {
		b := post[i]
		d.RPO[b.ID] = len(d.Reachable)
		d.Reachable = append(d.Reachable, b)
		d.isReachable[b.ID] = true
	}

	// Iterative dominator computation.
	intersect := func(b1, b2 *ir.Block) *ir.Block {
		for b1 != b2 {
			for d.RPO[b1.ID] > d.RPO[b2.ID] {
				b1 = d.Idom[b1.ID]
			}
			for d.RPO[b2.ID] > d.RPO[b1.ID] {
				b2 = d.Idom[b2.ID]
			}
		}
		return b1
	}
	d.Idom[g.Entry.ID] = g.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range d.Reachable {
			if b == g.Entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if !d.isReachable[p.ID] || d.Idom[p.ID] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.Idom[b.ID] != newIdom {
				d.Idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	d.Idom[g.Entry.ID] = nil // entry has no idom

	for _, b := range d.Reachable {
		if id := d.Idom[b.ID]; id != nil {
			d.Children[id.ID] = append(d.Children[id.ID], b)
		}
	}

	// Dominance frontiers (Cytron et al.).
	for _, b := range d.Reachable {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !d.isReachable[p.ID] {
				continue
			}
			runner := p
			for runner != nil && runner != d.Idom[b.ID] {
				d.Frontier[runner.ID] = appendUnique(d.Frontier[runner.ID], b)
				runner = d.Idom[runner.ID]
			}
		}
	}
	return d
}

// Dominates reports whether a dominates b (reflexively).
func (d *DomInfo) Dominates(a, b *ir.Block) bool {
	for x := b; x != nil; x = d.Idom[x.ID] {
		if x == a {
			return true
		}
	}
	return false
}

// IsReachable reports whether b is reachable from entry.
func (d *DomInfo) IsReachable(b *ir.Block) bool { return d.isReachable[b.ID] }

func appendUnique(s []*ir.Block, b *ir.Block) []*ir.Block {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}
