package ssa

import (
	"testing"

	"phpf/internal/ir"
	"phpf/internal/parser"
)

func buildSSA(t *testing.T, src string) (*ir.Program, *SSA) {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatalf("ir: %v", err)
	}
	g, err := ir.BuildCFG(p)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return p, Build(p, g)
}

// findAssign returns the i-th assignment to the named variable (0-based).
func findAssign(p *ir.Program, name string, idx int) *ir.Stmt {
	n := 0
	for _, st := range p.Stmts {
		if st.Kind == ir.SAssign && st.Lhs.Var.Name == name {
			if n == idx {
				return st
			}
			n++
		}
	}
	return nil
}

// findUse returns the i-th use reference of the named variable.
func findUse(p *ir.Program, name string, idx int) *ir.Ref {
	n := 0
	for _, r := range p.Refs {
		if !r.IsDef && r.Var.Name == name {
			if n == idx {
				return r
			}
			n++
		}
	}
	return nil
}

func TestSSAStraightLine(t *testing.T) {
	src := `
program t
real x, y
x = 1.0
y = x
x = 2.0
y = x
end
`
	p, s := buildSSA(t, src)
	use0 := findUse(p, "x", 0)
	use1 := findUse(p, "x", 1)
	d0 := s.DefOf[findAssign(p, "x", 0)]
	d1 := s.DefOf[findAssign(p, "x", 1)]
	if s.UseDef[use0] != d0 {
		t.Errorf("first use of x bound to %v, want %v", s.UseDef[use0], d0)
	}
	if s.UseDef[use1] != d1 {
		t.Errorf("second use of x bound to %v, want %v", s.UseDef[use1], d1)
	}
	if d0.Version == d1.Version {
		t.Error("versions not distinct")
	}
}

func TestSSAIfJoinPhi(t *testing.T) {
	src := `
program t
real x, y, c
if (c > 0.0) then
  x = 1.0
else
  x = 2.0
end if
y = x
end
`
	p, s := buildSSA(t, src)
	use := findUse(p, "x", 0)
	defs := s.ReachingDefs(use)
	if len(defs) != 2 {
		t.Fatalf("reaching defs of x use = %v, want 2", defs)
	}
	d0 := s.DefOf[findAssign(p, "x", 0)]
	d1 := s.DefOf[findAssign(p, "x", 1)]
	got := map[*Value]bool{defs[0]: true, defs[1]: true}
	if !got[d0] || !got[d1] {
		t.Errorf("defs = %v, want {%v %v}", defs, d0, d1)
	}
	// Neither branch def is unique.
	if s.IsUniqueDef(d0) || s.IsUniqueDef(d1) {
		t.Error("branch defs should not be unique reaching defs")
	}
}

func TestSSAIfNoElseIncludesInit(t *testing.T) {
	src := `
program t
real x, y, c
x = 5.0
if (c > 0.0) then
  x = 1.0
end if
y = x
end
`
	p, s := buildSSA(t, src)
	use := findUse(p, "x", 0)
	defs := s.ReachingDefs(use)
	if len(defs) != 2 {
		t.Fatalf("reaching defs = %v, want 2 (x=5 and x=1)", defs)
	}
	for _, d := range defs {
		if d.Kind == VInit {
			t.Error("init value should be shadowed by x=5.0")
		}
	}
}

func TestSSALoopCarried(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n)
real s
integer i
s = 0.0
do i = 1, n
  s = s + a(i)
end do
a(1) = s
end
`
	p, s := buildSSA(t, src)
	// The use of s inside the loop ("s + a(i)") reaches from both the outer
	// s=0 and the loop's own s=s+a(i).
	useIn := findUse(p, "s", 0)
	defs := s.ReachingDefs(useIn)
	if len(defs) != 2 {
		t.Fatalf("reaching defs of inner s use = %v, want 2", defs)
	}
	dOuter := s.DefOf[findAssign(p, "s", 0)]
	dInner := s.DefOf[findAssign(p, "s", 1)]

	// The inner def reaches the inner use only by crossing the back edge.
	loop := p.Loops[0]
	for _, ru := range s.ReachedUses(dInner) {
		if ru.Ref == useIn && !ru.CrossesBackOf[loop] {
			t.Error("inner def reaches inner use without back-edge crossing")
		}
	}
	// The outer def reaches the inner use without crossing.
	for _, ru := range s.ReachedUses(dOuter) {
		if ru.Ref == useIn && ru.CrossesBackOf[loop] {
			t.Error("outer def should reach first-iteration use without crossing")
		}
	}
	// Both defs reach the use of s after the loop.
	useOut := findUse(p, "s", 1)
	defsOut := s.ReachingDefs(useOut)
	if len(defsOut) != 2 {
		t.Errorf("defs after loop = %v, want 2", defsOut)
	}
}

func TestSSAPrivatizablePattern(t *testing.T) {
	// x written then read in the same iteration, not live out: its def
	// reaches only uses inside the loop and never crosses the back edge.
	src := `
program t
parameter n = 4
real b(n), d(n)
real x
integer i
do i = 1, n
  x = b(i)
  d(i) = x
end do
end
`
	p, s := buildSSA(t, src)
	d := s.DefOf[findAssign(p, "x", 0)]
	loop := p.Loops[0]
	rus := s.ReachedUses(d)
	if len(rus) != 1 {
		t.Fatalf("reached uses = %v, want 1", rus)
	}
	ru := rus[0]
	if ru.CrossesBackOf[loop] {
		t.Error("same-iteration use should not cross back edge")
	}
	if !ir.Encloses(loop, ru.Ref.Stmt.Loop) {
		t.Error("use should be inside the loop")
	}
	if !s.IsUniqueDef(d) {
		t.Error("x def should be the unique reaching def")
	}
}

func TestSSAInductionShape(t *testing.T) {
	// m = m + 1 inside a loop: the rhs use of m reaches from the outer
	// m=2 and the increment itself (via back edge).
	src := `
program t
parameter n = 4
real d(n)
integer i, m
m = 2
do i = 1, n
  m = m + 1
  d(m) = 0.0
end do
end
`
	p, s := buildSSA(t, src)
	inc := findAssign(p, "m", 1)
	dInc := s.DefOf[inc]
	loop := p.Loops[0]
	// The increment's def reaches: the rhs use of m (crossing the back
	// edge) and the subscript use in d(m) (same iteration, no crossing).
	var subUse, rhsUse *ir.Ref
	for _, r := range p.Refs {
		if r.IsDef || r.Var.Name != "m" {
			continue
		}
		if r.InSubscript {
			subUse = r
		} else {
			rhsUse = r
		}
	}
	if subUse == nil || rhsUse == nil {
		t.Fatal("uses of m not found")
	}
	for _, ru := range s.ReachedUses(dInc) {
		switch ru.Ref {
		case subUse:
			if ru.CrossesBackOf[loop] {
				t.Error("d(m) use should be same-iteration")
			}
		case rhsUse:
			if !ru.CrossesBackOf[loop] {
				t.Error("m+1 rhs use should cross the back edge")
			}
		}
	}
}

func TestSSAValuesHaveBlocks(t *testing.T) {
	src := `
program t
real x, c
if (c > 0.0) then
  x = 1.0
end if
c = x
end
`
	_, s := buildSSA(t, src)
	for _, v := range s.Values {
		if v.Block == nil {
			t.Errorf("value %v has no block", v)
		}
		if v.Kind == VPhi && len(v.Args) == 0 {
			t.Errorf("phi %v has no args", v)
		}
	}
}

// TestDominatorsBruteForce cross-checks the iterative dominator computation
// against a brute-force reachability definition on a CFG with branches,
// loops and a goto.
func TestDominatorsBruteForce(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n), b(n)
real x
integer i, j
do i = 1, n
  if (b(i) > 0.0) then
    x = b(i)
    if (x > 1.0) goto 100
  else
    x = 0.0
  end if
  do j = 1, n
    a(j) = x
  end do
100 continue
end do
end
`
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build(ap)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ir.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	d := ComputeDom(g)

	// Brute force: a dominates b iff removing a makes b unreachable.
	reachableWithout := func(removed *ir.Block) map[*ir.Block]bool {
		seen := map[*ir.Block]bool{}
		var dfs func(*ir.Block)
		dfs = func(b *ir.Block) {
			if b == removed || seen[b] {
				return
			}
			seen[b] = true
			for _, s := range b.Succs {
				dfs(s)
			}
		}
		dfs(g.Entry)
		return seen
	}
	for _, a := range d.Reachable {
		without := reachableWithout(a)
		for _, b := range d.Reachable {
			want := a == b || !without[b]
			got := d.Dominates(a, b)
			if got != want {
				t.Errorf("Dominates(B%d, B%d) = %v, want %v", a.ID, b.ID, got, want)
			}
		}
	}
}

func TestDomFrontierProperty(t *testing.T) {
	// For every block f in DF(b): b dominates some pred of f, and b does
	// not strictly dominate f.
	src := `
program t
parameter n = 4
real a(n), c(n)
real x
integer i
do i = 1, n
  if (c(i) > 0.0) then
    x = 1.0
  else
    x = 2.0
  end if
  a(i) = x
end do
end
`
	ap, _ := parser.Parse(src)
	p, _ := ir.Build(ap)
	g, _ := ir.BuildCFG(p)
	d := ComputeDom(g)
	for _, b := range d.Reachable {
		for _, f := range d.Frontier[b.ID] {
			domsAPred := false
			for _, pr := range f.Preds {
				if d.IsReachable(pr) && d.Dominates(b, pr) {
					domsAPred = true
				}
			}
			if !domsAPred {
				t.Errorf("B%d in DF(B%d) but B%d dominates no pred", f.ID, b.ID, b.ID)
			}
			if b != f && d.Dominates(b, f) {
				t.Errorf("B%d strictly dominates its frontier member B%d", b.ID, f.ID)
			}
		}
	}
}

// TestSSADefDominatesUse is the core SSA invariant: every non-phi value's
// definition block dominates the block of each of its direct uses (for phi
// arguments, it dominates the corresponding predecessor).
func TestSSADefDominatesUse(t *testing.T) {
	src := `
program t
parameter n = 4
real a(n), c(n)
real x, s
integer i, j
s = 0.0
do i = 1, n
  if (c(i) > 0.0) then
    x = 1.0
  else
    x = 2.0
  end if
  do j = 1, n
    s = s + a(j) * x
  end do
  a(i) = s
end do
end
`
	p, s := buildSSA(t, src)
	blockOf := map[*ir.Stmt]*ir.Block{}
	for _, b := range s.CFG.Blocks {
		for _, st := range b.Stmts {
			blockOf[st] = b
		}
	}
	_ = p
	for _, v := range s.Values {
		for _, u := range v.UseRefs {
			ub := blockOf[u.Stmt]
			if !s.Dom.Dominates(v.Block, ub) {
				t.Errorf("def %v does not dominate use in B%d (stmt s%d)", v, ub.ID, u.Stmt.ID)
			}
		}
		for _, phi := range v.UsePhis {
			for i, a := range phi.Args {
				if a != v {
					continue
				}
				pred := phi.Block.Preds[i]
				if s.Dom.IsReachable(pred) && !s.Dom.Dominates(v.Block, pred) {
					t.Errorf("phi arg %v does not dominate pred B%d of %v", v, pred.ID, phi)
				}
			}
		}
	}
}
