package eval

import (
	"testing"

	"phpf/internal/core"
	"phpf/internal/ir"
	"phpf/internal/parser"
	"phpf/internal/spmd"
)

func compile(t *testing.T, src string, nprocs int) *spmd.Program {
	t.Helper()
	ap, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cres, err := core.BuildAndAnalyze(ap, nprocs, core.DefaultOptions())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return spmd.Generate(cres)
}

// redistSrc has an owner-computed loop nest followed by an executable
// redistribution, so a State sees both a memoized union set and a dynamic
// remap.
const redistSrc = `
program t
parameter n = 16
real a(n,n)
integer i, j
!hpf$ distribute (block,*) :: a
do i = 1, n
  do j = 1, n
    a(i,j) = 1.0
  end do
end do
!hpf$ redistribute a(*,block)
end
`

// TestRedistributeInvalidatesUnionCache is the regression test for the
// stale-union-set bug: ApplyRedistribute swaps the dynamic mapping but, before
// the fix, left the epoch untouched, so a union execution set memoized for the
// current epoch kept being served after the remap. The test witnesses the
// staleness through the loop index: it memoizes the set at one index value,
// changes the index without advancing the epoch (only the walker does that),
// and applies the redistribution — which must invalidate the memo, so the next
// UnionSet call recomputes instead of replaying the stale entry.
func TestRedistributeInvalidatesUnionCache(t *testing.T) {
	p := compile(t, redistSrc, 4)
	s, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	var outer *ir.Loop
	for _, l := range p.Res.Prog.Loops {
		if l.Index.Name == "i" {
			outer = l
		}
	}
	if outer == nil {
		t.Fatal("loop over i not found")
	}
	var redist *ir.Stmt
	for _, st := range p.Res.Prog.Stmts {
		if st.Kind == ir.SRedistribute {
			redist = st
		}
	}
	if redist == nil {
		t.Fatal("redistribute statement not found")
	}

	// Memoize the union set for row 13 (block size 4 on 4 procs -> proc 3).
	s.indices[outer.Index.Slot] = 13
	before := s.UnionSet(outer)
	if got, want := before.Procs(), []int{3}; len(got) != 1 || got[0] != want[0] {
		t.Fatalf("union set at i=13 = %v, want %v", got, want)
	}

	// Move the index without touching the epoch, then redistribute. The
	// remap must bump the epoch; without the bump the next UnionSet call
	// returns the memoized i=13 set.
	s.indices[outer.Index.Slot] = 1
	if err := s.ApplyRedistribute(redist); err != nil {
		t.Fatal(err)
	}
	after := s.UnionSet(outer)
	if got := after.Procs(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("union set after redistribute at i=1 = %v, want [0] (stale memo served?)", got)
	}

	// The remap itself must be visible through the dynamic-mapping view.
	a := p.Res.Prog.LookupVar("a")
	if a == nil {
		t.Fatal("array a not found")
	}
	if s.DynMap(a) == p.Res.Mapping.Arrays[a] {
		t.Error("DynMap(a) still the static mapping after ApplyRedistribute")
	}
}

// TestSlotViews pins the map-compatibility views over the slot-indexed state:
// the accessors and the materialized maps must agree, and the array view must
// alias the live image (as the former map fields did).
func TestSlotViews(t *testing.T) {
	p := compile(t, redistSrc, 4)
	s, err := NewState(p)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Res.Prog.LookupVar("a")
	iv := p.Res.Prog.LookupVar("i")
	if a == nil || iv == nil {
		t.Fatal("variables not found")
	}
	if got := len(s.Array(a)); got != 16*16 {
		t.Fatalf("len(Array(a)) = %d, want 256", got)
	}
	s.Array(a)[5] = 42
	if got := s.Arrays()[a][5]; got != 42 {
		t.Fatalf("Arrays() view does not alias the live image: got %v", got)
	}
	s.indices[iv.Slot] = 7
	if got := s.Indices()[iv]; got != 7 {
		t.Fatalf("Indices() view = %v, want 7", got)
	}
	if got := s.Index(iv); got != 7 {
		t.Fatalf("Index(i) = %v, want 7", got)
	}
	// Scalars() lists only assigned scalars.
	if got := len(s.Scalars()); got != 0 {
		t.Fatalf("Scalars() on a fresh state has %d entries, want 0", got)
	}
	if s.Dyn()[a] == nil {
		t.Fatal("Dyn() view misses the distributed array")
	}
	if s.Dyn()[a] != s.DynMap(a) {
		t.Fatal("Dyn() view disagrees with DynMap")
	}
}
