// Package eval is the shared interpretation core of the two execution
// backends: the sequential cost-model simulator (internal/sim) and the
// concurrent SPMD executor (internal/exec). Both walk the same spmd.Program
// through the same value semantics, execution-set evaluation, and
// communication decisions defined here, so that their numeric results are
// bit-for-bit identical by construction and any divergence is a real bug in
// one of the backends — the property the differential oracle (exec.Differ)
// checks.
//
// The core is deliberately free of cost accounting: backends observe the
// walk through the Backend interface (see walk.go) and charge their own
// machine models or perform real message passing at the decision points.
package eval

import (
	"fmt"
	"math"

	"phpf/internal/ast"
	"phpf/internal/core"
	"phpf/internal/diag"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/spmd"
)

// maxExactInt bounds every integer value the interpreter manipulates (loop
// bounds, subscripts, trip counts) to the contiguously representable float64
// range, 2^53. Values beyond it would silently lose integer precision in the
// float-backed evaluator and can drive int64 arithmetic to wrap on
// adversarial (fuzz-reachable) loop bounds; they are rejected with a
// diagnostic instead.
const maxExactInt = int64(1) << 53

// maxArrayElems caps a single array's element count. Larger declarations are
// almost certainly adversarial inputs (the benchmarks top out around 10^6
// elements) and would otherwise OOM or overflow offset arithmetic.
const maxArrayElems = int64(1) << 31

// NumericError reports an integer value or computation that left the exactly
// representable range — the structured diagnostic the overflow guards
// return instead of wrapping.
type NumericError struct {
	Line int     // source line when known (0 otherwise)
	What string  // which quantity overflowed
	Val  float64 // the offending value when meaningful
}

func (e *NumericError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %s out of range (%v exceeds 2^53)", e.Line, e.What, e.Val)
	}
	return fmt.Sprintf("%s out of range (%v exceeds 2^53)", e.What, e.Val)
}

// State is one interpretation context: the full memory image plus the
// dynamic (possibly redistributed) array mappings. The sequential simulator
// holds one State; the concurrent executor holds one per worker — replicated
// execution keeps every image identical, which is what makes the SPMD
// programs under the paper's mappings semantically interchangeable.
//
// The memory image is slot-indexed: every variable carries a dense slot
// number (ir.AssignSlots), and values live in flat slices indexed by it, so
// the innermost interpretation path costs an array index instead of a
// pointer-keyed map probe. The former map fields survive as view methods
// (Scalars, Arrays, Indices, Dyn) that materialize the equivalent maps.
type State struct {
	Prog *spmd.Program

	// slots is Prog's variable numbering (slot -> variable).
	slots []*ir.Var

	scalars   []float64 // by Var.Slot; scalar values
	scalarSet []bool    // by Var.Slot; true once Store wrote the scalar
	indices   []int64   // by Var.Slot; current loop-index values
	arrays    [][]float64
	// dyn holds the current (possibly redistributed) mapping per array.
	dyn  []*dist.ArrayMap
	priv []*core.ArrayPrivatization // by Var.Slot; privatization override

	// unionCache memoizes the per-iteration union execution set by
	// Loop.ID; unionEpoch records the epoch an entry was computed at
	// (-1 = never). epoch advances on every loop iteration and on every
	// dynamic remapping (REDISTRIBUTE), which invalidates the cache.
	unionCache []dist.ProcSet
	unionEpoch []int64
	epoch      int64

	// unionPart caches, per loop, the statically known contributors to the
	// loop's union execution set (built on first use).
	unionPart [][]unionContrib

	// idxScratch is the reusable subscript buffer OwnerSet evaluates into.
	idxScratch []int64

	// Privatized-reduction state (see reduce.go). partials[acc] is the
	// combine's partial table — nprocs rows of partialElems[acc] elements,
	// row p holding processor p's private partial — or nil when the combine
	// runs collectively. Indexed by spmd.Combine.AccIndex.
	reduceMode   core.ReduceMode
	partials     [][]float64
	partialElems []int64

	// walk points at the tracked walker currently interpreting this state
	// (nil outside WalkResume); Cursor reads the resume path through it.
	// Deliberately excluded from snapshots.
	walk *walker
}

// unionContrib is one owner-driven statement's static contribution to a
// union execution set: its owner pattern and the inner loops that widen it.
type unionContrib struct {
	pat   dist.OwnerPattern
	widen []*ir.Loop
}

// Budget bounds the resources one State may allocate. The zero value is
// unlimited — the CLIs and tests run unconstrained; serving paths set
// MaxCells so one hostile request cannot exhaust process memory.
type Budget struct {
	// MaxCells caps the total float64 cells allocated across all arrays of
	// one memory image (0 = unlimited). Each worker of the concurrent
	// backend holds a full replicated image, so a request's worst-case
	// footprint is MaxCells × 8 bytes × workers.
	MaxCells int64
}

// NewState allocates a fresh unbudgeted memory image for the program (see
// NewStateBudget). Array shapes are validated against maxArrayElems so
// adversarial declarations fail with a diagnostic instead of exhausting
// memory or wrapping offset arithmetic.
func NewState(p *spmd.Program) (*State, error) {
	return NewStateBudget(p, Budget{})
}

// NewStateBudget allocates a fresh memory image under a resource budget. A
// breach returns a coded E006 diagnostic (diag.CodeBudget) before anything
// large is allocated, so a server can refuse the request as a client error
// instead of OOMing the process.
func NewStateBudget(p *spmd.Program, budget Budget) (*State, error) {
	if p == nil || p.Res == nil || p.Res.Prog == nil {
		return nil, fmt.Errorf("eval: nil program")
	}
	prog := p.Res.Prog
	slots := ir.AssignSlots(prog).Vars
	n := len(slots)
	s := &State{
		Prog:       p,
		slots:      slots,
		scalars:    make([]float64, n),
		scalarSet:  make([]bool, n),
		indices:    make([]int64, n),
		arrays:     make([][]float64, n),
		dyn:        make([]*dist.ArrayMap, n),
		priv:       make([]*core.ArrayPrivatization, n),
		unionCache: make([]dist.ProcSet, len(prog.Loops)),
		unionEpoch: make([]int64, len(prog.Loops)),
		unionPart:  make([][]unionContrib, len(prog.Loops)),
	}
	for i := range s.unionEpoch {
		s.unionEpoch[i] = -1
	}
	// Validate every shape and the aggregate footprint before allocating
	// anything large: a budget breach must cost O(1) memory, not trigger
	// the very allocation it exists to prevent.
	sizes := make([]int64, n)
	total := int64(0)
	for _, v := range prog.VarList {
		s.priv[v.Slot] = p.Res.Arrays[v]
		if !v.IsArray() {
			continue
		}
		size := int64(1)
		for _, d := range v.Dims {
			var ok bool
			size, ok = mulChecked(size, d)
			if !ok || size > maxArrayElems {
				return nil, fmt.Errorf("eval: array %s too large (> %d elements)", v.Name, maxArrayElems)
			}
		}
		if size < 0 {
			return nil, fmt.Errorf("eval: array %s has negative size", v.Name)
		}
		sizes[v.Slot] = size
		var ok bool
		if total, ok = addChecked(total, size); !ok {
			return nil, fmt.Errorf("eval: memory image overflows int64 cells")
		}
		if budget.MaxCells > 0 && total > budget.MaxCells {
			return nil, diag.Errorf("eval", diag.CodeBudget, diag.Pos{},
				"memory image needs more than %d cells (array %s alone brings the total past the MaxCells budget)",
				budget.MaxCells, v.Name)
		}
	}
	for _, v := range prog.VarList {
		if !v.IsArray() {
			continue
		}
		s.arrays[v.Slot] = make([]float64, sizes[v.Slot])
		s.dyn[v.Slot] = p.Res.Mapping.Arrays[v]
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Per-variable accessors and map-compatibility views

// Scalar returns the current value of a scalar variable (0 if unassigned).
func (s *State) Scalar(v *ir.Var) float64 { return s.scalars[v.Slot] }

// Index returns the current value of a loop-index variable.
func (s *State) Index(v *ir.Var) int64 { return s.indices[v.Slot] }

// Array returns the backing store of an array variable (nil for scalars).
func (s *State) Array(v *ir.Var) []float64 { return s.arrays[v.Slot] }

// DynMap returns the variable's current (possibly redistributed) mapping.
func (s *State) DynMap(v *ir.Var) *dist.ArrayMap { return s.dyn[v.Slot] }

// Scalars materializes the map view of all assigned scalars — the pre-slot
// map field kept as a compatibility view for result export and tests.
func (s *State) Scalars() map[*ir.Var]float64 {
	m := map[*ir.Var]float64{}
	for i, set := range s.scalarSet {
		if set {
			m[s.slots[i]] = s.scalars[i]
		}
	}
	return m
}

// Arrays materializes the map view of all array stores (the slices alias
// the live image, as the former map field did).
func (s *State) Arrays() map[*ir.Var][]float64 {
	m := map[*ir.Var][]float64{}
	for i, a := range s.arrays {
		if a != nil {
			m[s.slots[i]] = a
		}
	}
	return m
}

// Indices materializes the map view of the current loop-index values.
func (s *State) Indices() map[*ir.Var]int64 {
	m := map[*ir.Var]int64{}
	for _, v := range s.slots {
		if v.IsLoopIndex {
			m[v] = s.indices[v.Slot]
		}
	}
	return m
}

// Dyn materializes the map view of the current array mappings.
func (s *State) Dyn() map[*ir.Var]*dist.ArrayMap {
	m := map[*ir.Var]*dist.ArrayMap{}
	for i, am := range s.dyn {
		if am != nil {
			m[s.slots[i]] = am
		}
	}
	return m
}

// Grid returns the processor grid the program is mapped onto.
func (s *State) Grid() *dist.Grid { return s.Prog.Res.Mapping.Grid }

// mulChecked multiplies two non-negative int64s, reporting overflow.
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	c := a * b
	if c/b != a || c < 0 {
		return 0, false
	}
	return c, true
}

// addChecked adds two int64s, reporting overflow.
func addChecked(a, b int64) (int64, bool) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return 0, false
	}
	return c, true
}

// ---------------------------------------------------------------------------
// Value semantics

// Store assigns val through a definition reference.
func (s *State) Store(ref *ir.Ref, val float64) error {
	v := ref.Var
	if !v.IsArray() {
		if v.Type == ast.Integer {
			val = math.Round(val)
		}
		s.scalars[v.Slot] = val
		s.scalarSet[v.Slot] = true
		return nil
	}
	off, err := s.ArrayOffset(ref)
	if err != nil {
		return err
	}
	s.arrays[v.Slot][off] = val
	return nil
}

// ArrayOffset computes the linear (row-major, 1-based) offset of an array
// reference, rejecting out-of-bounds subscripts and guarding the offset
// arithmetic against int64 wrap on adversarial shapes.
func (s *State) ArrayOffset(ref *ir.Ref) (int64, error) {
	v := ref.Var
	off := int64(0)
	stride := int64(1)
	for k := 0; k < v.Rank(); k++ {
		x, err := s.EvalInt(ref.Ast.Subs[k])
		if err != nil {
			return 0, err
		}
		if x < 1 || x > v.Dims[k] {
			return 0, fmt.Errorf("line %d: %s subscript %d out of bounds: %d (extent %d)",
				ref.Stmt.Line, v.Name, k+1, x, v.Dims[k])
		}
		term, ok := mulChecked(x-1, stride)
		if !ok {
			return 0, &NumericError{Line: ref.Stmt.Line, What: v.Name + " offset", Val: float64(x)}
		}
		if off, ok = addChecked(off, term); !ok {
			return 0, &NumericError{Line: ref.Stmt.Line, What: v.Name + " offset", Val: float64(x)}
		}
		if stride, ok = mulChecked(stride, v.Dims[k]); !ok {
			return 0, &NumericError{Line: ref.Stmt.Line, What: v.Name + " stride", Val: float64(v.Dims[k])}
		}
	}
	return off, nil
}

// EvalInt evaluates an expression as an integer, rejecting values outside
// the exactly representable range instead of wrapping through the float
// conversion.
func (s *State) EvalInt(e ast.Expr) (int64, error) {
	x, err := s.Eval(e)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(x) || x > float64(maxExactInt) || x < -float64(maxExactInt) {
		return 0, &NumericError{What: "integer value", Val: x}
	}
	return int64(math.Round(x)), nil
}

// EvalAffine evaluates an affine form (falling back to the expression for
// non-affine subscripts).
func (s *State) EvalAffine(a ir.Affine) (int64, error) {
	if a.OK {
		x := a.Const
		for _, t := range a.Terms {
			x += t.Coef * s.indices[t.Loop.Index.Slot]
		}
		return x, nil
	}
	if a.Expr == nil {
		return 0, fmt.Errorf("undefined pattern position")
	}
	return s.EvalInt(a.Expr)
}

// TripCount evaluates a loop's trip count at the current indices. Bounds are
// range-checked by EvalInt, so the (hi-lo)/step+1 arithmetic cannot wrap.
func (s *State) TripCount(l *ir.Loop) (int64, error) {
	lo, err := s.EvalInt(l.Lo)
	if err != nil {
		return 0, err
	}
	hi, err := s.EvalInt(l.Hi)
	if err != nil {
		return 0, err
	}
	step := int64(1)
	if l.Step != nil {
		step, err = s.EvalInt(l.Step)
		if err != nil {
			return 0, err
		}
	}
	if step == 0 {
		return 0, fmt.Errorf("zero step in %s-loop at line %d", l.Index.Name, l.Line)
	}
	n := (hi-lo)/step + 1
	if n < 0 {
		n = 0
	}
	return n, nil
}

// Eval evaluates an expression over the current memory image.
func (s *State) Eval(e ast.Expr) (float64, error) {
	switch x := e.(type) {
	case *ast.IntConst:
		return float64(x.Value), nil
	case *ast.RealConst:
		return x.Value, nil
	case *ast.Ref:
		var v *ir.Var
		if x.Slot > 0 {
			v = s.slots[x.Slot-1]
		} else if v = s.Prog.Res.Prog.LookupVar(x.Name); v == nil {
			return 0, fmt.Errorf("unknown variable %s", x.Name)
		}
		if v.IsLoopIndex {
			return float64(s.indices[v.Slot]), nil
		}
		if !v.IsArray() {
			return s.scalars[v.Slot], nil
		}
		off := int64(0)
		stride := int64(1)
		for k := 0; k < v.Rank(); k++ {
			sub, err := s.EvalInt(x.Subs[k])
			if err != nil {
				return 0, err
			}
			if sub < 1 || sub > v.Dims[k] {
				return 0, fmt.Errorf("%s subscript %d out of bounds: %d (extent %d)",
					v.Name, k+1, sub, v.Dims[k])
			}
			off += (sub - 1) * stride
			stride *= v.Dims[k]
		}
		return s.arrays[v.Slot][off], nil
	case *ast.UnaryMinus:
		r, err := s.Eval(x.X)
		if err != nil {
			return 0, err
		}
		return -r, nil
	case *ast.Not:
		r, err := s.Eval(x.X)
		if err != nil {
			return 0, err
		}
		if r == 0 {
			return 1, nil
		}
		return 0, nil
	case *ast.BinOp:
		l, err := s.Eval(x.L)
		if err != nil {
			return 0, err
		}
		r, err := s.Eval(x.R)
		if err != nil {
			return 0, err
		}
		return evalBin(x.Op, l, r)
	case *ast.Call:
		// The intrinsics are all short-arity; a stack buffer keeps the
		// common case allocation-free.
		var buf [4]float64
		var args []float64
		if len(x.Args) <= len(buf) {
			args = buf[:len(x.Args)]
		} else {
			args = make([]float64, len(x.Args))
		}
		for k, aexp := range x.Args {
			v, err := s.Eval(aexp)
			if err != nil {
				return 0, err
			}
			args[k] = v
		}
		return evalCall(x.Name, args)
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

func evalBin(op ast.Op, l, r float64) (float64, error) {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ast.Add:
		return l + r, nil
	case ast.Sub:
		return l - r, nil
	case ast.Mul:
		return l * r, nil
	case ast.Div:
		return l / r, nil
	case ast.OpEq:
		return b2f(l == r), nil
	case ast.OpNe:
		return b2f(l != r), nil
	case ast.OpLt:
		return b2f(l < r), nil
	case ast.OpLe:
		return b2f(l <= r), nil
	case ast.OpGt:
		return b2f(l > r), nil
	case ast.OpGe:
		return b2f(l >= r), nil
	case ast.OpAnd:
		return b2f(l != 0 && r != 0), nil
	case ast.OpOr:
		return b2f(l != 0 || r != 0), nil
	}
	return 0, fmt.Errorf("bad operator")
}

func evalCall(name string, args []float64) (float64, error) {
	switch name {
	case "abs":
		return math.Abs(args[0]), nil
	case "sqrt":
		return math.Sqrt(args[0]), nil
	case "exp":
		return math.Exp(args[0]), nil
	case "max":
		best := args[0]
		for _, a := range args[1:] {
			if a > best {
				best = a
			}
		}
		return best, nil
	case "min":
		best := args[0]
		for _, a := range args[1:] {
			if a < best {
				best = a
			}
		}
		return best, nil
	case "mod":
		return math.Mod(args[0], args[1]), nil
	}
	return 0, fmt.Errorf("unknown intrinsic %s", name)
}

// ---------------------------------------------------------------------------
// Execution sets

// ExecSet evaluates a statement's execution set at the current indices.
func (s *State) ExecSet(sp *spmd.StmtPlan) (dist.ProcSet, error) {
	g := s.Grid()
	switch sp.Kind {
	case spmd.ExecAll:
		return dist.AllProcs(g), nil
	case spmd.ExecOwner:
		return s.OwnerSet(sp.OwnerRef)
	case spmd.ExecPattern:
		return s.PatternSet(sp.Scalar.Pattern, nil), nil
	case spmd.ExecUnion:
		return s.UnionSet(sp.Stmt.Loop), nil
	}
	return dist.AllProcs(g), nil
}

// OwnerSet evaluates the owners of an array reference under the dynamic
// distribution (plus privatization overrides).
func (s *State) OwnerSet(ref *ir.Ref) (dist.ProcSet, error) {
	g := s.Grid()
	v := ref.Var
	// Subscripts evaluate into a scratch buffer reused across calls; the
	// privatization path below copies it out before recursing (OwnerSet on
	// the target reference would clobber the scratch).
	if cap(s.idxScratch) < len(ref.Ast.Subs) {
		s.idxScratch = make([]int64, len(ref.Ast.Subs))
	}
	idx := s.idxScratch[:len(ref.Ast.Subs)]
	for k, e := range ref.Ast.Subs {
		x, err := s.EvalInt(e)
		if err != nil {
			return dist.ProcSet{}, err
		}
		idx[k] = x
	}
	if ap := s.priv[v.Slot]; ap != nil && ir.Encloses(ap.Loop, ref.Stmt.Loop) {
		var buf [4]int64
		own := append(buf[:0], idx...)
		return s.privOwnerSet(ap, own)
	}
	am := s.dyn[v.Slot]
	if am == nil {
		return dist.AllProcs(g), nil
	}
	return am.Owner(g, idx), nil
}

// privOwnerSet computes the owner of a privatized array element: privatized
// grid dims follow the target reference's owner now; partitioned dims from
// the privatization axes.
func (s *State) privOwnerSet(ap *core.ArrayPrivatization, idx []int64) (dist.ProcSet, error) {
	g := s.Grid()
	set := dist.MutableAll(g)
	tgt, err := s.OwnerSet(ap.Target)
	if err != nil {
		return dist.ProcSet{}, err
	}
	for d := 0; d < g.Rank(); d++ {
		if ap.PrivGrid[d] {
			if c, ok := tgt.Fixed(d); ok {
				set = set.FixDim(d, c)
			}
		}
	}
	for dim, ax := range ap.Axes {
		if ax.Distributed {
			set = set.FixDim(ax.GridDim, ax.OwnerDim(idx[dim], g.Shape[ax.GridDim]))
		}
	}
	return set, nil
}

// PatternSet evaluates an owner pattern at the current indices. widen, when
// non-nil, lists loops whose indices range over a whole aggregated transfer:
// dimensions varying in them span all coordinates.
func (s *State) PatternSet(pat dist.OwnerPattern, widen []*ir.Loop) dist.ProcSet {
	g := s.Grid()
	set := dist.MutableAll(g)
	for d := range pat.Dims {
		dp := pat.Dims[d]
		if dp.Repl {
			continue
		}
		wide := false
		for _, l := range widen {
			if dp.Sub.VariesIn(l) {
				wide = true
				break
			}
		}
		if wide {
			continue
		}
		pos, err := s.EvalAffine(dp.Sub)
		if err != nil {
			continue // undefined position: leave the dimension wide
		}
		ax := dist.AxisMap{Distributed: true, GridDim: d, Kind: dp.Kind,
			Offset: dp.Offset, Extent: dp.Extent, Block: dp.Block}
		set = set.FixDim(d, ax.OwnerDim(pos, g.Shape[d]))
	}
	return set
}

// UnionSet computes (and memoizes per iteration) the union of the execution
// sets of the loop body's owner-driven statements.
func (s *State) UnionSet(l *ir.Loop) dist.ProcSet {
	g := s.Grid()
	if l == nil {
		return dist.AllProcs(g)
	}
	if s.unionEpoch[l.ID] == s.epoch {
		return s.unionCache[l.ID]
	}
	// The contributing statements and their owner patterns are static per
	// program; only the pattern evaluation depends on the current indices.
	// Build the contributor list once per loop.
	part := s.unionPart[l.ID]
	if part == nil {
		part = s.unionContribs(l)
		s.unionPart[l.ID] = part
	}
	have := false
	var u dist.ProcSet
	for i := range part {
		set := s.PatternSet(part[i].pat, part[i].widen)
		if !have {
			u, have = set, true
		} else {
			u = u.Union(set)
		}
	}
	if !have {
		u = dist.AllProcs(g)
	}
	s.unionCache[l.ID] = u
	s.unionEpoch[l.ID] = s.epoch
	return u
}

// unionContribs collects the owner-driven statements under l that shape its
// union execution set. The result is non-nil even when empty, so the lazy
// cache in UnionSet records "computed, no contributors".
func (s *State) unionContribs(l *ir.Loop) []unionContrib {
	var innerList []*ir.Loop
	for _, ll := range s.Prog.Res.Prog.Loops {
		if ll != l && ir.Encloses(l, ll) {
			innerList = append(innerList, ll)
		}
	}
	part := []unionContrib{}
	for _, st := range s.Prog.Res.Prog.Stmts {
		if st.Kind != ir.SAssign || !ir.Encloses(l, st.Loop) {
			continue
		}
		sp := s.Prog.PlanOf(st)
		switch sp.Kind {
		case spmd.ExecOwner:
			part = append(part, unionContrib{pat: s.Prog.Res.RefPattern(sp.OwnerRef), widen: innerList})
		case spmd.ExecPattern:
			part = append(part, unionContrib{pat: sp.Scalar.Pattern, widen: innerList})
		}
	}
	return part
}
