// Package eval is the shared interpretation core of the two execution
// backends: the sequential cost-model simulator (internal/sim) and the
// concurrent SPMD executor (internal/exec). Both walk the same spmd.Program
// through the same value semantics, execution-set evaluation, and
// communication decisions defined here, so that their numeric results are
// bit-for-bit identical by construction and any divergence is a real bug in
// one of the backends — the property the differential oracle (exec.Differ)
// checks.
//
// The core is deliberately free of cost accounting: backends observe the
// walk through the Backend interface (see walk.go) and charge their own
// machine models or perform real message passing at the decision points.
package eval

import (
	"fmt"
	"math"

	"phpf/internal/ast"
	"phpf/internal/core"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/spmd"
)

// maxExactInt bounds every integer value the interpreter manipulates (loop
// bounds, subscripts, trip counts) to the contiguously representable float64
// range, 2^53. Values beyond it would silently lose integer precision in the
// float-backed evaluator and can drive int64 arithmetic to wrap on
// adversarial (fuzz-reachable) loop bounds; they are rejected with a
// diagnostic instead.
const maxExactInt = int64(1) << 53

// maxArrayElems caps a single array's element count. Larger declarations are
// almost certainly adversarial inputs (the benchmarks top out around 10^6
// elements) and would otherwise OOM or overflow offset arithmetic.
const maxArrayElems = int64(1) << 31

// NumericError reports an integer value or computation that left the exactly
// representable range — the structured diagnostic the overflow guards
// return instead of wrapping.
type NumericError struct {
	Line int     // source line when known (0 otherwise)
	What string  // which quantity overflowed
	Val  float64 // the offending value when meaningful
}

func (e *NumericError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %s out of range (%v exceeds 2^53)", e.Line, e.What, e.Val)
	}
	return fmt.Sprintf("%s out of range (%v exceeds 2^53)", e.What, e.Val)
}

// State is one interpretation context: the full memory image plus the
// dynamic (possibly redistributed) array mappings. The sequential simulator
// holds one State; the concurrent executor holds one per worker — replicated
// execution keeps every image identical, which is what makes the SPMD
// programs under the paper's mappings semantically interchangeable.
type State struct {
	Prog *spmd.Program

	Scalars map[*ir.Var]float64
	Arrays  map[*ir.Var][]float64
	Indices map[*ir.Var]int64
	// Dyn holds the current (possibly redistributed) mapping per array.
	Dyn map[*ir.Var]*dist.ArrayMap

	// unionCache memoizes the per-iteration union execution set.
	unionCache map[*ir.Loop]dist.ProcSet
	unionEpoch map[*ir.Loop]int64
	epoch      int64
}

// NewState allocates a fresh memory image for the program. Array shapes are
// validated against maxArrayElems so adversarial declarations fail with a
// diagnostic instead of exhausting memory or wrapping offset arithmetic.
func NewState(p *spmd.Program) (*State, error) {
	if p == nil || p.Res == nil || p.Res.Prog == nil {
		return nil, fmt.Errorf("eval: nil program")
	}
	s := &State{
		Prog:    p,
		Scalars: map[*ir.Var]float64{},
		Arrays:  map[*ir.Var][]float64{},
		Indices: map[*ir.Var]int64{},
		Dyn:     map[*ir.Var]*dist.ArrayMap{},
	}
	for _, v := range p.Res.Prog.VarList {
		if !v.IsArray() {
			continue
		}
		size := int64(1)
		for _, d := range v.Dims {
			var ok bool
			size, ok = mulChecked(size, d)
			if !ok || size > maxArrayElems {
				return nil, fmt.Errorf("eval: array %s too large (> %d elements)", v.Name, maxArrayElems)
			}
		}
		if size < 0 {
			return nil, fmt.Errorf("eval: array %s has negative size", v.Name)
		}
		s.Arrays[v] = make([]float64, size)
		s.Dyn[v] = p.Res.Mapping.Arrays[v]
	}
	return s, nil
}

// Grid returns the processor grid the program is mapped onto.
func (s *State) Grid() *dist.Grid { return s.Prog.Res.Mapping.Grid }

// mulChecked multiplies two non-negative int64s, reporting overflow.
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	c := a * b
	if c/b != a || c < 0 {
		return 0, false
	}
	return c, true
}

// addChecked adds two int64s, reporting overflow.
func addChecked(a, b int64) (int64, bool) {
	c := a + b
	if (b > 0 && c < a) || (b < 0 && c > a) {
		return 0, false
	}
	return c, true
}

// ---------------------------------------------------------------------------
// Value semantics

// Store assigns val through a definition reference.
func (s *State) Store(ref *ir.Ref, val float64) error {
	v := ref.Var
	if !v.IsArray() {
		if v.Type == ast.Integer {
			val = math.Round(val)
		}
		s.Scalars[v] = val
		return nil
	}
	off, err := s.ArrayOffset(ref)
	if err != nil {
		return err
	}
	s.Arrays[v][off] = val
	return nil
}

// ArrayOffset computes the linear (row-major, 1-based) offset of an array
// reference, rejecting out-of-bounds subscripts and guarding the offset
// arithmetic against int64 wrap on adversarial shapes.
func (s *State) ArrayOffset(ref *ir.Ref) (int64, error) {
	v := ref.Var
	off := int64(0)
	stride := int64(1)
	for k := 0; k < v.Rank(); k++ {
		x, err := s.EvalInt(ref.Ast.Subs[k])
		if err != nil {
			return 0, err
		}
		if x < 1 || x > v.Dims[k] {
			return 0, fmt.Errorf("line %d: %s subscript %d out of bounds: %d (extent %d)",
				ref.Stmt.Line, v.Name, k+1, x, v.Dims[k])
		}
		term, ok := mulChecked(x-1, stride)
		if !ok {
			return 0, &NumericError{Line: ref.Stmt.Line, What: v.Name + " offset", Val: float64(x)}
		}
		if off, ok = addChecked(off, term); !ok {
			return 0, &NumericError{Line: ref.Stmt.Line, What: v.Name + " offset", Val: float64(x)}
		}
		if stride, ok = mulChecked(stride, v.Dims[k]); !ok {
			return 0, &NumericError{Line: ref.Stmt.Line, What: v.Name + " stride", Val: float64(v.Dims[k])}
		}
	}
	return off, nil
}

// EvalInt evaluates an expression as an integer, rejecting values outside
// the exactly representable range instead of wrapping through the float
// conversion.
func (s *State) EvalInt(e ast.Expr) (int64, error) {
	x, err := s.Eval(e)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(x) || x > float64(maxExactInt) || x < -float64(maxExactInt) {
		return 0, &NumericError{What: "integer value", Val: x}
	}
	return int64(math.Round(x)), nil
}

// EvalAffine evaluates an affine form (falling back to the expression for
// non-affine subscripts).
func (s *State) EvalAffine(a ir.Affine) (int64, error) {
	if a.OK {
		x := a.Const
		for _, t := range a.Terms {
			x += t.Coef * s.Indices[t.Loop.Index]
		}
		return x, nil
	}
	if a.Expr == nil {
		return 0, fmt.Errorf("undefined pattern position")
	}
	return s.EvalInt(a.Expr)
}

// TripCount evaluates a loop's trip count at the current indices. Bounds are
// range-checked by EvalInt, so the (hi-lo)/step+1 arithmetic cannot wrap.
func (s *State) TripCount(l *ir.Loop) (int64, error) {
	lo, err := s.EvalInt(l.Lo)
	if err != nil {
		return 0, err
	}
	hi, err := s.EvalInt(l.Hi)
	if err != nil {
		return 0, err
	}
	step := int64(1)
	if l.Step != nil {
		step, err = s.EvalInt(l.Step)
		if err != nil {
			return 0, err
		}
	}
	if step == 0 {
		return 0, fmt.Errorf("zero step in %s-loop at line %d", l.Index.Name, l.Line)
	}
	n := (hi-lo)/step + 1
	if n < 0 {
		n = 0
	}
	return n, nil
}

// Eval evaluates an expression over the current memory image.
func (s *State) Eval(e ast.Expr) (float64, error) {
	switch x := e.(type) {
	case *ast.IntConst:
		return float64(x.Value), nil
	case *ast.RealConst:
		return x.Value, nil
	case *ast.Ref:
		v := s.Prog.Res.Prog.LookupVar(x.Name)
		if v == nil {
			return 0, fmt.Errorf("unknown variable %s", x.Name)
		}
		if v.IsLoopIndex {
			return float64(s.Indices[v]), nil
		}
		if !v.IsArray() {
			return s.Scalars[v], nil
		}
		off := int64(0)
		stride := int64(1)
		for k := 0; k < v.Rank(); k++ {
			sub, err := s.EvalInt(x.Subs[k])
			if err != nil {
				return 0, err
			}
			if sub < 1 || sub > v.Dims[k] {
				return 0, fmt.Errorf("%s subscript %d out of bounds: %d (extent %d)",
					v.Name, k+1, sub, v.Dims[k])
			}
			off += (sub - 1) * stride
			stride *= v.Dims[k]
		}
		return s.Arrays[v][off], nil
	case *ast.UnaryMinus:
		r, err := s.Eval(x.X)
		if err != nil {
			return 0, err
		}
		return -r, nil
	case *ast.Not:
		r, err := s.Eval(x.X)
		if err != nil {
			return 0, err
		}
		if r == 0 {
			return 1, nil
		}
		return 0, nil
	case *ast.BinOp:
		l, err := s.Eval(x.L)
		if err != nil {
			return 0, err
		}
		r, err := s.Eval(x.R)
		if err != nil {
			return 0, err
		}
		return evalBin(x.Op, l, r)
	case *ast.Call:
		args := make([]float64, len(x.Args))
		for k, aexp := range x.Args {
			v, err := s.Eval(aexp)
			if err != nil {
				return 0, err
			}
			args[k] = v
		}
		return evalCall(x.Name, args)
	}
	return 0, fmt.Errorf("unsupported expression %T", e)
}

func evalBin(op ast.Op, l, r float64) (float64, error) {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case ast.Add:
		return l + r, nil
	case ast.Sub:
		return l - r, nil
	case ast.Mul:
		return l * r, nil
	case ast.Div:
		return l / r, nil
	case ast.OpEq:
		return b2f(l == r), nil
	case ast.OpNe:
		return b2f(l != r), nil
	case ast.OpLt:
		return b2f(l < r), nil
	case ast.OpLe:
		return b2f(l <= r), nil
	case ast.OpGt:
		return b2f(l > r), nil
	case ast.OpGe:
		return b2f(l >= r), nil
	case ast.OpAnd:
		return b2f(l != 0 && r != 0), nil
	case ast.OpOr:
		return b2f(l != 0 || r != 0), nil
	}
	return 0, fmt.Errorf("bad operator")
}

func evalCall(name string, args []float64) (float64, error) {
	switch name {
	case "abs":
		return math.Abs(args[0]), nil
	case "sqrt":
		return math.Sqrt(args[0]), nil
	case "exp":
		return math.Exp(args[0]), nil
	case "max":
		best := args[0]
		for _, a := range args[1:] {
			if a > best {
				best = a
			}
		}
		return best, nil
	case "min":
		best := args[0]
		for _, a := range args[1:] {
			if a < best {
				best = a
			}
		}
		return best, nil
	case "mod":
		return math.Mod(args[0], args[1]), nil
	}
	return 0, fmt.Errorf("unknown intrinsic %s", name)
}

// ---------------------------------------------------------------------------
// Execution sets

// ExecSet evaluates a statement's execution set at the current indices.
func (s *State) ExecSet(sp *spmd.StmtPlan) (dist.ProcSet, error) {
	g := s.Grid()
	switch sp.Kind {
	case spmd.ExecAll:
		return dist.AllProcs(g), nil
	case spmd.ExecOwner:
		return s.OwnerSet(sp.OwnerRef)
	case spmd.ExecPattern:
		return s.PatternSet(sp.Scalar.Pattern, nil), nil
	case spmd.ExecUnion:
		return s.UnionSet(sp.Stmt.Loop), nil
	}
	return dist.AllProcs(g), nil
}

// OwnerSet evaluates the owners of an array reference under the dynamic
// distribution (plus privatization overrides).
func (s *State) OwnerSet(ref *ir.Ref) (dist.ProcSet, error) {
	g := s.Grid()
	v := ref.Var
	idx := make([]int64, len(ref.Ast.Subs))
	for k, e := range ref.Ast.Subs {
		x, err := s.EvalInt(e)
		if err != nil {
			return dist.ProcSet{}, err
		}
		idx[k] = x
	}
	if ap := s.Prog.Res.Arrays[v]; ap != nil && ir.Encloses(ap.Loop, ref.Stmt.Loop) {
		return s.privOwnerSet(ap, idx)
	}
	am := s.Dyn[v]
	if am == nil {
		return dist.AllProcs(g), nil
	}
	return am.Owner(g, idx), nil
}

// privOwnerSet computes the owner of a privatized array element: privatized
// grid dims follow the target reference's owner now; partitioned dims from
// the privatization axes.
func (s *State) privOwnerSet(ap *core.ArrayPrivatization, idx []int64) (dist.ProcSet, error) {
	g := s.Grid()
	set := dist.AllProcs(g)
	tgt, err := s.OwnerSet(ap.Target)
	if err != nil {
		return dist.ProcSet{}, err
	}
	for d := 0; d < g.Rank(); d++ {
		if ap.PrivGrid[d] {
			if c, ok := tgt.Fixed(d); ok {
				set = set.WithDim(d, c)
			}
		}
	}
	for dim, ax := range ap.Axes {
		if ax.Distributed {
			set = set.WithDim(ax.GridDim, ax.OwnerDim(idx[dim], g.Shape[ax.GridDim]))
		}
	}
	return set, nil
}

// PatternSet evaluates an owner pattern at the current indices. widen, when
// non-nil, lists loops whose indices range over a whole aggregated transfer:
// dimensions varying in them span all coordinates.
func (s *State) PatternSet(pat dist.OwnerPattern, widen []*ir.Loop) dist.ProcSet {
	g := s.Grid()
	set := dist.AllProcs(g)
	for d := range pat.Dims {
		dp := pat.Dims[d]
		if dp.Repl {
			continue
		}
		wide := false
		for _, l := range widen {
			if dp.Sub.VariesIn(l) {
				wide = true
				break
			}
		}
		if wide {
			continue
		}
		pos, err := s.EvalAffine(dp.Sub)
		if err != nil {
			continue // undefined position: leave the dimension wide
		}
		ax := dist.AxisMap{Distributed: true, GridDim: d, Kind: dp.Kind,
			Offset: dp.Offset, Extent: dp.Extent, Block: dp.Block}
		set = set.WithDim(d, ax.OwnerDim(pos, g.Shape[d]))
	}
	return set
}

// UnionSet computes (and memoizes per iteration) the union of the execution
// sets of the loop body's owner-driven statements.
func (s *State) UnionSet(l *ir.Loop) dist.ProcSet {
	g := s.Grid()
	if l == nil {
		return dist.AllProcs(g)
	}
	if s.unionCache == nil {
		s.unionCache = map[*ir.Loop]dist.ProcSet{}
		s.unionEpoch = map[*ir.Loop]int64{}
	}
	if e, ok := s.unionEpoch[l]; ok && e == s.epoch {
		return s.unionCache[l]
	}
	inner := map[*ir.Loop]bool{}
	for _, ll := range s.Prog.Res.Prog.Loops {
		if ll != l && ir.Encloses(l, ll) {
			inner[ll] = true
		}
	}
	var innerList []*ir.Loop
	for ll := range inner {
		innerList = append(innerList, ll)
	}
	have := false
	var u dist.ProcSet
	for _, st := range s.Prog.Res.Prog.Stmts {
		if st.Kind != ir.SAssign || !ir.Encloses(l, st.Loop) {
			continue
		}
		sp := s.Prog.Stmts[st]
		var set dist.ProcSet
		switch sp.Kind {
		case spmd.ExecOwner:
			set = s.PatternSet(s.Prog.Res.RefPattern(sp.OwnerRef), innerList)
		case spmd.ExecPattern:
			set = s.PatternSet(sp.Scalar.Pattern, innerList)
		default:
			continue
		}
		if !have {
			u, have = set, true
		} else {
			u = u.Union(set)
		}
	}
	if !have {
		u = dist.AllProcs(g)
	}
	s.unionCache[l] = u
	s.unionEpoch[l] = s.epoch
	return u
}
