// Communication decisions shared by the backends: given the current memory
// image, decide for each comm.Requirement whether data moves, between which
// processor sets, and how many bytes. The sequential simulator charges its
// cost model from these decisions; the concurrent executor performs real
// channel sends and receives from the very same ones — which is why the two
// backends' message and byte counts must agree exactly.
package eval

import (
	"fmt"

	"phpf/internal/ast"
	"phpf/internal/comm"
	"phpf/internal/dist"
	"phpf/internal/ir"
	"phpf/internal/spmd"
)

// InstanceOp is the resolved form of one per-instance communication: a
// single-element transfer from the owners of the use to the statement's
// execution set, skipped when the data already resides everywhere it is
// needed.
type InstanceOp struct {
	// Skip: the source set covers the destination set; no message flows
	// (the guard is still evaluated — that is the per-iteration penalty
	// message vectorization removes).
	Skip bool
	// From is the sending processor (a deterministic representative of the
	// source set).
	From int
	// Dst is the receiving execution set.
	Dst dist.ProcSet
	// Bytes is the message payload size.
	Bytes int64
}

// InstanceOp resolves one per-instance requirement at the current indices.
func (s *State) InstanceOp(req *comm.Requirement, sp *spmd.StmtPlan, elemBytes int64) (InstanceOp, error) {
	dst, err := s.ExecSet(sp)
	if err != nil {
		return InstanceOp{}, err
	}
	var src dist.ProcSet
	if req.Use.Var.IsArray() {
		// Evaluate under the dynamic (possibly redistributed) mapping.
		src, err = s.OwnerSet(req.Use)
		if err != nil {
			return InstanceOp{}, err
		}
	} else {
		src = s.PatternSet(req.SrcPat, nil)
	}
	if src.CoversSet(dst) {
		return InstanceOp{Skip: true}, nil
	}
	from, single := src.IsSingle()
	if !single {
		from = src.First()
	}
	return InstanceOp{From: from, Dst: dst, Bytes: elemBytes}, nil
}

// VecKind discriminates the resolved form of a vectorized communication.
type VecKind int

const (
	// VecSkip: zero trips, or the source already covers the destinations
	// at this entry of the hoisted nest.
	VecSkip VecKind = iota
	// VecShift: nearest-neighbor shift among Participants, PerProc bytes
	// each.
	VecShift
	// VecBcast: tree multicast of Bytes from From to Dst.
	VecBcast
	// VecExchange: aggregated general communication of Bytes from the
	// owners in Src to the processors in Dst.
	VecExchange
)

// VectorizedOp is the resolved form of one hoisted (vectorized)
// communication covering all iterations of its hoisted loops.
type VectorizedOp struct {
	Kind VecKind

	Src, Dst dist.ProcSet // VecBcast (Dst), VecExchange (both)
	From     int          // VecBcast root

	Bytes        int64        // aggregated transfer size (VecBcast, VecExchange)
	PerProc      int64        // per-participant bytes (VecShift)
	Participants dist.ProcSet // VecShift participants
}

// VectorizedOp resolves one hoisted requirement at the current loop entry.
// The transferred volume counts only the loops the reference actually varies
// in (a pivot column read by every j iteration is sent once, not once per
// j), and the transfer is skipped entirely when the evaluated source set
// already covers the destinations (e.g. a block shift that does not cross a
// processor boundary here).
func (s *State) VectorizedOp(req *comm.Requirement, elemBytes int64) (VectorizedOp, error) {
	g := s.Grid()
	trips := int64(1)
	for _, l := range req.Hoisted {
		if !RefVariesIn(req.Use, l) {
			continue
		}
		t, err := s.TripCount(l)
		if err != nil {
			return VectorizedOp{}, err
		}
		var ok bool
		if trips, ok = mulChecked(trips, t); !ok {
			return VectorizedOp{}, &NumericError{Line: req.Stmt.Line,
				What: "aggregated trip count", Val: float64(t)}
		}
	}
	if trips <= 0 {
		return VectorizedOp{Kind: VecSkip}, nil
	}
	srcEval := s.PatternSet(req.SrcPat, req.Hoisted)
	dstEval := s.PatternSet(req.DstPat, req.Hoisted)
	if s.vectorizedCovered(req) {
		return VectorizedOp{Kind: VecSkip}, nil
	}
	bytesTotal, ok := mulChecked(trips, elemBytes)
	if !ok {
		return VectorizedOp{}, &NumericError{Line: req.Stmt.Line,
			What: "aggregated transfer size", Val: float64(trips)}
	}

	switch req.Class {
	case dist.CommShift:
		// Only boundary elements cross processors under a block
		// distribution; everything moves under cyclic.
		perProc := int64(0)
		for d := range req.SrcPat.Dims {
			dp := req.SrcPat.Dims[d]
			if dp.Repl {
				continue
			}
			delta := req.ShiftDelta(d)
			if delta == 0 {
				continue
			}
			if delta < 0 {
				delta = -delta
			}
			if dp.Kind == ast.DistBlock {
				if delta > dp.Block {
					delta = dp.Block
				}
				// Fraction of the aggregated elements near the boundary.
				share := trips * delta / max64(dp.Extent, 1)
				perProc += max64(share, delta) * elemBytes
			} else {
				perProc += bytesTotal / int64(g.Size())
			}
		}
		if perProc == 0 {
			perProc = elemBytes
		}
		return VectorizedOp{Kind: VecShift, PerProc: perProc,
			Participants: dist.AllProcs(g)}, nil

	case dist.CommBcast:
		from := 0
		if procs := srcEval.Procs(); len(procs) > 0 {
			from = procs[0]
		}
		return VectorizedOp{Kind: VecBcast, From: from, Dst: dstEval,
			Bytes: bytesTotal}, nil

	default:
		return VectorizedOp{Kind: VecExchange, Src: srcEval, Dst: dstEval,
			Bytes: bytesTotal}, nil
	}
}

// vectorizedCovered reports whether, at this particular entry of the
// hoisted nest, the source data already resides wherever the destinations
// need it — e.g. a block shift whose (invariant) position does not cross a
// processor boundary here. Dimensions whose positions vary within the
// hoisted loops are covered only if source and destination are statically
// identical there.
func (s *State) vectorizedCovered(req *comm.Requirement) bool {
	for d := range req.SrcPat.Dims {
		sd, td := req.SrcPat.Dims[d], req.DstPat.Dims[d]
		if sd.Repl {
			continue
		}
		if td.Repl {
			return false
		}
		// Statically identical determination covers regardless of hoisting.
		sp := dist.OwnerPattern{Dims: []dist.DimPattern{sd}}
		tp := dist.OwnerPattern{Dims: []dist.DimPattern{td}}
		if dist.Covers(sp, tp) {
			continue
		}
		varies := false
		for _, l := range req.Hoisted {
			if sd.Sub.VariesIn(l) || td.Sub.VariesIn(l) {
				varies = true
				break
			}
		}
		if varies {
			return false
		}
		// Both positions fixed for this entry: compare owner coordinates.
		spos, err1 := s.EvalAffine(sd.Sub)
		tpos, err2 := s.EvalAffine(td.Sub)
		if err1 != nil || err2 != nil {
			return false
		}
		if sd.Kind != td.Kind || sd.Block != td.Block || sd.Extent != td.Extent {
			return false
		}
		ax := dist.AxisMap{Distributed: true, Kind: sd.Kind, Offset: 0,
			Extent: sd.Extent, Block: sd.Block}
		n := s.Grid().Shape[d]
		if ax.OwnerDim(spos+sd.Offset, n) != ax.OwnerDim(tpos+td.Offset, n) {
			return false
		}
	}
	return true
}

// RefVariesIn reports whether a reference denotes different data across
// iterations of l (scalars are invariant; array refs vary when some
// subscript does).
func RefVariesIn(u *ir.Ref, l *ir.Loop) bool {
	if !u.Var.IsArray() {
		return false
	}
	for _, sub := range u.Subs {
		if sub.VariesIn(l) {
			return true
		}
	}
	return false
}

// ApplyRedistribute changes an array's dynamic mapping in this state. The
// cost (an all-to-all among all processors) is charged by the backend.
func (s *State) ApplyRedistribute(st *ir.Stmt) error {
	v := st.Redist.Array
	nm, err := dist.DistributeArray(s.Grid(), v, st.Redist.Formats)
	if err != nil {
		return &RedistError{Line: st.Line, Err: err}
	}
	s.dyn[v.Slot] = nm
	// The remap changes ownership, so any union execution set memoized for
	// the current epoch is stale; advance the epoch to invalidate it.
	s.epoch++
	return nil
}

// RedistBytesPerProc sizes the all-to-all a redistribution performs: each
// processor's share of the array.
func (s *State) RedistBytesPerProc(st *ir.Stmt, elemBytes int64) int64 {
	return st.Redist.Array.Size() * elemBytes / int64(s.Grid().Size())
}

// RedistError is a failed executable redistribution.
type RedistError struct {
	Line int
	Err  error
}

func (e *RedistError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }
func (e *RedistError) Unwrap() error { return e.Err }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
