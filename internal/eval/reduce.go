// Privatized reduction execution: per-processor partial accumulators and the
// deterministic tree merge that folds them back into the real accumulator at
// loop exit. Both backends share this code, so a privatized run's values are
// bit-for-bit identical between the simulator and the concurrent executor by
// construction — the same oracle property the collective path has.
//
// The memory image stays replicated: every State (one in the simulator, one
// per worker in the executor) holds the full partial table of every processor
// and performs the identical accumulate and merge operations. Messages in the
// concurrent backend only verify agreement (see exec's merge protocol), which
// is the replicated-interpretation discipline the rest of the runtime uses.
package eval

import (
	"math"

	"phpf/internal/ast"
	"phpf/internal/core"
	"phpf/internal/diag"
	"phpf/internal/ir"
	"phpf/internal/spmd"
)

// fnvOffset/fnvPrime are the FNV-1a constants used to checksum partial rows
// for the executor's merge-verification messages (same constants the
// executor uses for its batch checksums).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// ConfigureReduce arms the privatized-reduction machinery for one run. It
// must be called after NewStateBudget and before Walk, with the same mode
// and budget on every State of the run (the concurrent backend's workers
// each configure their own State identically).
//
//   - ReduceCollective: no-op; every combine runs the §2.3 collective.
//   - ReduceAuto: every combine the reduceplan cleared as privatizable gets a
//     private partial table; the rest stay collective.
//   - ReducePrivatize: like auto, but any recognized reduction the reduceplan
//     could NOT clear is a configuration error (E005) — the caller asked for
//     privatization the program cannot have.
//
// Partial tables are budget-checked against the same MaxCells budget as the
// memory image (each table holds one row per processor), so a serving path
// cannot be pushed past its footprint bound by flipping the reduce knob.
func (s *State) ConfigureReduce(mode core.ReduceMode, budget Budget) error {
	s.reduceMode = mode
	s.partials = nil
	s.partialElems = nil
	if mode == core.ReduceCollective {
		return nil
	}
	if mode == core.ReducePrivatize && s.Prog.ReducePlan != nil {
		// Validate against the full plan, not the attached combines: a
		// recognized reduction with no combine (an unmapped scalar, or a
		// collective-only array reduction, whose collective reference is
		// plain owner-computes execution) is still a privatization the
		// caller demanded and cannot have.
		for _, d := range s.Prog.ReducePlan.Decisions {
			if !d.Privatizable {
				return diag.Errorf("eval", diag.CodeConfig, d.Red.Stmt.Pos(),
					"reduce=privatize: reduction %s at line %d is collective-only (%s); use reduce=auto or reduce=collective",
					d.Red.Var.Name, d.Red.Stmt.Line, d.Reason)
			}
		}
	}
	if s.Prog.NumAcc == 0 {
		return nil
	}
	nprocs := int64(s.Prog.NProcs())
	// Budget the partial tables on top of the already-allocated image cells:
	// a breach must fail before anything large is allocated.
	total := int64(0)
	for _, a := range s.arrays {
		total += int64(len(a))
	}
	s.partials = make([][]float64, s.Prog.NumAcc)
	s.partialElems = make([]int64, s.Prog.NumAcc)
	for _, l := range s.Prog.Res.Prog.Loops {
		lp := s.Prog.LoopPlanOf(l)
		if lp == nil {
			continue
		}
		for _, c := range lp.Combines {
			if !c.Privatizable || c.AccIndex < 0 {
				continue
			}
			elems := int64(1)
			if v := c.Var(); v.IsArray() {
				elems = int64(len(s.arrays[v.Slot]))
			}
			cells, ok := mulChecked(elems, nprocs)
			if !ok {
				return &NumericError{Line: c.Red.Stmt.Line, What: c.Var().Name + " partial table size", Val: float64(elems)}
			}
			if total, ok = addChecked(total, cells); !ok {
				return &NumericError{Line: c.Red.Stmt.Line, What: "partial table cells", Val: float64(cells)}
			}
			if budget.MaxCells > 0 && total > budget.MaxCells {
				return diag.Errorf("eval", diag.CodeBudget, c.Red.Stmt.Pos(),
					"private partials for %s need more than %d cells (the %d-processor partial table brings the total past the MaxCells budget)",
					c.Var().Name, budget.MaxCells, nprocs)
			}
			tab := make([]float64, cells)
			if id := c.Red.Op.Identity(); id != 0 {
				for i := range tab {
					tab[i] = id
				}
			}
			s.partials[c.AccIndex] = tab
			s.partialElems[c.AccIndex] = elems
		}
	}
	return nil
}

// ReduceMode returns the mode the State was configured with (ReduceAuto when
// ConfigureReduce was never called, matching its default behavior of zero
// active combines because no partial tables exist).
func (s *State) ReduceMode() core.ReduceMode { return s.reduceMode }

// PrivatizedActive reports whether a combine runs privatized in this State:
// the reduceplan cleared it and ConfigureReduce armed its partial table.
func (s *State) PrivatizedActive(c *spmd.Combine) bool {
	return c != nil && c.AccIndex >= 0 && c.AccIndex < len(s.partials) && s.partials[c.AccIndex] != nil
}

// PartialElems returns the per-processor row length (in elements) of an
// active combine's partial table — what one merge hop ships on the wire.
func (s *State) PartialElems(c *spmd.Combine) int64 {
	if !s.PrivatizedActive(c) {
		return 0
	}
	return s.partialElems[c.AccIndex]
}

// AccumulatePrivate is the privatized value semantics of one reduction-update
// instance: evaluate only the contribution (never the full right-hand side —
// the real accumulator is stale while the loop runs), and fold it into the
// partial row of the processor that executes the instance (the first owner of
// the reduction's data reference; processor 0 for all-scalar contributions).
// The real accumulator is untouched until MergePartials runs at loop exit.
func (s *State) AccumulatePrivate(st *ir.Stmt, c *spmd.Combine) error {
	val, err := s.Eval(c.Red.Data)
	if err != nil {
		return err
	}
	if c.Red.Negate {
		val = -val
	}
	acc := 0
	if c.Red.DataRef != nil {
		set, err := s.OwnerSet(c.Red.DataRef)
		if err != nil {
			return err
		}
		if p := set.First(); p >= 0 {
			acc = p
		}
	}
	off := int64(0)
	if st.Lhs.Var.IsArray() {
		if off, err = s.ArrayOffset(st.Lhs); err != nil {
			return err
		}
	}
	tab := s.partials[c.AccIndex]
	i := int64(acc)*s.partialElems[c.AccIndex] + off
	tab[i] = c.Red.Op.Fold(tab[i], val)
	return nil
}

// MergeHop is one edge of the deterministic combining tree: Loser folds its
// partial row into Winner's and drops out. Check is the FNV-1a checksum of
// the loser's pre-merge row — the payload the concurrent backend's loser
// ships to its winner so divergent partials are caught on the wire.
type MergeHop struct {
	Winner, Loser int
	Check         uint64
}

// MergePartials runs the loop-exit merge of one active combine: a
// stride-doubling tree over the processor rows (hop order is a pure function
// of the processor count, so every State and every backend folds in the same
// order — the determinism the oracle relies on), then one elementwise fold of
// the surviving row into the real accumulator, then a reset of the table to
// the operator identity for any re-entry of the loop. Returns the tree's hop
// list for the concurrent backend's verification protocol; nil for an
// inactive combine.
func (s *State) MergePartials(c *spmd.Combine) ([]MergeHop, error) {
	if !s.PrivatizedActive(c) {
		return nil, nil
	}
	tab := s.partials[c.AccIndex]
	elems := s.partialElems[c.AccIndex]
	nprocs := s.Prog.NProcs()
	var hops []MergeHop
	for stride := 1; stride < nprocs; stride <<= 1 {
		for w := 0; w+stride < nprocs; w += 2 * stride {
			l := w + stride
			lrow := tab[int64(l)*elems : int64(l+1)*elems]
			hops = append(hops, MergeHop{Winner: w, Loser: l, Check: rowCheck(lrow)})
			wrow := tab[int64(w)*elems : int64(w+1)*elems]
			for e := range wrow {
				wrow[e] = c.Red.Op.Fold(wrow[e], lrow[e])
			}
		}
	}
	root := tab[:elems]
	v := c.Var()
	if v.IsArray() {
		arr := s.arrays[v.Slot]
		for e := range arr {
			arr[e] = c.Red.Op.Fold(arr[e], root[e])
		}
	} else {
		val := c.Red.Op.Fold(s.scalars[v.Slot], root[0])
		if v.Type == ast.Integer {
			val = math.Round(val)
		}
		s.scalars[v.Slot] = val
		s.scalarSet[v.Slot] = true
	}
	id := c.Red.Op.Identity()
	for i := range tab {
		tab[i] = id
	}
	return hops, nil
}

// rowCheck is the FNV-1a checksum of a partial row's bit patterns.
func rowCheck(row []float64) uint64 {
	h := uint64(fnvOffset)
	for _, x := range row {
		b := math.Float64bits(x)
		for k := 0; k < 64; k += 8 {
			h ^= (b >> k) & 0xff
			h *= fnvPrime
		}
	}
	return h
}
