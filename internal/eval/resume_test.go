package eval

import (
	"errors"
	"fmt"
	"testing"

	"phpf/internal/ir"
	"phpf/internal/spmd"
)

// recBackend records the walk's event stream as strings and can capture a
// cursor plus snapshot at a chosen LoopEntry occurrence, then abort at a
// chosen later event — mimicking a checkpoint followed by a crash.
type recBackend struct {
	st     *State
	events []string

	entries  int // LoopEntry occurrences seen so far
	ckptAt   int // capture cursor+snapshot at this LoopEntry (0 = never)
	cursor   Cursor
	snapshot *Snapshot

	abortAt  int // return errCrash at this event index (0 = never)
	hasCkpt  bool
	resuming bool // suppress event recording until the cursor boundary re-fires
}

var errCrash = errors.New("crash")

func (r *recBackend) ev(s string) error {
	if !r.resuming {
		r.events = append(r.events, s)
	}
	if r.abortAt > 0 && len(r.events) == r.abortAt {
		return errCrash
	}
	return nil
}

func (r *recBackend) LoopEntry(l *ir.Loop, lp *spmd.LoopPlan) error {
	r.resuming = false
	r.entries++
	if r.ckptAt > 0 && r.entries == r.ckptAt {
		cur, ok := r.st.Cursor()
		if !ok {
			return fmt.Errorf("cursor unavailable inside LoopEntry")
		}
		r.cursor = cur
		r.snapshot = r.st.Snapshot()
		r.hasCkpt = true
	}
	return r.ev(fmt.Sprintf("entry %s", l.Index.Name))
}

func (r *recBackend) LoopExit(l *ir.Loop, lp *spmd.LoopPlan) error {
	return r.ev(fmt.Sprintf("exit %s", l.Index.Name))
}

func (r *recBackend) Statement(st *ir.Stmt, sp *spmd.StmtPlan) error {
	return r.ev(fmt.Sprintf("stmt %d@%d", st.ID, r.st.Index(loopIndexOf(r.st, st))))
}

// loopIndexOf gives a little per-statement context: the innermost loop
// index value (0 when none is live). Cheap way to make the event stream
// iteration-sensitive.
func loopIndexOf(s *State, st *ir.Stmt) *ir.Var {
	for _, v := range s.Prog.Res.Prog.VarList {
		if v.IsLoopIndex {
			return v
		}
	}
	return nil
}

func (r *recBackend) Redistribute(st *ir.Stmt) error { return r.ev("redist") }
func (r *recBackend) Tick() error                    { return r.ev("tick") }

const resumeSrc = `
program t
parameter n = 6
real a(n)
real s
integer i, j
!hpf$ distribute (block) :: a
s = 0.0
do i = 1, n
  a(i) = i * 2.0
  do j = 1, 2
    s = s + a(i)
  end do
end do
end
`

// TestWalkResumeMatchesWalk: a tracked walk with no cursor produces the
// same event stream and final memory image as the plain walk.
func TestWalkResumeMatchesWalk(t *testing.T) {
	p := compile(t, resumeSrc, 2)

	plain, _ := NewState(p)
	rp := &recBackend{st: plain}
	if err := Walk(plain, rp); err != nil {
		t.Fatal(err)
	}

	tracked, _ := NewState(p)
	rt := &recBackend{st: tracked}
	if err := WalkResume(tracked, rt, nil); err != nil {
		t.Fatal(err)
	}

	if fmt.Sprint(rp.events) != fmt.Sprint(rt.events) {
		t.Fatalf("tracked walk diverged:\nplain:   %v\ntracked: %v", rp.events, rt.events)
	}
	compareStates(t, plain, tracked)
}

// TestCheckpointRestartResume: capture a cursor+snapshot at a mid-program
// LoopEntry, "crash" later, restore the snapshot, and resume from the
// cursor. The resumed run must replay exactly the events from the
// checkpoint boundary onward and end in the same memory image as an
// uninterrupted run.
func TestCheckpointRestartResume(t *testing.T) {
	p := compile(t, resumeSrc, 2)

	// Reference run: full event stream, no interruption.
	ref, _ := NewState(p)
	rr := &recBackend{st: ref}
	if err := WalkResume(ref, rr, nil); err != nil {
		t.Fatal(err)
	}

	// Try checkpointing at every LoopEntry occurrence and crashing at
	// several points after it.
	total := 0
	for _, e := range rr.events {
		if len(e) > 5 && e[:5] == "entry" {
			total++
		}
	}
	if total < 3 {
		t.Fatalf("test program has only %d loop entries", total)
	}
	for ckpt := 1; ckpt <= total; ckpt++ {
		for _, crashDelta := range []int{1, 3, 7} {
			st, _ := NewState(p)
			r := &recBackend{st: st, ckptAt: ckpt}

			// Find the event index of the ckpt-th LoopEntry in the
			// reference stream, then crash crashDelta events later.
			seen, boundary := 0, -1
			for i, e := range rr.events {
				if len(e) > 5 && e[:5] == "entry" {
					seen++
					if seen == ckpt {
						boundary = i
						break
					}
				}
			}
			crashAt := boundary + 1 + crashDelta
			if crashAt > len(rr.events) {
				continue
			}
			r.abortAt = crashAt
			err := WalkResume(st, r, nil)
			if !errors.Is(err, errCrash) {
				t.Fatalf("ckpt=%d crash=%d: walk returned %v, want crash", ckpt, crashDelta, err)
			}
			if !r.hasCkpt {
				t.Fatalf("ckpt=%d: checkpoint never captured", ckpt)
			}

			// Restore and resume. The resumed stream (starting with the
			// re-fired LoopEntry at the boundary) must equal the reference
			// suffix from the boundary.
			st.Restore(r.snapshot)
			r2 := &recBackend{st: st}
			if err := WalkResume(st, r2, &r.cursor); err != nil {
				t.Fatalf("ckpt=%d crash=%d: resume failed: %v", ckpt, crashDelta, err)
			}
			want := fmt.Sprint(rr.events[boundary:])
			if got := fmt.Sprint(r2.events); got != want {
				t.Fatalf("ckpt=%d crash=%d: resumed stream diverged:\nwant %s\ngot  %s",
					ckpt, crashDelta, want, got)
			}
			compareStates(t, ref, st)
		}
	}
}

// TestSnapshotRestoreRoundTrip: restoring a snapshot returns every scalar,
// index, and array element to the captured values.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := compile(t, resumeSrc, 2)
	st, _ := NewState(p)
	if err := Walk(st, &recBackend{st: st}); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	ref, _ := NewState(p)
	if err := Walk(ref, &recBackend{st: ref}); err != nil {
		t.Fatal(err)
	}

	// Scribble over the live image, then restore.
	a := p.Res.Prog.LookupVar("a")
	st.Array(a)[0] = -999
	sv := p.Res.Prog.LookupVar("s")
	st.scalars[sv.Slot] = -999
	st.Restore(snap)
	compareStates(t, ref, st)
}

func compareStates(t *testing.T, want, got *State) {
	t.Helper()
	for i := range want.scalars {
		if want.scalars[i] != got.scalars[i] || want.scalarSet[i] != got.scalarSet[i] {
			t.Fatalf("scalar slot %d: got %v/%v, want %v/%v",
				i, got.scalars[i], got.scalarSet[i], want.scalars[i], want.scalarSet[i])
		}
	}
	for i := range want.arrays {
		for j := range want.arrays[i] {
			if want.arrays[i][j] != got.arrays[i][j] {
				t.Fatalf("array slot %d elem %d: got %v, want %v",
					i, j, got.arrays[i][j], want.arrays[i][j])
			}
		}
	}
}
