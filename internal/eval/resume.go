// Resumable walks. The concurrent backend checkpoints at loop-entry
// boundaries and, after a fail-stop crash, must re-enter the program tree
// exactly where the checkpoint was cut: the cursor records the structural
// path (list positions, taken IF branches, in-flight loop iterations) down
// to the checkpointed loop, and resumption navigates that path executing
// nothing, re-fires the target loop's LoopEntry, and continues normally.
package eval

import (
	"errors"

	"phpf/internal/ir"
)

var errBadCursor = errors.New("eval: resume cursor does not match the program structure")

// frame is one level of the cursor path. Levels alternate between
// statement-list positions (idx into the list, els marking an IF's else
// branch) and loop levels (the in-flight iteration v of a loop running to
// hi by step).
type frame struct {
	idx  int
	els  bool
	loop bool
	v    int64
	hi   int64
	step int64
}

// pending holds the bounds of the loop whose LoopEntry callback is
// currently running, completing a cursor captured inside it.
type pending struct {
	lo, hi, step int64
	ok           bool
}

// Cursor is a resume point captured by State.Cursor during a LoopEntry
// callback of a tracked walk. The zero Cursor resumes from the top of the
// program. Cursors are plain values: safe to copy and to keep across the
// walk that produced them.
type Cursor struct {
	frames       []frame
	lo, hi, step int64
	valid        bool
}

// Valid reports whether the cursor names a mid-program boundary (false for
// the zero cursor, which resumes from the program start).
func (c Cursor) Valid() bool { return c.valid }

// Cursor returns the current resume point. It is valid only while a
// tracked walk (WalkResume) is inside a LoopEntry callback — the only
// boundary the backends checkpoint at; ok is false anywhere else.
func (s *State) Cursor() (Cursor, bool) {
	w := s.walk
	if w == nil || !w.pend.ok {
		return Cursor{}, false
	}
	return Cursor{
		frames: append([]frame(nil), w.path...),
		lo:     w.pend.lo, hi: w.pend.hi, step: w.pend.step,
		valid: true,
	}, true
}

// WalkResume interprets the program over s like Walk, with cursor tracking
// on (State.Cursor works inside LoopEntry callbacks). When from is a cursor
// captured by an earlier tracked walk over the same program, the walker
// first seeks to that boundary without executing anything — no statement
// semantics, no backend events, no bounds evaluation — then re-fires the
// target loop's LoopEntry and runs normally from its recorded bounds.
// The caller must have restored s to the matching checkpoint snapshot.
func WalkResume(s *State, b Backend, from *Cursor) error {
	w := &walker{s: s, b: b, track: true}
	s.walk = w
	if from != nil && from.valid {
		w.seek = from.frames
		w.seekLo, w.seekHi, w.seekStep = from.lo, from.hi, from.step
	}
	ctl, err := w.nodes(s.Prog.Res.Prog.Body, false)
	if err != nil {
		return err
	}
	if ctl.kind == ctlGoto {
		return &GotoEscapeError{Label: ctl.label}
	}
	return nil
}

// nodesTracked is the cursor-maintaining variant of nodes. While a seek is
// active it fast-forwards straight to the recorded list position instead of
// executing the prefix.
func (w *walker) nodesTracked(list []ir.Node, els bool) (control, error) {
	depth := len(w.path)
	w.path = append(w.path, frame{els: els})
	start := 0
	if w.seek != nil {
		if depth >= len(w.seek) || w.seek[depth].loop || w.seek[depth].idx >= len(list) {
			return control{}, errBadCursor
		}
		start = w.seek[depth].idx
	}
	for i := start; i < len(list); i++ {
		w.path[depth].idx = i
		var ctl control
		var err error
		if w.seek != nil {
			ctl, err = w.seekNode(list[i], depth)
		} else {
			ctl, err = w.node(list[i])
		}
		if err != nil {
			return control{}, err
		}
		if ctl.kind == ctlGoto {
			// Look for the labeled CONTINUE later in this sequence.
			target := -1
			for j := range list {
				if st, ok := list[j].(*ir.Stmt); ok && st.Kind == ir.SContinue && st.Label == ctl.label {
					target = j
					break
				}
			}
			if target < 0 {
				w.path = w.path[:depth]
				return ctl, nil // propagate upward
			}
			i = target // resume at the label
			continue
		}
	}
	w.path = w.path[:depth]
	return control{}, nil
}

// seekNode navigates one recorded path step. At the final frame the node is
// the checkpointed loop itself: seeking ends and the loop resumes from the
// cursor's bounds. Intermediate frames descend into the recorded IF branch
// or re-enter the recorded loop iteration mid-flight (without re-firing its
// LoopEntry — that fired before the checkpoint).
func (w *walker) seekNode(n ir.Node, depth int) (control, error) {
	if depth == len(w.seek)-1 {
		l, ok := n.(*ir.Loop)
		if !ok {
			return control{}, errBadCursor
		}
		lo, hi, step := w.seekLo, w.seekHi, w.seekStep
		w.seek = nil
		return w.loopResume(l, lo, hi, step)
	}
	next := w.seek[depth+1]
	switch x := n.(type) {
	case *ir.Loop:
		if !next.loop {
			return control{}, errBadCursor
		}
		return w.iterate(x, w.s.Prog.LoopPlanOf(x), next.v, next.hi, next.step)
	case *ir.If:
		if next.loop {
			return control{}, errBadCursor
		}
		if next.els {
			return w.nodes(x.Else, true)
		}
		return w.nodes(x.Then, false)
	}
	return control{}, errBadCursor
}

// loopResume re-enters the checkpointed loop: LoopEntry re-fires (the
// checkpoint was cut inside it, so the backend re-runs the entry under its
// own replay suppression) and iteration restarts from the recorded bounds.
func (w *walker) loopResume(l *ir.Loop, lo, hi, step int64) (control, error) {
	lp := w.s.Prog.LoopPlanOf(l)
	if lp == nil {
		return control{}, errBadCursor
	}
	w.s.indices[l.Index.Slot] = lo
	w.pend = pending{lo: lo, hi: hi, step: step, ok: true}
	err := w.b.LoopEntry(l, lp)
	w.pend.ok = false
	if err != nil {
		return control{}, err
	}
	return w.iterate(l, lp, lo, hi, step)
}
