// The program walker: structured control flow (loops, block IFs, gotos) and
// value semantics, identical for every backend. Backends observe the walk at
// the points where cost is charged or messages flow.
package eval

import (
	"fmt"

	"phpf/internal/ir"
	"phpf/internal/spmd"
)

// Backend receives the walk's execution events. The walker has already
// updated the State when an event fires except where noted; backends charge
// their cost model or perform real communication, and may abort the walk by
// returning an error.
type Backend interface {
	// LoopEntry fires once per entry of a loop, after the bounds statement
	// and with the loop index set to the lower bound (so affine evaluation
	// of the hoisted communications has a defined base), before any
	// iteration runs.
	LoopEntry(l *ir.Loop, lp *spmd.LoopPlan) error
	// LoopExit fires after the last iteration (global reduction combines
	// run here). It fires even when the loop had zero iterations.
	LoopExit(l *ir.Loop, lp *spmd.LoopPlan) error
	// Statement fires once per statement instance, before its value
	// semantics: per-instance communication and the computation charge
	// happen here.
	Statement(st *ir.Stmt, sp *spmd.StmtPlan) error
	// Redistribute fires after an executable redistribution has updated
	// the dynamic mapping in the State.
	Redistribute(st *ir.Stmt) error
	// Tick fires after every loop iteration: abort checks (simulated time
	// limits, context cancellation) belong here.
	Tick() error
}

// GotoEscapeError reports a goto whose target label lies outside the
// program.
type GotoEscapeError struct{ Label int }

func (e *GotoEscapeError) Error() string {
	return fmt.Sprintf("goto %d escaped the program", e.Label)
}

// Walk interprets the program over s, reporting events to b. It returns the
// first error a callback or the value semantics produce.
func Walk(s *State, b Backend) error {
	w := &walker{s: s, b: b}
	ctl, err := w.nodes(s.Prog.Res.Prog.Body, false)
	if err != nil {
		return err
	}
	if ctl.kind == ctlGoto {
		return &GotoEscapeError{Label: ctl.label}
	}
	return nil
}

type ctlKind int

const (
	ctlNormal ctlKind = iota
	ctlGoto
)

type control struct {
	kind  ctlKind
	label int
}

type walker struct {
	s *State
	b Backend

	// Resume-cursor tracking (see resume.go). Plain Walk leaves track off,
	// so the simulator's hot path pays nothing for it.
	track bool
	path  []frame
	pend  pending
	seek  []frame
	// Bounds of the seek target loop, recorded by the cursor so resumption
	// does not re-evaluate (and re-charge) the bounds expressions.
	seekLo, seekHi, seekStep int64
}

// nodes interprets one statement list. els distinguishes an IF's else
// branch from its then branch in the resume cursor; the untracked path
// ignores it.
func (w *walker) nodes(nodes []ir.Node, els bool) (control, error) {
	if w.track {
		return w.nodesTracked(nodes, els)
	}
	for i := 0; i < len(nodes); i++ {
		ctl, err := w.node(nodes[i])
		if err != nil {
			return control{}, err
		}
		if ctl.kind == ctlGoto {
			// Look for the labeled CONTINUE later in this sequence.
			target := -1
			for j := range nodes {
				if st, ok := nodes[j].(*ir.Stmt); ok && st.Kind == ir.SContinue && st.Label == ctl.label {
					target = j
					break
				}
			}
			if target < 0 {
				return ctl, nil // propagate upward
			}
			i = target // resume at the label
			continue
		}
	}
	return control{}, nil
}

func (w *walker) node(n ir.Node) (control, error) {
	switch x := n.(type) {
	case *ir.Stmt:
		return w.stmt(x)
	case *ir.If:
		return w.ifNode(x)
	case *ir.Loop:
		return w.loop(x)
	}
	return control{}, nil
}

func (w *walker) loop(l *ir.Loop) (control, error) {
	s := w.s
	if l.BoundsStmt != nil {
		if _, err := w.stmt(l.BoundsStmt); err != nil {
			return control{}, err
		}
	}
	lo, err := s.EvalInt(l.Lo)
	if err != nil {
		return control{}, err
	}
	hi, err := s.EvalInt(l.Hi)
	if err != nil {
		return control{}, err
	}
	step := int64(1)
	if l.Step != nil {
		step, err = s.EvalInt(l.Step)
		if err != nil {
			return control{}, err
		}
		if step == 0 {
			return control{}, fmt.Errorf("zero loop step at line %d", l.Line)
		}
	}

	lp := s.Prog.LoopPlanOf(l)
	if lp != nil {
		// The loop index ranges over the whole iteration space for the
		// purpose of any aggregated transfer; set it to lo so affine
		// evaluation has a defined base.
		s.indices[l.Index.Slot] = lo
		// A checkpoint cursor may be captured inside this callback; the
		// pending bounds complete it (see State.Cursor).
		w.pend = pending{lo: lo, hi: hi, step: step, ok: w.track}
		err := w.b.LoopEntry(l, lp)
		w.pend.ok = false
		if err != nil {
			return control{}, err
		}
	}
	return w.iterate(l, lp, lo, hi, step)
}

// iterate runs the loop body over [lo,hi]/step and fires LoopExit. It is
// shared by the normal walk, cursor resumption (which re-fires the target
// loop's LoopEntry first), and cursor seeking (which enters an enclosing
// loop mid-flight without re-firing its LoopEntry).
func (w *walker) iterate(l *ir.Loop, lp *spmd.LoopPlan, lo, hi, step int64) (control, error) {
	s := w.s
	depth := -1
	if w.track {
		depth = len(w.path)
		w.path = append(w.path, frame{loop: true, v: lo, hi: hi, step: step})
	}
	for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
		if w.track {
			w.path[depth].v = v
		}
		s.indices[l.Index.Slot] = v
		s.epoch++
		ctl, err := w.nodes(l.Body, false)
		if err != nil {
			return control{}, err
		}
		if ctl.kind == ctlGoto {
			if w.track {
				w.path = w.path[:depth]
			}
			return ctl, nil // escaping goto terminates the loop
		}
		if err := w.b.Tick(); err != nil {
			return control{}, err
		}
	}
	if w.track {
		w.path = w.path[:depth]
	}

	if lp != nil {
		if err := w.b.LoopExit(l, lp); err != nil {
			return control{}, err
		}
	}
	return control{}, nil
}

func (w *walker) ifNode(ifn *ir.If) (control, error) {
	if _, err := w.stmt(ifn.Cond); err != nil {
		return control{}, err
	}
	c, err := w.s.Eval(ifn.Cond.Cond)
	if err != nil {
		return control{}, err
	}
	if c != 0 {
		return w.nodes(ifn.Then, false)
	}
	return w.nodes(ifn.Else, true)
}

// stmt reports the statement to the backend (communication and computation
// charges), then computes its value semantics.
func (w *walker) stmt(st *ir.Stmt) (control, error) {
	s := w.s
	sp := s.Prog.PlanOf(st)
	if err := w.b.Statement(st, sp); err != nil {
		return control{}, err
	}

	switch st.Kind {
	case ir.SAssign:
		if s.PrivatizedActive(sp.Combine) {
			// A privatized reduction update accumulates into the partial
			// tables; the real accumulator is only written by the loop-exit
			// merge.
			if err := s.AccumulatePrivate(st, sp.Combine); err != nil {
				return control{}, err
			}
			return control{}, nil
		}
		val, err := s.Eval(st.Rhs)
		if err != nil {
			return control{}, err
		}
		if err := s.Store(st.Lhs, val); err != nil {
			return control{}, err
		}
	case ir.SIfGoto:
		c, err := s.Eval(st.Cond)
		if err != nil {
			return control{}, err
		}
		if c != 0 {
			return control{kind: ctlGoto, label: st.Label}, nil
		}
	case ir.SGoto:
		return control{kind: ctlGoto, label: st.Label}, nil
	case ir.SRedistribute:
		if err := s.ApplyRedistribute(st); err != nil {
			return control{}, err
		}
		if err := w.b.Redistribute(st); err != nil {
			return control{}, err
		}
	case ir.SContinue, ir.SIf, ir.SLoopBounds:
		// No value semantics here (If predicates are evaluated by ifNode).
	}
	return control{}, nil
}
