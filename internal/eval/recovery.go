// Checkpoint and recovery sizing, shared by both backends: the simulator
// charges these sizes to its cost model, and the concurrent executor both
// replays the same charges and uses the itemization to drive its real
// refetch protocol — which is how the two stay message-for-message aligned.
package eval

import (
	"phpf/internal/ir"
	"phpf/internal/spmd"
)

// CheckpointBytes returns each processor's live state size: its partition
// of every (dynamically mapped) array plus one element per scalar variable,
// at elemBytes bytes per element. When the run privatizes reductions, each
// processor's own partial row of every active partial table is live state too
// — an in-flight private accumulation must survive a restart.
func CheckpointBytes(s *State, elemBytes int64) []int64 {
	g := s.Grid()
	out := make([]int64, g.Size())
	var scalarBytes int64
	for _, v := range s.Prog.Res.Prog.VarList {
		if v.IsArray() || v.IsLoopIndex {
			continue
		}
		scalarBytes += elemBytes
	}
	for acc, t := range s.partials {
		if t != nil {
			scalarBytes += s.partialElems[acc] * elemBytes
		}
	}
	for p := range out {
		coords := g.Coords(p)
		b := scalarBytes
		for _, am := range s.dyn {
			if am == nil {
				continue
			}
			b += am.LocalElems(g, coords) * elemBytes
		}
		out[p] = b
	}
	return out
}

// RefetchItem is one unit of recovery communication for a restarted
// processor: either that processor's partition of a non-replicated array
// (Elems > 1 possible) or one refetch-classified scalar (Elems == 1).
type RefetchItem struct {
	Var   *ir.Var
	Elems int64
	Bytes int64
}

// RefetchItems lists the recovery communication for restarted processor p
// under the current dynamic mapping, in deterministic (declaration) order:
// non-replicated array partitions first, then scalars the SPMD plan
// classified RecoverRefetch. Replicated copies — the paper's replication
// mapping — restore locally at zero communication cost.
func RefetchItems(s *State, p int, elemBytes int64) []RefetchItem {
	g := s.Grid()
	coords := g.Coords(p)
	var out []RefetchItem
	for _, v := range s.Prog.Res.Prog.VarList {
		if !v.IsArray() {
			continue
		}
		am := s.dyn[v.Slot]
		if am == nil || am.FullyReplicated() {
			continue // replicated: every survivor holds a copy
		}
		if n := am.LocalElems(g, coords); n > 0 {
			out = append(out, RefetchItem{Var: v, Elems: n, Bytes: n * elemBytes})
		}
	}
	for _, v := range s.Prog.Res.Prog.VarList {
		if v.IsArray() || s.Prog.Recovery[v] != spmd.RecoverRefetch {
			continue
		}
		out = append(out, RefetchItem{Var: v, Elems: 1, Bytes: elemBytes})
	}
	return out
}

// RefetchCost sums RefetchItems into the (bytes, messages) pair the cost
// model charges for recovering processor p.
func RefetchCost(s *State, p int, elemBytes int64) (bytes, msgs int64) {
	for _, it := range RefetchItems(s, p, elemBytes) {
		bytes += it.Bytes
		msgs++
	}
	return bytes, msgs
}
