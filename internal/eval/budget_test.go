package eval

import (
	"errors"
	"strings"
	"testing"

	"phpf/internal/diag"
)

// budgetSrc declares 100 + 50 = 150 array cells plus scalars (which do not
// count against the cell budget).
const budgetSrc = `
program t
parameter n = 10
real a(n,n)
real b(50)
real x
integer i, j
!hpf$ distribute (block,*) :: a
do i = 1, n
  do j = 1, n
    a(i,j) = 1.0
  end do
end do
end
`

func TestBudgetDefaultUnlimited(t *testing.T) {
	p := compile(t, budgetSrc, 4)
	if _, err := NewState(p); err != nil {
		t.Fatalf("NewState without a budget must not fail: %v", err)
	}
	if _, err := NewStateBudget(p, Budget{}); err != nil {
		t.Fatalf("zero Budget means unlimited: %v", err)
	}
}

func TestBudgetExactFit(t *testing.T) {
	p := compile(t, budgetSrc, 4)
	s, err := NewStateBudget(p, Budget{MaxCells: 150})
	if err != nil {
		t.Fatalf("150 cells fit a 150-cell budget exactly: %v", err)
	}
	cells := 0
	for _, v := range p.Res.Prog.VarList {
		cells += len(s.Array(v))
	}
	if cells != 150 {
		t.Fatalf("allocated %d cells, want 150", cells)
	}
}

func TestBudgetBreachIsCodedE006(t *testing.T) {
	p := compile(t, budgetSrc, 4)
	_, err := NewStateBudget(p, Budget{MaxCells: 149})
	if err == nil {
		t.Fatal("149-cell budget must reject a 150-cell image")
	}
	var d *diag.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("budget breach is not a *diag.Diagnostic: %T %v", err, err)
	}
	if d.Code != diag.CodeBudget {
		t.Fatalf("budget breach code = %q, want %q (E006)", d.Code, diag.CodeBudget)
	}
	// The breach message names the offending array so a 422 is actionable.
	if !strings.Contains(err.Error(), "b") || !strings.Contains(err.Error(), "149") {
		t.Fatalf("breach message should name the array and the budget: %v", err)
	}
}

func TestBudgetBreachBeforeAllocation(t *testing.T) {
	// A budget of 1 against the first array (100 cells) must fail on the
	// first accumulation — this is a behavioural proxy for the O(1)-memory
	// guarantee (validation happens before any array is allocated).
	p := compile(t, budgetSrc, 4)
	_, err := NewStateBudget(p, Budget{MaxCells: 1})
	if err == nil {
		t.Fatal("1-cell budget must reject immediately")
	}
	var d *diag.Diagnostic
	if !errors.As(err, &d) || d.Code != diag.CodeBudget {
		t.Fatalf("want coded E006, got %T %v", err, err)
	}
}
