// Dense checkpoint snapshots of the slot-indexed memory image. A snapshot
// is a flat copy of every scalar, loop index, and array payload plus the
// current dynamic mappings — cheap because State keeps them all in dense
// slices (the point of the slot-indexed layout).
package eval

import "phpf/internal/dist"

// Snapshot is an immutable copy of a State's mutable memory image, taken by
// State.Snapshot and reinstalled by State.Restore.
type Snapshot struct {
	scalars   []float64
	scalarSet []bool
	indices   []int64
	arrays    [][]float64
	dyn       []*dist.ArrayMap
	// partials deep-copies the privatized-reduction partial tables, so a
	// restart replays in-flight private accumulations instead of losing them.
	partials [][]float64
}

// Snapshot copies the memory image. Array payloads are deep-copied; dynamic
// mappings are shared by pointer (ArrayMaps are immutable — redistribution
// swaps the pointer, never mutates the map).
func (s *State) Snapshot() *Snapshot {
	snap := &Snapshot{
		scalars:   append([]float64(nil), s.scalars...),
		scalarSet: append([]bool(nil), s.scalarSet...),
		indices:   append([]int64(nil), s.indices...),
		arrays:    make([][]float64, len(s.arrays)),
		dyn:       append([]*dist.ArrayMap(nil), s.dyn...),
		partials:  make([][]float64, len(s.partials)),
	}
	for i, a := range s.arrays {
		if a != nil {
			snap.arrays[i] = append([]float64(nil), a...)
		}
	}
	for i, t := range s.partials {
		if t != nil {
			snap.partials[i] = append([]float64(nil), t...)
		}
	}
	return snap
}

// Restore overwrites the memory image from a snapshot of the same program
// and advances the epoch so memoized execution sets recompute against the
// restored mappings. The snapshot stays valid for further restores.
func (s *State) Restore(snap *Snapshot) {
	copy(s.scalars, snap.scalars)
	copy(s.scalarSet, snap.scalarSet)
	copy(s.indices, snap.indices)
	for i, a := range snap.arrays {
		if a != nil {
			copy(s.arrays[i], a)
		}
	}
	copy(s.dyn, snap.dyn)
	for i, t := range snap.partials {
		if t != nil {
			copy(s.partials[i], t)
		}
	}
	s.epoch++
}
